#include <set>

#include <gtest/gtest.h>

#include "dataset/dataset.h"
#include "suites/suites.h"

namespace gnnhls {
namespace {

TEST(SuitesTest, PaperCounts) {
  // Paper §3.2: MachSuite 16, CHStone 10, PolyBench 30.
  EXPECT_EQ(machsuite_all().size(), 16U);
  EXPECT_EQ(chstone_all().size(), 10U);
  EXPECT_EQ(polybench_all().size(), 30U);
  EXPECT_EQ(all_real_world().size(), 56U);
}

TEST(SuitesTest, NamesUnique) {
  std::set<std::string> names;
  for (const auto& p : all_real_world()) {
    EXPECT_TRUE(names.insert(p.suite + "/" + p.name).second)
        << "duplicate " << p.name;
  }
}

struct SuiteCase {
  std::string label;
  int index;
};

class SuiteKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(SuiteKernelTest, LowersAndSynthesizes) {
  const auto programs = all_real_world();
  const SuiteProgram& p = programs[static_cast<std::size_t>(GetParam())];
  // All real-world kernels contain loops (they lower to CDFGs, which is why
  // the paper uses them for CDFG-style generalization evaluation).
  EXPECT_TRUE(p.func.has_control_flow()) << p.name;
  const Sample s = make_sample(p.func, GraphKind::kCdfg, HlsConfig{},
                               p.suite + "/" + p.name);
  EXPECT_GT(s.graph().num_nodes(), 25) << p.name;
  EXPECT_GT(s.graph().count_back_edges(), 0) << p.name;
  EXPECT_TRUE(s.graph().forward_edges_acyclic()) << p.name;
  EXPECT_GT(s.truth.lut, 0.0) << p.name;
  EXPECT_GT(s.truth.ff, 0.0) << p.name;
  EXPECT_GT(s.truth.cp_ns, 0.0) << p.name;
  EXPECT_GT(s.hls_report.lut, 0.0) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    All56, SuiteKernelTest, ::testing::Range(0, 56),
    [](const ::testing::TestParamInfo<int>& info) {
      static const auto programs = all_real_world();
      std::string n =
          programs[static_cast<std::size_t>(info.param)].suite + "_" +
          programs[static_cast<std::size_t>(info.param)].name;
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(SuitesTest, KernelsAreStructurallyDiverse) {
  const auto programs = all_real_world();
  std::set<int> node_counts;
  for (const auto& p : programs) {
    node_counts.insert(lower_to_cdfg(p.func).graph.num_nodes());
  }
  // At least 2/3 of the kernels have distinct graph sizes.
  EXPECT_GT(node_counts.size(), 37U);
}

TEST(SuitesTest, SomeKernelsUseDsps) {
  int dsp_kernels = 0;
  for (const auto& p : all_real_world()) {
    const Sample s =
        make_sample(p.func, GraphKind::kCdfg, HlsConfig{}, p.name);
    if (s.truth.dsp > 0.0) ++dsp_kernels;
  }
  // Multiplication-heavy kernels (gemm, dct, md, ...) must map to DSPs.
  EXPECT_GT(dsp_kernels, 20);
}

}  // namespace
}  // namespace gnnhls
