// serve/wire.h codec tests: encode→decode identity for randomized (seeded)
// request/response frames over synthetic samples of both graph kinds, torn
// delivery at every chunk size down to one byte, version forward-compat
// (unknown minor decodes, unknown major rejects cleanly), and every decoder
// poison path: garbage magic, bad frame type, oversized length prefix,
// short bodies, and the error latch itself.
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/serialize.h"
#include "serve/wire.h"
#include "support/rng.h"

namespace gnnhls {
namespace {

std::vector<Sample> tiny_dataset(GraphKind kind, int n, std::uint64_t seed) {
  SyntheticDatasetConfig cfg;
  cfg.kind = kind;
  cfg.num_graphs = n;
  cfg.seed = seed;
  cfg.progen.min_ops = 6;
  cfg.progen.max_ops = 20;
  return build_synthetic_dataset(cfg);
}

// Raw little-endian header builder for hostile-input tests (mirrors the
// layout in wire.h without going through the encoder under test).
void put_u32_raw(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::string raw_header(std::uint32_t magic, std::uint8_t major,
                       std::uint8_t minor, std::uint8_t type,
                       std::uint32_t body_len) {
  std::string out;
  put_u32_raw(out, magic);
  out.push_back(static_cast<char>(major));
  out.push_back(static_cast<char>(minor));
  out.push_back(static_cast<char>(type));
  out.push_back('\0');
  put_u32_raw(out, body_len);
  return out;
}

/// Feeds `bytes` in chunks of `chunk` and decodes exactly one frame.
WireStatus decode_chunked(const std::string& bytes, std::size_t chunk,
                          DecodedFrame& out,
                          std::size_t max_body = kWireDefaultMaxBody) {
  WireDecoder dec(max_body);
  WireStatus st = WireStatus::kNeedMore;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    dec.feed(bytes.data() + off, n);
    st = dec.next(out);
    if (st != WireStatus::kNeedMore) return st;
  }
  return st;
}

// ----- round-trip identity -----

TEST(WireRoundTripTest, RandomizedRequestsBothGraphKinds) {
  Rng rng(20260808);
  for (const GraphKind kind : {GraphKind::kDfg, GraphKind::kCdfg}) {
    const auto samples = tiny_dataset(kind, 4, 91 + static_cast<int>(kind));
    for (const Sample& s : samples) {
      RequestFrame req;
      req.request_id = rng.fork_seed();
      req.model = static_cast<std::uint32_t>(rng.uniform_int(0, 7));
      req.priority = rng.uniform_int(-1000, 1000);
      req.deadline_us = rng.bernoulli(0.3)
                            ? 0
                            : static_cast<std::int64_t>(
                                  rng.uniform_int(-100, 1'000'000));
      req.payload = encode_sample_payload(s);

      const std::string bytes = encode_request_frame(req);
      DecodedFrame got;
      ASSERT_EQ(decode_chunked(bytes, bytes.size(), got), WireStatus::kFrame);
      EXPECT_EQ(got.type, kWireTypeRequest);
      EXPECT_EQ(got.version_minor, kWireMinor);
      EXPECT_EQ(got.request.request_id, req.request_id);
      EXPECT_EQ(got.request.model, req.model);
      EXPECT_EQ(got.request.priority, req.priority);
      EXPECT_EQ(got.request.deadline_us, req.deadline_us);
      EXPECT_EQ(got.request.payload, req.payload);

      // The payload itself round-trips to a bit-identical re-encoding (the
      // decoded sample carries bitwise-equal tensors, so text re-encode is
      // a fixpoint).
      const DecodedSample decoded = decode_sample_payload(got.request.payload);
      ASSERT_TRUE(decoded.ok()) << decoded.message;
      EXPECT_EQ(encode_sample_payload(*decoded.sample), req.payload);
      EXPECT_EQ(decoded.sample->tensors.src, s.tensors.src);
      EXPECT_EQ(decoded.sample->tensors.relation_edges,
                s.tensors.relation_edges);
    }
  }
}

TEST(WireRoundTripTest, ResponsesPreserveDoubleBitPatterns) {
  // The prediction field must survive bit-exactly, including values
  // EXPECT_EQ cannot compare (NaN) — compare representations.
  const double specials[] = {0.0,
                             -0.0,
                             1.0 / 3.0,
                             -1e308,
                             5e-324,  // smallest denormal
                             std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN()};
  std::uint64_t id = 1;
  for (const double value : specials) {
    for (const WireResult result :
         {WireResult::kOk, WireResult::kExpired, WireResult::kOverCapacity,
          WireResult::kShutdown, WireResult::kOverConnectionLimit,
          WireResult::kBadPayload, WireResult::kBadModel,
          WireResult::kInternalError}) {
      ResponseFrame resp;
      resp.request_id = id++;
      resp.result = result;
      resp.prediction = value;
      const std::string bytes = encode_response_frame(resp);
      EXPECT_EQ(bytes.size(), kWireHeaderBytes + kWireResponseBodyBytes);
      DecodedFrame got;
      ASSERT_EQ(decode_chunked(bytes, bytes.size(), got), WireStatus::kFrame);
      EXPECT_EQ(got.type, kWireTypeResponse);
      EXPECT_EQ(got.response.request_id, resp.request_id);
      EXPECT_EQ(got.response.result, result);
      std::uint64_t want_bits = 0, got_bits = 0;
      std::memcpy(&want_bits, &value, sizeof(want_bits));
      std::memcpy(&got_bits, &got.response.prediction, sizeof(got_bits));
      EXPECT_EQ(got_bits, want_bits);
    }
  }
}

TEST(WireRoundTripTest, TornDeliveryEveryChunkSize) {
  const auto samples = tiny_dataset(GraphKind::kDfg, 1, 7);
  RequestFrame req;
  req.request_id = 0xDEADBEEFCAFEF00DULL;
  req.priority = -3;
  req.deadline_us = 12'345;
  req.payload = encode_sample_payload(samples[0]);
  const std::string bytes = encode_request_frame(req);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                  std::size_t{7}, std::size_t{64},
                                  bytes.size() - 1, bytes.size()}) {
    DecodedFrame got;
    ASSERT_EQ(decode_chunked(bytes, chunk, got), WireStatus::kFrame)
        << "chunk=" << chunk;
    EXPECT_EQ(got.request.request_id, req.request_id);
    EXPECT_EQ(got.request.payload, req.payload);
  }
}

TEST(WireRoundTripTest, BackToBackFramesDecodeInOrder) {
  std::string bytes;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ResponseFrame r;
    r.request_id = 100 + i;
    r.result = WireResult::kOk;
    r.prediction = static_cast<double>(i) * 1.5;
    append_response_frame(bytes, r);
  }
  WireDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  for (std::uint64_t i = 0; i < 5; ++i) {
    DecodedFrame got;
    ASSERT_EQ(dec.next(got), WireStatus::kFrame);
    EXPECT_EQ(got.response.request_id, 100 + i);
  }
  DecodedFrame extra;
  EXPECT_EQ(dec.next(extra), WireStatus::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0U);
}

// ----- version handling -----

TEST(WireVersionTest, UnknownMinorStillDecodes) {
  // A future minor revision may use the reserved byte; a current decoder
  // must still parse the frame and report the minor it saw.
  ResponseFrame resp;
  resp.request_id = 42;
  resp.result = WireResult::kOk;
  resp.prediction = 2.5;
  std::string bytes = encode_response_frame(resp);
  bytes[5] = static_cast<char>(kWireMinor + 3);  // minor version byte
  bytes[7] = static_cast<char>(0xAA);            // reserved byte in use
  WireDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  DecodedFrame got;
  ASSERT_EQ(dec.next(got), WireStatus::kFrame);
  EXPECT_EQ(got.version_minor, kWireMinor + 3);
  EXPECT_EQ(got.response.request_id, 42U);
  EXPECT_EQ(got.response.prediction, 2.5);
}

TEST(WireVersionTest, UnknownMajorRejectsCleanly) {
  ResponseFrame resp;
  resp.request_id = 42;
  std::string bytes = encode_response_frame(resp);
  bytes[4] = static_cast<char>(kWireMajor + 1);  // major version byte
  WireDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  DecodedFrame got;
  EXPECT_EQ(dec.next(got), WireStatus::kUnsupportedMajor);
  // Latched: the stream is dead even if valid bytes arrive later.
  const std::string good = encode_response_frame(ResponseFrame{});
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next(got), WireStatus::kUnsupportedMajor);
}

// ----- poison paths -----

TEST(WirePoisonTest, GarbageMagicRejects) {
  const std::string bytes = raw_header(0x0BADF00D, kWireMajor, kWireMinor,
                                       kWireTypeRequest, 0) +
                            std::string(64, 'x');
  WireDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  DecodedFrame got;
  EXPECT_EQ(dec.next(got), WireStatus::kBadMagic);
  EXPECT_EQ(dec.next(got), WireStatus::kBadMagic);  // latched
}

TEST(WirePoisonTest, UnknownFrameTypeRejects) {
  const std::string bytes =
      raw_header(kWireMagic, kWireMajor, kWireMinor, /*type=*/9, 0);
  WireDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  DecodedFrame got;
  EXPECT_EQ(dec.next(got), WireStatus::kBadType);
}

TEST(WirePoisonTest, OversizedLengthPrefixRejectsBeforeBody) {
  // The length prefix alone must trigger the reject — no body bytes ever
  // arrive (a hostile peer advertising 4 GiB must not cause an allocation).
  const std::string bytes = raw_header(kWireMagic, kWireMajor, kWireMinor,
                                       kWireTypeRequest, 0xFFFFFFF0u);
  WireDecoder dec(/*max_body_bytes=*/1024);
  dec.feed(bytes.data(), bytes.size());
  DecodedFrame got;
  EXPECT_EQ(dec.next(got), WireStatus::kOversized);
}

TEST(WirePoisonTest, ShortRequestBodyRejects) {
  // body_len below the fixed request fields can never be a valid request.
  std::string bytes = raw_header(kWireMagic, kWireMajor, kWireMinor,
                                 kWireTypeRequest,
                                 static_cast<std::uint32_t>(
                                     kWireRequestFixedBytes - 1));
  bytes += std::string(kWireRequestFixedBytes - 1, '\0');
  WireDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  DecodedFrame got;
  EXPECT_EQ(dec.next(got), WireStatus::kBadBody);
}

TEST(WirePoisonTest, ShortOrCorruptResponseBodyRejects) {
  std::string shorty = raw_header(kWireMagic, kWireMajor, kWireMinor,
                                  kWireTypeResponse, 8);
  shorty += std::string(8, '\0');
  WireDecoder dec;
  dec.feed(shorty.data(), shorty.size());
  DecodedFrame got;
  EXPECT_EQ(dec.next(got), WireStatus::kBadBody);

  // Right length, out-of-range result code.
  ResponseFrame resp;
  resp.request_id = 7;
  std::string bytes = encode_response_frame(resp);
  bytes[kWireHeaderBytes + 8] = static_cast<char>(0x7F);  // result code byte
  WireDecoder dec2;
  dec2.feed(bytes.data(), bytes.size());
  EXPECT_EQ(dec2.next(got), WireStatus::kBadBody);
}

TEST(WirePoisonTest, TruncationIsNeedMoreNotError) {
  // A partial frame is NOT an error — more bytes may come. (The endpoint
  // turns "stream ended while kNeedMore" into a plain close, not a decode
  // error; the decoder itself must never poison on truncation.)
  const auto samples = tiny_dataset(GraphKind::kDfg, 1, 3);
  RequestFrame req;
  req.request_id = 9;
  req.payload = encode_sample_payload(samples[0]);
  const std::string bytes = encode_request_frame(req);
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, kWireHeaderBytes - 1,
        kWireHeaderBytes, kWireHeaderBytes + 5, bytes.size() - 1}) {
    WireDecoder dec;
    dec.feed(bytes.data(), cut);
    DecodedFrame got;
    EXPECT_EQ(dec.next(got), WireStatus::kNeedMore) << "cut=" << cut;
    // Completing the stream afterwards recovers the frame.
    dec.feed(bytes.data() + cut, bytes.size() - cut);
    EXPECT_EQ(dec.next(got), WireStatus::kFrame) << "cut=" << cut;
    EXPECT_EQ(got.request.request_id, 9U);
  }
}

TEST(WirePoisonTest, NamesCoverAllCodes) {
  EXPECT_EQ(wire_status_name(WireStatus::kFrame), "frame");
  EXPECT_EQ(wire_status_name(WireStatus::kOversized), "oversized");
  EXPECT_EQ(wire_result_name(WireResult::kOk), "ok");
  EXPECT_EQ(wire_result_name(WireResult::kOverConnectionLimit),
            "over-connection-limit");
  EXPECT_EQ(wire_result_from_admit(AdmitStatus::kAccepted), WireResult::kOk);
  EXPECT_EQ(wire_result_from_admit(AdmitStatus::kExpired),
            WireResult::kExpired);
  EXPECT_EQ(wire_result_from_admit(AdmitStatus::kOverCapacity),
            WireResult::kOverCapacity);
  EXPECT_EQ(wire_result_from_admit(AdmitStatus::kShutdown),
            WireResult::kShutdown);
}

}  // namespace
}  // namespace gnnhls
