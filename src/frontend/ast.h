// Mini-C abstract syntax tree.
//
// This is the "behavioral program" entry point of the flow (paper Fig. 1a/b):
// synthesizable, integer-only C with scalars, fixed-size arrays, counted
// loops and if/else. Both the ldrgen-style synthetic generator (src/progen)
// and the real-world suite kernels (src/suites) produce these ASTs; the
// lowering in lower.h turns them into DFG/CDFG IR graphs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "support/check.h"

namespace gnnhls {

struct ScalarType {
  int bits = 32;
  bool is_signed = true;
};

enum class BinOpKind {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
  kLt, kGt, kLe, kGe, kEq, kNe
};

enum class UnOpKind { kNeg, kNot };

constexpr bool is_comparison(BinOpKind op) {
  return op == BinOpKind::kLt || op == BinOpKind::kGt ||
         op == BinOpKind::kLe || op == BinOpKind::kGe ||
         op == BinOpKind::kEq || op == BinOpKind::kNe;
}

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kVarRef,    // name
    kIntLit,    // value, bits
    kBinary,    // bin_op, children[0], children[1]
    kUnary,     // un_op, children[0]
    kArrayRef,  // name, children[0] = index
    kSelect,    // children[0] ? children[1] : children[2]
    kCast       // children[0] cast to bits/is_signed
  };

  Kind kind = Kind::kIntLit;
  std::string name;
  long value = 0;
  BinOpKind bin_op = BinOpKind::kAdd;
  UnOpKind un_op = UnOpKind::kNeg;
  int bits = 32;
  bool is_signed = true;
  std::vector<ExprPtr> children;

  ExprPtr clone() const;
};

// ----- expression builders -----
ExprPtr var(std::string name);
ExprPtr lit(long value, int bits = 32);
ExprPtr bin(BinOpKind op, ExprPtr lhs, ExprPtr rhs);
ExprPtr un(UnOpKind op, ExprPtr operand);
ExprPtr aref(std::string array, ExprPtr index);
ExprPtr select(ExprPtr cond, ExprPtr then_v, ExprPtr else_v);
ExprPtr cast(ExprPtr operand, int bits, bool is_signed = true);

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kDeclScalar,   // name : type = expr (expr optional)
    kDeclArray,    // name : type[array_size], zero-initialized local
    kAssign,       // name = expr
    kAssignArray,  // name[index] = expr
    kIf,           // if (expr) body else else_body
    kFor,          // for (name = loop_begin; name < loop_end; name += loop_step)
    kReturn        // return expr (expr optional)
  };

  Kind kind = Kind::kAssign;
  std::string name;
  ScalarType type;
  int array_size = 0;
  ExprPtr expr;
  ExprPtr index;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
  long loop_begin = 0;
  long loop_end = 0;
  long loop_step = 1;

  /// Constant trip count of a kFor statement.
  long trip_count() const {
    GNNHLS_CHECK(kind == Kind::kFor, "trip_count on non-loop");
    if (loop_end <= loop_begin || loop_step <= 0) return 0;
    return (loop_end - loop_begin + loop_step - 1) / loop_step;
  }
};

// ----- statement builders -----
StmtPtr decl(std::string name, ScalarType type, ExprPtr init = nullptr);
StmtPtr decl_array(std::string name, ScalarType elem, int size);
StmtPtr assign(std::string name, ExprPtr value);
StmtPtr assign_array(std::string name, ExprPtr index, ExprPtr value);
StmtPtr if_stmt(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body = {});
StmtPtr for_stmt(std::string induction, long begin, long end, long step,
                 std::vector<StmtPtr> body);
StmtPtr ret(ExprPtr value = nullptr);

struct Param {
  std::string name;
  ScalarType type;
  int array_size = 0;  // 0 = scalar
  bool is_output = false;
};

/// A single synthesizable top function (HLS designs are single-kernel).
struct Function {
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;

  /// True if the body contains any loop or branch (=> lowers to a CDFG;
  /// otherwise it is a single basic block => DFG).
  bool has_control_flow() const;

  /// Number of statements, recursively (size diagnostic).
  int statement_count() const;
};

}  // namespace gnnhls
