#include "tensor/matrix.h"

#include <algorithm>

namespace gnnhls {

Matrix Matrix::randn(int rows, int cols, Rng& rng, float stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.normal(0.0F, stddev);
  return m;
}

Matrix Matrix::column(const std::vector<float>& values) {
  Matrix m(static_cast<int>(values.size()), 1);
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

void Matrix::add_inplace(const Matrix& other) {
  GNNHLS_CHECK(same_shape(other), "add_inplace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::add_scaled_inplace(const Matrix& other, float alpha) {
  GNNHLS_CHECK(same_shape(other), "add_scaled_inplace: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

double Matrix::squared_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return s;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  GNNHLS_CHECK_EQ(a.cols(), b.rows(), "matmul: inner dimension mismatch");
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.row_ptr(i);
    float* orow = out.row_ptr(i);
    for (int k = 0; k < a.cols(); ++k) {
      const float aik = arow[k];
      if (aik == 0.0F) continue;
      const float* brow = b.row_ptr(k);
      for (int j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix matmul_transpose_a(const Matrix& a, const Matrix& b) {
  GNNHLS_CHECK_EQ(a.rows(), b.rows(), "matmul_transpose_a: dimension mismatch");
  Matrix out(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    const float* arow = a.row_ptr(k);
    const float* brow = b.row_ptr(k);
    for (int i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0F) continue;
      float* orow = out.row_ptr(i);
      for (int j = 0; j < b.cols(); ++j) orow[j] += aki * brow[j];
    }
  }
  return out;
}

Matrix matmul_transpose_b(const Matrix& a, const Matrix& b) {
  GNNHLS_CHECK_EQ(a.cols(), b.cols(), "matmul_transpose_b: dimension mismatch");
  Matrix out(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.row_ptr(i);
    float* orow = out.row_ptr(i);
    for (int j = 0; j < b.rows(); ++j) {
      const float* brow = b.row_ptr(j);
      float acc = 0.0F;
      for (int k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] += acc;
    }
  }
  return out;
}

}  // namespace gnnhls
