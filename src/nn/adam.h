// Adam optimizer (Kingma & Ba), the optimizer used by the paper (§5.1).
#pragma once

#include <vector>

#include "nn/module.h"
#include "tensor/matrix.h"

namespace gnnhls {

struct AdamConfig {
  float lr = 1e-3F;
  float beta1 = 0.9F;
  float beta2 = 0.999F;
  float eps = 1e-8F;
  float weight_decay = 0.0F;  // decoupled (AdamW-style)
  float grad_clip = 0.0F;     // 0 disables; otherwise global-norm clip
};

/// A resumable snapshot of the optimizer: first/second moments and the
/// bias-correction step counter. Exported/imported by warm-started refits
/// (train/fit_options.h) so continuing training reproduces the trajectory
/// an uninterrupted run would have taken — moments carry the gradient
/// history a fresh Adam would have to re-estimate.
struct AdamState {
  std::vector<Matrix> m;
  std::vector<Matrix> v;
  long t = 0;
};

class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config);
  explicit Adam(const Module& module, AdamConfig config = {})
      : Adam(module.parameters(), config) {}

  /// Applies one update from accumulated gradients, then zeroes them.
  void step();

  /// Data-parallel step: reduces the first `active` per-shard gradient
  /// buffers (one std::vector<Matrix> per shard, parameter-ordered, as
  /// exported by LeafGradRedirect) into the parameters' grad accumulators
  /// in shard order — a fixed reduction tree, so the update is
  /// bit-identical for any assignment of shards to threads — then applies
  /// step(). Entries beyond `active` are ignored, letting callers keep a
  /// buffer pool at full size across shorter tail steps; buffers with no
  /// entries (skipped shards) are ignored too.
  void step_merged(const std::vector<std::vector<Matrix>>& shard_grads,
                   std::size_t active = static_cast<std::size_t>(-1));

  void zero_grad();

  /// Copies out the current moments + step counter (see AdamState).
  AdamState export_state() const;

  /// Resumes from a snapshot taken by export_state() on an optimizer over
  /// the same parameter list. Shape-checked: a mismatched snapshot (different
  /// model architecture) is a caller bug, not a soft reset.
  void import_state(const AdamState& state);

  const AdamConfig& config() const { return config_; }
  void set_lr(float lr) { config_.lr = lr; }
  long step_count() const { return t_; }

 private:
  std::vector<Parameter*> params_;
  AdamConfig config_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  long t_ = 0;
};

}  // namespace gnnhls
