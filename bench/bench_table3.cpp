// Reproduces paper Table 3: node-level resource-type classification
// accuracy for four GNN models on DFGs, CDFGs and real-case applications.
//
// Protocol: a model is trained per synthetic dataset; the "Real Case"
// column evaluates the CDFG-trained classifier on the 56 unseen suite
// kernels (real applications contain control flow, hence CDFG-shaped).
//
// Paper shape: high accuracy everywhere ("local neighborhood
// characterization is enough"), RGCN best on CDFG/real case.
#include <array>
#include <map>

#include "bench_common.h"

namespace gnnhls::bench {
namespace {

// Paper Table 3 reference (accuracy), per model: DFG{DSP,LUT,FF},
// CDFG{...}, Real{...}.
const std::map<std::string, std::array<double, 9>> kPaperT3 = {
    {"GCN", {0.9379, 0.8484, 0.8866, 0.8300, 0.7701, 0.6474, 0.7970, 0.8183, 0.8682}},
    {"SAGE", {0.9306, 0.8732, 0.9209, 0.8565, 0.7841, 0.6040, 0.8739, 0.8644, 0.5588}},
    {"GIN", {0.9380, 0.8493, 0.9157, 0.7924, 0.7305, 0.6578, 0.7470, 0.7553, 0.7224}},
    {"RGCN", {0.9391, 0.8713, 0.9152, 0.8580, 0.7846, 0.6892, 0.9082, 0.8883, 0.9155}},
};

int run(int argc, const char* const* argv) {
  const BenchConfig cfg = parse_bench_config(argc, argv);
  print_header(
      "Table 3 — node-level resource-type classification accuracy", cfg);

  Timer total;
  const std::vector<Sample> dfg = build_dfg(cfg);
  const std::vector<Sample> cdfg = build_cdfg(cfg);
  const std::vector<Sample> real = build_real_world();
  print_dataset_line("DFG ", dfg);
  print_dataset_line("CDFG", cdfg);
  print_dataset_line("Real", real);
  const SplitIndices dfg_split =
      split_80_10_10(static_cast<int>(dfg.size()), cfg.seed);
  const SplitIndices cdfg_split =
      split_80_10_10(static_cast<int>(cdfg.size()), cfg.seed);

  const std::vector<GnnKind> kinds = {GnnKind::kGcn, GnnKind::kSage,
                                      GnnKind::kGin, GnnKind::kRgcn};
  // scores[kind] = {DFG, CDFG, Real}
  std::vector<std::array<NodeClassifierScores, 3>> scores(kinds.size());

  std::vector<std::function<void()>> jobs;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    jobs.push_back([&, k] {
      scores[k][0] = run_node_experiment(kinds[k], model_config(cfg),
                                         train_config(cfg), protocol(cfg),
                                         dfg, dfg_split)
                         .test;
    });
    jobs.push_back([&, k] {
      const NodeExperimentResult r = run_node_experiment(
          kinds[k], model_config(cfg), train_config(cfg), protocol(cfg),
          cdfg, cdfg_split, &real);
      scores[k][1] = r.test;
      scores[k][2] = r.transfer;
    });
  }
  run_parallel(std::move(jobs), cfg.threads);

  TextTable table({"model", "DFG DSP", "DFG LUT", "DFG FF", "CDFG DSP",
                   "CDFG LUT", "CDFG FF", "Real DSP", "Real LUT", "Real FF"});
  BenchJsonLog json_log;
  const char* score_sets[] = {"DFG", "CDFG", "Real"};
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    table.add_row({gnn_kind_name(kinds[k]),
                   TextTable::pct(scores[k][0].dsp),
                   TextTable::pct(scores[k][0].lut),
                   TextTable::pct(scores[k][0].ff),
                   TextTable::pct(scores[k][1].dsp),
                   TextTable::pct(scores[k][1].lut),
                   TextTable::pct(scores[k][1].ff),
                   TextTable::pct(scores[k][2].dsp),
                   TextTable::pct(scores[k][2].lut),
                   TextTable::pct(scores[k][2].ff)});
    for (int s = 0; s < 3; ++s) {
      const std::string base =
          std::string(gnn_kind_name(kinds[k])) + " " + score_sets[s] + " ";
      json_log.add(base + "DSP", scores[k][static_cast<std::size_t>(s)].dsp,
                   "acc");
      json_log.add(base + "LUT", scores[k][static_cast<std::size_t>(s)].lut,
                   "acc");
      json_log.add(base + "FF", scores[k][static_cast<std::size_t>(s)].ff,
                   "acc");
    }
  }
  std::cout << "\nMeasured (this substrate):\n" << table.to_string();
  write_bench_json(cfg, json_log, "table3");

  TextTable ref({"model", "DFG DSP", "DFG LUT", "DFG FF", "CDFG DSP",
                 "CDFG LUT", "CDFG FF", "Real DSP", "Real LUT", "Real FF"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const auto& p = kPaperT3.at(gnn_kind_name(kinds[k]));
    std::vector<std::string> row{gnn_kind_name(kinds[k])};
    for (double v : p) row.push_back(TextTable::pct(v));
    ref.add_row(std::move(row));
  }
  std::cout << "\nPaper reference:\n" << ref.to_string();

  ShapeChecks checks;
  const auto mean3 = [](const NodeClassifierScores& s) {
    return (s.dsp + s.lut + s.ff) / 3.0;
  };
  // High accuracy achievable on synthetic test sets.
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    checks.check(gnn_kind_name(kinds[k]) + " DFG mean accuracy > 80%",
                 mean3(scores[k][0]) > 0.80);
  }
  // DFG classification easier than CDFG (paper rows drop left to right).
  int dfg_easier = 0;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    if (mean3(scores[k][0]) >= mean3(scores[k][1])) ++dfg_easier;
  }
  checks.check("DFG accuracy >= CDFG accuracy for most models",
               dfg_easier >= 3);
  // RGCN best on the real-case generalization column (paper's bold row).
  double rgcn_real = 0.0, best_other = 0.0;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const double v = mean3(scores[k][2]);
    if (gnn_kind_name(kinds[k]) == "RGCN") {
      rgcn_real = v;
    } else {
      best_other = std::max(best_other, v);
    }
  }
  checks.check("RGCN is best or near-best on real-case generalization",
               rgcn_real >= best_other - 0.03);
  checks.summary();
  std::cout << "total wall time: " << TextTable::num(total.seconds(), 1)
            << "s\n";
  return 0;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
