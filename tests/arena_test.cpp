// Arena / ArenaScope / ArenaAllocator lifetime and alignment contracts
// (support/arena.h). The fused-executor bit-identity tests live in
// fused_test.cpp; here we pin the memory semantics the trainer, server and
// explorer wiring rely on.
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/arena.h"
#include "tensor/matrix.h"

namespace gnnhls {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndTracked) {
  Arena arena(1 << 12);
  EXPECT_EQ(arena.used_bytes(), 0U);
  EXPECT_EQ(arena.block_count(), 0U);
  std::size_t total = 0;
  for (std::size_t bytes : {1U, 7U, 16U, 33U, 256U, 4096U}) {
    void* p = arena.allocate(bytes, 16);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0U);
    // The allocation is writable over its full extent.
    std::memset(p, 0xAB, bytes);
    total += bytes;
    EXPECT_GE(arena.used_bytes(), total);
  }
  EXPECT_GE(arena.block_count(), 1U);
  EXPECT_GE(arena.reserved_bytes(), arena.used_bytes());
}

TEST(ArenaTest, ResetKeepsReservedMemoryForReuse) {
  Arena arena(1 << 12);
  // Force growth past the first block.
  for (int i = 0; i < 64; ++i) arena.allocate(1 << 10, 16);
  const std::size_t reserved = arena.reserved_bytes();
  const std::size_t blocks = arena.block_count();
  EXPECT_GT(arena.used_bytes(), 0U);

  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0U);
  EXPECT_EQ(arena.reserved_bytes(), reserved);  // nothing returned to the OS
  EXPECT_EQ(arena.block_count(), blocks);

  // The steady-state property: the same allocation pattern after reset fits
  // in the already-reserved blocks — no further growth.
  for (int i = 0; i < 64; ++i) arena.allocate(1 << 10, 16);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnBlock) {
  Arena arena(1 << 10);  // 1 KB first block
  void* p = arena.allocate(1 << 16, 16);  // 64 KB request
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5A, 1 << 16);
  EXPECT_GE(arena.reserved_bytes(), std::size_t{1} << 16);
}

TEST(ArenaScopeTest, InstallsAndRestoresThreadArena) {
  EXPECT_EQ(current_thread_arena(), nullptr);
  Arena arena;
  {
    const ArenaScope scope(&arena);
    EXPECT_EQ(current_thread_arena(), &arena);
    {
      // Same-arena nesting is a no-op: the inner scope neither reinstalls
      // nor resets (the outer scope owns the reset).
      const ArenaScope inner(&arena);
      EXPECT_EQ(current_thread_arena(), &arena);
      arena.allocate(64, 16);
    }
    EXPECT_EQ(current_thread_arena(), &arena);
    EXPECT_GT(arena.used_bytes(), 0U);  // inner scope did NOT reset
    {
      const ArenaScope null_scope(nullptr);  // disabled scope: no-op
      EXPECT_EQ(current_thread_arena(), &arena);
    }
    {
      const ArenaPause pause;
      EXPECT_EQ(current_thread_arena(), nullptr);
    }
    EXPECT_EQ(current_thread_arena(), &arena);
  }
  EXPECT_EQ(current_thread_arena(), nullptr);
  EXPECT_EQ(arena.used_bytes(), 0U);  // outer scope reset on exit
}

TEST(ArenaScopeTest, DistinctArenasStackAndRestore) {
  Arena outer_arena, inner_arena;
  const ArenaScope outer(&outer_arena);
  {
    const ArenaScope inner(&inner_arena);
    EXPECT_EQ(current_thread_arena(), &inner_arena);
  }
  EXPECT_EQ(current_thread_arena(), &outer_arena);
  EXPECT_EQ(inner_arena.used_bytes(), 0U);
}

TEST(ArenaAllocatorTest, MatrixStorageFollowsTheScope) {
  Arena arena;
  {
    const ArenaScope scope(&arena);
    Matrix m(32, 32, 1.5F);
    EXPECT_GE(arena.used_bytes(), 32U * 32U * sizeof(float));
    EXPECT_FLOAT_EQ(m(31, 31), 1.5F);
  }  // m destroyed (arena dealloc = no-op), then the scope resets
  EXPECT_EQ(arena.used_bytes(), 0U);

  // Outside any scope the same type is heap-backed; destroying it must not
  // touch the arena.
  {
    Matrix heap_m(8, 8, 2.0F);
    EXPECT_EQ(arena.used_bytes(), 0U);
  }
}

TEST(ArenaAllocatorTest, HeapMatrixOutlivesScopeAndArenaResets) {
  // The cross-ownership cases the header magic exists for: a heap-built
  // matrix destroyed while a scope is active, and matrices moved across the
  // pause boundary.
  Arena arena;
  Matrix heap_m(16, 16, 3.0F);
  {
    const ArenaScope scope(&arena);
    Matrix tmp(16, 16, 4.0F);
    heap_m = Matrix(4, 4, 5.0F);  // reassign heap matrix inside the scope:
                                  // old heap payload freed, new one arena-
                                  // backed... unless shielded:
    {
      const ArenaPause pause;
      heap_m = Matrix(4, 4, 6.0F);  // rebuilt on the heap under the pause
    }
  }
  // The arena was reset; the paused rebuild must still be intact.
  EXPECT_FLOAT_EQ(heap_m(3, 3), 6.0F);
}

TEST(ArenaAllocatorTest, ThreadScratchArenaIsPerThread) {
  Arena* main_arena = &thread_scratch_arena();
  EXPECT_EQ(main_arena, &thread_scratch_arena());  // stable per thread
  Arena* other_arena = nullptr;
  std::thread worker([&] { other_arena = &thread_scratch_arena(); });
  worker.join();
  ASSERT_NE(other_arena, nullptr);
  EXPECT_NE(other_arena, main_arena);
}

}  // namespace
}  // namespace gnnhls
