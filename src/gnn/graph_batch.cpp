#include "gnn/graph_batch.h"

#include <cstring>

#include "support/parallel.h"

namespace gnnhls {

namespace {

/// Appends src with every element shifted by offset.
void append_offset(std::vector<int>& out, const std::vector<int>& src,
                   int offset) {
  out.reserve(out.size() + src.size());
  for (int v : src) out.push_back(v + offset);
}

}  // namespace

GraphBatch GraphBatch::build(const std::vector<const GraphTensors*>& parts) {
  GNNHLS_CHECK(!parts.empty(), "GraphBatch: empty batch");
  GraphBatch batch;
  GraphTensors& m = batch.merged;
  m.num_graphs = static_cast<int>(parts.size());

  std::size_t total_nodes = 0, total_edges = 0;
  for (const GraphTensors* p : parts) {
    GNNHLS_CHECK(p != nullptr, "GraphBatch: null member");
    GNNHLS_CHECK_EQ(p->num_graphs, 1,
                    "GraphBatch: members must be single graphs");
    total_nodes += static_cast<std::size_t>(p->num_nodes);
    total_edges += p->src.size();
  }
  m.src.reserve(total_edges);
  m.dst.reserve(total_edges);
  m.gcn_coeff.reserve(total_edges);
  m.gcn_self_coeff.reserve(total_nodes);
  m.log_deg.reserve(total_nodes);
  m.graph_id.reserve(total_nodes);
  m.graph_avg_log_deg.reserve(parts.size());
  m.relation_edges.assign(kNumEdgeRelations, {});
  batch.node_offset.reserve(parts.size() + 1);
  batch.node_offset.push_back(0);

  int node_offset = 0;
  int edge_offset = 0;
  for (std::size_t g = 0; g < parts.size(); ++g) {
    const GraphTensors& p = *parts[g];
    append_offset(m.src, p.src, node_offset);
    append_offset(m.dst, p.dst, node_offset);
    m.gcn_coeff.insert(m.gcn_coeff.end(), p.gcn_coeff.begin(),
                       p.gcn_coeff.end());
    m.gcn_self_coeff.insert(m.gcn_self_coeff.end(), p.gcn_self_coeff.begin(),
                            p.gcn_self_coeff.end());
    m.log_deg.insert(m.log_deg.end(), p.log_deg.begin(), p.log_deg.end());
    m.graph_avg_log_deg.push_back(p.avg_log_deg);
    m.graph_id.insert(m.graph_id.end(),
                      static_cast<std::size_t>(p.num_nodes),
                      static_cast<int>(g));
    for (int r = 0; r < kNumEdgeRelations; ++r) {
      append_offset(m.relation_edges[static_cast<std::size_t>(r)],
                    p.relation_edges[static_cast<std::size_t>(r)],
                    edge_offset);
    }
    node_offset += p.num_nodes;
    edge_offset += static_cast<int>(p.src.size());
    batch.node_offset.push_back(node_offset);
  }
  m.num_nodes = node_offset;

  // Self-loop-augmented edge list follows the single-graph convention:
  // plain edges first, then one self loop per node.
  m.src_self = m.src;
  m.dst_self = m.dst;
  m.src_self.reserve(m.src.size() + total_nodes);
  m.dst_self.reserve(m.dst.size() + total_nodes);
  for (int i = 0; i < m.num_nodes; ++i) {
    m.src_self.push_back(i);
    m.dst_self.push_back(i);
  }

  // Whole-batch average (informational; PNA uses graph_avg_log_deg).
  float sum = 0.0F;
  for (float l : m.log_deg) sum += l;
  m.avg_log_deg =
      m.num_nodes > 0
          ? std::max(sum / static_cast<float>(m.num_nodes), 0.1F)
          : 1.0F;
  // Union-wide segment-kernel partitions (members' cached partitions index
  // member-local rows, so they cannot be spliced — the merged arrays get
  // their own plans, amortized across every layer/epoch that reuses this
  // batch).
  m.build_partitions();
  return batch;
}

Matrix GraphBatch::stack_features(const std::vector<const Matrix*>& parts) {
  GNNHLS_CHECK(!parts.empty(), "stack_features: empty batch");
  const int cols = parts.front()->cols();
  std::vector<int> offsets;
  offsets.reserve(parts.size() + 1);
  offsets.push_back(0);
  for (const Matrix* p : parts) {
    GNNHLS_CHECK(p != nullptr, "stack_features: null member");
    GNNHLS_CHECK_EQ(p->cols(), cols, "stack_features: column mismatch");
    offsets.push_back(offsets.back() + p->rows());
  }
  Matrix out(offsets.back(), cols);
  parallel_for(0, static_cast<int>(parts.size()), 1, [&](int lo, int hi) {
    for (int g = lo; g < hi; ++g) {
      const Matrix& p = *parts[static_cast<std::size_t>(g)];
      if (p.rows() == 0) continue;
      std::memcpy(out.row_ptr(offsets[static_cast<std::size_t>(g)]),
                  p.data(),
                  p.size() * sizeof(float));
    }
  });
  return out;
}

Matrix GraphBatch::stack_features(const std::vector<Matrix>& parts) {
  std::vector<const Matrix*> ptrs;
  ptrs.reserve(parts.size());
  for (const Matrix& p : parts) ptrs.push_back(&p);
  return stack_features(ptrs);
}

Matrix GraphBatch::member_rows(const Matrix& merged_rows, int g) const {
  GNNHLS_CHECK(g >= 0 && g < num_graphs(), "member_rows: bad graph index");
  GNNHLS_CHECK_EQ(merged_rows.rows(), num_nodes(),
                  "member_rows: row count does not match batch");
  const int lo = node_offset[static_cast<std::size_t>(g)];
  const int hi = node_offset[static_cast<std::size_t>(g) + 1];
  Matrix out(hi - lo, merged_rows.cols());
  if (out.rows() > 0) {
    std::memcpy(out.data(), merged_rows.row_ptr(lo),
                out.size() * sizeof(float));
  }
  return out;
}

}  // namespace gnnhls
