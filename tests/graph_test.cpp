#include <gtest/gtest.h>

#include "graph/ir_graph.h"

namespace gnnhls {
namespace {

IrNode op_node(Opcode op, int bits = 32) {
  IrNode n;
  n.opcode = op;
  n.bitwidth = bits;
  return n;
}

TEST(OpcodeTest, CategoriesMatchPaperGroups) {
  EXPECT_EQ(category_of(Opcode::kAdd), OpcodeCategory::kBinaryUnary);
  EXPECT_EQ(category_of(Opcode::kXor), OpcodeCategory::kBitwise);
  EXPECT_EQ(category_of(Opcode::kLoad), OpcodeCategory::kMemory);
  EXPECT_EQ(category_of(Opcode::kBr), OpcodeCategory::kControl);
  EXPECT_EQ(category_of(Opcode::kICmp), OpcodeCategory::kComparison);
}

TEST(OpcodeTest, EveryOpcodeHasNameAndCategory) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    const auto op = static_cast<Opcode>(i);
    EXPECT_FALSE(opcode_name(op).empty());
    EXPECT_LT(static_cast<int>(category_of(op)), kNumOpcodeCategories);
  }
}

TEST(OpcodeTest, DatapathClassification) {
  EXPECT_TRUE(is_datapath_op(Opcode::kMul));
  EXPECT_TRUE(is_datapath_op(Opcode::kLoad));
  EXPECT_FALSE(is_datapath_op(Opcode::kBr));
  EXPECT_FALSE(is_datapath_op(Opcode::kConst));
  EXPECT_FALSE(is_datapath_op(Opcode::kBlock));
}

TEST(IrGraphTest, FinalizeComputesStartOfPath) {
  IrGraph g(GraphKind::kDfg);
  const int a = g.add_node(op_node(Opcode::kConst));
  const int b = g.add_node(op_node(Opcode::kAdd));
  const int c = g.add_node(op_node(Opcode::kMul));
  g.add_edge(a, b, EdgeType::kData);
  g.add_edge(b, c, EdgeType::kData);
  g.finalize();
  EXPECT_TRUE(g.node(a).is_start_of_path);
  EXPECT_FALSE(g.node(b).is_start_of_path);
  EXPECT_FALSE(g.node(c).is_start_of_path);
}

TEST(IrGraphTest, DfgRejectsBackEdgesAndControlEdges) {
  IrGraph g(GraphKind::kDfg);
  const int a = g.add_node(op_node(Opcode::kAdd));
  const int b = g.add_node(op_node(Opcode::kMul));
  EXPECT_THROW(g.add_edge(a, b, EdgeType::kData, /*back=*/true),
               std::invalid_argument);
  EXPECT_THROW(g.add_edge(a, b, EdgeType::kControl), std::invalid_argument);
}

TEST(IrGraphTest, CdfgBackEdgeBreaksCycle) {
  IrGraph g(GraphKind::kCdfg);
  const int a = g.add_node(op_node(Opcode::kPhi));
  const int b = g.add_node(op_node(Opcode::kAdd));
  g.add_edge(a, b, EdgeType::kData);
  g.add_edge(b, a, EdgeType::kData, /*back=*/true);
  g.finalize();
  EXPECT_EQ(g.count_back_edges(), 1);
  EXPECT_TRUE(g.forward_edges_acyclic());
}

TEST(IrGraphTest, UnmarkedCycleRejectedAtFinalize) {
  IrGraph g(GraphKind::kCdfg);
  const int a = g.add_node(op_node(Opcode::kAdd));
  const int b = g.add_node(op_node(Opcode::kAdd));
  g.add_edge(a, b, EdgeType::kData);
  g.add_edge(b, a, EdgeType::kData);
  EXPECT_THROW(g.finalize(), std::invalid_argument);
}

TEST(IrGraphTest, EdgeIndexValidation) {
  IrGraph g(GraphKind::kDfg);
  g.add_node(op_node(Opcode::kAdd));
  EXPECT_THROW(g.add_edge(0, 1, EdgeType::kData), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, 0, EdgeType::kData), std::invalid_argument);
}

TEST(IrGraphTest, EmptyGraphRejected) {
  IrGraph g(GraphKind::kDfg);
  EXPECT_THROW(g.finalize(), std::invalid_argument);
}

TEST(IrGraphTest, MutationAfterFinalizeRejected) {
  IrGraph g(GraphKind::kDfg);
  g.add_node(op_node(Opcode::kAdd));
  g.finalize();
  EXPECT_THROW(g.add_node(op_node(Opcode::kAdd)), std::invalid_argument);
}

TEST(IrGraphTest, RelationIdEncodesTypeAndBackEdge) {
  IrGraph g(GraphKind::kCdfg);
  const int a = g.add_node(op_node(Opcode::kAdd));
  const int b = g.add_node(op_node(Opcode::kAdd));
  g.add_edge(a, b, EdgeType::kData);
  g.add_edge(b, a, EdgeType::kControl, /*back=*/true);
  g.finalize();
  EXPECT_EQ(g.edge_relation()[0], static_cast<int>(EdgeType::kData) * 2);
  EXPECT_EQ(g.edge_relation()[1],
            static_cast<int>(EdgeType::kControl) * 2 + 1);
  EXPECT_LT(g.edge_relation()[1], kNumEdgeRelations);
}

TEST(IrGraphTest, TopologicalOrderRespectsForwardEdges) {
  IrGraph g(GraphKind::kCdfg);
  const int a = g.add_node(op_node(Opcode::kConst));
  const int b = g.add_node(op_node(Opcode::kAdd));
  const int c = g.add_node(op_node(Opcode::kMul));
  g.add_edge(a, b, EdgeType::kData);
  g.add_edge(b, c, EdgeType::kData);
  g.add_edge(c, b, EdgeType::kData, /*back=*/true);
  g.finalize();
  const auto order = g.topological_order();
  std::vector<int> pos(3);
  for (int i = 0; i < 3; ++i) pos[static_cast<std::size_t>(order[i])] = i;
  EXPECT_LT(pos[static_cast<std::size_t>(a)], pos[static_cast<std::size_t>(b)]);
  EXPECT_LT(pos[static_cast<std::size_t>(b)], pos[static_cast<std::size_t>(c)]);
}

TEST(IrGraphTest, DegreesCountAllEdges) {
  IrGraph g(GraphKind::kCdfg);
  const int a = g.add_node(op_node(Opcode::kConst));
  const int b = g.add_node(op_node(Opcode::kAdd));
  g.add_edge(a, b, EdgeType::kData);
  g.add_edge(a, b, EdgeType::kMemory);
  g.finalize();
  EXPECT_EQ(g.out_degree()[static_cast<std::size_t>(a)], 2);
  EXPECT_EQ(g.in_degree()[static_cast<std::size_t>(b)], 2);
}

TEST(IrGraphTest, BitwidthRangeEnforced) {
  IrGraph g(GraphKind::kDfg);
  IrNode n = op_node(Opcode::kAdd, 300);
  EXPECT_THROW(g.add_node(n), std::invalid_argument);
}

}  // namespace
}  // namespace gnnhls
