// Fused message-passing executor: bit-identity against the unfused
// reference composition at every thread-pool width, on adversarial edge
// layouts (power-law hub, empty segments, single node), through every
// encoder that routes aggregation via gnn/mp_executor.h, and through
// finite-difference gradient checks of the fused backward.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/dataset.h"
#include "gnn/encoders.h"
#include "gnn/feature_encoder.h"
#include "gnn/mp_executor.h"
#include "grad_check.h"
#include "support/parallel.h"
#include "tensor/autograd.h"

namespace gnnhls {
namespace {

/// Restores the default global pool when a test resizes it.
struct PoolGuard {
  explicit PoolGuard(int threads) { ThreadPool::set_global_threads(threads); }
  ~PoolGuard() { ThreadPool::set_global_threads(0); }
};

/// Deterministic dense fill — reproducible across runs without an RNG.
Matrix dense(int rows, int cols, int salt) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m(r, c) = std::sin(0.37F * static_cast<float>(r * cols + c + salt)) +
                0.05F * static_cast<float>(salt);
    }
  }
  return m;
}

struct Layout {
  const char* name;
  int nodes;
  std::vector<int> src, dst;
};

/// The layouts the fixed-order partition reduction has to survive: a hub
/// whose destination segment dwarfs the rest, segments that are empty on
/// both endpoints (isolated nodes) plus duplicate edges, and the degenerate
/// one-node graph of repeated self loops.
std::vector<Layout> edge_layouts() {
  Layout hub{"power_law_hub", 24, {}, {}};
  for (int u = 1; u < 24; ++u) {  // fan-in: every node feeds the hub
    hub.src.push_back(u);
    hub.dst.push_back(0);
  }
  for (int i = 0; i + 1 < 24; ++i) {  // chain
    hub.src.push_back(i);
    hub.dst.push_back(i + 1);
  }
  for (int u = 1; u <= 12; ++u) {  // fan-out from the hub
    hub.src.push_back(0);
    hub.dst.push_back(u);
  }

  Layout sparse{"empty_segments",
                16,
                {3, 3, 4, 5, 8, 6, 7, 8, 8},
                {4, 4, 5, 3, 3, 6, 8, 8, 8}};

  Layout single{"single_node", 1, {0, 0, 0}, {0, 0, 0}};

  return {hub, sparse, single};
}

std::vector<float> edge_coeffs(std::size_t edges) {
  std::vector<float> coeff(edges);
  for (std::size_t e = 0; e < edges; ++e) {
    coeff[e] = 0.25F * std::sin(0.7F * static_cast<float>(e) + 1.0F);
  }
  return coeff;
}

struct RunResult {
  Matrix out;
  Matrix x_grad;
  Matrix w_grad;  // matmul variant only
};

RunResult run_gather_scatter(const Layout& layout, const Matrix& x,
                             const std::vector<float>& coeff, bool fused) {
  const SegmentPartitionPtr sp =
      make_segment_partition(layout.src, layout.nodes);
  const SegmentPartitionPtr dp =
      make_segment_partition(layout.dst, layout.nodes);
  const Var leaf = make_leaf(x, /*requires_grad=*/true);
  Tape t;
  Var out;
  if (fused) {
    out = t.fused_gather_scatter_add(leaf, layout.src, layout.dst,
                                     layout.nodes, sp, dp, coeff);
  } else {
    Var msgs = t.gather_rows(leaf, layout.src, sp);
    if (!coeff.empty()) msgs = t.scale_rows(msgs, coeff);
    out = t.scatter_add_rows(msgs, layout.dst, layout.nodes, dp);
  }
  t.backward(t.sum_all(t.mul(out, out)));  // nonlinear loss: grads carry out
  return {out.value(), leaf.grad(), Matrix()};
}

RunResult run_gather_matmul_scatter(const Layout& layout, const Matrix& x,
                                    const Matrix& w, bool fused) {
  const SegmentPartitionPtr sp =
      make_segment_partition(layout.src, layout.nodes);
  const SegmentPartitionPtr dp =
      make_segment_partition(layout.dst, layout.nodes);
  const Var xl = make_leaf(x, /*requires_grad=*/true);
  const Var wl = make_leaf(w, /*requires_grad=*/true);
  Tape t;
  const Var out =
      fused ? t.fused_gather_matmul_scatter_add(xl, wl, layout.src, layout.dst,
                                                layout.nodes, sp, dp)
            : t.scatter_add_rows(t.matmul(t.gather_rows(xl, layout.src, sp),
                                          wl),
                                 layout.dst, layout.nodes, dp);
  t.backward(t.sum_all(t.mul(out, out)));
  return {out.value(), xl.grad(), wl.grad()};
}

// ----- kernel-level bit-identity -----

TEST(FusedKernelTest, GatherScatterBitIdenticalAcrossThreads) {
  for (const Layout& layout : edge_layouts()) {
    const Matrix x = dense(layout.nodes, 5, 3);
    for (const bool with_coeff : {false, true}) {
      const std::vector<float> coeff =
          with_coeff ? edge_coeffs(layout.src.size()) : std::vector<float>();
      RunResult ref;
      {
        PoolGuard pool(1);
        ref = run_gather_scatter(layout, x, coeff, /*fused=*/false);
      }
      for (const int threads : {1, 2, 4, 8}) {
        PoolGuard pool(threads);
        const std::string ctx = std::string(layout.name) + " coeff=" +
                                (with_coeff ? "y" : "n") + " threads=" +
                                std::to_string(threads);
        const RunResult fused =
            run_gather_scatter(layout, x, coeff, /*fused=*/true);
        EXPECT_TRUE(fused.out == ref.out) << ctx;
        EXPECT_TRUE(fused.x_grad == ref.x_grad) << ctx;
        // The unfused composition itself is thread-invariant too.
        const RunResult unfused =
            run_gather_scatter(layout, x, coeff, /*fused=*/false);
        EXPECT_TRUE(unfused.out == ref.out) << ctx;
        EXPECT_TRUE(unfused.x_grad == ref.x_grad) << ctx;
      }
    }
  }
}

TEST(FusedKernelTest, GatherMatmulScatterBitIdenticalAcrossThreads) {
  for (const Layout& layout : edge_layouts()) {
    const Matrix x = dense(layout.nodes, 6, 7);
    const Matrix w = dense(6, 5, 11);
    RunResult ref;
    {
      PoolGuard pool(1);
      ref = run_gather_matmul_scatter(layout, x, w, /*fused=*/false);
    }
    for (const int threads : {1, 2, 4, 8}) {
      PoolGuard pool(threads);
      const std::string ctx =
          std::string(layout.name) + " threads=" + std::to_string(threads);
      const RunResult fused =
          run_gather_matmul_scatter(layout, x, w, /*fused=*/true);
      EXPECT_TRUE(fused.out == ref.out) << ctx;
      EXPECT_TRUE(fused.x_grad == ref.x_grad) << ctx;
      EXPECT_TRUE(fused.w_grad == ref.w_grad) << ctx;
      const RunResult unfused =
          run_gather_matmul_scatter(layout, x, w, /*fused=*/false);
      EXPECT_TRUE(unfused.out == ref.out) << ctx;
      EXPECT_TRUE(unfused.x_grad == ref.x_grad) << ctx;
      EXPECT_TRUE(unfused.w_grad == ref.w_grad) << ctx;
    }
  }
}

// ----- gradient checks through the fused backward -----

TEST(FusedGradientTest, GatherScatterGradientMatchesFiniteDifference) {
  const Layout layout = edge_layouts()[1];  // empty_segments
  const std::vector<float> coeff = edge_coeffs(layout.src.size());
  const SegmentPartitionPtr sp =
      make_segment_partition(layout.src, layout.nodes);
  const SegmentPartitionPtr dp =
      make_segment_partition(layout.dst, layout.nodes);
  testing::expect_gradient_matches(
      dense(layout.nodes, 3, 5), [&](Tape& t, const Var& v) {
        const Var out = t.fused_gather_scatter_add(
            v, layout.src, layout.dst, layout.nodes, sp, dp, coeff);
        return t.sum_all(t.mul(out, out));
      });
}

TEST(FusedGradientTest, GatherMatmulScatterGradientsMatchFiniteDifference) {
  const Layout layout = edge_layouts()[1];
  const SegmentPartitionPtr sp =
      make_segment_partition(layout.src, layout.nodes);
  const SegmentPartitionPtr dp =
      make_segment_partition(layout.dst, layout.nodes);
  const Matrix x = dense(layout.nodes, 3, 13);
  const Matrix w = dense(3, 4, 17);

  // d/dx with the weight held constant.
  testing::expect_gradient_matches(x, [&](Tape& t, const Var& v) {
    const Var out = t.fused_gather_matmul_scatter_add(
        v, make_leaf(w, false), layout.src, layout.dst, layout.nodes, sp, dp);
    return t.sum_all(t.mul(out, out));
  });
  // d/dw with the features held constant.
  testing::expect_gradient_matches(w, [&](Tape& t, const Var& v) {
    const Var out = t.fused_gather_matmul_scatter_add(
        make_leaf(x, false), v, layout.src, layout.dst, layout.nodes, sp, dp);
    return t.sum_all(t.mul(out, out));
  });
}

// ----- fallback: hand-assembled tensors without cached partitions -----

TEST(FusedFallbackTest, MissingPartitionsFallBackToReference) {
  GraphTensors gt;  // no build_partitions(): src_part/dst_part stay null
  gt.num_nodes = 5;
  gt.src = {0, 1, 2, 3, 4, 0};
  gt.dst = {1, 2, 3, 4, 0, 2};
  const Matrix x = dense(gt.num_nodes, 4, 19);

  const auto run = [&](bool fused, bool mean) {
    const Var leaf = make_leaf(x, true);
    Tape t;
    const Var out = mean ? mp_aggregate_mean(t, gt, leaf, fused)
                         : mp_aggregate_sum(t, gt, leaf, fused);
    t.backward(t.sum_all(t.mul(out, out)));
    return RunResult{out.value(), leaf.grad(), Matrix()};
  };
  for (const bool mean : {false, true}) {
    const RunResult ref = run(false, mean);
    const RunResult fb = run(true, mean);  // silently routes to reference
    EXPECT_TRUE(fb.out == ref.out);
    EXPECT_TRUE(fb.x_grad == ref.x_grad);
  }
}

TEST(FusedFallbackTest, EmptyEdgeSetYieldsZeros) {
  GraphTensors gt;
  gt.num_nodes = 4;
  const Matrix x = dense(gt.num_nodes, 3, 23);
  Tape t;
  const Var out = mp_aggregate_sum(t, gt, t.leaf(x), /*fused=*/true);
  EXPECT_EQ(out.rows(), 4);
  EXPECT_EQ(out.cols(), 3);
  EXPECT_EQ(out.value().squared_norm(), 0.0);
}

// ----- encoder-level bit-identity -----

/// `fused` must be a pure execution knob for every encoder: bit-identical
/// outputs and parameter gradients at any thread count. Non-fusable kinds
/// (GAT, PNA, FiLM's modulated messages) ignore the flag, so the identity
/// holds trivially there and substantively everywhere else.
class FusedEncoderTest : public ::testing::TestWithParam<GnnKind> {};

const Sample& fused_test_sample() {
  static const Sample sample = make_sample(
      generate_cdfg_program(11), GraphKind::kCdfg, HlsConfig{}, "fused-test");
  return sample;
}

TEST_P(FusedEncoderTest, FusedMatchesUnfusedBitwise) {
  const Sample& sample = fused_test_sample();
  const Matrix feats =
      InputFeatureBuilder::build(sample.graph(), Approach::kOffTheShelf);

  struct EncRun {
    Matrix out;
    std::vector<Matrix> grads;
  };
  const auto run_enc = [&](bool fused) {
    Rng rng(7);
    EncoderConfig cfg;
    cfg.in_dim = InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
    cfg.hidden = 8;
    cfg.layers = 2;
    cfg.fused = fused;
    const auto enc = make_encoder(GetParam(), cfg, rng);
    Tape tape;
    Rng drop(1);
    const Var h =
        enc->encode(tape, sample.tensors, tape.leaf(feats), drop, false);
    tape.backward(tape.sum_all(tape.mul(h, h)));
    EncRun r;
    r.out = h.value();
    for (const auto* p : enc->parameters()) r.grads.push_back(p->var().grad());
    return r;
  };

  EncRun ref;
  {
    PoolGuard pool(1);
    ref = run_enc(/*fused=*/false);
  }
  for (const int threads : {1, 2, 4, 8}) {
    PoolGuard pool(threads);
    const EncRun fused = run_enc(/*fused=*/true);
    EXPECT_TRUE(fused.out == ref.out) << "threads=" << threads;
    ASSERT_EQ(fused.grads.size(), ref.grads.size());
    for (std::size_t i = 0; i < ref.grads.size(); ++i) {
      EXPECT_TRUE(fused.grads[i] == ref.grads[i])
          << "parameter " << i << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FusedEncoderTest, ::testing::ValuesIn(all_gnn_kinds()),
    [](const ::testing::TestParamInfo<GnnKind>& info) {
      std::string name = gnn_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gnnhls
