// Opcode vocabulary for IR graphs.
//
// Mirrors the LLVM-flavoured node opcodes that Vitis HLS exposes in its IR
// dumps (paper Table 1: "Opcode of the node — load, add, mux, xor, icmp...").
// Each opcode belongs to an opcode category ("Opcode categories based on
// LLVM — binary_unary, bitwise, memory, etc."), which is itself a node
// feature.
#pragma once

#include <array>
#include <string_view>

namespace gnnhls {

enum class Opcode : int {
  // arithmetic (binary_unary)
  kAdd = 0,
  kSub,
  kMul,
  kSDiv,
  kUDiv,
  kSRem,
  // bitwise
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  // comparison
  kICmp,
  // selection
  kSelect,
  kMux,
  kPhi,
  // memory
  kLoad,
  kStore,
  kAlloca,
  kGetElementPtr,
  // casts / bit manipulation
  kZExt,
  kSExt,
  kTrunc,
  kPartSelect,
  kBitConcat,
  // control
  kBr,
  kRet,
  kCall,
  // non-operation nodes
  kConst,
  kReadPort,
  kWritePort,
  kBlock,
  kCount  // sentinel
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kCount);

enum class OpcodeCategory : int {
  kBinaryUnary = 0,
  kBitwise,
  kComparison,
  kSelection,
  kMemory,
  kCast,
  kControl,
  kConstPort,
  kBlockCat,
  kCount
};

inline constexpr int kNumOpcodeCategories =
    static_cast<int>(OpcodeCategory::kCount);

constexpr OpcodeCategory category_of(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kSDiv:
    case Opcode::kUDiv:
    case Opcode::kSRem:
      return OpcodeCategory::kBinaryUnary;
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kLShr:
    case Opcode::kAShr:
      return OpcodeCategory::kBitwise;
    case Opcode::kICmp:
      return OpcodeCategory::kComparison;
    case Opcode::kSelect:
    case Opcode::kMux:
    case Opcode::kPhi:
      return OpcodeCategory::kSelection;
    case Opcode::kLoad:
    case Opcode::kStore:
    case Opcode::kAlloca:
    case Opcode::kGetElementPtr:
      return OpcodeCategory::kMemory;
    case Opcode::kZExt:
    case Opcode::kSExt:
    case Opcode::kTrunc:
    case Opcode::kPartSelect:
    case Opcode::kBitConcat:
      return OpcodeCategory::kCast;
    case Opcode::kBr:
    case Opcode::kRet:
    case Opcode::kCall:
      return OpcodeCategory::kControl;
    case Opcode::kConst:
    case Opcode::kReadPort:
    case Opcode::kWritePort:
      return OpcodeCategory::kConstPort;
    case Opcode::kBlock:
    case Opcode::kCount:
      return OpcodeCategory::kBlockCat;
  }
  return OpcodeCategory::kBlockCat;
}

constexpr std::string_view opcode_name(Opcode op) {
  constexpr std::array<std::string_view, kNumOpcodes> names = {
      "add",  "sub",   "mul",   "sdiv",  "udiv",       "srem",  "and",
      "or",   "xor",   "shl",   "lshr",  "ashr",       "icmp",  "select",
      "mux",  "phi",   "load",  "store", "alloca",     "gep",   "zext",
      "sext", "trunc", "partselect",     "bitconcat",  "br",    "ret",
      "call", "const", "read_port",      "write_port", "block"};
  return names[static_cast<std::size_t>(op)];
}

/// True for opcodes that map to datapath hardware (candidates for
/// DSP/LUT/FF resources); control/const/block nodes use nothing by
/// themselves.
constexpr bool is_datapath_op(Opcode op) {
  switch (category_of(op)) {
    case OpcodeCategory::kBinaryUnary:
    case OpcodeCategory::kBitwise:
    case OpcodeCategory::kComparison:
    case OpcodeCategory::kSelection:
    case OpcodeCategory::kMemory:
    case OpcodeCategory::kCast:
      return true;
    default:
      return false;
  }
}

}  // namespace gnnhls
