// Binding, implementation and report estimation — the back half of the HLS
// simulator.
//
// `run_hls_flow` is the stand-in for "synthesized by Vitis HLS and
// implemented by Vitis" (paper §5.1). It produces:
//
//   * `implemented` — the ground-truth QoR labels (DSP/LUT/FF/CP after
//     binding with functional-unit sharing, FSM/control overhead, glue
//     logic, and a utilization/fanout-aware routing-delay model), and
//   * `reported` — the *pre-implementation estimate* an HLS synthesis
//     report would print. Like the real tool it ignores cross-state
//     sharing and post-synthesis optimization and assumes timing will
//     close near the clock target, so it is systematically wrong in the
//     same directions the paper measures (Table 5 "HLS" column: LUT/FF
//     grossly overestimated, CP optimistic).
//
// It also writes per-node resource annotations (type bits + attributed
// values) into the graph — the "auxiliary information from intermediate HLS
// results" consumed by the knowledge-rich approach and used as node-level
// labels by the knowledge-infused approach.
#pragma once

#include "frontend/lower.h"
#include "hls/scheduler.h"

namespace gnnhls {

struct BindingStats {
  int sharable_ops = 0;
  int fu_instances = 0;
  double mux_lut = 0.0;
};

struct HlsOutcome {
  QualityOfResult implemented;
  QualityOfResult reported;
  ProgramSchedule schedule;
  BindingStats binding;
  double latency_cycles = 0.0;
};

/// Runs scheduling + binding + implementation + report estimation and
/// annotates every node of prog.graph with its resource types/values.
HlsOutcome run_hls_flow(LoweredProgram& prog, const HlsConfig& cfg = {});

}  // namespace gnnhls
