#include "core/predictor.h"

#include <algorithm>

#include "gnn/graph_batch.h"

namespace gnnhls {

namespace {

/// Step learning-rate decay: full rate for the first 60% of epochs, then
/// 0.3x, then 0.1x for the last 15% (stabilizes the best-epoch selection).
float lr_at_epoch(float base_lr, int epoch, int total_epochs) {
  const double progress =
      static_cast<double>(epoch) / std::max(total_epochs, 1);
  if (progress < 0.6) return base_lr;
  if (progress < 0.85) return base_lr * 0.3F;
  return base_lr * 0.1F;
}

/// Batch views of samples[chunk]: tensors for GraphBatch::build and row
/// matrices (features or labels) for GraphBatch::stack_features.
std::vector<const GraphTensors*> chunk_tensors(
    const std::vector<Sample>& samples, const std::vector<int>& order,
    std::size_t begin, std::size_t end) {
  std::vector<const GraphTensors*> parts;
  parts.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    parts.push_back(&samples[static_cast<std::size_t>(order[i])].tensors);
  }
  return parts;
}

std::vector<const Matrix*> chunk_rows(const std::vector<Matrix>& per_sample,
                                      const std::vector<int>& order,
                                      std::size_t begin, std::size_t end) {
  std::vector<const Matrix*> parts;
  parts.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    parts.push_back(&per_sample[static_cast<std::size_t>(order[i])]);
  }
  return parts;
}

/// One training epoch over `order`, shared by every fit loop. batch_size<=1
/// runs the legacy per-graph tape with gradient accumulation every
/// batch_graphs (bit-for-bit the pre-batching trajectory); otherwise each
/// [begin,end) chunk of `order` is one mini-batch tape and optimizer step.
/// per_graph(idx) / per_batch(begin,end) build the tape and run backward.
template <typename PerGraph, typename PerBatch>
void run_epoch(const std::vector<int>& order, int batch_size,
               int batch_graphs, Adam& opt, PerGraph&& per_graph,
               PerBatch&& per_batch) {
  if (batch_size <= 1) {
    int accumulated = 0;
    for (int idx : order) {
      per_graph(idx);
      if (++accumulated >= batch_graphs) {
        opt.step();
        accumulated = 0;
      }
    }
    if (accumulated > 0) opt.step();
  } else {
    const std::size_t bs = static_cast<std::size_t>(batch_size);
    for (std::size_t pos = 0; pos < order.size(); pos += bs) {
      per_batch(pos, std::min(pos + bs, order.size()));
      opt.step();
    }
  }
}

// ----- shared classifier training (QorPredictor -I and NodeTypePredictor) --

struct ClassifierData {
  std::vector<Matrix> feats, labels;  // indexed by sample position
};

ClassifierData build_classifier_data(const std::vector<Sample>& samples,
                                     const std::vector<int>& idx) {
  ClassifierData data;
  data.feats.resize(samples.size());
  data.labels.resize(samples.size());
  for (int i : idx) {
    const Sample& s = samples[static_cast<std::size_t>(i)];
    data.feats[static_cast<std::size_t>(i)] =
        InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
    data.labels[static_cast<std::size_t>(i)] =
        InputFeatureBuilder::node_type_labels(s.graph());
  }
  return data;
}

void run_classifier_epoch(const NodeClassifier& classifier, Adam& opt,
                          const std::vector<Sample>& samples,
                          const ClassifierData& data,
                          const std::vector<int>& order,
                          const TrainConfig& tc, Rng& dropout_rng) {
  run_epoch(
      order, tc.batch_size, tc.batch_graphs, opt,
      [&](int idx) {
        const Sample& s = samples[static_cast<std::size_t>(idx)];
        Tape tape;
        const Var logits = classifier.forward(
            tape, s.tensors, data.feats[static_cast<std::size_t>(idx)],
            dropout_rng, true);
        tape.backward(tape.bce_with_logits_loss(
            logits, data.labels[static_cast<std::size_t>(idx)]));
      },
      [&](std::size_t pos, std::size_t end) {
        const GraphBatch batch =
            GraphBatch::build(chunk_tensors(samples, order, pos, end));
        const Matrix batch_feats = GraphBatch::stack_features(
            chunk_rows(data.feats, order, pos, end));
        const Matrix batch_labels = GraphBatch::stack_features(
            chunk_rows(data.labels, order, pos, end));
        Tape tape;
        const Var logits = classifier.forward(tape, batch.merged,
                                              batch_feats, dropout_rng,
                                              true);
        tape.backward(tape.bce_with_logits_loss(logits, batch_labels));
      });
}

}  // namespace

std::vector<Matrix> snapshot_parameters(const Module& m) {
  std::vector<Matrix> snap;
  snap.reserve(m.parameters().size());
  for (const Parameter* p : m.parameters()) snap.push_back(p->value());
  return snap;
}

void restore_parameters(Module& m, const std::vector<Matrix>& snap) {
  GNNHLS_CHECK_EQ(snap.size(), m.parameters().size(),
                  "parameter snapshot shape mismatch");
  for (std::size_t i = 0; i < snap.size(); ++i) {
    m.parameters()[i]->mutable_value() = snap[i];
  }
}

QorPredictor::QorPredictor(Approach approach, ModelConfig model_cfg,
                           TrainConfig train_cfg, InfusedInference infused)
    : approach_(approach),
      model_cfg_(model_cfg),
      train_cfg_(train_cfg),
      infused_(infused) {}

Matrix QorPredictor::training_features(const Sample& s) const {
  // -I trains on ground-truth type bits (knowledge infusion).
  return InputFeatureBuilder::build(s.graph(), approach_);
}

Matrix QorPredictor::inference_features(const Sample& s) const {
  if (approach_ != Approach::kKnowledgeInfused ||
      infused_ == InfusedInference::kOracle) {
    return InputFeatureBuilder::build(s.graph(), approach_);
  }
  // Hierarchical inference: self-inferred resource types replace labels.
  GNNHLS_CHECK(classifier_ != nullptr, "predict before fit");
  const Matrix base = InputFeatureBuilder::build(
      s.graph(), Approach::kOffTheShelf);
  const auto inferred = classifier_->infer_types(s.tensors, base);
  return InputFeatureBuilder::build(s.graph(), approach_, &inferred);
}

void QorPredictor::fit_classifier(const std::vector<Sample>& samples,
                                  const std::vector<int>& train_idx) {
  Rng init_rng(train_cfg_.seed * 7919 + 13);
  classifier_ = std::make_unique<NodeClassifier>(
      model_cfg_, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf),
      init_rng);
  Adam opt(*classifier_, AdamConfig{.lr = train_cfg_.lr,
                                    .weight_decay = train_cfg_.weight_decay,
                                    .grad_clip = train_cfg_.grad_clip});
  Rng order_rng(train_cfg_.seed * 31 + 7);
  Rng dropout_rng(train_cfg_.seed * 17 + 3);
  std::vector<int> order = train_idx;
  const ClassifierData data = build_classifier_data(samples, train_idx);

  for (int epoch = 0; epoch < train_cfg_.epochs; ++epoch) {
    opt.set_lr(lr_at_epoch(train_cfg_.lr, epoch, train_cfg_.epochs));
    order_rng.shuffle(order);
    run_classifier_epoch(*classifier_, opt, samples, data, order, train_cfg_,
                         dropout_rng);
  }
}

double QorPredictor::fit(const std::vector<Sample>& samples,
                         const SplitIndices& split, Metric metric) {
  metric_ = metric;
  GNNHLS_CHECK(!split.train.empty() && !split.val.empty(),
               "fit: empty train/val split");
  tune_malloc_for_tensor_workloads();  // epochs of tape churn ahead

  if (approach_ == Approach::kKnowledgeInfused &&
      infused_ == InfusedInference::kSelfInferred) {
    fit_classifier(samples, split.train);
  }

  Rng init_rng(train_cfg_.seed * 104729 + static_cast<int>(metric));
  regressor_ = std::make_unique<GraphRegressor>(
      model_cfg_, InputFeatureBuilder::feature_dim(approach_), init_rng);
  Adam opt(*regressor_, AdamConfig{.lr = train_cfg_.lr,
                                   .weight_decay = train_cfg_.weight_decay,
                                   .grad_clip = train_cfg_.grad_clip});

  // Pre-encode targets and cache training features.
  std::vector<Matrix> feats(samples.size());
  std::vector<float> targets(samples.size(), 0.0F);
  for (int idx : split.train) {
    const Sample& s = samples[static_cast<std::size_t>(idx)];
    feats[static_cast<std::size_t>(idx)] = training_features(s);
    targets[static_cast<std::size_t>(idx)] =
        encode_target(metric_of(s.truth, metric), metric);
  }

  Rng order_rng(train_cfg_.seed * 31 + 1);
  Rng dropout_rng(train_cfg_.seed * 17 + 2);
  std::vector<int> order = split.train;
  double best_val = std::numeric_limits<double>::infinity();
  std::vector<Matrix> best_params;

  for (int epoch = 0; epoch < train_cfg_.epochs; ++epoch) {
    opt.set_lr(lr_at_epoch(train_cfg_.lr, epoch, train_cfg_.epochs));
    order_rng.shuffle(order);
    run_epoch(
        order, train_cfg_.batch_size, train_cfg_.batch_graphs, opt,
        [&](int idx) {
          const Sample& s = samples[static_cast<std::size_t>(idx)];
          Tape tape;
          const Var pred =
              regressor_->forward(tape, s.tensors,
                                  feats[static_cast<std::size_t>(idx)],
                                  dropout_rng, true);
          Matrix target(1, 1, targets[static_cast<std::size_t>(idx)]);
          tape.backward(tape.mse_loss(pred, target));
        },
        [&](std::size_t pos, std::size_t end) {
          // Forward yields one prediction row per member graph; MSE
          // averages over the batch.
          const GraphBatch batch =
              GraphBatch::build(chunk_tensors(samples, order, pos, end));
          const Matrix batch_feats =
              GraphBatch::stack_features(chunk_rows(feats, order, pos, end));
          Matrix target(static_cast<int>(end - pos), 1);
          for (std::size_t i = pos; i < end; ++i) {
            target(static_cast<int>(i - pos), 0) =
                targets[static_cast<std::size_t>(order[i])];
          }
          Tape tape;
          const Var pred = regressor_->forward(tape, batch.merged,
                                               batch_feats, dropout_rng,
                                               true);
          tape.backward(tape.mse_loss(pred, target));
        });

    // Validation model selection. NOTE: -I validates through the full
    // hierarchical path (classifier bits), matching deployment.
    const double val = evaluate_mape(samples, split.val);
    if (val < best_val) {
      best_val = val;
      best_params = snapshot_parameters(*regressor_);
    }
  }
  if (!best_params.empty()) restore_parameters(*regressor_, best_params);
  return best_val;
}

double QorPredictor::predict(const Sample& sample) const {
  GNNHLS_CHECK(regressor_ != nullptr, "predict before fit");
  const float encoded =
      regressor_->predict(sample.tensors, inference_features(sample));
  return decode_target(encoded, metric_);
}

double QorPredictor::evaluate_mape(const std::vector<Sample>& samples,
                                   const std::vector<int>& idx) const {
  GNNHLS_CHECK(regressor_ != nullptr, "evaluate before fit");
  std::vector<double> pred, truth;
  pred.reserve(idx.size());
  truth.reserve(idx.size());
  const std::size_t bs =
      static_cast<std::size_t>(std::max(train_cfg_.batch_size, 1));
  if (bs <= 1) {
    for (int i : idx) {
      const Sample& s = samples[static_cast<std::size_t>(i)];
      pred.push_back(predict(s));
      truth.push_back(metric_of(s.truth, metric_));
    }
  } else {
    // Batched inference: features may be per-sample (hierarchical -I path
    // runs the classifier per sample) but the regressor runs per batch.
    for (std::size_t pos = 0; pos < idx.size(); pos += bs) {
      const std::size_t end = std::min(pos + bs, idx.size());
      std::vector<Matrix> feats;
      std::vector<const GraphTensors*> parts;
      std::vector<const Matrix*> fparts;
      feats.reserve(end - pos);
      parts.reserve(end - pos);
      for (std::size_t i = pos; i < end; ++i) {
        const Sample& s = samples[static_cast<std::size_t>(idx[i])];
        feats.push_back(inference_features(s));
        parts.push_back(&s.tensors);
        truth.push_back(metric_of(s.truth, metric_));
      }
      fparts.reserve(feats.size());
      for (const Matrix& f : feats) fparts.push_back(&f);
      const GraphBatch batch = GraphBatch::build(parts);
      const std::vector<float> encoded = regressor_->predict_batch(
          batch.merged, GraphBatch::stack_features(fparts));
      for (float e : encoded) pred.push_back(decode_target(e, metric_));
    }
  }
  return mape(pred, truth);
}

// ----- NodeTypePredictor -----

NodeTypePredictor::NodeTypePredictor(ModelConfig model_cfg,
                                     TrainConfig train_cfg)
    : model_cfg_(model_cfg), train_cfg_(train_cfg) {}

double NodeTypePredictor::fit(const std::vector<Sample>& samples,
                              const SplitIndices& split) {
  tune_malloc_for_tensor_workloads();
  Rng init_rng(train_cfg_.seed * 7919 + 13);
  classifier_ = std::make_unique<NodeClassifier>(
      model_cfg_, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf),
      init_rng);
  Adam opt(*classifier_, AdamConfig{.lr = train_cfg_.lr,
                                    .weight_decay = train_cfg_.weight_decay,
                                    .grad_clip = train_cfg_.grad_clip});
  Rng order_rng(train_cfg_.seed * 31 + 7);
  Rng dropout_rng(train_cfg_.seed * 17 + 3);
  std::vector<int> order = split.train;
  const ClassifierData data = build_classifier_data(samples, split.train);

  double best_val = 0.0;
  std::vector<Matrix> best_params;
  for (int epoch = 0; epoch < train_cfg_.epochs; ++epoch) {
    opt.set_lr(lr_at_epoch(train_cfg_.lr, epoch, train_cfg_.epochs));
    order_rng.shuffle(order);
    run_classifier_epoch(*classifier_, opt, samples, data, order, train_cfg_,
                         dropout_rng);

    const NodeClassifierScores val = evaluate(samples, split.val);
    const double mean_acc = (val.dsp + val.lut + val.ff) / 3.0;
    if (mean_acc > best_val) {
      best_val = mean_acc;
      best_params = snapshot_parameters(*classifier_);
    }
  }
  if (!best_params.empty()) restore_parameters(*classifier_, best_params);
  return best_val;
}

NodeClassifierScores NodeTypePredictor::evaluate(
    const std::vector<Sample>& samples, const std::vector<int>& idx) const {
  GNNHLS_CHECK(classifier_ != nullptr, "evaluate before fit");
  std::array<std::vector<int>, 3> pred, truth;
  for (int i : idx) {
    const Sample& s = samples[static_cast<std::size_t>(i)];
    const Matrix feats =
        InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
    const auto inferred = classifier_->infer_types(s.tensors, feats);
    const Matrix labels = InputFeatureBuilder::node_type_labels(s.graph());
    for (int v = 0; v < s.graph().num_nodes(); ++v) {
      const auto& t = inferred[static_cast<std::size_t>(v)];
      pred[0].push_back(t.dsp > 0.5F);
      pred[1].push_back(t.lut > 0.5F);
      pred[2].push_back(t.ff > 0.5F);
      truth[0].push_back(labels(v, 0) > 0.5F);
      truth[1].push_back(labels(v, 1) > 0.5F);
      truth[2].push_back(labels(v, 2) > 0.5F);
    }
  }
  NodeClassifierScores scores;
  scores.dsp = binary_accuracy(pred[0], truth[0]);
  scores.lut = binary_accuracy(pred[1], truth[1]);
  scores.ff = binary_accuracy(pred[2], truth[2]);
  return scores;
}

}  // namespace gnnhls
