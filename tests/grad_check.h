// Finite-difference gradient checking utility for autograd tests.
#pragma once

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "tensor/autograd.h"

namespace gnnhls::testing {

/// Builds a scalar loss from `leaf` via `fn` and compares the autograd
/// gradient of every entry of `leaf` against central finite differences.
inline void expect_gradient_matches(
    Matrix input, const std::function<Var(Tape&, const Var&)>& fn,
    float h = 1e-2F, float tol = 2e-2F) {
  Var leaf = make_leaf(input, /*requires_grad=*/true);
  Tape tape;
  Var loss = fn(tape, leaf);
  ASSERT_EQ(loss.rows(), 1);
  ASSERT_EQ(loss.cols(), 1);
  tape.backward(loss);
  const Matrix analytic = leaf.grad();

  for (int r = 0; r < input.rows(); ++r) {
    for (int c = 0; c < input.cols(); ++c) {
      const float saved = input(r, c);

      input(r, c) = saved + h;
      Tape tp;
      const float up = fn(tp, make_leaf(input, false)).value()(0, 0);
      input(r, c) = saved - h;
      Tape tm;
      const float down = fn(tm, make_leaf(input, false)).value()(0, 0);
      input(r, c) = saved;

      const float numeric = (up - down) / (2.0F * h);
      EXPECT_NEAR(analytic(r, c), numeric,
                  tol * std::max(1.0F, std::abs(numeric)))
          << "entry (" << r << "," << c << ")";
    }
  }
}

}  // namespace gnnhls::testing
