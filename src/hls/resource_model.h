// Operation-level FPGA resource & delay library.
//
// Plays the role of the technology characterization inside an HLS tool:
// maps (opcode, bitwidth, operand shape) to DSP/LUT/FF cost, combinational
// delay and pipeline latency for a generic 6-LUT + DSP48-style fabric.
//
// The constants are deliberately *compositional* rather than tabulated per
// program: wide multipliers tile into DSP blocks, divisions expand into
// LUT-heavy iterative arrays, constant shift amounts become free rewiring,
// phi/select fan-in buys muxes. These are exactly the "sophisticated mapping
// rules from heterogeneous nodes to resource usage" (paper §5.2) that the
// GNN has to learn, and they give each domain insight from the paper a
// concrete mechanism:
//   * "a multiplication node with a large bitwidth tends to use DSPs,
//      while divisions and bitwise operations prefer LUTs"
//   * "FFs often relate to memory operations and small arrays"
//   * "LUTs are involved in the entire graph (glue logic)".
#pragma once

#include "graph/ir_graph.h"

namespace gnnhls {

/// Cost of one operator instance.
struct OpCost {
  double dsp = 0.0;
  double lut = 0.0;
  double ff = 0.0;
  double delay_ns = 0.0;   // combinational delay (per stage if multi-cycle)
  int latency = 0;         // extra pipeline cycles (0 = combinational)
  bool sharable = false;   // expensive enough for the binder to share
};

/// Width below which a multiplier is built from LUTs instead of DSP blocks
/// (Vitis' default threshold is comparable).
inline constexpr int kLutMulMaxWidth = 10;

class ResourceLibrary {
 public:
  /// Cost of an operation node.
  /// `const_shift` marks shift nodes whose amount operand is constant
  /// (free rewiring); `phi_fanin` is the number of incoming values of a
  /// phi/mux node.
  OpCost cost(Opcode op, int bitwidth, bool const_shift = false,
              int phi_fanin = 2) const;

  /// FFs for registering a `bits`-wide value across a cycle boundary.
  double register_ff(int bits) const { return static_cast<double>(bits); }

  /// Mux LUTs for routing `sources` operands of width `bits` into one
  /// shared functional-unit port (2:1 mux tree, ~bits/2 LUT6 per stage).
  double sharing_mux_lut(int bits, int sources) const;
};

}  // namespace gnnhls
