// Mini-batching over graphs by disjoint union.
//
// A GraphBatch stitches N GraphTensors into one larger GraphTensors whose
// edge list is the concatenation of the members' edge lists with node
// indices offset into a shared row space, plus a per-node graph_id segment
// vector. Because no edge crosses member boundaries, every message-passing
// encoder runs unchanged on the merged view and produces, per member graph,
// the same embeddings it would produce on that graph alone; graph-level
// readout and virtual-node pooling use the graph_id segments (see the
// segment_* ops in tensor/autograd.h) instead of whole-matrix reductions.
//
// This is the same trick PyTorch Geometric's Batch/DataLoader uses, and is
// what lets one SGD step amortize tape construction and matmul launches
// over `batch_size` graphs.
//
// Determinism contract: the union is a pure function of the member list —
// member order in `parts` IS row/segment order in the merged view, and the
// segment ops reduce each member's contiguous rows in the same order as the
// solo forward, so per-member results of a batched forward are bit-identical
// to running that member alone (asserted for all 14 encoder kinds in
// batch_test and serve_test). Readout row g always belongs to parts[g] —
// the serving batcher relies on this to scatter predictions back to the
// right caller.
//
// Threading: build()/stack_features() are safe to call concurrently from
// any number of threads (they only read their inputs; stack_features may
// fan copies out over the global ThreadPool, which is itself
// deterministic). A built GraphBatch is immutable-after-build shared data.
#pragma once

#include <vector>

#include "gnn/graph_tensors.h"
#include "tensor/matrix.h"

namespace gnnhls {

struct GraphBatch {
  /// The disjoint-union view: usable anywhere a GraphTensors is expected.
  GraphTensors merged;

  /// Row range of member g in the merged node space:
  /// [node_offset[g], node_offset[g+1]). Size num_graphs()+1.
  std::vector<int> node_offset;

  int num_graphs() const { return merged.num_graphs; }
  int num_nodes() const { return merged.num_nodes; }

  /// Builds the union. Member pointers must stay valid only for the call.
  static GraphBatch build(const std::vector<const GraphTensors*>& parts);

  /// Stacks per-member node-feature matrices [n_g, d] into [sum n_g, d]
  /// following the same member order as build(). Copies run on the global
  /// thread pool for large batches.
  static Matrix stack_features(const std::vector<const Matrix*>& parts);

  /// Convenience overload for callers holding the member matrices by value
  /// (the hierarchical inference path owns its classifier-annotated
  /// feature matrices for the duration of a batch).
  static Matrix stack_features(const std::vector<Matrix>& parts);

  /// Extracts member g's rows from a merged [num_nodes, d] matrix
  /// (round-trip testing and per-graph result scatter).
  Matrix member_rows(const Matrix& merged_rows, int g) const;
};

}  // namespace gnnhls
