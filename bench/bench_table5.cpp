// Reproduces paper Table 5: testing MAPE of the three approaches
// (RGCN/PNA backbones) on the 56 unseen real-case applications, against the
// HLS synthesis-report baseline.
//
// Protocol: predictors train on the synthetic corpus only (DFG + CDFG,
// matching "real-world benchmarks are only used for generalization
// evaluation", §5.1) and are then evaluated on MachSuite + CHStone +
// PolyBench. The HLS column needs no training: it is the MAPE of the
// synthesis report against the implemented ground truth.
//
// Paper shape: HLS grossly misestimates LUT (871%) and FF (323%); every
// GNN variant beats HLS on LUT/FF/CP; knowledge ordering base > -I > -R
// persists under domain shift; CP transfers best.
#include <array>
#include <map>

#include "bench_common.h"

namespace gnnhls::bench {
namespace {

// Paper Table 5 reference columns: HLS RGCN RGCN-I RGCN-R PNA PNA-I PNA-R,
// rows DSP LUT FF CP.
const std::map<std::string, std::array<double, 4>> kPaperT5 = {
    {"HLS", {0.2607, 8.7156, 3.2286, 0.3209}},
    {"RGCN", {0.4561, 0.6623, 1.0120, 0.0813}},
    {"RGCN-I", {0.4089, 0.3091, 0.3875, 0.0535}},
    {"RGCN-R", {0.3290, 0.2408, 0.2772, 0.0583}},
    {"PNA", {0.4006, 0.5634, 0.4765, 0.0868}},
    {"PNA-I", {0.2195, 0.2145, 0.2010, 0.0480}},
    {"PNA-R", {0.1520, 0.1696, 0.1742, 0.0397}},
};

constexpr std::array<Approach, 3> kApproaches = {
    Approach::kOffTheShelf, Approach::kKnowledgeInfused,
    Approach::kKnowledgeRich};

int run(int argc, const char* const* argv) {
  const BenchConfig cfg = parse_bench_config(argc, argv);
  print_header("Table 5 — generalization to real-case applications vs HLS",
               cfg);

  Timer total;
  // Mixed synthetic training corpus (DFG + CDFG).
  std::vector<Sample> synth = build_dfg(cfg);
  {
    std::vector<Sample> cdfg = build_cdfg(cfg);
    for (auto& s : cdfg) synth.push_back(std::move(s));
  }
  const std::vector<Sample> real = build_real_world();
  print_dataset_line("synthetic (train)", synth);
  print_dataset_line("real-case (eval) ", real);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(synth.size()), cfg.seed);

  // HLS baseline: synthesis report vs implementation on the real apps.
  std::array<double, 4> hls_mape{};
  for (int m = 0; m < kNumMetrics; ++m) {
    std::vector<double> pred, truth;
    for (const Sample& s : real) {
      pred.push_back(metric_of(s.hls_report, static_cast<Metric>(m)));
      truth.push_back(metric_of(s.truth, static_cast<Metric>(m)));
    }
    hls_mape[static_cast<std::size_t>(m)] = mape(pred, truth);
  }

  const std::vector<GnnKind> backbones = {GnnKind::kRgcn, GnnKind::kPna};
  double results[2][3][4] = {};  // [backbone][approach][metric]

  std::vector<std::function<void()>> jobs;
  for (std::size_t b = 0; b < backbones.size(); ++b) {
    for (std::size_t a = 0; a < kApproaches.size(); ++a) {
      for (int m = 0; m < kNumMetrics; ++m) {
        jobs.push_back([&, b, a, m] {
          ExperimentSpec spec;
          spec.kind = backbones[b];
          spec.approach = kApproaches[a];
          spec.metric = static_cast<Metric>(m);
          spec.model = model_config(cfg);
          spec.train = train_config(cfg);
          spec.protocol = protocol(cfg);
          results[b][a][m] =
              run_regression_experiment(spec, synth, split, &real)
                  .transfer_mape;
        });
      }
    }
  }
  run_parallel(std::move(jobs), cfg.threads);

  const std::vector<std::string> col_names = {
      "HLS", "RGCN", "RGCN-I", "RGCN-R", "PNA", "PNA-I", "PNA-R"};
  TextTable table({"metric", "HLS", "RGCN", "RGCN-I", "RGCN-R", "PNA",
                   "PNA-I", "PNA-R"});
  BenchJsonLog json_log;
  for (int m = 0; m < kNumMetrics; ++m) {
    std::vector<std::string> row{metric_name(static_cast<Metric>(m))};
    row.push_back(TextTable::pct(hls_mape[static_cast<std::size_t>(m)]));
    const std::string metric = metric_name(static_cast<Metric>(m));
    json_log.add("HLS " + metric, hls_mape[static_cast<std::size_t>(m)],
                 "mape");
    std::size_t col = 1;
    for (std::size_t b = 0; b < backbones.size(); ++b) {
      for (std::size_t a = 0; a < 3; ++a) {
        row.push_back(TextTable::pct(results[b][a][m]));
        json_log.add(col_names[col] + " " + metric, results[b][a][m],
                     "mape");
        ++col;
      }
    }
    table.add_row(std::move(row));
  }
  std::cout << "\nMeasured (this substrate):\n" << table.to_string();
  write_bench_json(cfg, json_log, "table5");

  TextTable ref({"metric", "HLS", "RGCN", "RGCN-I", "RGCN-R", "PNA", "PNA-I",
                 "PNA-R"});
  for (int m = 0; m < kNumMetrics; ++m) {
    std::vector<std::string> row{metric_name(static_cast<Metric>(m))};
    for (const auto& c : col_names) {
      row.push_back(TextTable::pct(kPaperT5.at(c)[static_cast<std::size_t>(m)]));
    }
    ref.add_row(std::move(row));
  }
  std::cout << "\nPaper reference:\n" << ref.to_string();

  ShapeChecks checks;
  checks.check("HLS report grossly overestimates LUT (MAPE > 100%)",
               hls_mape[1] > 1.0);
  checks.check("HLS report badly misestimates FF (MAPE > 75%)",
               hls_mape[2] > 0.75);
  // Best GNN variant beats HLS per metric on LUT/FF/CP (paper's headline).
  for (int m = 1; m < kNumMetrics; ++m) {
    double best_gnn = 1e9;
    for (std::size_t b = 0; b < 2; ++b) {
      for (std::size_t a = 0; a < 3; ++a) {
        best_gnn = std::min(best_gnn, results[b][a][m]);
      }
    }
    const double factor = hls_mape[static_cast<std::size_t>(m)] /
                          std::max(best_gnn, 1e-9);
    checks.check("best GNN beats HLS on " +
                     metric_name(static_cast<Metric>(m)) + " (x" +
                     TextTable::num(factor, 1) + ")",
                 best_gnn < hls_mape[static_cast<std::size_t>(m)]);
  }
  // Knowledge ordering survives domain shift (averaged over backbones
  // and metrics).
  std::array<double, 3> avg{};
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 2; ++b) {
      for (int m = 0; m < kNumMetrics; ++m) avg[a] += results[b][a][m] / 8.0;
    }
  }
  checks.check("-I improves over off-the-shelf on real cases",
               avg[1] < avg[0]);
  checks.check("-R improves over off-the-shelf on real cases",
               avg[2] < avg[0]);
  checks.summary();
  std::cout << "total wall time: " << TextTable::num(total.seconds(), 1)
            << "s\n";
  return 0;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
