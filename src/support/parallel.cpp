#include "support/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>

#include "support/check.h"

namespace gnnhls {

struct ThreadPool::Region {
  std::uint64_t id = 0;
  int begin = 0;
  int end = 0;
  int chunk = 1;
  const std::function<void(int, int)>* body = nullptr;
  std::atomic<int> next{0};       // next chunk index to claim
  std::atomic<int> remaining{0};  // chunks not yet finished
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr error;
  std::mutex error_mu;

  int num_chunks() const { return (end - begin + chunk - 1) / chunk; }

  /// Claims and runs chunks until none remain. Any thread may call this.
  void drain() {
    const int chunks = num_chunks();
    for (int c = next.fetch_add(1); c < chunks; c = next.fetch_add(1)) {
      const int lo = begin + c * chunk;
      const int hi = std::min(lo + chunk, end);
      try {
        (*body)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  num_threads_ = threads;
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t last_seen = 0;  // region ids start at 1
  for (;;) {
    std::shared_ptr<Region> region;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, last_seen] {
        return shutdown_ || (region_ != nullptr && region_->id != last_seen);
      });
      if (shutdown_) return;
      region = region_;  // shared ownership keeps the region alive
    }
    last_seen = region->id;
    region->drain();
  }
}

void ThreadPool::parallel_for(int begin, int end, int min_chunk,
                              const std::function<void(int, int)>& body) {
  GNNHLS_CHECK(begin <= end, "parallel_for: inverted range");
  if (begin == end) return;
  min_chunk = std::max(min_chunk, 1);
  const int n = end - begin;
  if (workers_.empty() || n <= min_chunk) {
    body(begin, end);
    return;
  }

  auto region = std::make_shared<Region>();
  region->begin = begin;
  region->end = end;
  // Aim for a few chunks per thread (dynamic claiming smooths imbalance)
  // while never going below the caller's grain.
  region->chunk = std::max(min_chunk, n / (num_threads_ * 4));
  region->body = &body;
  region->remaining.store(region->num_chunks());

  // Concurrent parallel_for callers (job-level run_parallel jobs hitting
  // the global pool) are safe: id assignment and publication happen under
  // mu_, and each caller drains its own region to completion regardless of
  // whether workers ever saw it — a region displaced from the single slot
  // merely loses worker help, never correctness.
  {
    std::lock_guard<std::mutex> lock(mu_);
    region->id = ++next_region_id_;
    region_ = region;
  }
  work_cv_.notify_all();
  region->drain();
  {
    std::unique_lock<std::mutex> lock(region->done_mu);
    region->done_cv.wait(lock,
                         [&region] { return region->remaining.load() == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (region_ == region) region_ = nullptr;
  }
  if (region->error) std::rethrow_exception(region->error);
}

namespace {
// Published pointer for the lock-free global() fast path; the unique_ptr
// owns the pool, the atomic is what kernels read per call.
std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::atomic<ThreadPool*>& global_pool_ptr() {
  static std::atomic<ThreadPool*> ptr{nullptr};
  return ptr;
}
std::mutex& global_pool_mu() {
  static std::mutex mu;
  return mu;
}
}  // namespace

ThreadPool& ThreadPool::global() {
  ThreadPool* fast = global_pool_ptr().load(std::memory_order_acquire);
  if (fast != nullptr) return *fast;
  std::lock_guard<std::mutex> lock(global_pool_mu());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  global_pool_ptr().store(slot.get(), std::memory_order_release);
  return *slot;
}

std::vector<int> balanced_boundaries(const std::vector<int>& cum,
                                     int max_ranges, int min_cost) {
  GNNHLS_CHECK(!cum.empty() && cum.front() == 0,
               "balanced_boundaries: cum must start at 0");
  const int n = static_cast<int>(cum.size()) - 1;
  const long total = cum[static_cast<std::size_t>(n)];
  min_cost = std::max(min_cost, 1);
  max_ranges = std::max(max_ranges, 1);
  const int ranges = static_cast<int>(std::min<long>(
      max_ranges, std::max<long>(1, total / min_cost)));
  std::vector<int> bounds;
  bounds.reserve(static_cast<std::size_t>(ranges) + 1);
  bounds.push_back(0);
  for (int r = 1; r < ranges; ++r) {
    const long target = total * r / ranges;
    // First index whose cumulative cost exceeds the target; ranges stay
    // non-empty because cum is non-decreasing and targets are increasing.
    const auto it = std::upper_bound(cum.begin(), cum.end(),
                                     static_cast<int>(target));
    int b = static_cast<int>(it - cum.begin()) - 1;
    b = std::min(std::max(b, bounds.back() + 1), n);
    if (b > bounds.back()) bounds.push_back(b);
  }
  if (bounds.back() != n) bounds.push_back(n);
  return bounds;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lock(global_pool_mu());
  // Unpublish first so no new caller grabs the pool being torn down; the
  // caller guarantees no kernel is mid-flight on it.
  global_pool_ptr().store(nullptr, std::memory_order_release);
  auto& slot = global_pool_slot();
  slot = std::make_unique<ThreadPool>(threads);
  global_pool_ptr().store(slot.get(), std::memory_order_release);
}

}  // namespace gnnhls
