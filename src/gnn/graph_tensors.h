// Precomputed message-passing views of a finalized IrGraph.
//
// Built once per graph and shared by all encoders: flat edge arrays, edge
// arrays augmented with self loops (GAT/GCN-style layers), symmetric GCN
// normalization coefficients, per-relation edge partitions (RGCN / GGNN /
// FiLM) and the degree scalers used by PNA.
#pragma once

#include <vector>

#include "graph/ir_graph.h"

namespace gnnhls {

struct GraphTensors {
  int num_nodes = 0;

  // plain directed edges
  std::vector<int> src, dst;

  // edges + one self loop per node (for attention/convolution layers that
  // need a node to see itself)
  std::vector<int> src_self, dst_self;

  // GCN symmetric normalization: coeff per plain edge, self-loop coeff per
  // node, using deg(v) = in_degree(v) + 1.
  std::vector<float> gcn_coeff;
  std::vector<float> gcn_self_coeff;

  // edge ids grouped by relation (edge type x back-edge flag)
  std::vector<std::vector<int>> relation_edges;

  // PNA degree scalers: log(in_degree + 1) per node and its graph average.
  std::vector<float> log_deg;
  float avg_log_deg = 1.0F;

  static GraphTensors build(const IrGraph& graph);
};

}  // namespace gnnhls
