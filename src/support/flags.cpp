#include "support/flags.h"

#include <sstream>
#include <stdexcept>

#include "support/check.h"

namespace gnnhls {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    GNNHLS_CHECK(arg.rfind("--", 0) == 0, "flag must start with --: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare switch
    }
  }
  for (const auto& [k, v] : values_) consumed_[k] = false;
}

int Flags::get_int(const std::string& name, int def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return std::stoi(it->second);
}

double Flags::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return std::stod(it->second);
}

std::string Flags::get_string(const std::string& name,
                              const std::string& def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return it->second;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  consumed_[name] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Flags::has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) consumed_[name] = true;
  return it != values_.end();
}

int Flags::warn_unconsumed(std::ostream& os) const {
  int unconsumed = 0;
  for (const auto& [name, used] : consumed_) {
    if (used) continue;
    os << "warning: unknown flag --" << name
       << " (ignored; --help lists the supported flags)\n";
    ++unconsumed;
  }
  return unconsumed;
}

void Flags::check_all_consumed() const {
  std::ostringstream unknown;
  for (const auto& [name, used] : consumed_) {
    if (!used) unknown << " --" << name;
  }
  const std::string s = unknown.str();
  if (!s.empty()) {
    throw std::invalid_argument("unknown flag(s):" + s);
  }
}

}  // namespace gnnhls
