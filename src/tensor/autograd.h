// Reverse-mode automatic differentiation over dense matrices.
//
// A Tape records every operation in creation order (which is a topological
// order, since an op can only consume previously created Vars); backward()
// walks it in reverse. Parameters are persistent leaf VarNodes owned by nn
// modules — their gradients accumulate across forward passes until the
// optimizer zeroes them, so minibatching over graphs is a plain
// gradient-accumulation loop.
//
// Graph structure enters through four index-based ops: gather_rows (edge
// source lookup), scatter_add_rows (message aggregation), the segment_*
// reductions (per-destination mean/max/min) and segment_softmax (attention).
// Everything a GNN layer needs is a composition of these and the dense ops.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "support/rng.h"
#include "tensor/matrix.h"
#include "tensor/segment_ops.h"

namespace gnnhls {

struct VarNode {
  Matrix value;
  Matrix grad;  // allocated iff requires_grad
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarNode>> parents;
  /// Reads this node's grad and accumulates into parents' grads.
  std::function<void(VarNode&)> backprop;
};

/// Value-semantics handle to a VarNode (cheap to copy).
class Var {
 public:
  Var() = default;
  explicit Var(std::shared_ptr<VarNode> node) : node_(std::move(node)) {}

  bool valid() const { return node_ != nullptr; }
  const Matrix& value() const { return node_->value; }
  const Matrix& grad() const { return node_->grad; }
  bool requires_grad() const { return node_->requires_grad; }
  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }
  const std::shared_ptr<VarNode>& node() const { return node_; }

 private:
  std::shared_ptr<VarNode> node_;
};

/// Creates a persistent leaf (used by nn::Parameter). Not tied to any tape.
Var make_leaf(Matrix value, bool requires_grad);

/// RAII scope that redirects gradient accumulation for the given persistent
/// leaves (parameters) into caller-owned buffers on the *current thread*.
/// While active, any backward() run on this thread adds the listed leaves'
/// gradients into sinks[i] instead of leaves[i].grad; other threads are
/// untouched, so concurrent per-shard tapes over shared parameters never
/// race on the shared grad matrices. The constructor shapes and zeroes the
/// sinks, making each scope an independent accumulator that the trainer
/// merges in a deterministic order (see Adam::step_merged). Scopes do not
/// nest on a thread; sinks must outlive the scope.
class LeafGradRedirect {
 public:
  LeafGradRedirect(const std::vector<Var>& leaves,
                   std::vector<Matrix>& sinks);
  ~LeafGradRedirect();

  LeafGradRedirect(const LeafGradRedirect&) = delete;
  LeafGradRedirect& operator=(const LeafGradRedirect&) = delete;
};

class Tape {
 public:
  /// Tape-scoped constant/input leaf.
  Var leaf(Matrix value, bool requires_grad = false);

  /// Re-registers a persistent leaf (parameter) so backward can reach it.
  /// (Parameters need no registration — backward reaches them as parents —
  /// but this keeps them alive for the tape's lifetime.)
  Var use(const Var& v);

  // ----- dense ops -----
  Var matmul(const Var& a, const Var& b);
  Var add(const Var& a, const Var& b);
  Var sub(const Var& a, const Var& b);
  Var mul(const Var& a, const Var& b);  // elementwise
  /// out[i,j] = a[i,j] * b[i,0]  (column-broadcast multiply).
  Var mul_col_broadcast(const Var& a, const Var& b);
  /// out[i,j] = a[i,j] + bias[0,j].
  Var add_row_bias(const Var& a, const Var& bias);
  /// out = alpha * a + beta (elementwise affine with scalars).
  Var affine(const Var& a, float alpha, float beta);
  Var scale(const Var& a, float s) { return affine(a, s, 0.0F); }
  /// out[i,:] = a[i,:] * coeff[i] with constant coefficients (no grad to coeff).
  Var scale_rows(const Var& a, const std::vector<float>& coeff);

  // ----- nonlinearities -----
  Var relu(const Var& a);
  Var leaky_relu(const Var& a, float slope);
  Var sigmoid(const Var& a);
  Var tanh_act(const Var& a);
  /// out = sqrt(max(a, 0) + eps); used for PNA's std aggregator.
  Var sqrt_eps(const Var& a, float eps);

  // ----- structure ops -----
  // The gather/scatter family runs on the deterministic parallel kernels in
  // tensor/segment_ops.h (fixed-order partition reduction: bit-identical to
  // the serial loops at any thread-pool width). The optional `part` is a
  // precomputed destination partition of `idx`/`seg` — pass the one cached
  // on GraphTensors (src_part/dst_part/...) to skip the per-call O(rows)
  // plan build; null means build-on-demand for large inputs, serial loop
  // for small ones. The partition never changes results, only scheduling.

  /// out[i,:] = a[idx[i],:]. `part` groups idx by source row (over a.rows());
  /// the backward scatter-accumulates through it.
  Var gather_rows(const Var& a, const std::vector<int>& idx,
                  SegmentPartitionPtr part = nullptr);
  /// out[idx[i],:] += a[i,:]. `part` groups idx by destination (over
  /// out_rows); the forward accumulates through it.
  Var scatter_add_rows(const Var& a, const std::vector<int>& idx, int out_rows,
                       SegmentPartitionPtr part = nullptr);
  Var segment_mean(const Var& a, const std::vector<int>& idx, int segments,
                   SegmentPartitionPtr part = nullptr);

  // ----- fused message-passing ops -----
  // One tape node for the whole gather -> (transform) -> scatter chain,
  // running the fused kernels in tensor/fused_mp.h: the [E, hidden] message
  // tensor never materializes in forward or backward. Values and gradients
  // are identical to the unfused composition at any thread count (same
  // fixed-order partition reduction; exact zeros may differ in sign only).
  // Both cached partitions are mandatory — the fused ops exist for the hot
  // path where GraphTensors already carries them.

  /// Equivalent to scatter_add_rows(scale_rows(gather_rows(a, src,
  /// src_part), coeff), dst, out_rows, dst_part); empty coeff drops the
  /// scale_rows. Coefficients are constants (no gradient), as in
  /// scale_rows. src_part partitions edges by src over a.rows(); dst_part
  /// partitions edges by dst over out_rows.
  Var fused_gather_scatter_add(const Var& a, const std::vector<int>& src,
                               const std::vector<int>& dst, int out_rows,
                               SegmentPartitionPtr src_part,
                               SegmentPartitionPtr dst_part,
                               std::vector<float> coeff = {});
  /// Equivalent to scatter_add_rows(matmul(gather_rows(a, src, src_part),
  /// w), dst, out_rows, dst_part), including the gradient to w (whose
  /// weight-gradient accumulates through one add, preserving the unfused
  /// granularity for weights shared across layers).
  Var fused_gather_matmul_scatter_add(const Var& a, const Var& w,
                                      const std::vector<int>& src,
                                      const std::vector<int>& dst,
                                      int out_rows,
                                      SegmentPartitionPtr src_part,
                                      SegmentPartitionPtr dst_part);
  Var segment_max(const Var& a, const std::vector<int>& idx, int segments);
  Var segment_min(const Var& a, const std::vector<int>& idx, int segments);
  /// Softmax over the entries of each segment; a must be [k,1].
  Var segment_softmax(const Var& a, const std::vector<int>& idx, int segments);

  // ----- batched-graph segment ops -----
  // `seg` assigns every row of a to a segment (e.g. the per-node graph_id of
  // a GraphBatch). With one segment these reduce to sum_rows / mean_rows /
  // repeat_row bit-for-bit, which is what keeps batch_size=1 training
  // identical to the unbatched loop.

  /// out[s,:] = sum_{i: seg[i]==s} a[i,:]  ([n,m] -> [segments,m]).
  Var segment_sum_rows(const Var& a, const std::vector<int>& seg,
                       int segments, SegmentPartitionPtr part = nullptr);
  /// out[s,:] = mean_{i: seg[i]==s} a[i,:]; empty segments yield zeros.
  Var segment_mean_rows(const Var& a, const std::vector<int>& seg,
                        int segments, SegmentPartitionPtr part = nullptr);
  /// Inverse broadcast: out[i,:] = a[seg[i],:] for a [segments,m] input
  /// (virtual-node encoders); backward sums each segment's rows (through
  /// `part`, a destination partition of seg over a.rows(), when given).
  Var broadcast_rows_by_segment(const Var& a, const std::vector<int>& seg,
                                SegmentPartitionPtr part = nullptr);

  // ----- shape ops -----
  Var concat_cols(const std::vector<Var>& parts);
  Var slice_cols(const Var& a, int begin, int end);
  Var sum_rows(const Var& a);   // [n,m] -> [1,m]
  Var mean_rows(const Var& a);  // [n,m] -> [1,m]
  Var sum_all(const Var& a);    // [n,m] -> [1,1]
  /// Broadcasts a [1,m] row to [n,m]; backward sums.
  Var repeat_row(const Var& a, int n);

  // ----- regularization & losses -----
  Var dropout(const Var& a, float p, Rng& rng, bool training);
  /// Mean squared error against a constant target; returns [1,1].
  Var mse_loss(const Var& pred, const Matrix& target);
  /// Numerically stable binary cross-entropy on logits; returns [1,1].
  Var bce_with_logits_loss(const Var& logits, const Matrix& targets);

  /// Seeds d(loss)/d(loss)=1 and runs the reverse sweep. loss must be [1,1].
  void backward(const Var& loss);

  std::size_t size() const { return ops_.size(); }

 private:
  Var record(Matrix value, std::vector<Var> parents,
             std::function<void(VarNode&)> backprop);

  std::vector<std::shared_ptr<VarNode>> ops_;
};

}  // namespace gnnhls
