#include "train/feature_cache.h"

#include "support/arena.h"

namespace gnnhls {

FeatureCache& FeatureCache::global() {
  static FeatureCache* cache = new FeatureCache();  // never destroyed
  return *cache;
}

template <typename BuildFn>
const Matrix& FeatureCache::lookup(const Key& key, BuildFn&& build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return *it->second;
    }
  }
  // Build outside the lock so concurrent misses on *different* samples never
  // serialize on feature construction. Two threads missing the same key both
  // build the (identical, deterministic) tensor and the first insert wins.
  // Cache entries outlive any batch, so shield the build from the caller's
  // arena scope (a miss inside an eval/serving scope must be heap-backed).
  const ArenaPause heap_only;
  auto built = std::make_unique<const Matrix>(build());
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = entries_.emplace(key, std::move(built));
  if (inserted) misses_.fetch_add(1, std::memory_order_relaxed);
  return *it->second;
}

const Matrix& FeatureCache::features(const Sample& s, Approach a) {
  return lookup(Key{s.uid, static_cast<int>(a)}, [&] {
    return InputFeatureBuilder::build(s.graph(), a);
  });
}

const Matrix& FeatureCache::node_type_labels(const Sample& s) {
  return lookup(Key{s.uid, -1}, [&] {
    return InputFeatureBuilder::node_type_labels(s.graph());
  });
}

std::size_t FeatureCache::warm(const std::vector<Sample>& samples,
                               Approach a) {
  const std::uint64_t misses_before =
      misses_.load(std::memory_order_relaxed);
  for (const Sample& s : samples) features(s, a);
  return static_cast<std::size_t>(misses_.load(std::memory_order_relaxed) -
                                  misses_before);
}

void FeatureCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void FeatureCache::evict(std::uint64_t uid) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.uid == uid) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t FeatureCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace gnnhls
