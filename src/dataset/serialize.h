// Benchmark serialization — the paper's released-benchmark deliverable
// ("we build a standard benchmark ... to benefit follow-up researches").
//
// A dataset is written as a line-oriented text format that is diffable,
// versioned and loadable without this library:
//
//   gnnhls-benchmark v1
//   graph <name> <kind> <num_nodes> <num_edges>
//   qor <dsp> <lut> <ff> <cp_ns>
//   report <dsp> <lut> <ff> <cp_ns>
//   node <type> <opcode> <bitwidth> <start> <cluster> <const> \
//        <uses_dsp> <uses_lut> <uses_ff> <dsp> <lut> <ff>     (x num_nodes)
//   edge <src> <dst> <type> <back>                            (x num_edges)
//   end
//
// Round-tripping is exact for everything a predictor consumes (features,
// topology, labels); block-level scheduling info is intentionally not
// serialized — it is an HLS-internal, not part of the benchmark format.
//
// Error handling: decoding never aborts the process. Corrupted, truncated
// or hostile input surfaces as a typed ParseStatus — either via
// try_read_benchmark (non-throwing, the network serving path maps statuses
// onto wire reject codes) or via read_benchmark, which throws
// BenchmarkParseError (an std::invalid_argument carrying the same status).
//
// The same format doubles as the serving tier's wire payload: a request
// frame (serve/wire.h) carries exactly one sample encoded with
// encode_sample_payload, and the TCP endpoint rebuilds an inference-ready
// Sample with decode_sample_payload.
#pragma once

#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dataset/dataset.h"

namespace gnnhls {

/// A deserialized benchmark record: annotated graph + labels.
/// (No LoweredProgram — consumers of a serialized benchmark never re-run
/// HLS, exactly like users of the paper's released dataset.)
struct BenchmarkRecord {
  IrGraph graph;
  GraphTensors tensors;
  QualityOfResult truth;
  QualityOfResult hls_report;
  std::string origin;

  BenchmarkRecord() : graph(GraphKind::kDfg) {}
};

/// Why a decode failed. kOk is the only success value; everything else names
/// the first malformed element the parser hit, so a serving front-end can
/// report *what* was wrong with a payload instead of a bare failure.
enum class ParseStatus {
  kOk = 0,
  /// Missing or wrong "gnnhls-benchmark v1" magic line.
  kBadHeader,
  /// Malformed "graph <name> <kind> <nodes> <edges>" line (unknown kind,
  /// non-numeric or negative dimensions).
  kBadGraphHeader,
  /// Malformed qor/report label line.
  kBadQor,
  /// Malformed node line (bad field count, out-of-range type/opcode).
  kBadNode,
  /// Malformed edge line (bad fields, endpoint out of range, or an edge the
  /// graph kind forbids — e.g. a control edge in a DFG).
  kBadEdge,
  /// Input ended mid-record (nodes/edges/end marker missing).
  kTruncated,
  /// Lines parsed but the assembled graph violates a structural invariant
  /// (e.g. forward edges form a cycle), or a payload did not contain
  /// exactly one record.
  kBadStructure,
};

std::string parse_status_name(ParseStatus s);

/// The typed exception read_benchmark throws. Derives from
/// std::invalid_argument so pre-existing callers (and tests) that only know
/// the old contract keep working.
class BenchmarkParseError : public std::invalid_argument {
 public:
  BenchmarkParseError(ParseStatus status, const std::string& what)
      : std::invalid_argument("benchmark parse error: " + what),
        status_(status) {}
  ParseStatus status() const { return status_; }

 private:
  ParseStatus status_;
};

/// Outcome of a non-throwing decode: status + message describe the first
/// error; records holds everything parsed on success (and is empty on
/// failure — partial records are never returned).
struct ParseResult {
  ParseStatus status = ParseStatus::kOk;
  std::string message;
  std::vector<BenchmarkRecord> records;
  bool ok() const { return status == ParseStatus::kOk; }
};

/// Writes samples in benchmark format. Throws on I/O failure.
void write_benchmark(std::ostream& os, const std::vector<Sample>& samples);
void write_benchmark_file(const std::string& path,
                          const std::vector<Sample>& samples);

/// Reads a benchmark stream; validates the header and graph structure.
/// Throws BenchmarkParseError on malformed input.
std::vector<BenchmarkRecord> read_benchmark(std::istream& is);
std::vector<BenchmarkRecord> read_benchmark_file(const std::string& path);

/// Non-throwing decode; see ParseResult.
ParseResult try_read_benchmark(std::istream& is);

// ----- single-sample wire payloads (serve/ TCP endpoint) -----

/// Writes ONE sample in benchmark format (versioned header + one record).
void write_benchmark_sample(std::ostream& os, const Sample& sample);

/// The sample as a self-contained benchmark-format string — the payload of
/// a wire request frame. decode_sample_payload inverts it exactly for
/// everything inference consumes (the rebuilt tensors match bitwise, so a
/// prediction on the decoded sample is bit-identical to one on the
/// original).
std::string encode_sample_payload(const Sample& sample);

/// Rebuilds an inference-ready Sample from a decoded record: the graph and
/// tensors move over, labels/origin copy, and a fresh uid is minted. The
/// sample has no basic-block info (blocks are HLS-internal, not
/// serialized), so it can be predicted on but not pushed through the HLS
/// flow again.
Sample sample_from_record(BenchmarkRecord&& rec);

/// Outcome of decoding a wire payload. On success `sample` is non-null and
/// the status is kOk; on failure `sample` is null and status/message say
/// why (including kBadStructure when the payload does not hold exactly one
/// record).
struct DecodedSample {
  ParseStatus status = ParseStatus::kOk;
  std::string message;
  std::shared_ptr<Sample> sample;
  bool ok() const { return status == ParseStatus::kOk; }
};

/// Non-throwing inverse of encode_sample_payload.
DecodedSample decode_sample_payload(const std::string& payload);

}  // namespace gnnhls
