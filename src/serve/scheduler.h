// Shared-queue multi-model serving scheduler — the core of the serving
// tier.
//
// The previous design spun one ServingBatcher (worker thread + queue +
// batch window) per served model, so 4-metric DSE scoring paid 4 threads
// and 4 independently-idling windows. The ServingScheduler replaces that
// with ONE deadline/priority-ordered request queue carrying
// (model_id, sample, deadline, priority) entries, drained by a small worker
// pool that forms per-model micro-batches greedily from whatever is queued:
// a worker takes the highest-urgency request, collects up to max_batch
// queued requests for the *same model* (skipping none — queue order within
// the model is preserved), and runs ONE QorPredictor::predict_many forward.
// ServingBatcher and the DSE ServingScorer are thin facades over this
// class.
//
// Queue ordering: priority descending, then deadline ascending (EDF), then
// submission order. Requests without a deadline sort after same-priority
// deadlined ones. The order decides *which model is served next and with
// which requests* — never the values (see determinism below).
//
// Adaptive batch window: instead of a static batch_window_us, the window
// tracks load with a deterministic rule (AdaptiveWindow below): after each
// batch, if requests are still queued (backlog — arrivals outpace service)
// the window doubles toward the configured cap so batches fill further;
// if the batch drained the queue the window halves toward zero so light
// traffic stops paying the latency tax. The rule is a pure function of the
// observation sequence, so virtual-time tests replay it deterministically.
//
// Admission control / shedding: submit() fails fast — returning a Ticket
// with a non-accepted status and an already-failed future — when the
// deadline is already expired on arrival or the queue is at max_queue
// capacity. Accepted requests whose deadline expires while queued are
// failed with SchedReject(kExpired) at batch-formation time instead of
// wasting a forward. Under overload this sheds exactly the requests that
// could no longer be answered in time, keeping goodput near capacity where
// a shed-nothing queue would answer everything late.
//
// Graceful drain: shutdown() stops admission, serves every queued request
// (window rules waived), then joins the workers — every accepted request
// is answered, with its prediction or with a SchedReject.
//
// Determinism contract (inherited from predict_many): a scheduled
// prediction is bit-identical to sequential QorPredictor::predict on the
// same sample and model, regardless of batch composition, worker count,
// window state, priorities or shedding around it. Scheduling changes
// latency and which requests get served under overload — never values
// (asserted by tests/scheduler_test.cpp across batch compositions for all
// 14 encoder kinds).
//
// Virtual-time mode (cfg.virtual_time): no worker threads; the test owns
// the clock (advance_virtual_time) and the service loop (pump() runs one
// batch-formation step inline). Expiry, shedding, ordering and the
// adaptive window all read the virtual clock, so every edge case is
// reproducible without sleeps or races.
//
// Threading (real mode): submit()/predict_many()/stats()/shutdown() are
// safe from any number of threads. Models are shared read-only — the
// scheduler borrows fitted predictors and requires that nobody re-fits
// them while a request is in flight. Quiescent refits ARE safe: once
// every submitted future has resolved, the workers are parked outside
// model code, and the promise/future + queue-mutex pairs give the
// happens-before edges that make refit-between-calls race-free. That is
// the contract Explorer::active_halving leans on when it refits between
// scoring rounds on the ServingScorer path.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/predictor.h"
#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "serve/serve_stats.h"

namespace gnnhls {

/// Outcome of admission control, also carried by SchedReject when a future
/// fails. kAccepted is the only status under which the request queues.
enum class AdmitStatus {
  kAccepted = 0,
  /// Deadline already expired — on arrival (fail-fast at submit) or while
  /// queued (shed at batch formation).
  kExpired,
  /// Queue at max_queue capacity (admission control under overload).
  kOverCapacity,
  /// Scheduler already shut down.
  kShutdown,
};

std::string admit_status_name(AdmitStatus s);

/// The exception a shed/rejected request's future carries. Derives from
/// std::runtime_error so callers that only know the ServingBatcher contract
/// ("after shutdown the future holds a std::runtime_error") keep working.
class SchedReject : public std::runtime_error {
 public:
  SchedReject(AdmitStatus status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  AdmitStatus status() const { return status_; }

 private:
  AdmitStatus status_;
};

/// A sample reference that is either borrowed (caller guarantees lifetime
/// until the future resolves — the zero-copy DSE path) or owned via
/// shared_ptr (network-facing callers hand off ownership; the tensors are
/// never deep-copied either way).
class SampleRef {
 public:
  /// Borrow: `s` must outlive the request's future.
  SampleRef(const Sample& s) : ptr_(&s) {}  // NOLINT(runtime/explicit)
  /// Own: the scheduler keeps the sample alive until the request resolves.
  SampleRef(std::shared_ptr<const Sample> s)  // NOLINT(runtime/explicit)
      : owned_(std::move(s)), ptr_(owned_.get()) {}

  const Sample* get() const { return ptr_; }

 private:
  std::shared_ptr<const Sample> owned_;  // null when borrowed
  const Sample* ptr_;
};

/// Per-request submit knobs.
struct SubmitOptions {
  /// Deadline relative to submit time, in microseconds. 0 = no deadline.
  /// Negative = already expired (an upstream SLA minus elapsed time can go
  /// negative by arrival) — fails fast with AdmitStatus::kExpired.
  std::int64_t deadline_us = 0;
  /// Higher values are served first (before any lower-priority request,
  /// regardless of deadlines). Default 0.
  int priority = 0;
};

/// The deterministic adaptive-window rule, separated out so tests can
/// replay it without a scheduler. One observation per completed batch:
/// `backlog` is the queue depth left after the batch was extracted.
/// backlog > 0 (arrivals outpacing service) doubles the window toward the
/// cap; backlog == 0 (the batch drained the queue) halves it toward zero.
/// With `adaptive` false the window is pinned to the cap — the static
/// ServingBatcher behavior.
class AdaptiveWindow {
 public:
  AdaptiveWindow(std::int64_t cap_us, bool adaptive)
      : cap_us_(cap_us), cur_us_(cap_us), adaptive_(adaptive) {}

  std::int64_t current_us() const { return cur_us_; }
  std::uint64_t grows() const { return grows_; }
  std::uint64_t shrinks() const { return shrinks_; }

  void observe(std::size_t backlog) {
    if (!adaptive_ || cap_us_ == 0) return;
    if (backlog > 0) {
      const std::int64_t next =
          std::min(cap_us_, cur_us_ > 0 ? cur_us_ * 2 : std::int64_t{1});
      if (next != cur_us_) ++grows_;
      cur_us_ = next;
    } else {
      const std::int64_t next = cur_us_ / 2;
      if (next != cur_us_) ++shrinks_;
      cur_us_ = next;
    }
  }

 private:
  std::int64_t cap_us_;
  std::int64_t cur_us_;
  bool adaptive_;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
};

struct SchedulerConfig {
  /// Worker threads draining the shared queue (>= 1; ignored in
  /// virtual_time mode, where the test pumps inline). All models share
  /// this pool — the whole point vs one thread per model.
  int workers = 1;
  /// Graphs per micro-batch forward (>= 1), per model.
  int max_batch = 8;
  /// Cap of the (adaptive) batch window in microseconds (>= 0). With
  /// adaptive_window false this is the static window, exactly
  /// ServeConfig::batch_window_us.
  std::int64_t batch_window_us = 200;
  /// Adapt the window to load (see AdaptiveWindow). Execution-only: served
  /// values are unchanged.
  bool adaptive_window = true;
  /// Queue capacity for admission control; 0 = unbounded. When the queue
  /// holds max_queue requests, further submits fail fast with
  /// kOverCapacity.
  std::size_t max_queue = 0;
  /// Back each micro-batch forward's tape temporaries with the worker
  /// thread's scratch arena (support/arena.h). Execution-only.
  bool arena = false;
  /// Record per-request submit->answer latency (microseconds) for every
  /// completed request; drained with take_latencies_us(). The raw-sample
  /// vector is bounded by latency_cap (overflow is counted, not stored);
  /// the registry's latency histogram records every completion regardless.
  bool record_latencies = false;
  /// Cap on buffered raw latency samples between take_latencies_us() calls
  /// (record_latencies only). Past it samples still land in the histogram
  /// but the vector stops growing — bounded memory under unbounded traffic.
  std::size_t latency_cap = 1u << 20;
  /// Deterministic test mode: no worker threads, no real clock. The test
  /// drives time with advance_virtual_time() and service with pump().
  bool virtual_time = false;
  /// Observability knobs (obs/obs_config.h). Execution-only: metrics and
  /// trace spans read the clock and count events, never touch served
  /// values. Trace spans are suppressed in virtual_time mode (virtual
  /// timestamps would not share the collector's timebase).
  ObsConfig obs;
};

class ServingScheduler {
 public:
  /// What submit() hands back: the admission outcome plus the future. A
  /// non-accepted Ticket's future is already failed with a SchedReject
  /// carrying the same status, so status-blind callers can just .get().
  struct Ticket {
    std::future<double> future;
    AdmitStatus status = AdmitStatus::kAccepted;
    bool accepted() const { return status == AdmitStatus::kAccepted; }
  };

  /// Borrows fitted predictors (one model id per entry, in order); they
  /// must outlive the scheduler and must not be re-fit while a request is
  /// in flight (refitting while the scheduler is quiescent — every issued
  /// future resolved — is fine; see the threading note above).
  /// Spawns cfg.workers threads unless cfg.virtual_time.
  ServingScheduler(std::vector<const QorPredictor*> models,
                   SchedulerConfig cfg = {});

  /// Drains and joins (equivalent to shutdown()).
  ~ServingScheduler();

  ServingScheduler(const ServingScheduler&) = delete;
  ServingScheduler& operator=(const ServingScheduler&) = delete;

  int num_models() const { return static_cast<int>(models_.size()); }

  /// Enqueues one request for `model`. The borrowed overload requires
  /// `sample` to stay alive until the future resolves; the shared_ptr
  /// overload hands off ownership; the rvalue overload moves the sample
  /// into shared ownership (one move, no tensor deep-copy).
  Ticket submit(int model, const Sample& sample, SubmitOptions opts = {});
  Ticket submit(int model, std::shared_ptr<const Sample> sample,
                SubmitOptions opts = {});
  Ticket submit(int model, Sample&& sample, SubmitOptions opts = {});

  /// Blocking convenience: submits every sample for `model` (no deadline,
  /// default priority) and returns the predictions in input order. Safe
  /// from many threads; requests micro-batch with any concurrent traffic.
  std::vector<double> predict_many(int model,
                                   const std::vector<const Sample*>& samples);

  /// Stops accepting requests, answers everything already queued (window
  /// rules waived; still-live requests get served, expired ones shed),
  /// then joins the workers. Idempotent and safe to call concurrently with
  /// submitters.
  void shutdown();

  /// Consistent snapshot of the scheduling counters (serve_stats.h). Since
  /// PR 9 this is a facade over the metrics registry: the counters live in
  /// obs/metrics.h Counter/Gauge objects (updated under the queue lock, so
  /// the snapshot invariants still hold) and this assembles the same struct
  /// from them.
  SchedStats stats() const;

  /// Drains the recorded latencies (cfg.record_latencies only; at most
  /// cfg.latency_cap samples buffer between drains).
  std::vector<double> take_latencies_us();

  /// The registry holding this scheduler's metrics:
  /// MetricsRegistry::global() when cfg.obs.metrics, else a private
  /// per-instance registry. Series carry a `sched="<instance>"` label.
  MetricsRegistry& metrics_registry() const { return *registry_; }

  const SchedulerConfig& config() const { return cfg_; }

  // ----- virtual-time mode (cfg.virtual_time only; throws otherwise) -----

  /// Advances the virtual clock by `us` (>= 0).
  void advance_virtual_time(std::int64_t us);
  /// Runs one scheduling step inline: sheds expired queued requests, and
  /// if a micro-batch is ready (full, window elapsed at the virtual now,
  /// or draining after shutdown) forms and serves it. Returns true if a
  /// batch was served.
  bool pump();
  /// Current virtual time in microseconds since construction.
  std::int64_t virtual_now_us() const;

 private:
  struct Entry {
    int model;
    SampleRef sample;
    std::promise<double> promise;
    std::int64_t arrival_us;
    std::int64_t deadline_us;  // absolute; kNoDeadline when unset
    int priority;
    std::uint64_t seq;
  };

  enum class FlushReason { kFull, kTimeout, kDrain };

  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  /// Urgency order: priority desc, deadline asc, submission order asc.
  static bool urgent_before(const Entry& a, const Entry& b);

  Ticket submit_ref(int model, SampleRef sample, SubmitOptions opts);
  std::int64_t now_us() const;  // virtual or steady_clock, in us

  /// Removes every queued entry whose deadline passed (lock held); the
  /// entries are moved into `expired` for out-of-lock failure.
  void sweep_expired(std::int64_t now, std::vector<Entry>& expired);
  /// Fails `expired` promises with SchedReject(kExpired) (lock NOT held).
  static void fail_expired(std::vector<Entry>& expired);
  /// Queued requests for `model`, capped at max_batch (lock held).
  int count_for_model(int model) const;
  /// Removes up to max_batch entries of `model` in queue order (lock held).
  std::vector<Entry> extract_batch(int model);
  /// One scheduling step; assumes `lock` is held on mu_ and may release/
  /// reacquire it around the forward. Returns true if a batch was served.
  bool step(std::unique_lock<std::mutex>& lock, bool drain_everything);
  /// Runs one micro-batch outside the lock, records it in the registry
  /// counters in ONE locked update before fulfilling the promises.
  void run_batch(std::vector<Entry>& batch, FlushReason reason);
  void worker_loop();

  /// True when this scheduler emits trace spans (cfg.obs.trace, real-time
  /// mode, collector state checked per span).
  bool trace_on() const { return cfg_.obs.trace && !cfg_.virtual_time; }

  /// The registry-backed counters behind the SchedStats facade. All
  /// updates happen under mu_ (preserving snapshot consistency); the
  /// striped cells make reads safe from any thread regardless.
  struct Metrics {
    Counter* submitted;
    Counter* completed;
    Counter* completed_in_deadline;
    Counter* shed_expired;
    Counter* shed_capacity;
    Counter* rejected_shutdown;
    Counter* shed_in_queue;
    Counter* batches;
    Counter* flush_full;
    Counter* flush_timeout;
    Counter* flush_drain;
    Counter* heap_allocs;
    Counter* fused_fallbacks;
    Counter* latencies_dropped;
    Gauge* max_batch_seen;
    Gauge* queue_depth;
    Gauge* window_us;
    Histogram* latency_us;
    Histogram* queue_wait_us;
    std::vector<Counter*> per_model_completed;
  };

  const std::vector<const QorPredictor*> models_;
  const SchedulerConfig cfg_;
  const std::chrono::steady_clock::time_point epoch_;
  /// Shift from this scheduler's now_us() timebase to the trace
  /// collector's (event ts = now_us() + trace_offset_us_).
  std::int64_t trace_offset_us_ = 0;

  std::unique_ptr<MetricsRegistry> own_registry_;  // !cfg.obs.metrics
  MetricsRegistry* registry_ = nullptr;
  Metrics m_{};

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  // worker wakeup: request / shutdown
  std::deque<Entry> queue_;           // kept in urgency order
  AdaptiveWindow window_;
  std::vector<double> latencies_us_;  // cfg.record_latencies only
  std::uint64_t next_seq_ = 0;
  std::int64_t virtual_now_ = 0;  // cfg.virtual_time only
  bool stop_ = false;

  std::mutex join_mu_;  // serializes concurrent shutdown() calls
  std::vector<std::thread> workers_;
};

}  // namespace gnnhls
