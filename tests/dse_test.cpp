// dse/ subsystem tests: Pareto-front correctness on hand-built dominance
// cases, deterministic design-space enumeration, and the explorer
// determinism contract — results bit-identical across thread-pool widths
// and across the direct predict_many vs ServingBatcher scoring paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "dse/explorer.h"
#include "suites/variants.h"
#include "support/parallel.h"

namespace gnnhls {
namespace {

// ----- pareto.h -----

TEST(ParetoTest, DominatesIsStrict) {
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_TRUE(dominates({1.0, 2.0}, {1.0, 3.0}));
  EXPECT_FALSE(dominates({1.0, 1.0}, {1.0, 1.0}));  // equal: no dominance
  EXPECT_FALSE(dominates({0.0, 3.0}, {3.0, 0.0}));  // trade-off
  EXPECT_THROW(dominates({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(ParetoTest, HandBuiltFront) {
  // 1 is dominated by 0; 4 duplicates 0 (tie-break keeps the first).
  const std::vector<std::vector<double>> points = {
      {1.0, 1.0}, {2.0, 2.0}, {0.0, 3.0}, {3.0, 0.0}, {1.0, 1.0}};
  EXPECT_EQ(pareto_front(points), (std::vector<int>{0, 2, 3}));
}

TEST(ParetoTest, AllEqualKeepsFirstOnly) {
  const std::vector<std::vector<double>> points = {
      {5.0, 5.0}, {5.0, 5.0}, {5.0, 5.0}};
  EXPECT_EQ(pareto_front(points), (std::vector<int>{0}));
}

TEST(ParetoTest, SingleAxisIsArgmin) {
  const std::vector<std::vector<double>> points = {{3.0}, {1.0}, {2.0}, {1.0}};
  EXPECT_EQ(pareto_front(points), (std::vector<int>{1}));
}

TEST(ParetoTest, EmptyAndSingleton) {
  EXPECT_TRUE(pareto_front({}).empty());
  EXPECT_EQ(pareto_front({{7.0, 7.0}}), (std::vector<int>{0}));
}

// ----- design_space.h -----

TEST(DesignSpaceTest, DeterministicEnumeration) {
  const DesignSpace space = make_kernel_design_space("gemm");
  EXPECT_EQ(space.size(), 12u);  // 4 unroll x 3 bitwidth x 1 clock x 1 unc
  const std::vector<DesignPoint> a = space.enumerate();
  const std::vector<DesignPoint> b = space.enumerate();
  ASSERT_EQ(a.size(), space.size());
  ASSERT_EQ(b.size(), space.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, static_cast<int>(i));
    EXPECT_EQ(a[i].label(), b[i].label());
    EXPECT_EQ(a[i].unroll, b[i].unroll);
    EXPECT_EQ(a[i].bitwidth, b[i].bitwidth);
    EXPECT_EQ(a[i].hls.clock_ns, b[i].hls.clock_ns);
    EXPECT_EQ(a[i].hls.clock_uncertainty, b[i].hls.clock_uncertainty);
  }
  // Labels are unique: every point is a distinct knob combination.
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(a[i].label(), a[j].label());
    }
  }
}

TEST(DesignSpaceTest, GridGrowthIsDeterministic) {
  const KnobGrid g = grid_with_at_least(40);
  EXPECT_GE(g.size(), 40u);
  const KnobGrid h = grid_with_at_least(40);
  EXPECT_EQ(g.bitwidth, h.bitwidth);
  EXPECT_EQ(g.clock_ns, h.clock_ns);
  EXPECT_THROW(grid_with_at_least(100000), std::invalid_argument);
}

TEST(DesignSpaceTest, CandidateIsPredictionReadyWithoutHls) {
  const DesignSpace space = make_kernel_design_space("fir");
  const std::vector<DesignPoint> points = space.enumerate();
  const Sample s = space.lower_candidate(points[0]);
  EXPECT_GT(s.graph().num_nodes(), 0);
  EXPECT_EQ(s.tensors.num_nodes, s.graph().num_nodes());
  // No HLS flow has run: ground truth is untouched.
  for (Metric m : kAllMetrics) EXPECT_EQ(metric_of(s.truth, m), 0.0);
}

TEST(DesignSpaceTest, UnrollGrowsTheGraph) {
  const DesignSpace space = make_kernel_design_space("stencil");
  DesignPoint narrow, wide;
  narrow.unroll = 1;
  narrow.bitwidth = 16;
  wide.unroll = 8;
  wide.bitwidth = 16;
  EXPECT_LT(space.lower_candidate(narrow).graph().num_nodes(),
            space.lower_candidate(wide).graph().num_nodes());
}

TEST(DesignSpaceTest, UnknownKernelThrows) {
  EXPECT_THROW(make_kernel_design_space("fft"), std::invalid_argument);
  EXPECT_THROW(make_variant("fft", 1, 32), std::invalid_argument);
}

TEST(VariantTest, KnobValidation) {
  EXPECT_THROW(make_gemm_variant(3, 32), std::invalid_argument);  // 3 ∤ 64
  EXPECT_THROW(make_gemm_variant(0, 32), std::invalid_argument);
  EXPECT_THROW(make_fir_variant(1, 1), std::invalid_argument);
  for (const VariantKernel& k : dse_variant_kernels()) {
    const Function f = k.build(2, 16);
    EXPECT_TRUE(f.has_control_flow());  // all variants lower to CDFGs
    EXPECT_NE(f.name.find(k.name), std::string::npos);
  }
}

// ----- explorer.h -----

/// Restores the default pool on scope exit (mirrors train_test).
struct PoolGuard {
  explicit PoolGuard(int threads) { ThreadPool::set_global_threads(threads); }
  ~PoolGuard() { ThreadPool::set_global_threads(0); }
};

struct Trained {
  QorPredictor lut;
  QorPredictor ff;
};

/// Training corpus + configs shared by every model the explorer tests fit
/// (including the fresh per-test models active-loop tests need, since
/// refitting mutates a model in place).
struct TrainSetup {
  std::vector<Sample> corpus;
  SplitIndices split;
  ModelConfig mc;
  TrainConfig tc;
};

const TrainSetup& train_setup() {
  static const TrainSetup* setup = [] {
    auto* s = new TrainSetup;
    SyntheticDatasetConfig dc;
    dc.kind = GraphKind::kCdfg;
    dc.num_graphs = 60;
    dc.seed = 33;
    s->corpus = build_synthetic_dataset(dc);
    s->split = split_80_10_10(static_cast<int>(s->corpus.size()), 3);
    s->mc.kind = GnnKind::kRgcn;
    s->mc.hidden = 16;
    s->mc.layers = 2;
    s->tc.epochs = 6;
    s->tc.lr = 1e-2F;
    s->tc.batch_size = 8;
    return s;
  }();
  return *setup;
}

/// A freshly fitted predictor, bitwise identical on every call — the model
/// active-loop tests hand to active_halving (which refits it in place).
QorPredictor fresh_predictor(Metric metric) {
  const TrainSetup& s = train_setup();
  QorPredictor p(Approach::kOffTheShelf, s.mc, s.tc);
  p.fit(s.corpus, s.split, metric, FitOptions{});
  return p;
}

/// One tiny LUT + FF predictor pair, trained once and shared by all
/// read-only explorer tests (fitting dominates test runtime).
const Trained& trained_predictors() {
  static const Trained* trained = [] {
    const TrainSetup& s = train_setup();
    auto* t = new Trained{QorPredictor(Approach::kOffTheShelf, s.mc, s.tc),
                          QorPredictor(Approach::kOffTheShelf, s.mc, s.tc)};
    t->lut.fit(s.corpus, s.split, Metric::kLut);
    t->ff.fit(s.corpus, s.split, Metric::kFf);
    return t;
  }();
  return *trained;
}

PredictorScorer direct_scorer() {
  const Trained& t = trained_predictors();
  return PredictorScorer(
      {{Metric::kLut, &t.lut}, {Metric::kFf, &t.ff}});
}

DesignSpace small_space() {
  KnobGrid grid;
  grid.unroll = {1, 2};
  grid.bitwidth = {8, 16};
  return make_kernel_design_space("gemm", grid);
}

void expect_identical_results(const DseResult& a, const DseResult& b) {
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].point.label(), b.candidates[i].point.label());
    EXPECT_EQ(a.candidates[i].predicted, b.candidates[i].predicted);
    EXPECT_EQ(a.candidates[i].uncertainty, b.candidates[i].uncertainty);
    EXPECT_EQ(a.candidates[i].synthesized, b.candidates[i].synthesized);
    EXPECT_EQ(a.candidates[i].latency_cycles, b.candidates[i].latency_cycles);
    for (Metric m : kAllMetrics) {
      EXPECT_EQ(metric_of(a.candidates[i].sample.truth, m),
                metric_of(b.candidates[i].sample.truth, m));
    }
  }
  EXPECT_EQ(a.front, b.front);
  EXPECT_EQ(a.predicted_front, b.predicted_front);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.hls_runs, b.hls_runs);
  EXPECT_EQ(a.survivors_per_round, b.survivors_per_round);
  // Active-loop trace (empty/default for the static strategies).
  EXPECT_EQ(a.refits, b.refits);
  EXPECT_EQ(a.fed_back, b.fed_back);
  EXPECT_EQ(a.acquisition, b.acquisition);
  ASSERT_EQ(a.refit_reports.size(), b.refit_reports.size());
  for (std::size_t i = 0; i < a.refit_reports.size(); ++i) {
    EXPECT_EQ(a.refit_reports[i].epochs_run, b.refit_reports[i].epochs_run);
    EXPECT_EQ(a.refit_reports[i].steps, b.refit_reports[i].steps);
  }
}

TEST(ExplorerTest, ExhaustiveSynthesizesEveryPoint) {
  const DesignSpace space = small_space();
  const PredictorScorer scorer = direct_scorer();
  const Explorer explorer(space, scorer);
  const DseResult r = explorer.exhaustive();
  ASSERT_EQ(r.candidates.size(), space.size());
  EXPECT_EQ(r.hls_runs, static_cast<int>(space.size()));
  EXPECT_EQ(r.survivors_per_round, (std::vector<int>{4}));
  for (const DseCandidate& c : r.candidates) {
    EXPECT_TRUE(c.synthesized);
    EXPECT_GT(metric_of(c.sample.truth, Metric::kLut), 0.0);
    EXPECT_GT(c.predicted[static_cast<std::size_t>(Metric::kLut)], 0.0);
  }
  ASSERT_FALSE(r.front.empty());
  ASSERT_GE(r.best, 0);
  // best is the true rank-metric argmin and sits on the front.
  for (const DseCandidate& c : r.candidates) {
    EXPECT_LE(metric_of(
                  r.candidates[static_cast<std::size_t>(r.best)].sample.truth,
                  Metric::kLut),
              metric_of(c.sample.truth, Metric::kLut));
  }
}

TEST(ExplorerTest, BitIdenticalAcrossThreadCounts) {
  const DesignSpace space = small_space();
  const PredictorScorer scorer = direct_scorer();
  DseResult serial_exh, serial_sh;
  {
    PoolGuard guard(1);
    // Construct inside the guard: candidate lowering happens at
    // construction and must be width-invariant too.
    const Explorer explorer(space, scorer);
    serial_exh = explorer.exhaustive();
    serial_sh = explorer.successive_halving();
  }
  {
    PoolGuard guard(4);
    const Explorer explorer(space, scorer);
    expect_identical_results(serial_exh, explorer.exhaustive());
    expect_identical_results(serial_sh, explorer.successive_halving());
  }
}

TEST(ExplorerTest, ServingScorerBitIdenticalToDirect) {
  const Trained& t = trained_predictors();
  const DesignSpace space = small_space();
  const PredictorScorer direct = direct_scorer();
  SchedulerConfig sc;
  sc.max_batch = 3;  // forces uneven micro-batch splits of the 4 candidates
  sc.batch_window_us = 0;
  const ServingScorer serving(
      {{Metric::kLut, &t.lut}, {Metric::kFf, &t.ff}}, sc);
  EXPECT_EQ(serving.metrics(), direct.metrics());
  const Explorer via_direct(space, direct);
  const Explorer via_serving(space, serving);
  expect_identical_results(via_direct.exhaustive(), via_serving.exhaustive());
  expect_identical_results(via_direct.successive_halving(),
                           via_serving.successive_halving());
}

TEST(ExplorerTest, HalvingRespectsGroundTruthBudget) {
  const DesignSpace space = make_kernel_design_space("gemm");  // 12 points
  const PredictorScorer scorer = direct_scorer();
  DseConfig cfg;
  cfg.top_k = 3;
  const Explorer explorer(space, scorer, cfg);
  const DseResult r = explorer.successive_halving();
  EXPECT_EQ(r.survivors_per_round, (std::vector<int>{12, 6, 3}));
  EXPECT_EQ(r.hls_runs, 3);
  int synthesized = 0;
  for (const DseCandidate& c : r.candidates) synthesized += c.synthesized;
  EXPECT_EQ(synthesized, 3);
  // The front only contains synthesized survivors, and best is one of them.
  for (int i : r.front) {
    EXPECT_TRUE(r.candidates[static_cast<std::size_t>(i)].synthesized);
  }
  ASSERT_GE(r.best, 0);
  EXPECT_TRUE(r.candidates[static_cast<std::size_t>(r.best)].synthesized);
  // Rounds 0 scored 2 metrics over 12; round 1 re-scored 1 metric over 6.
  EXPECT_EQ(r.scorer_calls, 3);
  EXPECT_EQ(r.scored_graphs, 2 * 12 + 6);
}

TEST(ExplorerTest, HalvingAgreesWithExhaustiveOnPredictions) {
  const DesignSpace space = make_kernel_design_space("gemm");
  const PredictorScorer scorer = direct_scorer();
  DseConfig cfg;
  cfg.top_k = 3;
  const Explorer explorer(space, scorer, cfg);
  const DseResult exh = explorer.exhaustive();
  const DseResult sh = explorer.successive_halving();
  // Predictions and the predicted front are strategy-independent.
  ASSERT_EQ(exh.candidates.size(), sh.candidates.size());
  for (std::size_t i = 0; i < exh.candidates.size(); ++i) {
    EXPECT_EQ(exh.candidates[i].predicted, sh.candidates[i].predicted);
  }
  EXPECT_EQ(exh.predicted_front, sh.predicted_front);
  // Survivors' ground truth matches the exhaustive sweep bit-for-bit.
  for (std::size_t i = 0; i < sh.candidates.size(); ++i) {
    if (!sh.candidates[i].synthesized) continue;
    for (Metric m : kAllMetrics) {
      EXPECT_EQ(metric_of(sh.candidates[i].sample.truth, m),
                metric_of(exh.candidates[i].sample.truth, m));
    }
  }
}

TEST(ExplorerTest, ConfigValidation) {
  const DesignSpace space = small_space();
  const PredictorScorer scorer = direct_scorer();
  DseConfig bad_topk;
  bad_topk.top_k = 0;
  EXPECT_THROW(Explorer(space, scorer, bad_topk), std::invalid_argument);
  DseConfig dup;
  dup.front_metrics = {Metric::kLut, Metric::kLut};
  EXPECT_THROW(Explorer(space, scorer, dup), std::invalid_argument);
  DseConfig unserved;
  unserved.front_metrics = {Metric::kDsp};  // scorer only has LUT + FF
  EXPECT_THROW(Explorer(space, scorer, unserved), std::invalid_argument);
  const PredictorScorer empty_scorer(
      std::vector<std::pair<Metric, const QorPredictor*>>{});
  EXPECT_THROW(empty_scorer.score(Metric::kLut, {}), std::invalid_argument);
}

// ----- ModelTable -----

TEST(ModelTableTest, RegistrationAndLookup) {
  const Trained& t = trained_predictors();
  ModelTable table;
  EXPECT_FALSE(table.has(Metric::kLut));
  table.add(Metric::kLut, &t.lut);
  EXPECT_TRUE(table.has(Metric::kLut));
  EXPECT_THROW(table.add(Metric::kLut, &t.ff), std::invalid_argument);
  table.add(Metric::kFf, &t.ff);
  EXPECT_EQ(table.flat().size(), 2u);
  EXPECT_EQ(table.members(Metric::kLut),
            (std::vector<const QorPredictor*>{&t.lut}));
  EXPECT_EQ(table.flat_id(Metric::kLut, 0), 0);
  EXPECT_EQ(table.flat_id(Metric::kFf, 0), 1);
  EXPECT_EQ(table.metrics(),
            (std::vector<Metric>{Metric::kLut, Metric::kFf}));
  EXPECT_THROW(table.members(Metric::kDsp), std::invalid_argument);
}

TEST(ModelTableTest, EnsembleRegistersEveryMember) {
  const TrainSetup& s = train_setup();
  const QorEnsemble ensemble(Approach::kOffTheShelf, s.mc, s.tc, 3);
  ModelTable table;
  table.add(Metric::kLut, &ensemble);
  ASSERT_EQ(table.members(Metric::kLut).size(), 3u);
  EXPECT_EQ(table.flat().size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(table.members(Metric::kLut)[static_cast<std::size_t>(k)],
              &ensemble.member(k));
    EXPECT_EQ(table.flat_id(Metric::kLut, k), k);
  }
}

// ----- QorEnsemble -----

TEST(EnsembleTest, EnsembleOfOneIsBitwiseTheSingleModel) {
  const TrainSetup& s = train_setup();
  QorPredictor single = fresh_predictor(Metric::kLut);
  QorEnsemble one(Approach::kOffTheShelf, s.mc, s.tc, 1);
  one.fit(s.corpus, s.split, Metric::kLut, FitOptions{});
  std::vector<const Sample*> ptrs;
  for (int i : s.split.val) {
    ptrs.push_back(&s.corpus[static_cast<std::size_t>(i)]);
  }
  std::vector<double> want = single.predict_many(ptrs);
  std::vector<ScoreResult> got = one.score_many(ptrs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(got[j].mean, want[j]);
    EXPECT_EQ(got[j].uncertainty, 0.0);
  }
  // ... and the parity survives an identical refit on the same delta.
  const std::vector<Sample> delta(s.corpus.begin(), s.corpus.begin() + 4);
  single.refit(delta);
  one.refit(delta);
  want = single.predict_many(ptrs);
  got = one.score_many(ptrs);
  for (std::size_t j = 0; j < got.size(); ++j) {
    EXPECT_EQ(got[j].mean, want[j]);
  }
}

TEST(EnsembleTest, MembersDisagreeAndAggregateDeterministically) {
  const TrainSetup& s = train_setup();
  QorEnsemble ensemble(Approach::kOffTheShelf, s.mc, s.tc, 3);
  EXPECT_EQ(ensemble.size(), 3);
  ensemble.fit(s.corpus, s.split, Metric::kLut, FitOptions{});
  EXPECT_EQ(ensemble.metric(), Metric::kLut);
  std::vector<const Sample*> ptrs;
  for (int i : s.split.val) {
    ptrs.push_back(&s.corpus[static_cast<std::size_t>(i)]);
  }
  const std::vector<ScoreResult> scored = ensemble.score_many(ptrs);
  // Seed-offset members genuinely disagree: dispersion is visible.
  double max_unc = 0.0;
  for (const ScoreResult& r : scored) max_unc = std::max(max_unc, r.uncertainty);
  EXPECT_GT(max_unc, 0.0);
  // The mean sits inside the member envelope.
  for (std::size_t j = 0; j < ptrs.size(); ++j) {
    double lo = std::numeric_limits<double>::infinity(), hi = -lo;
    for (int k = 0; k < 3; ++k) {
      const double v = ensemble.member(k).predict(*ptrs[j]);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    EXPECT_GE(scored[j].mean, lo);
    EXPECT_LE(scored[j].mean, hi);
  }
  // Scoring is a pure function: byte-identical on repeat.
  const std::vector<ScoreResult> again = ensemble.score_many(ptrs);
  for (std::size_t j = 0; j < scored.size(); ++j) {
    EXPECT_EQ(scored[j].mean, again[j].mean);
    EXPECT_EQ(scored[j].uncertainty, again[j].uncertainty);
  }
}

// ----- active_halving -----

TEST(ExplorerTest, ActiveWithZeroFeedbackEqualsStatic) {
  const DesignSpace space = make_kernel_design_space("gemm");  // 12 points
  const PredictorScorer scorer = direct_scorer();
  DseConfig cfg;
  cfg.top_k = 3;
  cfg.active.feedback_rounds = 0;
  const Explorer explorer(space, scorer, cfg);
  const DseResult stat = explorer.successive_halving();
  const DseResult active = explorer.active_halving(
      [](const std::vector<Sample>&) -> FitReport {
        ADD_FAILURE() << "refit must not run with feedback_rounds == 0";
        return {};
      });
  expect_identical_results(stat, active);
  EXPECT_EQ(active.refits, 0);
  EXPECT_TRUE(active.fed_back.empty());
}

TEST(ExplorerTest, ActiveHalvingBudgetAndTrace) {
  const Trained& t = trained_predictors();
  QorPredictor lut = fresh_predictor(Metric::kLut);
  const PredictorScorer scorer(
      {{Metric::kLut, &lut}, {Metric::kFf, &t.ff}});
  const DesignSpace space = make_kernel_design_space("gemm");  // 12 points
  DseConfig cfg;
  cfg.top_k = 3;
  cfg.active.feedback_rounds = 1;
  const Explorer explorer(space, scorer, cfg);
  const DseResult r = explorer.active_halving(lut);
  // Budget-exact: feedback spends from successive halving's pot.
  EXPECT_EQ(r.hls_runs, 3);
  int synthesized = 0;
  for (const DseCandidate& c : r.candidates) synthesized += c.synthesized;
  EXPECT_EQ(synthesized, 3);
  EXPECT_EQ(r.survivors_per_round, (std::vector<int>{12, 6, 3}));
  // Trace: one feedback round of max(1, top_k / 2) = 1 candidate.
  EXPECT_EQ(r.refits, 1);
  EXPECT_EQ(lut.refits(), 1);
  ASSERT_EQ(r.fed_back.size(), 1u);
  EXPECT_EQ(r.fed_back[0].size(), 1u);
  ASSERT_EQ(r.refit_reports.size(), 1u);
  EXPECT_TRUE(r.refit_reports[0].warm_started);
  EXPECT_EQ(r.refit_reports[0].epochs_run,
            QorPredictor::refit_defaults().epochs);
  EXPECT_EQ(r.acquisition, Acquisition::kPredictedRank);
  // Fed-back candidates are synthesized, and their truth counts: front /
  // best are drawn from every synthesized point.
  for (int i : r.fed_back[0]) {
    EXPECT_TRUE(r.candidates[static_cast<std::size_t>(i)].synthesized);
  }
  ASSERT_GE(r.best, 0);
  EXPECT_TRUE(r.candidates[static_cast<std::size_t>(r.best)].synthesized);
  // Single-model scorer: uncertainty stays exactly zero everywhere.
  for (const DseCandidate& c : r.candidates) {
    for (double u : c.uncertainty) EXPECT_EQ(u, 0.0);
  }
}

TEST(ExplorerTest, ActiveBitIdenticalAcrossThreadCounts) {
  const Trained& t = trained_predictors();
  const DesignSpace space = make_kernel_design_space("gemm");
  DseConfig cfg;
  cfg.top_k = 3;
  cfg.active.feedback_rounds = 2;
  DseResult serial;
  {
    PoolGuard guard(1);
    // Fit AND explore inside the guard: the fit, the refits and the
    // scoring rounds must all be width-invariant for the traces to match.
    QorPredictor lut = fresh_predictor(Metric::kLut);
    const PredictorScorer scorer(
        {{Metric::kLut, &lut}, {Metric::kFf, &t.ff}});
    const Explorer explorer(space, scorer, cfg);
    serial = explorer.active_halving(lut);
  }
  {
    PoolGuard guard(4);
    QorPredictor lut = fresh_predictor(Metric::kLut);
    const PredictorScorer scorer(
        {{Metric::kLut, &lut}, {Metric::kFf, &t.ff}});
    const Explorer explorer(space, scorer, cfg);
    expect_identical_results(serial, explorer.active_halving(lut));
  }
  EXPECT_GE(serial.refits, 1);
}

TEST(ExplorerTest, ActiveServingScorerBitIdenticalToDirect) {
  const Trained& t = trained_predictors();
  const DesignSpace space = make_kernel_design_space("gemm");
  DseConfig cfg;
  cfg.top_k = 3;
  // Two identically-fitted rank models: each arm refits its own copy.
  QorPredictor lut_direct = fresh_predictor(Metric::kLut);
  QorPredictor lut_serving = fresh_predictor(Metric::kLut);
  const PredictorScorer direct(
      {{Metric::kLut, &lut_direct}, {Metric::kFf, &t.ff}});
  SchedulerConfig sc;
  sc.max_batch = 5;  // forces uneven micro-batch splits
  sc.batch_window_us = 0;
  const ServingScorer serving(
      {{Metric::kLut, &lut_serving}, {Metric::kFf, &t.ff}}, sc);
  const Explorer via_direct(space, direct, cfg);
  const Explorer via_serving(space, serving, cfg);
  const DseResult a = via_direct.active_halving(lut_direct);
  // The serving arm refits lut_serving between scoring rounds — exactly
  // the quiescent-refit contract serve/scheduler.h documents.
  const DseResult b = via_serving.active_halving(lut_serving);
  expect_identical_results(a, b);
  EXPECT_GE(a.refits, 1);
}

TEST(ExplorerTest, ActiveEnsembleUncertaintyBonus) {
  const Trained& t = trained_predictors();
  const TrainSetup& s = train_setup();
  QorEnsemble ensemble(Approach::kOffTheShelf, s.mc, s.tc, 2);
  ensemble.fit(s.corpus, s.split, Metric::kLut, FitOptions{});
  ModelTable table;
  table.add(Metric::kLut, &ensemble);
  table.add(Metric::kFf, &t.ff);
  const PredictorScorer scorer(std::move(table));
  const DesignSpace space = make_kernel_design_space("gemm");
  DseConfig cfg;
  cfg.top_k = 3;
  cfg.active.acquisition = Acquisition::kUncertaintyBonus;
  cfg.active.beta = 1.0;
  const Explorer explorer(space, scorer, cfg);
  const DseResult r = explorer.active_halving(ensemble);
  EXPECT_EQ(r.acquisition, Acquisition::kUncertaintyBonus);
  EXPECT_EQ(r.hls_runs, 3);  // acquisition changes choices, never budget
  EXPECT_GE(r.refits, 1);
  // The ensemble's dispersion reached the candidates' rank metric.
  double max_unc = 0.0;
  for (const DseCandidate& c : r.candidates) {
    max_unc = std::max(
        max_unc, c.uncertainty[static_cast<std::size_t>(Metric::kLut)]);
  }
  EXPECT_GT(max_unc, 0.0);
}

TEST(ExplorerTest, ActiveValidation) {
  const DesignSpace space = small_space();
  const PredictorScorer scorer = direct_scorer();
  const Explorer explorer(space, scorer);
  EXPECT_THROW(explorer.active_halving(Explorer::RefitFn{}),
               std::invalid_argument);
  // Convenience overload rejects a model fitted for a different metric.
  QorPredictor ff = fresh_predictor(Metric::kFf);
  EXPECT_THROW(explorer.active_halving(ff), std::invalid_argument);
  DseConfig bad;
  bad.active.feedback_rounds = -1;
  const Explorer bad_explorer(space, scorer, bad);
  EXPECT_THROW(bad_explorer.active_halving(
                   [](const std::vector<Sample>&) { return FitReport{}; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace gnnhls
