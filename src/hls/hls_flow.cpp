#include "hls/hls_flow.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace gnnhls {

namespace {

/// Width bucket for functional-unit compatibility: ops share an FU only if
/// their operand widths round to the same bucket.
int width_bucket(int w) { return ((w + 7) / 8) * 8; }

struct FuGroup {
  Opcode op;
  int bucket;
  std::vector<int> nodes;               // member op nodes
  std::vector<std::pair<int, int>> use; // (block, start..end cycle) intervals
};

}  // namespace

HlsOutcome run_hls_flow(LoweredProgram& prog, const HlsConfig& cfg) {
  const ResourceLibrary lib;
  HlsOutcome out;
  out.schedule = schedule_program(prog, lib, cfg);
  out.latency_cycles = out.schedule.latency_cycles;

  IrGraph& g = prog.graph;
  const int n = g.num_nodes();

  // Per-node base cost (before sharing).
  std::vector<OpCost> base(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const IrNode& node = g.node(i);
    base[static_cast<std::size_t>(i)] =
        lib.cost(node.opcode, node.bitwidth,
                 has_constant_shift_amount(g, i), data_fanin(g, i));
  }

  // ----- binding: group sharable ops, count required FU instances -----
  std::map<std::pair<int, int>, FuGroup> groups;
  std::map<int, const OpSchedule*> sched;
  std::map<int, int> block_of;
  for (const BlockSchedule& bs : out.schedule.blocks) {
    for (const OpSchedule& os : bs.ops) {
      sched[os.node] = &os;
      block_of[os.node] = bs.block_id;
    }
  }
  for (int i = 0; i < n; ++i) {
    if (!base[static_cast<std::size_t>(i)].sharable) continue;
    const auto key = std::make_pair(static_cast<int>(g.node(i).opcode),
                                    width_bucket(g.node(i).bitwidth));
    auto& grp = groups[key];
    grp.op = g.node(i).opcode;
    grp.bucket = key.second;
    grp.nodes.push_back(i);
  }

  double fu_dsp = 0.0, fu_lut = 0.0, fu_ff = 0.0, mux_lut = 0.0;
  std::vector<double> node_dsp(static_cast<std::size_t>(n), 0.0);
  std::vector<double> node_lut(static_cast<std::size_t>(n), 0.0);
  std::vector<double> node_ff(static_cast<std::size_t>(n), 0.0);

  int fu_instances = 0, sharable_ops = 0;
  for (auto& [key, grp] : groups) {
    (void)key;
    sharable_ops += static_cast<int>(grp.nodes.size());
    const OpCost unit = base[static_cast<std::size_t>(grp.nodes.front())];

    int instances = 1;
    if (unit.dsp > 0.0) {
      // DSP multipliers: Vitis instantiates one per operation within a
      // datapath and only reuses across FSM regions (blocks) — so the DSP
      // count is the structural multiply count of the busiest block, not a
      // cycle-overlap artifact.
      std::map<int, int> per_block;
      for (int node : grp.nodes) per_block[block_of.at(node)]++;
      for (const auto& [blk, cnt] : per_block) {
        (void)blk;
        instances = std::max(instances, cnt);
      }
    } else {
      // LUT-heavy iterative units (dividers): shared whenever busy
      // intervals do not overlap — max concurrent use within a block.
      std::map<int, std::map<int, int>> busy;  // block -> cycle -> count
      for (int node : grp.nodes) {
        const OpSchedule* os = sched.at(node);
        auto& cycles = busy[block_of.at(node)];
        for (int c = os->start_cycle; c <= os->end_cycle; ++c) cycles[c]++;
      }
      for (const auto& [blk, cycles] : busy) {
        (void)blk;
        for (const auto& [c, cnt] : cycles) {
          (void)c;
          instances = std::max(instances, cnt);
        }
      }
    }
    fu_instances += instances;
    fu_dsp += unit.dsp * instances;
    fu_lut += unit.lut * instances;
    fu_ff += unit.ff * instances;

    const int k = static_cast<int>(grp.nodes.size());
    double grp_mux = 0.0;
    if (k > instances) {
      // Two operand ports per shared instance get source muxes.
      const int sources = (k + instances - 1) / instances;
      grp_mux = 2.0 * instances * lib.sharing_mux_lut(grp.bucket, sources);
      mux_lut += grp_mux;
    }
    // Attribute shared cost back to member nodes (knowledge-rich feature).
    for (int node : grp.nodes) {
      node_dsp[static_cast<std::size_t>(node)] =
          unit.dsp * instances / static_cast<double>(k);
      node_lut[static_cast<std::size_t>(node)] =
          (unit.lut * instances + grp_mux) / static_cast<double>(k);
      node_ff[static_cast<std::size_t>(node)] =
          unit.ff * instances / static_cast<double>(k);
    }
  }
  out.binding = BindingStats{sharable_ops, fu_instances, mux_lut};

  // Non-shared ops contribute their full cost.
  double direct_dsp = 0.0, direct_lut = 0.0, direct_ff = 0.0;
  for (int i = 0; i < n; ++i) {
    const OpCost& c = base[static_cast<std::size_t>(i)];
    if (c.sharable) continue;
    direct_dsp += c.dsp;
    direct_lut += c.lut;
    direct_ff += c.ff;
    node_dsp[static_cast<std::size_t>(i)] = c.dsp;
    node_lut[static_cast<std::size_t>(i)] = c.lut;
    node_ff[static_cast<std::size_t>(i)] = c.ff;
  }

  // Pipeline registers discovered by the scheduler belong to their producer
  // node (this is what makes a node "use FF" even when its operator is pure
  // combinational logic).
  for (const BlockSchedule& bs : out.schedule.blocks) {
    for (const OpSchedule& os : bs.ops) {
      if (os.registered &&
          base[static_cast<std::size_t>(os.node)].latency == 0) {
        node_ff[static_cast<std::size_t>(os.node)] +=
            lib.register_ff(g.node(os.node).bitwidth);
      }
    }
  }

  // ----- implementation (ground truth) -----
  const int states = std::max(out.schedule.total_states, 1);
  const int num_blocks = static_cast<int>(prog.blocks.size());
  const double fsm_lut = 3.5 * states + 1.5 * num_blocks;
  const double fsm_ff = std::ceil(std::log2(static_cast<double>(states) + 1.0));

  int max_fanout = 1;
  for (int i = 0; i < n; ++i) {
    max_fanout = std::max(max_fanout,
                          g.out_degree()[static_cast<std::size_t>(i)]);
  }

  out.implemented.dsp = fu_dsp + direct_dsp;
  out.implemented.lut = fu_lut + direct_lut + mux_lut + fsm_lut;
  out.implemented.ff =
      fu_ff + direct_ff + out.schedule.total_register_ff + fsm_ff;
  // CP = worst in-state combinational chain + utilization- and
  // fanout-dependent routing pessimism. The chain term is local (§5.2 "CP
  // timing is local information"); the routing terms add graph-global
  // variance the way placement congestion does on a real device.
  out.implemented.cp_ns =
      out.schedule.max_chain_ns + 0.30 +
      0.85 * std::log1p(out.implemented.lut / 1500.0) +
      0.15 * std::log2(1.0 + static_cast<double>(max_fanout));

  // ----- HLS synthesis report (the inaccurate baseline) -----
  double report_dsp = 0.0, report_lut = 0.0, report_ff = 0.0;
  for (int i = 0; i < n; ++i) {
    const IrNode& node = g.node(i);
    OpCost c = base[static_cast<std::size_t>(i)];
    // The report counts every operator instance (no sharing) and assumes
    // DSP for any non-trivial multiply.
    if (node.opcode == Opcode::kMul && node.bitwidth > 8 &&
        node.bitwidth <= kLutMulMaxWidth) {
      c.dsp = 1.0;
      c.lut = 0.0;
    }
    report_dsp += c.dsp;
    // Pre-optimization netlist: no logic optimization, no carry packing,
    // no dedup -> a large constant factor on LUTs.
    report_lut += 3.2 * c.lut;
    // Registers every operator output instead of only state-crossing ones.
    report_ff += 2.0 * c.ff + 0.9 * node.bitwidth *
                                  (is_datapath_op(node.opcode) ? 1.0 : 0.0);
  }
  report_lut += 6.0 * states + 10.0 * num_blocks;
  out.reported.dsp = report_dsp;
  out.reported.lut = report_lut;
  out.reported.ff = report_ff;
  // Reports "timing met" just under the target regardless of reality.
  out.reported.cp_ns = cfg.clock_ns * (1.0 - cfg.clock_uncertainty) * 0.98;

  // ----- per-node annotations (labels + knowledge features) -----
  for (int i = 0; i < n; ++i) {
    NodeResourceInfo& info = g.mutable_node(i).resource;
    info.dsp = static_cast<float>(node_dsp[static_cast<std::size_t>(i)]);
    info.lut = static_cast<float>(node_lut[static_cast<std::size_t>(i)]);
    info.ff = static_cast<float>(node_ff[static_cast<std::size_t>(i)]);
    info.uses_dsp = info.dsp > 0.0F;
    info.uses_lut = info.lut > 0.0F;
    info.uses_ff = info.ff > 0.0F;
  }
  return out;
}

}  // namespace gnnhls
