#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json artifact against a checked-in baseline.

Understands both artifact dialects the repo produces:

  * google-benchmark JSON (bench_micro --json=...): one record per benchmark
    under "benchmarks"; items_per_second is used when present (higher is
    better), otherwise real_time (lower is better).
  * the bench_common BenchJsonLog format ({"bench": ..., "entries":
    [{name, value, unit}, ...]}): units ending in "/s" are higher-is-better,
    time units (ns/us/ms/s) lower-is-better, anything else (e.g. "rho"
    rank-quality scores) is compared as an absolute quantity.

A regression is a shared entry that got worse by more than --threshold
(default 0.15 = 15%). Entries present on only one side are reported but
never fail the comparison (benches grow; baselines age).

--normalize divides every *machine-speed-dependent* entry (times and rates)
by the geometric mean of its direction group, computed over the entries
shared by both files. That cancels the absolute speed difference between
the machine that produced the baseline and the machine running the check,
leaving only the *relative* shape of the bench suite — which is what a
cross-machine CI gate can meaningfully enforce. Absolute units (scores like
"rho") are never normalized. Needs >= 2 shared entries per direction group
to be meaningful; with fewer, normalized comparison of that group is
vacuous and the script says so.

Exit status: 0 = no regression, 1 = at least one regression, 2 = usage or
parse error.
"""

import argparse
import json
import math
import re
import sys

TIME_UNITS = {"ns", "us", "ms", "s"}


def load_entries(path):
    """Returns {name: (value, direction, normalizable)} where direction is
    +1 (higher is better) or -1 (lower is better)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")

    entries = {}
    if isinstance(doc, dict) and "benchmarks" in doc:
        # google-benchmark dialect.
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            name = b["name"]
            if "items_per_second" in b:
                entries[name] = (float(b["items_per_second"]), +1, True)
            elif "real_time" in b:
                entries[name] = (float(b["real_time"]), -1, True)
    elif isinstance(doc, dict) and "entries" in doc:
        # BenchJsonLog dialect.
        for e in doc["entries"]:
            unit = e.get("unit", "")
            if unit.endswith("/s"):
                direction, normalizable = +1, True
            elif unit in TIME_UNITS:
                direction, normalizable = -1, True
            else:
                direction, normalizable = +1, False
            entries[e["name"]] = (float(e["value"]), direction, normalizable)
    else:
        sys.exit(f"error: {path} is not a recognized bench JSON artifact")
    if not entries:
        sys.exit(f"error: {path} contains no comparable entries")
    return entries


def geomean(values):
    vals = [v for v in values if v > 0.0]
    if not vals:
        return 1.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="checked-in BENCH_*.json")
    ap.add_argument("fresh", help="freshly produced BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="worst tolerated relative regression "
                         "(default 0.15 = 15%%)")
    ap.add_argument("--normalize", action="store_true",
                    help="self-normalize times/rates by their direction "
                         "group's geometric mean over shared entries "
                         "(cross-machine comparison)")
    ap.add_argument("--filter", default=None, metavar="REGEX",
                    help="compare only entries whose name matches REGEX. "
                         "With --normalize across machines of different "
                         "core counts, restrict to single-thread entries: "
                         "multi-thread entries scale with cores, not just "
                         "machine speed, and would skew the geomean")
    args = ap.parse_args()

    base = load_entries(args.baseline)
    fresh = load_entries(args.fresh)
    if args.filter:
        try:
            pat = re.compile(args.filter)
        except re.error as e:
            sys.exit(f"error: bad --filter regex: {e}")
        base = {n: v for n, v in base.items() if pat.search(n)}
        fresh = {n: v for n, v in fresh.items() if pat.search(n)}
        if not base or not fresh:
            sys.exit("error: --filter matched no entries in one of the "
                     "artifacts")

    shared = sorted(set(base) & set(fresh))
    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))
    if not shared:
        sys.exit("error: the two artifacts share no benchmark names")

    scale = {+1: (1.0, 1.0), -1: (1.0, 1.0)}  # direction -> (base, fresh)
    if args.normalize:
        for direction in (+1, -1):
            names = [n for n in shared
                     if base[n][1] == direction and base[n][2]]
            if len(names) < 2:
                if names:
                    print(f"note: only {len(names)} shared normalizable "
                          f"entr{'y' if len(names) == 1 else 'ies'} in "
                          f"direction {direction:+d}; normalized comparison "
                          "of that group is vacuous")
                continue
            scale[direction] = (geomean(base[n][0] for n in names),
                                geomean(fresh[n][0] for n in names))

    regressions = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>14}  {'fresh':>14}  "
          f"{'delta':>8}")
    for name in shared:
        bval, direction, normalizable = base[name]
        fval = fresh[name][0]
        if args.normalize and normalizable:
            sb, sf = scale[direction]
            bcmp, fcmp = bval / sb, fval / sf
        else:
            bcmp, fcmp = bval, fval
        if bcmp == 0.0:
            delta = 0.0
        else:
            # Positive delta always means "better" regardless of direction.
            delta = direction * (fcmp - bcmp) / abs(bcmp)
        flag = ""
        if delta < -args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {bval:>14.4g}  {fval:>14.4g}  "
              f"{delta:>+7.1%}{flag}")

    for name in only_base:
        print(f"note: baseline-only entry (not compared): {name}")
    for name in only_fresh:
        print(f"note: new entry (no baseline yet): {name}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: no regression beyond {args.threshold:.0%} across "
          f"{len(shared)} shared entries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
