#include "obs/metrics.h"

#include <sstream>
#include <stdexcept>

namespace gnnhls {

int obs_thread_stripe() {
  static std::atomic<int> next{0};
  thread_local const int stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

int Histogram::bucket_index(std::uint64_t v) {
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (v <= bucket_upper_bound(i)) return i;
  }
  return kHistogramBuckets;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (int i = 0; i <= kHistogramBuckets; ++i) total += bucket_count(i);
  return total;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (const Cell& c : cells_) total += c.sum.load(std::memory_order_relaxed);
  return total;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* g = new MetricsRegistry();  // never destroyed:
  return *g;  // metrics may be touched by detached threads at exit
}

std::uint64_t MetricsRegistry::next_instance_id() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::Metric& MetricsRegistry::find_or_create(
    const std::string& name, const std::string& labels, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto key = std::make_pair(name, labels);
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Metric m;
    m.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        m.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        m.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        m.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(std::move(key), std::move(m)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + name +
                           "' re-registered as a different kind");
  }
  return it->second;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels) {
  return find_or_create(name, labels, Kind::kCounter).counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels) {
  return find_or_create(name, labels, Kind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& labels) {
  return find_or_create(name, labels, Kind::kHistogram).histogram.get();
}

namespace {

std::string series_name(const std::string& name, const std::string& labels,
                        const std::string& extra_label = "") {
  std::string out = name;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::render_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  const std::string* last_family = nullptr;
  for (const auto& [key, metric] : metrics_) {
    const std::string& name = key.first;
    const std::string& labels = key.second;
    if (last_family == nullptr || *last_family != name) {
      const char* type = metric.kind == Kind::kCounter    ? "counter"
                         : metric.kind == Kind::kGauge    ? "gauge"
                                                          : "histogram";
      out << "# TYPE " << name << ' ' << type << '\n';
      last_family = &name;
    }
    switch (metric.kind) {
      case Kind::kCounter:
        out << series_name(name, labels) << ' ' << metric.counter->value()
            << '\n';
        break;
      case Kind::kGauge:
        out << series_name(name, labels) << ' ' << metric.gauge->value()
            << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram& h = *metric.histogram;
        std::uint64_t cumulative = 0;
        for (int i = 0; i < kHistogramBuckets; ++i) {
          cumulative += h.bucket_count(i);
          out << series_name(name + "_bucket", labels,
                             "le=\"" +
                                 std::to_string(
                                     Histogram::bucket_upper_bound(i)) +
                                 "\"")
              << ' ' << cumulative << '\n';
        }
        cumulative += h.bucket_count(kHistogramBuckets);
        out << series_name(name + "_bucket", labels, "le=\"+Inf\"") << ' '
            << cumulative << '\n';
        out << series_name(name + "_sum", labels) << ' ' << h.sum() << '\n';
        out << series_name(name + "_count", labels) << ' ' << cumulative
            << '\n';
        break;
      }
    }
  }
  return out.str();
}

}  // namespace gnnhls
