// HLS simulator inspector: schedule, binding and QoR report for any of the
// 56 real-world suite kernels — and the report-vs-implementation gap that
// motivates learned predictors (paper Table 5's "HLS" column).
//
// Build & run:  ./build/examples/hls_report_inspector [--kernel=gemm]
#include <iostream>

#include "hls/hls_flow.h"
#include "suites/suites.h"
#include "support/flags.h"
#include "support/table.h"

using namespace gnnhls;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string wanted = flags.get_string("kernel", "gemm_ncubed");
  flags.check_all_consumed();

  const auto programs = all_real_world();
  const SuiteProgram* chosen = nullptr;
  for (const auto& p : programs) {
    if (p.name == wanted) chosen = &p;
  }
  if (chosen == nullptr) {
    std::cerr << "unknown kernel '" << wanted << "'. Available:\n";
    for (const auto& p : programs) {
      std::cerr << "  " << p.suite << "/" << p.name << "\n";
    }
    return 1;
  }

  std::cout << "kernel: " << chosen->suite << "/" << chosen->name << "\n";
  LoweredProgram prog = lower_to_cdfg(chosen->func);
  const HlsOutcome outcome = run_hls_flow(prog);

  std::cout << "IR graph: " << prog.graph.num_nodes() << " nodes, "
            << prog.graph.num_edges() << " edges ("
            << prog.graph.count_back_edges() << " back edges), "
            << prog.blocks.size() << " basic blocks\n\n";

  TextTable sched({"block", "ops", "FSM states", "loop depth", "exec count",
                   "worst chain (ns)"});
  for (std::size_t b = 0; b < outcome.schedule.blocks.size(); ++b) {
    const BlockSchedule& bs = outcome.schedule.blocks[b];
    const BasicBlockInfo& info = prog.blocks[b];
    sched.add_row({std::to_string(bs.block_id),
                   std::to_string(bs.ops.size()),
                   std::to_string(bs.cycles),
                   std::to_string(info.loop_depth),
                   TextTable::num(info.exec_count, 0),
                   TextTable::num(bs.max_chain_ns, 2)});
  }
  std::cout << "schedule:\n" << sched.to_string() << "\n";

  std::cout << "binding: " << outcome.binding.sharable_ops
            << " sharable ops mapped to " << outcome.binding.fu_instances
            << " functional units (+" << TextTable::num(outcome.binding.mux_lut, 0)
            << " mux LUTs)\n"
            << "latency: " << TextTable::num(outcome.latency_cycles, 0)
            << " cycles (" << outcome.schedule.total_states
            << " FSM states)\n\n";

  TextTable qor({"", "DSP", "LUT", "FF", "CP (ns)"});
  qor.add_row({"HLS report (pre-impl.)",
               TextTable::num(outcome.reported.dsp, 0),
               TextTable::num(outcome.reported.lut, 0),
               TextTable::num(outcome.reported.ff, 0),
               TextTable::num(outcome.reported.cp_ns, 2)});
  qor.add_row({"implemented (actual)",
               TextTable::num(outcome.implemented.dsp, 0),
               TextTable::num(outcome.implemented.lut, 0),
               TextTable::num(outcome.implemented.ff, 0),
               TextTable::num(outcome.implemented.cp_ns, 2)});
  std::cout << "quality of result:\n" << qor.to_string();

  const auto gap = [](double rep, double impl) {
    return impl > 0 ? rep / impl : 0.0;
  };
  std::cout << "\nreport/implementation ratio: LUT x"
            << TextTable::num(gap(outcome.reported.lut, outcome.implemented.lut), 1)
            << ", FF x"
            << TextTable::num(gap(outcome.reported.ff, outcome.implemented.ff), 1)
            << " — the systematic report error that Table 5's GNN predictors "
               "beat.\n";
  return 0;
}
