#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.h"

namespace gnnhls {

double mape(const std::vector<double>& pred, const std::vector<double>& truth,
            double floor) {
  GNNHLS_CHECK_EQ(pred.size(), truth.size(), "mape: length mismatch");
  GNNHLS_CHECK(!pred.empty(), "mape: empty input");
  GNNHLS_CHECK(floor > 0.0, "mape: floor must be positive");
  double total = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    total += std::abs(pred[i] - truth[i]) / std::max(std::abs(truth[i]), floor);
  }
  return total / static_cast<double>(pred.size());
}

double binary_accuracy(const std::vector<int>& pred,
                       const std::vector<int>& truth) {
  GNNHLS_CHECK_EQ(pred.size(), truth.size(), "accuracy: length mismatch");
  GNNHLS_CHECK(!pred.empty(), "accuracy: empty input");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if ((pred[i] != 0) == (truth[i] != 0)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

std::vector<double> average_ranks(const std::vector<double>& values) {
  std::vector<int> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&values](int x, int y) {
    return values[static_cast<std::size_t>(x)] <
           values[static_cast<std::size_t>(y)];
  });
  std::vector<double> ranks(values.size());
  std::size_t i = 0;
  while (i < order.size()) {
    // [i, j] is a run of equal values; all of them get the mean 1-based rank.
    std::size_t j = i;
    while (j + 1 < order.size() &&
           values[static_cast<std::size_t>(order[j + 1])] ==
               values[static_cast<std::size_t>(order[i])]) {
      ++j;
    }
    const double avg = static_cast<double>(i + j) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      ranks[static_cast<std::size_t>(order[k])] = avg;
    }
    i = j + 1;
  }
  return ranks;
}

double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  GNNHLS_CHECK_EQ(a.size(), b.size(), "spearman: length mismatch");
  GNNHLS_CHECK(a.size() >= 2, "spearman: need at least two points");
  const std::vector<double> ra = average_ranks(a), rb = average_ranks(b);
  const double n = static_cast<double>(a.size());
  const double mean = (n + 1.0) / 2.0;  // average ranks always sum to n(n+1)/2
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double da = ra[i] - mean, db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace gnnhls
