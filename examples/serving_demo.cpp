// Serving demo: QoR inference as a service for a DSE loop.
//
//   1. Train an off-the-shelf RGCN predictor on a small synthetic corpus.
//   2. Stand up a ServingBatcher over the trained predictor.
//   3. Simulate a design-space exploration: several searcher threads submit
//      candidate designs concurrently and block on their future (one
//      in-flight candidate per searcher).
//   4. Show that every served prediction is bit-identical to a sequential
//      QorPredictor::predict call, and how the worker micro-batched the
//      concurrent traffic.
//
// Exit code 1 if any served prediction diverges from the sequential path —
// CI runs this binary as a Release-configuration serving smoke test.
//
// Build & run:  ./build/serving_demo
#include <atomic>
#include <iostream>
#include <thread>

#include "serve/serving_batcher.h"
#include "support/table.h"
#include "support/timer.h"

using namespace gnnhls;

int main() {
  // ----- 1. train a predictor -----
  std::cout << "== 1. training off-the-shelf RGCN on 120 synthetic DFGs ==\n";
  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kDfg;
  dc.num_graphs = 120;
  dc.seed = 20260730;
  const std::vector<Sample> corpus = build_synthetic_dataset(dc);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(corpus.size()), 7);

  ModelConfig mc;
  mc.kind = GnnKind::kRgcn;
  mc.hidden = 32;
  mc.layers = 3;
  TrainConfig tc;
  tc.epochs = 10;
  tc.lr = 1e-2F;
  tc.batch_size = 8;
  QorPredictor predictor(Approach::kOffTheShelf, mc, tc);
  Timer fit_timer;
  const double val = predictor.fit(corpus, split, Metric::kLut);
  std::cout << "  val MAPE " << TextTable::pct(val) << " in "
            << TextTable::num(fit_timer.seconds(), 1) << "s\n\n";

  // ----- 2. stand up the serving batcher -----
  ServeConfig sc;
  sc.max_batch = 8;
  sc.batch_window_us = 500;
  ServingBatcher batcher(predictor, sc);
  std::cout << "== 2. serving batcher up (max-batch=" << sc.max_batch
            << ", batch-window-us=" << sc.batch_window_us << ") ==\n\n";

  // ----- 3. concurrent searcher threads submit candidates -----
  constexpr int kSearchers = 6;
  constexpr int kCandidatesPerSearcher = 20;
  std::cout << "== 3. DSE load: " << kSearchers << " searcher threads x "
            << kCandidatesPerSearcher << " candidates ==\n";
  // Sequential reference values, computed BEFORE the timed window so the
  // throughput number measures the batcher alone (this also warms the
  // FeatureCache, as a long-running service would be).
  std::vector<double> expected;
  expected.reserve(corpus.size());
  for (const Sample& s : corpus) expected.push_back(predictor.predict(s));
  std::atomic<int> mismatches{0};
  Timer serve_timer;
  std::vector<std::thread> searchers;
  for (int t = 0; t < kSearchers; ++t) {
    searchers.emplace_back([&, t] {
      for (int r = 0; r < kCandidatesPerSearcher; ++r) {
        const std::size_t pick =
            static_cast<std::size_t>((t * 37 + r * 11) % corpus.size());
        const double served = batcher.submit(corpus[pick]).get();
        // The serving contract: batching must never change a prediction.
        if (served != expected[pick]) ++mismatches;
      }
    });
  }
  for (std::thread& s : searchers) s.join();
  const double wall = serve_timer.seconds();
  batcher.shutdown();

  // ----- 4. what the batcher did -----
  const ServeStats st = batcher.stats();
  constexpr int kTotal = kSearchers * kCandidatesPerSearcher;
  std::cout << "  served " << st.completed << " candidates in "
            << TextTable::num(wall * 1e3, 0) << "ms ("
            << TextTable::num(static_cast<double>(kTotal) / wall, 0)
            << " graphs/s)\n\n== 4. serving stats ==\n";
  TextTable stats({"counter", "value"});
  stats.add_row({"requests served", std::to_string(st.completed)});
  stats.add_row({"forward passes", std::to_string(st.batches)});
  stats.add_row({"avg graphs/forward", TextTable::num(st.avg_batch(), 2)});
  stats.add_row({"largest micro-batch", std::to_string(st.max_batch_seen)});
  stats.add_row({"flushes full/timeout/drain",
                 std::to_string(st.flush_full) + "/" +
                     std::to_string(st.flush_timeout) + "/" +
                     std::to_string(st.flush_drain)});
  std::cout << stats.to_string() << "\n";

  if (mismatches.load() != 0 || st.completed != kTotal) {
    std::cout << "FAIL: " << mismatches.load()
              << " served predictions diverged from sequential predict()\n";
    return 1;
  }
  std::cout << "every served prediction bit-identical to sequential "
               "predict() — batching changes latency, never values.\n";
  return 0;
}
