// Observability opt-in knobs, plumbed through every subsystem config
// (SchedulerConfig, ServeConfig, TcpEndpointConfig, TrainConfig, DseConfig
// and the bench harness's --obs/--trace-out flags).
//
// Both knobs default OFF and are execution-only: observability reads the
// clock and counts events, it NEVER touches a computed value — the repo's
// bit-identity determinism contract holds with any combination of these
// flags (asserted by tests/obs_test.cpp and bench_serving's gates).
//
// This header is dependency-free on purpose: configs embed an ObsConfig
// without pulling in the registry or the trace collector.
#pragma once

namespace gnnhls {

struct ObsConfig {
  /// Publish this instance's counters/gauges/histograms into the
  /// process-wide MetricsRegistry::global() (obs/metrics.h), where a STATS
  /// wire frame or render_text() can scrape them. When false the instance
  /// keeps its counters in a private registry — the stats() facades stay
  /// exact either way, nothing leaks into the global exposition.
  bool metrics = false;
  /// Emit ObsSpan trace events (obs/trace.h) when the process-wide
  /// TraceCollector is active. When false, instrumented scopes skip even
  /// the collector's active() load.
  bool trace = false;
};

}  // namespace gnnhls
