#include "dse/design_space.h"

#include <cstdio>
#include <optional>
#include <stdexcept>

#include "frontend/lower.h"
#include "suites/variants.h"
#include "support/check.h"
#include "support/parallel.h"

namespace gnnhls {

KnobGrid grid_with_at_least(int points) {
  GNNHLS_CHECK(points >= 1, "grid_with_at_least: need a positive size");
  KnobGrid g;
  // Extension order is fixed so a given `points` always yields the same
  // grid: alternate an extra bitwidth and an extra clock target.
  static const int kExtraBits[] = {4, 12, 20, 24, 28, 40, 48, 56, 64};
  static const double kExtraClocks[] = {6.0, 8.0, 12.0, 15.0};
  std::size_t bi = 0, ci = 0;
  while (g.size() < static_cast<std::size_t>(points)) {
    bool grew = false;
    if (bi < sizeof(kExtraBits) / sizeof(kExtraBits[0])) {
      g.bitwidth.push_back(kExtraBits[bi++]);
      grew = true;
    }
    if (g.size() < static_cast<std::size_t>(points) &&
        ci < sizeof(kExtraClocks) / sizeof(kExtraClocks[0])) {
      g.clock_ns.push_back(kExtraClocks[ci++]);
      grew = true;
    }
    GNNHLS_CHECK(grew, "grid_with_at_least: requested size exceeds the grid");
  }
  return g;
}

std::string DesignPoint::label() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "u%d_w%d_c%g_q%g", unroll, bitwidth,
                hls.clock_ns, hls.clock_uncertainty);
  return buf;
}

DesignSpace::DesignSpace(std::string kernel_name, Builder builder,
                         KnobGrid grid)
    : kernel_name_(std::move(kernel_name)),
      builder_(std::move(builder)),
      grid_(std::move(grid)) {
  GNNHLS_CHECK(builder_ != nullptr, "DesignSpace: null builder");
  GNNHLS_CHECK(grid_.size() > 0, "DesignSpace: empty knob grid");
}

std::vector<DesignPoint> DesignSpace::enumerate() const {
  std::vector<DesignPoint> points;
  points.reserve(grid_.size());
  int index = 0;
  for (int unroll : grid_.unroll) {
    for (int bits : grid_.bitwidth) {
      for (double clock : grid_.clock_ns) {
        for (double unc : grid_.clock_uncertainty) {
          DesignPoint p;
          p.index = index++;
          p.unroll = unroll;
          p.bitwidth = bits;
          p.hls.clock_ns = clock;
          p.hls.clock_uncertainty = unc;
          points.push_back(p);
        }
      }
    }
  }
  return points;
}

Sample DesignSpace::lower_candidate(const DesignPoint& p) const {
  Sample s(lower_to_cdfg(build(p)));
  s.tensors = GraphTensors::build(s.prog.graph);
  s.origin = "dse/" + kernel_name_ + "/" + p.label();
  return s;
}

std::vector<Sample> DesignSpace::lower_candidates() const {
  const std::vector<DesignPoint> points = enumerate();
  const int n = static_cast<int>(points.size());
  std::vector<std::optional<Sample>> slots(static_cast<std::size_t>(n));
  parallel_shards(n, [&](int i) {
    const std::size_t s = static_cast<std::size_t>(i);
    slots[s].emplace(lower_candidate(points[s]));
  });
  std::vector<Sample> out;
  out.reserve(static_cast<std::size_t>(n));
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

DesignSpace make_kernel_design_space(const std::string& kernel,
                                     KnobGrid grid) {
  // Resolve the builder eagerly so unknown kernels throw at construction,
  // not at the first enumerate().
  for (const VariantKernel& k : dse_variant_kernels()) {
    if (k.name == kernel) {
      VariantBuilder build = k.build;
      return DesignSpace(
          kernel,
          [build](const DesignPoint& p) {
            return build(p.unroll, p.bitwidth);
          },
          std::move(grid));
    }
  }
  throw std::invalid_argument("unknown DSE kernel: " + kernel);
}

}  // namespace gnnhls
