// train/ subsystem tests: sharded-epoch determinism (shards=N bit-identical
// to shards=1), BatchPlan membership stability across epoch rotations, and
// FeatureCache hit semantics.
#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "support/parallel.h"
#include "train/batch_plan.h"
#include "train/feature_cache.h"
#include "train/trainer.h"

namespace gnnhls {
namespace {

std::vector<Sample> small_corpus(int n, std::uint64_t seed) {
  SyntheticDatasetConfig dcfg;
  dcfg.kind = GraphKind::kDfg;
  dcfg.num_graphs = n;
  dcfg.seed = seed;
  dcfg.progen.min_ops = 8;
  dcfg.progen.max_ops = 24;
  return build_synthetic_dataset(dcfg);
}

/// Restores the default global pool when a test resizes it.
struct PoolGuard {
  explicit PoolGuard(int threads) { ThreadPool::set_global_threads(threads); }
  ~PoolGuard() { ThreadPool::set_global_threads(0); }
};

// ----- sharded training determinism -----

TEST(ShardedTrainingTest, RegressorShardsAreBitIdentical) {
  PoolGuard pool(4);  // real workers so shards actually run concurrently
  const auto samples = small_corpus(40, 2024);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 9);

  ModelConfig mc;
  mc.kind = GnnKind::kGcn;
  mc.hidden = 16;
  mc.layers = 2;
  mc.dropout = 0.2F;  // exercises the per-(epoch, batch) dropout streams
  TrainConfig tc;
  tc.epochs = 5;
  tc.lr = 1e-2F;
  tc.seed = 11;
  tc.batch_size = 4;
  tc.grad_accum = 2;  // two batches merge into every Adam step

  tc.shards = 1;
  QorPredictor serial(Approach::kOffTheShelf, mc, tc);
  const double serial_val = serial.fit(samples, split, Metric::kLut);
  const std::vector<Matrix> serial_params =
      snapshot_parameters(serial.regressor());

  tc.shards = 4;
  QorPredictor sharded(Approach::kOffTheShelf, mc, tc);
  const double sharded_val = sharded.fit(samples, split, Metric::kLut);
  const std::vector<Matrix> sharded_params =
      snapshot_parameters(sharded.regressor());

  // Bit-identical: same best-validation MAPE, same final parameters.
  EXPECT_EQ(serial_val, sharded_val);
  ASSERT_EQ(serial_params.size(), sharded_params.size());
  for (std::size_t i = 0; i < serial_params.size(); ++i) {
    EXPECT_TRUE(serial_params[i] == sharded_params[i]) << "parameter " << i;
  }
  // And identical test-set behavior.
  EXPECT_EQ(serial.evaluate_mape(samples, split.test),
            sharded.evaluate_mape(samples, split.test));
}

TEST(ShardedTrainingTest, ClassifierShardsAreBitIdentical) {
  PoolGuard pool(3);
  const auto samples = small_corpus(32, 4711);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 5);

  ModelConfig mc;
  mc.kind = GnnKind::kGcn;
  mc.hidden = 12;
  mc.layers = 2;
  TrainConfig tc;
  tc.epochs = 4;
  tc.lr = 1e-2F;
  tc.seed = 3;
  tc.batch_size = 4;
  tc.grad_accum = 3;

  tc.shards = 1;
  NodeTypePredictor serial(mc, tc);
  const double serial_acc = serial.fit(samples, split);

  tc.shards = 3;
  NodeTypePredictor sharded(mc, tc);
  const double sharded_acc = sharded.fit(samples, split);

  EXPECT_EQ(serial_acc, sharded_acc);
  const auto a = snapshot_parameters(serial.classifier());
  const auto b = snapshot_parameters(sharded.classifier());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << "parameter " << i;
  }
}

TEST(ShardedTrainingTest, ShardCountBeyondBatchesIsClamped) {
  const auto samples = small_corpus(12, 77);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 1);
  ModelConfig mc;
  mc.kind = GnnKind::kGcn;
  mc.hidden = 8;
  mc.layers = 1;
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 4;
  tc.grad_accum = 8;  // step span larger than the epoch's batch count
  tc.shards = 64;     // far more shards than batches
  QorPredictor predictor(Approach::kOffTheShelf, mc, tc);
  const double val = predictor.fit(samples, split, Metric::kLut);
  EXPECT_TRUE(std::isfinite(val));
}

// ----- FitOptions / online refit -----

TEST(RefitTest, FitReportCurveAndBestEpoch) {
  const auto samples = small_corpus(30, 515);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 2);
  ModelConfig mc;
  mc.kind = GnnKind::kGcn;
  mc.hidden = 12;
  mc.layers = 2;
  TrainConfig tc;
  tc.epochs = 5;
  tc.lr = 1e-2F;
  tc.batch_size = 4;
  QorPredictor p(Approach::kOffTheShelf, mc, tc);
  const FitReport report = p.fit(samples, split, Metric::kLut, FitOptions{});
  EXPECT_FALSE(report.warm_started);
  EXPECT_EQ(report.epochs_run, tc.epochs);
  EXPECT_GT(report.steps, 0);
  ASSERT_EQ(report.val_curve.size(), static_cast<std::size_t>(tc.epochs));
  ASSERT_GE(report.best_epoch, 0);
  ASSERT_LT(report.best_epoch, tc.epochs);
  EXPECT_EQ(report.best_val,
            *std::min_element(report.val_curve.begin(),
                              report.val_curve.end()));
  EXPECT_EQ(report.best_val,
            report.val_curve[static_cast<std::size_t>(report.best_epoch)]);
  // kBestEpoch restored the selected checkpoint: deployed validation MAPE
  // is the best epoch's, not the final one's.
  EXPECT_EQ(p.evaluate_mape(samples, split.val), report.best_val);
  // The deprecated double-returning shim reports the same selection.
  QorPredictor shim(Approach::kOffTheShelf, mc, tc);
  EXPECT_EQ(shim.fit(samples, split, Metric::kLut), report.best_val);
}

TEST(RefitTest, RefitBitIdenticalAcrossShardsAndThreads) {
  const auto samples = small_corpus(36, 808);
  const auto delta = small_corpus(8, 909);  // fresh ground truth to feed back
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 4);
  ModelConfig mc;
  mc.kind = GnnKind::kGcn;
  mc.hidden = 16;
  mc.layers = 2;
  mc.dropout = 0.2F;  // dropout streams must survive the refit re-seeding
  TrainConfig tc;
  tc.epochs = 4;
  tc.lr = 1e-2F;
  tc.seed = 21;
  tc.batch_size = 4;
  tc.grad_accum = 2;

  std::vector<Matrix> serial_params;
  double serial_val = 0.0;
  {
    PoolGuard pool(1);
    tc.shards = 1;
    QorPredictor p(Approach::kOffTheShelf, mc, tc);
    p.fit(samples, split, Metric::kLut, FitOptions{});
    const FitReport r = p.refit(delta);
    EXPECT_TRUE(r.warm_started);
    serial_params = snapshot_parameters(p.regressor());
    serial_val = p.evaluate_mape(samples, split.test);
  }
  {
    PoolGuard pool(4);
    tc.shards = 4;
    QorPredictor p(Approach::kOffTheShelf, mc, tc);
    p.fit(samples, split, Metric::kLut, FitOptions{});
    p.refit(delta);
    const std::vector<Matrix> sharded_params =
        snapshot_parameters(p.regressor());
    ASSERT_EQ(serial_params.size(), sharded_params.size());
    for (std::size_t i = 0; i < serial_params.size(); ++i) {
      EXPECT_TRUE(serial_params[i] == sharded_params[i])
          << "parameter " << i;
    }
    EXPECT_EQ(serial_val, p.evaluate_mape(samples, split.test));
  }
}

TEST(RefitTest, WarmRefitMovesDeterministicallyColdDiffers) {
  const auto samples = small_corpus(30, 616);
  const auto delta = small_corpus(6, 717);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 8);
  ModelConfig mc;
  mc.kind = GnnKind::kGcn;
  mc.hidden = 12;
  mc.layers = 2;
  TrainConfig tc;
  tc.epochs = 4;
  tc.lr = 1e-2F;
  tc.seed = 5;
  tc.batch_size = 4;

  auto fit_fresh = [&] {
    auto p = std::make_unique<QorPredictor>(Approach::kOffTheShelf, mc, tc);
    p->fit(samples, split, Metric::kLut, FitOptions{});
    return p;
  };

  auto a = fit_fresh();
  const std::vector<Matrix> before = snapshot_parameters(a->regressor());
  EXPECT_EQ(a->refits(), 0);
  a->refit(delta);
  EXPECT_EQ(a->refits(), 1);
  const std::vector<Matrix> warm1 = snapshot_parameters(a->regressor());
  // The refit actually moved the model.
  bool moved = false;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (!(before[i] == warm1[i])) moved = true;
  }
  EXPECT_TRUE(moved);

  // Deterministic: an identical fit + refit sequence lands bitwise equal.
  auto b = fit_fresh();
  b->refit(delta);
  const std::vector<Matrix> warm2 = snapshot_parameters(b->regressor());
  ASSERT_EQ(warm1.size(), warm2.size());
  for (std::size_t i = 0; i < warm1.size(); ++i) {
    EXPECT_TRUE(warm1[i] == warm2[i]) << "parameter " << i;
  }

  // A cold refit (fresh init over the grown corpus) takes another path.
  auto c = fit_fresh();
  FitOptions cold = QorPredictor::refit_defaults();
  cold.warm_start = false;
  const FitReport cold_report = c->refit(delta, cold);
  EXPECT_FALSE(cold_report.warm_started);
  const std::vector<Matrix> cold_params = snapshot_parameters(c->regressor());
  bool differs = false;
  for (std::size_t i = 0; i < warm1.size(); ++i) {
    if (!(warm1[i] == cold_params[i])) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RefitTest, RefitBeforeFitThrows) {
  ModelConfig mc;
  TrainConfig tc;
  QorPredictor p(Approach::kOffTheShelf, mc, tc);
  EXPECT_THROW(p.refit(small_corpus(2, 1)), std::invalid_argument);
}

TEST(RefitTest, ClassifierFitOptionsReportMatchesShim) {
  const auto samples = small_corpus(24, 2222);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 6);
  ModelConfig mc;
  mc.kind = GnnKind::kGcn;
  mc.hidden = 8;
  mc.layers = 2;
  TrainConfig tc;
  tc.epochs = 3;
  tc.lr = 1e-2F;
  tc.batch_size = 4;
  NodeTypePredictor a(mc, tc);
  const FitReport report = a.fit(samples, split, FitOptions{});
  EXPECT_EQ(report.epochs_run, tc.epochs);
  ASSERT_EQ(report.val_curve.size(), static_cast<std::size_t>(tc.epochs));
  NodeTypePredictor b(mc, tc);
  EXPECT_EQ(b.fit(samples, split), report.best_val);
}

// ----- BatchPlan rotation -----

TEST(BatchPlanTest, MembershipFixedAcrossEpochRotations) {
  const auto samples = small_corpus(22, 909);
  std::vector<int> train_idx;
  for (int i = 0; i < static_cast<int>(samples.size()); ++i) {
    train_idx.push_back(i);
  }
  BatchPlan plan = BatchPlan::build(
      samples, train_idx, /*batch_size=*/4,
      [](const Sample& s) -> const Matrix& {
        return FeatureCache::global().features(s, Approach::kOffTheShelf);
      },
      [](const Sample& s) {
        return Matrix(1, 1,
                      encode_target(metric_of(s.truth, Metric::kLut),
                                    Metric::kLut));
      },
      Rng(42));
  ASSERT_TRUE(plan.batched());
  ASSERT_EQ(plan.num_batches(), 6);  // ceil(22 / 4)

  // Batches partition the training set exactly once.
  std::multiset<int> covered;
  for (int b = 0; b < plan.num_batches(); ++b) {
    const BatchPlan::Item& item = plan.item(b);
    EXPECT_EQ(item.batch().num_graphs(),
              static_cast<int>(item.members().size()));
    EXPECT_EQ(item.features().rows(), item.batch().num_nodes());
    EXPECT_EQ(item.labels.rows(), item.batch().num_graphs());
    covered.insert(item.members().begin(), item.members().end());
  }
  EXPECT_EQ(covered.size(), train_idx.size());
  EXPECT_TRUE(std::set<int>(covered.begin(), covered.end()).size() ==
              covered.size());

  // Epoch 0 is the build order; every later epoch is a permutation of the
  // same batch indices — membership never changes, only visit order.
  const std::vector<int> members0 = plan.item(0).members();
  const std::vector<int> epoch0 = plan.next_epoch_batch_order();
  std::vector<int> identity(static_cast<std::size_t>(plan.num_batches()));
  for (std::size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<int>(i);
  }
  EXPECT_EQ(epoch0, identity);
  bool reshuffled = false;
  for (int epoch = 1; epoch <= 5; ++epoch) {
    std::vector<int> order = plan.next_epoch_batch_order();
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, identity);  // a permutation of the fixed batches
    if (order != identity) reshuffled = true;
    EXPECT_EQ(plan.item(0).members(), members0);
  }
  EXPECT_TRUE(reshuffled);  // rotation shuffles order (seed 42, 6 batches)
}

// ----- FeatureCache -----

TEST(FeatureCacheTest, HitReturnsSameMatrixAsColdBuild) {
  const auto samples = small_corpus(2, 31337);
  FeatureCache& cache = FeatureCache::global();

  const std::uint64_t misses_before = cache.misses();
  const Matrix& cached =
      cache.features(samples[0], Approach::kOffTheShelf);
  EXPECT_EQ(cache.misses(), misses_before + 1);

  // Cold build and cached entry are the same tensor, bit for bit.
  const Matrix direct =
      InputFeatureBuilder::build(samples[0].graph(), Approach::kOffTheShelf);
  EXPECT_TRUE(cached == direct);

  // A hit returns the identical object, not a rebuild.
  const std::uint64_t hits_before = cache.hits();
  const Matrix& again =
      cache.features(samples[0], Approach::kOffTheShelf);
  EXPECT_EQ(&again, &cached);
  EXPECT_EQ(cache.hits(), hits_before + 1);

  // Different approach and different sample are distinct entries.
  const Matrix& rich = cache.features(samples[0], Approach::kKnowledgeRich);
  EXPECT_NE(&rich, &cached);
  const Matrix& other =
      cache.features(samples[1], Approach::kOffTheShelf);
  EXPECT_NE(&other, &cached);

  // Node-type labels are cached under their own key.
  const Matrix& labels = cache.node_type_labels(samples[0]);
  EXPECT_TRUE(labels ==
              InputFeatureBuilder::node_type_labels(samples[0].graph()));
  EXPECT_EQ(&cache.node_type_labels(samples[0]), &labels);
}

TEST(FeatureCacheTest, SampleUidsAreUniquePerConstruction) {
  const auto a = small_corpus(3, 1);
  std::set<std::uint64_t> uids;
  for (const Sample& s : a) uids.insert(s.uid);
  EXPECT_EQ(uids.size(), a.size());
  // Copies denote the same sample and keep its identity.
  const Sample copy = a[0];
  EXPECT_EQ(copy.uid, a[0].uid);
}

// ----- LeafGradRedirect -----

TEST(LeafGradRedirectTest, RedirectsLeafGradsAndLeavesSharedGradUntouched) {
  Matrix w(2, 2);
  w(0, 0) = 1.0F;
  w(0, 1) = -2.0F;
  w(1, 0) = 0.5F;
  w(1, 1) = 3.0F;
  const Var leaf = make_leaf(w, true);

  // Reference: plain backward accumulates into the leaf's own grad.
  {
    Tape tape;
    const Var x = tape.leaf(Matrix(1, 2, 1.0F));
    tape.backward(tape.sum_all(tape.matmul(x, leaf)));
  }
  const Matrix direct = leaf.grad();
  leaf.node()->grad.fill(0.0F);

  // Redirected: grads land in the sink; the shared grad stays zero.
  std::vector<Matrix> sinks;
  {
    LeafGradRedirect redirect({leaf}, sinks);
    Tape tape;
    const Var x = tape.leaf(Matrix(1, 2, 1.0F));
    tape.backward(tape.sum_all(tape.matmul(x, leaf)));
  }
  ASSERT_EQ(sinks.size(), 1U);
  EXPECT_TRUE(sinks[0] == direct);
  EXPECT_EQ(leaf.grad().squared_norm(), 0.0);

  // After the scope ends, accumulation reaches the leaf again.
  {
    Tape tape;
    const Var x = tape.leaf(Matrix(1, 2, 1.0F));
    tape.backward(tape.sum_all(tape.matmul(x, leaf)));
  }
  EXPECT_TRUE(leaf.grad() == direct);
}

}  // namespace
}  // namespace gnnhls
