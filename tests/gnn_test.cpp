#include <cmath>

#include <gtest/gtest.h>

#include "dataset/dataset.h"
#include "gnn/encoders.h"
#include "gnn/feature_encoder.h"
#include "gnn/models.h"
#include "nn/adam.h"

namespace gnnhls {
namespace {

/// Small annotated CDFG sample shared by the encoder tests.
const Sample& test_sample() {
  static const Sample sample = make_sample(
      generate_cdfg_program(11), GraphKind::kCdfg, HlsConfig{}, "test");
  return sample;
}

const Sample& test_dfg_sample() {
  static const Sample sample = make_sample(
      generate_dfg_program(13), GraphKind::kDfg, HlsConfig{}, "test-dfg");
  return sample;
}

TEST(GraphTensorsTest, SelfLoopsAppended) {
  const Sample& s = test_sample();
  const GraphTensors& gt = s.tensors;
  EXPECT_EQ(gt.src_self.size(), gt.src.size() +
                                    static_cast<std::size_t>(gt.num_nodes));
  for (int i = 0; i < gt.num_nodes; ++i) {
    EXPECT_EQ(gt.src_self[gt.src.size() + static_cast<std::size_t>(i)], i);
  }
}

TEST(GraphTensorsTest, GcnCoefficientsPositiveAndBounded) {
  const GraphTensors& gt = test_sample().tensors;
  for (float c : gt.gcn_coeff) {
    EXPECT_GT(c, 0.0F);
    EXPECT_LE(c, 1.0F);
  }
}

TEST(GraphTensorsTest, RelationPartitionCoversAllEdges) {
  const GraphTensors& gt = test_sample().tensors;
  std::size_t total = 0;
  for (const auto& edges : gt.relation_edges) total += edges.size();
  EXPECT_EQ(total, gt.src.size());
}

TEST(GnnKindTest, NamesRoundTrip) {
  for (GnnKind k : all_gnn_kinds()) {
    EXPECT_EQ(gnn_kind_from_name(gnn_kind_name(k)), k);
  }
  EXPECT_THROW(gnn_kind_from_name("NOPE"), std::invalid_argument);
}

// ----- all 14 encoders, parameterized -----

class EncoderTest : public ::testing::TestWithParam<GnnKind> {};

TEST_P(EncoderTest, OutputShape) {
  const Sample& s = test_sample();
  Rng rng(5);
  EncoderConfig cfg;
  cfg.in_dim = InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
  cfg.hidden = 16;
  cfg.layers = 2;
  const auto enc = make_encoder(GetParam(), cfg, rng);
  const Matrix feats =
      InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
  Tape tape;
  Rng drop(1);
  const Var h = enc->encode(tape, s.tensors, tape.leaf(feats), drop, false);
  EXPECT_EQ(h.rows(), s.graph().num_nodes());
  EXPECT_EQ(h.cols(), 16);
  for (std::size_t i = 0; i < h.value().size(); ++i) {
    EXPECT_TRUE(std::isfinite(h.value().data()[i]));
  }
}

TEST_P(EncoderTest, GradientReachesAllParameters) {
  const Sample& s = test_sample();
  Rng rng(6);
  EncoderConfig cfg;
  cfg.in_dim = InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
  cfg.hidden = 8;
  cfg.layers = 2;
  const auto enc = make_encoder(GetParam(), cfg, rng);
  const Matrix feats =
      InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
  Tape tape;
  Rng drop(1);
  const Var h = enc->encode(tape, s.tensors, tape.leaf(feats), drop, false);
  tape.backward(tape.sum_all(tape.mul(h, h)));
  int with_grad = 0;
  for (const auto* p : enc->parameters()) {
    if (p->var().grad().squared_norm() > 0.0) ++with_grad;
  }
  // Every parameter tensor should receive gradient (ARMA skip weights,
  // attention vectors, relation weights for present relations, ...). Some
  // relation weights legitimately get none if the relation is absent.
  EXPECT_GT(with_grad, static_cast<int>(enc->parameters().size()) / 2);
}

TEST_P(EncoderTest, DeterministicAcrossIdenticalRuns) {
  const Sample& s = test_sample();
  EncoderConfig cfg;
  cfg.in_dim = InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
  cfg.hidden = 8;
  cfg.layers = 2;
  const Matrix feats =
      InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);

  const auto run_once = [&] {
    Rng rng(7);
    const auto enc = make_encoder(GetParam(), cfg, rng);
    Tape tape;
    Rng drop(1);
    return enc->encode(tape, s.tensors, tape.leaf(feats), drop, false)
        .value();
  };
  const Matrix a = run_once();
  const Matrix b = run_once();
  EXPECT_TRUE(a == b);
}

TEST_P(EncoderTest, WorksOnDfgWithoutBackEdges) {
  const Sample& s = test_dfg_sample();
  Rng rng(8);
  EncoderConfig cfg;
  cfg.in_dim = InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
  cfg.hidden = 8;
  cfg.layers = 2;
  const auto enc = make_encoder(GetParam(), cfg, rng);
  const Matrix feats =
      InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
  Tape tape;
  Rng drop(1);
  const Var h = enc->encode(tape, s.tensors, tape.leaf(feats), drop, false);
  EXPECT_EQ(h.rows(), s.graph().num_nodes());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EncoderTest, ::testing::ValuesIn(all_gnn_kinds()),
    [](const ::testing::TestParamInfo<GnnKind>& info) {
      std::string name = gnn_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ----- feature builder -----

TEST(FeatureBuilderTest, DimsPerApproach) {
  const int base = InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
  EXPECT_EQ(InputFeatureBuilder::feature_dim(Approach::kKnowledgeInfused),
            base + 3);
  // -R carries log-scaled and linear-scaled resource values.
  EXPECT_EQ(InputFeatureBuilder::feature_dim(Approach::kKnowledgeRich),
            base + 6);
}

TEST(FeatureBuilderTest, OneHotsAreExclusive) {
  const Sample& s = test_sample();
  const Matrix f =
      InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
  // First 5 columns are the node-type one-hot.
  for (int i = 0; i < f.rows(); ++i) {
    float sum = 0.0F;
    for (int j = 0; j < kNumNodeGeneralTypes; ++j) sum += f(i, j);
    EXPECT_FLOAT_EQ(sum, 1.0F);
  }
}

TEST(FeatureBuilderTest, KnowledgeBitsMatchAnnotations) {
  const Sample& s = test_sample();
  const Matrix f =
      InputFeatureBuilder::build(s.graph(), Approach::kKnowledgeInfused);
  const int base = InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
  for (int i = 0; i < s.graph().num_nodes(); ++i) {
    EXPECT_FLOAT_EQ(f(i, base),
                    s.graph().node(i).resource.uses_dsp ? 1.0F : 0.0F);
  }
}

TEST(FeatureBuilderTest, InferredOverrideReplacesLabels) {
  const Sample& s = test_sample();
  std::vector<InferredTypes> inferred(
      static_cast<std::size_t>(s.graph().num_nodes()));
  for (auto& t : inferred) t = InferredTypes{1.0F, 0.0F, 1.0F};
  const Matrix f = InputFeatureBuilder::build(
      s.graph(), Approach::kKnowledgeInfused, &inferred);
  const int base = InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
  for (int i = 0; i < f.rows(); ++i) {
    EXPECT_FLOAT_EQ(f(i, base), 1.0F);
    EXPECT_FLOAT_EQ(f(i, base + 1), 0.0F);
  }
}

TEST(FeatureBuilderTest, InferredRejectedForOtherApproaches) {
  const Sample& s = test_sample();
  std::vector<InferredTypes> inferred(
      static_cast<std::size_t>(s.graph().num_nodes()));
  EXPECT_THROW(InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf,
                                          &inferred),
               std::invalid_argument);
}

TEST(FeatureBuilderTest, NodeLabelsBinary) {
  const Sample& s = test_sample();
  const Matrix labels = InputFeatureBuilder::node_type_labels(s.graph());
  EXPECT_EQ(labels.cols(), 3);
  bool any_lut = false;
  for (int i = 0; i < labels.rows(); ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_TRUE(labels(i, j) == 0.0F || labels(i, j) == 1.0F);
    }
    any_lut |= labels(i, 1) == 1.0F;
  }
  EXPECT_TRUE(any_lut);  // something must use LUTs
}

// ----- models -----

TEST(GraphRegressorTest, ScalarOutputAndTraining) {
  const Sample& s = test_sample();
  Rng rng(9);
  ModelConfig cfg;
  cfg.kind = GnnKind::kGcn;
  cfg.hidden = 16;
  cfg.layers = 2;
  GraphRegressor model(
      cfg, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf), rng);
  const Matrix feats =
      InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
  Adam opt(model, AdamConfig{.lr = 0.01F});
  const float target = 3.5F;
  float first = 0.0F, last = 0.0F;
  for (int step = 0; step < 60; ++step) {
    Tape tape;
    Rng drop(1);
    const Var pred = model.forward(tape, s.tensors, feats, drop, true);
    EXPECT_EQ(pred.rows(), 1);
    EXPECT_EQ(pred.cols(), 1);
    const Var loss = tape.mse_loss(pred, Matrix(1, 1, target));
    if (step == 0) first = loss.value()(0, 0);
    last = loss.value()(0, 0);
    tape.backward(loss);
    opt.step();
  }
  EXPECT_LT(last, first * 0.05F);
}

TEST(GraphRegressorTest, PoolingModesDiffer) {
  const Sample& s = test_sample();
  const Matrix feats =
      InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
  ModelConfig sum_cfg;
  sum_cfg.hidden = 8;
  sum_cfg.layers = 1;
  sum_cfg.pooling = Pooling::kSum;
  ModelConfig mean_cfg = sum_cfg;
  mean_cfg.pooling = Pooling::kMean;
  Rng rng1(3), rng2(3);
  GraphRegressor sum_model(
      sum_cfg, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf),
      rng1);
  GraphRegressor mean_model(
      mean_cfg, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf),
      rng2);
  EXPECT_NE(sum_model.predict(s.tensors, feats),
            mean_model.predict(s.tensors, feats));
}

TEST(NodeClassifierTest, LogitsShapeAndInference) {
  const Sample& s = test_sample();
  Rng rng(10);
  ModelConfig cfg;
  cfg.kind = GnnKind::kRgcn;
  cfg.hidden = 16;
  cfg.layers = 2;
  NodeClassifier model(
      cfg, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf), rng);
  const Matrix feats =
      InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf);
  Tape tape;
  Rng drop(1);
  const Var logits = model.forward(tape, s.tensors, feats, drop, false);
  EXPECT_EQ(logits.rows(), s.graph().num_nodes());
  EXPECT_EQ(logits.cols(), 3);
  const auto types = model.infer_types(s.tensors, feats);
  EXPECT_EQ(static_cast<int>(types.size()), s.graph().num_nodes());
  for (const auto& t : types) {
    EXPECT_TRUE(t.dsp == 0.0F || t.dsp == 1.0F);
  }
}

}  // namespace
}  // namespace gnnhls
