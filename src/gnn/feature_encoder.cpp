#include "gnn/feature_encoder.h"

#include <cmath>

namespace gnnhls {

namespace {

// Base feature layout (offsets into the feature row).
constexpr int kTypeOffset = 0;                                   // 5 one-hot
constexpr int kOpcodeOffset = kTypeOffset + kNumNodeGeneralTypes;  // 32
constexpr int kCategoryOffset = kOpcodeOffset + kNumOpcodes;       // 9
constexpr int kBitwidthOffset = kCategoryOffset + kNumOpcodeCategories;  // 2
constexpr int kStartOffset = kBitwidthOffset + 2;                  // 1
constexpr int kClusterOffset = kStartOffset + 1;                   // 2
constexpr int kConstOffset = kClusterOffset + 2;                   // 1
constexpr int kBaseDim = kConstOffset + 1;
// -I: three binary type bits. -R: the same three values in log scale plus
// linearly scaled copies — sum pooling over the linear copies yields
// resource totals directly, which is exactly the advantage intermediate HLS
// results give the knowledge-rich approach.
constexpr int kInfusedDim = 3;
constexpr int kRichDim = 6;

}  // namespace

std::string approach_name(Approach a) {
  switch (a) {
    case Approach::kOffTheShelf: return "off-the-shelf";
    case Approach::kKnowledgeInfused: return "knowledge-infused";
    case Approach::kKnowledgeRich: return "knowledge-rich";
  }
  return {};
}

std::string approach_suffix(Approach a) {
  switch (a) {
    case Approach::kOffTheShelf: return "";
    case Approach::kKnowledgeInfused: return "-I";
    case Approach::kKnowledgeRich: return "-R";
  }
  return {};
}

int InputFeatureBuilder::feature_dim(Approach a) {
  switch (a) {
    case Approach::kOffTheShelf: return kBaseDim;
    case Approach::kKnowledgeInfused: return kBaseDim + kInfusedDim;
    case Approach::kKnowledgeRich: return kBaseDim + kRichDim;
  }
  return kBaseDim;
}

Matrix InputFeatureBuilder::build(const IrGraph& graph, Approach a,
                                  const std::vector<InferredTypes>* inferred) {
  GNNHLS_CHECK(inferred == nullptr || a == Approach::kKnowledgeInfused,
               "inferred types are only meaningful for knowledge-infused");
  if (inferred != nullptr) {
    GNNHLS_CHECK_EQ(static_cast<int>(inferred->size()), graph.num_nodes(),
                    "one inferred annotation per node required");
  }
  Matrix feats(graph.num_nodes(), feature_dim(a));
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const IrNode& n = graph.node(i);
    float* row = feats.row_ptr(i);
    row[kTypeOffset + static_cast<int>(n.type)] = 1.0F;
    row[kOpcodeOffset + static_cast<int>(n.opcode)] = 1.0F;
    row[kCategoryOffset + static_cast<int>(category_of(n.opcode))] = 1.0F;
    row[kBitwidthOffset] = static_cast<float>(n.bitwidth) / 256.0F;
    row[kBitwidthOffset + 1] =
        std::log2(static_cast<float>(n.bitwidth) + 1.0F) / 8.0F;
    row[kStartOffset] = n.is_start_of_path ? 1.0F : 0.0F;
    row[kClusterOffset] = static_cast<float>(std::max(n.cluster_group, 0)) /
                          256.0F;
    row[kClusterOffset + 1] =
        static_cast<float>(std::min(std::max(n.cluster_group, 0), 16)) /
        16.0F;
    row[kConstOffset] = n.is_const ? 1.0F : 0.0F;

    if (a == Approach::kKnowledgeInfused) {
      if (inferred != nullptr) {
        row[kBaseDim] = (*inferred)[static_cast<std::size_t>(i)].dsp;
        row[kBaseDim + 1] = (*inferred)[static_cast<std::size_t>(i)].lut;
        row[kBaseDim + 2] = (*inferred)[static_cast<std::size_t>(i)].ff;
      } else {
        row[kBaseDim] = n.resource.uses_dsp ? 1.0F : 0.0F;
        row[kBaseDim + 1] = n.resource.uses_lut ? 1.0F : 0.0F;
        row[kBaseDim + 2] = n.resource.uses_ff ? 1.0F : 0.0F;
      }
    } else if (a == Approach::kKnowledgeRich) {
      row[kBaseDim] = std::log1p(n.resource.dsp) / 3.0F;
      row[kBaseDim + 1] = std::log1p(n.resource.lut) / 6.0F;
      row[kBaseDim + 2] = std::log1p(n.resource.ff) / 6.0F;
      row[kBaseDim + 3] = n.resource.dsp / 4.0F;
      row[kBaseDim + 4] = n.resource.lut / 64.0F;
      row[kBaseDim + 5] = n.resource.ff / 64.0F;
    }
  }
  return feats;
}

Matrix InputFeatureBuilder::node_type_labels(const IrGraph& graph) {
  Matrix labels(graph.num_nodes(), 3);
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const NodeResourceInfo& r = graph.node(i).resource;
    labels(i, 0) = r.uses_dsp ? 1.0F : 0.0F;
    labels(i, 1) = r.uses_lut ? 1.0F : 0.0F;
    labels(i, 2) = r.uses_ff ? 1.0F : 0.0F;
  }
  return labels;
}

}  // namespace gnnhls
