// Scoped trace spans exported as Chrome trace_event JSON (Perfetto-loadable).
//
// TraceCollector is a process-wide singleton: start() arms it, instrumented
// scopes (ObsSpan) record complete events ("ph":"X") into per-thread
// buffers, stop() disarms, write_json() merges + sorts the buffers into a
// deterministically ordered {"traceEvents":[...]} document.
//
// Hot-path contract: an instrumented scope whose ObsConfig.trace is false
// does nothing at all; with trace=true but the collector stopped it pays
// one relaxed load. Recording appends to a per-thread buffer under that
// thread's own (uncontended) mutex — no global lock, no allocation past
// the buffer's amortized growth, capped at kMaxEventsPerThread events per
// thread (overflow increments a drop counter instead of growing).
//
// Thread buffers are registered once per thread and never deleted — clear()
// empties their event vectors but keeps the buffers alive, so a cached
// thread-local pointer can never dangle even if the collector is cleared
// while worker threads are live.
//
// Like the metrics registry, tracing reads the clock and never touches a
// computed value; timestamps come from a process-wide steady epoch so
// spans from different subsystems share one timebase.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gnnhls {

class TraceCollector {
 public:
  /// Cap on buffered events per thread; past it events are dropped (and
  /// counted), bounding memory for long bench runs.
  static constexpr std::size_t kMaxEventsPerThread = 1u << 20;

  static TraceCollector& global();

  /// True while armed; spans check this with one relaxed load.
  bool active() const { return active_.load(std::memory_order_relaxed); }
  void start() { active_.store(true, std::memory_order_relaxed); }
  void stop() { active_.store(false, std::memory_order_relaxed); }

  /// Microseconds since the collector's process-wide steady epoch — the
  /// timebase of every recorded event.
  std::int64_t now_us() const;

  /// Records a complete event ("ph":"X"). `name` and `cat` must point at
  /// storage outliving write_json (string literals in practice). `ts` and
  /// `dur` are in the now_us() timebase. No-op unless active().
  void record(const char* name, const char* cat, std::int64_t ts_us,
              std::int64_t dur_us);

  /// Drops all buffered events (buffers stay registered) and resets the
  /// dropped-event count.
  void clear();

  /// Events dropped across all threads since the last clear().
  std::uint64_t dropped() const;

  /// Total buffered events across all threads.
  std::size_t event_count() const;

  /// Writes the Chrome trace_event JSON document, events sorted by
  /// (ts, tid, name) so equal inputs yield byte-equal files. Returns false
  /// if the file could not be opened.
  bool write_json(const std::string& path) const;

  /// The document as a string (what write_json writes) — for tests.
  std::string render_json() const;

 private:
  struct Event {
    const char* name;
    const char* cat;
    std::int64_t ts_us;
    std::int64_t dur_us;
    int tid;
  };
  struct ThreadBuf {
    std::mutex mu;
    std::vector<Event> events;
    std::uint64_t dropped = 0;
    int tid = 0;
  };

  TraceCollector();
  ThreadBuf& local_buf();

  std::atomic<bool> active_{false};
  std::int64_t epoch_steady_us_ = 0;  // steady_clock at construction

  mutable std::mutex bufs_mu_;             // guards registration + snapshot
  std::vector<ThreadBuf*> bufs_;           // leaked on purpose, never freed
  int next_tid_ = 1;
};

/// RAII complete-event span. `gate` is the subsystem's ObsConfig.trace —
/// when false the constructor does nothing (not even an atomic load).
/// `name`/`cat` must be string literals (or otherwise outlive the
/// collector's write_json call).
class ObsSpan {
 public:
  ObsSpan(bool gate, const char* name, const char* cat)
      : name_(nullptr), cat_(cat), start_us_(0) {
    if (gate && TraceCollector::global().active()) {
      name_ = name;  // non-null name_ doubles as the "armed" flag
      start_us_ = TraceCollector::global().now_us();
    }
  }
  ~ObsSpan() {
    if (name_ != nullptr) {
      TraceCollector& tc = TraceCollector::global();
      tc.record(name_, cat_, start_us_, tc.now_us() - start_us_);
    }
  }
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::int64_t start_us_;
};

/// Records a complete event with explicit timestamps (for spans whose start
/// predates any scope, e.g. queue wait measured from a request's arrival).
/// Same gating as ObsSpan.
inline void obs_complete_event(bool gate, const char* name, const char* cat,
                               std::int64_t ts_us, std::int64_t dur_us) {
  if (gate && TraceCollector::global().active()) {
    TraceCollector::global().record(name, cat, ts_us, dur_us);
  }
}

}  // namespace gnnhls
