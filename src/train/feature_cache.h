// Process-wide memoization of deterministic per-sample training tensors.
//
// InputFeatureBuilder::build and node_type_labels are pure functions of
// (sample, approach) for the ground-truth feature variants, yet the fit
// loops, per-epoch validation MAPE and every bench table used to rebuild
// them from scratch — O(epochs * samples) redundant feature construction per
// fit and once more per evaluation call. The FeatureCache builds each tensor
// once and hands out stable references for the lifetime of the process.
//
// Identity is Sample::uid (minted per constructed sample, preserved by
// copies/moves), so a second bench run over a freshly generated dataset with
// the same origin strings can never alias a stale entry. The classifier-
// inferred feature variant of the knowledge-infused approach depends on
// model parameters and is deliberately NOT cacheable here — only its
// off-the-shelf base features are (see QorPredictor::predict).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "dataset/dataset.h"
#include "gnn/feature_encoder.h"
#include "tensor/matrix.h"

namespace gnnhls {

class FeatureCache {
 public:
  /// Shared process-wide instance (thread-safe; run_parallel bench jobs and
  /// trainer shards hit it concurrently).
  static FeatureCache& global();

  /// Memoized InputFeatureBuilder::build(s.graph(), a) — the ground-truth
  /// variant only. The reference stays valid until clear() and is shared
  /// read-only data: training, evaluation and the serving batcher's worker
  /// all read the same entry concurrently (entries are unique_ptr-backed,
  /// so references survive rehashes and concurrent inserts).
  const Matrix& features(const Sample& s, Approach a);

  /// Memoized InputFeatureBuilder::node_type_labels(s.graph()).
  const Matrix& node_type_labels(const Sample& s);

  /// Bulk prefetch: builds and caches features(s, a) for every sample, in
  /// input order (a deterministic fill order keeps hit/miss accounting
  /// reproducible). Returns the number of entries that were newly built.
  /// Refit rounds warm the feedback delta here before plan assembly so the
  /// new samples' feature construction is paid once, up front, off the
  /// training path.
  std::size_t warm(const std::vector<Sample>& samples, Approach a);

  /// Drops every entry (tests; long-lived processes discarding a dataset).
  /// Invalidates every outstanding reference: must not race with fits,
  /// evaluations or a live ServingBatcher that could still read them.
  void clear();

  /// Drops every variant cached for one sample uid. Invalidates references
  /// to those entries only — the TCP endpoint calls this after a decoded
  /// request's response is written (each wire sample mints a fresh uid, so
  /// without eviction a long-running server grows the cache per request).
  void evict(std::uint64_t uid);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t entries() const;

 private:
  struct Key {
    std::uint64_t uid = 0;
    int variant = 0;  // Approach as int; -1 = node-type labels
    bool operator==(const Key& o) const {
      return uid == o.uid && variant == o.variant;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(k.uid * 31U +
                                        static_cast<std::uint64_t>(
                                            k.variant + 1));
    }
  };

  template <typename BuildFn>
  const Matrix& lookup(const Key& key, BuildFn&& build);

  mutable std::mutex mu_;
  // unique_ptr values give returned references node stability across
  // rehashes and concurrent inserts.
  std::unordered_map<Key, std::unique_ptr<const Matrix>, KeyHash> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace gnnhls
