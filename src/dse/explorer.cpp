#include "dse/explorer.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "hls/hls_flow.h"
#include "obs/trace.h"
#include "support/arena.h"
#include "support/check.h"
#include "support/parallel.h"

namespace gnnhls {

// ----- model table -----

ModelTable::ModelTable(
    const std::vector<std::pair<Metric, const QorPredictor*>>& models) {
  for (const auto& [metric, predictor] : models) add(metric, predictor);
}

void ModelTable::add(Metric metric, const QorPredictor* model) {
  GNNHLS_CHECK(model != nullptr, "ModelTable: null model");
  GNNHLS_CHECK(find(metric) == nullptr, "ModelTable: duplicate metric entry");
  Entry entry;
  entry.metric = metric;
  entry.members.push_back(model);
  entry.flat_offset = static_cast<int>(flat_.size());
  flat_.push_back(model);
  entries_.push_back(std::move(entry));
}

void ModelTable::add(Metric metric, const QorEnsemble* ensemble) {
  GNNHLS_CHECK(ensemble != nullptr, "ModelTable: null ensemble");
  GNNHLS_CHECK(find(metric) == nullptr, "ModelTable: duplicate metric entry");
  Entry entry;
  entry.metric = metric;
  entry.flat_offset = static_cast<int>(flat_.size());
  for (int k = 0; k < ensemble->size(); ++k) {
    entry.members.push_back(&ensemble->member(k));
    flat_.push_back(&ensemble->member(k));
  }
  entries_.push_back(std::move(entry));
}

const ModelTable::Entry* ModelTable::find(Metric metric) const {
  for (const Entry& e : entries_) {
    if (e.metric == metric) return &e;
  }
  return nullptr;
}

bool ModelTable::has(Metric metric) const { return find(metric) != nullptr; }

const std::vector<const QorPredictor*>& ModelTable::members(
    Metric metric) const {
  const Entry* e = find(metric);
  if (e == nullptr) {
    throw std::invalid_argument("ModelTable: no model for metric " +
                                metric_name(metric));
  }
  return e->members;
}

int ModelTable::flat_id(Metric metric, int k) const {
  const Entry* e = find(metric);
  if (e == nullptr) {
    throw std::invalid_argument("ModelTable: no model for metric " +
                                metric_name(metric));
  }
  GNNHLS_CHECK(k >= 0 && k < static_cast<int>(e->members.size()),
               "ModelTable: member index out of range");
  return e->flat_offset + k;
}

std::vector<Metric> ModelTable::metrics() const {
  std::vector<Metric> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.metric);
  return out;
}

// ----- scorers -----

// An empty table is constructible (metrics() is just empty) — the first
// score() against it throws through the ModelTable lookup, preserving the
// pre-redesign Scorer contract.
ModelScorerBase::ModelScorerBase(ModelTable table)
    : table_(std::move(table)) {}

std::vector<ScoreResult> ModelScorerBase::score(
    Metric metric, const std::vector<const Sample*>& samples) const {
  const std::vector<const QorPredictor*>& members = table_.members(metric);
  const std::size_t n = samples.size();
  const std::size_t k_members = members.size();
  // One batched transport pass per member, fixed registration order, then
  // the same double-precision mean / population-std aggregation as
  // QorEnsemble — a single-member metric scores uncertainty 0.0 and its
  // means bitwise match the pre-redesign scalar path.
  std::vector<std::vector<double>> per_member(k_members);
  for (std::size_t k = 0; k < k_members; ++k) {
    per_member[k] =
        member_predictions(table_.flat_id(metric, static_cast<int>(k)),
                           *members[k], samples);
    GNNHLS_CHECK_EQ(per_member[k].size(), n, "scorer member output size");
  }
  std::vector<ScoreResult> out(n);
  for (std::size_t j = 0; j < n; ++j) {
    double sum = 0.0;
    for (std::size_t k = 0; k < k_members; ++k) sum += per_member[k][j];
    const double mean = sum / static_cast<double>(k_members);
    double sq = 0.0;
    for (std::size_t k = 0; k < k_members; ++k) {
      const double d = per_member[k][j] - mean;
      sq += d * d;
    }
    out[j].mean = mean;
    out[j].uncertainty =
        k_members > 1 ? std::sqrt(sq / static_cast<double>(k_members)) : 0.0;
  }
  return out;
}

PredictorScorer::PredictorScorer(ModelTable table)
    : ModelScorerBase(std::move(table)) {}

PredictorScorer::PredictorScorer(
    const std::vector<std::pair<Metric, const QorPredictor*>>& models)
    : ModelScorerBase(ModelTable(models)) {}

std::vector<double> PredictorScorer::member_predictions(
    int /*flat_id*/, const QorPredictor& model,
    const std::vector<const Sample*>& samples) const {
  return model.predict_many(samples);
}

ServingScorer::ServingScorer(ModelTable table, SchedulerConfig cfg)
    : ModelScorerBase(std::move(table)) {
  std::vector<const QorPredictor*> predictors = this->table().flat();
  sched_ = std::make_unique<ServingScheduler>(std::move(predictors), cfg);
}

ServingScorer::ServingScorer(
    const std::vector<std::pair<Metric, const QorPredictor*>>& models,
    SchedulerConfig cfg)
    : ServingScorer(ModelTable(models), cfg) {}

std::vector<double> ServingScorer::member_predictions(
    int flat_id, const QorPredictor& /*model*/,
    const std::vector<const Sample*>& samples) const {
  return sched_->predict_many(flat_id, samples);
}

// ----- explorer -----

Explorer::Explorer(const DesignSpace& space, const Scorer& scorer,
                   DseConfig cfg)
    : space_(space), scorer_(scorer), cfg_(std::move(cfg)) {
  GNNHLS_CHECK(!cfg_.front_metrics.empty(),
               "Explorer: front_metrics must not be empty");
  for (std::size_t i = 0; i < cfg_.front_metrics.size(); ++i) {
    for (std::size_t j = i + 1; j < cfg_.front_metrics.size(); ++j) {
      GNNHLS_CHECK(cfg_.front_metrics[i] != cfg_.front_metrics[j],
                   "Explorer: duplicate front metric");
    }
  }
  GNNHLS_CHECK(cfg_.top_k >= 1, "Explorer: top_k must be >= 1");
  const std::vector<Metric> served = scorer_.metrics();
  for (Metric m : scored_metrics()) {
    GNNHLS_CHECK(std::find(served.begin(), served.end(), m) != served.end(),
                 "Explorer: scorer has no model for a required metric");
  }
  // Lower once, after validation: every strategy run starts from copies of
  // these candidates (same Sample uids => one FeatureCache entry per
  // candidate for this explorer's lifetime, however many runs happen).
  const std::vector<DesignPoint> points = space_.enumerate();
  std::vector<Sample> lowered = space_.lower_candidates();
  base_candidates_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    base_candidates_.push_back(
        DseCandidate{points[i], std::move(lowered[i]), {}, {}, false, 0.0});
  }
}

std::vector<Metric> Explorer::scored_metrics() const {
  std::vector<Metric> metrics = cfg_.front_metrics;
  if (std::find(metrics.begin(), metrics.end(), cfg_.rank_metric) ==
      metrics.end()) {
    metrics.push_back(cfg_.rank_metric);
  }
  return metrics;
}

void Explorer::score_round(std::vector<DseCandidate>& candidates,
                           const std::vector<int>& subset,
                           const std::vector<Metric>& metrics,
                           DseResult& r) const {
  const ObsSpan span(cfg_.obs.trace, "score_round", "dse");
  std::vector<const Sample*> samples;
  samples.reserve(subset.size());
  for (int i : subset) {
    samples.push_back(&candidates[static_cast<std::size_t>(i)].sample);
  }
  for (Metric m : metrics) {
    std::vector<ScoreResult> pred;
    {
      // One scoring call's tape temporaries per arena reset; the results
      // use std::allocator and survive the scope.
      const ArenaScope scratch(cfg_.arena ? &thread_scratch_arena()
                                          : nullptr);
      pred = scorer_.score(m, samples);
    }
    GNNHLS_CHECK_EQ(pred.size(), subset.size(), "scorer output size");
    for (std::size_t j = 0; j < subset.size(); ++j) {
      DseCandidate& c = candidates[static_cast<std::size_t>(subset[j])];
      c.predicted[static_cast<std::size_t>(m)] = pred[j].mean;
      c.uncertainty[static_cast<std::size_t>(m)] = pred[j].uncertainty;
    }
    ++r.scorer_calls;
    r.scored_graphs += static_cast<int>(subset.size());
  }
}

void Explorer::synthesize(std::vector<DseCandidate>& candidates,
                          const std::vector<int>& subset, DseResult& r) const {
  const ObsSpan span(cfg_.obs.trace, "synthesize", "dse");
  parallel_shards(static_cast<int>(subset.size()), [&](int j) {
    DseCandidate& c =
        candidates[static_cast<std::size_t>(subset[static_cast<std::size_t>(j)])];
    const HlsOutcome outcome = run_hls_flow(c.sample.prog, c.point.hls);
    c.sample.truth = outcome.implemented;
    c.sample.hls_report = outcome.reported;
    c.latency_cycles = outcome.latency_cycles;
    c.synthesized = true;
  });
  r.hls_runs += static_cast<int>(subset.size());
}

namespace {

/// Pareto front restricted to `subset`, mapped back to candidate indices.
/// `value(i, m)` reads axis m of candidate i.
template <typename ValueFn>
std::vector<int> front_over(const std::vector<int>& subset,
                            const std::vector<Metric>& axes, ValueFn value) {
  std::vector<std::vector<double>> rows;
  rows.reserve(subset.size());
  for (int i : subset) {
    std::vector<double> row;
    row.reserve(axes.size());
    for (Metric m : axes) row.push_back(value(i, m));
    rows.push_back(std::move(row));
  }
  std::vector<int> front;
  for (int local : pareto_front(rows)) {
    front.push_back(subset[static_cast<std::size_t>(local)]);
  }
  return front;  // ascending: subset is ascending and pareto_front is too
}

}  // namespace

void Explorer::finalize(DseResult& r,
                        const std::vector<int>& synthesized) const {
  r.front = front_over(synthesized, cfg_.front_metrics, [&](int i, Metric m) {
    return metric_of(r.candidates[static_cast<std::size_t>(i)].sample.truth,
                     m);
  });
  r.predicted_front =
      front_over(all_indices(static_cast<int>(r.candidates.size())),
                 cfg_.front_metrics, [&](int i, Metric m) {
                   return r.candidates[static_cast<std::size_t>(i)]
                       .predicted[static_cast<std::size_t>(m)];
                 });
  for (int i : synthesized) {
    const double v = metric_of(
        r.candidates[static_cast<std::size_t>(i)].sample.truth,
        cfg_.rank_metric);
    if (r.best < 0 ||
        v < metric_of(
                r.candidates[static_cast<std::size_t>(r.best)].sample.truth,
                cfg_.rank_metric)) {
      r.best = i;  // strict < keeps the lowest index on ties
    }
  }
}

DseResult Explorer::exhaustive() const {
  DseResult r;
  r.candidates = base_candidates_;
  const std::vector<int> all =
      all_indices(static_cast<int>(r.candidates.size()));
  score_round(r.candidates, all, scored_metrics(), r);
  r.survivors_per_round.push_back(static_cast<int>(all.size()));
  synthesize(r.candidates, all, r);
  finalize(r, all);
  return r;
}

double Explorer::acquisition_key(const DseCandidate& c,
                                 Acquisition acq) const {
  const std::size_t m = static_cast<std::size_t>(cfg_.rank_metric);
  if (acq == Acquisition::kUncertaintyBonus) {
    // LCB on a lower-is-better metric: a candidate the members disagree on
    // ranks better than its mean alone — exploration credit.
    return c.predicted[m] - cfg_.active.beta * c.uncertainty[m];
  }
  return c.predicted[m];
}

std::vector<int> Explorer::by_acquisition(
    const std::vector<DseCandidate>& candidates, std::vector<int> set,
    Acquisition acq) const {
  std::sort(set.begin(), set.end(), [&](int a, int b) {
    const double ka =
        acquisition_key(candidates[static_cast<std::size_t>(a)], acq);
    const double kb =
        acquisition_key(candidates[static_cast<std::size_t>(b)], acq);
    if (ka != kb) return ka < kb;
    return a < b;  // deterministic tie-break: lower index survives
  });
  return set;
}

DseResult Explorer::successive_halving() const {
  DseResult r;
  r.candidates = base_candidates_;
  std::vector<int> survivors =
      all_indices(static_cast<int>(r.candidates.size()));
  r.survivors_per_round.push_back(static_cast<int>(survivors.size()));
  // Round 0 scores every metric over the full space (predicted_front needs
  // them); later rounds re-score only the rank metric over the survivors —
  // bit-identical values by the predict_many contract, but they exercise
  // the batched scoring path at each round's shrinking size.
  score_round(r.candidates, survivors, scored_metrics(), r);
  while (static_cast<int>(survivors.size()) > cfg_.top_k) {
    const ObsSpan round_span(cfg_.obs.trace, "halving_round", "dse");
    const int keep = std::max(
        cfg_.top_k, (static_cast<int>(survivors.size()) + 1) / 2);
    // The static baseline always prunes by predicted rank, whatever
    // cfg_.active says — it IS the no-feedback reference.
    survivors = by_acquisition(r.candidates, std::move(survivors),
                               Acquisition::kPredictedRank);
    survivors.resize(static_cast<std::size_t>(keep));
    std::sort(survivors.begin(), survivors.end());
    r.survivors_per_round.push_back(keep);
    if (keep > cfg_.top_k) {
      score_round(r.candidates, survivors, {cfg_.rank_metric}, r);
    }
  }
  synthesize(r.candidates, survivors, r);
  finalize(r, survivors);
  return r;
}

DseResult Explorer::active_halving(const RefitFn& refit_model) const {
  GNNHLS_CHECK(refit_model != nullptr, "active_halving: null refit fn");
  const ActiveConfig& ac = cfg_.active;
  GNNHLS_CHECK(ac.feedback_rounds >= 0,
               "active_halving: feedback_rounds must be >= 0");
  GNNHLS_CHECK(ac.feedback_per_round >= 0,
               "active_halving: feedback_per_round must be >= 0");

  DseResult r;
  r.acquisition = ac.acquisition;
  r.candidates = base_candidates_;
  const int n = static_cast<int>(r.candidates.size());
  std::vector<int> survivors = all_indices(n);
  r.survivors_per_round.push_back(n);
  score_round(r.candidates, survivors, scored_metrics(), r);

  // The WHOLE loop spends successive halving's ground-truth budget, no
  // more: early feedback synthesis and the final round draw from one pot,
  // so active vs. static comparisons are budget-equal by construction.
  int budget_left = std::min(n, cfg_.top_k);
  int rounds_left = ac.feedback_rounds;
  const int per_round =
      ac.feedback_per_round > 0
          ? ac.feedback_per_round
          : std::max(1, cfg_.top_k / (ac.feedback_rounds + 1));

  while (static_cast<int>(survivors.size()) > cfg_.top_k) {
    const ObsSpan round_span(cfg_.obs.trace, "halving_round", "dse");
    const int keep = std::max(
        cfg_.top_k, (static_cast<int>(survivors.size()) + 1) / 2);
    survivors =
        by_acquisition(r.candidates, std::move(survivors), ac.acquisition);
    survivors.resize(static_cast<std::size_t>(keep));
    std::sort(survivors.begin(), survivors.end());
    r.survivors_per_round.push_back(keep);
    if (keep > cfg_.top_k) {
      if (rounds_left > 0 && budget_left > 0) {
        --rounds_left;
        // Feedback: synthesize the acquisition-best unsynthesized
        // survivors early — the points most likely to matter at the end,
        // so the spent budget usually lands inside the final set anyway —
        // and refit on their fresh ground truth.
        std::vector<int> feed;
        const int want = std::min(per_round, budget_left);
        for (int i :
             by_acquisition(r.candidates, survivors, ac.acquisition)) {
          if (static_cast<int>(feed.size()) >= want) break;
          if (!r.candidates[static_cast<std::size_t>(i)].synthesized) {
            feed.push_back(i);
          }
        }
        if (!feed.empty()) {
          std::sort(feed.begin(), feed.end());
          synthesize(r.candidates, feed, r);
          budget_left -= static_cast<int>(feed.size());
          std::vector<Sample> delta;
          delta.reserve(feed.size());
          for (int i : feed) {
            delta.push_back(r.candidates[static_cast<std::size_t>(i)].sample);
          }
          const ObsSpan refit_span(cfg_.obs.trace, "refit", "dse");
          r.refit_reports.push_back(refit_model(delta));
          ++r.refits;
          r.fed_back.push_back(std::move(feed));
        }
      }
      // Survivors re-score through the refitted model: THE feedback payoff
      // (without feedback this call is successive halving's, value for
      // value).
      score_round(r.candidates, survivors, {cfg_.rank_metric}, r);
    }
  }

  // Final round: the remaining budget goes to the acquisition-best
  // unsynthesized survivors. Spent + remaining always equals the static
  // budget: every fed-back candidate either survived (saving its cost
  // here) or paid for the information that pruned it.
  std::vector<int> to_synth;
  for (int i : by_acquisition(r.candidates, survivors, ac.acquisition)) {
    if (static_cast<int>(to_synth.size()) >= budget_left) break;
    if (!r.candidates[static_cast<std::size_t>(i)].synthesized) {
      to_synth.push_back(i);
    }
  }
  std::sort(to_synth.begin(), to_synth.end());
  if (!to_synth.empty()) synthesize(r.candidates, to_synth, r);

  // Ground truth basis = every synthesized candidate: early-synthesized
  // points keep their (already paid for) truth even when later pruned.
  std::vector<int> synthesized;
  for (int i = 0; i < n; ++i) {
    if (r.candidates[static_cast<std::size_t>(i)].synthesized) {
      synthesized.push_back(i);
    }
  }
  finalize(r, synthesized);
  return r;
}

DseResult Explorer::active_halving(QorPredictor& model) const {
  GNNHLS_CHECK(model.metric() == cfg_.rank_metric,
               "active_halving: model fitted for a different metric than "
               "rank_metric");
  return active_halving([&](const std::vector<Sample>& delta) {
    return model.refit(delta, cfg_.active.refit);
  });
}

DseResult Explorer::active_halving(QorEnsemble& model) const {
  GNNHLS_CHECK(model.metric() == cfg_.rank_metric,
               "active_halving: ensemble fitted for a different metric than "
               "rank_metric");
  return active_halving([&](const std::vector<Sample>& delta) {
    return model.refit(delta, cfg_.active.refit);
  });
}

}  // namespace gnnhls
