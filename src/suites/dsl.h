// Internal expression-building DSL for the suite kernels.
//
// Operator overloads on ExprPtr keep 56 kernels readable:
//   assign_array("C", idx2("i","j",N), A("A", idx2("i","k",N)) * A("B", ...))
// Only included by the suites' .cpp files.
#pragma once

#include <utility>

#include "frontend/ast.h"

namespace gnnhls::suite_dsl {

inline ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kAdd, std::move(a), std::move(b));
}
inline ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kSub, std::move(a), std::move(b));
}
inline ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kMul, std::move(a), std::move(b));
}
inline ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kDiv, std::move(a), std::move(b));
}
inline ExprPtr operator%(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kRem, std::move(a), std::move(b));
}
inline ExprPtr operator&(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kAnd, std::move(a), std::move(b));
}
inline ExprPtr operator|(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kOr, std::move(a), std::move(b));
}
inline ExprPtr operator^(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kXor, std::move(a), std::move(b));
}
inline ExprPtr operator<<(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kShl, std::move(a), std::move(b));
}
inline ExprPtr operator>>(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kShr, std::move(a), std::move(b));
}

inline ExprPtr lt(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kLt, std::move(a), std::move(b));
}
inline ExprPtr gt(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kGt, std::move(a), std::move(b));
}
inline ExprPtr eq(ExprPtr a, ExprPtr b) {
  return bin(BinOpKind::kEq, std::move(a), std::move(b));
}

/// Row-major 2D index: i * cols + j.
inline ExprPtr idx2(const std::string& i, const std::string& j, long cols) {
  return bin(BinOpKind::kAdd,
             bin(BinOpKind::kMul, var(i), lit(cols)), var(j));
}

/// Array element shorthand.
inline ExprPtr A(const std::string& name, ExprPtr index) {
  return aref(name, std::move(index));
}

/// Counted loop 0..n-1 with step 1.
inline StmtPtr loop(const std::string& iv, long n, std::vector<StmtPtr> body) {
  return for_stmt(iv, 0, n, 1, std::move(body));
}

/// In-param scalar / array declarations.
inline Param in_scalar(const std::string& name, int bits = 32) {
  return Param{name, ScalarType{bits, true}, 0, false};
}
inline Param in_array(const std::string& name, int size, int bits = 32) {
  return Param{name, ScalarType{bits, true}, size, false};
}

/// Moves a statement list into a vector (brace-init of move-only types).
template <typename... S>
std::vector<StmtPtr> stmts(S&&... s) {
  std::vector<StmtPtr> v;
  v.reserve(sizeof...(s));
  (v.push_back(std::forward<S>(s)), ...);
  return v;
}

}  // namespace gnnhls::suite_dsl
