// FitOptions / FitReport — the redesigned training entry-point contract.
//
// Every fit loop in the library (QorPredictor, NodeTypePredictor, Trainer)
// used to take positional knobs and return one scalar; model-in-the-loop
// DSE needs more: warm starts (continue from the current weights and Adam
// moments instead of re-initializing), per-call epoch budgets (a refit
// round is a handful of epochs, not a full training run), and a validation
// policy (best-epoch selection is right for a from-scratch fit; a warm
// refit on feedback data usually wants the final weights, because the
// original validation split no longer represents the distribution being
// refit on). FitOptions packs those; FitReport returns what the old double
// hid — the full validation curve, the selected epoch, and how much work
// actually ran.
//
// Determinism: a fit's trajectory is a pure function of (model init or
// warm-start weights, data plan, TrainConfig, FitOptions) — nothing here
// depends on thread counts, so warm-started refits inherit the Trainer's
// bit-identity contract unchanged.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace gnnhls {

struct FitOptions {
  /// Continue from the model's current parameters and optimizer moments
  /// (both captured at the previously selected epoch) instead of a fresh
  /// seeded init. Ignored — with a fresh init — when the model has never
  /// been fitted.
  bool warm_start = false;

  /// Epoch budget for this call; < 0 keeps TrainConfig::epochs. Refit
  /// rounds typically run a small budget (see QorPredictor::refit_defaults).
  int epochs = -1;

  /// Seed override for this call; 0 keeps TrainConfig::seed. Drives model
  /// init (fresh fits), batch-membership shuffles and dropout streams —
  /// the knob deep ensembles vary between members.
  std::uint64_t seed = 0;

  /// What the fit keeps when the epoch budget is exhausted.
  enum class Validation {
    /// Restore the parameters (and optimizer moments) of the epoch with the
    /// best validation score — the paper's model-selection recipe.
    kBestEpoch,
    /// Keep the final epoch's parameters; validation is still evaluated and
    /// reported per epoch, but never drives a restore. The default for
    /// feedback refits, whose validation split is out-of-distribution.
    kFinalEpoch,
  };
  Validation validation = Validation::kBestEpoch;
};

struct FitReport {
  /// Best validation score seen (MAPE for regressors — lower is better;
  /// mean accuracy for classifiers — higher is better).
  double best_val = std::numeric_limits<double>::quiet_NaN();
  /// Epoch index of best_val (0-based); -1 when no epoch ran.
  int best_epoch = -1;
  /// Epochs actually executed (the FitOptions/TrainConfig budget).
  int epochs_run = 0;
  /// Optimizer steps taken over all epochs.
  long steps = 0;
  /// True when this call continued from previous weights + Adam moments.
  bool warm_started = false;
  /// Per-epoch validation trajectory, entry e = score after epoch e.
  std::vector<double> val_curve;
};

}  // namespace gnnhls
