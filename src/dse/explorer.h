// Model-in-the-loop design-space exploration.
//
// The Explorer turns a DesignSpace into ranked, Pareto-annotated results
// using a trained QoR predictor as the cheap fidelity and the HLS flow as
// the expensive ground truth:
//
//   * lowering: every candidate is lowered to a CDFG + tensors in parallel
//     on the support/parallel.h thread pool (each shard fills its own slot,
//     so results are byte-identical at any pool width);
//   * scoring: ONE batched scorer call per (metric, round) — either a
//     direct QorPredictor::predict_many forward or the async ServingBatcher
//     path; both are bit-identical per the serving contract, asserted by
//     tests/dse_test.cpp;
//   * strategies: `exhaustive` synthesizes every point (the ground-truth
//     sweep DSE exists to avoid); `successive_halving` prunes the candidate
//     set by predicted rank each round and invokes the HLS flow only on the
//     surviving top-k; `active_halving` closes the loop — part of the same
//     synthesis budget is spent DURING pruning, and each round's fresh
//     ground truth refits the rank-metric model before the next scoring
//     round, so later pruning decisions come from a sharper predictor at
//     zero extra HLS cost (total hls_runs stays exactly successive
//     halving's).
//
// Determinism contract: a DseResult is a pure function of (space, trained
// model, config) — candidate order, predicted values, fronts and the
// halving trace never depend on thread count, scorer path, or scheduling.
// active_halving extends this through the feedback loop: refits inherit the
// Trainer's bit-identity, so the whole active trace is reproducible across
// pool widths and scorer paths given fixed seeds.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/ensemble.h"
#include "core/predictor.h"
#include "dse/design_space.h"
#include "dse/pareto.h"
#include "serve/scheduler.h"

namespace gnnhls {

/// One scored/synthesized candidate. `predicted`/`uncertainty` hold the
/// scorer's decoded mean and dispersion indexed by Metric (0 until that
/// metric is scored; uncertainty stays 0 under single-model scorers);
/// `sample.truth` is valid only when `synthesized`.
struct DseCandidate {
  DesignPoint point;
  Sample sample;
  std::array<double, kNumMetrics> predicted{};
  std::array<double, kNumMetrics> uncertainty{};
  bool synthesized = false;
  double latency_cycles = 0.0;
};

/// How active_halving (and its pruning sorts) ranks candidates.
enum class Acquisition {
  /// Predicted rank-metric mean, lower better — successive halving's rule.
  kPredictedRank,
  /// Lower-confidence-bound style: mean - beta * uncertainty. A candidate
  /// the ensemble disagrees on sorts better than its mean alone would
  /// place it, steering part of the synthesis budget toward informative
  /// points. Needs an ensemble scorer to differ from kPredictedRank.
  kUncertaintyBonus,
};

/// Outcome of one exploration strategy. All index vectors refer to
/// `candidates` (enumeration order) and are sorted ascending (the per-round
/// `fed_back` entries too).
struct DseResult {
  std::vector<DseCandidate> candidates;
  /// Non-dominated set on *true* QoR over the synthesized candidates.
  std::vector<int> front;
  /// Non-dominated set on *predicted* QoR over every candidate.
  std::vector<int> predicted_front;
  /// Synthesized candidate with the best (lowest) true rank_metric;
  /// ties break to the lowest index.
  int best = -1;
  /// Ground-truth HLS flow invocations (the budget DSE minimizes).
  int hls_runs = 0;
  /// Batched scorer invocations / total graphs pushed through them.
  int scorer_calls = 0;
  int scored_graphs = 0;
  /// Candidate-set size after each halving round (exhaustive: one entry).
  std::vector<int> survivors_per_round;

  // --- active-loop trace (populated by active_halving only) ---
  /// Model refits performed (== fed_back.size() == refit_reports.size()).
  int refits = 0;
  /// Candidate indices synthesized early and fed back, one entry per
  /// feedback round, each sorted ascending.
  std::vector<std::vector<int>> fed_back;
  /// What each refit reported (epochs run, warm start, val curve).
  std::vector<FitReport> refit_reports;
  /// The acquisition strategy that drove pruning and feedback selection.
  Acquisition acquisition = Acquisition::kPredictedRank;
};

/// The (metric -> ensemble members) table every scorer shares: single
/// predictors register one member, ensembles register all of theirs, and
/// each member gets a flat slot id — the model id the serving scheduler
/// keys on. Registration order is scoring order; models are borrowed and
/// must be fitted and outlive the table's users.
class ModelTable {
 public:
  ModelTable() = default;
  /// Compat constructor: one single-model entry per (metric, predictor).
  explicit ModelTable(
      const std::vector<std::pair<Metric, const QorPredictor*>>& models);

  /// Registers a single predictor (one member) for `metric`.
  void add(Metric metric, const QorPredictor* model);
  /// Registers every ensemble member for `metric`.
  void add(Metric metric, const QorEnsemble* ensemble);

  bool has(Metric metric) const;
  /// Members registered for `metric`, in registration order. Throws
  /// std::invalid_argument when the metric has no entry.
  const std::vector<const QorPredictor*>& members(Metric metric) const;
  /// Flat slot id of `metric`'s member `k` (index into flat()).
  int flat_id(Metric metric, int k) const;
  /// Every member across all metrics, registration-ordered — the serving
  /// scheduler's model list.
  const std::vector<const QorPredictor*>& flat() const { return flat_; }
  /// Registered metrics in registration order.
  std::vector<Metric> metrics() const;

 private:
  struct Entry {
    Metric metric;
    std::vector<const QorPredictor*> members;
    int flat_offset = 0;
  };
  const Entry* find(Metric metric) const;
  std::vector<Entry> entries_;
  std::vector<const QorPredictor*> flat_;
};

/// Batched prediction source: one call scores one metric over a candidate
/// slice, returning mean + uncertainty per sample. Implementations must be
/// deterministic and safe to call from the exploring thread only.
class Scorer {
 public:
  virtual ~Scorer() = default;
  /// Decoded ScoreResults for `metric`, in input order, via one batched
  /// model entry per ensemble member. Throws if `metric` has no model.
  virtual std::vector<ScoreResult> score(
      Metric metric, const std::vector<const Sample*>& samples) const = 0;
  /// Metrics this scorer can serve, in registration order.
  virtual std::vector<Metric> metrics() const = 0;
};

/// Common scorer implementation over a ModelTable: score() runs one batched
/// prediction pass per registered member (fixed registration order) and
/// aggregates them into ScoreResults exactly like QorEnsemble (double
/// accumulation, population std; single-member metrics score uncertainty
/// 0.0). Derived classes supply only the per-member batched transport.
class ModelScorerBase : public Scorer {
 public:
  std::vector<ScoreResult> score(
      Metric metric,
      const std::vector<const Sample*>& samples) const override;
  std::vector<Metric> metrics() const override { return table_.metrics(); }

 protected:
  explicit ModelScorerBase(ModelTable table);
  /// One batched prediction pass through one member model. `flat_id` is the
  /// member's slot in table().flat() — the serving path's model id; the
  /// direct path can ignore it and call `model` itself.
  virtual std::vector<double> member_predictions(
      int flat_id, const QorPredictor& model,
      const std::vector<const Sample*>& samples) const = 0;
  const ModelTable& table() const { return table_; }

 private:
  ModelTable table_;
};

/// Scores through direct QorPredictor::predict_many calls. Models are
/// borrowed: they must be fitted, and outlive the scorer.
class PredictorScorer : public ModelScorerBase {
 public:
  explicit PredictorScorer(ModelTable table);
  /// Compat constructor (pre-ModelTable signature).
  explicit PredictorScorer(
      const std::vector<std::pair<Metric, const QorPredictor*>>& models);

 protected:
  std::vector<double> member_predictions(
      int flat_id, const QorPredictor& model,
      const std::vector<const Sample*>& samples) const override;
};

/// Scores through the async serving path: ONE shared-queue
/// ServingScheduler carrying every registered member model (multi-model
/// serving), exercising submit/micro-batch/scatter under DSE load.
/// Historically this spun one ServingBatcher worker thread per metric — a
/// 4-thread tax for 4-metric scoring; the shared queue serves all members
/// from a single small worker pool (cfg.workers, default 1). Values are
/// bit-identical to PredictorScorer by the serving contract. Models are
/// borrowed and must outlive the scorer; active_halving may refit them
/// between score() calls — the scheduler permits quiescent refits (see
/// serve/scheduler.h).
class ServingScorer : public ModelScorerBase {
 public:
  /// `cfg.workers`/`max_batch`/`batch_window_us`/`adaptive_window`/`arena`
  /// apply to the shared scheduler; admission knobs (max_queue, deadlines)
  /// are left off — DSE scoring must answer every sample.
  explicit ServingScorer(ModelTable table, SchedulerConfig cfg = {});
  /// Compat constructor (pre-ModelTable signature).
  explicit ServingScorer(
      const std::vector<std::pair<Metric, const QorPredictor*>>& models,
      SchedulerConfig cfg = {});

  /// Scheduler counters (per_model_completed is in table().flat() order).
  SchedStats serving_stats() const { return sched_->stats(); }

 protected:
  std::vector<double> member_predictions(
      int flat_id, const QorPredictor& model,
      const std::vector<const Sample*>& samples) const override;

 private:
  // unique_ptr: ServingScheduler owns worker threads and is not movable.
  std::unique_ptr<ServingScheduler> sched_;
};

/// active_halving's feedback policy.
struct ActiveConfig {
  /// Feedback (synthesize -> refit -> re-score) rounds to interleave with
  /// pruning. 0 reduces active_halving to successive_halving exactly (same
  /// trace, same budget) under kPredictedRank acquisition.
  int feedback_rounds = 1;
  /// Candidates synthesized early per feedback round; 0 picks
  /// max(1, top_k / (feedback_rounds + 1)) — spreading the budget so the
  /// final round still synthesizes fresh survivors. Feedback always spends
  /// from the SAME top_k budget: total hls_runs stays successive halving's.
  int feedback_per_round = 0;
  /// Uncertainty weight of Acquisition::kUncertaintyBonus (LCB beta).
  double beta = 1.0;
  /// Candidate ranking for pruning AND feedback selection.
  Acquisition acquisition = Acquisition::kPredictedRank;
  /// Passed to the model's refit() each feedback round (warm start, small
  /// epoch budget, final-epoch validation by default).
  FitOptions refit = QorPredictor::refit_defaults();
};

struct DseConfig {
  /// Axes of the Pareto fronts (order = axis order; duplicates rejected).
  std::vector<Metric> front_metrics = {Metric::kLut, Metric::kFf};
  /// Metric that drives successive-halving pruning and `best`.
  Metric rank_metric = Metric::kLut;
  /// Ground-truth synthesis budget of successive halving (>= 1): pruning
  /// halves the candidate set until at most top_k points survive.
  int top_k = 4;
  /// Model-in-the-loop knobs (active_halving only).
  ActiveConfig active;
  /// Back each scoring round's forward temporaries with the exploring
  /// thread's scratch arena, reset per batched scorer call
  /// (support/arena.h). Covers the PredictorScorer path (which runs the
  /// forward inline); the ServingScorer's worker manages its own arena via
  /// ServeConfig::arena. Execution-only: results are unchanged.
  bool arena = false;
  /// Observability knobs (obs/obs_config.h): obs.trace emits
  /// halving_round / score_round / synthesize spans when the process-wide
  /// TraceCollector is active. Execution-only: DseResult is unchanged.
  ObsConfig obs;
};

class Explorer {
 public:
  /// `space` and `scorer` are borrowed and must outlive the explorer. The
  /// scorer must serve every metric in front_metrics + rank_metric.
  /// Construction lowers the whole space once (in parallel shards); both
  /// strategies start from copies of those candidates, so repeated
  /// explorations share one Sample uid set — the process-wide FeatureCache
  /// holds one feature matrix per candidate per Explorer, not per run.
  Explorer(const DesignSpace& space, const Scorer& scorer,
           DseConfig cfg = {});

  /// Scores + synthesizes EVERY candidate; fronts and best are computed
  /// on full ground truth (hls_runs == space.size()).
  DseResult exhaustive() const;

  /// Predictor-guided pruning: score all candidates once, then repeatedly
  /// keep the predicted-best half (never fewer than top_k, ties to the
  /// lower index, survivors re-scored through the batched path each round)
  /// until at most top_k survive; only survivors get a ground-truth HLS
  /// run. front/best are computed on the survivors' truth.
  DseResult successive_halving() const;

  /// Refits the rank-metric model on a freshly synthesized feedback delta.
  /// Receives the delta (candidate samples with truth filled in) and
  /// returns the refit's report. MUST update the same model the scorer
  /// reads for rank_metric — the loop's whole point is that the next
  /// score_round sees the sharpened model.
  using RefitFn = std::function<FitReport(const std::vector<Sample>&)>;

  /// Model-in-the-loop pruning at successive halving's exact ground-truth
  /// budget. Per pruning round (cfg.active, while feedback rounds remain):
  /// synthesize the acquisition-best unsynthesized survivors early, feed
  /// their truth to `refit_model`, then re-score the survivors through the
  /// (now sharper) model before the next prune. The final round spends
  /// whatever budget remains on the surviving set; fronts/best are computed
  /// over every synthesized candidate — early-synthesized points keep their
  /// truth even if later pruned. With feedback_rounds == 0 and
  /// kPredictedRank acquisition this is successive_halving exactly, trace
  /// for trace. The full feedback history lands in the DseResult
  /// (refits / fed_back / refit_reports / acquisition).
  DseResult active_halving(const RefitFn& refit_model) const;

  /// Convenience: feeds the delta to model.refit(delta, cfg.active.refit).
  /// The model must be the one the scorer serves for rank_metric (checked
  /// against its fitted metric).
  DseResult active_halving(QorPredictor& model) const;
  DseResult active_halving(QorEnsemble& model) const;

  const DseConfig& config() const { return cfg_; }

 private:
  /// One batched scorer call per metric over candidates[subset].
  void score_round(std::vector<DseCandidate>& candidates,
                   const std::vector<int>& subset,
                   const std::vector<Metric>& metrics, DseResult& r) const;
  /// The sort key one acquisition strategy assigns a candidate (lower is
  /// better). successive_halving always ranks kPredictedRank; active paths
  /// rank cfg.active.acquisition.
  double acquisition_key(const DseCandidate& c, Acquisition acq) const;
  /// `set` sorted by acquisition key, ties to the lower index.
  std::vector<int> by_acquisition(const std::vector<DseCandidate>& candidates,
                                  std::vector<int> set,
                                  Acquisition acq) const;
  /// Ground-truth HLS flow over candidates[subset], in parallel shards.
  void synthesize(std::vector<DseCandidate>& candidates,
                  const std::vector<int>& subset, DseResult& r) const;
  /// All metrics to score: front_metrics + rank_metric, deduplicated.
  std::vector<Metric> scored_metrics() const;
  void finalize(DseResult& r, const std::vector<int>& synthesized) const;

  const DesignSpace& space_;
  const Scorer& scorer_;
  DseConfig cfg_;
  /// Lowered once at construction; strategies copy (copies keep each
  /// Sample's uid, the FeatureCache identity).
  std::vector<DseCandidate> base_candidates_;
};

}  // namespace gnnhls
