#!/usr/bin/env python3
"""Markdown link checker for the CI docs job (no network, no deps).

Checks every inline link/image ``[text](target)`` and reference definition
``[label]: target`` in the given markdown files:

* relative targets must exist on disk (resolved against the file's
  directory; a ``#fragment`` on a .md target must match a heading anchor in
  that file);
* intra-document fragments (``#section``) must match a heading anchor of
  the containing file;
* ``http(s)``/``mailto`` targets are recorded but not fetched (CI runs
  offline) — pass --list-external to print them.

Exit code 1 if any link is broken, with one diagnostic line per failure.

Usage: scripts/check_markdown_links.py README.md ARCHITECTURE.md ...
"""

import argparse
import re
import sys
from pathlib import Path

# Inline [text](target) — target ends at the first unescaped ')'; tolerate
# one level of nested parens (e.g. wiki-style URLs).
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+(?:\([^)]*\))?)>?\s*(?:\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+<?(\S+?)>?\s*(?:\"[^\"]*\")?$")
FENCE = re.compile(r"^\s*(```|~~~)")
HEADING = re.compile(r"^\s{0,3}#{1,6}\s+(.*?)\s*#*\s*$")
EXTERNAL = re.compile(r"^(https?:|mailto:|ftp:)", re.IGNORECASE)


def github_anchor(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def parse_file(path: Path):
    """Returns (links, anchors): link targets with line numbers, heading
    anchors. Fenced code blocks are skipped (flag examples aren't links)."""
    links, anchors = [], set()
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING.match(line)
        if m:
            anchors.add(github_anchor(m.group(1)))
        m = REF_DEF.match(line)
        if m:
            links.append((lineno, m.group(1)))
            continue
        for m in INLINE_LINK.finditer(line):
            links.append((lineno, m.group(1)))
    return links, anchors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", type=Path)
    ap.add_argument("--list-external", action="store_true",
                    help="print external URLs (not fetched)")
    args = ap.parse_args()

    anchors_cache = {}

    def anchors_of(path: Path):
        if path not in anchors_cache:
            anchors_cache[path] = parse_file(path)[1]
        return anchors_cache[path]

    failures = 0
    externals = []
    checked = 0
    for md in args.files:
        if not md.is_file():
            print(f"{md}: file not found", file=sys.stderr)
            failures += 1
            continue
        links, anchors = parse_file(md)
        anchors_cache[md] = anchors
        for lineno, target in links:
            checked += 1
            if EXTERNAL.match(target):
                externals.append(target)
                continue
            target, _, fragment = target.partition("#")
            if not target:  # intra-document #fragment
                if fragment and github_anchor(fragment) not in anchors:
                    print(f"{md}:{lineno}: broken anchor #{fragment}",
                          file=sys.stderr)
                    failures += 1
                continue
            dest = (md.parent / target).resolve()
            if not dest.exists():
                print(f"{md}:{lineno}: broken link {target}", file=sys.stderr)
                failures += 1
            elif fragment and dest.suffix == ".md" and \
                    github_anchor(fragment) not in anchors_of(dest):
                print(f"{md}:{lineno}: broken anchor {target}#{fragment}",
                      file=sys.stderr)
                failures += 1

    if args.list_external:
        for url in sorted(set(externals)):
            print(f"external (not fetched): {url}")
    print(f"checked {checked} links in {len(args.files)} files: "
          f"{failures} broken, {len(externals)} external (skipped)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
