#include "train/batch_plan.h"

#include <numeric>
#include <utility>

#include "support/parallel.h"

namespace gnnhls {

BatchPlan BatchPlan::build(const std::vector<Sample>& samples,
                           const std::vector<int>& train_idx, int batch_size,
                           const FeatureFn& feature_of, const LabelFn& label_of,
                           Rng order_rng) {
  GNNHLS_CHECK(!train_idx.empty(), "BatchPlan: empty training set");
  BatchPlan plan(order_rng);
  plan.samples_ = &samples;
  plan.batch_size_ = batch_size;

  // Prefetch features serially: feature_of typically fills the shared
  // FeatureCache, and a deterministic fill order keeps hit/miss accounting
  // reproducible for tests regardless of pool width.
  std::vector<const Matrix*> feats(samples.size(), nullptr);
  for (int i : train_idx) {
    feats[static_cast<std::size_t>(i)] =
        &feature_of(samples[static_cast<std::size_t>(i)]);
  }

  if (batch_size <= 1) {
    // Legacy per-sample view; the epoch loop shuffles sample_order_ with
    // exactly the draws the old fit loop made.
    plan.sample_order_ = train_idx;
    plan.sample_features_ = std::move(feats);
    plan.sample_labels_.resize(samples.size());
    for (int i : train_idx) {
      plan.sample_labels_[static_cast<std::size_t>(i)] =
          label_of(samples[static_cast<std::size_t>(i)]);
    }
    return plan;
  }

  // Fix membership from one shuffle — the chunks the old loop's first epoch
  // would have produced — then assemble every union once.
  std::vector<int> order = train_idx;
  plan.order_rng_.shuffle(order);
  const std::size_t bs = static_cast<std::size_t>(batch_size);
  plan.items_.resize((order.size() + bs - 1) / bs);
  for (std::size_t pos = 0, b = 0; pos < order.size(); pos += bs, ++b) {
    const std::size_t end = std::min(pos + bs, order.size());
    plan.items_[b].members.assign(order.begin() + static_cast<long>(pos),
                                  order.begin() + static_cast<long>(end));
  }

  // Per-sample labels are built serially (label_of may hit shared caches);
  // the pure union/stack assembly fans out across batches.
  std::vector<Matrix> labels(samples.size());
  for (int i : train_idx) {
    labels[static_cast<std::size_t>(i)] =
        label_of(samples[static_cast<std::size_t>(i)]);
  }
  parallel_shards(static_cast<int>(plan.items_.size()), [&](int b) {
    Item& item = plan.items_[static_cast<std::size_t>(b)];
    std::vector<const GraphTensors*> parts;
    std::vector<const Matrix*> fparts, lparts;
    parts.reserve(item.members.size());
    fparts.reserve(item.members.size());
    lparts.reserve(item.members.size());
    for (int i : item.members) {
      parts.push_back(&samples[static_cast<std::size_t>(i)].tensors);
      fparts.push_back(feats[static_cast<std::size_t>(i)]);
      lparts.push_back(&labels[static_cast<std::size_t>(i)]);
    }
    item.batch = GraphBatch::build(parts);
    item.features = GraphBatch::stack_features(fparts);
    item.labels = GraphBatch::stack_features(lparts);
  });

  plan.batch_order_.resize(plan.items_.size());
  std::iota(plan.batch_order_.begin(), plan.batch_order_.end(), 0);
  return plan;
}

const std::vector<int>& BatchPlan::next_epoch_batch_order() {
  GNNHLS_CHECK(batched(), "next_epoch_batch_order: legacy-mode plan");
  if (!first_epoch_served_) {
    // Epoch 0 visits the build order — together with membership fixing this
    // reproduces the old loop's first epoch exactly.
    first_epoch_served_ = true;
    return batch_order_;
  }
  order_rng_.shuffle(batch_order_);
  return batch_order_;
}

const std::vector<int>& BatchPlan::next_epoch_sample_order() {
  GNNHLS_CHECK(!batched(), "next_epoch_sample_order: batched-mode plan");
  order_rng_.shuffle(sample_order_);
  return sample_order_;
}

const GraphTensors& BatchPlan::sample_tensors(int sample_idx) const {
  return (*samples_)[static_cast<std::size_t>(sample_idx)].tensors;
}

const Matrix& BatchPlan::sample_features(int sample_idx) const {
  const Matrix* f = sample_features_[static_cast<std::size_t>(sample_idx)];
  GNNHLS_CHECK(f != nullptr, "sample_features: index not in training set");
  return *f;
}

const Matrix& BatchPlan::sample_labels(int sample_idx) const {
  return sample_labels_[static_cast<std::size_t>(sample_idx)];
}

}  // namespace gnnhls
