#include <cmath>

#include <gtest/gtest.h>

#include "nn/adam.h"
#include "nn/layers.h"

namespace gnnhls {
namespace {

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear lin(3, 5, rng);
  Tape tape;
  const Var x = tape.leaf(Matrix(4, 3, 1.0F));
  const Var y = lin.forward(tape, x);
  EXPECT_EQ(y.rows(), 4);
  EXPECT_EQ(y.cols(), 5);
  EXPECT_EQ(lin.parameters().size(), 2U);
}

TEST(LinearTest, InputWidthMismatchThrows) {
  Rng rng(1);
  Linear lin(3, 5, rng);
  Tape tape;
  EXPECT_THROW(lin.forward(tape, tape.leaf(Matrix(4, 2, 1.0F))),
               std::invalid_argument);
}

TEST(MlpTest, PaperHeadShape) {
  Rng rng(2);
  // The paper's graph-level head: hidden-2*hidden-hidden-1.
  Mlp head({300, 600, 300, 1}, rng);
  Tape tape;
  const Var y = head.forward(tape, tape.leaf(Matrix(1, 300, 0.1F)));
  EXPECT_EQ(y.rows(), 1);
  EXPECT_EQ(y.cols(), 1);
  EXPECT_EQ(head.parameters().size(), 6U);
}

TEST(EmbeddingTest, LookupReturnsTableRows) {
  Rng rng(3);
  Embedding emb(10, 4, rng);
  Tape tape;
  const Var e = emb.forward(tape, {7, 7, 2});
  EXPECT_EQ(e.rows(), 3);
  EXPECT_EQ(e.cols(), 4);
  for (int j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(e.value()(0, j), e.value()(1, j));
  }
}

TEST(GruCellTest, OutputShapeAndBounded) {
  Rng rng(4);
  GruCell gru(8, rng);
  Tape tape;
  const Var input = tape.leaf(Matrix(5, 8, 0.3F));
  const Var state = tape.leaf(Matrix(5, 8, -0.2F));
  const Var h = gru.forward(tape, input, state);
  EXPECT_EQ(h.rows(), 5);
  EXPECT_EQ(h.cols(), 8);
  // GRU output is a convex combination of tanh candidate and state.
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_LT(std::abs(h.value()(i, j)), 1.01F);
    }
  }
}

TEST(AdamTest, LearnsLinearRegression) {
  Rng rng(5);
  Linear model(2, 1, rng);
  Adam opt(model, AdamConfig{.lr = 0.05F});

  // y = 3*x0 - 2*x1 + 1
  Matrix xs(16, 2);
  Matrix ys(16, 1);
  Rng data_rng(99);
  for (int i = 0; i < 16; ++i) {
    xs(i, 0) = data_rng.normal();
    xs(i, 1) = data_rng.normal();
    ys(i, 0) = 3.0F * xs(i, 0) - 2.0F * xs(i, 1) + 1.0F;
  }

  float first_loss = 0.0F, last_loss = 0.0F;
  for (int epoch = 0; epoch < 200; ++epoch) {
    Tape tape;
    const Var pred = model.forward(tape, tape.leaf(xs));
    const Var loss = tape.mse_loss(pred, ys);
    if (epoch == 0) first_loss = loss.value()(0, 0);
    last_loss = loss.value()(0, 0);
    tape.backward(loss);
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.01F);
  EXPECT_LT(last_loss, 0.05F);
}

TEST(AdamTest, LearnsBinaryClassification) {
  Rng rng(6);
  Mlp model({2, 8, 1}, rng);
  Adam opt(model, AdamConfig{.lr = 0.05F});

  // Separable data: label = x0 + x1 > 0.
  Matrix xs(32, 2);
  Matrix ys(32, 1);
  Rng data_rng(123);
  for (int i = 0; i < 32; ++i) {
    xs(i, 0) = data_rng.normal();
    xs(i, 1) = data_rng.normal();
    ys(i, 0) = xs(i, 0) + xs(i, 1) > 0.0F ? 1.0F : 0.0F;
  }
  float last_loss = 1e9F;
  for (int epoch = 0; epoch < 300; ++epoch) {
    Tape tape;
    const Var logits = model.forward(tape, tape.leaf(xs));
    const Var loss = tape.bce_with_logits_loss(logits, ys);
    last_loss = loss.value()(0, 0);
    tape.backward(loss);
    opt.step();
  }
  EXPECT_LT(last_loss, 0.2F);
}

TEST(AdamTest, WeightDecayShrinksIdleParameters) {
  Rng rng(7);
  Linear model(1, 1, rng, /*with_bias=*/false);
  Adam opt(model, AdamConfig{.lr = 0.01F, .weight_decay = 0.1F});
  const float before = std::abs(model.parameters()[0]->value()(0, 0));
  for (int i = 0; i < 50; ++i) {
    // Zero gradient steps: only decay acts.
    opt.step();
  }
  const float after = std::abs(model.parameters()[0]->value()(0, 0));
  EXPECT_LT(after, before);
}

TEST(AdamTest, GradClipBoundsUpdate) {
  Rng rng(8);
  Linear model(1, 1, rng, /*with_bias=*/false);
  Adam opt(model, AdamConfig{.lr = 1.0F, .grad_clip = 1e-3F});
  const float before = model.parameters()[0]->value()(0, 0);
  model.parameters()[0]->mutable_grad()(0, 0) = 1e6F;
  opt.step();
  const float after = model.parameters()[0]->value()(0, 0);
  // Step magnitude is lr * clipped unit direction ~ lr, not lr * 1e6.
  EXPECT_LT(std::abs(after - before), 1.5F);
}

TEST(ModuleTest, ZeroGradClearsAccumulation) {
  Rng rng(9);
  Linear model(2, 2, rng);
  Tape tape;
  const Var loss =
      tape.sum_all(model.forward(tape, tape.leaf(Matrix(3, 2, 1.0F))));
  tape.backward(loss);
  double norm = 0.0;
  for (auto* p : model.parameters()) norm += p->mutable_grad().squared_norm();
  EXPECT_GT(norm, 0.0);
  model.zero_grad();
  norm = 0.0;
  for (auto* p : model.parameters()) norm += p->mutable_grad().squared_norm();
  EXPECT_EQ(norm, 0.0);
}

}  // namespace
}  // namespace gnnhls
