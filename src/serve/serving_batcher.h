// Asynchronous micro-batching inference front-end (the ROADMAP's "serving
// batcher") — since the shared-queue scheduler landed, a thin single-model
// facade over ServingScheduler (serve/scheduler.h).
//
// DSE loops score thousands of candidate designs per search step, usually
// from several concurrent searcher threads, each holding one graph at a
// time. Running a full forward per graph wastes the batched engine: the
// GraphBatch segment readout already produces [N_graphs, 1] predictions in
// member order for the cost of roughly one tape. The ServingBatcher turns
// that into a serving primitive: callers submit single samples and get a
// future; a worker thread collects requests for a bounded window (max_batch
// requests or batch_window_us microseconds, whichever closes first), runs
// ONE QorPredictor::predict_many forward over the disjoint union, and
// scatters the per-member predictions back to each caller's promise.
//
// The facade pins the scheduler to one model, one worker, and a static
// (non-adaptive) window, which reproduces the historical batcher behavior
// exactly: same window-close reasons, same drain-on-shutdown guarantee,
// same submit-after-shutdown error. Callers that want multi-model sharing,
// deadlines, priorities, adaptive windows or admission control use the
// scheduler directly.
//
// Determinism contract: a served prediction is bit-identical to
// QorPredictor::predict on the same sample and trained model, regardless of
// which requests happened to share its micro-batch (the union adds no
// cross-graph edges and segment ops reduce each member's rows in solo
// order). Batching changes latency, never values — asserted by
// tests/serve_test.cpp.
//
// Threading: submit()/predict_many()/stats()/shutdown() are safe from any
// number of threads. The model is shared read-only — the batcher takes the
// predictor by const reference and requires that nobody re-fits it while
// serving. Destruction (or shutdown()) drains: every accepted request is
// answered before the worker exits.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/predictor.h"
#include "serve/scheduler.h"
#include "serve/serve_stats.h"

namespace gnnhls {

/// The latency-vs-throughput knobs. Both bound every micro-batch: a window
/// closes as soon as max_batch requests are queued, and no later than
/// batch_window_us microseconds after its oldest request arrived.
struct ServeConfig {
  /// Graphs per forward pass (>= 1). 1 disables batching: every request
  /// pays its own forward (the baseline bench_serving compares against).
  int max_batch = 8;
  /// Longest time a queued request may wait for co-batchable traffic, in
  /// microseconds (>= 0). 0 means "never wait": the worker serves whatever
  /// is queued the moment it looks — lowest latency, batches form only when
  /// requests arrive faster than forwards complete.
  std::int64_t batch_window_us = 200;
  /// Back each micro-batch forward's tape temporaries with the worker
  /// thread's scratch arena, reset between micro-batches (support/arena.h).
  /// Execution-only: served values are unchanged.
  bool arena = false;
  /// Record per-request submit->answer latency for take_latencies_us()
  /// (bench_serving's open-loop mode only; the raw-sample buffer is
  /// bounded by SchedulerConfig::latency_cap).
  bool record_latencies = false;
  /// Observability knobs, forwarded to the underlying scheduler
  /// (obs/obs_config.h). Execution-only.
  ObsConfig obs;
};

class ServingBatcher {
 public:
  /// Spawns the worker thread. `predictor` must be fitted already, must
  /// outlive the batcher, and must not be re-fit while serving (the worker
  /// reads it concurrently with callers).
  explicit ServingBatcher(const QorPredictor& predictor, ServeConfig cfg = {});

  /// Drains and joins (equivalent to shutdown()).
  ~ServingBatcher() = default;

  ServingBatcher(const ServingBatcher&) = delete;
  ServingBatcher& operator=(const ServingBatcher&) = delete;

  /// Enqueues one sample and returns the future for its decoded QoR
  /// prediction. The const& overload borrows: `sample` must stay alive
  /// until the future is ready. The shared_ptr overload hands off
  /// ownership, and the rvalue overload moves the sample into shared
  /// ownership — neither deep-copies the node/edge tensors. After
  /// shutdown() the returned future holds a std::runtime_error instead of
  /// blocking forever.
  std::future<double> submit(const Sample& sample);
  std::future<double> submit(std::shared_ptr<const Sample> sample);
  std::future<double> submit(Sample&& sample);

  /// Blocking convenience: submits every sample, waits for all futures and
  /// returns the predictions in input order. Safe from many threads at
  /// once; the requests micro-batch with any other concurrent traffic.
  std::vector<double> predict_many(const std::vector<const Sample*>& samples);

  /// Stops accepting new requests, serves everything already queued, then
  /// joins the worker. Idempotent and safe to call concurrently with
  /// submitters (they observe either acceptance or the shutdown error).
  void shutdown();

  /// Consistent snapshot of the serving counters (see serve_stats.h).
  ServeStats stats() const;

  /// Drains the recorded latencies (cfg.record_latencies only).
  std::vector<double> take_latencies_us();

  const ServeConfig& config() const { return cfg_; }

 private:
  static SchedulerConfig to_scheduler_config(const ServeConfig& cfg);

  const ServeConfig cfg_;
  ServingScheduler sched_;
};

}  // namespace gnnhls
