// Minimal command-line flag parsing for bench/example binaries.
//
// Supports "--name=value" and "--name value". Unknown flags raise, so typos
// in experiment sweeps fail loudly instead of silently running defaults.
#pragma once

#include <map>
#include <string>

namespace gnnhls {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_string(const std::string& name, const std::string& def) const;
  bool get_bool(const std::string& name, bool def) const;
  bool has(const std::string& name) const;

  /// Names that were provided but never read — used to reject typos.
  /// Call after all get_*() calls.
  void check_all_consumed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace gnnhls
