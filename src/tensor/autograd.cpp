#include "tensor/autograd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "tensor/fused_mp.h"

namespace gnnhls {

namespace {

void ensure_grad_storage(VarNode& n) {
  if (n.requires_grad && n.grad.empty() && !n.value.empty()) {
    n.grad = Matrix::zeros(n.value.rows(), n.value.cols());
  }
}

bool any_requires_grad(const std::vector<Var>& parents) {
  return std::any_of(parents.begin(), parents.end(),
                     [](const Var& v) { return v.requires_grad(); });
}

/// Active per-thread gradient redirection (see LeafGradRedirect). One frame
/// per thread, installed/removed by the RAII scope on that same thread.
struct RedirectFrame {
  std::unordered_map<const VarNode*, Matrix*> sinks;
};
thread_local RedirectFrame* tl_redirect = nullptr;

/// Destination for gradient accumulation into `n` on this thread: the
/// redirected sink if one is registered, otherwise the node's own grad.
/// Backprop lambdas hoist this lookup out of their element loops.
Matrix& sink(VarNode& n) {
  if (tl_redirect != nullptr) {
    const auto it = tl_redirect->sinks.find(&n);
    if (it != tl_redirect->sinks.end()) return *it->second;
  }
  return n.grad;
}

Matrix& sink_of(const Var& v) { return sink(*v.node()); }

}  // namespace

LeafGradRedirect::LeafGradRedirect(const std::vector<Var>& leaves,
                                   std::vector<Matrix>& sinks) {
  GNNHLS_CHECK(tl_redirect == nullptr,
               "LeafGradRedirect: scopes do not nest on a thread");
  sinks.resize(leaves.size());
  auto frame = std::make_unique<RedirectFrame>();
  frame->sinks.reserve(leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    const Var& leaf = leaves[i];
    GNNHLS_CHECK(leaf.valid(), "LeafGradRedirect: invalid leaf");
    if (!leaf.requires_grad()) continue;
    // Reuse the sink allocation across scopes when shapes already match.
    if (sinks[i].same_shape(leaf.value())) {
      sinks[i].fill(0.0F);
    } else {
      sinks[i] = Matrix::zeros(leaf.rows(), leaf.cols());
    }
    frame->sinks.emplace(leaf.node().get(), &sinks[i]);
  }
  tl_redirect = frame.release();
}

LeafGradRedirect::~LeafGradRedirect() {
  delete tl_redirect;
  tl_redirect = nullptr;
}

Var make_leaf(Matrix value, bool requires_grad) {
  auto node = std::make_shared<VarNode>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  ensure_grad_storage(*node);
  return Var(node);
}

Var Tape::leaf(Matrix value, bool requires_grad) {
  Var v = make_leaf(std::move(value), requires_grad);
  ops_.push_back(v.node());
  return v;
}

Var Tape::use(const Var& v) {
  GNNHLS_CHECK(v.valid(), "use: invalid Var");
  return v;
}

Var Tape::record(Matrix value, std::vector<Var> parents,
                 std::function<void(VarNode&)> backprop) {
  auto node = std::make_shared<VarNode>();
  node->value = std::move(value);
  node->requires_grad = any_requires_grad(parents);
  node->parents.reserve(parents.size());
  for (const auto& p : parents) node->parents.push_back(p.node());
  if (node->requires_grad) {
    // Gradient storage is allocated lazily in backward(), so pure inference
    // (predict paths) never pays for gradient buffers.
    node->backprop = std::move(backprop);
  }
  ops_.push_back(node);
  return Var(node);
}

void Tape::backward(const Var& loss) {
  GNNHLS_CHECK(loss.valid() && loss.rows() == 1 && loss.cols() == 1,
               "backward: loss must be a [1,1] Var");
  GNNHLS_CHECK(loss.requires_grad(),
               "backward: loss does not depend on any parameter");
  for (const auto& node : ops_) ensure_grad_storage(*node);
  ensure_grad_storage(*loss.node());
  loss.node()->grad(0, 0) += 1.0F;
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    VarNode& n = **it;
    if (n.requires_grad && n.backprop) n.backprop(n);
  }
}

// ---------------------------------------------------------------------------
// Dense ops
// ---------------------------------------------------------------------------

Var Tape::matmul(const Var& a, const Var& b) {
  Matrix out = gnnhls::matmul(a.value(), b.value());
  return record(std::move(out), {a, b}, [a, b](VarNode& n) {
    if (a.requires_grad()) {
      sink_of(a).add_inplace(matmul_transpose_b(n.grad, b.value()));
    }
    if (b.requires_grad()) {
      sink_of(b).add_inplace(matmul_transpose_a(a.value(), n.grad));
    }
  });
}

Var Tape::add(const Var& a, const Var& b) {
  GNNHLS_CHECK(a.value().same_shape(b.value()), "add: shape mismatch");
  Matrix out = a.value();
  out.add_inplace(b.value());
  return record(std::move(out), {a, b}, [a, b](VarNode& n) {
    if (a.requires_grad()) sink_of(a).add_inplace(n.grad);
    if (b.requires_grad()) sink_of(b).add_inplace(n.grad);
  });
}

Var Tape::sub(const Var& a, const Var& b) {
  GNNHLS_CHECK(a.value().same_shape(b.value()), "sub: shape mismatch");
  Matrix out = a.value();
  out.add_scaled_inplace(b.value(), -1.0F);
  return record(std::move(out), {a, b}, [a, b](VarNode& n) {
    if (a.requires_grad()) sink_of(a).add_inplace(n.grad);
    if (b.requires_grad()) sink_of(b).add_scaled_inplace(n.grad, -1.0F);
  });
}

Var Tape::mul(const Var& a, const Var& b) {
  GNNHLS_CHECK(a.value().same_shape(b.value()), "mul: shape mismatch");
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] *= b.value().data()[i];
  }
  return record(std::move(out), {a, b}, [a, b](VarNode& n) {
    if (a.requires_grad()) {
      Matrix& ga = sink_of(a);
      for (std::size_t i = 0; i < n.grad.size(); ++i) {
        ga.data()[i] += n.grad.data()[i] * b.value().data()[i];
      }
    }
    if (b.requires_grad()) {
      Matrix& gb = sink_of(b);
      for (std::size_t i = 0; i < n.grad.size(); ++i) {
        gb.data()[i] += n.grad.data()[i] * a.value().data()[i];
      }
    }
  });
}

Var Tape::mul_col_broadcast(const Var& a, const Var& b) {
  GNNHLS_CHECK(b.cols() == 1 && b.rows() == a.rows(),
               "mul_col_broadcast: b must be [rows(a),1]");
  Matrix out = a.value();
  for (int i = 0; i < out.rows(); ++i) {
    const float s = b.value()(i, 0);
    float* row = out.row_ptr(i);
    for (int j = 0; j < out.cols(); ++j) row[j] *= s;
  }
  return record(std::move(out), {a, b}, [a, b](VarNode& n) {
    if (a.requires_grad()) {
      Matrix& gmat = sink_of(a);
      for (int i = 0; i < n.grad.rows(); ++i) {
        const float s = b.value()(i, 0);
        const float* g = n.grad.row_ptr(i);
        float* ga = gmat.row_ptr(i);
        for (int j = 0; j < n.grad.cols(); ++j) ga[j] += g[j] * s;
      }
    }
    if (b.requires_grad()) {
      Matrix& gb = sink_of(b);
      for (int i = 0; i < n.grad.rows(); ++i) {
        const float* g = n.grad.row_ptr(i);
        const float* av = a.value().row_ptr(i);
        float acc = 0.0F;
        for (int j = 0; j < n.grad.cols(); ++j) acc += g[j] * av[j];
        gb(i, 0) += acc;
      }
    }
  });
}

Var Tape::add_row_bias(const Var& a, const Var& bias) {
  GNNHLS_CHECK(bias.rows() == 1 && bias.cols() == a.cols(),
               "add_row_bias: bias must be [1,cols(a)]");
  Matrix out = a.value();
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.row_ptr(i);
    const float* b = bias.value().row_ptr(0);
    for (int j = 0; j < out.cols(); ++j) row[j] += b[j];
  }
  return record(std::move(out), {a, bias}, [a, bias](VarNode& n) {
    if (a.requires_grad()) sink_of(a).add_inplace(n.grad);
    if (bias.requires_grad()) {
      float* gb = sink_of(bias).row_ptr(0);
      for (int i = 0; i < n.grad.rows(); ++i) {
        const float* g = n.grad.row_ptr(i);
        for (int j = 0; j < n.grad.cols(); ++j) gb[j] += g[j];
      }
    }
  });
}

Var Tape::affine(const Var& a, float alpha, float beta) {
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = alpha * out.data()[i] + beta;
  }
  return record(std::move(out), {a}, [a, alpha](VarNode& n) {
    if (a.requires_grad()) sink_of(a).add_scaled_inplace(n.grad, alpha);
  });
}

Var Tape::scale_rows(const Var& a, const std::vector<float>& coeff) {
  GNNHLS_CHECK_EQ(static_cast<int>(coeff.size()), a.rows(),
                  "scale_rows: one coefficient per row required");
  Matrix out = a.value();
  for (int i = 0; i < out.rows(); ++i) {
    float* row = out.row_ptr(i);
    for (int j = 0; j < out.cols(); ++j) row[j] *= coeff[i];
  }
  return record(std::move(out), {a}, [a, coeff](VarNode& n) {
    if (!a.requires_grad()) return;
    Matrix& gmat = sink_of(a);
    for (int i = 0; i < n.grad.rows(); ++i) {
      const float* g = n.grad.row_ptr(i);
      float* ga = gmat.row_ptr(i);
      for (int j = 0; j < n.grad.cols(); ++j) ga[j] += g[j] * coeff[i];
    }
  });
}

// ---------------------------------------------------------------------------
// Nonlinearities
// ---------------------------------------------------------------------------

Var Tape::relu(const Var& a) { return leaky_relu(a, 0.0F); }

Var Tape::leaky_relu(const Var& a, float slope) {
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0F) out.data()[i] *= slope;
  }
  return record(std::move(out), {a}, [a, slope](VarNode& n) {
    if (!a.requires_grad()) return;
    Matrix& ga = sink_of(a);
    for (std::size_t i = 0; i < n.grad.size(); ++i) {
      const float d = a.value().data()[i] > 0.0F ? 1.0F : slope;
      ga.data()[i] += n.grad.data()[i] * d;
    }
  });
}

Var Tape::sigmoid(const Var& a) {
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = 1.0F / (1.0F + std::exp(-out.data()[i]));
  }
  return record(std::move(out), {a}, [a](VarNode& n) {
    if (!a.requires_grad()) return;
    Matrix& ga = sink_of(a);
    for (std::size_t i = 0; i < n.grad.size(); ++i) {
      const float y = n.value.data()[i];
      ga.data()[i] += n.grad.data()[i] * y * (1.0F - y);
    }
  });
}

Var Tape::tanh_act(const Var& a) {
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::tanh(out.data()[i]);
  }
  return record(std::move(out), {a}, [a](VarNode& n) {
    if (!a.requires_grad()) return;
    Matrix& ga = sink_of(a);
    for (std::size_t i = 0; i < n.grad.size(); ++i) {
      const float y = n.value.data()[i];
      ga.data()[i] += n.grad.data()[i] * (1.0F - y * y);
    }
  });
}

Var Tape::sqrt_eps(const Var& a, float eps) {
  GNNHLS_CHECK(eps > 0.0F, "sqrt_eps: eps must be positive");
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out.data()[i] = std::sqrt(std::max(out.data()[i], 0.0F) + eps);
  }
  return record(std::move(out), {a}, [a](VarNode& n) {
    if (!a.requires_grad()) return;
    Matrix& ga = sink_of(a);
    for (std::size_t i = 0; i < n.grad.size(); ++i) {
      // d sqrt(max(x,0)+eps)/dx = 1/(2*out) for x>0, 0 for x<0.
      if (a.value().data()[i] <= 0.0F) continue;
      ga.data()[i] += n.grad.data()[i] * 0.5F / n.value.data()[i];
    }
  });
}

// ---------------------------------------------------------------------------
// Structure ops
// ---------------------------------------------------------------------------

Var Tape::gather_rows(const Var& a, const std::vector<int>& idx,
                      SegmentPartitionPtr part) {
  if (part != nullptr) {
    GNNHLS_CHECK_EQ(part->segments, a.rows(),
                    "gather_rows: partition segments must match input rows");
  }
  Matrix out(static_cast<int>(idx.size()), a.cols());
  gather_rows_into(a.value(), idx, out);
  return record(std::move(out), {a}, [a, idx, part](VarNode& n) {
    if (!a.requires_grad()) return;
    // Backward of a gather is a scatter-add: grads from every output row
    // that read source row r accumulate into ga[r], in ascending output-row
    // order (the fixed-order partition reduction rule).
    scatter_add_rows_auto(n.grad, idx, part, sink_of(a));
  });
}

Var Tape::scatter_add_rows(const Var& a, const std::vector<int>& idx,
                           int out_rows, SegmentPartitionPtr part) {
  GNNHLS_CHECK_EQ(static_cast<int>(idx.size()), a.rows(),
                  "scatter_add_rows: one index per row required");
  if (part != nullptr) {
    GNNHLS_CHECK_EQ(part->segments, out_rows,
                    "scatter_add_rows: partition segments must match output");
  }
  Matrix out(out_rows, a.cols());
  scatter_add_rows_auto(a.value(), idx, part, out);
  return record(std::move(out), {a}, [a, idx](VarNode& n) {
    if (!a.requires_grad()) return;
    // Backward of a scatter-add is a gather-add: row-parallel, each input
    // row reads exactly one upstream row.
    gather_add_rows_into(n.grad, idx, sink_of(a));
  });
}

namespace {

#ifndef NDEBUG
/// Debug-build mirror of scatter_add_rows_auto's stale-partition guard: a
/// cached partition that no longer matches its edge array passes every size
/// check yet silently fuses the wrong rows.
void debug_check_partition(const SegmentPartition& part,
                           const std::vector<int>& idx, const char* what) {
  for (int s = 0; s < part.segments; ++s) {
    for (int e = part.offsets[static_cast<std::size_t>(s)];
         e < part.offsets[static_cast<std::size_t>(s) + 1]; ++e) {
      GNNHLS_CHECK_EQ(
          idx[static_cast<std::size_t>(part.order[static_cast<std::size_t>(e)])],
          s, what);
    }
  }
}
#endif

}  // namespace

Var Tape::fused_gather_scatter_add(const Var& a, const std::vector<int>& src,
                                   const std::vector<int>& dst, int out_rows,
                                   SegmentPartitionPtr src_part,
                                   SegmentPartitionPtr dst_part,
                                   std::vector<float> coeff) {
  GNNHLS_CHECK_EQ(static_cast<int>(src.size()), static_cast<int>(dst.size()),
                  "fused_gather_scatter_add: src/dst edge count mismatch");
  GNNHLS_CHECK(src_part != nullptr && dst_part != nullptr,
               "fused_gather_scatter_add: cached partitions required");
  GNNHLS_CHECK_EQ(src_part->segments, a.rows(),
                  "fused_gather_scatter_add: src partition must cover input "
                  "rows");
  GNNHLS_CHECK_EQ(dst_part->segments, out_rows,
                  "fused_gather_scatter_add: dst partition must cover output "
                  "rows");
#ifndef NDEBUG
  debug_check_partition(*src_part, src,
                        "fused_gather_scatter_add: stale src partition");
  debug_check_partition(*dst_part, dst,
                        "fused_gather_scatter_add: stale dst partition");
#endif
  Matrix out = fused_gather_scatter(a.value(), src, *dst_part, coeff);
  return record(std::move(out), {a},
                [a, dst, src_part, coeff](VarNode& n) {
                  if (!a.requires_grad()) return;
                  fused_gather_scatter_backward_x(n.grad, dst, *src_part,
                                                  coeff, sink_of(a));
                });
}

Var Tape::fused_gather_matmul_scatter_add(const Var& a, const Var& w,
                                          const std::vector<int>& src,
                                          const std::vector<int>& dst,
                                          int out_rows,
                                          SegmentPartitionPtr src_part,
                                          SegmentPartitionPtr dst_part) {
  GNNHLS_CHECK_EQ(static_cast<int>(src.size()), static_cast<int>(dst.size()),
                  "fused_gather_matmul_scatter_add: src/dst edge count "
                  "mismatch");
  GNNHLS_CHECK(src_part != nullptr && dst_part != nullptr,
               "fused_gather_matmul_scatter_add: cached partitions required");
  GNNHLS_CHECK_EQ(src_part->segments, a.rows(),
                  "fused_gather_matmul_scatter_add: src partition must cover "
                  "input rows");
  GNNHLS_CHECK_EQ(dst_part->segments, out_rows,
                  "fused_gather_matmul_scatter_add: dst partition must cover "
                  "output rows");
  GNNHLS_CHECK_EQ(a.cols(), w.rows(),
                  "fused_gather_matmul_scatter_add: inner dimension "
                  "mismatch");
#ifndef NDEBUG
  debug_check_partition(
      *src_part, src, "fused_gather_matmul_scatter_add: stale src partition");
  debug_check_partition(
      *dst_part, dst, "fused_gather_matmul_scatter_add: stale dst partition");
#endif
  Matrix out = fused_gather_matmul_scatter(a.value(), w.value(), src,
                                           *dst_part);
  return record(std::move(out), {a, w},
                [a, w, src, dst, src_part](VarNode& n) {
                  // Weight gradient first, then input gradient — the sink
                  // update order of the unfused matmul-backward /
                  // gather-backward pair.
                  if (w.requires_grad()) {
                    sink_of(w).add_inplace(
                        fused_gather_matmul_scatter_backward_w(
                            a.value(), n.grad, src, dst));
                  }
                  if (a.requires_grad()) {
                    fused_gather_matmul_scatter_backward_x(
                        n.grad, w.value(), dst, *src_part, sink_of(a));
                  }
                });
}

Var Tape::segment_mean(const Var& a, const std::vector<int>& idx,
                       int segments, SegmentPartitionPtr part) {
  Var summed = scatter_add_rows(a, idx, segments, part);
  std::vector<float> inv(static_cast<std::size_t>(segments));
  if (part != nullptr) {
    for (int s = 0; s < segments; ++s) {
      const int c = part->count(s);
      inv[static_cast<std::size_t>(s)] =
          c > 0 ? 1.0F / static_cast<float>(c) : 0.0F;
    }
  } else {
    std::vector<int> count(static_cast<std::size_t>(segments), 0);
    for (int i : idx) count[static_cast<std::size_t>(i)]++;
    for (std::size_t s = 0; s < count.size(); ++s) {
      inv[s] = count[s] > 0 ? 1.0F / static_cast<float>(count[s]) : 0.0F;
    }
  }
  return scale_rows(summed, inv);
}

namespace {

/// Shared implementation of segment_max / segment_min.
/// sign = +1 for max, -1 for min. Empty segments produce 0.
Matrix segment_extreme_forward(const Matrix& a, const std::vector<int>& idx,
                               int segments, float sign,
                               std::vector<int>& arg /*segments*cols*/) {
  Matrix out(segments, a.cols());
  arg.assign(static_cast<std::size_t>(segments) * a.cols(), -1);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const int s = idx[i];
    const float* src = a.row_ptr(static_cast<int>(i));
    for (int j = 0; j < a.cols(); ++j) {
      int& slot = arg[static_cast<std::size_t>(s) * a.cols() + j];
      if (slot < 0 || sign * src[j] > sign * out(s, j)) {
        out(s, j) = src[j];
        slot = static_cast<int>(i);
      }
    }
  }
  return out;
}

}  // namespace

Var Tape::segment_max(const Var& a, const std::vector<int>& idx,
                      int segments) {
  GNNHLS_CHECK_EQ(static_cast<int>(idx.size()), a.rows(),
                  "segment_max: one index per row required");
  auto arg = std::make_shared<std::vector<int>>();
  Matrix out = segment_extreme_forward(a.value(), idx, segments, 1.0F, *arg);
  const int cols = a.cols();
  return record(std::move(out), {a}, [a, arg, cols](VarNode& n) {
    if (!a.requires_grad()) return;
    Matrix& ga = sink_of(a);
    for (int s = 0; s < n.grad.rows(); ++s) {
      for (int j = 0; j < cols; ++j) {
        const int src = (*arg)[static_cast<std::size_t>(s) * cols + j];
        if (src >= 0) ga(src, j) += n.grad(s, j);
      }
    }
  });
}

Var Tape::segment_min(const Var& a, const std::vector<int>& idx,
                      int segments) {
  GNNHLS_CHECK_EQ(static_cast<int>(idx.size()), a.rows(),
                  "segment_min: one index per row required");
  auto arg = std::make_shared<std::vector<int>>();
  Matrix out = segment_extreme_forward(a.value(), idx, segments, -1.0F, *arg);
  const int cols = a.cols();
  return record(std::move(out), {a}, [a, arg, cols](VarNode& n) {
    if (!a.requires_grad()) return;
    Matrix& ga = sink_of(a);
    for (int s = 0; s < n.grad.rows(); ++s) {
      for (int j = 0; j < cols; ++j) {
        const int src = (*arg)[static_cast<std::size_t>(s) * cols + j];
        if (src >= 0) ga(src, j) += n.grad(s, j);
      }
    }
  });
}

Var Tape::segment_sum_rows(const Var& a, const std::vector<int>& seg,
                           int segments, SegmentPartitionPtr part) {
  GNNHLS_CHECK_EQ(static_cast<int>(seg.size()), a.rows(),
                  "segment_sum_rows: one segment id per row required");
  return scatter_add_rows(a, seg, segments, std::move(part));
}

Var Tape::segment_mean_rows(const Var& a, const std::vector<int>& seg,
                            int segments, SegmentPartitionPtr part) {
  GNNHLS_CHECK_EQ(static_cast<int>(seg.size()), a.rows(),
                  "segment_mean_rows: one segment id per row required");
  return segment_mean(a, seg, segments, std::move(part));
}

Var Tape::broadcast_rows_by_segment(const Var& a,
                                    const std::vector<int>& seg,
                                    SegmentPartitionPtr part) {
  // gather_rows bounds-checks every segment id itself.
  return gather_rows(a, seg, std::move(part));
}

Var Tape::segment_softmax(const Var& a, const std::vector<int>& idx,
                          int segments) {
  GNNHLS_CHECK(a.cols() == 1, "segment_softmax: input must be [k,1]");
  GNNHLS_CHECK_EQ(static_cast<int>(idx.size()), a.rows(),
                  "segment_softmax: one index per row required");
  std::vector<float> seg_max(static_cast<std::size_t>(segments),
                             -std::numeric_limits<float>::infinity());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    seg_max[idx[i]] = std::max(seg_max[idx[i]],
                               a.value()(static_cast<int>(i), 0));
  }
  std::vector<float> seg_sum(static_cast<std::size_t>(segments), 0.0F);
  Matrix out(a.rows(), 1);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const float e =
        std::exp(a.value()(static_cast<int>(i), 0) - seg_max[idx[i]]);
    out(static_cast<int>(i), 0) = e;
    seg_sum[idx[i]] += e;
  }
  for (std::size_t i = 0; i < idx.size(); ++i) {
    out(static_cast<int>(i), 0) /= seg_sum[idx[i]];
  }
  const int nsegs = segments;
  return record(std::move(out), {a}, [a, idx, nsegs](VarNode& n) {
    if (!a.requires_grad()) return;
    // d s_i = y_i * (g_i - sum_{j in seg} g_j y_j)
    std::vector<float> dot(static_cast<std::size_t>(nsegs), 0.0F);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      dot[idx[i]] +=
          n.grad(static_cast<int>(i), 0) * n.value(static_cast<int>(i), 0);
    }
    Matrix& ga = sink_of(a);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const float y = n.value(static_cast<int>(i), 0);
      ga(static_cast<int>(i), 0) +=
          y * (n.grad(static_cast<int>(i), 0) - dot[idx[i]]);
    }
  });
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

Var Tape::concat_cols(const std::vector<Var>& parts) {
  GNNHLS_CHECK(!parts.empty(), "concat_cols: no inputs");
  const int rows = parts.front().rows();
  int total = 0;
  for (const auto& p : parts) {
    GNNHLS_CHECK_EQ(p.rows(), rows, "concat_cols: row count mismatch");
    total += p.cols();
  }
  Matrix out(rows, total);
  int offset = 0;
  for (const auto& p : parts) {
    for (int i = 0; i < rows; ++i) {
      std::copy(p.value().row_ptr(i), p.value().row_ptr(i) + p.cols(),
                out.row_ptr(i) + offset);
    }
    offset += p.cols();
  }
  return record(std::move(out), parts, [parts](VarNode& n) {
    int off = 0;
    for (const auto& p : parts) {
      if (p.requires_grad()) {
        Matrix& gmat = sink_of(p);
        for (int i = 0; i < n.grad.rows(); ++i) {
          const float* g = n.grad.row_ptr(i) + off;
          float* gp = gmat.row_ptr(i);
          for (int j = 0; j < p.cols(); ++j) gp[j] += g[j];
        }
      }
      off += p.cols();
    }
  });
}

Var Tape::slice_cols(const Var& a, int begin, int end) {
  GNNHLS_CHECK(0 <= begin && begin < end && end <= a.cols(),
               "slice_cols: bad range");
  Matrix out(a.rows(), end - begin);
  for (int i = 0; i < a.rows(); ++i) {
    std::copy(a.value().row_ptr(i) + begin, a.value().row_ptr(i) + end,
              out.row_ptr(i));
  }
  return record(std::move(out), {a}, [a, begin](VarNode& n) {
    if (!a.requires_grad()) return;
    Matrix& gmat = sink_of(a);
    for (int i = 0; i < n.grad.rows(); ++i) {
      const float* g = n.grad.row_ptr(i);
      float* ga = gmat.row_ptr(i) + begin;
      for (int j = 0; j < n.grad.cols(); ++j) ga[j] += g[j];
    }
  });
}

Var Tape::sum_rows(const Var& a) {
  Matrix out(1, a.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const float* row = a.value().row_ptr(i);
    for (int j = 0; j < a.cols(); ++j) out(0, j) += row[j];
  }
  return record(std::move(out), {a}, [a](VarNode& n) {
    if (!a.requires_grad()) return;
    Matrix& gmat = sink_of(a);
    for (int i = 0; i < a.rows(); ++i) {
      float* ga = gmat.row_ptr(i);
      const float* g = n.grad.row_ptr(0);
      for (int j = 0; j < n.grad.cols(); ++j) ga[j] += g[j];
    }
  });
}

Var Tape::mean_rows(const Var& a) {
  GNNHLS_CHECK(a.rows() > 0, "mean_rows: empty input");
  return scale(sum_rows(a), 1.0F / static_cast<float>(a.rows()));
}

Var Tape::sum_all(const Var& a) {
  Matrix out(1, 1);
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    out(0, 0) += a.value().data()[i];
  }
  return record(std::move(out), {a}, [a](VarNode& n) {
    if (!a.requires_grad()) return;
    const float g = n.grad(0, 0);
    Matrix& ga = sink_of(a);
    for (std::size_t i = 0; i < a.value().size(); ++i) {
      ga.data()[i] += g;
    }
  });
}

Var Tape::repeat_row(const Var& a, int n_rows) {
  GNNHLS_CHECK(a.rows() == 1, "repeat_row: input must be [1,m]");
  Matrix out(n_rows, a.cols());
  for (int i = 0; i < n_rows; ++i) {
    std::copy(a.value().row_ptr(0), a.value().row_ptr(0) + a.cols(),
              out.row_ptr(i));
  }
  return record(std::move(out), {a}, [a](VarNode& n) {
    if (!a.requires_grad()) return;
    float* ga = sink_of(a).row_ptr(0);
    for (int i = 0; i < n.grad.rows(); ++i) {
      const float* g = n.grad.row_ptr(i);
      for (int j = 0; j < n.grad.cols(); ++j) ga[j] += g[j];
    }
  });
}

// ---------------------------------------------------------------------------
// Regularization & losses
// ---------------------------------------------------------------------------

Var Tape::dropout(const Var& a, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0F) return a;
  GNNHLS_CHECK(p < 1.0F, "dropout: p must be < 1");
  const float keep = 1.0F - p;
  std::vector<float> mask(a.value().size());
  for (auto& m : mask) m = rng.bernoulli(keep) ? 1.0F / keep : 0.0F;
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) out.data()[i] *= mask[i];
  return record(std::move(out), {a}, [a, mask](VarNode& n) {
    if (!a.requires_grad()) return;
    Matrix& ga = sink_of(a);
    for (std::size_t i = 0; i < n.grad.size(); ++i) {
      ga.data()[i] += n.grad.data()[i] * mask[i];
    }
  });
}

Var Tape::mse_loss(const Var& pred, const Matrix& target) {
  GNNHLS_CHECK(pred.value().same_shape(target), "mse_loss: shape mismatch");
  const float inv = 1.0F / static_cast<float>(pred.value().size());
  Matrix out(1, 1);
  for (std::size_t i = 0; i < pred.value().size(); ++i) {
    const float d = pred.value().data()[i] - target.data()[i];
    out(0, 0) += d * d * inv;
  }
  return record(std::move(out), {pred}, [pred, target, inv](VarNode& n) {
    if (!pred.requires_grad()) return;
    const float g = n.grad(0, 0);
    Matrix& gp = sink_of(pred);
    for (std::size_t i = 0; i < pred.value().size(); ++i) {
      const float d = pred.value().data()[i] - target.data()[i];
      gp.data()[i] += 2.0F * d * inv * g;
    }
  });
}

Var Tape::bce_with_logits_loss(const Var& logits, const Matrix& targets) {
  GNNHLS_CHECK(logits.value().same_shape(targets),
               "bce_with_logits_loss: shape mismatch");
  const float inv = 1.0F / static_cast<float>(logits.value().size());
  Matrix out(1, 1);
  for (std::size_t i = 0; i < logits.value().size(); ++i) {
    const float x = logits.value().data()[i];
    const float z = targets.data()[i];
    // max(x,0) - x*z + log(1+exp(-|x|))  (numerically stable form)
    out(0, 0) += (std::max(x, 0.0F) - x * z +
                  std::log1p(std::exp(-std::abs(x)))) *
                 inv;
  }
  return record(std::move(out), {logits}, [logits, targets, inv](VarNode& n) {
    if (!logits.requires_grad()) return;
    const float g = n.grad(0, 0);
    Matrix& gl = sink_of(logits);
    for (std::size_t i = 0; i < logits.value().size(); ++i) {
      const float x = logits.value().data()[i];
      const float z = targets.data()[i];
      const float sig = 1.0F / (1.0F + std::exp(-x));
      gl.data()[i] += (sig - z) * inv * g;
    }
  });
}

}  // namespace gnnhls
