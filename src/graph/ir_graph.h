// IR graph representation — the predictor input (paper §3.1).
//
// A DFG is extracted from a basic block (directed acyclic); a CDFG adds
// control nodes, control-dependency edges and back edges for loops. Node and
// edge features follow paper Table 1:
//
//   node:  general type, bitwidth, opcode category, opcode, is-start-of-path,
//          cluster group (+ const flag — the text says seven features while
//          the table lists six; we surface the constant/operand distinction
//          as the seventh, matching the Vitis IR dump),
//   edge:  discrete edge type (integer) and a binary back-edge mark.
//
// Knowledge features (per-node resource type bits and values) are filled in
// by the HLS simulator after binding and consumed only by the -R and -I
// approaches.
#pragma once

#include <string>
#include <vector>

#include "graph/opcodes.h"
#include "support/check.h"

namespace gnnhls {

enum class GraphKind { kDfg, kCdfg };

enum class NodeGeneralType : int {
  kOperation = 0,
  kBlockNode,
  kPort,
  kConstant,
  kMisc,
  kCount
};
inline constexpr int kNumNodeGeneralTypes =
    static_cast<int>(NodeGeneralType::kCount);

enum class EdgeType : int { kData = 0, kControl, kMemory, kCall, kCount };
inline constexpr int kNumEdgeTypes = static_cast<int>(EdgeType::kCount);

/// Relation id used by relational GNNs (RGCN/GGNN/FiLM):
/// edge type × back-edge flag.
inline constexpr int kNumEdgeRelations = kNumEdgeTypes * 2;

/// Per-node resource annotation produced by HLS binding. `uses_*` are the
/// node-level classification labels; the value fields feed the
/// knowledge-rich approach.
struct NodeResourceInfo {
  bool uses_dsp = false;
  bool uses_lut = false;
  bool uses_ff = false;
  float dsp = 0.0F;
  float lut = 0.0F;
  float ff = 0.0F;
};

struct IrNode {
  NodeGeneralType type = NodeGeneralType::kOperation;
  Opcode opcode = Opcode::kAdd;
  int bitwidth = 32;              // 0..256
  bool is_start_of_path = false;  // computed on finalize(): no data preds
  int cluster_group = -1;         // basic-block / cluster id, -1 if none
  bool is_const = false;          // the "seventh" feature (see header)
  NodeResourceInfo resource;      // filled by the HLS simulator
};

struct IrEdge {
  int src = 0;
  int dst = 0;
  EdgeType type = EdgeType::kData;
  bool is_back_edge = false;
};

/// Ground-truth, post-implementation quality of result for a whole graph
/// (the graph-level regression labels: paper §3.1 "DSP, FF, LUT, CP").
struct QualityOfResult {
  double dsp = 0.0;
  double lut = 0.0;
  double ff = 0.0;
  double cp_ns = 0.0;  // critical-path timing
};

class IrGraph {
 public:
  explicit IrGraph(GraphKind kind, std::string name = "")
      : kind_(kind), name_(std::move(name)) {}

  GraphKind kind() const { return kind_; }
  const std::string& name() const { return name_; }

  int add_node(IrNode node);
  void add_edge(int src, int dst, EdgeType type, bool is_back_edge = false);

  /// Validates indices, computes is_start_of_path and adjacency caches.
  /// Must be called once after construction; add_* afterwards throws.
  void finalize();
  bool finalized() const { return finalized_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const IrNode& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  IrNode& mutable_node(int i) { return nodes_[static_cast<std::size_t>(i)]; }
  const std::vector<IrNode>& nodes() const { return nodes_; }
  const IrEdge& edge(int i) const { return edges_[static_cast<std::size_t>(i)]; }
  const std::vector<IrEdge>& edges() const { return edges_; }

  // Flat edge arrays for GNN message passing (valid after finalize()).
  const std::vector<int>& edge_src() const { return edge_src_; }
  const std::vector<int>& edge_dst() const { return edge_dst_; }
  /// Relation id per edge: type * 2 + is_back_edge.
  const std::vector<int>& edge_relation() const { return edge_relation_; }
  const std::vector<int>& in_degree() const { return in_degree_; }
  const std::vector<int>& out_degree() const { return out_degree_; }

  /// Successor node ids along non-back data edges (for schedulers).
  const std::vector<std::vector<int>>& forward_succ() const {
    return forward_succ_;
  }
  const std::vector<std::vector<int>>& forward_pred() const {
    return forward_pred_;
  }

  /// True iff the graph ignoring back edges is acyclic (always true for a
  /// well-formed graph; DFGs must additionally have zero back edges).
  bool forward_edges_acyclic() const;

  /// Topological order of nodes over forward edges. Throws if cyclic.
  std::vector<int> topological_order() const;

  int count_back_edges() const;

 private:
  GraphKind kind_;
  std::string name_;
  std::vector<IrNode> nodes_;
  std::vector<IrEdge> edges_;
  bool finalized_ = false;

  std::vector<int> edge_src_, edge_dst_, edge_relation_;
  std::vector<int> in_degree_, out_degree_;
  std::vector<std::vector<int>> forward_succ_, forward_pred_;
};

}  // namespace gnnhls
