// ASCII table rendering for the bench binaries, which print measured results
// next to the paper's reference numbers in the same row/column layout as the
// paper's tables.
#pragma once

#include <string>
#include <vector>

namespace gnnhls {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment; header separated by a rule.
  std::string to_string() const;

  /// Convenience: formats a ratio as a percentage with two decimals ("12.34%").
  static std::string pct(double fraction);
  /// Formats a double with the given precision.
  static std::string num(double value, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gnnhls
