// serve/tcp_endpoint.h tests: loopback end-to-end serving (bit-identity
// with sequential predict() — including the all-14-encoder-kinds gate),
// exact per-connection backpressure accounting, drain-answers-all on
// stop(), feature-cache eviction, and the wire-protocol fault-injection
// battery: garbage headers, oversized length prefixes, truncated frames,
// torn writes split at every byte boundary of the header, and mid-request
// client disconnects. After every fault the endpoint must still serve a
// fresh connection — no crash, no wedge, no leaked future (ASan/TSan run
// this whole binary in CI).
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/serialize.h"
#include "gnn/encoders.h"
#include "serve/scheduler.h"
#include "serve/tcp_endpoint.h"
#include "serve/wire.h"
#include "train/feature_cache.h"

namespace gnnhls {
namespace {

std::vector<Sample> small_corpus(int n, std::uint64_t seed) {
  SyntheticDatasetConfig dcfg;
  dcfg.kind = GraphKind::kDfg;
  dcfg.num_graphs = n;
  dcfg.seed = seed;
  dcfg.progen.min_ops = 6;
  dcfg.progen.max_ops = 20;
  return build_synthetic_dataset(dcfg);
}

ModelConfig model_cfg(GnnKind kind = GnnKind::kRgcn) {
  ModelConfig mc;
  mc.kind = kind;
  mc.hidden = 16;
  mc.layers = 2;
  return mc;
}

TrainConfig train_cfg() {
  TrainConfig tc;
  tc.epochs = 2;
  tc.lr = 1e-2F;
  tc.batch_size = 4;
  tc.seed = 5;
  return tc;
}

/// One quickly-fitted predictor + corpus shared by every endpoint test.
struct EndpointFixture {
  std::vector<Sample> samples = small_corpus(24, 808);
  SplitIndices split = split_80_10_10(static_cast<int>(samples.size()), 3);
  QorPredictor lut;

  EndpointFixture() : lut(Approach::kOffTheShelf, model_cfg(), train_cfg()) {
    lut.fit(samples, split, Metric::kLut);
  }
};

EndpointFixture& fixture() {
  static EndpointFixture* f = new EndpointFixture();  // fit once per binary
  return *f;
}

SchedulerConfig serving_cfg() {
  SchedulerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.batch_window_us = 100;
  return cfg;
}

RequestFrame make_request(std::uint64_t id, const Sample& s,
                          std::uint32_t model = 0) {
  RequestFrame req;
  req.request_id = id;
  req.model = model;
  req.payload = encode_sample_payload(s);
  return req;
}

/// Spin-polls an endpoint stat until `pred` holds (sanitizer-friendly: no
/// fixed sleeps long enough to matter, bounded by the 5s cap).
template <typename Pred>
bool poll_stats(const TcpEndpoint& ep, Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred(ep.stats())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

/// One round-trip on a fresh connection — the "endpoint is not wedged"
/// probe run after every fault injection.
void expect_still_serving(const TcpEndpoint& ep, const Sample& s,
                          double expect) {
  TcpClient probe(ep.port());
  ASSERT_TRUE(probe.send_request(make_request(0xBEEF, s)));
  ResponseFrame resp;
  ASSERT_TRUE(probe.recv_response(resp));
  EXPECT_EQ(resp.request_id, 0xBEEFU);
  EXPECT_EQ(resp.result, WireResult::kOk);
  EXPECT_EQ(resp.prediction, expect);
}

// ----- loopback end-to-end -----

TEST(TcpEndpointTest, LoopbackRoundTripBitIdentical) {
  EndpointFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, serving_cfg());
  TcpEndpoint ep(sched);
  ASSERT_GT(ep.port(), 0);

  TcpClient client(ep.port());
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.send_request(make_request(i, fx.samples[i])));
  }
  std::map<std::uint64_t, double> got;
  for (int i = 0; i < 6; ++i) {
    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(resp));
    EXPECT_EQ(resp.result, WireResult::kOk);
    got[resp.request_id] = resp.prediction;
  }
  for (std::uint64_t i = 0; i < 6; ++i) {
    // THE gate: a socket-served prediction is bit-identical to sequential
    // predict() on the same sample.
    EXPECT_EQ(got.at(i), fx.lut.predict(fx.samples[i])) << i;
  }
  client.close();
  ep.stop();
  const WireStats st = ep.stats();
  EXPECT_EQ(st.frames_in, 6U);
  EXPECT_EQ(st.frames_out, 6U);
  EXPECT_EQ(st.responses_ok, 6U);
  EXPECT_EQ(st.decode_errors, 0U);
  EXPECT_EQ(st.connections_accepted, 1U);
  EXPECT_EQ(st.connections_closed, 1U);
  EXPECT_GT(st.bytes_in, 0U);
  EXPECT_GT(st.bytes_out, 0U);
}

TEST(TcpEndpointTest, StatsScrapeOverSocket) {
  EndpointFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, serving_cfg());
  TcpEndpoint ep(sched);
  TcpClient client(ep.port());
  // Serve a couple of requests first so the scraped counters are nonzero.
  for (std::uint64_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.send_request(make_request(i, fx.samples[i])));
  }
  for (int i = 0; i < 2; ++i) {
    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(resp));
    EXPECT_EQ(resp.result, WireResult::kOk);
  }
  ASSERT_TRUE(client.send_stats_request(42));
  StatsFrame sf;
  ASSERT_TRUE(client.recv_stats_response(sf));
  EXPECT_EQ(sf.request_id, 42U);
  // The scrape renders the endpoint's registry AND its scheduler's — with
  // obs off these are private per-instance registries, still scrapeable
  // (the STATS frame is protocol surface, not observability).
  for (const char* family :
       {"gnnhls_wire_frames_in_total", "gnnhls_wire_responses_ok_total",
        "gnnhls_wire_stats_requests_total", "gnnhls_sched_submitted_total",
        "gnnhls_sched_completed_total", "gnnhls_sched_latency_us_bucket"}) {
    EXPECT_NE(sf.text.find(family), std::string::npos) << family;
  }
  // The per-result response family uses the shared status-name labels.
  EXPECT_NE(sf.text.find("result=\"ok\""), std::string::npos);
  client.close();
  ep.stop();
  EXPECT_EQ(ep.stats().responses_ok, 2U);
  EXPECT_EQ(ep.stats().stats_requests, 1U);
}

TEST(TcpEndpointTest, ConcurrentClientsBitIdentical) {
  // N concurrent client sockets x M requests each, all answered
  // bit-identically while micro-batches mix traffic from every connection.
  EndpointFixture& fx = fixture();
  SchedulerConfig cfg = serving_cfg();
  cfg.max_batch = 6;
  ServingScheduler sched({&fx.lut}, cfg);
  TcpEndpoint ep(sched);

  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::vector<double> expect;
  for (const Sample& s : fx.samples) expect.push_back(fx.lut.predict(s));

  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TcpClient client(ep.port());
      for (int r = 0; r < kRequests; ++r) {
        const std::size_t idx =
            static_cast<std::size_t>((c * kRequests + r) % 24);
        const std::uint64_t id = static_cast<std::uint64_t>(idx) << 8 |
                                 static_cast<std::uint64_t>(r);
        if (!client.send_request(make_request(id, fx.samples[idx]))) {
          ++failures[static_cast<std::size_t>(c)];
          return;
        }
      }
      for (int r = 0; r < kRequests; ++r) {
        ResponseFrame resp;
        if (!client.recv_response(resp) ||
            resp.result != WireResult::kOk ||
            resp.prediction != expect[resp.request_id >> 8]) {
          ++failures[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], 0) << c;

  ep.stop();
  const WireStats st = ep.stats();
  EXPECT_EQ(st.frames_in, kClients * kRequests);
  EXPECT_EQ(st.responses_ok, kClients * kRequests);
  EXPECT_EQ(st.connections_accepted, kClients);
  EXPECT_EQ(st.connections_closed, kClients);
  EXPECT_EQ(st.decode_errors, 0U);
  EXPECT_EQ(st.write_failures, 0U);
}

TEST(TcpEndpointTest, DrainAnswersEverythingOnStop) {
  // stop() while requests are still in flight: every accepted frame gets a
  // response before the connection closes (then EOF).
  EndpointFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, serving_cfg());
  TcpEndpoint ep(sched);
  TcpClient client(ep.port());
  constexpr std::uint64_t kBurst = 10;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(
        client.send_request(make_request(i, fx.samples[i % 24])));
  }
  // Wait until every frame has been read off the socket — bytes still in
  // the kernel buffer when stop() closes the read side were never accepted
  // and owe no response. Then stop with responses still in flight.
  ASSERT_TRUE(poll_stats(
      ep, [](const WireStats& st) { return st.frames_in == kBurst; }));
  std::thread stopper([&] { ep.stop(); });
  std::map<std::uint64_t, double> got;
  ResponseFrame resp;
  while (client.recv_response(resp)) {
    EXPECT_EQ(resp.result, WireResult::kOk);
    got[resp.request_id] = resp.prediction;
  }
  stopper.join();
  ASSERT_EQ(got.size(), kBurst);  // drain answered every accepted frame
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    EXPECT_EQ(got.at(i), fx.lut.predict(fx.samples[i % 24])) << i;
  }
}

TEST(TcpEndpointTest, BackpressureRejectsCountedExactly) {
  // A scheduler whose window is far longer than the test keeps accepted
  // requests queued, so the connection's in-flight count can only grow:
  // with max_inflight=4 and 10 requests, exactly 6 must be rejected with
  // kOverConnectionLimit (and never reach the scheduler).
  EndpointFixture& fx = fixture();
  SchedulerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 16;
  cfg.batch_window_us = 30'000'000;  // 30s: nothing served until shutdown
  ServingScheduler sched({&fx.lut}, cfg);
  TcpEndpointConfig ecfg;
  ecfg.max_inflight = 4;
  TcpEndpoint ep(sched, ecfg);

  TcpClient client(ep.port());
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.send_request(make_request(i, fx.samples[i])));
  }
  ASSERT_TRUE(poll_stats(ep, [](const WireStats& st) {
    return st.rejects_backpressure == 6;
  }));
  EXPECT_EQ(sched.stats().submitted, 4U);  // over-limit never submitted

  sched.shutdown();  // drain serves the 4 queued requests with predictions
  int ok = 0, over = 0;
  for (int i = 0; i < 10; ++i) {
    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(resp)) << i;
    if (resp.result == WireResult::kOk) {
      ++ok;
      EXPECT_EQ(resp.prediction, fx.lut.predict(fx.samples[resp.request_id]));
    } else {
      EXPECT_EQ(resp.result, WireResult::kOverConnectionLimit);
      ++over;
    }
  }
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(over, 6);
  client.close();
  ep.stop();
  EXPECT_EQ(ep.stats().rejects_backpressure, 6U);
  EXPECT_EQ(ep.stats().responses_ok, 4U);
}

TEST(TcpEndpointTest, EvictsDecodedFeaturesOnceAnswered) {
  EndpointFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, serving_cfg());
  TcpEndpoint ep(sched);

  // Warm the cache with the fixture corpus so the baseline is stable, then
  // count: wire samples mint fresh uids, so without eviction each request
  // would grow the cache by one entry forever.
  for (const Sample& s : fx.samples) (void)fx.lut.predict(s);
  const std::size_t baseline = FeatureCache::global().entries();

  TcpClient client(ep.port());
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.send_request(make_request(i, fx.samples[i])));
  }
  for (int i = 0; i < 5; ++i) {
    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(resp));
    EXPECT_EQ(resp.result, WireResult::kOk);
  }
  // Eviction happens on the writer thread before each response is sent, so
  // once all responses are read the cache is back to the baseline.
  EXPECT_EQ(FeatureCache::global().entries(), baseline);
  client.close();
  ep.stop();
}

// ----- well-framed rejects (connection survives) -----

TEST(TcpEndpointTest, BadPayloadAndBadModelRejectPerRequest) {
  EndpointFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, serving_cfg());
  TcpEndpoint ep(sched);
  TcpClient client(ep.port());

  RequestFrame bad_payload;
  bad_payload.request_id = 1;
  bad_payload.payload = "this is not a benchmark payload";
  ASSERT_TRUE(client.send_request(bad_payload));

  RequestFrame bad_model = make_request(2, fx.samples[0], /*model=*/7);
  ASSERT_TRUE(client.send_request(bad_model));

  ASSERT_TRUE(client.send_request(make_request(3, fx.samples[0])));

  std::map<std::uint64_t, WireResult> results;
  for (int i = 0; i < 3; ++i) {
    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(resp));
    results[resp.request_id] = resp.result;
    if (resp.request_id == 3) {
      EXPECT_EQ(resp.prediction, fx.lut.predict(fx.samples[0]));
    }
  }
  EXPECT_EQ(results.at(1), WireResult::kBadPayload);
  EXPECT_EQ(results.at(2), WireResult::kBadModel);
  EXPECT_EQ(results.at(3), WireResult::kOk);  // same connection still live
  client.close();
  ep.stop();
  EXPECT_EQ(ep.stats().rejects_payload, 2U);
  EXPECT_EQ(ep.stats().decode_errors, 0U);  // framing was never broken
}

// ----- fault injection: the endpoint must reject/close, never wedge -----

TEST(TcpEndpointFaultTest, GarbageHeaderClosesConnectionOnly) {
  EndpointFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, serving_cfg());
  TcpEndpoint ep(sched);
  const double expect = fx.lut.predict(fx.samples[0]);

  TcpClient evil(ep.port());
  ASSERT_TRUE(evil.send_raw("GET / HTTP/1.1\r\nHost: nope\r\n\r\n"));
  ResponseFrame resp;
  EXPECT_FALSE(evil.recv_response(resp));  // server closed, no response
  ASSERT_TRUE(poll_stats(
      ep, [](const WireStats& st) { return st.decode_errors == 1; }));

  expect_still_serving(ep, fx.samples[0], expect);
  ep.stop();
  EXPECT_EQ(ep.stats().decode_errors, 1U);
  EXPECT_EQ(ep.stats().connections_closed, 2U);
}

TEST(TcpEndpointFaultTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  EndpointFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, serving_cfg());
  TcpEndpointConfig ecfg;
  ecfg.max_frame_bytes = 64 * 1024;
  TcpEndpoint ep(sched, ecfg);
  const double expect = fx.lut.predict(fx.samples[0]);

  // A valid header advertising a 4 GiB body — the endpoint must poison the
  // connection off the length prefix alone.
  RequestFrame huge = make_request(1, fx.samples[0]);
  std::string frame = encode_request_frame(huge);
  frame[8] = '\xF0';  // body_len bytes (little-endian)
  frame[9] = '\xFF';
  frame[10] = '\xFF';
  frame[11] = '\xFF';
  TcpClient evil(ep.port());
  ASSERT_TRUE(evil.send_raw(frame));
  ResponseFrame resp;
  EXPECT_FALSE(evil.recv_response(resp));
  ASSERT_TRUE(poll_stats(
      ep, [](const WireStats& st) { return st.decode_errors == 1; }));

  expect_still_serving(ep, fx.samples[0], expect);
  ep.stop();
}

TEST(TcpEndpointFaultTest, TruncatedFrameThenDisconnectIsNotAnError) {
  // Half a frame then EOF: the stream just ended — close without counting
  // a decode error and without wedging anything.
  EndpointFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, serving_cfg());
  TcpEndpoint ep(sched);
  const double expect = fx.lut.predict(fx.samples[0]);

  const std::string frame = encode_request_frame(make_request(1, fx.samples[0]));
  {
    TcpClient quitter(ep.port());
    ASSERT_TRUE(quitter.send_raw(frame.substr(0, frame.size() / 2)));
    quitter.close();  // mid-frame disconnect
  }
  ASSERT_TRUE(poll_stats(
      ep, [](const WireStats& st) { return st.connections_closed >= 1; }));
  EXPECT_EQ(ep.stats().decode_errors, 0U);
  EXPECT_EQ(ep.stats().frames_in, 0U);

  expect_still_serving(ep, fx.samples[0], expect);
  ep.stop();
}

TEST(TcpEndpointFaultTest, MidRequestDisconnectAfterSubmitIsAbsorbed) {
  // Full request, then the client vanishes before reading its answer. The
  // scheduler still serves it; the undeliverable response is counted, not
  // fatal.
  EndpointFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, serving_cfg());
  TcpEndpoint ep(sched);
  const double expect = fx.lut.predict(fx.samples[0]);

  {
    TcpClient quitter(ep.port());
    ASSERT_TRUE(quitter.send_request(make_request(1, fx.samples[0])));
    quitter.close();  // gone before the response lands
  }
  // The request is always answered: either the write succeeded into the
  // doomed socket's buffer or it failed — both count as "answered".
  ASSERT_TRUE(poll_stats(ep, [](const WireStats& st) {
    return st.frames_out + st.write_failures == 1;
  }));
  EXPECT_EQ(ep.stats().frames_in, 1U);
  EXPECT_EQ(ep.stats().responses_ok, 1U);  // served despite the disconnect

  expect_still_serving(ep, fx.samples[0], expect);
  ep.stop();
}

TEST(TcpEndpointFaultTest, TornWritesAtEveryHeaderByteBoundary) {
  // Split one valid frame at every byte boundary of the 12-byte header
  // (two separate sends with a pause between): the decoder must reassemble
  // every tearing into the same served prediction.
  EndpointFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, serving_cfg());
  TcpEndpoint ep(sched);
  const double expect = fx.lut.predict(fx.samples[2]);

  TcpClient client(ep.port());
  std::uint64_t id = 0;
  for (std::size_t cut = 1; cut <= kWireHeaderBytes; ++cut) {
    const std::string frame =
        encode_request_frame(make_request(++id, fx.samples[2]));
    ASSERT_TRUE(client.send_raw(frame.substr(0, cut)));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(client.send_raw(frame.substr(cut)));
    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(resp)) << "cut=" << cut;
    EXPECT_EQ(resp.request_id, id);
    EXPECT_EQ(resp.result, WireResult::kOk) << "cut=" << cut;
    EXPECT_EQ(resp.prediction, expect) << "cut=" << cut;
  }
  client.close();
  ep.stop();
  EXPECT_EQ(ep.stats().frames_in, kWireHeaderBytes);
  EXPECT_EQ(ep.stats().decode_errors, 0U);
}

// ----- determinism gate: all 14 encoder kinds over a live socket -----

class TcpEndpointKindTest : public ::testing::TestWithParam<GnnKind> {};

TEST_P(TcpEndpointKindTest, LoopbackBitIdenticalToSequentialPredict) {
  const auto samples = small_corpus(10, 271);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 3);
  QorPredictor predictor(Approach::kOffTheShelf, model_cfg(GetParam()),
                         train_cfg());
  predictor.fit(samples, split, Metric::kLut);

  std::vector<double> expect;
  for (const Sample& s : samples) expect.push_back(predictor.predict(s));

  ServingScheduler sched({&predictor}, serving_cfg());
  TcpEndpoint ep(sched);
  TcpClient client(ep.port());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ASSERT_TRUE(client.send_request(
        make_request(static_cast<std::uint64_t>(i), samples[i])));
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ResponseFrame resp;
    ASSERT_TRUE(client.recv_response(resp));
    ASSERT_EQ(resp.result, WireResult::kOk);
    EXPECT_EQ(resp.prediction, expect[resp.request_id])
        << gnn_kind_name(GetParam()) << " sample " << resp.request_id;
  }
  client.close();
  ep.stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TcpEndpointKindTest, ::testing::ValuesIn(all_gnn_kinds()),
    [](const ::testing::TestParamInfo<GnnKind>& info) {
      std::string name = gnn_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gnnhls
