#include <set>

#include <gtest/gtest.h>

#include "frontend/lower.h"
#include "hls/hls_flow.h"
#include "progen/progen.h"

namespace gnnhls {
namespace {

TEST(ProgenDfgTest, DeterministicInSeed) {
  const Function a = generate_dfg_program(123);
  const Function b = generate_dfg_program(123);
  EXPECT_EQ(a.statement_count(), b.statement_count());
  const LoweredProgram pa = lower_to_dfg(a);
  const LoweredProgram pb = lower_to_dfg(b);
  ASSERT_EQ(pa.graph.num_nodes(), pb.graph.num_nodes());
  ASSERT_EQ(pa.graph.num_edges(), pb.graph.num_edges());
  for (int i = 0; i < pa.graph.num_nodes(); ++i) {
    EXPECT_EQ(pa.graph.node(i).opcode, pb.graph.node(i).opcode);
    EXPECT_EQ(pa.graph.node(i).bitwidth, pb.graph.node(i).bitwidth);
  }
}

TEST(ProgenDfgTest, DifferentSeedsProduceDifferentGraphs) {
  std::set<int> node_counts;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    node_counts.insert(
        lower_to_dfg(generate_dfg_program(seed)).graph.num_nodes());
  }
  EXPECT_GT(node_counts.size(), 4U);
}

TEST(ProgenDfgTest, StraightLineOnly) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Function f = generate_dfg_program(seed);
    EXPECT_FALSE(f.has_control_flow()) << "seed " << seed;
  }
}

class ProgenSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProgenSweep, DfgProgramsLowerAndSynthesize) {
  const std::uint64_t seed = GetParam();
  LoweredProgram p = lower_to_dfg(generate_dfg_program(seed));
  EXPECT_TRUE(p.graph.forward_edges_acyclic());
  EXPECT_EQ(p.graph.count_back_edges(), 0);
  const HlsOutcome o = run_hls_flow(p);
  EXPECT_GT(o.implemented.lut, 0.0) << "seed " << seed;
  EXPECT_GT(o.implemented.cp_ns, 0.0) << "seed " << seed;
}

TEST_P(ProgenSweep, CdfgProgramsLowerAndSynthesize) {
  const std::uint64_t seed = GetParam();
  const Function f = generate_cdfg_program(seed);
  EXPECT_TRUE(f.has_control_flow()) << "seed " << seed;
  LoweredProgram p = lower_to_cdfg(f);
  EXPECT_TRUE(p.graph.forward_edges_acyclic());
  EXPECT_GT(p.graph.count_back_edges(), 0) << "seed " << seed;
  const HlsOutcome o = run_hls_flow(p);
  EXPECT_GT(o.implemented.lut, 0.0) << "seed " << seed;
  EXPECT_GT(o.latency_cycles, 0.0) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgenSweep,
                         ::testing::Range<std::uint64_t>(0, 50));

TEST(ProgenDfgTest, SizeKnobsRespected) {
  ProgenConfig cfg;
  cfg.min_ops = 5;
  cfg.max_ops = 10;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Function f = generate_dfg_program(seed, cfg);
    // ops + final return statement
    EXPECT_LE(f.statement_count(), cfg.max_ops + 1);
    EXPECT_GE(f.statement_count(), cfg.min_ops);
  }
}

TEST(ProgenCdfgTest, LoopDepthBounded) {
  ProgenConfig cfg;
  cfg.max_loop_depth = 1;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const LoweredProgram p =
        lower_to_cdfg(generate_cdfg_program(seed, cfg));
    for (const auto& b : p.blocks) {
      EXPECT_LE(b.loop_depth, 2);  // one loop level + header convention
    }
  }
}

TEST(ProgenCdfgTest, GraphSizeVariesAcrossSeeds) {
  int min_nodes = 1 << 30, max_nodes = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const int n =
        lower_to_cdfg(generate_cdfg_program(seed)).graph.num_nodes();
    min_nodes = std::min(min_nodes, n);
    max_nodes = std::max(max_nodes, n);
  }
  EXPECT_GT(max_nodes, min_nodes + 10);
}

}  // namespace
}  // namespace gnnhls
