// serve/scheduler.h tests: the shared-queue multi-model scheduler's
// admission control (expired-at-submit, over-capacity), in-queue load
// shedding, priority/EDF ordering, adaptive-window rule, drain-on-shutdown
// answering every accepted future, multi-model fairness under one-hot load,
// and the determinism contract — scheduled predictions bit-identical to
// sequential QorPredictor::predict across batch compositions for all 14
// encoder kinds. Edge-case tests run in virtual-time mode (no worker
// threads, no real clock) so expiry and window behavior are exact, not
// sleep-and-hope.
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gnn/encoders.h"
#include "serve/scheduler.h"
#include "serve/serving_batcher.h"

namespace gnnhls {
namespace {

std::vector<Sample> small_corpus(int n, std::uint64_t seed) {
  SyntheticDatasetConfig dcfg;
  dcfg.kind = GraphKind::kDfg;
  dcfg.num_graphs = n;
  dcfg.seed = seed;
  dcfg.progen.min_ops = 8;
  dcfg.progen.max_ops = 24;
  return build_synthetic_dataset(dcfg);
}

ModelConfig model_cfg(GnnKind kind = GnnKind::kRgcn) {
  ModelConfig mc;
  mc.kind = kind;
  mc.hidden = 16;
  mc.layers = 2;
  return mc;
}

TrainConfig train_cfg() {
  TrainConfig tc;
  tc.epochs = 3;
  tc.lr = 1e-2F;
  tc.batch_size = 4;
  tc.seed = 5;
  return tc;
}

/// Two quickly-fitted predictors (distinct metrics, so their predictions
/// differ) shared by every multi-model test.
struct SchedFixture {
  std::vector<Sample> samples = small_corpus(36, 515);
  SplitIndices split = split_80_10_10(static_cast<int>(samples.size()), 3);
  QorPredictor lut;
  QorPredictor ff;

  SchedFixture()
      : lut(Approach::kOffTheShelf, model_cfg(), train_cfg()),
        ff(Approach::kOffTheShelf, model_cfg(), train_cfg()) {
    lut.fit(samples, split, Metric::kLut);
    ff.fit(samples, split, Metric::kFf);
  }
};

SchedFixture& fixture() {
  static SchedFixture* f = new SchedFixture();  // fit once per test binary
  return *f;
}

SchedulerConfig virtual_cfg(int max_batch = 4, std::int64_t window = 200) {
  SchedulerConfig cfg;
  cfg.virtual_time = true;
  cfg.max_batch = max_batch;
  cfg.batch_window_us = window;
  return cfg;
}

/// .get() on a shed future, returning the SchedReject status (fails the
/// test if the future holds a value or a different exception).
AdmitStatus reject_status(std::future<double>& f) {
  try {
    f.get();
  } catch (const SchedReject& e) {
    return e.status();
  }
  ADD_FAILURE() << "future did not hold a SchedReject";
  return AdmitStatus::kAccepted;
}

// ----- admission control and shedding (virtual time) -----

TEST(SchedulerAdmissionTest, ExpiredAtSubmitFailsFast) {
  SchedFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, virtual_cfg());
  SubmitOptions opts;
  opts.deadline_us = -1;  // upstream SLA already blown on arrival
  auto t = sched.submit(0, fx.samples[0], opts);
  EXPECT_EQ(t.status, AdmitStatus::kExpired);
  EXPECT_FALSE(t.accepted());
  EXPECT_EQ(reject_status(t.future), AdmitStatus::kExpired);
  const SchedStats st = sched.stats();
  EXPECT_EQ(st.submitted, 0U);  // never queued
  EXPECT_EQ(st.shed_expired, 1U);
  EXPECT_EQ(st.batches, 0U);
}

TEST(SchedulerAdmissionTest, OverCapacitySubmitsShedNotQueued) {
  SchedFixture& fx = fixture();
  SchedulerConfig cfg = virtual_cfg();
  cfg.max_queue = 2;
  ServingScheduler sched({&fx.lut}, cfg);
  auto a = sched.submit(0, fx.samples[0]);
  auto b = sched.submit(0, fx.samples[1]);
  auto c = sched.submit(0, fx.samples[2]);  // queue full: admission rejects
  EXPECT_TRUE(a.accepted());
  EXPECT_TRUE(b.accepted());
  EXPECT_EQ(c.status, AdmitStatus::kOverCapacity);
  EXPECT_EQ(reject_status(c.future), AdmitStatus::kOverCapacity);
  sched.shutdown();  // drains the two accepted requests
  EXPECT_EQ(a.future.get(), fx.lut.predict(fx.samples[0]));
  EXPECT_EQ(b.future.get(), fx.lut.predict(fx.samples[1]));
  const SchedStats st = sched.stats();
  EXPECT_EQ(st.submitted, 2U);
  EXPECT_EQ(st.shed_capacity, 1U);
  EXPECT_EQ(st.completed, 2U);
}

TEST(SchedulerAdmissionTest, DeadlineExpiryInQueueShedsWithoutForward) {
  SchedFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, virtual_cfg());
  SubmitOptions tight;
  tight.deadline_us = 100;
  auto doomed = sched.submit(0, fx.samples[0], tight);
  auto fresh = sched.submit(0, fx.samples[1]);  // no deadline
  ASSERT_TRUE(doomed.accepted());
  sched.advance_virtual_time(150);  // past doomed's deadline, window still
                                    // open for fresh? no — window is 200
                                    // from ITS arrival; advance past it
  sched.advance_virtual_time(100);
  EXPECT_TRUE(sched.pump());  // sheds doomed, serves fresh in one batch
  EXPECT_EQ(reject_status(doomed.future), AdmitStatus::kExpired);
  EXPECT_EQ(fresh.future.get(), fx.lut.predict(fx.samples[1]));
  const SchedStats st = sched.stats();
  EXPECT_EQ(st.shed_in_queue, 1U);
  EXPECT_EQ(st.completed, 1U);
  EXPECT_EQ(st.batches, 1U);  // the expired request never cost a forward
  EXPECT_EQ(st.completed_in_deadline, 1U);  // no-deadline always counts
  EXPECT_EQ(st.shed_total(), 1U);
}

TEST(SchedulerAdmissionTest, SubmitAfterShutdownRejectsWithStatus) {
  SchedFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, virtual_cfg());
  sched.shutdown();
  sched.shutdown();  // idempotent
  auto t = sched.submit(0, fx.samples[0]);
  EXPECT_EQ(t.status, AdmitStatus::kShutdown);
  EXPECT_THROW(t.future.get(), std::runtime_error);  // SchedReject is-a
  const SchedStats st = sched.stats();
  EXPECT_EQ(st.submitted, 0U);
  EXPECT_EQ(st.rejected_shutdown, 1U);
  EXPECT_EQ(st.shed_total(), 0U);  // caller error, not load shedding
}

TEST(SchedulerAdmissionTest, RejectsBadConfig) {
  SchedFixture& fx = fixture();
  SchedulerConfig cfg = virtual_cfg();
  cfg.max_batch = 0;
  EXPECT_THROW(ServingScheduler({&fx.lut}, cfg), std::invalid_argument);
  cfg = virtual_cfg();
  cfg.batch_window_us = -1;
  EXPECT_THROW(ServingScheduler({&fx.lut}, cfg), std::invalid_argument);
  cfg = virtual_cfg();
  cfg.workers = 0;
  EXPECT_THROW(ServingScheduler({&fx.lut}, cfg), std::invalid_argument);
  EXPECT_THROW(ServingScheduler({}, virtual_cfg()), std::invalid_argument);
  ServingScheduler ok({&fx.lut}, virtual_cfg());
  EXPECT_THROW(ok.submit(1, fx.samples[0]), std::invalid_argument);
  EXPECT_THROW(ok.submit(-1, fx.samples[0]), std::invalid_argument);
}

// ----- queue ordering (virtual time, max_batch=1 serves one at a time) ---

TEST(SchedulerOrderingTest, HigherPriorityServedFirst) {
  SchedFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, virtual_cfg(/*max_batch=*/1,
                                                /*window=*/0));
  auto low = sched.submit(0, fx.samples[0]);  // submitted first...
  SubmitOptions hi;
  hi.priority = 5;
  auto high = sched.submit(0, fx.samples[1], hi);  // ...but outranked
  EXPECT_TRUE(sched.pump());
  EXPECT_EQ(high.future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(low.future.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  EXPECT_TRUE(sched.pump());
  EXPECT_EQ(high.future.get(), fx.lut.predict(fx.samples[1]));
  EXPECT_EQ(low.future.get(), fx.lut.predict(fx.samples[0]));
}

TEST(SchedulerOrderingTest, EarliestDeadlineFirstWithinPriority) {
  SchedFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, virtual_cfg(/*max_batch=*/1,
                                                /*window=*/0));
  SubmitOptions late;
  late.deadline_us = 10'000;
  SubmitOptions soon;
  soon.deadline_us = 500;
  auto relaxed = sched.submit(0, fx.samples[0], late);
  auto urgent = sched.submit(0, fx.samples[1], soon);  // EDF: jumps ahead
  auto none = sched.submit(0, fx.samples[2]);  // no deadline: sorts last
  EXPECT_TRUE(sched.pump());
  EXPECT_EQ(urgent.future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(sched.pump());
  EXPECT_EQ(relaxed.future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(sched.pump());
  EXPECT_EQ(urgent.future.get(), fx.lut.predict(fx.samples[1]));
  EXPECT_EQ(relaxed.future.get(), fx.lut.predict(fx.samples[0]));
  EXPECT_EQ(none.future.get(), fx.lut.predict(fx.samples[2]));
}

// ----- adaptive window -----

TEST(AdaptiveWindowTest, RuleIsDeterministicGivenObservations) {
  AdaptiveWindow w(/*cap_us=*/200, /*adaptive=*/true);
  EXPECT_EQ(w.current_us(), 200);  // starts at the cap
  w.observe(3);  // backlog at the cap: stays pinned, no counted move
  EXPECT_EQ(w.current_us(), 200);
  EXPECT_EQ(w.grows(), 0U);
  w.observe(0);
  EXPECT_EQ(w.current_us(), 100);  // drained: halve
  w.observe(0);
  EXPECT_EQ(w.current_us(), 50);
  w.observe(7);
  EXPECT_EQ(w.current_us(), 100);  // backlog: double toward the cap
  w.observe(7);
  w.observe(7);
  EXPECT_EQ(w.current_us(), 200);  // clamped at the cap (no counted move)
  EXPECT_EQ(w.grows(), 2U);
  EXPECT_EQ(w.shrinks(), 2U);
  // Shrink all the way to zero and grow back from it.
  for (int i = 0; i < 10; ++i) w.observe(0);
  EXPECT_EQ(w.current_us(), 0);
  w.observe(1);
  EXPECT_EQ(w.current_us(), 1);  // 0 doubles to the minimum nonzero step

  AdaptiveWindow pinned(/*cap_us=*/200, /*adaptive=*/false);
  pinned.observe(0);
  pinned.observe(9);
  EXPECT_EQ(pinned.current_us(), 200);  // static: the ServingBatcher mode
  EXPECT_EQ(pinned.grows() + pinned.shrinks(), 0U);
}

TEST(AdaptiveWindowTest, SchedulerShrinksWindowWhenQueueDrains) {
  SchedFixture& fx = fixture();
  ServingScheduler sched({&fx.lut}, virtual_cfg(/*max_batch=*/4,
                                                /*window=*/200));
  // 6 queued: first batch of 4 leaves backlog 2 (window pinned at cap),
  // second batch drains (window halves).
  std::vector<std::future<double>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(sched.submit(0, fx.samples[static_cast<size_t>(i)])
                          .future);
  }
  EXPECT_TRUE(sched.pump());  // full batch, backlog 2
  EXPECT_EQ(sched.stats().window_us, 200);
  sched.advance_virtual_time(250);  // past the leftover pair's window
  EXPECT_TRUE(sched.pump());  // drains, window halves
  const SchedStats st = sched.stats();
  EXPECT_EQ(st.window_us, 100);
  EXPECT_EQ(st.window_shrinks, 1U);
  EXPECT_EQ(st.flush_full, 1U);
  EXPECT_EQ(st.flush_timeout, 1U);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(),
              fx.lut.predict(fx.samples[static_cast<size_t>(i)]));
  }
}

// ----- multi-model scheduling -----

TEST(SchedulerMultiModelTest, FairnessUnderOneHotLoad) {
  // One-hot load: a burst of model-0 traffic ahead of two model-1
  // requests. The shared queue still serves model 1 — with a deadline, EDF
  // even bumps it ahead of the no-deadline burst — and per-model counters
  // attribute every completion.
  SchedFixture& fx = fixture();
  ServingScheduler sched({&fx.lut, &fx.ff}, virtual_cfg(/*max_batch=*/4,
                                                        /*window=*/0));
  std::vector<std::future<double>> burst;
  for (int i = 0; i < 8; ++i) {
    burst.push_back(sched.submit(0, fx.samples[static_cast<size_t>(i)])
                        .future);
  }
  SubmitOptions sla;
  sla.deadline_us = 1'000'000;  // far away, but sorts before "none"
  auto minority0 = sched.submit(1, fx.samples[8], sla);
  auto minority1 = sched.submit(1, fx.samples[9], sla);

  // First pump: the deadlined model-1 pair is most urgent, so the head
  // picks model 1 even though model 0 dominates the queue.
  EXPECT_TRUE(sched.pump());
  EXPECT_EQ(minority0.future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(minority1.future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  while (sched.pump()) {
  }
  EXPECT_EQ(minority0.future.get(), fx.ff.predict(fx.samples[8]));
  EXPECT_EQ(minority1.future.get(), fx.ff.predict(fx.samples[9]));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(burst[static_cast<size_t>(i)].get(),
              fx.lut.predict(fx.samples[static_cast<size_t>(i)]));
  }
  const SchedStats st = sched.stats();
  ASSERT_EQ(st.per_model_completed.size(), 2U);
  EXPECT_EQ(st.per_model_completed[0], 8U);
  EXPECT_EQ(st.per_model_completed[1], 2U);
  EXPECT_EQ(st.flush_full + st.flush_timeout + st.flush_drain, st.batches);
}

TEST(SchedulerMultiModelTest, BatchesNeverMixModels) {
  // Interleaved two-model traffic: every batch serves one model (asserted
  // indirectly — each future must carry ITS model's sequential value).
  SchedFixture& fx = fixture();
  ServingScheduler sched({&fx.lut, &fx.ff}, virtual_cfg(/*max_batch=*/3,
                                                        /*window=*/0));
  std::vector<std::pair<int, std::future<double>>> futures;
  for (int i = 0; i < 12; ++i) {
    const int model = i % 2;
    futures.emplace_back(
        model, sched.submit(model, fx.samples[static_cast<size_t>(i)])
                   .future);
  }
  while (sched.pump()) {
  }
  for (int i = 0; i < 12; ++i) {
    const Sample& s = fx.samples[static_cast<size_t>(i)];
    const double expect =
        futures[static_cast<size_t>(i)].first == 0 ? fx.lut.predict(s)
                                                   : fx.ff.predict(s);
    EXPECT_EQ(futures[static_cast<size_t>(i)].second.get(), expect) << i;
  }
  const SchedStats st = sched.stats();
  EXPECT_EQ(st.completed, 12U);
  EXPECT_LE(st.max_batch_seen, 3);
}

// ----- drain and real-threaded paths -----

TEST(SchedulerDrainTest, ShutdownAnswersEveryAcceptedFuture) {
  SchedFixture& fx = fixture();
  SchedulerConfig cfg;
  cfg.workers = 2;
  cfg.max_batch = 4;
  cfg.batch_window_us = 50'000;  // long window: requests are queued when
                                 // shutdown lands, not yet served
  ServingScheduler sched({&fx.lut, &fx.ff}, cfg);
  std::vector<std::pair<int, std::future<double>>> futures;
  for (std::size_t i = 0; i < fx.samples.size(); ++i) {
    const int model = static_cast<int>(i % 2);
    futures.emplace_back(model,
                         sched.submit(model, fx.samples[i]).future);
  }
  sched.shutdown();
  for (std::size_t i = 0; i < fx.samples.size(); ++i) {
    // Every accepted request is answered, and with the exact sequential
    // value — drain changes scheduling, never predictions.
    const double expect = futures[i].first == 0 ? fx.lut.predict(fx.samples[i])
                                                : fx.ff.predict(fx.samples[i]);
    EXPECT_EQ(futures[i].second.get(), expect) << i;
  }
  const SchedStats st = sched.stats();
  EXPECT_EQ(st.completed, fx.samples.size());
  EXPECT_EQ(st.submitted, st.completed);
  EXPECT_EQ(st.flush_full + st.flush_timeout + st.flush_drain, st.batches);
}

TEST(SchedulerDrainTest, WorkerPoolServesBitIdentical) {
  SchedFixture& fx = fixture();
  SchedulerConfig cfg;
  cfg.workers = 4;
  cfg.max_batch = 3;
  cfg.batch_window_us = 100;
  ServingScheduler sched({&fx.lut, &fx.ff}, cfg);
  std::vector<std::pair<int, std::future<double>>> futures;
  for (std::size_t i = 0; i < fx.samples.size(); ++i) {
    const int model = static_cast<int>(i % 2);
    futures.emplace_back(model,
                         sched.submit(model, fx.samples[i]).future);
  }
  for (std::size_t i = 0; i < fx.samples.size(); ++i) {
    const double expect = futures[i].first == 0 ? fx.lut.predict(fx.samples[i])
                                                : fx.ff.predict(fx.samples[i]);
    EXPECT_EQ(futures[i].second.get(), expect) << i;
  }
}

// ----- ownership paths (satellite: no per-request deep copies) -----

TEST(SchedulerOwnershipTest, SharedPtrAndRvalueSubmitOutliveCaller) {
  SchedFixture& fx = fixture();
  const double expect0 = fx.lut.predict(fx.samples[0]);
  const double expect1 = fx.lut.predict(fx.samples[1]);
  ServingScheduler sched({&fx.lut}, virtual_cfg(/*max_batch=*/4,
                                                /*window=*/0));
  ServingScheduler::Ticket shared_t;
  ServingScheduler::Ticket moved_t;
  {
    // Both caller-side handles die before the requests are served; the
    // scheduler must keep the samples alive via shared ownership.
    auto owned = std::make_shared<const Sample>(fx.samples[0]);
    shared_t = sched.submit(0, owned);
    Sample tmp = fx.samples[1];
    moved_t = sched.submit(0, std::move(tmp));
  }
  EXPECT_TRUE(sched.pump());
  EXPECT_EQ(shared_t.future.get(), expect0);
  EXPECT_EQ(moved_t.future.get(), expect1);
}

TEST(SchedulerOwnershipTest, BatcherFacadeOwnershipPaths) {
  SchedFixture& fx = fixture();
  const double expect = fx.lut.predict(fx.samples[3]);
  ServeConfig sc;
  sc.max_batch = 2;
  sc.batch_window_us = 0;
  ServingBatcher batcher(fx.lut, sc);
  std::future<double> shared_f;
  std::future<double> moved_f;
  {
    auto owned = std::make_shared<const Sample>(fx.samples[3]);
    shared_f = batcher.submit(owned);
    Sample tmp = fx.samples[3];
    moved_f = batcher.submit(std::move(tmp));
  }
  EXPECT_EQ(shared_f.get(), expect);
  EXPECT_EQ(moved_f.get(), expect);
}

// ----- determinism across batch compositions, all 14 encoder kinds -----

class SchedulerKindTest : public ::testing::TestWithParam<GnnKind> {};

TEST_P(SchedulerKindTest, ScheduledBitIdenticalAcrossBatchCompositions) {
  // A fresh small predictor per kind (independent of the shared fixture).
  const auto samples = small_corpus(18, 147);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 3);
  TrainConfig tc = train_cfg();
  tc.epochs = 2;
  QorPredictor predictor(Approach::kOffTheShelf, model_cfg(GetParam()), tc);
  predictor.fit(samples, split, Metric::kLut);

  std::vector<double> expect;
  for (const Sample& s : samples) expect.push_back(predictor.predict(s));

  // Sweep batch compositions: solo forwards, uneven 18/5 splits, and one
  // max-size union. The prediction must not depend on who shares a batch.
  for (const int max_batch : {1, 5, 18}) {
    ServingScheduler sched({&predictor},
                           virtual_cfg(max_batch, /*window=*/0));
    std::vector<std::future<double>> futures;
    for (const Sample& s : samples) {
      futures.push_back(sched.submit(0, s).future);
    }
    while (sched.pump()) {
    }
    for (std::size_t i = 0; i < samples.size(); ++i) {
      EXPECT_EQ(futures[i].get(), expect[i])
          << gnn_kind_name(GetParam()) << " max_batch=" << max_batch
          << " sample " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SchedulerKindTest, ::testing::ValuesIn(all_gnn_kinds()),
    [](const ::testing::TestParamInfo<GnnKind>& info) {
      std::string name = gnn_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gnnhls
