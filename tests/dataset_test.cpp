#include <set>

#include <gtest/gtest.h>

#include "dataset/dataset.h"

namespace gnnhls {
namespace {

TEST(MetricTest, NamesAndAccessors) {
  QualityOfResult q{3.0, 450.0, 220.0, 7.5};
  EXPECT_EQ(metric_of(q, Metric::kDsp), 3.0);
  EXPECT_EQ(metric_of(q, Metric::kLut), 450.0);
  EXPECT_EQ(metric_of(q, Metric::kFf), 220.0);
  EXPECT_EQ(metric_of(q, Metric::kCp), 7.5);
  EXPECT_EQ(metric_name(Metric::kDsp), "DSP");
  EXPECT_EQ(metric_name(Metric::kCp), "CP");
}

class TargetTransformTest : public ::testing::TestWithParam<Metric> {};

TEST_P(TargetTransformTest, EncodeDecodeRoundTrip) {
  for (double v : {0.0, 1.0, 7.0, 123.0, 4096.0}) {
    const float e = encode_target(v, GetParam());
    EXPECT_NEAR(decode_target(e, GetParam()), v, std::max(v * 1e-4, 1e-4));
  }
}

TEST_P(TargetTransformTest, MonotoneInValue) {
  float prev = -1e9F;
  for (double v : {0.0, 2.0, 10.0, 100.0, 1000.0}) {
    const float e = encode_target(v, GetParam());
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST_P(TargetTransformTest, RoundTripAcrossExtremeMagnitudes) {
  // Resource counts span orders of magnitude; the float32 encoding must
  // round-trip every scale a real design can produce to float precision
  // (relative, with an absolute floor for the near-zero end).
  for (double v : {0.0, 1e-6, 0.25, 1.0, 3.0, 7.5, 1e2, 12345.0, 1e6, 1e9,
                   1e12}) {
    const float e = encode_target(v, GetParam());
    const double back = decode_target(e, GetParam());
    EXPECT_NEAR(back, v, std::max(std::abs(v) * 1e-5, 1e-6))
        << "metric " << metric_name(GetParam()) << " value " << v;
  }
  // Zero is exact, not merely near.
  EXPECT_EQ(decode_target(encode_target(0.0, GetParam()), GetParam()), 0.0);
}

TEST_P(TargetTransformTest, EncodedSpaceIsAFixedPoint) {
  // decode -> encode recovers the encoded float BIT-EXACTLY: encode is the
  // left inverse of decode on the whole non-negative encoded range, so a
  // model output decoded for reporting and re-encoded for a loss never
  // drifts. (The double intermediates carry ~29 more mantissa bits than
  // the float result, so the final rounding lands on the original float.)
  for (float e : {0.0F, 1e-4F, 0.5F, 1.0F, 3.25F, 10.0F, 27.5F, 80.0F}) {
    EXPECT_EQ(encode_target(decode_target(e, GetParam()), GetParam()), e)
        << "metric " << metric_name(GetParam()) << " encoded " << e;
  }
}

TEST(TargetTransformTest, NegativeEncodingsDecodeToZeroCounts) {
  // Models can emit slightly negative encodings; count metrics clamp them
  // to the zero-resource design instead of returning negative resources.
  for (Metric m : {Metric::kDsp, Metric::kLut, Metric::kFf}) {
    EXPECT_EQ(decode_target(-0.5F, m), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, TargetTransformTest,
                         ::testing::ValuesIn(kAllMetrics),
                         [](const ::testing::TestParamInfo<Metric>& info) {
                           return metric_name(info.param);
                         });

TEST(TargetTransformTest, NegativeRejected) {
  EXPECT_THROW(encode_target(-1.0, Metric::kLut), std::invalid_argument);
}

TEST(SplitTest, ProportionsAndDisjointness) {
  const SplitIndices s = split_80_10_10(200, 42);
  EXPECT_EQ(s.test.size(), 20U);
  EXPECT_EQ(s.val.size(), 20U);
  EXPECT_EQ(s.train.size(), 160U);
  std::set<int> seen;
  for (int i : s.train) seen.insert(i);
  for (int i : s.val) EXPECT_EQ(seen.count(i), 0U);
  for (int i : s.val) seen.insert(i);
  for (int i : s.test) EXPECT_EQ(seen.count(i), 0U);
  for (int i : s.test) seen.insert(i);
  EXPECT_EQ(seen.size(), 200U);
}

TEST(SplitTest, DeterministicInSeed) {
  const SplitIndices a = split_80_10_10(100, 7);
  const SplitIndices b = split_80_10_10(100, 7);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
  const SplitIndices c = split_80_10_10(100, 8);
  EXPECT_NE(a.train, c.train);
}

TEST(SplitTest, TooSmallRejected) {
  EXPECT_THROW(split_80_10_10(5, 1), std::invalid_argument);
}

TEST(DatasetTest, SyntheticDfgDataset) {
  SyntheticDatasetConfig cfg;
  cfg.kind = GraphKind::kDfg;
  cfg.num_graphs = 12;
  cfg.seed = 99;
  const auto samples = build_synthetic_dataset(cfg);
  ASSERT_EQ(samples.size(), 12U);
  for (const auto& s : samples) {
    EXPECT_EQ(s.graph().kind(), GraphKind::kDfg);
    EXPECT_GT(s.graph().num_nodes(), 0);
    EXPECT_GT(s.truth.lut, 0.0);
    EXPECT_GT(s.truth.cp_ns, 0.0);
    EXPECT_GT(s.hls_report.lut, 0.0);
    EXPECT_EQ(s.tensors.num_nodes, s.graph().num_nodes());
  }
  EXPECT_EQ(samples[3].origin, "synthetic-dfg/3");
}

TEST(DatasetTest, SyntheticCdfgDatasetHasBackEdges) {
  SyntheticDatasetConfig cfg;
  cfg.kind = GraphKind::kCdfg;
  cfg.num_graphs = 8;
  cfg.seed = 5;
  const auto samples = build_synthetic_dataset(cfg);
  int with_back_edges = 0;
  for (const auto& s : samples) {
    EXPECT_EQ(s.graph().kind(), GraphKind::kCdfg);
    if (s.graph().count_back_edges() > 0) ++with_back_edges;
  }
  EXPECT_EQ(with_back_edges, 8);
}

TEST(DatasetTest, DeterministicInSeed) {
  SyntheticDatasetConfig cfg;
  cfg.kind = GraphKind::kDfg;
  cfg.num_graphs = 5;
  cfg.seed = 31;
  const auto a = build_synthetic_dataset(cfg);
  const auto b = build_synthetic_dataset(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].graph().num_nodes(), b[i].graph().num_nodes());
    EXPECT_EQ(a[i].truth.lut, b[i].truth.lut);
    EXPECT_EQ(a[i].truth.cp_ns, b[i].truth.cp_ns);
  }
}

TEST(DatasetTest, StatsAggregation) {
  SyntheticDatasetConfig cfg;
  cfg.kind = GraphKind::kDfg;
  cfg.num_graphs = 10;
  const auto samples = build_synthetic_dataset(cfg);
  const DatasetStats st = compute_stats(samples);
  EXPECT_EQ(st.graphs, 10);
  EXPECT_GT(st.avg_nodes, 1.0);
  EXPECT_GE(st.max_nodes, static_cast<int>(st.avg_nodes));
  EXPECT_GT(st.avg_metric[1], 0.0);  // LUT
  EXPECT_EQ(st.total_nodes > 0, true);
}

TEST(DatasetTest, AllIndicesHelper) {
  const auto idx = all_indices(4);
  EXPECT_EQ(idx, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace gnnhls
