// Bump-pointer arena memory for per-batch tensor temporaries.
//
// Training and batched inference churn short-lived activation/gradient
// matrices at a fixed rhythm: every tape allocates dozens of buffers that
// all die together when the step (or the serving micro-batch) completes.
// PR 1 measured allocator traffic alone at ~35% of the batched step; an
// arena turns that whole allocation pattern into pointer bumps plus one
// O(blocks) reset per batch.
//
// Wiring: the arena is *opt-in and thread-scoped*. Matrix's element storage
// uses ArenaAllocator<float>, which consults a thread-local "current arena"
// on every allocation: null (the default everywhere) means plain heap; a
// live ArenaScope on the thread redirects allocations into its arena.
// Every allocation carries a 16-byte ownership header, so deallocation is
// O(1) and correct for both kinds: heap blocks are deleted, arena blocks
// are no-ops (their memory is reclaimed wholesale by Arena::reset()).
//
// Lifetime rules (see ARCHITECTURE.md "Fused executor & arena memory"):
//   * Whoever opens the ArenaScope owns the reset: the scope's destructor
//     rewinds the arena. Everything allocated under the scope must be
//     destroyed before the scope closes — declare the scope FIRST, the
//     tape/temporaries after, and C++ destruction order does the rest.
//   * Anything that must outlive the batch (parameters, Adam state,
//     FeatureCache entries, BatchPlan items, snapshots) must be heap-built:
//     either allocate it outside any scope or shield the build with an
//     ArenaPause (FeatureCache::lookup and BatchPlan assembly do this).
//   * Nested scopes on the same arena are no-ops (the outermost scope owns
//     the reset); nested scopes on different arenas stack and restore.
//   * An Arena is thread-safe (mutex-guarded bumps), but the intended
//     pattern is one scratch arena per thread (thread_scratch_arena()),
//     which keeps the mutex uncontended.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "support/check.h"

namespace gnnhls {

/// Thread-safe bump-pointer arena. Blocks grow geometrically and are kept
/// across reset(), so a steady-state training loop stops allocating from
/// the OS entirely after the first batch.
class Arena {
 public:
  static constexpr std::size_t kDefaultFirstBlockBytes = std::size_t{1} << 20;

  explicit Arena(std::size_t first_block_bytes = kDefaultFirstBlockBytes)
      : next_block_bytes_(first_block_bytes) {
    GNNHLS_CHECK(first_block_bytes > 0, "Arena: zero block size");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` with the given power-of-two alignment
  /// (<= 16, the alignment operator new guarantees for the block storage).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Rewinds every block to empty. Memory stays reserved for reuse. The
  /// caller must guarantee nothing allocated from this arena is still
  /// live — ArenaScope sequences this for the per-batch pattern.
  void reset();

  /// Total bytes currently handed out (diagnostics/tests).
  std::size_t used_bytes() const;
  /// Total bytes reserved from the OS across all blocks.
  std::size_t reserved_bytes() const;
  std::size_t block_count() const;

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  mutable std::mutex mu_;
  std::vector<Block> blocks_;
  std::size_t next_block_bytes_;
};

namespace arena_detail {

/// Ownership tag written immediately before every ArenaAllocator payload.
/// 64-bit magics make a stale arena header reading as "heap" (the one
/// pattern that would double-free) astronomically unlikely even if the
/// lifetime contract is violated.
struct alignas(16) AllocHeader {
  std::uint64_t magic = 0;
};
inline constexpr std::uint64_t kArenaMagic = 0xA11C'A9E3'779B'97F4ULL;
inline constexpr std::uint64_t kHeapMagic = 0x48EA'B58F'476D'1CE4ULL;

/// Thread-local current-arena slot. Function-local so the header stays
/// self-contained; `inline` gives one slot per thread program-wide.
inline Arena*& thread_arena_slot() {
  thread_local Arena* slot = nullptr;
  return slot;
}

/// Running tally of heap-path ArenaAllocator allocations on this thread —
/// the allocator traffic an ArenaScope removes. Diagnostics only (bench
/// counters); a plain thread_local increment costs nothing measurable.
inline std::uint64_t& thread_heap_alloc_count() {
  thread_local std::uint64_t count = 0;
  return count;
}

}  // namespace arena_detail

/// Heap allocations made through ArenaAllocator on this thread so far.
/// Sample before/after a region to count its allocator traffic.
inline std::uint64_t thread_matrix_heap_allocs() {
  return arena_detail::thread_heap_alloc_count();
}

/// Arena receiving this thread's ArenaAllocator traffic, or null (heap).
inline Arena* current_thread_arena() {
  return arena_detail::thread_arena_slot();
}

/// Lazily-created per-thread scratch arena (leaked on purpose: pool worker
/// threads live for the process, and the blocks are reused forever).
Arena& thread_scratch_arena();

/// RAII: route this thread's Matrix allocations into `arena` for the scope,
/// then restore the previous arena and reset `arena`. Passing null or the
/// already-active arena makes the scope a no-op (nesting guard), so helper
/// layers can open scopes defensively without double-resetting.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena)
      : arena_(arena), prev_(arena_detail::thread_arena_slot()) {
    if (arena_ == nullptr || arena_ == prev_) {
      arena_ = nullptr;  // no-op scope
      return;
    }
    arena_detail::thread_arena_slot() = arena_;
  }
  ~ArenaScope() {
    if (arena_ == nullptr) return;
    arena_detail::thread_arena_slot() = prev_;
    arena_->reset();
  }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena* prev_;
};

/// RAII: suspend any active arena on this thread (allocations go to the
/// heap) — the shield for building long-lived data (cache entries, plan
/// items) from inside an arena-scoped region.
class ArenaPause {
 public:
  ArenaPause() : prev_(arena_detail::thread_arena_slot()) {
    arena_detail::thread_arena_slot() = nullptr;
  }
  ~ArenaPause() { arena_detail::thread_arena_slot() = prev_; }

  ArenaPause(const ArenaPause&) = delete;
  ArenaPause& operator=(const ArenaPause&) = delete;

 private:
  Arena* prev_;
};

/// Header-tagged allocator for Matrix storage: consults the thread-local
/// current arena per allocation, so the same Matrix type is heap-backed in
/// steady state and arena-backed inside an ArenaScope. Stateless/all-equal,
/// so containers move freely across scope boundaries (ownership travels
/// with the header, not the allocator object).
template <typename T>
struct ArenaAllocator {
  static_assert(alignof(T) <= alignof(arena_detail::AllocHeader),
                "ArenaAllocator: type alignment exceeds header alignment");

  using value_type = T;
  using is_always_equal = std::true_type;

  ArenaAllocator() = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    const std::size_t bytes =
        sizeof(arena_detail::AllocHeader) + n * sizeof(T);
    unsigned char* raw = nullptr;
    std::uint64_t magic = arena_detail::kHeapMagic;
    if (Arena* a = current_thread_arena()) {
      raw = static_cast<unsigned char*>(
          a->allocate(bytes, alignof(arena_detail::AllocHeader)));
      magic = arena_detail::kArenaMagic;
    } else {
      raw = static_cast<unsigned char*>(::operator new(bytes));
      ++arena_detail::thread_heap_alloc_count();
    }
    reinterpret_cast<arena_detail::AllocHeader*>(raw)->magic = magic;
    return reinterpret_cast<T*>(raw + sizeof(arena_detail::AllocHeader));
  }

  void deallocate(T* p, std::size_t /*n*/) noexcept {
    auto* raw = reinterpret_cast<unsigned char*>(p) -
                sizeof(arena_detail::AllocHeader);
    const auto* header =
        reinterpret_cast<const arena_detail::AllocHeader*>(raw);
    if (header->magic == arena_detail::kHeapMagic) {
      ::operator delete(raw);
    }
    // Arena-owned payloads are reclaimed wholesale by Arena::reset().
  }
};

template <typename T, typename U>
inline bool operator==(const ArenaAllocator<T>&, const ArenaAllocator<U>&) {
  return true;
}
template <typename T, typename U>
inline bool operator!=(const ArenaAllocator<T>&, const ArenaAllocator<U>&) {
  return false;
}

}  // namespace gnnhls
