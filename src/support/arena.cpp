#include "support/arena.h"

#include <algorithm>

namespace gnnhls {

namespace {

/// Growth cap: blocks double up to this, bounding worst-case overshoot.
constexpr std::size_t kMaxBlockBytes = std::size_t{64} << 20;

std::size_t align_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  GNNHLS_CHECK(align > 0 && (align & (align - 1)) == 0,
               "Arena: alignment must be a power of two");
  GNNHLS_CHECK(align <= alignof(std::max_align_t),
               "Arena: alignment exceeds block alignment");
  std::lock_guard<std::mutex> lock(mu_);
  // First fit over existing blocks: after a reset every block is empty, so
  // steady-state batches bump straight through block 0 and the scan is
  // effectively O(1).
  for (Block& b : blocks_) {
    const std::size_t at = align_up(b.used, align);
    if (at + bytes <= b.size) {
      b.used = at + bytes;
      return b.data.get() + at;
    }
  }
  // New block: geometric growth, large one-off requests get their own block.
  const std::size_t want = std::max(bytes + align, next_block_bytes_);
  next_block_bytes_ = std::min(next_block_bytes_ * 2, kMaxBlockBytes);
  Block b;
  b.size = want;
  b.data = std::make_unique<unsigned char[]>(want);
  const std::size_t base = align_up(
      reinterpret_cast<std::uintptr_t>(b.data.get()) % align == 0 ? 0 : align,
      align);
  b.used = base + bytes;
  unsigned char* out = b.data.get() + base;
  blocks_.push_back(std::move(b));
  return out;
}

void Arena::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Block& b : blocks_) b.used = 0;
}

std::size_t Arena::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.used;
  return total;
}

std::size_t Arena::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

std::size_t Arena::block_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

Arena& thread_scratch_arena() {
  // Leaked per thread: worker threads are process-lifetime, and a scratch
  // arena must never die while another thread could still be draining
  // matrices allocated from it.
  thread_local Arena* arena = new Arena();
  return *arena;
}

}  // namespace gnnhls
