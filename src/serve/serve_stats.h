// Counters published by the ServingBatcher (see serve/serving_batcher.h).
//
// A ServeStats value is a consistent snapshot: every field was read under
// the batcher's queue lock in one critical section, so invariants like
// `completed <= submitted` and `flush_full + flush_timeout + flush_drain ==
// batches` hold within a single snapshot. Snapshots are plain values —
// copy, diff and print them freely (bench_serving diffs two snapshots to
// report per-phase batch-size distributions).
#pragma once

#include <cstdint>

namespace gnnhls {

struct ServeStats {
  /// Requests accepted by submit() (excludes submissions rejected because
  /// the batcher was already shut down — those fail their future instead).
  std::uint64_t submitted = 0;
  /// Requests whose micro-batch forward has run. Counted just before the
  /// promises are fulfilled, so a caller whose future.get() has returned
  /// always observes its own request here.
  std::uint64_t completed = 0;
  /// Forward passes run (each serves one micro-batch of 1..max_batch).
  std::uint64_t batches = 0;
  /// Window-close reasons, one increment per batch:
  /// the queue reached max_batch before the window timer expired, ...
  std::uint64_t flush_full = 0;
  /// ... the batch window elapsed with 1..max_batch-1 requests waiting, ...
  std::uint64_t flush_timeout = 0;
  /// ... or shutdown() drained the remaining queue.
  std::uint64_t flush_drain = 0;
  /// Largest micro-batch served so far (<= configured max_batch).
  int max_batch_seen = 0;

  /// Mean graphs per forward pass — the amortization the batcher exists to
  /// create (1.0 means every request paid a full forward on its own).
  double avg_batch() const {
    return batches == 0
               ? 0.0
               : static_cast<double>(completed) / static_cast<double>(batches);
  }
};

}  // namespace gnnhls
