// Graph-level message-passing executor: the single entry point the encoder
// zoo routes its aggregation steps through.
//
// Every function has two execution strategies selected by `fused`:
//
//   * fused=false — the reference composition of primitive tape ops
//     (gather_rows -> [scale_rows | Linear] -> scatter_add / segment_mean),
//     exactly the chain the encoders historically inlined.
//   * fused=true — one Tape::fused_* node running the kernels in
//     tensor/fused_mp.h over the partitions cached on GraphTensors, so the
//     [E, hidden] message tensor never materializes in forward or backward.
//
// Both strategies produce bit-identical values and gradients at any
// thread-pool width (see fused_mp.h for the rounding argument); `fused` is
// an execution knob like TrainConfig::shards, never a semantics knob. The
// fused strategy silently falls back to the reference composition when its
// preconditions do not hold: missing cached partitions (hand-assembled
// GraphTensors), an empty edge set, or a relation Linear with a bias (the
// fused matmul path folds the weight only).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gnn/graph_tensors.h"
#include "nn/layers.h"

namespace gnnhls {

namespace mp_detail {

/// Running tally of fused-path requests that fell back to the reference
/// composition on this thread (missing partitions, empty edge set, biased
/// relation Linear). Diagnostics only; a plain thread_local increment.
inline std::uint64_t& thread_fused_fallback_slot() {
  thread_local std::uint64_t count = 0;
  return count;
}

}  // namespace mp_detail

/// Fused-executor fallbacks taken on this thread so far. Sample before/after
/// a region (the serving scheduler does this per micro-batch forward) to see
/// whether fused=true is actually running fused — a silent fallback is a
/// perf regression, not an error, so it must be observable in stats.
inline std::uint64_t thread_fused_fallbacks() {
  return mp_detail::thread_fused_fallback_slot();
}

/// out_v = sum_{(u,v) in E} x_u. Empty edge set yields zeros (shape of x).
Var mp_aggregate_sum(Tape& t, const GraphTensors& gt, const Var& x,
                     bool fused);

/// out_v = mean_{(u,v) in E} x_u; nodes without in-edges yield zeros.
Var mp_aggregate_mean(Tape& t, const GraphTensors& gt, const Var& x,
                      bool fused);

/// GCN propagation D^-1/2 (A+I) D^-1/2 x with the precomputed gcn_coeff /
/// gcn_self_coeff.
Var mp_gcn_propagate(Tape& t, const GraphTensors& gt, const Var& x,
                     bool fused);

/// Per-relation transformed aggregation (RGCN mean_normalize=true, GGNN
/// false): out_v += reduce_{(u,v) in E_r} W_r x_u over every non-empty
/// relation, using the relation endpoint views/partitions cached on gt
/// (rebuilt locally when absent). Relations whose Linear carries a bias run
/// the reference composition even under fused=true.
Var mp_relational_aggregate(
    Tape& t, const GraphTensors& gt, const Var& h,
    const std::vector<std::unique_ptr<Linear>>& rel_lins, bool mean_normalize,
    bool fused);

/// Per-segment-count mean coefficients (1/count, 0 for empty segments) —
/// the scale_rows vector segment_mean derives from a cached partition.
std::vector<float> segment_inverse_counts(const SegmentPartition& part);

}  // namespace gnnhls
