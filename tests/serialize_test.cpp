#include <sstream>

#include <gtest/gtest.h>

#include "dataset/serialize.h"
#include "graph/dot_export.h"

namespace gnnhls {
namespace {

std::vector<Sample> tiny_dataset(GraphKind kind) {
  SyntheticDatasetConfig cfg;
  cfg.kind = kind;
  cfg.num_graphs = 6;
  cfg.seed = 5150;
  return build_synthetic_dataset(cfg);
}

TEST(SerializeTest, RoundTripPreservesEverything) {
  const auto samples = tiny_dataset(GraphKind::kCdfg);
  std::stringstream buffer;
  write_benchmark(buffer, samples);
  const auto records = read_benchmark(buffer);
  ASSERT_EQ(records.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const IrGraph& a = samples[i].graph();
    const IrGraph& b = records[i].graph;
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.num_edges(), b.num_edges());
    EXPECT_EQ(a.kind(), b.kind());
    EXPECT_EQ(records[i].origin, samples[i].origin);
    for (int v = 0; v < a.num_nodes(); ++v) {
      EXPECT_EQ(a.node(v).opcode, b.node(v).opcode);
      EXPECT_EQ(a.node(v).bitwidth, b.node(v).bitwidth);
      EXPECT_EQ(a.node(v).cluster_group, b.node(v).cluster_group);
      EXPECT_EQ(a.node(v).is_start_of_path, b.node(v).is_start_of_path);
      EXPECT_EQ(a.node(v).resource.uses_dsp, b.node(v).resource.uses_dsp);
      EXPECT_FLOAT_EQ(a.node(v).resource.lut, b.node(v).resource.lut);
    }
    for (int e = 0; e < a.num_edges(); ++e) {
      EXPECT_EQ(a.edge(e).src, b.edge(e).src);
      EXPECT_EQ(a.edge(e).dst, b.edge(e).dst);
      EXPECT_EQ(a.edge(e).type, b.edge(e).type);
      EXPECT_EQ(a.edge(e).is_back_edge, b.edge(e).is_back_edge);
    }
    EXPECT_DOUBLE_EQ(samples[i].truth.lut, records[i].truth.lut);
    EXPECT_DOUBLE_EQ(samples[i].truth.cp_ns, records[i].truth.cp_ns);
    EXPECT_DOUBLE_EQ(samples[i].hls_report.ff, records[i].hls_report.ff);
    // Tensors rebuilt identically.
    EXPECT_EQ(samples[i].tensors.src, records[i].tensors.src);
    EXPECT_EQ(samples[i].tensors.relation_edges,
              records[i].tensors.relation_edges);
  }
}

TEST(SerializeTest, DfgRoundTrip) {
  const auto samples = tiny_dataset(GraphKind::kDfg);
  std::stringstream buffer;
  write_benchmark(buffer, samples);
  const auto records = read_benchmark(buffer);
  ASSERT_EQ(records.size(), samples.size());
  EXPECT_EQ(records[0].graph.kind(), GraphKind::kDfg);
  EXPECT_EQ(records[0].graph.count_back_edges(), 0);
}

TEST(SerializeTest, RejectsBadHeader) {
  std::stringstream buffer("not-a-benchmark\n");
  EXPECT_THROW(read_benchmark(buffer), std::invalid_argument);
}

TEST(SerializeTest, RejectsTruncatedRecord) {
  const auto samples = tiny_dataset(GraphKind::kDfg);
  std::stringstream buffer;
  write_benchmark(buffer, samples);
  std::string content = buffer.str();
  content.resize(content.size() / 2);  // cut mid-record
  std::stringstream cut(content);
  EXPECT_THROW(read_benchmark(cut), std::invalid_argument);
}

TEST(SerializeTest, RejectsCorruptOpcode) {
  std::stringstream buffer;
  buffer << "gnnhls-benchmark v1\n"
         << "graph g dfg 1 0\n"
         << "qor 0 1 1 5\n"
         << "report 0 1 1 5\n"
         << "node 0 9999 32 0 0 0 0 0 0 0 0 0\n"
         << "end\n";
  EXPECT_THROW(read_benchmark(buffer), std::invalid_argument);
}

TEST(SerializeTest, FileRoundTrip) {
  const auto samples = tiny_dataset(GraphKind::kCdfg);
  const std::string path = ::testing::TempDir() + "/bench_roundtrip.txt";
  write_benchmark_file(path, samples);
  const auto records = read_benchmark_file(path);
  EXPECT_EQ(records.size(), samples.size());
  EXPECT_THROW(read_benchmark_file(path + ".missing"),
               std::invalid_argument);
}

TEST(DotExportTest, ContainsNodesEdgesAndStyles) {
  const auto samples = tiny_dataset(GraphKind::kCdfg);
  const std::string dot = to_dot(samples[0].graph());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 "), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);  // back edges
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // control edges
}

}  // namespace
}  // namespace gnnhls
