// QorPredictor — the paper's three prediction approaches behind one API
// (§4, Fig. 2).
//
//   * kOffTheShelf      — GraphRegressor on raw IR-graph features.
//   * kKnowledgeRich    — GraphRegressor on raw features + per-node resource
//                         values from intermediate HLS results.
//   * kKnowledgeInfused — hierarchical: a NodeClassifier is trained first on
//                         node-level resource types; the GraphRegressor
//                         trains on ground-truth type bits ("domain
//                         knowledge is infused by providing labels") and at
//                         inference consumes the classifier's self-inferred
//                         bits — earliest-stage prediction, zero extra
//                         inference inputs.
//
// The paper's training recipe (Adam, fixed epoch budget, minibatch
// accumulation, best-validation-epoch parameter selection) lives in the
// src/train/ subsystem: each fit here builds a BatchPlan over cached feature
// tensors (FeatureCache) and delegates the epochs to the sharded Trainer;
// this file keeps only model construction, validation-driven model
// selection, and inference.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/metrics.h"
#include "dataset/dataset.h"
#include "gnn/models.h"
#include "train/trainer.h"

namespace gnnhls {

/// How the knowledge-infused approach obtains resource-type bits at
/// inference time. kSelfInferred is the paper's deployment path; kOracle
/// feeds ground-truth bits instead and upper-bounds what a perfect
/// node-classifier would buy (used by the hierarchy ablation bench).
enum class InfusedInference { kSelfInferred, kOracle };

class QorPredictor {
 public:
  QorPredictor(Approach approach, ModelConfig model_cfg, TrainConfig train_cfg,
               InfusedInference infused = InfusedInference::kSelfInferred);

  /// Trains (classifier first for -I, then regressor) on samples[split.train]
  /// for one metric; restores the parameters of the best validation epoch.
  /// Returns the best validation MAPE.
  double fit(const std::vector<Sample>& samples, const SplitIndices& split,
             Metric metric);

  /// Decoded QoR prediction for one sample (for -I, runs hierarchical
  /// inference: classifier -> annotated features -> regressor).
  double predict(const Sample& sample) const;

  /// Batched inference: one GraphBatch disjoint union over all of `samples`,
  /// one regressor forward, decoded predictions returned in input order.
  /// Bit-identical to calling predict() per sample — the union introduces no
  /// cross-graph edges and the segment readout pools each member's rows in
  /// the same order as the single-graph path, so per-member float
  /// trajectories are exactly those of the solo forward (asserted across all
  /// 14 encoder kinds in serve_test/batch_test).
  ///
  /// Thread safety: const and safe to call concurrently from many threads
  /// after fit() returns (forward builds a private tape; feature matrices
  /// come from the internally synchronized FeatureCache). This is the
  /// serving batcher's one entry point into the model. Callers control the
  /// batch size by slicing: each call is a single forward pass.
  std::vector<double> predict_many(
      const std::vector<const Sample*>& samples) const;

  /// MAPE over an index subset. With batch_size > 1 the regressor runs on
  /// GraphBatch unions of that many samples per tape. Feature matrices come
  /// from the process-wide FeatureCache, so per-epoch validation and bench
  /// tables stop rebuilding identical tensors per call.
  double evaluate_mape(const std::vector<Sample>& samples,
                       const std::vector<int>& idx) const;

  Approach approach() const { return approach_; }
  Metric metric() const { return metric_; }

  /// Trained regressor (valid after fit; determinism tests snapshot its
  /// parameters).
  const GraphRegressor& regressor() const { return *regressor_; }

 private:
  /// True when inference features are a pure function of the sample (cached
  /// globally); false on the hierarchical self-inferred path, whose
  /// features depend on the trained classifier.
  bool pure_inference_features() const;

  /// Hierarchical (-I self-inferred) inference features: classifier bits
  /// replace the ground-truth type annotations.
  Matrix infused_features(const Sample& s) const;

  void fit_classifier(const std::vector<Sample>& samples,
                      const std::vector<int>& train_idx);

  Approach approach_;
  ModelConfig model_cfg_;
  TrainConfig train_cfg_;
  InfusedInference infused_;
  Metric metric_ = Metric::kLut;
  std::unique_ptr<NodeClassifier> classifier_;  // only for -I
  std::unique_ptr<GraphRegressor> regressor_;
};

// ----- node-level classification (paper Table 3) -----

struct NodeClassifierScores {
  // accuracy per binary task, paper column order
  double dsp = 0.0;
  double lut = 0.0;
  double ff = 0.0;
};

class NodeTypePredictor {
 public:
  NodeTypePredictor(ModelConfig model_cfg, TrainConfig train_cfg);

  /// Trains on samples[split.train], best epoch by validation mean accuracy.
  /// Returns best validation mean accuracy.
  double fit(const std::vector<Sample>& samples, const SplitIndices& split);

  NodeClassifierScores evaluate(const std::vector<Sample>& samples,
                                const std::vector<int>& idx) const;

  const NodeClassifier& classifier() const { return *classifier_; }

 private:
  ModelConfig model_cfg_;
  TrainConfig train_cfg_;
  std::unique_ptr<NodeClassifier> classifier_;
};

// ----- parameter snapshot/restore for best-epoch selection -----

std::vector<Matrix> snapshot_parameters(const Module& m);
void restore_parameters(Module& m, const std::vector<Matrix>& snap);

}  // namespace gnnhls
