#include "tensor/fused_mp.h"

#include <algorithm>

#include "support/check.h"
#include "support/parallel.h"

#if defined(GNNHLS_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace gnnhls {

namespace {

/// Same scheduling thresholds as segment_ops.cpp / matrix.cpp: below these
/// a kernel runs its serial loop inline. Thresholds steer scheduling only —
/// every path is value-identical.
constexpr std::size_t kMinParallelElems = 1U << 13;
constexpr long kMinFlopsPerChunk = 1L << 14;

/// Edges per parallel range so each range carries at least min_work's worth
/// of inner-loop work (`per_edge` = elements or flops moved per edge).
int edge_grain(long per_edge, long min_work) {
  return static_cast<int>(std::max(1L, min_work / std::max(per_edge, 1L))) + 1;
}

#if defined(GNNHLS_SIMD) && defined(__AVX2__)
/// Mirror of matrix.cpp's axpy_row: orow[j..) += aik * brow[j..). Unfused
/// multiply+add (no FMA) so each element performs exactly the same rounding
/// steps as the scalar loop; the build adds -ffp-contract=off to this TU.
inline void axpy_row(float aik, const float* brow, float* orow, int n) {
  const __m256 va = _mm256_set1_ps(aik);
  int j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vb = _mm256_loadu_ps(brow + j);
    const __m256 vo = _mm256_loadu_ps(orow + j);
    _mm256_storeu_ps(orow + j, _mm256_add_ps(vo, _mm256_mul_ps(va, vb)));
  }
  for (; j < n; ++j) orow[j] += aik * brow[j];
}
#else
inline void axpy_row(float aik, const float* brow, float* orow, int n) {
  for (int j = 0; j < n; ++j) orow[j] += aik * brow[j];
}
#endif

/// Dispatches `run(seg_lo, seg_hi)` over edge-count-balanced destination
/// ranges of `part` (one owner per segment, same as scatter_add_rows_into),
/// or inline when the total work does not amortize a pool wakeup.
template <typename Run>
void for_each_segment_range(const SegmentPartition& part, long per_edge_work,
                            long total_work, const Run& run) {
  if (part.segments == 0) return;
  if (ThreadPool::global().num_workers() == 0 ||
      total_work < static_cast<long>(kMinParallelElems)) {
    run(0, part.segments);
    return;
  }
  const int min_cost =
      edge_grain(per_edge_work, static_cast<long>(kMinParallelElems));
  const std::vector<int> bounds = balanced_boundaries(
      part.offsets, ThreadPool::global().num_threads() * 4, min_cost);
  parallel_over_ranges(bounds, run);
}

}  // namespace

Matrix fused_gather_scatter(const Matrix& x, const std::vector<int>& src,
                            const SegmentPartition& dst_part,
                            const std::vector<float>& coeff) {
  GNNHLS_CHECK_EQ(static_cast<int>(dst_part.order.size()),
                  static_cast<int>(src.size()),
                  "fused_gather_scatter: partition covers different edges");
  GNNHLS_CHECK(coeff.empty() || coeff.size() == src.size(),
               "fused_gather_scatter: one coefficient per edge required");
  const int cols = x.cols();
  Matrix out(dst_part.segments, cols);
  const float* cf = coeff.empty() ? nullptr : coeff.data();
  const auto run = [&](int seg_lo, int seg_hi) {
    for (int s = seg_lo; s < seg_hi; ++s) {
      const int lo = dst_part.offsets[static_cast<std::size_t>(s)];
      const int hi = dst_part.offsets[static_cast<std::size_t>(s) + 1];
      float* o = out.row_ptr(s);
      for (int e = lo; e < hi; ++e) {
        const int edge = dst_part.order[static_cast<std::size_t>(e)];
        const int r = src[static_cast<std::size_t>(edge)];
        GNNHLS_CHECK(r >= 0 && r < x.rows(),
                     "fused_gather_scatter: bad source index");
        const float* srow = x.row_ptr(r);
        if (cf == nullptr) {
          for (int j = 0; j < cols; ++j) o[j] += srow[j];
        } else {
          // Round the product, then the add — the exact per-element
          // sequence of scale_rows followed by scatter_add.
          const float c = cf[static_cast<std::size_t>(edge)];
          for (int j = 0; j < cols; ++j) o[j] += c * srow[j];
        }
      }
    }
  };
  const long work = static_cast<long>(src.size()) * std::max(cols, 1) +
                    dst_part.segments;
  for_each_segment_range(dst_part, std::max(cols, 1), work, run);
  return out;
}

void fused_gather_scatter_backward_x(const Matrix& out_grad,
                                     const std::vector<int>& dst,
                                     const SegmentPartition& src_part,
                                     const std::vector<float>& coeff,
                                     Matrix& x_grad) {
  GNNHLS_CHECK_EQ(static_cast<int>(src_part.order.size()),
                  static_cast<int>(dst.size()),
                  "fused_gather_scatter_backward_x: partition/edge mismatch");
  GNNHLS_CHECK_EQ(x_grad.rows(), src_part.segments,
                  "fused_gather_scatter_backward_x: grad row mismatch");
  GNNHLS_CHECK_EQ(x_grad.cols(), out_grad.cols(),
                  "fused_gather_scatter_backward_x: column mismatch");
  GNNHLS_CHECK(coeff.empty() || coeff.size() == dst.size(),
               "fused_gather_scatter_backward_x: coefficient count mismatch");
  const int cols = out_grad.cols();
  const float* cf = coeff.empty() ? nullptr : coeff.data();
  const auto run = [&](int seg_lo, int seg_hi) {
    for (int u = seg_lo; u < seg_hi; ++u) {
      const int lo = src_part.offsets[static_cast<std::size_t>(u)];
      const int hi = src_part.offsets[static_cast<std::size_t>(u) + 1];
      float* g = x_grad.row_ptr(u);
      for (int e = lo; e < hi; ++e) {
        const int edge = src_part.order[static_cast<std::size_t>(e)];
        const int d = dst[static_cast<std::size_t>(edge)];
        GNNHLS_CHECK(d >= 0 && d < out_grad.rows(),
                     "fused_gather_scatter_backward_x: bad destination index");
        const float* grow = out_grad.row_ptr(d);
        if (cf == nullptr) {
          for (int j = 0; j < cols; ++j) g[j] += grow[j];
        } else {
          const float c = cf[static_cast<std::size_t>(edge)];
          for (int j = 0; j < cols; ++j) g[j] += c * grow[j];
        }
      }
    }
  };
  const long work = static_cast<long>(dst.size()) * std::max(cols, 1) +
                    src_part.segments;
  for_each_segment_range(src_part, std::max(cols, 1), work, run);
}

Matrix fused_gather_matmul_scatter(const Matrix& x, const Matrix& w,
                                   const std::vector<int>& src,
                                   const SegmentPartition& dst_part) {
  GNNHLS_CHECK_EQ(x.cols(), w.rows(),
                  "fused_gather_matmul_scatter: inner dimension mismatch");
  GNNHLS_CHECK_EQ(static_cast<int>(dst_part.order.size()),
                  static_cast<int>(src.size()),
                  "fused_gather_matmul_scatter: partition covers different "
                  "edges");
  const int K = x.cols();
  const int N = w.cols();
  Matrix out(dst_part.segments, N);
  const auto run = [&](int seg_lo, int seg_hi) {
    // One message-sized accumulator per task, reused across the range's
    // edges: the whole [E, N] message tensor of the unfused path shrinks to
    // N floats of hot cache.
    std::vector<float> tmp(static_cast<std::size_t>(N));
    for (int s = seg_lo; s < seg_hi; ++s) {
      const int lo = dst_part.offsets[static_cast<std::size_t>(s)];
      const int hi = dst_part.offsets[static_cast<std::size_t>(s) + 1];
      float* o = out.row_ptr(s);
      for (int e = lo; e < hi; ++e) {
        const int edge = dst_part.order[static_cast<std::size_t>(e)];
        const int r = src[static_cast<std::size_t>(edge)];
        GNNHLS_CHECK(r >= 0 && r < x.rows(),
                     "fused_gather_matmul_scatter: bad source index");
        const float* srow = x.row_ptr(r);
        // Complete the edge's message in tmp (ascending-k axpy chain from
        // zero, matmul's per-element order), then add it to the destination
        // row — the same two rounding steps as matmul-then-scatter. The
        // zero skip only changes the sign of exact zeros (sparse-matmul
        // latitude); x is post-ReLU sparse on the inner layers.
        std::fill(tmp.begin(), tmp.end(), 0.0F);
        for (int k = 0; k < K; ++k) {
          const float xv = srow[k];
          if (xv == 0.0F) continue;
          axpy_row(xv, w.row_ptr(k), tmp.data(), N);
        }
        for (int j = 0; j < N; ++j) o[j] += tmp[j];
      }
    }
  };
  const long per_edge = 2L * K * std::max(N, 1);
  const long total = static_cast<long>(src.size()) * per_edge;
  if (dst_part.segments == 0) return out;
  if (ThreadPool::global().num_workers() == 0 || total < kMinFlopsPerChunk) {
    run(0, dst_part.segments);
    return out;
  }
  const int min_cost = edge_grain(per_edge, kMinFlopsPerChunk);
  const std::vector<int> bounds = balanced_boundaries(
      dst_part.offsets, ThreadPool::global().num_threads() * 4, min_cost);
  parallel_over_ranges(bounds, run);
  return out;
}

void fused_gather_matmul_scatter_backward_x(const Matrix& out_grad,
                                            const Matrix& w,
                                            const std::vector<int>& dst,
                                            const SegmentPartition& src_part,
                                            Matrix& x_grad) {
  GNNHLS_CHECK_EQ(out_grad.cols(), w.cols(),
                  "fused_gather_matmul_scatter_backward_x: column mismatch");
  GNNHLS_CHECK_EQ(x_grad.cols(), w.rows(),
                  "fused_gather_matmul_scatter_backward_x: grad columns");
  GNNHLS_CHECK_EQ(x_grad.rows(), src_part.segments,
                  "fused_gather_matmul_scatter_backward_x: grad rows");
  GNNHLS_CHECK_EQ(static_cast<int>(src_part.order.size()),
                  static_cast<int>(dst.size()),
                  "fused_gather_matmul_scatter_backward_x: partition/edge "
                  "mismatch");
  const int K = w.rows();
  const int N = w.cols();
  const auto run = [&](int seg_lo, int seg_hi) {
    for (int u = seg_lo; u < seg_hi; ++u) {
      const int lo = src_part.offsets[static_cast<std::size_t>(u)];
      const int hi = src_part.offsets[static_cast<std::size_t>(u) + 1];
      float* g = x_grad.row_ptr(u);
      for (int e = lo; e < hi; ++e) {
        const int edge = src_part.order[static_cast<std::size_t>(e)];
        const int d = dst[static_cast<std::size_t>(edge)];
        GNNHLS_CHECK(d >= 0 && d < out_grad.rows(),
                     "fused_gather_matmul_scatter_backward_x: bad "
                     "destination index");
        const float* grow = out_grad.row_ptr(d);
        // matmul_transpose_b's column tile: four independent single-
        // accumulator dot chains (ascending j) share the streamed grad row.
        // Each x_grad element still receives exactly one rounded chain.
        int k = 0;
        for (; k + 4 <= K; k += 4) {
          const float* w0 = w.row_ptr(k);
          const float* w1 = w.row_ptr(k + 1);
          const float* w2 = w.row_ptr(k + 2);
          const float* w3 = w.row_ptr(k + 3);
          float acc0 = 0.0F, acc1 = 0.0F, acc2 = 0.0F, acc3 = 0.0F;
          for (int j = 0; j < N; ++j) {
            const float gv = grow[j];
            acc0 += gv * w0[j];
            acc1 += gv * w1[j];
            acc2 += gv * w2[j];
            acc3 += gv * w3[j];
          }
          g[k] += acc0;
          g[k + 1] += acc1;
          g[k + 2] += acc2;
          g[k + 3] += acc3;
        }
        for (; k < K; ++k) {
          const float* wr = w.row_ptr(k);
          float acc = 0.0F;
          for (int j = 0; j < N; ++j) acc += grow[j] * wr[j];
          g[k] += acc;
        }
      }
    }
  };
  const long per_edge = 2L * K * std::max(N, 1);
  const long total = static_cast<long>(dst.size()) * per_edge;
  if (src_part.segments == 0) return;
  if (ThreadPool::global().num_workers() == 0 || total < kMinFlopsPerChunk) {
    run(0, src_part.segments);
    return;
  }
  const int min_cost = edge_grain(per_edge, kMinFlopsPerChunk);
  const std::vector<int> bounds = balanced_boundaries(
      src_part.offsets, ThreadPool::global().num_threads() * 4, min_cost);
  parallel_over_ranges(bounds, run);
}

Matrix fused_gather_matmul_scatter_backward_w(const Matrix& x,
                                              const Matrix& out_grad,
                                              const std::vector<int>& src,
                                              const std::vector<int>& dst) {
  GNNHLS_CHECK_EQ(static_cast<int>(src.size()), static_cast<int>(dst.size()),
                  "fused_gather_matmul_scatter_backward_w: edge list "
                  "mismatch");
  const int K = x.cols();
  const int N = out_grad.cols();
  Matrix gw(K, N);
  // Deliberately serial and edge-outer, mirroring matmul_transpose_a (the
  // unfused weight-gradient kernel): the [K, N] output is cache-resident
  // while the edge stream is tall, and original edge order 0..E-1 is the
  // rounding order the unfused path commits to.
  for (std::size_t e = 0; e < src.size(); ++e) {
    const int r = src[e];
    const int d = dst[e];
    GNNHLS_CHECK(r >= 0 && r < x.rows(),
                 "fused_gather_matmul_scatter_backward_w: bad source index");
    GNNHLS_CHECK(d >= 0 && d < out_grad.rows(),
                 "fused_gather_matmul_scatter_backward_w: bad destination "
                 "index");
    const float* xrow = x.row_ptr(r);
    const float* grow = out_grad.row_ptr(d);
    for (int k = 0; k < K; ++k) {
      const float xv = xrow[k];
      if (xv == 0.0F) continue;
      float* orow = gw.row_ptr(k);
      for (int j = 0; j < N; ++j) orow[j] += xv * grow[j];
    }
  }
  return gw;
}

}  // namespace gnnhls
