// TCP serving front-end over ServingScheduler — the network half of the
// ROADMAP's multi-tenant serving tier.
//
// A TcpEndpoint owns a listening socket and serves the wire protocol of
// serve/wire.h with plain POSIX sockets (no dependencies): one accept-loop
// thread, and per accepted connection a reader thread plus a writer thread.
//
//   reader: recv -> WireDecoder -> decode_sample_payload (ONE decode; the
//           sample travels as shared_ptr<const Sample>, never deep-copied)
//           -> ServingScheduler::submit -> pending response queue
//   writer: waits on the pending futures IN ARRIVAL ORDER-ish (any ready
//           future is answered as soon as it resolves; responses may
//           therefore be reordered relative to requests — clients match on
//           the echoed request id) -> encode_response_frame -> send
//
// Backpressure: a connection may have at most cfg.max_inflight requests
// submitted-but-unanswered. The reader rejects request number
// max_inflight+1 immediately with kOverConnectionLimit WITHOUT submitting
// it to the scheduler, so one greedy client cannot monopolize the shared
// queue. Wire-level rejections (bad payload, bad model, over-limit) are
// answered inline in wire order; only scheduler-admitted requests occupy
// in-flight slots.
//
// Fault containment: any malformed input (garbage header, oversized length
// prefix, short body, or a stream that just stops mid-frame) poisons that
// connection's decoder — the endpoint counts a decode error, drains what it
// already accepted and closes that connection. Other connections and the
// scheduler are untouched. Mid-request disconnects are absorbed: the
// scheduler still serves the request, the writer's send fails, the counter
// write_failures records it, nothing crashes or leaks.
//
// Graceful drain: stop() (or the destructor) closes the listener, shuts
// down each connection's read side, then JOINS writers — every frame that
// was accepted and submitted gets its future resolved (the scheduler's own
// drain guarantees resolution) and its response written (or a counted
// write failure if the peer is gone). Stop the endpoint BEFORE the
// scheduler to drain with predictions; stopping the scheduler first is
// also safe — pending futures fail with SchedReject and drain as reject
// frames.
//
// Determinism: the endpoint never touches values. A prediction served over
// a loopback socket is bit-identical to sequential QorPredictor::predict —
// the payload codec round-trips tensors bitwise and the scheduler's own
// contract does the rest (gated for all 14 encoder kinds by
// tests/tcp_endpoint_test.cpp and bench_serving's socket arm).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs_config.h"
#include "serve/scheduler.h"
#include "serve/serve_stats.h"
#include "serve/status_names.h"
#include "serve/wire.h"

namespace gnnhls {

struct TcpEndpointConfig {
  /// Port to bind on 127.0.0.1. 0 = ephemeral (kernel-assigned; read it
  /// back with port() — tests and the loopback bench use this).
  int port = 0;
  /// listen() backlog.
  int backlog = 64;
  /// Per-connection cap on submitted-but-unanswered requests; requests
  /// beyond it are rejected with kOverConnectionLimit. >= 1.
  int max_inflight = 64;
  /// Largest accepted frame body; bigger length prefixes poison the
  /// connection with kOversized.
  std::size_t max_frame_bytes = kWireDefaultMaxBody;
  /// Evict decoded samples from FeatureCache::global() once answered.
  /// Default on — every wire sample has a fresh uid, so a long-running
  /// server would otherwise grow the cache per request. Tests that want to
  /// inspect the cache can turn it off.
  bool evict_features = true;
  /// Observability knobs (obs/obs_config.h). Note the STATS wire frame is
  /// part of the protocol, not of observability: it is always answered,
  /// rendering whatever registries back this endpoint and its scheduler
  /// (the global one when obs.metrics, the private ones otherwise).
  ObsConfig obs;
};

class TcpEndpoint {
 public:
  /// Binds, listens and starts the accept loop. The scheduler is borrowed
  /// and must outlive stop(). Throws std::runtime_error if the socket
  /// cannot be bound.
  TcpEndpoint(ServingScheduler& sched, TcpEndpointConfig cfg = {});

  /// stop()s if still running.
  ~TcpEndpoint();

  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  /// The bound port (the kernel's pick when cfg.port == 0).
  int port() const { return port_; }

  /// Graceful drain: stop accepting, close every connection's read side,
  /// answer everything already accepted, join all threads. Idempotent.
  void stop();

  /// Snapshot of the wire counters. Since PR 9 the counters are striped
  /// registry atomics (obs/metrics.h) updated lock-free on the hot paths;
  /// the snapshot is exact whenever the endpoint's threads are quiescent
  /// (connections drained, or after stop()) and monotonically fresh
  /// mid-flight.
  WireStats stats() const;

  /// The registry holding this endpoint's wire metrics:
  /// MetricsRegistry::global() when cfg.obs.metrics, else a private
  /// per-instance registry. Series carry an `ep="<instance>"` label.
  MetricsRegistry& metrics_registry() const { return *registry_; }

  /// What a STATS wire frame answers: this endpoint's registry rendered as
  /// text, plus the scheduler's registry when it is a different one.
  std::string render_stats_text() const;

  const TcpEndpointConfig& config() const { return cfg_; }

 private:
  struct Connection;

  /// Registry-backed counters behind the WireStats facade. Incremented
  /// without any lock (striped relaxed atomics).
  struct Metrics {
    Counter* connections_accepted;
    Counter* connections_closed;
    Counter* frames_in;
    Counter* frames_out;
    Counter* bytes_in;
    Counter* bytes_out;
    Counter* decode_errors;
    Counter* rejects_backpressure;
    Counter* rejects_payload;
    Counter* rejects_sched;
    Counter* responses_ok;
    Counter* write_failures;
    Counter* stats_requests;
    /// Responses by result code, one series per WireResult value
    /// (labels from serve/status_names.h).
    Counter* responses_by_result[kNumStatusNames];
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void writer_loop(std::shared_ptr<Connection> conn);
  /// Handles one decoded request frame on the reader thread: decode the
  /// payload, enforce backpressure, submit, enqueue the pending response.
  void handle_request(Connection& conn, RequestFrame&& req);
  /// Handles one STATS request frame on the reader thread: renders the
  /// registries and enqueues the pre-encoded response.
  void handle_stats_request(Connection& conn, const StatsFrame& req);
  /// Encodes + sends one response on the writer thread, updating stats.
  void write_response(Connection& conn, const ResponseFrame& resp);
  /// Sends pre-encoded frame bytes on the writer thread, updating stats.
  void write_raw_frame(Connection& conn, const std::string& bytes);

  ServingScheduler& sched_;
  const TcpEndpointConfig cfg_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::unique_ptr<MetricsRegistry> own_registry_;  // !cfg.obs.metrics
  MetricsRegistry* registry_ = nullptr;
  Metrics m_{};

  std::mutex conns_mu_;  // guards conns_ and stopping_
  std::vector<std::shared_ptr<Connection>> conns_;
  bool stopping_ = false;

  std::mutex stop_mu_;  // serializes concurrent stop() calls
  std::thread accept_thread_;
};

/// Minimal blocking client for the wire protocol — what the loopback tests,
/// the bench's socket arm and the serve_tcp example speak. One socket, not
/// thread-safe; NOT part of the serving surface (a real client just needs
/// the ~40 lines of framing in wire.h).
class TcpClient {
 public:
  /// Connects to 127.0.0.1:port. Throws std::runtime_error on failure.
  explicit TcpClient(int port);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Sends one request frame. Returns false if the connection is gone.
  bool send_request(const RequestFrame& req);
  /// Sends one STATS request frame (the metrics scrape).
  bool send_stats_request(std::uint64_t request_id);
  /// Sends raw bytes verbatim (fault-injection tests tear frames apart).
  bool send_raw(const std::string& bytes);
  /// Blocks for the next response frame. Returns false on EOF/poison.
  bool recv_response(ResponseFrame& out);
  /// Blocks for the next STATS response frame (skipping other frame
  /// types). Returns false on EOF/poison.
  bool recv_stats_response(StatsFrame& out);
  /// Half-close the write side (tells the server no more requests).
  void shutdown_write();
  /// Hard close (mid-request disconnect in fault tests).
  void close();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  WireDecoder decoder_;
};

}  // namespace gnnhls
