// Batched graph execution engine tests: segment-op gradients, GraphBatch
// disjoint-union round trips across the encoder zoo, thread-pool kernels
// and mini-batched training.
#include <cmath>

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "dataset/dataset.h"
#include "gnn/graph_batch.h"
#include "gnn/models.h"
#include "grad_check.h"
#include "support/parallel.h"

namespace gnnhls {
namespace {

using testing::expect_gradient_matches;

Matrix make_test_matrix(int rows, int cols, float scale = 1.0F) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m(r, c) = scale * (0.31F * static_cast<float>(r) -
                         0.17F * static_cast<float>(c) + 0.05F);
    }
  }
  return m;
}

// ----- segment-op gradients -----

TEST(SegmentOpsTest, SegmentSumRowsForwardAndGrad) {
  const std::vector<int> seg = {0, 1, 0, 2, 1};
  Tape tape;
  const Var a = tape.leaf(make_test_matrix(5, 3));
  const Var out = tape.segment_sum_rows(a, seg, 3);
  ASSERT_EQ(out.rows(), 3);
  ASSERT_EQ(out.cols(), 3);
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(out.value()(0, j),
                    a.value()(0, j) + a.value()(2, j));
    EXPECT_FLOAT_EQ(out.value()(1, j),
                    a.value()(1, j) + a.value()(4, j));
    EXPECT_FLOAT_EQ(out.value()(2, j), a.value()(3, j));
  }
  expect_gradient_matches(make_test_matrix(5, 3), [&](Tape& t, const Var& x) {
    const Var s = t.segment_sum_rows(x, seg, 3);
    return t.sum_all(t.mul(s, s));
  });
}

TEST(SegmentOpsTest, SegmentMeanRowsGradAndEmptySegment) {
  const std::vector<int> seg = {0, 0, 2, 2, 2};  // segment 1 empty
  Tape tape;
  const Var a = tape.leaf(make_test_matrix(5, 2));
  const Var out = tape.segment_mean_rows(a, seg, 3);
  ASSERT_EQ(out.rows(), 3);
  EXPECT_FLOAT_EQ(out.value()(1, 0), 0.0F);  // empty segment -> zeros
  EXPECT_FLOAT_EQ(out.value()(0, 1),
                  (a.value()(0, 1) + a.value()(1, 1)) / 2.0F);
  expect_gradient_matches(make_test_matrix(5, 2), [&](Tape& t, const Var& x) {
    const Var s = t.segment_mean_rows(x, seg, 3);
    return t.sum_all(t.mul(s, s));
  });
}

TEST(SegmentOpsTest, BroadcastRowsBySegmentGrad) {
  const std::vector<int> seg = {0, 1, 0, 2, 1, 2};
  Tape tape;
  const Var a = tape.leaf(make_test_matrix(3, 4));
  const Var out = tape.broadcast_rows_by_segment(a, seg);
  ASSERT_EQ(out.rows(), 6);
  for (std::size_t i = 0; i < seg.size(); ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(out.value()(static_cast<int>(i), j),
                      a.value()(seg[i], j));
    }
  }
  expect_gradient_matches(make_test_matrix(3, 4), [&](Tape& t, const Var& x) {
    const Var b = t.broadcast_rows_by_segment(x, seg);
    return t.sum_all(t.mul(b, b));
  });
}

TEST(SegmentOpsTest, SingleSegmentMatchesWholeMatrixOps) {
  const Matrix input = make_test_matrix(7, 3);
  const std::vector<int> seg(7, 0);
  Tape tape;
  const Var a = tape.leaf(input);
  const Matrix seg_sum = tape.segment_sum_rows(a, seg, 1).value();
  const Matrix plain_sum = tape.sum_rows(a).value();
  EXPECT_TRUE(seg_sum == plain_sum);  // bitwise: same accumulation order
  const Matrix seg_mean = tape.segment_mean_rows(a, seg, 1).value();
  const Matrix plain_mean = tape.mean_rows(a).value();
  EXPECT_TRUE(seg_mean == plain_mean);
}

TEST(SegmentOpsTest, BroadcastRejectsOutOfRangeSegment) {
  Tape tape;
  const Var a = tape.leaf(make_test_matrix(2, 2));
  EXPECT_THROW(tape.broadcast_rows_by_segment(a, {0, 2}),
               std::invalid_argument);
}

// ----- GraphBatch structure -----

std::vector<Sample> batch_samples() {
  std::vector<Sample> out;
  out.push_back(make_sample(generate_cdfg_program(11), GraphKind::kCdfg,
                            HlsConfig{}, "b0"));
  out.push_back(make_sample(generate_dfg_program(13), GraphKind::kDfg,
                            HlsConfig{}, "b1"));
  out.push_back(make_sample(generate_cdfg_program(29), GraphKind::kCdfg,
                            HlsConfig{}, "b2"));
  return out;
}

TEST(GraphBatchTest, DisjointUnionStructure) {
  const auto samples = batch_samples();
  const GraphBatch batch = GraphBatch::build(
      {&samples[0].tensors, &samples[1].tensors, &samples[2].tensors});
  const GraphTensors& m = batch.merged;

  int nodes = 0;
  std::size_t edges = 0;
  for (const auto& s : samples) {
    nodes += s.tensors.num_nodes;
    edges += s.tensors.src.size();
  }
  EXPECT_EQ(m.num_nodes, nodes);
  EXPECT_EQ(m.src.size(), edges);
  EXPECT_EQ(m.num_graphs, 3);
  ASSERT_EQ(batch.node_offset.size(), 4U);
  EXPECT_EQ(batch.node_offset[0], 0);
  EXPECT_EQ(batch.node_offset[3], nodes);

  // Every edge stays inside its member graph's node range.
  for (std::size_t e = 0; e < m.src.size(); ++e) {
    const int gs = m.graph_id[static_cast<std::size_t>(m.src[e])];
    const int gd = m.graph_id[static_cast<std::size_t>(m.dst[e])];
    EXPECT_EQ(gs, gd);
  }
  // graph_id segments follow node_offset.
  for (int g = 0; g < 3; ++g) {
    for (int v = batch.node_offset[static_cast<std::size_t>(g)];
         v < batch.node_offset[static_cast<std::size_t>(g) + 1]; ++v) {
      EXPECT_EQ(m.graph_id[static_cast<std::size_t>(v)], g);
    }
  }
  // Relation partition still covers every edge exactly once.
  std::size_t rel_total = 0;
  for (const auto& rel : m.relation_edges) {
    for (int e : rel) {
      ASSERT_GE(e, 0);
      ASSERT_LT(static_cast<std::size_t>(e), m.src.size());
    }
    rel_total += rel.size();
  }
  EXPECT_EQ(rel_total, edges);
  // Per-member PNA averages preserved.
  ASSERT_EQ(m.graph_avg_log_deg.size(), 3U);
  for (int g = 0; g < 3; ++g) {
    EXPECT_FLOAT_EQ(m.graph_avg_log_deg[static_cast<std::size_t>(g)],
                    samples[static_cast<std::size_t>(g)].tensors.avg_log_deg);
  }
}

TEST(GraphBatchTest, StackFeaturesRoundTrip) {
  const auto samples = batch_samples();
  std::vector<Matrix> feats;
  std::vector<const Matrix*> fparts;
  std::vector<const GraphTensors*> parts;
  for (const auto& s : samples) {
    feats.push_back(
        InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf));
    parts.push_back(&s.tensors);
  }
  for (const Matrix& f : feats) fparts.push_back(&f);
  const GraphBatch batch = GraphBatch::build(parts);
  const Matrix stacked = GraphBatch::stack_features(fparts);
  ASSERT_EQ(stacked.rows(), batch.num_nodes());
  for (int g = 0; g < batch.num_graphs(); ++g) {
    const Matrix back = batch.member_rows(stacked, g);
    EXPECT_TRUE(back == feats[static_cast<std::size_t>(g)]);
  }
}

// ----- batched == per-graph across the encoder zoo -----

class BatchRoundTripTest : public ::testing::TestWithParam<GnnKind> {};

TEST_P(BatchRoundTripTest, BatchedEncodeMatchesPerGraph) {
  const auto samples = batch_samples();
  Rng rng(17);
  EncoderConfig cfg;
  cfg.in_dim = InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
  cfg.hidden = 16;
  cfg.layers = 2;
  const auto enc = make_encoder(GetParam(), cfg, rng);

  std::vector<Matrix> feats;
  std::vector<const Matrix*> fparts;
  std::vector<const GraphTensors*> parts;
  for (const auto& s : samples) {
    feats.push_back(
        InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf));
    parts.push_back(&s.tensors);
  }
  for (const Matrix& f : feats) fparts.push_back(&f);
  const GraphBatch batch = GraphBatch::build(parts);

  Tape batch_tape;
  Rng drop(1);
  const Matrix batched =
      enc->encode(batch_tape, batch.merged,
                  batch_tape.leaf(GraphBatch::stack_features(fparts)), drop,
                  false)
          .value();
  ASSERT_EQ(batched.rows(), batch.num_nodes());

  for (std::size_t g = 0; g < samples.size(); ++g) {
    Tape tape;
    Rng d(1);
    const Matrix single =
        enc->encode(tape, samples[g].tensors, tape.leaf(feats[g]), d, false)
            .value();
    const Matrix member = batch.member_rows(batched, static_cast<int>(g));
    ASSERT_TRUE(single.same_shape(member));
    for (int i = 0; i < single.rows(); ++i) {
      for (int j = 0; j < single.cols(); ++j) {
        EXPECT_NEAR(single(i, j), member(i, j), 1e-4F)
            << gnn_kind_name(GetParam()) << " graph " << g << " node " << i;
      }
    }
  }
}

TEST_P(BatchRoundTripTest, RegressorBatchPredictionsMatchPerGraph) {
  const auto samples = batch_samples();
  Rng rng(23);
  ModelConfig cfg;
  cfg.kind = GetParam();
  cfg.hidden = 16;
  cfg.layers = 2;
  GraphRegressor model(
      cfg, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf), rng);

  std::vector<Matrix> feats;
  std::vector<const Matrix*> fparts;
  std::vector<const GraphTensors*> parts;
  for (const auto& s : samples) {
    feats.push_back(
        InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf));
    parts.push_back(&s.tensors);
  }
  for (const Matrix& f : feats) fparts.push_back(&f);
  const GraphBatch batch = GraphBatch::build(parts);
  const std::vector<float> batched =
      model.predict_batch(batch.merged, GraphBatch::stack_features(fparts));
  ASSERT_EQ(batched.size(), samples.size());
  for (std::size_t g = 0; g < samples.size(); ++g) {
    const float single = model.predict(samples[g].tensors, feats[g]);
    EXPECT_NEAR(batched[g], single, 1e-4F) << gnn_kind_name(GetParam());
  }
}

TEST_P(BatchRoundTripTest, BatchedTrainStepBackpropagates) {
  const auto samples = batch_samples();
  Rng rng(41);
  ModelConfig cfg;
  cfg.kind = GetParam();
  cfg.hidden = 16;
  cfg.layers = 2;
  GraphRegressor model(
      cfg, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf), rng);

  std::vector<Matrix> feats;
  std::vector<const Matrix*> fparts;
  std::vector<const GraphTensors*> parts;
  for (const auto& s : samples) {
    feats.push_back(
        InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf));
    parts.push_back(&s.tensors);
  }
  for (const Matrix& f : feats) fparts.push_back(&f);
  const GraphBatch batch = GraphBatch::build(parts);
  const Matrix stacked = GraphBatch::stack_features(fparts);
  const Matrix target(batch.num_graphs(), 1, 2.0F);

  Tape tape;
  Rng drop(1);
  const Var pred = model.forward(tape, batch.merged, stacked, drop, true);
  ASSERT_EQ(pred.rows(), batch.num_graphs());
  tape.backward(tape.mse_loss(pred, target));
  int with_grad = 0;
  for (const auto* p : model.parameters()) {
    const double norm = p->var().grad().squared_norm();
    EXPECT_TRUE(std::isfinite(norm));
    if (norm > 0.0) ++with_grad;
  }
  // Gradient must reach most parameter tensors through the batched tape
  // (some relation weights legitimately get none if a relation is absent).
  EXPECT_GT(with_grad, static_cast<int>(model.parameters().size()) / 2)
      << gnn_kind_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BatchRoundTripTest, ::testing::ValuesIn(all_gnn_kinds()),
    [](const ::testing::TestParamInfo<GnnKind>& info) {
      std::string name = gnn_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(BatchRoundTripTest, SingletonBatchIsBitwiseIdentical) {
  const auto samples = batch_samples();
  Rng rng(31);
  ModelConfig cfg;
  cfg.kind = GnnKind::kGcnVirtual;  // exercises the virtual-node path
  cfg.hidden = 16;
  cfg.layers = 2;
  GraphRegressor model(
      cfg, InputFeatureBuilder::feature_dim(Approach::kOffTheShelf), rng);
  const Matrix feats =
      InputFeatureBuilder::build(samples[0].graph(), Approach::kOffTheShelf);
  const GraphBatch batch = GraphBatch::build({&samples[0].tensors});
  const Matrix stacked = GraphBatch::stack_features({&feats});
  EXPECT_EQ(model.predict(batch.merged, stacked),
            model.predict(samples[0].tensors, feats));
}

// ----- thread pool -----

TEST(ThreadPoolTest, ParallelForCoversRangeOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, 1000, 1, [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                 [&](int lo, int) {
                                   if (lo == 0) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after an exception.
  int sum = 0;
  std::mutex mu;
  pool.parallel_for(0, 10, 1, [&](int lo, int hi) {
    std::lock_guard<std::mutex> lock(mu);
    for (int i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, MatmulBitwiseIdenticalAcrossThreadCounts) {
  Rng rng(5);
  const Matrix a = Matrix::randn(93, 77, rng);
  const Matrix b = Matrix::randn(77, 85, rng);
  const Matrix c = Matrix::randn(93, 41, rng);  // for a^T * c
  ThreadPool::set_global_threads(1);
  const Matrix serial = matmul(a, b);
  const Matrix serial_ta = matmul_transpose_a(a, c);
  ThreadPool::set_global_threads(4);
  const Matrix parallel = matmul(a, b);
  EXPECT_TRUE(serial == parallel);
  const Matrix parallel_ta = matmul_transpose_a(a, c);
  EXPECT_TRUE(serial_ta == parallel_ta);
  ThreadPool::set_global_threads(0);  // restore default
}

TEST(MatmulTest, SparseOperandMatchesDense) {
  Rng rng(7);
  Matrix a = Matrix::randn(40, 30, rng);
  // Zero out ~70% of a to trigger the sparse skip path.
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i % 10 < 7) a.data()[i] = 0.0F;
  }
  const Matrix b = Matrix::randn(30, 25, rng);
  const Matrix fast = matmul(a, b);
  // Dense reference computed by hand.
  Matrix ref(40, 25);
  for (int i = 0; i < 40; ++i) {
    for (int k = 0; k < 30; ++k) {
      for (int j = 0; j < 25; ++j) ref(i, j) += a(i, k) * b(k, j);
    }
  }
  for (int i = 0; i < ref.rows(); ++i) {
    for (int j = 0; j < ref.cols(); ++j) {
      EXPECT_NEAR(ref(i, j), fast(i, j), 1e-4F);
    }
  }
}

// ----- mini-batched training end to end -----

TEST(BatchedTrainingTest, BatchSizeAboveOneLearns) {
  SyntheticDatasetConfig dcfg;
  dcfg.kind = GraphKind::kDfg;
  dcfg.num_graphs = 64;
  dcfg.seed = 4321;
  dcfg.progen.min_ops = 10;
  dcfg.progen.max_ops = 30;
  const auto samples = build_synthetic_dataset(dcfg);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 5);

  ModelConfig mc;
  mc.kind = GnnKind::kGcn;
  mc.hidden = 16;
  mc.layers = 2;
  TrainConfig tc;
  tc.epochs = 40;
  tc.lr = 1e-2F;
  tc.seed = 77;
  tc.batch_size = 8;
  QorPredictor predictor(Approach::kOffTheShelf, mc, tc);
  const double val = predictor.fit(samples, split, Metric::kLut);
  EXPECT_TRUE(std::isfinite(val));
  EXPECT_LT(predictor.evaluate_mape(samples, split.test), 0.8);
}

// ----- deterministic parallel kernels (fixed-order partition reduction) ----
// The segment kernels and the blocked matmul must be bit-identical to the
// serial reference at every thread-pool width, including on adversarially
// skewed inputs: power-law in-degree (one hub destination owns most edges,
// stressing the edge-count-balanced range splitter), empty segments, and
// degenerate single-node graphs.

/// Restores the default global pool when a test resizes it.
struct KernelPoolGuard {
  explicit KernelPoolGuard(int threads) {
    ThreadPool::set_global_threads(threads);
  }
  ~KernelPoolGuard() { ThreadPool::set_global_threads(0); }
};

constexpr int kKernelThreadCounts[] = {1, 2, 4, 8};

struct SegmentLayout {
  const char* name;
  int segments;
  std::vector<int> seg;
};

std::vector<SegmentLayout> adversarial_layouts() {
  std::vector<SegmentLayout> layouts;
  {
    // Power-law: destination 0 is a hub with ~80% of all rows; the rest
    // spread thinly. Equal-row chunking would serialize on the hub's range.
    SegmentLayout l{"power-law hub", 64, {}};
    Rng rng(11);
    for (int i = 0; i < 4096; ++i) {
      l.seg.push_back(rng.bernoulli(0.8) ? 0 : rng.uniform_int(1, 63));
    }
    layouts.push_back(std::move(l));
  }
  {
    // Every third segment empty, rows hitting only the others.
    SegmentLayout l{"empty segments", 48, {}};
    for (int i = 0; i < 1500; ++i) {
      const int s = (i * 7) % 48;
      l.seg.push_back(s % 3 == 0 ? s + 1 : s);
    }
    layouts.push_back(std::move(l));
  }
  // Single-node graph: one row, one segment.
  layouts.push_back(SegmentLayout{"single node", 1, {0}});
  // Single destination for many rows (complete star).
  layouts.push_back(SegmentLayout{"single segment", 1,
                                  std::vector<int>(777, 0)});
  return layouts;
}

TEST(DeterministicKernelsTest, ScatterAddBitIdenticalAcrossThreadCounts) {
  for (const SegmentLayout& l : adversarial_layouts()) {
    Rng rng(23);
    const Matrix src =
        Matrix::randn(static_cast<int>(l.seg.size()), 48, rng);
    Matrix ref = Matrix::zeros(l.segments, 48);
    scatter_add_rows_serial(src, l.seg, ref);
    const SegmentPartitionPtr part = make_segment_partition(l.seg, l.segments);
    for (int threads : kKernelThreadCounts) {
      KernelPoolGuard pool(threads);
      Matrix out = Matrix::zeros(l.segments, 48);
      scatter_add_rows_into(src, *part, out);
      EXPECT_TRUE(out == ref) << l.name << " @ " << threads << " threads";
      Matrix out_auto = Matrix::zeros(l.segments, 48);
      scatter_add_rows_auto(src, l.seg, nullptr, out_auto);
      EXPECT_TRUE(out_auto == ref)
          << l.name << " (on-demand partition) @ " << threads << " threads";
    }
  }
}

TEST(DeterministicKernelsTest, SegmentOpGradsBitIdenticalAcrossThreadCounts) {
  for (const SegmentLayout& l : adversarial_layouts()) {
    Rng rng(29);
    const Matrix input =
        Matrix::randn(static_cast<int>(l.seg.size()), 24, rng);
    const SegmentPartitionPtr part = make_segment_partition(l.seg, l.segments);
    // Forward + backward through scatter, gather and mean at each width;
    // threads=1 is the serial baseline the others must match bitwise.
    Matrix base_value, base_grad;
    for (int threads : kKernelThreadCounts) {
      KernelPoolGuard pool(threads);
      Var leaf = make_leaf(input, /*requires_grad=*/true);
      Tape tape;
      const Var summed = tape.scatter_add_rows(leaf, l.seg, l.segments, part);
      const Var spread = tape.gather_rows(summed, l.seg, part);
      const Var mean = tape.segment_mean(spread, l.seg, l.segments, part);
      const Var loss = tape.sum_all(tape.mul(mean, mean));
      tape.backward(loss);
      if (threads == 1) {
        base_value = mean.value();
        base_grad = leaf.grad();
      } else {
        EXPECT_TRUE(mean.value() == base_value)
            << l.name << " forward @ " << threads << " threads";
        EXPECT_TRUE(leaf.grad() == base_grad)
            << l.name << " grad @ " << threads << " threads";
      }
    }
  }
}

TEST(DeterministicKernelsTest, CachedPartitionMatchesOnDemand) {
  // The cached-partition fast path and the partitionless path must agree
  // bitwise — the partition only changes scheduling, never results.
  const SegmentLayout l = adversarial_layouts().front();
  Rng rng(31);
  const Matrix input = Matrix::randn(static_cast<int>(l.seg.size()), 16, rng);
  KernelPoolGuard pool(4);
  const SegmentPartitionPtr part = make_segment_partition(l.seg, l.segments);
  Var leaf_a = make_leaf(input, true);
  Tape ta;
  ta.backward(ta.sum_all(ta.scatter_add_rows(leaf_a, l.seg, l.segments,
                                             part)));
  Var leaf_b = make_leaf(input, true);
  Tape tb;
  tb.backward(tb.sum_all(tb.scatter_add_rows(leaf_b, l.seg, l.segments)));
  EXPECT_TRUE(leaf_a.grad() == leaf_b.grad());
}

TEST(DeterministicKernelsTest, BlockedMatmulMatchesReference) {
  Rng rng(37);
  // Shapes around the hot [N,hidden]x[hidden,hidden] profile, plus odd
  // sizes that exercise the row-tile and column-tile tail paths.
  const int shapes[][3] = {
      {256, 64, 64}, {301, 96, 96}, {5, 3, 2}, {63, 300, 300}, {1, 1, 1}};
  for (const auto& s : shapes) {
    const Matrix a = Matrix::randn(s[0], s[1], rng);
    const Matrix b = Matrix::randn(s[1], s[2], rng);
    const Matrix bt = Matrix::randn(s[2], s[1], rng);
    const Matrix ref = matmul_reference(a, b);
    const Matrix ref_tb = matmul_transpose_b_reference(a, bt);
    for (int threads : kKernelThreadCounts) {
      KernelPoolGuard pool(threads);
      EXPECT_TRUE(matmul(a, b) == ref)
          << s[0] << "x" << s[1] << "x" << s[2] << " @ " << threads;
      EXPECT_TRUE(matmul_transpose_b(a, bt) == ref_tb)
          << s[0] << "x" << s[1] << "x" << s[2] << " @ " << threads
          << " (transpose_b)";
    }
  }
}

TEST(DeterministicKernelsTest, EncoderForwardBitIdenticalAcrossThreadCounts) {
  // End-to-end: a full batched GCN forward (gathers, scatters, virtual-node
  // segment means, readout) must not depend on the pool width.
  const auto samples = batch_samples();
  std::vector<const GraphTensors*> parts;
  std::vector<const Matrix*> fparts;
  std::vector<Matrix> feats;
  for (const auto& s : samples) {
    feats.push_back(
        InputFeatureBuilder::build(s.graph(), Approach::kOffTheShelf));
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    parts.push_back(&samples[i].tensors);
    fparts.push_back(&feats[i]);
  }
  const GraphBatch batch = GraphBatch::build(parts);
  const Matrix stacked = GraphBatch::stack_features(fparts);
  Rng mrng(41);
  ModelConfig mc;
  mc.kind = GnnKind::kGcnVirtual;
  mc.hidden = 32;
  mc.layers = 2;
  const GraphRegressor model(mc, stacked.cols(), mrng);
  std::vector<float> base;
  for (int threads : kKernelThreadCounts) {
    KernelPoolGuard pool(threads);
    const std::vector<float> pred = model.predict_batch(batch.merged, stacked);
    if (threads == 1) {
      base = pred;
    } else {
      EXPECT_EQ(pred, base) << "@ " << threads << " threads";
    }
  }
}

TEST(BatchedTrainingTest, HierarchicalPathTrainsBatched) {
  SyntheticDatasetConfig dcfg;
  dcfg.kind = GraphKind::kDfg;
  dcfg.num_graphs = 32;
  dcfg.seed = 999;
  dcfg.progen.min_ops = 8;
  dcfg.progen.max_ops = 24;
  const auto samples = build_synthetic_dataset(dcfg);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 3);

  ModelConfig mc;
  mc.kind = GnnKind::kGcn;
  mc.hidden = 12;
  mc.layers = 2;
  TrainConfig tc;
  tc.epochs = 10;
  tc.lr = 1e-2F;
  tc.seed = 7;
  tc.batch_size = 4;
  QorPredictor predictor(Approach::kKnowledgeInfused, mc, tc);
  predictor.fit(samples, split, Metric::kLut);
  for (int i : split.test) {
    const double p = predictor.predict(samples[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(std::isfinite(p));
  }
}

}  // namespace
}  // namespace gnnhls
