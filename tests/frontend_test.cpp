#include <gtest/gtest.h>

#include "frontend/lower.h"

namespace gnnhls {
namespace {

/// out = in0 * in1 + 5
Function simple_dfg_function() {
  Function f;
  f.name = "mac";
  f.params.push_back(Param{"in0", ScalarType{32, true}, 0, false});
  f.params.push_back(Param{"in1", ScalarType{32, true}, 0, false});
  f.body.push_back(decl("t", ScalarType{32, true},
                        bin(BinOpKind::kMul, var("in0"), var("in1"))));
  f.body.push_back(decl("u", ScalarType{32, true},
                        bin(BinOpKind::kAdd, var("t"), lit(5))));
  f.body.push_back(ret(var("u")));
  return f;
}

/// acc = 0; for (i = 0; i < 10; ++i) acc = acc + in0; return acc;
Function simple_loop_function() {
  Function f;
  f.name = "accum";
  f.params.push_back(Param{"in0", ScalarType{32, true}, 0, false});
  f.body.push_back(decl("acc", ScalarType{32, true}, lit(0)));
  std::vector<StmtPtr> body;
  body.push_back(assign("acc", bin(BinOpKind::kAdd, var("acc"), var("in0"))));
  f.body.push_back(for_stmt("i", 0, 10, 1, std::move(body)));
  f.body.push_back(ret(var("acc")));
  return f;
}

Function branch_function() {
  Function f;
  f.name = "branchy";
  f.params.push_back(Param{"in0", ScalarType{32, true}, 0, false});
  f.body.push_back(decl("x", ScalarType{32, true}, lit(1)));
  std::vector<StmtPtr> then_body, else_body;
  then_body.push_back(assign("x", bin(BinOpKind::kAdd, var("x"), var("in0"))));
  else_body.push_back(assign("x", bin(BinOpKind::kMul, var("x"), lit(3))));
  f.body.push_back(if_stmt(bin(BinOpKind::kGt, var("in0"), lit(0)),
                           std::move(then_body), std::move(else_body)));
  f.body.push_back(ret(var("x")));
  return f;
}

int count_opcode(const IrGraph& g, Opcode op) {
  int n = 0;
  for (const auto& node : g.nodes()) {
    if (node.opcode == op) ++n;
  }
  return n;
}

TEST(LowerDfgTest, ProducesAcyclicDataflow) {
  const Function f = simple_dfg_function();
  const LoweredProgram p = lower_to_dfg(f);
  EXPECT_EQ(p.graph.kind(), GraphKind::kDfg);
  EXPECT_TRUE(p.graph.forward_edges_acyclic());
  EXPECT_EQ(p.graph.count_back_edges(), 0);
  EXPECT_EQ(count_opcode(p.graph, Opcode::kMul), 1);
  EXPECT_EQ(count_opcode(p.graph, Opcode::kAdd), 1);
  EXPECT_EQ(count_opcode(p.graph, Opcode::kReadPort), 2);
  EXPECT_EQ(count_opcode(p.graph, Opcode::kWritePort), 1);
  EXPECT_EQ(static_cast<int>(p.blocks.size()), 1);
}

TEST(LowerDfgTest, StartOfPathOnSources) {
  const LoweredProgram p = lower_to_dfg(simple_dfg_function());
  for (int i = 0; i < p.graph.num_nodes(); ++i) {
    const IrNode& n = p.graph.node(i);
    if (n.opcode == Opcode::kReadPort || n.opcode == Opcode::kConst) {
      EXPECT_TRUE(n.is_start_of_path) << "node " << i;
    }
    if (n.opcode == Opcode::kMul) EXPECT_FALSE(n.is_start_of_path);
  }
}

TEST(LowerDfgTest, ConstantsAreShared) {
  Function f;
  f.params.push_back(Param{"a", ScalarType{32, true}, 0, false});
  // 7 used twice -> one const node.
  f.body.push_back(decl("x", ScalarType{32, true},
                        bin(BinOpKind::kAdd, var("a"), lit(7))));
  f.body.push_back(decl("y", ScalarType{32, true},
                        bin(BinOpKind::kMul, var("x"), lit(7))));
  f.body.push_back(ret(var("y")));
  const LoweredProgram p = lower_to_dfg(f);
  EXPECT_EQ(count_opcode(p.graph, Opcode::kConst), 1);
}

TEST(LowerDfgTest, RejectsControlFlow) {
  EXPECT_THROW(lower_to_dfg(simple_loop_function()), std::invalid_argument);
}

TEST(LowerDfgTest, ClusterGroupIsDepthBucket) {
  const LoweredProgram p = lower_to_dfg(simple_dfg_function());
  int max_cluster = 0;
  for (const auto& n : p.graph.nodes()) {
    max_cluster = std::max(max_cluster, n.cluster_group);
  }
  // mul -> add -> write port gives depth >= 2 somewhere.
  EXPECT_GE(max_cluster, 2);
}

TEST(LowerCdfgTest, LoopCreatesBackEdgesAndPhis) {
  const LoweredProgram p = lower_to_cdfg(simple_loop_function());
  EXPECT_EQ(p.graph.kind(), GraphKind::kCdfg);
  EXPECT_GE(p.graph.count_back_edges(), 2);  // control latch + carried acc/i
  EXPECT_GE(count_opcode(p.graph, Opcode::kPhi), 2);  // acc and i
  EXPECT_GE(count_opcode(p.graph, Opcode::kBlock), 4);
  EXPECT_TRUE(p.graph.forward_edges_acyclic());
}

TEST(LowerCdfgTest, LoopBlocksCarryTripCounts) {
  const LoweredProgram p = lower_to_cdfg(simple_loop_function());
  bool found_body = false;
  for (const auto& b : p.blocks) {
    if (b.loop_depth == 1 && !b.is_loop_header && b.exec_count >= 10.0) {
      found_body = true;
    }
  }
  EXPECT_TRUE(found_body);
}

TEST(LowerCdfgTest, BranchCreatesMergePhi) {
  const LoweredProgram p = lower_to_cdfg(branch_function());
  EXPECT_EQ(count_opcode(p.graph, Opcode::kPhi), 1);
  EXPECT_GE(count_opcode(p.graph, Opcode::kBr), 3);  // cond + two merges
  EXPECT_EQ(p.graph.count_back_edges(), 0);  // no loop
  EXPECT_TRUE(p.graph.forward_edges_acyclic());
}

TEST(LowerCdfgTest, ControlEdgesLinkBlocks) {
  const LoweredProgram p = lower_to_cdfg(branch_function());
  int control_edges = 0;
  for (const auto& e : p.graph.edges()) {
    if (e.type == EdgeType::kControl) ++control_edges;
  }
  EXPECT_GE(control_edges, 6);
}

TEST(LowerCdfgTest, ArrayAccessesGetMemoryEdges) {
  Function f;
  f.params.push_back(Param{"in0", ScalarType{32, true}, 0, false});
  f.body.push_back(decl_array("buf", ScalarType{32, true}, 16));
  std::vector<StmtPtr> body;
  body.push_back(assign_array("buf", bin(BinOpKind::kAnd, var("i"), lit(15)),
                              var("i")));
  body.push_back(decl("r", ScalarType{32, true},
                      aref("buf", bin(BinOpKind::kAnd, var("in0"), lit(15)))));
  f.body.push_back(for_stmt("i", 0, 16, 1, std::move(body)));
  f.body.push_back(ret(var("in0")));
  const LoweredProgram p = lower_to_cdfg(f);
  int memory_edges = 0;
  for (const auto& e : p.graph.edges()) {
    if (e.type == EdgeType::kMemory) ++memory_edges;
  }
  EXPECT_GE(memory_edges, 1);
  EXPECT_GE(count_opcode(p.graph, Opcode::kLoad), 1);
  EXPECT_GE(count_opcode(p.graph, Opcode::kStore), 1);
  EXPECT_EQ(count_opcode(p.graph, Opcode::kAlloca), 1);
}

TEST(LowerCdfgTest, StraightLineBodyYieldsSingleBlockCdfg) {
  const LoweredProgram p = lower_to_cdfg(simple_dfg_function());
  EXPECT_EQ(static_cast<int>(p.blocks.size()), 1);
  EXPECT_EQ(count_opcode(p.graph, Opcode::kBlock), 1);
}

TEST(LowerDispatchTest, PicksKindFromControlFlow) {
  EXPECT_EQ(lower(simple_dfg_function()).graph.kind(), GraphKind::kDfg);
  EXPECT_EQ(lower(simple_loop_function()).graph.kind(), GraphKind::kCdfg);
}

TEST(LowerTest, UndefinedVariableThrows) {
  Function f;
  f.body.push_back(ret(var("nope")));
  EXPECT_THROW(lower_to_dfg(f), std::invalid_argument);
}

TEST(LowerTest, UndefinedArrayThrows) {
  Function f;
  f.body.push_back(decl("x", ScalarType{32, true}, aref("ghost", lit(0))));
  EXPECT_THROW(lower_to_dfg(f), std::invalid_argument);
}

TEST(AstTest, TripCountArithmetic) {
  const auto s = for_stmt("i", 0, 10, 3, {});
  EXPECT_EQ(s->trip_count(), 4);  // 0,3,6,9
  const auto s2 = for_stmt("i", 5, 5, 1, {});
  EXPECT_EQ(s2->trip_count(), 0);
}

TEST(AstTest, CloneIsDeep) {
  ExprPtr e = bin(BinOpKind::kAdd, var("a"), lit(3));
  ExprPtr c = e->clone();
  e->children[0]->name = "changed";
  EXPECT_EQ(c->children[0]->name, "a");
}

}  // namespace
}  // namespace gnnhls
