// Precomputed message-passing views of a finalized IrGraph.
//
// Built once per graph and shared by all encoders: flat edge arrays, edge
// arrays augmented with self loops (GAT/GCN-style layers), symmetric GCN
// normalization coefficients, per-relation edge partitions (RGCN / GGNN /
// FiLM) and the degree scalers used by PNA.
#pragma once

#include <vector>

#include "graph/ir_graph.h"
#include "tensor/segment_ops.h"

namespace gnnhls {

struct GraphTensors {
  int num_nodes = 0;

  // plain directed edges
  std::vector<int> src, dst;

  // edges + one self loop per node (for attention/convolution layers that
  // need a node to see itself)
  std::vector<int> src_self, dst_self;

  // GCN symmetric normalization: coeff per plain edge, self-loop coeff per
  // node, using deg(v) = in_degree(v) + 1.
  std::vector<float> gcn_coeff;
  std::vector<float> gcn_self_coeff;

  // edge ids grouped by relation (edge type x back-edge flag)
  std::vector<std::vector<int>> relation_edges;

  // Per-relation endpoint views of relation_edges —
  // relation_src[r][i] == src[relation_edges[r][i]] — plus their cached
  // partitions (by src and by dst, over num_nodes). Built by
  // build_partitions() so the RGCN/GGNN/FiLM relation loops and the fused
  // executor reuse one plan per relation instead of rebuilding endpoint
  // arrays and scatter plans every layer of every forward. Empty relations
  // get empty views and null partitions.
  std::vector<std::vector<int>> relation_src, relation_dst;
  std::vector<SegmentPartitionPtr> relation_src_part, relation_dst_part;

  // PNA degree scalers: log(in_degree + 1) per node and its graph average.
  std::vector<float> log_deg;
  float avg_log_deg = 1.0F;

  // Batch segments. A GraphTensors may describe the disjoint union of
  // several member graphs (see gnn/graph_batch.h): graph_id maps every node
  // to its member graph and graph_avg_log_deg holds each member's PNA
  // average so batched degree scalers stay segment-correct. A single graph
  // is the 1-member special case (graph_id all zero), so every encoder runs
  // the same code path batched and unbatched.
  int num_graphs = 1;
  std::vector<int> graph_id;               // per node, size num_nodes
  std::vector<float> graph_avg_log_deg;    // per member graph, size num_graphs

  // Cached destination partitions for the parallel segment kernels
  // (tensor/segment_ops.h): stable groupings of the edge arrays by endpoint
  // and of nodes by member graph, built once per graph/batch and reused by
  // every encoder layer, epoch and serving forward. Shared const state —
  // safe to read from concurrent tapes. Null on hand-assembled tensors
  // (the autograd ops then fall back to build-on-demand; results are
  // bit-identical either way).
  SegmentPartitionPtr src_part;       // edges by src        (over num_nodes)
  SegmentPartitionPtr dst_part;       // edges by dst        (over num_nodes)
  SegmentPartitionPtr src_self_part;  // self-loop-augmented edges by src
  SegmentPartitionPtr dst_self_part;  // self-loop-augmented edges by dst
  SegmentPartitionPtr graph_part;     // nodes by graph_id   (over num_graphs)

  /// Fills the cached partitions from the current edge/graph_id arrays.
  /// Called by build() and GraphBatch::build(); call it yourself after
  /// assembling a GraphTensors by hand if you want the cached plans.
  void build_partitions();

  static GraphTensors build(const IrGraph& graph);
};

}  // namespace gnnhls
