#include "serve/scheduler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "gnn/mp_executor.h"
#include "obs/trace.h"
#include "serve/status_names.h"
#include "support/arena.h"
#include "support/check.h"

namespace gnnhls {

std::string admit_status_name(AdmitStatus s) {
  // Shared table with the wire results (serve/status_names.h); kAccepted
  // keeps its historical "accepted" spelling (wire code 0 is "ok").
  if (s == AdmitStatus::kAccepted) return "accepted";
  return status_name(static_cast<std::uint32_t>(s));
}

ServingScheduler::ServingScheduler(std::vector<const QorPredictor*> models,
                                   SchedulerConfig cfg)
    : models_(std::move(models)),
      cfg_(cfg),
      epoch_(std::chrono::steady_clock::now()),
      window_(cfg.batch_window_us, cfg.adaptive_window) {
  GNNHLS_CHECK(!models_.empty(), "SchedulerConfig: at least one model");
  for (const QorPredictor* m : models_) {
    GNNHLS_CHECK(m != nullptr, "SchedulerConfig: null model");
  }
  GNNHLS_CHECK(cfg_.workers >= 1, "SchedulerConfig: workers must be >= 1");
  GNNHLS_CHECK(cfg_.max_batch >= 1, "SchedulerConfig: max_batch must be >= 1");
  GNNHLS_CHECK(cfg_.batch_window_us >= 0,
               "SchedulerConfig: batch_window_us must be >= 0");

  // now_us() reads 0 right here, so the collector's clock IS the offset
  // between the two timebases.
  trace_offset_us_ = TraceCollector::global().now_us();

  if (cfg_.obs.metrics) {
    registry_ = &MetricsRegistry::global();
  } else {
    own_registry_ = std::make_unique<MetricsRegistry>();
    registry_ = own_registry_.get();
  }
  const std::string inst =
      "sched=\"" + std::to_string(MetricsRegistry::next_instance_id()) + "\"";
  m_.submitted = registry_->counter("gnnhls_sched_submitted_total", inst);
  m_.completed = registry_->counter("gnnhls_sched_completed_total", inst);
  m_.completed_in_deadline =
      registry_->counter("gnnhls_sched_completed_in_deadline_total", inst);
  m_.shed_expired = registry_->counter("gnnhls_sched_shed_expired_total", inst);
  m_.shed_capacity =
      registry_->counter("gnnhls_sched_shed_capacity_total", inst);
  m_.rejected_shutdown =
      registry_->counter("gnnhls_sched_rejected_shutdown_total", inst);
  m_.shed_in_queue =
      registry_->counter("gnnhls_sched_shed_in_queue_total", inst);
  m_.batches = registry_->counter("gnnhls_sched_batches_total", inst);
  m_.flush_full = registry_->counter("gnnhls_sched_flush_full_total", inst);
  m_.flush_timeout =
      registry_->counter("gnnhls_sched_flush_timeout_total", inst);
  m_.flush_drain = registry_->counter("gnnhls_sched_flush_drain_total", inst);
  m_.heap_allocs = registry_->counter("gnnhls_sched_heap_allocs_total", inst);
  m_.fused_fallbacks =
      registry_->counter("gnnhls_sched_fused_fallbacks_total", inst);
  m_.latencies_dropped =
      registry_->counter("gnnhls_sched_latencies_dropped_total", inst);
  m_.max_batch_seen = registry_->gauge("gnnhls_sched_max_batch_seen", inst);
  m_.queue_depth = registry_->gauge("gnnhls_sched_queue_depth", inst);
  m_.window_us = registry_->gauge("gnnhls_sched_window_us", inst);
  m_.window_us->set(window_.current_us());
  m_.latency_us = registry_->histogram("gnnhls_sched_latency_us", inst);
  m_.queue_wait_us = registry_->histogram("gnnhls_sched_queue_wait_us", inst);
  m_.per_model_completed.reserve(models_.size());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    m_.per_model_completed.push_back(registry_->counter(
        "gnnhls_sched_per_model_completed_total",
        inst + ",model=\"" + std::to_string(i) + "\""));
  }

  if (!cfg_.virtual_time) {
    workers_.reserve(static_cast<std::size_t>(cfg_.workers));
    for (int i = 0; i < cfg_.workers; ++i) {
      workers_.emplace_back(&ServingScheduler::worker_loop, this);
    }
  }
}

ServingScheduler::~ServingScheduler() { shutdown(); }

std::int64_t ServingScheduler::now_us() const {
  if (cfg_.virtual_time) return virtual_now_;  // caller holds mu_ or is test
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool ServingScheduler::urgent_before(const Entry& a, const Entry& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline_us != b.deadline_us) return a.deadline_us < b.deadline_us;
  return a.seq < b.seq;
}

ServingScheduler::Ticket ServingScheduler::submit(int model,
                                                  const Sample& sample,
                                                  SubmitOptions opts) {
  return submit_ref(model, SampleRef(sample), opts);
}

ServingScheduler::Ticket ServingScheduler::submit(
    int model, std::shared_ptr<const Sample> sample, SubmitOptions opts) {
  GNNHLS_CHECK(sample != nullptr, "submit: null sample");
  return submit_ref(model, SampleRef(std::move(sample)), opts);
}

ServingScheduler::Ticket ServingScheduler::submit(int model, Sample&& sample,
                                                  SubmitOptions opts) {
  return submit_ref(
      model, SampleRef(std::make_shared<const Sample>(std::move(sample))),
      opts);
}

ServingScheduler::Ticket ServingScheduler::submit_ref(int model,
                                                      SampleRef sample,
                                                      SubmitOptions opts) {
  GNNHLS_CHECK(model >= 0 && model < num_models(), "submit: bad model id");
  Ticket ticket;
  std::promise<double> promise;
  ticket.future = promise.get_future();

  auto reject = [&](AdmitStatus status, const char* what) {
    ticket.status = status;
    promise.set_exception(
        std::make_exception_ptr(SchedReject(status, what)));
  };

  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      m_.rejected_shutdown->add();
      reject(AdmitStatus::kShutdown, "ServingScheduler: submit after shutdown");
      return ticket;
    }
    if (opts.deadline_us < 0) {
      m_.shed_expired->add();
      reject(AdmitStatus::kExpired,
             "ServingScheduler: deadline expired before submit");
      return ticket;
    }
    if (cfg_.max_queue != 0 && queue_.size() >= cfg_.max_queue) {
      m_.shed_capacity->add();
      reject(AdmitStatus::kOverCapacity,
             "ServingScheduler: queue over capacity");
      return ticket;
    }
    const std::int64_t now = now_us();
    Entry e{model,
            std::move(sample),
            std::move(promise),
            now,
            opts.deadline_us == 0 ? kNoDeadline : now + opts.deadline_us,
            opts.priority,
            next_seq_++};
    // Ordered insert keeps the queue in urgency order, so the head is
    // always the next request to serve and batch extraction is a scan.
    auto pos = std::upper_bound(
        queue_.begin(), queue_.end(), e,
        [](const Entry& a, const Entry& b) { return urgent_before(a, b); });
    queue_.insert(pos, std::move(e));
    m_.submitted->add();
    m_.queue_depth->set(static_cast<std::int64_t>(queue_.size()));
    notify = true;
  }
  if (notify) queue_cv_.notify_one();
  return ticket;
}

std::vector<double> ServingScheduler::predict_many(
    int model, const std::vector<const Sample*>& samples) {
  std::vector<std::future<double>> futures;
  futures.reserve(samples.size());
  for (const Sample* s : samples) {
    GNNHLS_CHECK(s != nullptr, "predict_many: null sample");
    futures.push_back(submit(model, *s).future);
  }
  std::vector<double> out;
  out.reserve(futures.size());
  for (std::future<double>& f : futures) out.push_back(f.get());
  return out;
}

void ServingScheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (cfg_.virtual_time) {
    // No workers: drain inline so "every accepted request is answered"
    // holds in virtual mode too (expired entries are shed, live ones
    // served — window rules are waived under stop_).
    std::unique_lock<std::mutex> lock(mu_);
    while (!queue_.empty()) {
      if (!step(lock, /*drain_everything=*/true)) break;
    }
  }
}

SchedStats ServingScheduler::stats() const {
  // Assembled from the registry counters under mu_ — every counter update
  // also happens under mu_, so the snapshot invariants (flush_full +
  // flush_timeout + flush_drain == batches, completed <= submitted) still
  // hold within one snapshot.
  std::lock_guard<std::mutex> lock(mu_);
  SchedStats out;
  out.submitted = m_.submitted->value();
  out.completed = m_.completed->value();
  out.completed_in_deadline = m_.completed_in_deadline->value();
  out.shed_expired = m_.shed_expired->value();
  out.shed_capacity = m_.shed_capacity->value();
  out.rejected_shutdown = m_.rejected_shutdown->value();
  out.shed_in_queue = m_.shed_in_queue->value();
  out.batches = m_.batches->value();
  out.flush_full = m_.flush_full->value();
  out.flush_timeout = m_.flush_timeout->value();
  out.flush_drain = m_.flush_drain->value();
  out.max_batch_seen = static_cast<int>(m_.max_batch_seen->value());
  out.window_us = window_.current_us();
  out.window_grows = window_.grows();
  out.window_shrinks = window_.shrinks();
  out.heap_allocs = m_.heap_allocs->value();
  out.fused_fallbacks = m_.fused_fallbacks->value();
  out.per_model_completed.reserve(m_.per_model_completed.size());
  for (const Counter* c : m_.per_model_completed) {
    out.per_model_completed.push_back(c->value());
  }
  return out;
}

std::vector<double> ServingScheduler::take_latencies_us() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> out;
  out.swap(latencies_us_);
  return out;
}

void ServingScheduler::advance_virtual_time(std::int64_t us) {
  GNNHLS_CHECK(cfg_.virtual_time,
               "advance_virtual_time: not in virtual_time mode");
  GNNHLS_CHECK(us >= 0, "advance_virtual_time: negative step");
  std::lock_guard<std::mutex> lock(mu_);
  virtual_now_ += us;
}

std::int64_t ServingScheduler::virtual_now_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_now_;
}

bool ServingScheduler::pump() {
  GNNHLS_CHECK(cfg_.virtual_time, "pump: not in virtual_time mode");
  std::unique_lock<std::mutex> lock(mu_);
  return step(lock, stop_);
}

void ServingScheduler::sweep_expired(std::int64_t now,
                                     std::vector<Entry>& expired) {
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline_us != kNoDeadline && it->deadline_us <= now) {
      expired.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  if (!expired.empty()) m_.shed_in_queue->add(expired.size());
}

void ServingScheduler::fail_expired(std::vector<Entry>& expired) {
  for (Entry& e : expired) {
    e.promise.set_exception(std::make_exception_ptr(SchedReject(
        AdmitStatus::kExpired, "ServingScheduler: deadline expired in queue")));
  }
  expired.clear();
}

int ServingScheduler::count_for_model(int model) const {
  int n = 0;
  for (const Entry& e : queue_) {
    if (e.model == model && ++n >= cfg_.max_batch) break;
  }
  return n;
}

std::vector<ServingScheduler::Entry> ServingScheduler::extract_batch(
    int model) {
  std::vector<Entry> batch;
  batch.reserve(static_cast<std::size_t>(cfg_.max_batch));
  for (auto it = queue_.begin();
       it != queue_.end() && static_cast<int>(batch.size()) < cfg_.max_batch;) {
    if (it->model == model) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

bool ServingScheduler::step(std::unique_lock<std::mutex>& lock,
                            bool drain_everything) {
  std::vector<Entry> expired;
  sweep_expired(now_us(), expired);
  if (!expired.empty()) {
    lock.unlock();
    fail_expired(expired);
    lock.lock();
  }
  if (queue_.empty()) return false;

  // The head (most urgent request) picks the model; the batch is every
  // queued request for that model, in queue order, up to max_batch.
  const Entry& head = queue_.front();
  const int model = head.model;
  const bool full = count_for_model(model) >= cfg_.max_batch;
  const bool timed_out =
      now_us() >= head.arrival_us + window_.current_us();
  if (!drain_everything && !full && !timed_out) return false;

  std::vector<Entry> batch;
  {
    const ObsSpan span(trace_on(), "batch_assembly", "serve");
    batch = extract_batch(model);
  }
  const FlushReason reason =
      static_cast<int>(batch.size()) >= cfg_.max_batch
          ? FlushReason::kFull
          : (drain_everything ? FlushReason::kDrain : FlushReason::kTimeout);
  // Adaptive-window observation: depth left behind after this extraction.
  // Backlog means arrivals outpace service -> grow toward the cap; a
  // drained queue means the window is only adding latency -> shrink.
  window_.observe(queue_.size());
  m_.window_us->set(window_.current_us());
  m_.queue_depth->set(static_cast<std::int64_t>(queue_.size()));

  lock.unlock();
  run_batch(batch, reason);
  lock.lock();
  return true;
}

void ServingScheduler::run_batch(std::vector<Entry>& batch,
                                 FlushReason reason) {
  std::vector<const Sample*> parts;
  parts.reserve(batch.size());
  for (const Entry& e : batch) parts.push_back(e.sample.get());
  const int model = batch.front().model;

  // One queue_wait span per request, arrival -> extraction, stamped in the
  // collector's timebase via trace_offset_us_.
  const std::int64_t forward_start = now_us();
  if (trace_on()) {
    for (const Entry& e : batch) {
      obs_complete_event(true, "queue_wait", "serve",
                         e.arrival_us + trace_offset_us_,
                         forward_start - e.arrival_us);
    }
  }

  std::vector<double> pred;
  std::exception_ptr error;
  const std::uint64_t heap_before = thread_matrix_heap_allocs();
  const std::uint64_t fused_before = thread_fused_fallbacks();
  try {
    const ObsSpan forward_span(trace_on(), "forward", "serve");
    // One forward's worth of tape temporaries per arena reset; the returned
    // doubles use std::allocator and survive the scope.
    const ArenaScope scratch(cfg_.arena ? &thread_scratch_arena() : nullptr);
    pred = models_[static_cast<std::size_t>(model)]->predict_many(parts);
  } catch (...) {
    error = std::current_exception();
  }
  const std::uint64_t heap_delta = thread_matrix_heap_allocs() - heap_before;
  const std::uint64_t fused_delta = thread_fused_fallbacks() - fused_before;

  const std::int64_t done = now_us();
  // Count the whole batch — flush reason included — in ONE locked update,
  // BEFORE fulfilling the promises: snapshots keep the invariant
  // flush_full + flush_timeout + flush_drain == batches even mid-forward,
  // and a caller whose future.get() has returned always observes its own
  // request in stats().
  {
    std::lock_guard<std::mutex> lock(mu_);
    m_.batches->add();
    switch (reason) {
      case FlushReason::kFull: m_.flush_full->add(); break;
      case FlushReason::kTimeout: m_.flush_timeout->add(); break;
      case FlushReason::kDrain: m_.flush_drain->add(); break;
    }
    m_.completed->add(batch.size());
    m_.per_model_completed[static_cast<std::size_t>(model)]->add(batch.size());
    if (static_cast<int>(batch.size()) >
        static_cast<int>(m_.max_batch_seen->value())) {
      m_.max_batch_seen->set(static_cast<std::int64_t>(batch.size()));
    }
    if (heap_delta != 0) m_.heap_allocs->add(heap_delta);
    if (fused_delta != 0) m_.fused_fallbacks->add(fused_delta);
    for (const Entry& e : batch) {
      if (e.deadline_us == kNoDeadline || done <= e.deadline_us) {
        m_.completed_in_deadline->add();
      }
      const std::int64_t wait = forward_start - e.arrival_us;
      m_.queue_wait_us->record(
          static_cast<std::uint64_t>(wait > 0 ? wait : 0));
      const std::int64_t lat = done - e.arrival_us;
      m_.latency_us->record(static_cast<std::uint64_t>(lat > 0 ? lat : 0));
      if (cfg_.record_latencies) {
        if (latencies_us_.size() < cfg_.latency_cap) {
          latencies_us_.push_back(static_cast<double>(lat));
        } else {
          m_.latencies_dropped->add();
        }
      }
    }
  }
  const ObsSpan scatter_span(trace_on(), "scatter", "serve");
  if (error) {
    // predict_many throws before computing anything, so failing the whole
    // micro-batch with the same exception is consistent.
    for (Entry& e : batch) e.promise.set_exception(error);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(pred[i]);
    }
  }
}

void ServingScheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty() && stop_) return;  // drained: everything answered

    if (stop_) {
      // Draining: serve (or shed) everything queued, window rules waived.
      step(lock, /*drain_everything=*/true);
      continue;
    }

    if (step(lock, /*drain_everything=*/false)) continue;
    if (queue_.empty()) continue;  // everything was shed — wait again

    // Not ready yet: sleep until the head's window closes (or a new
    // request / shutdown wakes us). wait_until re-checks under the lock,
    // so a stale deadline just loops back around.
    const auto ready_at =
        epoch_ + std::chrono::microseconds(queue_.front().arrival_us +
                                           window_.current_us());
    queue_cv_.wait_until(lock, ready_at);
  }
}

}  // namespace gnnhls
