#include "nn/adam.h"

#include <cmath>

namespace gnnhls {

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    m_.emplace_back(p->value().rows(), p->value().cols());
    v_.emplace_back(p->value().rows(), p->value().cols());
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0F - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 = 1.0F - std::pow(config_.beta2, static_cast<float>(t_));

  float clip_scale = 1.0F;
  if (config_.grad_clip > 0.0F) {
    double total = 0.0;
    for (auto* p : params_) total += p->mutable_grad().squared_norm();
    const double norm = std::sqrt(total);
    if (norm > config_.grad_clip) {
      clip_scale = static_cast<float>(config_.grad_clip / norm);
    }
  }

  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    Matrix& grad = p.mutable_grad();
    Matrix& value = p.mutable_value();
    for (std::size_t i = 0; i < grad.size(); ++i) {
      const float g = grad.data()[i] * clip_scale;
      float& m = m_[k].data()[i];
      float& v = v_[k].data()[i];
      m = config_.beta1 * m + (1.0F - config_.beta1) * g;
      v = config_.beta2 * v + (1.0F - config_.beta2) * g * g;
      const float mhat = m / bias1;
      const float vhat = v / bias2;
      float update = config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
      if (config_.weight_decay > 0.0F) {
        update += config_.lr * config_.weight_decay * value.data()[i];
      }
      value.data()[i] -= update;
    }
  }
  zero_grad();
}

void Adam::step_merged(const std::vector<std::vector<Matrix>>& shard_grads,
                       std::size_t active) {
  const std::size_t n = std::min(active, shard_grads.size());
  for (std::size_t s = 0; s < n; ++s) {
    const std::vector<Matrix>& shard = shard_grads[s];
    if (shard.empty()) continue;
    GNNHLS_CHECK_EQ(shard.size(), params_.size(),
                    "step_merged: shard buffer / parameter count mismatch");
    for (std::size_t k = 0; k < params_.size(); ++k) {
      if (shard[k].empty()) continue;  // leaf without requires_grad
      params_[k]->mutable_grad().add_inplace(shard[k]);
    }
  }
  step();
}

void Adam::zero_grad() {
  for (auto* p : params_) p->zero_grad();
}

AdamState Adam::export_state() const {
  AdamState state;
  state.m = m_;
  state.v = v_;
  state.t = t_;
  return state;
}

void Adam::import_state(const AdamState& state) {
  GNNHLS_CHECK_EQ(state.m.size(), params_.size(),
                  "import_state: first-moment / parameter count mismatch");
  GNNHLS_CHECK_EQ(state.v.size(), params_.size(),
                  "import_state: second-moment / parameter count mismatch");
  for (std::size_t k = 0; k < params_.size(); ++k) {
    GNNHLS_CHECK(state.m[k].rows() == params_[k]->value().rows() &&
                     state.m[k].cols() == params_[k]->value().cols() &&
                     state.v[k].rows() == params_[k]->value().rows() &&
                     state.v[k].cols() == params_[k]->value().cols(),
                 "import_state: moment shape mismatch");
  }
  m_ = state.m;
  v_ = state.v;
  t_ = state.t;
}

}  // namespace gnnhls
