// Micro benchmarks of the numerical substrate (google-benchmark):
// matmul (scalar vs parallel), message-passing primitives, encoder forward
// passes, batched vs single-graph training throughput, sharded Trainer
// epochs, HLS stages.
//
// Extra flags handled before google-benchmark sees argv:
//   --threads=N  sizes the kernel thread pool (and the restore default the
//                pool benches fall back to); 0/absent = hardware concurrency
//   --smoke      runs the CI canary subset: Trainer epochs plus the
//                deterministic kernel benches (segment scatter, blocked
//                matmul, fused encoder forward — whose in-bench
//                bit-identity asserts are the gate)
//   --json=PATH  write results as JSON (google-benchmark's console output
//                stays on stdout); shorthand for --benchmark_out=PATH
//                --benchmark_out_format=json, matching the --json flag of
//                the bench_common harness benches
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "dataset/dataset.h"
#include "gnn/graph_batch.h"
#include "gnn/models.h"
#include "hls/hls_flow.h"
#include "nn/adam.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "progen/progen.h"
#include "support/arena.h"
#include "support/parallel.h"
#include "tensor/segment_ops.h"
#include "train/batch_plan.h"
#include "train/feature_cache.h"
#include "train/trainer.h"

namespace gnnhls {
namespace {

// Benchmark what production training gets: heap-recycled large buffers.
const bool kMallocTuned = (tune_malloc_for_tensor_workloads(), true);

// Pool width the benches restore after resizing (set by --threads in main;
// 0 = hardware concurrency).
int g_default_threads = 0;

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::randn(n, n, rng);
  const Matrix b = Matrix::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

/// Parallel vs scalar matmul: same kernel, thread pool sized per arg.
void BM_MatmulThreads(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  ThreadPool::set_global_threads(threads);
  Rng rng(1);
  const Matrix a = Matrix::randn(n, n, rng);
  const Matrix b = Matrix::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel(std::to_string(threads) + " thread(s)");
  ThreadPool::set_global_threads(g_default_threads);  // restore default
}
BENCHMARK(BM_MatmulThreads)
    ->Args({128, 1})
    ->Args({128, 4})
    ->Args({256, 1})
    ->Args({256, 4})
    ->UseRealTime();

// ----- deterministic kernel benches: serial vs parallel vs blocked -----
// Each bench hard-asserts bit-identity against the serial reference before
// timing anything: a nonzero exit here is the CI gate for the fixed-order
// partition reduction contract, independent of how fast the machine is.

void die_on_mismatch(bool identical, const char* what) {
  if (identical) return;
  std::cerr << "FATAL: " << what
            << " is not bit-identical to the serial reference\n";
  std::exit(1);
}

/// Power-law segment layout: destination 0 owns ~60% of all rows, the rest
/// spread over the remaining segments — the worst case for naive equal-row
/// chunking and therefore the shape worth timing.
struct SegmentBenchData {
  Matrix src;
  std::vector<int> seg;
  int segments;
  SegmentPartition part;
};

const SegmentBenchData& segment_bench_data() {
  static const SegmentBenchData* data = [] {
    auto* d = new SegmentBenchData;
    constexpr int kRows = 32768;
    d->segments = 4096;
    Rng rng(17);
    d->seg.reserve(kRows);
    for (int i = 0; i < kRows; ++i) {
      d->seg.push_back(rng.bernoulli(0.6)
                           ? 0
                           : rng.uniform_int(1, d->segments - 1));
    }
    d->src = Matrix::randn(kRows, 64, rng);
    d->part = SegmentPartition::build(d->seg, d->segments);
    return d;
  }();
  return *data;
}

void BM_SegmentScatterSerial(benchmark::State& state) {
  const SegmentBenchData& d = segment_bench_data();
  Matrix out = Matrix::zeros(d.segments, d.src.cols());
  for (auto _ : state) {
    out.fill(0.0F);
    scatter_add_rows_serial(d.src, d.seg, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(d.src.size()));
}
BENCHMARK(BM_SegmentScatterSerial);

void BM_SegmentScatterPartitioned(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ThreadPool::set_global_threads(threads);
  const SegmentBenchData& d = segment_bench_data();
  Matrix ref = Matrix::zeros(d.segments, d.src.cols());
  scatter_add_rows_serial(d.src, d.seg, ref);
  Matrix out = Matrix::zeros(d.segments, d.src.cols());
  scatter_add_rows_into(d.src, d.part, out);
  die_on_mismatch(out == ref, "partitioned segment scatter");
  for (auto _ : state) {
    out.fill(0.0F);
    scatter_add_rows_into(d.src, d.part, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(d.src.size()));
  state.SetLabel(std::to_string(threads) + " thread(s)");
  ThreadPool::set_global_threads(g_default_threads);
}
BENCHMARK(BM_SegmentScatterPartitioned)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime();

void BM_SegmentGatherBackward(benchmark::State& state) {
  // The gather-grad path: scatter-add of upstream grads through the cached
  // partition (what every message-passing backward pays per layer).
  const int threads = static_cast<int>(state.range(0));
  ThreadPool::set_global_threads(threads);
  const SegmentBenchData& d = segment_bench_data();
  Rng rng(19);
  const Matrix grad = Matrix::randn(static_cast<int>(d.seg.size()),
                                    d.src.cols(), rng);
  Matrix ref = Matrix::zeros(d.segments, d.src.cols());
  scatter_add_rows_serial(grad, d.seg, ref);
  Matrix sink = Matrix::zeros(d.segments, d.src.cols());
  scatter_add_rows_auto(grad, d.seg, nullptr, sink);
  die_on_mismatch(sink == ref, "on-demand segment scatter");
  for (auto _ : state) {
    sink.fill(0.0F);
    scatter_add_rows_into(grad, d.part, sink);
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(grad.size()));
  state.SetLabel(std::to_string(threads) + " thread(s)");
  ThreadPool::set_global_threads(g_default_threads);
}
BENCHMARK(BM_SegmentGatherBackward)->Arg(1)->Arg(4)->UseRealTime();

/// Blocked/parallel dense matmul vs the unblocked serial reference on the
/// hot [N,hidden]x[hidden,hidden] shape.
void BM_MatmulKernelReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int hidden = static_cast<int>(state.range(1));
  Rng rng(1);
  const Matrix a = Matrix::randn(n, hidden, rng);
  const Matrix b = Matrix::randn(hidden, hidden, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_reference(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * hidden * hidden);
}
BENCHMARK(BM_MatmulKernelReference)->Args({512, 64})->Args({256, 128});

void BM_MatmulKernelBlocked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int hidden = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  ThreadPool::set_global_threads(threads);
  Rng rng(1);
  const Matrix a = Matrix::randn(n, hidden, rng);
  const Matrix b = Matrix::randn(hidden, hidden, rng);
  die_on_mismatch(matmul(a, b) == matmul_reference(a, b), "blocked matmul");
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * hidden * hidden);
  state.SetLabel(std::to_string(threads) + " thread(s)");
  ThreadPool::set_global_threads(g_default_threads);
}
BENCHMARK(BM_MatmulKernelBlocked)
    ->Args({512, 64, 1})
    ->Args({512, 64, 4})
    ->Args({256, 128, 1})
    ->Args({256, 128, 4})
    ->UseRealTime();

void BM_MatmulTbKernelReference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int hidden = static_cast<int>(state.range(1));
  Rng rng(2);
  const Matrix a = Matrix::randn(n, hidden, rng);
  const Matrix b = Matrix::randn(hidden, hidden, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_transpose_b_reference(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * hidden * hidden);
}
BENCHMARK(BM_MatmulTbKernelReference)->Args({512, 64});

void BM_MatmulTbKernelBlocked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int hidden = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  ThreadPool::set_global_threads(threads);
  Rng rng(2);
  const Matrix a = Matrix::randn(n, hidden, rng);
  const Matrix b = Matrix::randn(hidden, hidden, rng);
  die_on_mismatch(
      matmul_transpose_b(a, b) == matmul_transpose_b_reference(a, b),
      "column-tiled matmul_transpose_b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_transpose_b(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * hidden * hidden);
  state.SetLabel(std::to_string(threads) + " thread(s)");
  ThreadPool::set_global_threads(g_default_threads);
}
BENCHMARK(BM_MatmulTbKernelBlocked)
    ->Args({512, 64, 1})
    ->Args({512, 64, 4})
    ->UseRealTime();

void BM_GatherScatter(benchmark::State& state) {
  LoweredProgram p = lower_to_cdfg(generate_cdfg_program(3));
  run_hls_flow(p);
  const GraphTensors gt = GraphTensors::build(p.graph);
  Rng rng(1);
  const Matrix h = Matrix::randn(gt.num_nodes, 64, rng);
  for (auto _ : state) {
    Tape tape;
    const Var x = tape.leaf(h);
    const Var msgs = tape.gather_rows(x, gt.src);
    benchmark::DoNotOptimize(
        tape.scatter_add_rows(msgs, gt.dst, gt.num_nodes).value().data());
  }
}
BENCHMARK(BM_GatherScatter);

// ----- fused message-passing executor + arena -----
// Same contract style as the kernel benches above: the fused strategy is
// asserted bit-identical to the unfused reference before anything is timed,
// and the variants are pinned to one pool thread so the numbers isolate the
// fusion / arena effect rather than parallel speedup. "heap_allocs" counts
// ArenaAllocator heap-path allocations per iteration — the allocator
// traffic the arena variant removes.

struct FusedBenchData {
  GraphTensors gt;
  Matrix feats;
};

const FusedBenchData& fused_bench_data() {
  static const FusedBenchData* data = [] {
    // An 8-graph disjoint union — the steady-state batched-training shape,
    // large enough that the [E, hidden] tensors the fused path avoids (and
    // the allocator traffic the arena absorbs) dominate fixed overheads.
    auto* d = new FusedBenchData;
    std::vector<GraphTensors> tensors;
    std::vector<Matrix> feats;
    for (int i = 0; i < 8; ++i) {
      LoweredProgram p = lower_to_cdfg(
          generate_cdfg_program(static_cast<std::uint64_t>(300 + i)));
      run_hls_flow(p);
      tensors.push_back(GraphTensors::build(p.graph));
      feats.push_back(InputFeatureBuilder::build(p.graph,
                                                 Approach::kOffTheShelf));
    }
    std::vector<const GraphTensors*> parts;
    std::vector<const Matrix*> fparts;
    for (std::size_t i = 0; i < tensors.size(); ++i) {
      parts.push_back(&tensors[i]);
      fparts.push_back(&feats[i]);
    }
    d->gt = GraphBatch::build(parts).merged;
    d->feats = GraphBatch::stack_features(fparts);
    return d;
  }();
  return *data;
}

/// One forward+backward of a 3-layer hidden-64 encoder (training graph's
/// steady-state tape shape, minus dropout for determinism).
Matrix fused_bench_pass(const GnnEncoder& enc, const FusedBenchData& d) {
  Tape tape;
  Rng drop(1);
  const Var h = enc.encode(tape, d.gt, tape.leaf(d.feats), drop, false);
  tape.backward(tape.sum_all(h));
  return h.value();
}

std::unique_ptr<GnnEncoder> fused_bench_encoder(GnnKind kind, bool fused) {
  const FusedBenchData& d = fused_bench_data();
  Rng rng(2);
  EncoderConfig cfg;
  cfg.in_dim = d.feats.cols();
  cfg.hidden = 64;
  cfg.layers = 3;
  cfg.fused = fused;
  return make_encoder(kind, cfg, rng);
}

/// Unfused reference composition, heap-backed ("Reference" in the name
/// keeps it out of the cross-machine CI comparison, like the kernel
/// benches' serial references).
void BM_FusedEncoderReference(benchmark::State& state) {
  ThreadPool::set_global_threads(1);
  const auto kind = static_cast<GnnKind>(state.range(0));
  const FusedBenchData& d = fused_bench_data();
  const auto enc = fused_bench_encoder(kind, /*fused=*/false);
  const std::uint64_t allocs_before = thread_matrix_heap_allocs();
  benchmark::DoNotOptimize(fused_bench_pass(*enc, d).data());
  const auto allocs =
      static_cast<double>(thread_matrix_heap_allocs() - allocs_before);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fused_bench_pass(*enc, d).data());
  }
  state.counters["heap_allocs"] = allocs;
  state.SetLabel(std::string(gnn_kind_name(kind)) + " unfused/heap");
  ThreadPool::set_global_threads(g_default_threads);
}
BENCHMARK(BM_FusedEncoderReference)
    ->Arg(static_cast<int>(GnnKind::kGcn))
    ->Arg(static_cast<int>(GnnKind::kRgcn));

/// Fused executor, with the per-batch scratch arena off (arg 1 == 0) or on
/// (arg 1 == 1). Both variants assert bit-identity against the unfused
/// reference before the timing loop: a mismatch exits nonzero and fails the
/// bench-smoke CI job regardless of machine speed.
void BM_FusedEncoderForward(benchmark::State& state) {
  ThreadPool::set_global_threads(1);
  const auto kind = static_cast<GnnKind>(state.range(0));
  const bool arena = state.range(1) != 0;
  const FusedBenchData& d = fused_bench_data();
  const auto enc = fused_bench_encoder(kind, /*fused=*/true);
  {
    const auto ref = fused_bench_encoder(kind, /*fused=*/false);
    die_on_mismatch(fused_bench_pass(*enc, d) == fused_bench_pass(*ref, d),
                    "fused encoder forward");
  }
  std::uint64_t allocs = 0;
  {
    const ArenaScope scratch(arena ? &thread_scratch_arena() : nullptr);
    const std::uint64_t allocs_before = thread_matrix_heap_allocs();
    benchmark::DoNotOptimize(fused_bench_pass(*enc, d).data());
    allocs = thread_matrix_heap_allocs() - allocs_before;
  }
  for (auto _ : state) {
    // Scope first, pass second: everything the tape allocates dies before
    // the scope's destructor resets the arena (arena.h lifetime rules).
    const ArenaScope scratch(arena ? &thread_scratch_arena() : nullptr);
    benchmark::DoNotOptimize(fused_bench_pass(*enc, d).data());
  }
  state.counters["heap_allocs"] = static_cast<double>(allocs);
  state.SetLabel(std::string(gnn_kind_name(kind)) +
                 (arena ? " fused/arena" : " fused/heap"));
  ThreadPool::set_global_threads(g_default_threads);
}
BENCHMARK(BM_FusedEncoderForward)
    ->Args({static_cast<int>(GnnKind::kGcn), 0})
    ->Args({static_cast<int>(GnnKind::kGcn), 1})
    ->Args({static_cast<int>(GnnKind::kRgcn), 0})
    ->Args({static_cast<int>(GnnKind::kRgcn), 1});

/// BM_FusedEncoderForward's exact workload plus the per-batch observability
/// work a serving worker pays with obs enabled: a trace span over the
/// forward (gate open, collector armed-but-idle — the steady serving
/// state), one counter increment and one latency-histogram record. CI runs
/// this against BM_FusedEncoderForward through bench_compare.py --pair and
/// fails the smoke job if obs costs more than 5% — the "near-zero when
/// enabled" half of the obs contract (the disabled half is a dead branch).
void BM_FusedEncoderForwardObs(benchmark::State& state) {
  ThreadPool::set_global_threads(1);
  const auto kind = static_cast<GnnKind>(state.range(0));
  const bool arena = state.range(1) != 0;
  const FusedBenchData& d = fused_bench_data();
  const auto enc = fused_bench_encoder(kind, /*fused=*/true);
  {
    const auto ref = fused_bench_encoder(kind, /*fused=*/false);
    die_on_mismatch(fused_bench_pass(*enc, d) == fused_bench_pass(*ref, d),
                    "fused encoder forward (obs pair)");
  }
  // Private registry: the pair bench must not pollute the global scrape
  // namespace (and repeated benchmark runs would re-register otherwise).
  MetricsRegistry registry;
  Counter* batches = registry.counter("bench_obs_batches_total");
  Histogram* latency = registry.histogram("bench_obs_latency_us");
  TraceCollector& tc = TraceCollector::global();
  for (auto _ : state) {
    const std::int64_t t0 = tc.now_us();
    const ArenaScope scratch(arena ? &thread_scratch_arena() : nullptr);
    const ObsSpan span(true, "forward", "bench");
    benchmark::DoNotOptimize(fused_bench_pass(*enc, d).data());
    batches->add();
    latency->record(static_cast<std::uint64_t>(tc.now_us() - t0));
  }
  state.SetLabel(std::string(gnn_kind_name(kind)) +
                 (arena ? " fused/arena+obs" : " fused/heap+obs"));
  ThreadPool::set_global_threads(g_default_threads);
}
BENCHMARK(BM_FusedEncoderForwardObs)
    ->Args({static_cast<int>(GnnKind::kGcn), 0})
    ->Args({static_cast<int>(GnnKind::kGcn), 1});

void BM_EncoderForward(benchmark::State& state) {
  LoweredProgram p = lower_to_cdfg(generate_cdfg_program(5));
  run_hls_flow(p);
  const GraphTensors gt = GraphTensors::build(p.graph);
  const Matrix feats =
      InputFeatureBuilder::build(p.graph, Approach::kOffTheShelf);
  Rng rng(2);
  EncoderConfig cfg;
  cfg.in_dim = feats.cols();
  cfg.hidden = 64;
  cfg.layers = 3;
  const auto kind = static_cast<GnnKind>(state.range(0));
  const auto enc = make_encoder(kind, cfg, rng);
  Rng drop(1);
  for (auto _ : state) {
    Tape tape;
    benchmark::DoNotOptimize(
        enc->encode(tape, gt, tape.leaf(feats), drop, false).value().data());
  }
  state.SetLabel(gnn_kind_name(kind));
}
BENCHMARK(BM_EncoderForward)->DenseRange(0, kNumGnnKinds - 1);

/// Batched vs single-graph training throughput: one epoch over a fixed
/// 32-graph corpus per iteration, batch_size graphs per tape. items/sec is
/// graphs/sec through forward+backward+step.
void BM_BatchedTrainStep(benchmark::State& state) {
  const int batch_size = static_cast<int>(state.range(0));
  constexpr int kGraphs = 32;

  std::vector<LoweredProgram> progs;
  std::vector<GraphTensors> tensors;
  std::vector<Matrix> feats;
  progs.reserve(kGraphs);
  for (int i = 0; i < kGraphs; ++i) {
    progs.push_back(lower_to_cdfg(
        generate_cdfg_program(static_cast<std::uint64_t>(100 + i))));
    run_hls_flow(progs.back());
    tensors.push_back(GraphTensors::build(progs.back().graph));
    feats.push_back(InputFeatureBuilder::build(progs.back().graph,
                                               Approach::kOffTheShelf));
  }

  // Pre-assemble the batches once: the steady-state cost under test is the
  // batched tape, not union construction (which BM_BatchAssembly covers).
  struct PreBatch {
    GraphBatch batch;
    Matrix features;
    Matrix target;
  };
  std::vector<PreBatch> batches;
  for (int lo = 0; lo < kGraphs; lo += batch_size) {
    const int hi = std::min(lo + batch_size, kGraphs);
    std::vector<const GraphTensors*> parts;
    std::vector<const Matrix*> fparts;
    for (int g = lo; g < hi; ++g) {
      parts.push_back(&tensors[static_cast<std::size_t>(g)]);
      fparts.push_back(&feats[static_cast<std::size_t>(g)]);
    }
    batches.push_back(PreBatch{GraphBatch::build(parts),
                               GraphBatch::stack_features(fparts),
                               Matrix(hi - lo, 1, 5.0F)});
  }

  Rng rng(3);
  ModelConfig mc;
  mc.kind = GnnKind::kGcn;
  mc.hidden = 64;
  mc.layers = 3;
  GraphRegressor model(mc, feats.front().cols(), rng);
  const std::vector<Matrix> initial = snapshot_parameters(model);
  Rng drop(1);
  for (auto _ : state) {
    // Reset to the initial weights and a fresh optimizer outside the timed
    // region so every iteration (and every batch-size variant) times the
    // same workload — a trained model has different activation sparsity,
    // which changes the zero-skipping backward kernels' cost.
    state.PauseTiming();
    restore_parameters(model, initial);
    Adam opt(model, AdamConfig{});
    state.ResumeTiming();
    for (const PreBatch& pb : batches) {
      Tape tape;
      const Var pred =
          model.forward(tape, pb.batch.merged, pb.features, drop, true);
      tape.backward(tape.mse_loss(pred, pb.target));
      opt.step();
    }
  }
  state.SetItemsProcessed(state.iterations() * kGraphs);
  state.SetLabel("batch=" + std::to_string(batch_size));
}
BENCHMARK(BM_BatchedTrainStep)->Arg(1)->Arg(8)->Arg(32)->UseRealTime();

/// Cost of assembling the disjoint union itself.
void BM_BatchAssembly(benchmark::State& state) {
  const int batch_size = static_cast<int>(state.range(0));
  std::vector<LoweredProgram> progs;
  std::vector<GraphTensors> tensors;
  for (int i = 0; i < batch_size; ++i) {
    progs.push_back(lower_to_cdfg(
        generate_cdfg_program(static_cast<std::uint64_t>(200 + i))));
    run_hls_flow(progs.back());
    tensors.push_back(GraphTensors::build(progs.back().graph));
  }
  std::vector<const GraphTensors*> parts;
  for (const auto& t : tensors) parts.push_back(&t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphBatch::build(parts).merged.num_nodes);
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_BatchAssembly)->Arg(8)->Arg(32);

void BM_TrainStep(benchmark::State& state) {
  LoweredProgram p = lower_to_cdfg(generate_cdfg_program(7));
  run_hls_flow(p);
  const GraphTensors gt = GraphTensors::build(p.graph);
  const Matrix feats =
      InputFeatureBuilder::build(p.graph, Approach::kOffTheShelf);
  Rng rng(3);
  ModelConfig mc;
  mc.kind = GnnKind::kRgcn;
  mc.hidden = 64;
  mc.layers = 3;
  GraphRegressor model(mc, feats.cols(), rng);
  Adam opt(model, AdamConfig{});
  Rng drop(1);
  const Matrix target(1, 1, 5.0F);
  for (auto _ : state) {
    Tape tape;
    const Var pred = model.forward(tape, gt, feats, drop, true);
    tape.backward(tape.mse_loss(pred, target));
    opt.step();
  }
}
BENCHMARK(BM_TrainStep);

// ----- train/ subsystem: sharded epochs over a cached BatchPlan -----

/// Shared 32-graph corpus for the Trainer benches (built once; the HLS flow
/// per sample is setup cost, not the thing under test).
const std::vector<Sample>& trainer_corpus() {
  static const std::vector<Sample>* samples = [] {
    SyntheticDatasetConfig d;
    d.kind = GraphKind::kCdfg;
    d.num_graphs = 32;
    d.seed = 4242;
    return new std::vector<Sample>(build_synthetic_dataset(d));
  }();
  return *samples;
}

std::vector<int> trainer_train_idx() {
  std::vector<int> idx(trainer_corpus().size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  return idx;
}

TrainConfig trainer_bench_config(int shards) {
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.grad_accum = 4;  // 4 batches per Adam step = shard work between barriers
  tc.shards = shards;
  tc.seed = 7;
  return tc;
}

BatchPlan build_trainer_plan(const TrainConfig& tc) {
  return BatchPlan::build(
      trainer_corpus(), trainer_train_idx(), tc.batch_size,
      [](const Sample& s) -> const Matrix& {
        return FeatureCache::global().features(s, Approach::kOffTheShelf);
      },
      [](const Sample& s) {
        return Matrix(1, 1,
                      encode_target(metric_of(s.truth, Metric::kLut),
                                    Metric::kLut));
      },
      Rng(tc.seed * 31 + 1));
}

Trainer::Hooks regressor_hooks(const GraphRegressor& model) {
  Trainer::Hooks hooks;
  hooks.forward = [&model](Tape& tape, const GraphTensors& gt,
                           const Matrix& feats, Rng& rng) {
    return model.forward(tape, gt, feats, rng, true);
  };
  hooks.loss = [](Tape& tape, const Var& pred, const Matrix& target) {
    return tape.mse_loss(pred, target);
  };
  return hooks;
}

GraphRegressor& trainer_bench_model() {
  static GraphRegressor* model = [] {
    Rng rng(3);
    ModelConfig mc;
    mc.kind = GnnKind::kGcn;
    // Small enough that data-pipeline costs (feature build, union assembly,
    // stacking) are a visible fraction of the epoch — the amortization
    // BM_TrainerFirstEpoch vs BM_TrainerEpoch is meant to expose — while
    // the tape still dominates enough for shard scaling to be meaningful.
    mc.hidden = 32;
    mc.layers = 2;
    const int in_dim =
        InputFeatureBuilder::feature_dim(Approach::kOffTheShelf);
    return new GraphRegressor(mc, in_dim, rng);
  }();
  return *model;
}

/// Steady-state epoch throughput on a prebuilt plan, by shard count.
/// shards=N is bit-identical to shards=1 (Trainer contract), so the only
/// difference between the variants is the wall clock — the ISSUE's >= 1.5x
/// at 4 shards target is read straight off items/sec here (needs real
/// cores; a single-core container runs shards inline).
void BM_TrainerEpoch(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const TrainConfig tc = trainer_bench_config(shards);
  GraphRegressor& model = trainer_bench_model();
  const std::vector<Matrix> initial = snapshot_parameters(model);
  BatchPlan plan = build_trainer_plan(tc);
  const Trainer::Hooks hooks = regressor_hooks(model);
  for (auto _ : state) {
    state.PauseTiming();
    restore_parameters(model, initial);  // same workload every iteration
    state.ResumeTiming();
    Trainer trainer(model, tc, hooks, 99);
    trainer.fit(plan, nullptr);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(trainer_corpus().size()));
  state.SetLabel("shards=" + std::to_string(shards));
}
BENCHMARK(BM_TrainerEpoch)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// First-epoch cost: cold FeatureCache + BatchPlan assembly + one epoch —
/// what a fit pays once. Compare against BM_TrainerEpoch (the steady
/// epochs that reuse the plan) to see the amortization: epoch >= 2 must be
/// measurably faster than epoch 1.
void BM_TrainerFirstEpoch(benchmark::State& state) {
  const TrainConfig tc = trainer_bench_config(1);
  GraphRegressor& model = trainer_bench_model();
  const std::vector<Matrix> initial = snapshot_parameters(model);
  const Trainer::Hooks hooks = regressor_hooks(model);
  for (auto _ : state) {
    state.PauseTiming();
    restore_parameters(model, initial);
    FeatureCache::global().clear();  // cold start: features rebuilt
    state.ResumeTiming();
    BatchPlan plan = build_trainer_plan(tc);
    Trainer trainer(model, tc, hooks, 99);
    trainer.fit(plan, nullptr);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(trainer_corpus().size()));
  state.SetLabel("cold cache + plan build");
}
BENCHMARK(BM_TrainerFirstEpoch)->UseRealTime();

void BM_ScheduleProgram(benchmark::State& state) {
  LoweredProgram p = lower_to_cdfg(generate_cdfg_program(11));
  const ResourceLibrary lib;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_program(p, lib, HlsConfig{}).total_states);
  }
}
BENCHMARK(BM_ScheduleProgram);

void BM_ProgramGeneration(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generate_cdfg_program(seed++).statement_count());
  }
}
BENCHMARK(BM_ProgramGeneration);

}  // namespace
}  // namespace gnnhls

int main(int argc, char** argv) {
  // Strip the gnnhls-side flags before google-benchmark parses argv.
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 1);
  bool smoke = false;
  int threads = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      storage.push_back("--benchmark_out=" + arg.substr(7));
      storage.push_back("--benchmark_out_format=json");
    } else {
      storage.push_back(arg);
    }
  }
  if (smoke) {
    storage.push_back(
        "--benchmark_filter=BM_Trainer|BM_SegmentScatter|"
        "BM_SegmentGather|BM_MatmulKernel|BM_MatmulTbKernel|"
        "BM_FusedEncoder");
  }
  gnnhls::g_default_threads = threads;
  gnnhls::ThreadPool::set_global_threads(threads);

  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
