// PolyBench/C-style kernels (Pouchet & Yuki): 30 polyhedral loop nests.
// Integer mini versions at size N=6..8; fixed-point shifts replace float
// scaling, integer division appears where the originals divide.
#include "suites/suites.h"

#include "suites/dsl.h"

namespace gnnhls {

namespace {

using namespace suite_dsl;  // NOLINT(google-build-using-namespace)

constexpr long N = 6;

/// Shared skeleton: C[i,j] (+)= sum_k A[i,k]*B[k,j], optionally scaled.
StmtPtr matmul_loop(const char* out, const char* a, const char* b,
                    bool accumulate, long shift = 0) {
  auto inner_val = A(a, idx2("i", "k", N)) * A(b, idx2("k", "j", N));
  std::vector<StmtPtr> kbody =
      stmts(assign("sum_acc", var("sum_acc") + std::move(inner_val)));
  ExprPtr result = shift > 0
                       ? var("sum_acc") >> lit(shift)
                       : var("sum_acc");
  if (accumulate) {
    result = A(out, idx2("i", "j", N)) + std::move(result);
  }
  return loop(
      "i", N,
      stmts(loop("j", N,
                 stmts(decl("sum_acc", ScalarType{32, true}, lit(0)),
                       loop("k", N, std::move(kbody)),
                       assign_array(out, idx2("i", "j", N),
                                    std::move(result))))));
}

Function pb_gemm() {
  Function f;
  f.name = "gemm";
  f.params = {in_array("Am", N * N), in_array("Bm", N * N),
              in_scalar("alpha"), in_scalar("beta")};
  f.body.push_back(decl_array("Cm", ScalarType{32, true}, N * N));
  f.body.push_back(loop(
      "i", N,
      stmts(loop("j", N,
                 stmts(decl("sum_acc", ScalarType{32, true}, lit(0)),
                       loop("k", N,
                            stmts(assign("sum_acc",
                                         var("sum_acc") +
                                             A("Am", idx2("i", "k", N)) *
                                                 A("Bm", idx2("k", "j", N))))),
                       assign_array("Cm", idx2("i", "j", N),
                                    var("beta") * A("Cm", idx2("i", "j", N)) +
                                        var("alpha") * var("sum_acc") >>
                                        lit(8)))))));
  f.body.push_back(ret(A("Cm", lit(0))));
  return f;
}

Function pb_2mm() {
  Function f;
  f.name = "2mm";
  f.params = {in_array("Am", N * N), in_array("Bm", N * N),
              in_array("Cm", N * N)};
  f.body.push_back(decl_array("tmp", ScalarType{32, true}, N * N));
  f.body.push_back(decl_array("Dm", ScalarType{32, true}, N * N));
  f.body.push_back(matmul_loop("tmp", "Am", "Bm", false));
  f.body.push_back(matmul_loop("Dm", "tmp", "Cm", true, 4));
  f.body.push_back(ret(A("Dm", lit(0))));
  return f;
}

Function pb_3mm() {
  Function f;
  f.name = "3mm";
  f.params = {in_array("Am", N * N), in_array("Bm", N * N),
              in_array("Cm", N * N), in_array("Dm", N * N)};
  f.body.push_back(decl_array("E", ScalarType{32, true}, N * N));
  f.body.push_back(decl_array("F", ScalarType{32, true}, N * N));
  f.body.push_back(decl_array("G", ScalarType{32, true}, N * N));
  f.body.push_back(matmul_loop("E", "Am", "Bm", false));
  f.body.push_back(matmul_loop("F", "Cm", "Dm", false));
  f.body.push_back(matmul_loop("G", "E", "F", false, 4));
  f.body.push_back(ret(A("G", lit(0))));
  return f;
}

Function pb_atax() {
  Function f;
  f.name = "atax";
  f.params = {in_array("Am", N * N), in_array("x", N)};
  f.body.push_back(decl_array("tmp", ScalarType{32, true}, N));
  f.body.push_back(decl_array("y", ScalarType{32, true}, N));
  f.body.push_back(loop(
      "i", N,
      stmts(decl("t", ScalarType{32, true}, lit(0)),
            loop("j", N, stmts(assign("t", var("t") +
                                               A("Am", idx2("i", "j", N)) *
                                                   A("x", var("j"))))),
            assign_array("tmp", var("i"), var("t")))));
  f.body.push_back(loop(
      "j2", N,
      stmts(decl("t2", ScalarType{32, true}, lit(0)),
            loop("i2", N,
                 stmts(assign("t2", var("t2") +
                                        A("Am", idx2("i2", "j2", N)) *
                                            A("tmp", var("i2"))))),
            assign_array("y", var("j2"), var("t2")))));
  f.body.push_back(ret(A("y", lit(0))));
  return f;
}

Function pb_bicg() {
  Function f;
  f.name = "bicg";
  f.params = {in_array("Am", N * N), in_array("p", N), in_array("r", N)};
  f.body.push_back(decl_array("q", ScalarType{32, true}, N));
  f.body.push_back(decl_array("s", ScalarType{32, true}, N));
  f.body.push_back(loop(
      "i", N,
      stmts(decl("qa", ScalarType{32, true}, lit(0)),
            loop("j", N,
                 stmts(assign_array("s", var("j"),
                                    A("s", var("j")) +
                                        A("r", var("i")) *
                                            A("Am", idx2("i", "j", N))),
                       assign("qa", var("qa") +
                                        A("Am", idx2("i", "j", N)) *
                                            A("p", var("j"))))),
            assign_array("q", var("i"), var("qa")))));
  f.body.push_back(ret(A("q", lit(0)) + A("s", lit(0))));
  return f;
}

Function pb_mvt() {
  Function f;
  f.name = "mvt";
  f.params = {in_array("Am", N * N), in_array("y1", N), in_array("y2", N)};
  f.body.push_back(decl_array("x1", ScalarType{32, true}, N));
  f.body.push_back(decl_array("x2", ScalarType{32, true}, N));
  f.body.push_back(loop(
      "i", N,
      stmts(loop("j", N,
                 stmts(assign_array("x1", var("i"),
                                    A("x1", var("i")) +
                                        A("Am", idx2("i", "j", N)) *
                                            A("y1", var("j"))))))));
  f.body.push_back(loop(
      "i2", N,
      stmts(loop("j2", N,
                 stmts(assign_array("x2", var("i2"),
                                    A("x2", var("i2")) +
                                        A("Am", idx2("j2", "i2", N)) *
                                            A("y2", var("j2"))))))));
  f.body.push_back(ret(A("x1", lit(0)) + A("x2", lit(0))));
  return f;
}

Function pb_gemver() {
  Function f;
  f.name = "gemver";
  f.params = {in_array("Am", N * N), in_array("u1", N), in_array("v1", N),
              in_array("u2", N), in_array("v2", N), in_array("y", N)};
  f.body.push_back(decl_array("x", ScalarType{32, true}, N));
  f.body.push_back(loop(
      "i", N,
      stmts(loop("j", N,
                 stmts(assign_array(
                     "Am", idx2("i", "j", N),
                     A("Am", idx2("i", "j", N)) +
                         A("u1", var("i")) * A("v1", var("j")) +
                         A("u2", var("i")) * A("v2", var("j"))))))));
  f.body.push_back(loop(
      "i2", N,
      stmts(loop("j2", N,
                 stmts(assign_array("x", var("i2"),
                                    A("x", var("i2")) +
                                        A("Am", idx2("j2", "i2", N)) *
                                            A("y", var("j2")) >>
                                        lit(2)))))));
  f.body.push_back(ret(A("x", lit(0))));
  return f;
}

Function pb_gesummv() {
  Function f;
  f.name = "gesummv";
  f.params = {in_array("Am", N * N), in_array("Bm", N * N), in_array("x", N),
              in_scalar("alpha"), in_scalar("beta")};
  f.body.push_back(decl_array("y", ScalarType{32, true}, N));
  f.body.push_back(loop(
      "i", N,
      stmts(decl("ta", ScalarType{32, true}, lit(0)),
            decl("tb", ScalarType{32, true}, lit(0)),
            loop("j", N,
                 stmts(assign("ta", var("ta") + A("Am", idx2("i", "j", N)) *
                                                    A("x", var("j"))),
                       assign("tb", var("tb") + A("Bm", idx2("i", "j", N)) *
                                                    A("x", var("j"))))),
            assign_array("y", var("i"),
                         var("alpha") * var("ta") + var("beta") * var("tb") >>
                             lit(8)))));
  f.body.push_back(ret(A("y", lit(0))));
  return f;
}

Function pb_syrk() {
  Function f;
  f.name = "syrk";
  f.params = {in_array("Am", N * N), in_scalar("alpha"), in_scalar("beta")};
  f.body.push_back(decl_array("Cm", ScalarType{32, true}, N * N));
  f.body.push_back(loop(
      "i", N,
      stmts(loop(
          "j", N,
          stmts(decl("acc", ScalarType{32, true},
                     var("beta") * A("Cm", idx2("i", "j", N)) >> lit(4)),
                loop("k", N,
                     stmts(assign("acc",
                                  var("acc") + var("alpha") *
                                                   A("Am", idx2("i", "k", N)) *
                                                   A("Am", idx2("j", "k", N)) >>
                                                   lit(4)))),
                assign_array("Cm", idx2("i", "j", N), var("acc")))))));
  f.body.push_back(ret(A("Cm", lit(0))));
  return f;
}

Function pb_syr2k() {
  Function f;
  f.name = "syr2k";
  f.params = {in_array("Am", N * N), in_array("Bm", N * N)};
  f.body.push_back(decl_array("Cm", ScalarType{32, true}, N * N));
  f.body.push_back(loop(
      "i", N,
      stmts(loop(
          "j", N,
          stmts(decl("acc", ScalarType{32, true},
                     A("Cm", idx2("i", "j", N))),
                loop("k", N,
                     stmts(assign(
                         "acc",
                         var("acc") +
                             A("Am", idx2("i", "k", N)) *
                                 A("Bm", idx2("j", "k", N)) +
                             A("Bm", idx2("i", "k", N)) *
                                 A("Am", idx2("j", "k", N))))),
                assign_array("Cm", idx2("i", "j", N), var("acc")))))));
  f.body.push_back(ret(A("Cm", lit(0))));
  return f;
}

Function pb_symm() {
  Function f;
  f.name = "symm";
  f.params = {in_array("Am", N * N), in_array("Bm", N * N)};
  f.body.push_back(decl_array("Cm", ScalarType{32, true}, N * N));
  f.body.push_back(loop(
      "i", N,
      stmts(loop(
          "j", N,
          stmts(decl("temp2", ScalarType{32, true}, lit(0)),
                loop("k", N,
                     stmts(if_stmt(
                         lt(var("k"), var("i")),
                         stmts(assign_array(
                                   "Cm", idx2("k", "j", N),
                                   A("Cm", idx2("k", "j", N)) +
                                       A("Am", idx2("i", "k", N)) *
                                           A("Bm", idx2("i", "j", N))),
                               assign("temp2",
                                      var("temp2") +
                                          A("Bm", idx2("k", "j", N)) *
                                              A("Am", idx2("i", "k", N))))))),
                assign_array("Cm", idx2("i", "j", N),
                             A("Cm", idx2("i", "j", N)) +
                                 A("Bm", idx2("i", "j", N)) +
                                 var("temp2")))))));
  f.body.push_back(ret(A("Cm", lit(0))));
  return f;
}

Function pb_trmm() {
  Function f;
  f.name = "trmm";
  f.params = {in_array("Am", N * N)};
  f.body.push_back(decl_array("Bm", ScalarType{32, true}, N * N));
  f.body.push_back(loop(
      "i", N,
      stmts(loop(
          "j", N,
          stmts(decl("acc", ScalarType{32, true},
                     A("Bm", idx2("i", "j", N))),
                loop("k", N,
                     stmts(if_stmt(gt(var("k"), var("i")),
                                   stmts(assign(
                                       "acc",
                                       var("acc") +
                                           A("Am", idx2("k", "i", N)) *
                                               A("Bm", idx2("k", "j", N))))))),
                assign_array("Bm", idx2("i", "j", N), var("acc")))))));
  f.body.push_back(ret(A("Bm", lit(0))));
  return f;
}

Function pb_trisolv() {
  Function f;
  f.name = "trisolv";
  f.params = {in_array("L", N * N), in_array("b", N)};
  f.body.push_back(decl_array("x", ScalarType{32, true}, N));
  f.body.push_back(loop(
      "i", N,
      stmts(decl("acc", ScalarType{32, true}, A("b", var("i")) << lit(8)),
            loop("j", N,
                 stmts(if_stmt(lt(var("j"), var("i")),
                               stmts(assign("acc",
                                            var("acc") -
                                                A("L", idx2("i", "j", N)) *
                                                    A("x", var("j"))))))),
            assign_array("x", var("i"),
                         var("acc") / (A("L", idx2("i", "i", N)) | lit(1))))));
  f.body.push_back(ret(A("x", lit(N - 1))));
  return f;
}

Function pb_lu() {
  Function f;
  f.name = "lu";
  f.params = {in_array("Am", N * N)};
  f.body.push_back(loop(
      "i", N,
      stmts(loop("j", N,
                 stmts(if_stmt(
                     lt(var("j"), var("i")),
                     stmts(decl("acc", ScalarType{32, true},
                                A("Am", idx2("i", "j", N))),
                           loop("k", N,
                                stmts(if_stmt(
                                    lt(var("k"), var("j")),
                                    stmts(assign(
                                        "acc",
                                        var("acc") -
                                            A("Am", idx2("i", "k", N)) *
                                                A("Am", idx2("k", "j", N)) >>
                                                lit(4)))))),
                           assign_array(
                               "Am", idx2("i", "j", N),
                               var("acc") /
                                   (A("Am", idx2("j", "j", N)) | lit(1)))),
                     stmts(decl("acc2", ScalarType{32, true},
                                A("Am", idx2("i", "j", N))),
                           loop("k2", N,
                                stmts(if_stmt(
                                    lt(var("k2"), var("i")),
                                    stmts(assign(
                                        "acc2",
                                        var("acc2") -
                                            A("Am", idx2("i", "k2", N)) *
                                                A("Am", idx2("k2", "j", N)) >>
                                                lit(4)))))),
                           assign_array("Am", idx2("i", "j", N),
                                        var("acc2")))))))));
  f.body.push_back(ret(A("Am", lit(0))));
  return f;
}

Function pb_ludcmp() {
  Function f;
  f.name = "ludcmp";
  f.params = {in_array("Am", N * N), in_array("b", N)};
  f.body.push_back(decl_array("y", ScalarType{32, true}, N));
  f.body.push_back(loop(
      "i", N,
      stmts(decl("acc", ScalarType{32, true}, A("b", var("i"))),
            loop("j", N,
                 stmts(if_stmt(lt(var("j"), var("i")),
                               stmts(assign("acc",
                                            var("acc") -
                                                A("Am", idx2("i", "j", N)) *
                                                    A("y", var("j")) >>
                                                lit(4)))))),
            assign_array("y", var("i"), var("acc")))));
  f.body.push_back(decl("det", ScalarType{32, true}, lit(1 << 8)));
  f.body.push_back(loop(
      "i2", N,
      stmts(assign("det", var("det") * A("Am", idx2("i2", "i2", N)) >>
                              lit(8)))));
  f.body.push_back(ret(A("y", lit(N - 1)) + var("det")));
  return f;
}

Function pb_cholesky() {
  Function f;
  f.name = "cholesky";
  f.params = {in_array("Am", N * N)};
  f.body.push_back(loop(
      "i", N,
      stmts(
          loop("j", N,
               stmts(if_stmt(
                   lt(var("j"), var("i")),
                   stmts(decl("acc", ScalarType{32, true},
                              A("Am", idx2("i", "j", N))),
                         loop("k", N,
                              stmts(if_stmt(
                                  lt(var("k"), var("j")),
                                  stmts(assign(
                                      "acc",
                                      var("acc") -
                                          A("Am", idx2("i", "k", N)) *
                                              A("Am", idx2("j", "k", N)) >>
                                              lit(4)))))),
                         assign_array(
                             "Am", idx2("i", "j", N),
                             var("acc") /
                                 (A("Am", idx2("j", "j", N)) | lit(1))))))),
          // diagonal: integer "sqrt" via Newton step
          decl("diag", ScalarType{32, true}, A("Am", idx2("i", "i", N))),
          decl("root", ScalarType{32, true},
               (var("diag") + lit(256)) >> lit(1)),
          assign("root",
                 (var("root") + var("diag") / (var("root") | lit(1))) >>
                     lit(1)),
          assign_array("Am", idx2("i", "i", N), var("root")))));
  f.body.push_back(ret(A("Am", lit(0))));
  return f;
}

Function pb_gramschmidt() {
  Function f;
  f.name = "gramschmidt";
  f.params = {in_array("Am", N * N)};
  f.body.push_back(decl_array("R", ScalarType{32, true}, N * N));
  f.body.push_back(decl_array("Q", ScalarType{32, true}, N * N));
  f.body.push_back(loop(
      "k", N,
      stmts(
          decl("nrm", ScalarType{32, true}, lit(0)),
          loop("i", N,
               stmts(assign("nrm", var("nrm") +
                                       A("Am", idx2("i", "k", N)) *
                                           A("Am", idx2("i", "k", N)) >>
                                       lit(4)))),
          decl("root", ScalarType{32, true},
               (var("nrm") + lit(256)) >> lit(1)),
          assign("root",
                 (var("root") + var("nrm") / (var("root") | lit(1))) >>
                     lit(1)),
          assign_array("R", idx2("k", "k", N), var("root")),
          loop("i2", N,
               stmts(assign_array(
                   "Q", idx2("i2", "k", N),
                   (A("Am", idx2("i2", "k", N)) << lit(8)) /
                       (var("root") | lit(1))))))));
  f.body.push_back(ret(A("Q", lit(0)) + A("R", lit(0))));
  return f;
}

Function pb_durbin() {
  Function f;
  f.name = "durbin";
  f.params = {in_array("r", N)};
  f.body.push_back(decl_array("y", ScalarType{32, true}, N));
  f.body.push_back(decl("alpha", ScalarType{32, true},
                        lit(0) - A("r", lit(0))));
  f.body.push_back(decl("beta", ScalarType{32, true}, lit(1 << 8)));
  f.body.push_back(loop(
      "k", N - 1,
      stmts(
          assign("beta",
                 (var("beta") * (lit(1 << 8) -
                                 (var("alpha") * var("alpha") >> lit(8)))) >>
                     lit(8)),
          decl("sum", ScalarType{32, true}, lit(0)),
          loop("i", N,
               stmts(if_stmt(
                   lt(var("i"), var("k") + lit(1)),
                   stmts(assign("sum",
                                var("sum") +
                                    A("r", (var("k") - var("i")) &
                                               lit(N - 1)) *
                                        A("y", var("i")) >>
                                    lit(8)))))),
          assign("alpha",
                 (lit(0) - (A("r", var("k") + lit(1)) + var("sum")) <<
                  lit(8)) /
                     (var("beta") | lit(1))),
          assign_array("y", var("k") + lit(1), var("alpha")))));
  f.body.push_back(ret(A("y", lit(N - 1))));
  return f;
}

Function pb_jacobi1d() {
  constexpr long n = 16, steps = 4;
  Function f;
  f.name = "jacobi_1d";
  f.params = {in_array("Aa", n)};
  f.body.push_back(decl_array("Bb", ScalarType{32, true}, n));
  f.body.push_back(loop(
      "t", steps,
      stmts(loop("i", n - 2,
                 stmts(assign_array(
                     "Bb", var("i") + lit(1),
                     (A("Aa", var("i")) + A("Aa", var("i") + lit(1)) +
                      A("Aa", var("i") + lit(2))) /
                         lit(3)))),
            loop("i2", n - 2,
                 stmts(assign_array("Aa", var("i2") + lit(1),
                                    A("Bb", var("i2") + lit(1))))))));
  f.body.push_back(ret(A("Aa", lit(1))));
  return f;
}

Function pb_jacobi2d() {
  constexpr long n = 6, steps = 2;
  Function f;
  f.name = "jacobi_2d";
  f.params = {in_array("Aa", n * n)};
  f.body.push_back(decl_array("Bb", ScalarType{32, true}, n * n));
  f.body.push_back(loop(
      "t", steps,
      stmts(loop(
                "i", n - 2,
                stmts(loop(
                    "j", n - 2,
                    stmts(assign_array(
                        "Bb", (var("i") + lit(1)) * lit(n) + var("j") + lit(1),
                        (A("Aa", (var("i") + lit(1)) * lit(n) + var("j") +
                                     lit(1)) +
                         A("Aa", (var("i") + lit(1)) * lit(n) + var("j")) +
                         A("Aa", (var("i") + lit(1)) * lit(n) + var("j") +
                                     lit(2)) +
                         A("Aa", var("i") * lit(n) + var("j") + lit(1)) +
                         A("Aa", (var("i") + lit(2)) * lit(n) + var("j") +
                                     lit(1))) /
                            lit(5)))))),
            loop("i2", n - 2,
                 stmts(loop("j2", n - 2,
                            stmts(assign_array(
                                "Aa",
                                (var("i2") + lit(1)) * lit(n) + var("j2") +
                                    lit(1),
                                A("Bb", (var("i2") + lit(1)) * lit(n) +
                                            var("j2") + lit(1))))))))));
  f.body.push_back(ret(A("Aa", lit(n + 1))));
  return f;
}

Function pb_seidel2d() {
  constexpr long n = 6, steps = 2;
  Function f;
  f.name = "seidel_2d";
  f.params = {in_array("Aa", n * n)};
  ExprPtr nine_point =
      A("Aa", var("i") * lit(n) + var("j")) +
      A("Aa", var("i") * lit(n) + var("j") + lit(1)) +
      A("Aa", var("i") * lit(n) + var("j") + lit(2)) +
      A("Aa", (var("i") + lit(1)) * lit(n) + var("j")) +
      A("Aa", (var("i") + lit(1)) * lit(n) + var("j") + lit(1)) +
      A("Aa", (var("i") + lit(1)) * lit(n) + var("j") + lit(2)) +
      A("Aa", (var("i") + lit(2)) * lit(n) + var("j")) +
      A("Aa", (var("i") + lit(2)) * lit(n) + var("j") + lit(1)) +
      A("Aa", (var("i") + lit(2)) * lit(n) + var("j") + lit(2));
  auto j_body = stmts(assign_array(
      "Aa", (var("i") + lit(1)) * lit(n) + var("j") + lit(1),
      std::move(nine_point) / lit(9)));
  auto i_body = stmts(loop("j", n - 2, std::move(j_body)));
  f.body.push_back(
      loop("t", steps, stmts(loop("i", n - 2, std::move(i_body)))));
  f.body.push_back(ret(A("Aa", lit(n + 1))));
  return f;
}

Function pb_heat3d() {
  constexpr long n = 4, steps = 2;
  Function f;
  f.name = "heat_3d";
  f.params = {in_array("Aa", n * n * n)};
  f.body.push_back(decl_array("Bb", ScalarType{32, true}, n * n * n));
  f.body.push_back(loop(
      "t", steps,
      stmts(loop(
          "i", n - 2,
          stmts(loop(
              "j", n - 2,
              stmts(loop(
                  "k", n - 2,
                  stmts(assign_array(
                      "Bb",
                      (var("i") + lit(1)) * lit(n * n) +
                          (var("j") + lit(1)) * lit(n) + var("k") + lit(1),
                      (A("Aa", var("i") * lit(n * n) +
                                   (var("j") + lit(1)) * lit(n) + var("k") +
                                   lit(1)) +
                       A("Aa", (var("i") + lit(2)) * lit(n * n) +
                                   (var("j") + lit(1)) * lit(n) + var("k") +
                                   lit(1)) +
                       A("Aa", (var("i") + lit(1)) * lit(n * n) +
                                   var("j") * lit(n) + var("k") + lit(1)) +
                       A("Aa", (var("i") + lit(1)) * lit(n * n) +
                                   (var("j") + lit(2)) * lit(n) + var("k") +
                                   lit(1)) +
                       A("Aa", (var("i") + lit(1)) * lit(n * n) +
                                   (var("j") + lit(1)) * lit(n) + var("k")) +
                       A("Aa", (var("i") + lit(1)) * lit(n * n) +
                                   (var("j") + lit(1)) * lit(n) + var("k") +
                                   lit(2))) /
                          lit(6)))))))))));
  f.body.push_back(ret(A("Bb", lit(n * n + n + 1))));
  return f;
}

Function pb_fdtd2d() {
  constexpr long n = 6, steps = 2;
  Function f;
  f.name = "fdtd_2d";
  f.params = {in_array("ex", n * n), in_array("ey", n * n),
              in_array("hz", n * n)};
  auto ey_update = stmts(assign_array(
      "ey", var("i") * lit(n) + var("j") + lit(1),
      A("ey", var("i") * lit(n) + var("j") + lit(1)) -
          ((A("hz", var("i") * lit(n) + var("j") + lit(1)) -
            A("hz", var("i") * lit(n) + var("j"))) >>
           lit(1))));
  auto ex_update = stmts(assign_array(
      "ex", (var("i2") + lit(1)) * lit(n) + var("j2"),
      A("ex", (var("i2") + lit(1)) * lit(n) + var("j2")) -
          ((A("hz", (var("i2") + lit(1)) * lit(n) + var("j2")) -
            A("hz", var("i2") * lit(n) + var("j2"))) >>
           lit(1))));
  auto hz_update = stmts(assign_array(
      "hz", var("i3") * lit(n) + var("j3"),
      A("hz", var("i3") * lit(n) + var("j3")) -
          ((A("ex", (var("i3") + lit(1)) * lit(n) + var("j3")) -
            A("ex", var("i3") * lit(n) + var("j3")) +
            A("ey", var("i3") * lit(n) + var("j3") + lit(1)) -
            A("ey", var("i3") * lit(n) + var("j3"))) >>
           lit(1))));
  auto t_body = stmts(
      loop("i", n, stmts(loop("j", n - 1, std::move(ey_update)))),
      loop("i2", n - 1, stmts(loop("j2", n, std::move(ex_update)))),
      loop("i3", n - 1, stmts(loop("j3", n - 1, std::move(hz_update)))));
  f.body.push_back(loop("t", steps, std::move(t_body)));
  f.body.push_back(ret(A("hz", lit(0))));
  return f;
}

Function pb_adi() {
  constexpr long n = 6, steps = 2;
  Function f;
  f.name = "adi";
  f.params = {in_array("u", n * n)};
  f.body.push_back(decl_array("v", ScalarType{32, true}, n * n));
  f.body.push_back(decl_array("p", ScalarType{32, true}, n * n));
  f.body.push_back(decl_array("q", ScalarType{32, true}, n * n));
  // Column sweep: tridiagonal forward recurrence on p/q.
  auto sweep_body = stmts(
      assign_array("p", idx2("i", "j", n),
                   (lit(64) << lit(8)) /
                       (((A("p", var("i") * lit(n) + var("j")) >> lit(2)) +
                         lit(128)) |
                        lit(1))),
      assign_array("q", idx2("i", "j", n),
                   A("u", idx2("j", "i", n)) +
                       (A("q", var("i") * lit(n) + var("j")) >> lit(2))));
  auto back_body = stmts(assign_array(
      "v", idx2("i2", "j2", n),
      A("p", idx2("i2", "j2", n)) * A("q", idx2("i2", "j2", n)) >> lit(8)));
  auto copy_body = stmts(assign_array("u", idx2("i3", "j3", n),
                                      A("v", idx2("j3", "i3", n))));
  auto t_body = stmts(
      loop("i", n - 2, stmts(loop("j", n - 2, std::move(sweep_body)))),
      loop("i2", n - 2, stmts(loop("j2", n - 2, std::move(back_body)))),
      loop("i3", n - 2, stmts(loop("j3", n - 2, std::move(copy_body)))));
  f.body.push_back(loop("t", steps, std::move(t_body)));
  f.body.push_back(ret(A("u", lit(0))));
  return f;
}

Function pb_correlation() {
  Function f;
  f.name = "correlation";
  f.params = {in_array("data", N * N)};
  f.body.push_back(decl_array("mean", ScalarType{32, true}, N));
  f.body.push_back(decl_array("corr", ScalarType{32, true}, N * N));
  f.body.push_back(loop(
      "j", N,
      stmts(decl("m", ScalarType{32, true}, lit(0)),
            loop("i", N, stmts(assign("m", var("m") +
                                               A("data", idx2("i", "j", N))))),
            assign_array("mean", var("j"), var("m") / lit(N)))));
  f.body.push_back(loop(
      "j1", N,
      stmts(loop(
          "j2", N,
          stmts(decl("acc", ScalarType{32, true}, lit(0)),
                loop("i2", N,
                     stmts(assign(
                         "acc",
                         var("acc") +
                             (A("data", idx2("i2", "j1", N)) -
                              A("mean", var("j1"))) *
                                 (A("data", idx2("i2", "j2", N)) -
                                  A("mean", var("j2"))) >>
                             lit(4)))),
                assign_array("corr", idx2("j1", "j2", N), var("acc")))))));
  f.body.push_back(ret(A("corr", lit(0))));
  return f;
}

Function pb_covariance() {
  Function f;
  f.name = "covariance";
  f.params = {in_array("data", N * N)};
  f.body.push_back(decl_array("mean", ScalarType{32, true}, N));
  f.body.push_back(decl_array("cov", ScalarType{32, true}, N * N));
  f.body.push_back(loop(
      "j", N,
      stmts(decl("m", ScalarType{32, true}, lit(0)),
            loop("i", N, stmts(assign("m", var("m") +
                                               A("data", idx2("i", "j", N))))),
            assign_array("mean", var("j"), var("m") / lit(N)))));
  f.body.push_back(loop(
      "i2", N,
      stmts(loop("j2", N,
                 stmts(assign_array(
                     "data", idx2("i2", "j2", N),
                     A("data", idx2("i2", "j2", N)) -
                         A("mean", var("j2"))))))));
  f.body.push_back(loop(
      "j3", N,
      stmts(loop(
          "j4", N,
          stmts(decl("acc", ScalarType{32, true}, lit(0)),
                loop("i3", N,
                     stmts(assign("acc",
                                  var("acc") +
                                      A("data", idx2("i3", "j3", N)) *
                                          A("data", idx2("i3", "j4", N)) >>
                                      lit(4)))),
                assign_array("cov", idx2("j3", "j4", N),
                             var("acc") / lit(N - 1)))))));
  f.body.push_back(ret(A("cov", lit(0))));
  return f;
}

Function pb_floyd_warshall() {
  Function f;
  f.name = "floyd_warshall";
  f.params = {in_array("path", N * N)};
  f.body.push_back(loop(
      "k", N,
      stmts(loop(
          "i", N,
          stmts(loop(
              "j", N,
              stmts(decl("through", ScalarType{32, true},
                         A("path", idx2("i", "k", N)) +
                             A("path", idx2("k", "j", N))),
                    assign_array(
                        "path", idx2("i", "j", N),
                        select(lt(var("through"),
                                  A("path", idx2("i", "j", N))),
                               var("through"),
                               A("path", idx2("i", "j", N)))))))))));
  f.body.push_back(ret(A("path", lit(N - 1))));
  return f;
}

Function pb_nussinov() {
  Function f;
  f.name = "nussinov";
  f.params = {in_array("seq", N)};
  f.body.push_back(decl_array("table", ScalarType{32, true}, N * N));
  f.body.push_back(loop(
      "i", N,
      stmts(loop(
          "j", N,
          stmts(if_stmt(
              gt(var("j"), var("i")),
              stmts(
                  decl("best", ScalarType{32, true},
                       A("table", idx2("i", "j", N))),
                  decl("pair_bonus", ScalarType{32, true},
                       select(eq(A("seq", var("i")) + A("seq", var("j")),
                                 lit(3)),
                              lit(1), lit(0))),
                  decl("diag", ScalarType{32, true},
                       A("table", (var("i") + lit(1)) * lit(N) + var("j") -
                                      lit(1)) +
                           var("pair_bonus")),
                  assign("best", select(gt(var("diag"), var("best")),
                                        var("diag"), var("best"))),
                  loop("k", N,
                       stmts(if_stmt(
                           lt(var("k"), var("j") - var("i")),
                           stmts(
                               decl("split", ScalarType{32, true},
                                    A("table", var("i") * lit(N) + var("i") +
                                                   var("k")) +
                                        A("table",
                                          (var("i") + var("k") + lit(1)) *
                                                  lit(N) +
                                              var("j"))),
                               assign("best",
                                      select(gt(var("split"), var("best")),
                                             var("split"), var("best"))))))),
                  assign_array("table", idx2("i", "j", N),
                               var("best")))))))));
  f.body.push_back(ret(A("table", lit(N - 1))));
  return f;
}

Function pb_deriche() {
  constexpr long n = 16;
  Function f;
  f.name = "deriche";
  f.params = {in_array("img", n), in_scalar("a1"), in_scalar("a2")};
  f.body.push_back(decl_array("y1", ScalarType{32, true}, n));
  f.body.push_back(decl_array("y2", ScalarType{32, true}, n));
  // Forward IIR pass.
  f.body.push_back(decl("ym1", ScalarType{32, true}, lit(0)));
  f.body.push_back(decl("xm1", ScalarType{32, true}, lit(0)));
  f.body.push_back(loop(
      "i", n,
      stmts(decl("yv", ScalarType{32, true},
                 (var("a1") * A("img", var("i")) + var("a2") * var("xm1") +
                  lit(200) * var("ym1")) >>
                     lit(8)),
            assign("xm1", A("img", var("i"))), assign("ym1", var("yv")),
            assign_array("y1", var("i"), var("yv")))));
  // Backward IIR pass.
  f.body.push_back(decl("yp1", ScalarType{32, true}, lit(0)));
  f.body.push_back(loop(
      "i2", n,
      stmts(decl("ridx", ScalarType{32, true},
                 lit(n - 1) - var("i2")),
            decl("yv2", ScalarType{32, true},
                 (var("a2") * A("img", var("ridx")) +
                  lit(200) * var("yp1")) >>
                     lit(8)),
            assign("yp1", var("yv2")),
            assign_array("y2", var("ridx"), var("yv2")))));
  f.body.push_back(decl("total", ScalarType{32, true}, lit(0)));
  f.body.push_back(loop(
      "i3", n,
      stmts(assign("total", var("total") + A("y1", var("i3")) +
                                A("y2", var("i3"))))));
  f.body.push_back(ret(var("total")));
  return f;
}

Function pb_doitgen() {
  constexpr long nq = 4, np = 4;
  Function f;
  f.name = "doitgen";
  f.params = {in_array("Aa", nq * np), in_array("c4", np * np)};
  f.body.push_back(decl_array("sum", ScalarType{32, true}, np));
  f.body.push_back(loop(
      "q", nq,
      stmts(loop("p", np,
                 stmts(decl("acc", ScalarType{32, true}, lit(0)),
                       loop("s", np,
                            stmts(assign("acc",
                                         var("acc") +
                                             A("Aa", idx2("q", "s", np)) *
                                                 A("c4",
                                                   idx2("s", "p", np))))),
                       assign_array("sum", var("p"), var("acc")))),
            loop("p2", np,
                 stmts(assign_array("Aa", idx2("q", "p2", np),
                                    A("sum", var("p2"))))))));
  f.body.push_back(ret(A("Aa", lit(0))));
  return f;
}

}  // namespace

std::vector<SuiteProgram> polybench_all() {
  std::vector<SuiteProgram> v;
  const auto add = [&v](Function f) {
    v.push_back(SuiteProgram{"polybench", f.name, std::move(f)});
  };
  add(pb_2mm());
  add(pb_3mm());
  add(pb_adi());
  add(pb_atax());
  add(pb_bicg());
  add(pb_cholesky());
  add(pb_correlation());
  add(pb_covariance());
  add(pb_deriche());
  add(pb_doitgen());
  add(pb_durbin());
  add(pb_fdtd2d());
  add(pb_floyd_warshall());
  add(pb_gemm());
  add(pb_gemver());
  add(pb_gesummv());
  add(pb_gramschmidt());
  add(pb_heat3d());
  add(pb_jacobi1d());
  add(pb_jacobi2d());
  add(pb_lu());
  add(pb_ludcmp());
  add(pb_mvt());
  add(pb_nussinov());
  add(pb_seidel2d());
  add(pb_symm());
  add(pb_syr2k());
  add(pb_syrk());
  add(pb_trisolv());
  add(pb_trmm());
  return v;
}

std::vector<SuiteProgram> all_real_world() {
  std::vector<SuiteProgram> v = machsuite_all();
  for (auto& p : chstone_all()) v.push_back(std::move(p));
  for (auto& p : polybench_all()) v.push_back(std::move(p));
  return v;
}

}  // namespace gnnhls
