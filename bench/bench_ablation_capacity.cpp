// Ablation: model capacity (depth x width) for the PNA backbone.
//
// The paper fixes 5 layers x hidden 300 for all models; this sweep shows
// where returns diminish at benchmark scale, justifying the smoke-scale
// defaults used by the table benches.
#include "bench_common.h"

namespace gnnhls::bench {
namespace {

int run(int argc, const char* const* argv) {
  const BenchConfig cfg = parse_bench_config(argc, argv);
  print_header("Ablation — PNA capacity sweep (DFG, LUT)", cfg);

  Timer total;
  const std::vector<Sample> dfg = build_dfg(cfg);
  print_dataset_line("DFG", dfg);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(dfg.size()), cfg.seed);

  const std::vector<int> layer_options = {1, 2, 3, 5};
  const std::vector<int> hidden_options = {16, 32, 64};
  std::vector<std::vector<double>> results(
      layer_options.size(), std::vector<double>(hidden_options.size(), 0.0));

  std::vector<std::function<void()>> jobs;
  for (std::size_t l = 0; l < layer_options.size(); ++l) {
    for (std::size_t h = 0; h < hidden_options.size(); ++h) {
      jobs.push_back([&, l, h] {
        ExperimentSpec spec;
        spec.kind = GnnKind::kPna;
        spec.approach = Approach::kOffTheShelf;
        spec.metric = Metric::kLut;
        spec.model = model_config(cfg);
        spec.model.layers = layer_options[l];
        spec.model.hidden = hidden_options[h];
        spec.train = train_config(cfg);
        spec.protocol = protocol(cfg);
        results[l][h] = run_regression_experiment(spec, dfg, split).test_mape;
      });
    }
  }
  run_parallel(std::move(jobs), cfg.threads);

  TextTable table({"layers \\ hidden", "16", "32", "64"});
  BenchJsonLog json_log;
  for (std::size_t l = 0; l < layer_options.size(); ++l) {
    std::vector<std::string> row{std::to_string(layer_options[l])};
    for (std::size_t h = 0; h < hidden_options.size(); ++h) {
      row.push_back(TextTable::pct(results[l][h]));
      json_log.add("layers=" + std::to_string(layer_options[l]) +
                       " hidden=" + std::to_string(hidden_options[h]),
                   results[l][h], "mape");
    }
    table.add_row(std::move(row));
  }
  std::cout << "\nLUT MAPE by capacity:\n" << table.to_string();
  write_bench_json(cfg, json_log, "ablation_capacity");

  ShapeChecks checks;
  // Message passing must help: >=2 layers beats 1 layer at equal width.
  double best_deep = 1e9, one_layer = 1e9;
  for (std::size_t h = 0; h < hidden_options.size(); ++h) {
    one_layer = std::min(one_layer, results[0][h]);
    for (std::size_t l = 1; l < layer_options.size(); ++l) {
      best_deep = std::min(best_deep, results[l][h]);
    }
  }
  checks.check("depth >= 2 beats depth 1 (message passing matters)",
               best_deep < one_layer);
  checks.summary();
  std::cout << "total wall time: " << TextTable::num(total.seconds(), 1)
            << "s\n";
  return 0;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
