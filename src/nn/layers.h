// Dense building blocks: Linear, Mlp, Embedding, GruCell.
//
// All layers take the Tape explicitly so one forward pass = one tape; they
// hold Parameters only (no activation state), so a layer instance can be
// reused across tapes and graphs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "support/rng.h"
#include "tensor/autograd.h"

namespace gnnhls {

/// Fully connected layer: y = x W + b (bias optional).
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, Rng& rng, bool with_bias = true,
         std::string name = "linear");

  Var forward(Tape& tape, const Var& x) const;

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  bool has_bias() const { return with_bias_; }
  /// The weight leaf [in_dim, out_dim] — what the fused message-passing ops
  /// consume directly (forward() is matmul(x, weight()) plus optional bias).
  const Var& weight() const { return weight_.var(); }

 private:
  int in_dim_;
  int out_dim_;
  bool with_bias_;
  Parameter weight_;
  Parameter bias_;
};

/// Multi-layer perceptron with ReLU between layers (none after the last).
/// dims = {in, h1, ..., out}; the paper's regression head is
/// {hidden, 2*hidden, hidden, 1}.
class Mlp : public Module {
 public:
  Mlp(const std::vector<int>& dims, Rng& rng, std::string name = "mlp");

  Var forward(Tape& tape, const Var& x) const;

  int out_dim() const { return layers_.back()->out_dim(); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
};

/// Lookup table mapping a categorical id to a dense row.
class Embedding : public Module {
 public:
  Embedding(int num_entries, int dim, Rng& rng, std::string name = "embed");

  /// ids are clamped into range by the caller; out is [ids.size(), dim].
  Var forward(Tape& tape, const std::vector<int>& ids) const;

  int num_entries() const { return table_.value().rows(); }
  int dim() const { return table_.value().cols(); }

 private:
  Parameter table_;
};

/// Gated recurrent unit cell operating row-wise on [n, dim] states
/// (used by the GGNN layer: state = node embedding, input = aggregated
/// messages).
class GruCell : public Module {
 public:
  GruCell(int dim, Rng& rng, std::string name = "gru");

  /// h' = (1-z)*h + z*htilde, standard GRU gating.
  Var forward(Tape& tape, const Var& input, const Var& state) const;

 private:
  std::unique_ptr<Linear> update_x_, update_h_;
  std::unique_ptr<Linear> reset_x_, reset_h_;
  std::unique_ptr<Linear> cand_x_, cand_h_;
};

}  // namespace gnnhls
