// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// log-scale histograms with a Prometheus-style text exposition.
//
// Sharding rule (the hot-path contract): every Counter and Histogram is
// striped over kMetricStripes cache-line-padded atomic cells; a writer pays
// ONE relaxed fetch_add on its thread's stripe — never a lock, never a
// contended line when writer threads land on different stripes. Gauges are
// a single relaxed atomic (set/add are rare, snapshot-ish operations).
//
// Merge determinism: a snapshot (value(), render_text()) sums the stripes
// in fixed stripe order. Counts and sums are unsigned 64-bit integers, so
// the merged value is a commutative exact sum — the same multiset of
// recorded events produces byte-identical render_text() output regardless
// of how many threads recorded them or which stripes they landed on
// (asserted by tests/obs_test.cpp across thread counts). Histograms record
// integer values (microseconds, by convention) for exactly this reason:
// float sums would make the merge order observable.
//
// Registry instances: MetricsRegistry::global() is the process-wide scrape
// surface (what the STATS wire frame renders). Subsystems whose ObsConfig
// has metrics=false keep their counters in a private MetricsRegistry
// instance instead — same storage, same exact facades, nothing published.
// Metric objects live as long as their registry; the returned pointers are
// stable (never invalidated by later registrations).
//
// Observability never touches computed values: this header's types count
// events and read clocks, nothing else.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace gnnhls {

/// Stripe count for counters/histograms. Power of two; 8 stripes cover the
/// small worker pools this repo runs (schedulers default to a handful of
/// workers) without bloating every metric to a page.
inline constexpr int kMetricStripes = 8;

/// Histogram buckets: bucket i counts values <= 2^i (i in [0, 30]), plus a
/// +Inf overflow bucket. In microseconds that spans 1us .. ~18 minutes —
/// every latency this system can produce.
inline constexpr int kHistogramBuckets = 31;

/// Small dense per-thread stripe index (thread id hashes collide; a
/// monotonically assigned index does not until kMetricStripes threads).
int obs_thread_stripe();

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[obs_thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  /// Exact sum over stripes. Monotonic; exact once writers quiesce.
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kMetricStripes];
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  /// Upper bound of bucket i (2^i), for rendering and tests.
  static std::uint64_t bucket_upper_bound(int i) {
    return std::uint64_t{1} << i;
  }
  /// Index of the bucket counting `v`: the smallest i with v <= 2^i, or
  /// kHistogramBuckets (the +Inf bucket) past the last bound.
  static int bucket_index(std::uint64_t v);

  void record(std::uint64_t v) {
    Cell& c = cells_[obs_thread_stripe()];
    c.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    c.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Per-bucket (NOT cumulative) count; i may be kHistogramBuckets (+Inf).
  std::uint64_t bucket_count(int i) const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) {
      total += c.buckets[i].load(std::memory_order_relaxed);
    }
    return total;
  }
  std::uint64_t count() const;
  std::uint64_t sum() const;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> buckets[kHistogramBuckets + 1] = {};
    std::atomic<std::uint64_t> sum{0};
  };
  Cell cells_[kMetricStripes];
};

class MetricsRegistry {
 public:
  /// The process-wide scrape surface (STATS wire frame, render_text).
  static MetricsRegistry& global();

  /// Private instances back subsystems whose ObsConfig.metrics is false,
  /// and give tests isolation from the global namespace.
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) the metric named `name` with the pre-rendered
  /// label string `labels` (e.g. R"(sched="3")" — no braces). Pointers are
  /// stable for the registry's lifetime. Re-registering the same
  /// (name, labels) returns the same object; registering one name as two
  /// different metric kinds throws.
  Counter* counter(const std::string& name, const std::string& labels = "");
  Gauge* gauge(const std::string& name, const std::string& labels = "");
  Histogram* histogram(const std::string& name,
                       const std::string& labels = "");

  /// Prometheus-style text exposition, deterministically ordered by
  /// (name, labels): one `# TYPE` line per family, `name{labels} value`
  /// per series, and `_bucket{le=...}` (cumulative) / `_sum` / `_count`
  /// series per histogram.
  std::string render_text() const;

  /// Monotonic process-wide id for labeling one subsystem instance's
  /// metrics apart from its siblings (tests construct many schedulers).
  static std::uint64_t next_instance_id();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& find_or_create(const std::string& name, const std::string& labels,
                         Kind kind);

  mutable std::mutex mu_;  // guards the map, never a metric's hot path
  std::map<std::pair<std::string, std::string>, Metric> metrics_;
};

}  // namespace gnnhls
