#include "gnn/encoders.h"

#include <algorithm>
#include <cmath>

#include "gnn/mp_executor.h"

namespace gnnhls {

std::string gnn_kind_name(GnnKind kind) {
  switch (kind) {
    case GnnKind::kGcn: return "GCN";
    case GnnKind::kGcnVirtual: return "GCN-V";
    case GnnKind::kSgc: return "SGC";
    case GnnKind::kSage: return "SAGE";
    case GnnKind::kArma: return "ARMA";
    case GnnKind::kPan: return "PAN";
    case GnnKind::kGin: return "GIN";
    case GnnKind::kGinVirtual: return "GIN-V";
    case GnnKind::kPna: return "PNA";
    case GnnKind::kGat: return "GAT";
    case GnnKind::kGgnn: return "GGNN";
    case GnnKind::kRgcn: return "RGCN";
    case GnnKind::kUnet: return "UNet";
    case GnnKind::kFilm: return "FiLM";
    case GnnKind::kCount: break;
  }
  GNNHLS_CHECK(false, "bad GnnKind");
  return {};
}

GnnKind gnn_kind_from_name(const std::string& name) {
  for (GnnKind k : all_gnn_kinds()) {
    if (gnn_kind_name(k) == name) return k;
  }
  GNNHLS_CHECK(false, "unknown GNN kind: " + name);
  return GnnKind::kGcn;
}

std::vector<GnnKind> all_gnn_kinds() {
  std::vector<GnnKind> kinds;
  kinds.reserve(kNumGnnKinds);
  for (int i = 0; i < kNumGnnKinds; ++i) {
    kinds.push_back(static_cast<GnnKind>(i));
  }
  return kinds;
}

namespace {

// ----- shared message-passing helpers -----

// Encoders must stay segment-correct: a GraphTensors may be the disjoint
// union of several member graphs (GraphBatch), so any whole-matrix
// reduction (virtual-node pooling, PNA degree averages, top-k pooling)
// has to respect gt.graph_id / gt.num_graphs. Per-node and per-edge ops
// are batch-oblivious since union edges never cross member graphs.
//
// Aggregation itself lives in gnn/mp_executor.h: every encoder routes its
// message passing through mp_aggregate_sum / mp_aggregate_mean /
// mp_gcn_propagate / mp_relational_aggregate, which pick the fused or the
// reference composition according to cfg_.fused (bit-identical either way).

// ----- GCN -----

class GcnEncoder : public GnnEncoder {
 public:
  GcnEncoder(EncoderConfig cfg, Rng& rng, bool with_virtual)
      : GnnEncoder(cfg),
        with_virtual_(with_virtual),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "gcn.in")) {
    register_module(*input_);
    for (int l = 0; l < cfg.layers; ++l) {
      convs_.push_back(std::make_unique<Linear>(
          cfg.hidden, cfg.hidden, rng, true, "gcn.conv" + std::to_string(l)));
      register_module(*convs_.back());
      if (with_virtual_) {
        virtual_mlps_.push_back(std::make_unique<Linear>(
            cfg.hidden, cfg.hidden, rng, true,
            "gcn.virt" + std::to_string(l)));
        register_module(*virtual_mlps_.back());
      }
    }
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    Var h = input_->forward(t, x);
    // One virtual-node embedding per member graph.
    Var virt = t.leaf(Matrix(gt.num_graphs, cfg_.hidden));
    for (std::size_t l = 0; l < convs_.size(); ++l) {
      if (with_virtual_) {
        h = t.add(h, t.broadcast_rows_by_segment(virt, gt.graph_id,
                                                 gt.graph_part));
      }
      h = t.relu(
          convs_[l]->forward(t, mp_gcn_propagate(t, gt, h, cfg_.fused)));
      h = t.dropout(h, cfg_.dropout, rng, training);
      if (with_virtual_) {
        virt = t.relu(virtual_mlps_[l]->forward(
            t, t.add(virt,
                     t.segment_mean_rows(h, gt.graph_id, gt.num_graphs,
                                         gt.graph_part))));
      }
    }
    return h;
  }

 private:
  bool with_virtual_;
  std::unique_ptr<Linear> input_;
  std::vector<std::unique_ptr<Linear>> convs_;
  std::vector<std::unique_ptr<Linear>> virtual_mlps_;
};

// ----- SGC: K-hop propagation, then a single linear map -----

class SgcEncoder : public GnnEncoder {
 public:
  SgcEncoder(EncoderConfig cfg, Rng& rng)
      : GnnEncoder(cfg),
        linear_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                         "sgc.lin")) {
    register_module(*linear_);
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    Var h = x;
    for (int k = 0; k < cfg_.layers; ++k) {
      h = mp_gcn_propagate(t, gt, h, cfg_.fused);
    }
    h = linear_->forward(t, h);
    return t.dropout(h, cfg_.dropout, rng, training);
  }

 private:
  std::unique_ptr<Linear> linear_;
};

// ----- GraphSAGE -----

class SageEncoder : public GnnEncoder {
 public:
  SageEncoder(EncoderConfig cfg, Rng& rng)
      : GnnEncoder(cfg),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "sage.in")) {
    register_module(*input_);
    for (int l = 0; l < cfg.layers; ++l) {
      self_.push_back(std::make_unique<Linear>(
          cfg.hidden, cfg.hidden, rng, true, "sage.self" + std::to_string(l)));
      neigh_.push_back(std::make_unique<Linear>(
          cfg.hidden, cfg.hidden, rng, false,
          "sage.neigh" + std::to_string(l)));
      register_module(*self_.back());
      register_module(*neigh_.back());
    }
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    Var h = input_->forward(t, x);
    for (std::size_t l = 0; l < self_.size(); ++l) {
      const Var neighbors = mp_aggregate_mean(t, gt, h, cfg_.fused);
      h = t.relu(t.add(self_[l]->forward(t, h),
                       neigh_[l]->forward(t, neighbors)));
      h = t.dropout(h, cfg_.dropout, rng, training);
    }
    return h;
  }

 private:
  std::unique_ptr<Linear> input_;
  std::vector<std::unique_ptr<Linear>> self_, neigh_;
};

// ----- ARMA: auto-regressive moving-average filters -----

class ArmaEncoder : public GnnEncoder {
 public:
  ArmaEncoder(EncoderConfig cfg, Rng& rng)
      : GnnEncoder(cfg),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "arma.in")) {
    register_module(*input_);
    for (int l = 0; l < cfg.layers; ++l) {
      prop_.push_back(std::make_unique<Linear>(
          cfg.hidden, cfg.hidden, rng, true, "arma.w" + std::to_string(l)));
      skip_.push_back(std::make_unique<Linear>(
          cfg.hidden, cfg.hidden, rng, false, "arma.v" + std::to_string(l)));
      register_module(*prop_.back());
      register_module(*skip_.back());
    }
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    const Var x0 = input_->forward(t, x);  // root of the recursion
    Var h = x0;
    for (std::size_t l = 0; l < prop_.size(); ++l) {
      // X^{t+1} = relu(L~ X^t W + X^0 V)
      h = t.relu(
          t.add(prop_[l]->forward(t, mp_gcn_propagate(t, gt, h, cfg_.fused)),
                skip_[l]->forward(t, x0)));
      h = t.dropout(h, cfg_.dropout, rng, training);
    }
    return h;
  }

 private:
  std::unique_ptr<Linear> input_;
  std::vector<std::unique_ptr<Linear>> prop_, skip_;
};

// ----- PAN: path-integral convolution (trainable per-path-length weights) --

class PanEncoder : public GnnEncoder {
 public:
  static constexpr int kMaxPathLen = 3;

  PanEncoder(EncoderConfig cfg, Rng& rng)
      : GnnEncoder(cfg),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "pan.in")) {
    register_module(*input_);
    // register_parameter stores raw pointers; reserve so emplace_back never
    // reallocates under them.
    path_weights_.reserve(static_cast<std::size_t>(cfg.layers) *
                          (kMaxPathLen + 1));
    for (int l = 0; l < cfg.layers; ++l) {
      mix_.push_back(std::make_unique<Linear>(
          cfg.hidden, cfg.hidden, rng, true, "pan.mix" + std::to_string(l)));
      register_module(*mix_.back());
      // Path weights e^{-E l}: one trainable scalar per path length.
      for (int p = 0; p <= kMaxPathLen; ++p) {
        path_weights_.emplace_back(
            "pan.w" + std::to_string(l) + "_" + std::to_string(p),
            Matrix(1, 1, p == 0 ? 1.0F : 0.5F / static_cast<float>(p)));
        register_parameter(path_weights_.back());
      }
    }
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    Var h = input_->forward(t, x);
    for (std::size_t l = 0; l < mix_.size(); ++l) {
      Var power = h;
      Var met;  // maximal-entropy-transition accumulation
      for (int p = 0; p <= kMaxPathLen; ++p) {
        const Parameter& w =
            path_weights_[l * (kMaxPathLen + 1) + static_cast<std::size_t>(p)];
        const Var scale_col = t.repeat_row(w.var(), gt.num_nodes);
        const Var term = t.mul_col_broadcast(power, scale_col);
        met = p == 0 ? term : t.add(met, term);
        if (p < kMaxPathLen) {
          power = mp_aggregate_mean(t, gt, power, cfg_.fused);
        }
      }
      h = t.relu(mix_[l]->forward(t, met));
      h = t.dropout(h, cfg_.dropout, rng, training);
    }
    return h;
  }

 private:
  std::unique_ptr<Linear> input_;
  std::vector<std::unique_ptr<Linear>> mix_;
  std::vector<Parameter> path_weights_;
};

// ----- GIN -----

class GinEncoder : public GnnEncoder {
 public:
  GinEncoder(EncoderConfig cfg, Rng& rng, bool with_virtual)
      : GnnEncoder(cfg),
        with_virtual_(with_virtual),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "gin.in")) {
    register_module(*input_);
    eps_.reserve(static_cast<std::size_t>(cfg.layers));  // stable addresses
    for (int l = 0; l < cfg.layers; ++l) {
      mlps_.push_back(std::make_unique<Mlp>(
          std::vector<int>{cfg.hidden, 2 * cfg.hidden, cfg.hidden}, rng,
          "gin.mlp" + std::to_string(l)));
      register_module(*mlps_.back());
      eps_.emplace_back("gin.eps" + std::to_string(l), Matrix(1, 1, 0.0F));
      register_parameter(eps_.back());
      if (with_virtual_) {
        virtual_mlps_.push_back(std::make_unique<Linear>(
            cfg.hidden, cfg.hidden, rng, true,
            "gin.virt" + std::to_string(l)));
        register_module(*virtual_mlps_.back());
      }
    }
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    Var h = input_->forward(t, x);
    Var virt = t.leaf(Matrix(gt.num_graphs, cfg_.hidden));
    for (std::size_t l = 0; l < mlps_.size(); ++l) {
      if (with_virtual_) {
        h = t.add(h, t.broadcast_rows_by_segment(virt, gt.graph_id,
                                                 gt.graph_part));
      }
      // (1 + eps) * h + sum_{u in N(v)} h_u
      const Var one_eps =
          t.affine(t.repeat_row(eps_[l].var(), gt.num_nodes), 1.0F, 1.0F);
      const Var mixed = t.add(t.mul_col_broadcast(h, one_eps),
                              mp_aggregate_sum(t, gt, h, cfg_.fused));
      h = t.relu(mlps_[l]->forward(t, mixed));
      h = t.dropout(h, cfg_.dropout, rng, training);
      if (with_virtual_) {
        virt = t.relu(virtual_mlps_[l]->forward(
            t, t.add(virt,
                     t.segment_mean_rows(h, gt.graph_id, gt.num_graphs,
                                         gt.graph_part))));
      }
    }
    return h;
  }

 private:
  bool with_virtual_;
  std::unique_ptr<Linear> input_;
  std::vector<std::unique_ptr<Mlp>> mlps_;
  std::vector<Parameter> eps_;
  std::vector<std::unique_ptr<Linear>> virtual_mlps_;
};

// ----- PNA: principal neighbourhood aggregation -----

class PnaEncoder : public GnnEncoder {
 public:
  PnaEncoder(EncoderConfig cfg, Rng& rng)
      : GnnEncoder(cfg),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "pna.in")) {
    register_module(*input_);
    // 4 aggregators x 3 scalers + self = 13 blocks.
    for (int l = 0; l < cfg.layers; ++l) {
      post_.push_back(std::make_unique<Linear>(
          13 * cfg.hidden, cfg.hidden, rng, true,
          "pna.post" + std::to_string(l)));
      register_module(*post_.back());
    }
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    // Scaler coefficient vectors (constants per graph). Each node is scaled
    // against the average log-degree of *its own* member graph so batched
    // PNA matches per-graph PNA.
    std::vector<float> amplify(static_cast<std::size_t>(gt.num_nodes));
    std::vector<float> attenuate(static_cast<std::size_t>(gt.num_nodes));
    for (int i = 0; i < gt.num_nodes; ++i) {
      const float avg =
          gt.graph_avg_log_deg.empty()
              ? gt.avg_log_deg
              : gt.graph_avg_log_deg[static_cast<std::size_t>(
                    gt.graph_id[static_cast<std::size_t>(i)])];
      const float d = std::max(gt.log_deg[static_cast<std::size_t>(i)], 0.1F);
      amplify[static_cast<std::size_t>(i)] = d / avg;
      attenuate[static_cast<std::size_t>(i)] = avg / d;
    }

    Var h = input_->forward(t, x);
    for (std::size_t l = 0; l < post_.size(); ++l) {
      Var mean, mx, mn, stddev;
      if (gt.src.empty()) {
        mean = mx = mn = stddev = t.affine(h, 0.0F, 0.0F);
      } else {
        const Var msgs = t.gather_rows(h, gt.src, gt.src_part);
        mean = t.segment_mean(msgs, gt.dst, gt.num_nodes, gt.dst_part);
        mx = t.segment_max(msgs, gt.dst, gt.num_nodes);
        mn = t.segment_min(msgs, gt.dst, gt.num_nodes);
        // std = sqrt(relu(E[x^2] - E[x]^2))
        const Var mean_sq = t.segment_mean(t.mul(msgs, msgs), gt.dst,
                                           gt.num_nodes, gt.dst_part);
        stddev = t.sqrt_eps(t.sub(mean_sq, t.mul(mean, mean)), 1e-5F);
      }
      std::vector<Var> blocks{h};
      for (const Var& agg : {mean, mx, mn, stddev}) {
        blocks.push_back(agg);
        blocks.push_back(t.scale_rows(agg, amplify));
        blocks.push_back(t.scale_rows(agg, attenuate));
      }
      h = t.relu(post_[l]->forward(t, t.concat_cols(blocks)));
      h = t.dropout(h, cfg_.dropout, rng, training);
    }
    return h;
  }

 private:
  std::unique_ptr<Linear> input_;
  std::vector<std::unique_ptr<Linear>> post_;
};

// ----- GAT -----

class GatEncoder : public GnnEncoder {
 public:
  GatEncoder(EncoderConfig cfg, Rng& rng)
      : GnnEncoder(cfg),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "gat.in")) {
    register_module(*input_);
    for (int l = 0; l < cfg.layers; ++l) {
      proj_.push_back(std::make_unique<Linear>(
          cfg.hidden, cfg.hidden, rng, false, "gat.w" + std::to_string(l)));
      att_src_.push_back(std::make_unique<Linear>(
          cfg.hidden, 1, rng, false, "gat.asrc" + std::to_string(l)));
      att_dst_.push_back(std::make_unique<Linear>(
          cfg.hidden, 1, rng, true, "gat.adst" + std::to_string(l)));
      register_module(*proj_.back());
      register_module(*att_src_.back());
      register_module(*att_dst_.back());
    }
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    Var h = input_->forward(t, x);
    for (std::size_t l = 0; l < proj_.size(); ++l) {
      const Var hw = proj_[l]->forward(t, h);
      // Attention over edges incl. self loops: e = lrelu(a_s.h_u + a_d.h_v)
      const Var alpha_src = att_src_[l]->forward(t, hw);  // [N,1]
      const Var alpha_dst = att_dst_[l]->forward(t, hw);  // [N,1]
      const Var scores = t.leaky_relu(
          t.add(t.gather_rows(alpha_src, gt.src_self, gt.src_self_part),
                t.gather_rows(alpha_dst, gt.dst_self, gt.dst_self_part)),
          0.2F);
      const Var alpha = t.segment_softmax(scores, gt.dst_self, gt.num_nodes);
      const Var weighted = t.mul_col_broadcast(
          t.gather_rows(hw, gt.src_self, gt.src_self_part), alpha);
      h = t.relu(t.scatter_add_rows(weighted, gt.dst_self, gt.num_nodes,
                                    gt.dst_self_part));
      h = t.dropout(h, cfg_.dropout, rng, training);
    }
    return h;
  }

 private:
  std::unique_ptr<Linear> input_;
  std::vector<std::unique_ptr<Linear>> proj_, att_src_, att_dst_;
};

// ----- GGNN -----

class GgnnEncoder : public GnnEncoder {
 public:
  GgnnEncoder(EncoderConfig cfg, Rng& rng)
      : GnnEncoder(cfg),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "ggnn.in")),
        gru_(std::make_unique<GruCell>(cfg.hidden, rng, "ggnn.gru")) {
    register_module(*input_);
    register_module(*gru_);
    for (int r = 0; r < kNumEdgeRelations; ++r) {
      rel_.push_back(std::make_unique<Linear>(
          cfg.hidden, cfg.hidden, rng, false, "ggnn.rel" + std::to_string(r)));
      register_module(*rel_.back());
    }
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    Var h = input_->forward(t, x);
    for (int l = 0; l < cfg_.layers; ++l) {
      const Var msg = mp_relational_aggregate(t, gt, h, rel_, false,
                                              cfg_.fused);
      h = gru_->forward(t, msg, h);
      h = t.dropout(h, cfg_.dropout, rng, training);
    }
    return h;
  }

 private:
  std::unique_ptr<Linear> input_;
  std::unique_ptr<GruCell> gru_;
  std::vector<std::unique_ptr<Linear>> rel_;
};

// ----- RGCN -----

class RgcnEncoder : public GnnEncoder {
 public:
  RgcnEncoder(EncoderConfig cfg, Rng& rng)
      : GnnEncoder(cfg),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "rgcn.in")) {
    register_module(*input_);
    for (int l = 0; l < cfg.layers; ++l) {
      self_.push_back(std::make_unique<Linear>(
          cfg.hidden, cfg.hidden, rng, true, "rgcn.self" + std::to_string(l)));
      register_module(*self_.back());
      std::vector<std::unique_ptr<Linear>> rels;
      for (int r = 0; r < kNumEdgeRelations; ++r) {
        rels.push_back(std::make_unique<Linear>(
            cfg.hidden, cfg.hidden, rng, false,
            "rgcn.l" + std::to_string(l) + ".r" + std::to_string(r)));
        register_module(*rels.back());
      }
      rel_.push_back(std::move(rels));
    }
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    Var h = input_->forward(t, x);
    for (std::size_t l = 0; l < self_.size(); ++l) {
      const Var agg = mp_relational_aggregate(t, gt, h, rel_[l], true,
                                              cfg_.fused);
      h = t.relu(t.add(self_[l]->forward(t, h), agg));
      h = t.dropout(h, cfg_.dropout, rng, training);
    }
    return h;
  }

 private:
  std::unique_ptr<Linear> input_;
  std::vector<std::unique_ptr<Linear>> self_;
  std::vector<std::vector<std::unique_ptr<Linear>>> rel_;
};

// ----- Graph U-Net (gPool / gUnpool with skip connections) -----

class UnetEncoder : public GnnEncoder {
 public:
  UnetEncoder(EncoderConfig cfg, Rng& rng)
      : GnnEncoder(cfg),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "unet.in")),
        down_(std::make_unique<Linear>(cfg.hidden, cfg.hidden, rng, true,
                                       "unet.down")),
        bottom_(std::make_unique<Linear>(cfg.hidden, cfg.hidden, rng, true,
                                         "unet.bottom")),
        up_(std::make_unique<Linear>(cfg.hidden, cfg.hidden, rng, true,
                                     "unet.up")),
        score_("unet.score", Matrix::randn(cfg.hidden, 1, rng, 0.1F)) {
    register_module(*input_);
    register_module(*down_);
    register_module(*bottom_);
    register_module(*up_);
    register_parameter(score_);
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    Var h = input_->forward(t, x);
    h = t.relu(down_->forward(t, mp_gcn_propagate(t, gt, h, cfg_.fused)));
    const Var skip = h;

    // gPool: keep the top-k nodes by projection score, gate by sigmoid.
    // Selection runs per member graph (top half of each member, at least
    // one node) so batched pooling selects exactly what per-graph pooling
    // would. Member node ranges are contiguous, so the concatenated
    // ascending per-member kept lists are globally ascending.
    const Var scores = t.matmul(h, score_.var());  // [N,1]
    std::vector<int> kept;
    kept.reserve(static_cast<std::size_t>(gt.num_nodes / 2 + gt.num_graphs));
    for (int lo = 0; lo < gt.num_nodes;) {
      int hi = lo;
      const int g = gt.graph_id[static_cast<std::size_t>(lo)];
      while (hi < gt.num_nodes &&
             gt.graph_id[static_cast<std::size_t>(hi)] == g) {
        ++hi;
      }
      const int keep_g = std::max((hi - lo) / 2, 1);
      std::vector<int> order(static_cast<std::size_t>(hi - lo));
      for (int i = lo; i < hi; ++i) {
        order[static_cast<std::size_t>(i - lo)] = i;
      }
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return scores.value()(a, 0) > scores.value()(b, 0);
      });
      order.resize(static_cast<std::size_t>(keep_g));
      std::sort(order.begin(), order.end());
      kept.insert(kept.end(), order.begin(), order.end());
      lo = hi;
    }
    const int keep = static_cast<int>(kept.size());

    // Pooled-level partitions are per-forward: the kept set depends on the
    // current score weights, so they cannot live on GraphTensors like the
    // full-graph caches. One kept-partition serves both gathers and the
    // unpool scatter (all three index the same [num_nodes] row space).
    const SegmentPartitionPtr kept_part =
        make_segment_partition(kept, gt.num_nodes);

    const Var gated = t.mul_col_broadcast(
        t.gather_rows(h, kept, kept_part),
        t.sigmoid(t.gather_rows(scores, kept, kept_part)));

    // Induced subgraph propagation at the bottom level.
    std::vector<int> remap(static_cast<std::size_t>(gt.num_nodes), -1);
    for (int i = 0; i < keep; ++i) {
      remap[static_cast<std::size_t>(kept[static_cast<std::size_t>(i)])] = i;
    }
    std::vector<int> sub_src, sub_dst;
    for (std::size_t e = 0; e < gt.src.size(); ++e) {
      const int s = remap[static_cast<std::size_t>(gt.src[e])];
      const int d = remap[static_cast<std::size_t>(gt.dst[e])];
      if (s >= 0 && d >= 0) {
        sub_src.push_back(s);
        sub_dst.push_back(d);
      }
    }
    Var bottom = gated;
    if (!sub_src.empty()) {
      const SegmentPartitionPtr sub_src_part =
          make_segment_partition(sub_src, keep);
      const SegmentPartitionPtr sub_dst_part =
          make_segment_partition(sub_dst, keep);
      if (cfg_.fused) {
        bottom = t.add(
            t.scale_rows(
                t.fused_gather_scatter_add(gated, sub_src, sub_dst, keep,
                                           sub_src_part, sub_dst_part),
                segment_inverse_counts(*sub_dst_part)),
            gated);
      } else {
        bottom = t.add(
            t.segment_mean(t.gather_rows(gated, sub_src, sub_src_part),
                           sub_dst, keep, sub_dst_part),
            gated);
      }
    }
    bottom = t.relu(bottom_->forward(t, bottom));
    bottom = t.dropout(bottom, cfg_.dropout, rng, training);

    // gUnpool: scatter back into the full node set, add skip.
    const Var restored =
        t.scatter_add_rows(bottom, kept, gt.num_nodes, kept_part);
    Var out = t.add(restored, skip);
    out = t.relu(up_->forward(t, mp_gcn_propagate(t, gt, out, cfg_.fused)));
    return out;
  }

 private:
  std::unique_ptr<Linear> input_, down_, bottom_, up_;
  Parameter score_;
};

// ----- GNN-FiLM -----

class FilmEncoder : public GnnEncoder {
 public:
  FilmEncoder(EncoderConfig cfg, Rng& rng)
      : GnnEncoder(cfg),
        input_(std::make_unique<Linear>(cfg.in_dim, cfg.hidden, rng, true,
                                        "film.in")) {
    register_module(*input_);
    for (int l = 0; l < cfg.layers; ++l) {
      self_.push_back(std::make_unique<Linear>(
          cfg.hidden, cfg.hidden, rng, true, "film.self" + std::to_string(l)));
      register_module(*self_.back());
      std::vector<std::unique_ptr<Linear>> rels, films;
      for (int r = 0; r < kNumEdgeRelations; ++r) {
        rels.push_back(std::make_unique<Linear>(
            cfg.hidden, cfg.hidden, rng, false,
            "film.l" + std::to_string(l) + ".w" + std::to_string(r)));
        register_module(*rels.back());
        // FiLM generator: h_dst -> [gamma ; beta]
        films.push_back(std::make_unique<Linear>(
            cfg.hidden, 2 * cfg.hidden, rng, true,
            "film.l" + std::to_string(l) + ".g" + std::to_string(r)));
        register_module(*films.back());
      }
      rel_.push_back(std::move(rels));
      film_.push_back(std::move(films));
    }
  }

  Var encode(Tape& t, const GraphTensors& gt, const Var& x, Rng& rng,
             bool training) const override {
    Var h = input_->forward(t, x);
    for (std::size_t l = 0; l < self_.size(); ++l) {
      Var acc = self_[l]->forward(t, h);
      // FiLM keeps the per-edge modulation materialized (gamma * msg + beta
      // is edge-wise, not fusable), but routes every gather/scatter through
      // the relation endpoint views + partitions cached on GraphTensors.
      const bool have_views =
          gt.relation_src.size() == gt.relation_edges.size() &&
          gt.relation_dst.size() == gt.relation_edges.size();
      for (int r = 0; r < kNumEdgeRelations; ++r) {
        const std::size_t ri = static_cast<std::size_t>(r);
        const auto& edge_ids = gt.relation_edges[ri];
        if (edge_ids.empty()) continue;
        std::vector<int> local_src, local_dst;
        const std::vector<int>* srcs = nullptr;
        const std::vector<int>* dsts = nullptr;
        SegmentPartitionPtr sp, dp;
        if (have_views && !gt.relation_src[ri].empty()) {
          srcs = &gt.relation_src[ri];
          dsts = &gt.relation_dst[ri];
          sp = gt.relation_src_part[ri];
          dp = gt.relation_dst_part[ri];
        } else {
          local_src.reserve(edge_ids.size());
          local_dst.reserve(edge_ids.size());
          for (int e : edge_ids) {
            local_src.push_back(gt.src[static_cast<std::size_t>(e)]);
            local_dst.push_back(gt.dst[static_cast<std::size_t>(e)]);
          }
          srcs = &local_src;
          dsts = &local_dst;
        }
        const Var msg =
            rel_[l][ri]->forward(t, t.gather_rows(h, *srcs, sp));
        const Var film_params =
            film_[l][ri]->forward(t, t.gather_rows(h, *dsts, dp));
        const Var gamma = t.slice_cols(film_params, 0, cfg_.hidden);
        const Var beta =
            t.slice_cols(film_params, cfg_.hidden, 2 * cfg_.hidden);
        const Var modulated = t.relu(t.add(t.mul(gamma, msg), beta));
        acc = t.add(acc,
                    t.scatter_add_rows(modulated, *dsts, gt.num_nodes, dp));
      }
      h = t.relu(acc);
      h = t.dropout(h, cfg_.dropout, rng, training);
    }
    return h;
  }

 private:
  std::unique_ptr<Linear> input_;
  std::vector<std::unique_ptr<Linear>> self_;
  std::vector<std::vector<std::unique_ptr<Linear>>> rel_, film_;
};

}  // namespace

std::unique_ptr<GnnEncoder> make_encoder(GnnKind kind, EncoderConfig cfg,
                                         Rng& rng) {
  GNNHLS_CHECK(cfg.in_dim > 0 && cfg.hidden > 0 && cfg.layers > 0,
               "make_encoder: bad config");
  switch (kind) {
    case GnnKind::kGcn:
      return std::make_unique<GcnEncoder>(cfg, rng, false);
    case GnnKind::kGcnVirtual:
      return std::make_unique<GcnEncoder>(cfg, rng, true);
    case GnnKind::kSgc:
      return std::make_unique<SgcEncoder>(cfg, rng);
    case GnnKind::kSage:
      return std::make_unique<SageEncoder>(cfg, rng);
    case GnnKind::kArma:
      return std::make_unique<ArmaEncoder>(cfg, rng);
    case GnnKind::kPan:
      return std::make_unique<PanEncoder>(cfg, rng);
    case GnnKind::kGin:
      return std::make_unique<GinEncoder>(cfg, rng, false);
    case GnnKind::kGinVirtual:
      return std::make_unique<GinEncoder>(cfg, rng, true);
    case GnnKind::kPna:
      return std::make_unique<PnaEncoder>(cfg, rng);
    case GnnKind::kGat:
      return std::make_unique<GatEncoder>(cfg, rng);
    case GnnKind::kGgnn:
      return std::make_unique<GgnnEncoder>(cfg, rng);
    case GnnKind::kRgcn:
      return std::make_unique<RgcnEncoder>(cfg, rng);
    case GnnKind::kUnet:
      return std::make_unique<UnetEncoder>(cfg, rng);
    case GnnKind::kFilm:
      return std::make_unique<FilmEncoder>(cfg, rng);
    case GnnKind::kCount:
      break;
  }
  GNNHLS_CHECK(false, "bad GnnKind");
  return nullptr;
}

}  // namespace gnnhls
