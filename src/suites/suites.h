// Real-world HLS benchmark suites (paper §3.2): mini implementations of
// MachSuite (16 kernels), CHStone (10) and PolyBench/C (30) as mini-C ASTs.
//
// Exactly as in the paper, these 56 applications are *never trained on* —
// they exist for generalization evaluation (Table 3 "Real Case", Table 5).
// Each kernel reproduces the computational motif of its namesake (loop
// nests, array traffic, bit manipulation, reductions) at laptop-friendly
// problem sizes; trip counts only affect the HLS simulator's latency
// accounting, not the CDFG shape, so small N preserves graph structure.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.h"

namespace gnnhls {

struct SuiteProgram {
  std::string suite;  // "machsuite" | "chstone" | "polybench"
  std::string name;   // kernel name, e.g. "gemm"
  Function func;
};

/// 16 MachSuite-style accelerator kernels.
std::vector<SuiteProgram> machsuite_all();
/// 10 CHStone-style application kernels.
std::vector<SuiteProgram> chstone_all();
/// 30 PolyBench/C-style polyhedral kernels.
std::vector<SuiteProgram> polybench_all();

/// All 56, in suite order (the paper's "real-case" evaluation set).
std::vector<SuiteProgram> all_real_world();

}  // namespace gnnhls
