#include "dse/pareto.h"

#include "support/check.h"

namespace gnnhls {

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  GNNHLS_CHECK_EQ(a.size(), b.size(), "dominates: axis count mismatch");
  GNNHLS_CHECK(!a.empty(), "dominates: need at least one axis");
  bool strictly_better = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<int> pareto_front(const std::vector<std::vector<double>>& points) {
  std::vector<int> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool keep = true;
    for (std::size_t j = 0; j < points.size() && keep; ++j) {
      if (j == i) continue;
      if (dominates(points[j], points[i])) keep = false;
      // Duplicate tie-break: the earliest identical point represents all.
      if (j < i && points[j] == points[i]) keep = false;
    }
    if (keep) front.push_back(static_cast<int>(i));
  }
  return front;
}

}  // namespace gnnhls
