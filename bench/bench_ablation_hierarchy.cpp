// Ablation: where does the knowledge-infused gain come from?
//
// Compares, on the CDFG dataset with an RGCN backbone:
//   base       — off-the-shelf (no resource-type features),
//   -I (self)  — the paper's deployment path (classifier-inferred types),
//   -I (oracle)— ground-truth type bits at inference (what a perfect
//                classifier would give; upper-bounds the hierarchy), and
//   -R         — full resource values.
//
// The gap between self and oracle isolates classifier error; the gap
// between oracle and -R isolates the value of magnitudes over type bits.
#include "bench_common.h"

namespace gnnhls::bench {
namespace {

int run(int argc, const char* const* argv) {
  const BenchConfig cfg = parse_bench_config(argc, argv);
  print_header("Ablation — decomposing the knowledge-infusion gain (RGCN, "
               "CDFG)",
               cfg);

  Timer total;
  const std::vector<Sample> cdfg = build_cdfg(cfg);
  print_dataset_line("CDFG", cdfg);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(cdfg.size()), cfg.seed);

  struct Variant {
    std::string name;
    Approach approach;
    InfusedInference infused;
  };
  const std::vector<Variant> variants = {
      {"base (off-the-shelf)", Approach::kOffTheShelf,
       InfusedInference::kSelfInferred},
      {"-I self-inferred", Approach::kKnowledgeInfused,
       InfusedInference::kSelfInferred},
      {"-I oracle types", Approach::kKnowledgeInfused,
       InfusedInference::kOracle},
      {"-R resource values", Approach::kKnowledgeRich,
       InfusedInference::kSelfInferred},
  };

  double results[4][4] = {};  // [variant][metric]
  std::vector<std::function<void()>> jobs;
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (int m = 0; m < kNumMetrics; ++m) {
      jobs.push_back([&, v, m] {
        ModelConfig mc = model_config(cfg);
        mc.kind = GnnKind::kRgcn;
        TrainConfig tc = train_config(cfg);
        double best_val = 1e18;
        double picked_test = 0.0;
        for (int r = 0; r < cfg.runs; ++r) {
          tc.seed = cfg.seed + static_cast<std::uint64_t>(r) * 1000003;
          QorPredictor predictor(variants[v].approach, mc, tc,
                                 variants[v].infused);
          const double val =
              predictor.fit(cdfg, split, static_cast<Metric>(m));
          if (val < best_val) {
            best_val = val;
            picked_test = predictor.evaluate_mape(cdfg, split.test);
          }
        }
        results[v][m] = picked_test;
      });
    }
  }
  run_parallel(std::move(jobs), cfg.threads);

  TextTable table({"variant", "DSP", "LUT", "FF", "CP", "mean"});
  BenchJsonLog json_log;
  std::array<double, 4> mean{};
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> row{variants[v].name};
    double avg = 0.0;
    for (int m = 0; m < kNumMetrics; ++m) {
      row.push_back(TextTable::pct(results[v][m]));
      avg += results[v][m] / 4.0;
    }
    mean[v] = avg;
    row.push_back(TextTable::pct(avg));
    table.add_row(std::move(row));
    json_log.add(std::string(variants[v].name) + " mean", avg, "mape");
  }
  std::cout << "\n" << table.to_string();
  write_bench_json(cfg, json_log, "ablation_hierarchy");

  ShapeChecks checks;
  checks.check("self-inferred -I improves over base", mean[1] < mean[0]);
  checks.check("oracle types at least as good as self-inferred",
               mean[2] <= mean[1] + 0.01);
  checks.check("resource values (-R) at least as good as oracle bits",
               mean[3] <= mean[2] + 0.01);
  checks.summary();
  std::cout << "total wall time: " << TextTable::num(total.seconds(), 1)
            << "s\n";
  return 0;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
