#include "nn/layers.h"

#include <cmath>

namespace gnnhls {

namespace {

/// Xavier/Glorot normal initialization.
Matrix xavier(int in_dim, int out_dim, Rng& rng) {
  const float stddev = std::sqrt(2.0F / static_cast<float>(in_dim + out_dim));
  return Matrix::randn(in_dim, out_dim, rng, stddev);
}

}  // namespace

Linear::Linear(int in_dim, int out_dim, Rng& rng, bool with_bias,
               std::string name)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      with_bias_(with_bias),
      weight_(name + ".weight", xavier(in_dim, out_dim, rng)),
      bias_(name + ".bias", Matrix::zeros(1, out_dim)) {
  register_parameter(weight_);
  if (with_bias_) register_parameter(bias_);
}

Var Linear::forward(Tape& tape, const Var& x) const {
  GNNHLS_CHECK_EQ(x.cols(), in_dim_, "Linear: input width mismatch");
  Var y = tape.matmul(x, weight_.var());
  if (with_bias_) y = tape.add_row_bias(y, bias_.var());
  return y;
}

Mlp::Mlp(const std::vector<int>& dims, Rng& rng, std::string name) {
  GNNHLS_CHECK(dims.size() >= 2, "Mlp: need at least {in, out} dims");
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(
        dims[i], dims[i + 1], rng, true,
        name + ".fc" + std::to_string(i)));
    register_module(*layers_.back());
  }
}

Var Mlp::forward(Tape& tape, const Var& x) const {
  Var h = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->forward(tape, h);
    if (i + 1 < layers_.size()) h = tape.relu(h);
  }
  return h;
}

Embedding::Embedding(int num_entries, int dim, Rng& rng, std::string name)
    : table_(name + ".table",
             Matrix::randn(num_entries, dim, rng,
                           1.0F / std::sqrt(static_cast<float>(dim)))) {
  register_parameter(table_);
}

Var Embedding::forward(Tape& tape, const std::vector<int>& ids) const {
  return tape.gather_rows(table_.var(), ids);
}

GruCell::GruCell(int dim, Rng& rng, std::string name) {
  const auto make = [&](const char* suffix, bool bias) {
    auto l = std::make_unique<Linear>(dim, dim, rng, bias,
                                      name + "." + suffix);
    register_module(*l);
    return l;
  };
  update_x_ = make("update_x", true);
  update_h_ = make("update_h", false);
  reset_x_ = make("reset_x", true);
  reset_h_ = make("reset_h", false);
  cand_x_ = make("cand_x", true);
  cand_h_ = make("cand_h", false);
}

Var GruCell::forward(Tape& tape, const Var& input, const Var& state) const {
  const Var z = tape.sigmoid(
      tape.add(update_x_->forward(tape, input), update_h_->forward(tape, state)));
  const Var r = tape.sigmoid(
      tape.add(reset_x_->forward(tape, input), reset_h_->forward(tape, state)));
  const Var candidate = tape.tanh_act(tape.add(
      cand_x_->forward(tape, input),
      cand_h_->forward(tape, tape.mul(r, state))));
  // h' = (1 - z) * h + z * candidate
  const Var keep = tape.mul(tape.affine(z, -1.0F, 1.0F), state);
  return tape.add(keep, tape.mul(z, candidate));
}

}  // namespace gnnhls
