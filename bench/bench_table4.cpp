// Reproduces paper Table 4: MAPE of the three proposed approaches
// (off-the-shelf, knowledge-infused "-I", knowledge-rich "-R") with
// RGCN and PNA backbones on the DFG and CDFG datasets.
//
// Paper shape: for each backbone and metric,
//   knowledge-rich (-R)  <  knowledge-infused (-I)  <  off-the-shelf,
// i.e. more domain knowledge -> lower error, with -I recovering most of
// the -R gain while keeping earliest-stage inference.
#include <array>
#include <map>

#include "bench_common.h"

namespace gnnhls::bench {
namespace {

// Paper Table 4 reference: rows RGCN/RGCN-I/RGCN-R/PNA/PNA-I/PNA-R,
// columns DFG{DSP,LUT,FF,CP} CDFG{...}.
const std::map<std::string, std::array<double, 8>> kPaperT4 = {
    {"RGCN", {0.1327, 0.1303, 0.1509, 0.0614, 0.1503, 0.2633, 0.2552, 0.0872}},
    {"RGCN-I", {0.1060, 0.1025, 0.1247, 0.0570, 0.1265, 0.2055, 0.1901, 0.0678}},
    {"RGCN-R", {0.0886, 0.0858, 0.1018, 0.0491, 0.1098, 0.1406, 0.1665, 0.0546}},
    {"PNA", {0.1265, 0.1164, 0.1441, 0.0626, 0.1471, 0.2286, 0.2647, 0.0887}},
    {"PNA-I", {0.0826, 0.0510, 0.0758, 0.0551, 0.1039, 0.1412, 0.1642, 0.0654}},
    {"PNA-R", {0.0706, 0.0402, 0.0578, 0.0539, 0.0895, 0.1027, 0.1122, 0.0581}},
};

constexpr std::array<Approach, 3> kApproaches = {
    Approach::kOffTheShelf, Approach::kKnowledgeInfused,
    Approach::kKnowledgeRich};

int run(int argc, const char* const* argv) {
  const BenchConfig cfg = parse_bench_config(argc, argv);
  print_header(
      "Table 4 — three approaches (base/-I/-R) with RGCN/PNA backbones",
      cfg);

  Timer total;
  const std::vector<Sample> dfg = build_dfg(cfg);
  const std::vector<Sample> cdfg = build_cdfg(cfg);
  print_dataset_line("DFG ", dfg);
  print_dataset_line("CDFG", cdfg);
  const SplitIndices dfg_split =
      split_80_10_10(static_cast<int>(dfg.size()), cfg.seed);
  const SplitIndices cdfg_split =
      split_80_10_10(static_cast<int>(cdfg.size()), cfg.seed);

  const std::vector<GnnKind> backbones = {GnnKind::kRgcn, GnnKind::kPna};
  // results[backbone][approach][dataset][metric]
  double results[2][3][2][4] = {};

  std::vector<std::function<void()>> jobs;
  for (std::size_t b = 0; b < backbones.size(); ++b) {
    for (std::size_t a = 0; a < kApproaches.size(); ++a) {
      for (int ds = 0; ds < 2; ++ds) {
        for (int m = 0; m < kNumMetrics; ++m) {
          jobs.push_back([&, b, a, ds, m] {
            ExperimentSpec spec;
            spec.kind = backbones[b];
            spec.approach = kApproaches[a];
            spec.metric = static_cast<Metric>(m);
            spec.model = model_config(cfg);
            spec.train = train_config(cfg);
            spec.protocol = protocol(cfg);
            const auto& samples = ds == 0 ? dfg : cdfg;
            const auto& split = ds == 0 ? dfg_split : cdfg_split;
            results[b][a][ds][m] =
                run_regression_experiment(spec, samples, split).test_mape;
          });
        }
      }
    }
  }
  run_parallel(std::move(jobs), cfg.threads);

  TextTable table({"model", "DFG DSP", "DFG LUT", "DFG FF", "DFG CP",
                   "CDFG DSP", "CDFG LUT", "CDFG FF", "CDFG CP"});
  BenchJsonLog json_log;
  for (std::size_t b = 0; b < backbones.size(); ++b) {
    for (std::size_t a = 0; a < kApproaches.size(); ++a) {
      const std::string model_name =
          gnn_kind_name(backbones[b]) + approach_suffix(kApproaches[a]);
      std::vector<std::string> row{model_name};
      for (int ds = 0; ds < 2; ++ds) {
        for (int m = 0; m < kNumMetrics; ++m) {
          row.push_back(TextTable::pct(results[b][a][ds][m]));
          json_log.add(model_name + (ds == 0 ? " DFG " : " CDFG ") +
                           metric_name(static_cast<Metric>(m)),
                       results[b][a][ds][m], "mape");
        }
      }
      table.add_row(std::move(row));
    }
  }
  std::cout << "\nMeasured (this substrate):\n" << table.to_string();
  write_bench_json(cfg, json_log, "table4");

  TextTable ref({"model", "DFG DSP", "DFG LUT", "DFG FF", "DFG CP",
                 "CDFG DSP", "CDFG LUT", "CDFG FF", "CDFG CP"});
  for (std::size_t b = 0; b < backbones.size(); ++b) {
    for (std::size_t a = 0; a < kApproaches.size(); ++a) {
      const std::string name =
          gnn_kind_name(backbones[b]) + approach_suffix(kApproaches[a]);
      std::vector<std::string> row{name};
      for (double v : kPaperT4.at(name)) row.push_back(TextTable::pct(v));
      ref.add_row(std::move(row));
    }
  }
  std::cout << "\nPaper reference:\n" << ref.to_string();

  ShapeChecks checks;
  for (std::size_t b = 0; b < backbones.size(); ++b) {
    // Average each approach over datasets x metrics.
    std::array<double, 3> avg{};
    for (std::size_t a = 0; a < 3; ++a) {
      for (int ds = 0; ds < 2; ++ds) {
        for (int m = 0; m < kNumMetrics; ++m) {
          avg[a] += results[b][a][ds][m] / 8.0;
        }
      }
    }
    const std::string base = gnn_kind_name(backbones[b]);
    checks.check(base + ": knowledge infusion helps (-I < base)",
                 avg[1] < avg[0]);
    checks.check(base + ": rich knowledge is the accuracy upper bound "
                        "(-R < base)",
                 avg[2] < avg[0]);
    checks.check(base + ": -R <= -I (late info still wins)",
                 avg[2] <= avg[1] + 0.01);
  }
  checks.summary();
  std::cout << "total wall time: " << TextTable::num(total.seconds(), 1)
            << "s\n";
  return 0;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
