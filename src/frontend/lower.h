// Front-end lowering: mini-C AST -> IR graph (paper Fig. 1c).
//
// DFG extraction ("from basic blocks, a straight-line code sequence", §3.1):
// the function body must be control-free; every expression becomes a small
// dataflow DAG over operation/const/port nodes.
//
// CDFG extraction ("from programs with loops", §3.1): structured SSA
// construction — one basic block node per block, phi nodes at loop headers
// and if/else merges, control edges chaining block -> terminator -> successor
// block, and back edges (both the control latch->header edge and the
// loop-carried data edges into header phis) marked with the binary back-edge
// feature.
//
// The lowering also records per-basic-block scheduling units (operation
// lists, loop depth, estimated execution counts) consumed by the HLS
// simulator.
#pragma once

#include <vector>

#include "frontend/ast.h"
#include "graph/ir_graph.h"

namespace gnnhls {

/// One scheduling unit for the HLS simulator.
struct BasicBlockInfo {
  int id = 0;
  int block_node = -1;  // CDFG block node id; -1 in DFGs
  std::vector<int> ops;  // operation node ids lowered into this block
  int loop_depth = 0;
  double exec_count = 1.0;  // product of enclosing loop trip counts
  bool is_loop_header = false;
};

struct LoweredProgram {
  IrGraph graph;
  std::vector<BasicBlockInfo> blocks;

  LoweredProgram(GraphKind kind, std::string name)
      : graph(kind, std::move(name)) {}
};

/// Lowers a control-free function to a DFG. Throws if the function contains
/// loops or branches.
LoweredProgram lower_to_dfg(const Function& f);

/// Lowers any function to a CDFG (works for control-free bodies too, then
/// produces a single-block CDFG).
LoweredProgram lower_to_cdfg(const Function& f);

/// Dispatches on Function::has_control_flow().
LoweredProgram lower(const Function& f);

}  // namespace gnnhls
