// TCP serving quickstart: QoR inference over a real socket.
//
//   1. Train two off-the-shelf predictors (LUT + CP) on a synthetic corpus.
//   2. Stand up a ServingScheduler and expose it on 127.0.0.1 through
//      TcpEndpoint — length-prefixed binary frames, see serve/wire.h.
//   3. Connect a loopback TcpClient, send a burst of candidate designs
//      (model id picks LUT vs CP), and read the responses back.
//   4. Scrape the live server with a STATS wire frame (wire.h type 3) and
//      check the Prometheus-style text it returns agrees with the
//      WireStats/SchedStats facade snapshots.
//   5. Show that every socket-served prediction is bit-identical to a
//      sequential QorPredictor::predict call, plus the wire-level counters.
//
// Exit code 1 if any served prediction diverges from the sequential path,
// or if the STATS scrape is missing/contradicts the facade counters — CI
// runs this binary as a Release-configuration loopback smoke test.
//
// Build & run:  ./build/serve_tcp [--port=N] [--max-inflight=N]
//   --port=N          listen port (default 0 = OS-assigned ephemeral port)
//   --max-inflight=N  per-connection admission cap before the endpoint
//                     answers kOverConnectionLimit (default 64)
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dataset/serialize.h"
#include "serve/scheduler.h"
#include "serve/tcp_endpoint.h"
#include "serve/wire.h"
#include "support/flags.h"
#include "support/table.h"
#include "support/timer.h"

using namespace gnnhls;

namespace {

/// Value of the first series of `family` in Prometheus-style `text`
/// (a line "family 42" or "family{labels} 42"); -1 if absent.
long long scrape_value(const std::string& text, const std::string& family) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(family, 0) != 0) continue;
    const char next =
        line.size() > family.size() ? line[family.size()] : '\0';
    if (next != '{' && next != ' ') continue;  // longer family name
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    return std::stoll(line.substr(sp + 1));
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  TcpEndpointConfig ecfg;
  ecfg.port = flags.get_int("port", 0);
  ecfg.max_inflight = flags.get_int("max-inflight", 64);
  flags.check_all_consumed();

  // ----- 1. train LUT + CP predictors -----
  std::cout << "== 1. training off-the-shelf RGCN (LUT + CP heads) on 96 "
               "synthetic DFGs ==\n";
  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kDfg;
  dc.num_graphs = 96;
  dc.seed = 20260808;
  const std::vector<Sample> corpus = build_synthetic_dataset(dc);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(corpus.size()), 7);

  ModelConfig mc;
  mc.kind = GnnKind::kRgcn;
  mc.hidden = 32;
  mc.layers = 3;
  TrainConfig tc;
  tc.epochs = 8;
  tc.lr = 1e-2F;
  tc.batch_size = 8;
  QorPredictor lut(Approach::kOffTheShelf, mc, tc);
  QorPredictor cp(Approach::kOffTheShelf, mc, tc);
  Timer fit_timer;
  const double lut_val = lut.fit(corpus, split, Metric::kLut);
  const double cp_val = cp.fit(corpus, split, Metric::kCp);
  std::cout << "  val MAPE lut " << TextTable::pct(lut_val) << " / cp "
            << TextTable::pct(cp_val) << " in "
            << TextTable::num(fit_timer.seconds(), 1) << "s\n\n";

  // ----- 2. scheduler + TCP endpoint -----
  SchedulerConfig sc;
  sc.workers = 1;
  sc.max_batch = 8;
  sc.batch_window_us = 200;
  ServingScheduler sched({&lut, &cp}, sc);
  TcpEndpoint ep(sched, ecfg);
  std::cout << "== 2. listening on 127.0.0.1:" << ep.port()
            << " (max-inflight=" << ecfg.max_inflight << ") ==\n\n";

  // ----- 3. loopback client burst -----
  constexpr int kRequests = 32;
  std::cout << "== 3. loopback client: " << kRequests
            << " requests, alternating LUT/CP ==\n";
  // Sequential reference values, computed before the timed window (this
  // also warms the FeatureCache, as a long-running service would be).
  std::vector<double> expected_lut, expected_cp;
  for (const Sample& s : corpus) {
    expected_lut.push_back(lut.predict(s));
    expected_cp.push_back(cp.predict(s));
  }
  TcpClient client(ep.port());
  Timer serve_timer;
  int mismatches = 0;
  int answered = 0;
  int outstanding = 0;
  const auto take_response = [&] {
    ResponseFrame resp;
    if (!client.recv_response(resp)) return false;
    ++answered;
    --outstanding;
    if (resp.result != WireResult::kOk) {
      std::cout << "  request " << resp.request_id
                << " rejected: " << wire_result_name(resp.result) << "\n";
      ++mismatches;
      return true;
    }
    const auto id = static_cast<int>(resp.request_id);
    const std::size_t pick =
        static_cast<std::size_t>((id * 37 + 11) % corpus.size());
    const double want =
        (id % 2 == 0) ? expected_lut[pick] : expected_cp[pick];
    // The serving contract: encode -> frame -> decode -> schedule must
    // never change a prediction, bit for bit.
    if (std::memcmp(&resp.prediction, &want, sizeof want) != 0) {
      ++mismatches;
    }
    return true;
  };
  for (int r = 0; r < kRequests; ++r) {
    // Respect the endpoint's per-connection admission cap: a request sent
    // while max_inflight are already unanswered would be rejected with
    // kOverConnectionLimit, so drain one response first.
    while (outstanding >= ecfg.max_inflight && take_response()) {
    }
    const std::size_t pick =
        static_cast<std::size_t>((r * 37 + 11) % corpus.size());
    RequestFrame req;
    req.request_id = static_cast<std::uint64_t>(r);
    req.model = static_cast<std::uint32_t>(r % 2);  // 0 = LUT, 1 = CP
    req.payload = encode_sample_payload(corpus[pick]);
    client.send_request(req);
    ++outstanding;
  }
  while (answered < kRequests && take_response()) {
  }
  const double wall = serve_timer.seconds();
  std::cout << "  " << answered << "/" << kRequests << " answered in "
            << TextTable::num(wall * 1e3, 0) << "ms ("
            << TextTable::num(static_cast<double>(answered) / wall, 0)
            << " graphs/s over loopback)\n\n";

  // ----- 4. STATS scrape over the same connection -----
  std::cout << "== 4. STATS scrape (wire frame type 3) ==\n";
  StatsFrame scrape;
  bool scrape_ok = client.send_stats_request(9999);
  scrape_ok = scrape_ok && client.recv_stats_response(scrape) &&
              scrape.request_id == 9999 && !scrape.text.empty();
  client.close();
  ep.stop();
  sched.shutdown();
  // All burst responses were drained before the scrape, so every counter
  // below was final when the server rendered the text — it must agree
  // exactly with the facade snapshots. (frames_out/bytes_out are excluded:
  // the stats response itself bumps them after rendering.)
  const WireStats ws = ep.stats();
  const SchedStats ss = sched.stats();
  const std::vector<std::pair<std::string, long long>> scrape_expect = {
      {"gnnhls_wire_connections_accepted_total",
       static_cast<long long>(ws.connections_accepted)},
      {"gnnhls_wire_frames_in_total", static_cast<long long>(ws.frames_in)},
      {"gnnhls_wire_responses_ok_total",
       static_cast<long long>(ws.responses_ok)},
      {"gnnhls_wire_rejects_backpressure_total",
       static_cast<long long>(ws.rejects_backpressure)},
      {"gnnhls_wire_rejects_payload_total",
       static_cast<long long>(ws.rejects_payload)},
      {"gnnhls_wire_rejects_sched_total",
       static_cast<long long>(ws.rejects_sched)},
      {"gnnhls_wire_decode_errors_total",
       static_cast<long long>(ws.decode_errors)},
      {"gnnhls_sched_submitted_total", static_cast<long long>(ss.submitted)},
      {"gnnhls_sched_completed_total", static_cast<long long>(ss.completed)},
      {"gnnhls_sched_batches_total", static_cast<long long>(ss.batches)},
  };
  int scrape_mismatches = 0;
  for (const auto& [family, want] : scrape_expect) {
    const long long got = scrape_value(scrape.text, family);
    if (got != want) {
      std::cout << "  MISMATCH " << family << ": scraped " << got
                << ", facade " << want << "\n";
      ++scrape_mismatches;
    }
  }
  if (scrape_ok && scrape_mismatches == 0) {
    std::cout << "  scraped " << scrape.text.size() << " bytes; "
              << scrape_expect.size()
              << " counters match the facade snapshots exactly\n\n";
  } else {
    std::cout << "  FAIL: scrape_ok=" << scrape_ok << ", "
              << scrape_mismatches << " counter mismatches\n\n";
  }

  // ----- 5. wire stats -----
  std::cout << "== 5. wire stats ==\n";
  TextTable stats({"counter", "value"});
  stats.add_row({"connections accepted/closed",
                 std::to_string(ws.connections_accepted) + "/" +
                     std::to_string(ws.connections_closed)});
  stats.add_row({"frames in/out", std::to_string(ws.frames_in) + "/" +
                                      std::to_string(ws.frames_out)});
  stats.add_row({"bytes in/out", std::to_string(ws.bytes_in) + "/" +
                                     std::to_string(ws.bytes_out)});
  stats.add_row({"responses ok", std::to_string(ws.responses_ok)});
  stats.add_row({"rejects backpressure/payload/sched",
                 std::to_string(ws.rejects_backpressure) + "/" +
                     std::to_string(ws.rejects_payload) + "/" +
                     std::to_string(ws.rejects_sched)});
  stats.add_row({"decode errors", std::to_string(ws.decode_errors)});
  stats.add_row({"write failures", std::to_string(ws.write_failures)});
  std::cout << stats.to_string() << "\n";

  if (mismatches != 0 || answered != kRequests || !scrape_ok ||
      scrape_mismatches != 0) {
    std::cout << "FAIL: " << mismatches << " mismatches, " << answered << "/"
              << kRequests << " answered, scrape_ok=" << scrape_ok << ", "
              << scrape_mismatches << " scrape mismatches\n";
    return 1;
  }
  std::cout << "every socket-served prediction bit-identical to sequential "
               "predict() — the wire changes latency, never values.\n";
  return 0;
}
