// Minimal command-line flag parsing for bench/example binaries.
//
// Supports "--name=value" and "--name value". Unconsumed (unknown) flags are
// surfaced after parsing: strict callers reject them via
// check_all_consumed() (typos in experiment sweeps fail loudly instead of
// silently running defaults); the bench harness instead prints a warning via
// warn_unconsumed() and points at --help, so a flag that only some bench
// binaries understand doesn't abort a sweep over all of them.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

namespace gnnhls {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_string(const std::string& name, const std::string& def) const;
  bool get_bool(const std::string& name, bool def) const;
  bool has(const std::string& name) const;

  /// Names that were provided but never read — used to reject typos.
  /// Call after all get_*() calls.
  void check_all_consumed() const;

  /// Softer variant: prints one warning line per unconsumed flag to `os`
  /// (and a pointer to --help) instead of throwing. Returns the number of
  /// unconsumed flags. Call after all get_*() calls.
  int warn_unconsumed(std::ostream& os) const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace gnnhls
