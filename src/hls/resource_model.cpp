#include "hls/resource_model.h"

#include <algorithm>
#include <cmath>

namespace gnnhls {

namespace {

double ceil_div(int a, int b) {
  return static_cast<double>((a + b - 1) / b);
}

double log2_plus1(double x) { return std::log2(1.0 + x); }

}  // namespace

OpCost ResourceLibrary::cost(Opcode op, int bitwidth, bool const_shift,
                             int phi_fanin) const {
  const int w = std::clamp(bitwidth, 1, 256);
  const double dw = static_cast<double>(w);
  OpCost c;
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
      c.lut = dw;
      c.delay_ns = 0.9 + 0.035 * dw;
      break;
    case Opcode::kMul:
      if (w <= kLutMulMaxWidth) {
        c.lut = 0.5 * dw * dw;
        c.delay_ns = 1.6 + 0.09 * dw;
      } else {
        // DSP48-style 17x25 tiles.
        c.dsp = ceil_div(w, 17) * ceil_div(w, 25);
        c.lut = 0.2 * dw;  // tile-stitch glue
        c.delay_ns = 2.6 + 0.015 * dw;
        c.latency = w >= 33 ? 3 : (w >= 18 ? 2 : 1);
        c.sharable = true;
      }
      break;
    case Opcode::kSDiv:
    case Opcode::kUDiv:
    case Opcode::kSRem:
      // Iterative restoring divider: LUT-hungry with per-iteration state.
      c.lut = 4.0 * dw + 0.05 * dw * dw;
      c.ff = 2.0 * dw;
      c.delay_ns = 1.9 + 0.045 * dw;
      c.latency = w + 3;
      c.sharable = true;
      break;
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
      c.lut = std::ceil(dw / 2.0);
      c.delay_ns = 0.45 + 0.008 * dw;
      break;
    case Opcode::kShl:
    case Opcode::kLShr:
    case Opcode::kAShr:
      if (const_shift) {
        // Constant shift amount is pure rewiring.
        c.delay_ns = 0.05;
      } else {
        c.lut = dw * 0.5 * log2_plus1(dw);
        c.delay_ns = 1.0 + 0.028 * dw;
      }
      break;
    case Opcode::kICmp:
      c.lut = std::ceil(dw / 2.0) + 1.0;
      c.delay_ns = 0.8 + 0.018 * dw;
      break;
    case Opcode::kSelect:
    case Opcode::kMux:
      c.lut = dw;
      c.delay_ns = 0.6 + 0.01 * dw;
      break;
    case Opcode::kPhi:
      // FSM-steered mux; loop-header phis are additionally registered by
      // the scheduler when their value crosses a state boundary.
      c.lut = dw * std::max(phi_fanin - 1, 1) * 0.5;
      c.delay_ns = 0.55 + 0.008 * dw;
      break;
    case Opcode::kLoad:
      c.lut = 6.0 + 0.25 * dw;  // RAM interface glue
      c.ff = dw;                // registered read data
      c.delay_ns = 2.1;
      c.latency = 1;
      break;
    case Opcode::kStore:
      c.lut = 4.0 + 0.2 * dw;
      c.ff = 0.5 * dw;  // write address/data staging
      c.delay_ns = 1.5;
      c.latency = 1;
      break;
    case Opcode::kAlloca:
      // Local array storage: modeled as distributed LUTRAM + init logic.
      c.lut = 2.0 + 0.5 * dw;
      c.ff = 2.0;
      c.delay_ns = 0.0;
      break;
    case Opcode::kGetElementPtr:
      c.lut = 4.0 + 0.15 * dw;
      c.delay_ns = 0.7;
      break;
    case Opcode::kZExt:
    case Opcode::kSExt:
    case Opcode::kTrunc:
    case Opcode::kPartSelect:
    case Opcode::kBitConcat:
      c.delay_ns = 0.05;  // wiring only
      break;
    case Opcode::kBr:
      c.lut = 1.0;  // next-state steering
      c.delay_ns = 0.3;
      break;
    case Opcode::kRet:
    case Opcode::kCall:
    case Opcode::kConst:
    case Opcode::kBlock:
      break;
    case Opcode::kReadPort:
    case Opcode::kWritePort:
      c.ff = dw;  // registered I/O
      c.delay_ns = 0.2;
      break;
    case Opcode::kCount:
      GNNHLS_CHECK(false, "cost() on sentinel opcode");
  }
  return c;
}

double ResourceLibrary::sharing_mux_lut(int bits, int sources) const {
  if (sources <= 1) return 0.0;
  return static_cast<double>(bits) * 0.5 *
         std::ceil(std::log2(static_cast<double>(sources)));
}

}  // namespace gnnhls
