// CHStone-style kernels (Hara et al., JIP'09): 10 application programs used
// for C-based HLS evaluation. Integer mini versions with the original
// control/data motifs (codec quantizers, crypto rounds, soft-float
// arithmetic, a processor ALU).
#include "suites/suites.h"

#include "suites/dsl.h"

namespace gnnhls {

namespace {

using namespace suite_dsl;  // NOLINT(google-build-using-namespace)

Function ch_adpcm() {
  constexpr long n = 16;
  Function f;
  f.name = "adpcm";
  f.params = {in_array("samples", n), in_scalar("step0")};
  f.body.push_back(decl_array("encoded", ScalarType{32, true}, n));
  f.body.push_back(decl("valpred", ScalarType{32, true}, lit(0)));
  f.body.push_back(decl("step", ScalarType{32, true}, var("step0")));
  f.body.push_back(loop(
      "i", n,
      stmts(
          decl("diff", ScalarType{32, true},
               A("samples", var("i")) - var("valpred")),
          decl("sign", ScalarType{32, true},
               select(lt(var("diff"), lit(0)), lit(8), lit(0))),
          decl("absdiff", ScalarType{32, true},
               select(lt(var("diff"), lit(0)), lit(0) - var("diff"),
                      var("diff"))),
          decl("delta", ScalarType{32, true},
               (var("absdiff") << lit(2)) / (var("step") | lit(1))),
          decl("clamped", ScalarType{32, true},
               select(gt(var("delta"), lit(7)), lit(7), var("delta"))),
          assign("valpred",
                 var("valpred") +
                     select(gt(var("sign"), lit(0)),
                            lit(0) - (var("clamped") * var("step") >> lit(2)),
                            var("clamped") * var("step") >> lit(2))),
          assign("step",
                 (var("step") * (lit(8) + var("clamped"))) >> lit(3)),
          assign_array("encoded", var("i"),
                       var("sign") | var("clamped")))));
  f.body.push_back(ret(A("encoded", lit(0)) + var("valpred")));
  return f;
}

Function ch_aes_round() {
  Function f;
  f.name = "aes";
  f.params = {in_array("state", 16), in_array("key", 16),
              in_array("sbox", 256)};
  f.body.push_back(decl_array("next", ScalarType{8, true}, 16));
  f.body.push_back(loop(
      "r", 4,  // rounds
      stmts(loop("i", 16,
                 stmts(assign_array(
                     "next", var("i"),
                     A("sbox", (A("state", var("i")) ^ A("key", var("i"))) &
                                   lit(255))))),
            loop("c", 4,
                 stmts(decl("a0", ScalarType{8, true},
                            A("next", var("c") * lit(4))),
                       decl("a1", ScalarType{8, true},
                            A("next", var("c") * lit(4) + lit(1))),
                       decl("a2", ScalarType{8, true},
                            A("next", var("c") * lit(4) + lit(2))),
                       decl("a3", ScalarType{8, true},
                            A("next", var("c") * lit(4) + lit(3))),
                       assign_array("state", var("c") * lit(4),
                                    var("a0") ^ var("a1") ^
                                        ((var("a2") << lit(1)) & lit(255))),
                       assign_array("state", var("c") * lit(4) + lit(1),
                                    var("a1") ^ var("a2") ^
                                        ((var("a3") << lit(1)) & lit(255))),
                       assign_array("state", var("c") * lit(4) + lit(2),
                                    var("a2") ^ var("a3") ^
                                        ((var("a0") << lit(1)) & lit(255))),
                       assign_array("state", var("c") * lit(4) + lit(3),
                                    var("a3") ^ var("a0") ^
                                        ((var("a1") << lit(1)) &
                                         lit(255))))))));
  f.body.push_back(ret(A("state", lit(0))));
  return f;
}

Function ch_blowfish() {
  constexpr long rounds = 8;
  Function f;
  f.name = "blowfish";
  f.params = {in_scalar("xl0"), in_scalar("xr0"), in_array("p_box", rounds + 2),
              in_array("s_box", 64)};
  f.body.push_back(decl("xl", ScalarType{32, true}, var("xl0")));
  f.body.push_back(decl("xr", ScalarType{32, true}, var("xr0")));
  f.body.push_back(loop(
      "r", rounds,
      stmts(assign("xl", var("xl") ^ A("p_box", var("r"))),
            decl("a", ScalarType{32, true}, (var("xl") >> lit(24)) & lit(63)),
            decl("b", ScalarType{32, true}, (var("xl") >> lit(16)) & lit(63)),
            decl("c", ScalarType{32, true}, (var("xl") >> lit(8)) & lit(63)),
            decl("d", ScalarType{32, true}, var("xl") & lit(63)),
            decl("feistel", ScalarType{32, true},
                 ((A("s_box", var("a")) + A("s_box", var("b"))) ^
                  A("s_box", var("c"))) +
                     A("s_box", var("d"))),
            assign("xr", var("xr") ^ var("feistel")),
            // swap halves
            decl("tmp_sw", ScalarType{32, true}, var("xl")),
            assign("xl", var("xr")), assign("xr", var("tmp_sw")))));
  f.body.push_back(ret(var("xl") ^ var("xr")));
  return f;
}

Function ch_gsm_lpc() {
  constexpr long n = 16, lags = 4;
  Function f;
  f.name = "gsm";
  f.params = {in_array("s", n)};
  f.body.push_back(decl_array("acf", ScalarType{32, true}, lags));
  // Autocorrelation.
  f.body.push_back(loop(
      "k", lags,
      stmts(decl("sum", ScalarType{32, true}, lit(0)),
            loop("i", n - lags,
                 stmts(assign("sum",
                              var("sum") + A("s", var("i")) *
                                               A("s", (var("i") + var("k")) &
                                                          lit(n - 1))))),
            assign_array("acf", var("k"), var("sum")))));
  // Normalization by acf[0] (division-heavy, like the reflection pass).
  f.body.push_back(decl_array("refl", ScalarType{32, true}, lags));
  f.body.push_back(loop(
      "k2", lags,
      stmts(assign_array("refl", var("k2"),
                         (A("acf", var("k2")) << lit(8)) /
                             (A("acf", lit(0)) | lit(1))))));
  f.body.push_back(ret(A("refl", lit(lags - 1))));
  return f;
}

Function ch_jpeg_dct() {
  Function f;
  f.name = "jpeg";
  f.params = {in_array("block", 64)};
  f.body.push_back(decl_array("coef", ScalarType{32, true}, 64));
  // Row-wise 8-point DCT butterflies with fixed-point constant multipliers.
  f.body.push_back(loop(
      "r", 8,
      stmts(
          decl("s0", ScalarType{32, true},
               A("block", var("r") * lit(8)) +
                   A("block", var("r") * lit(8) + lit(7))),
          decl("s1", ScalarType{32, true},
               A("block", var("r") * lit(8) + lit(1)) +
                   A("block", var("r") * lit(8) + lit(6))),
          decl("s2", ScalarType{32, true},
               A("block", var("r") * lit(8) + lit(2)) +
                   A("block", var("r") * lit(8) + lit(5))),
          decl("s3", ScalarType{32, true},
               A("block", var("r") * lit(8) + lit(3)) +
                   A("block", var("r") * lit(8) + lit(4))),
          decl("d0", ScalarType{32, true},
               A("block", var("r") * lit(8)) -
                   A("block", var("r") * lit(8) + lit(7))),
          decl("d1", ScalarType{32, true},
               A("block", var("r") * lit(8) + lit(1)) -
                   A("block", var("r") * lit(8) + lit(6))),
          assign_array("coef", var("r") * lit(8),
                       var("s0") + var("s1") + var("s2") + var("s3")),
          assign_array("coef", var("r") * lit(8) + lit(4),
                       var("s0") - var("s3") + var("s1") - var("s2")),
          assign_array("coef", var("r") * lit(8) + lit(2),
                       (var("s0") - var("s3")) * lit(277) +
                           (var("s1") - var("s2")) * lit(669) >>
                           lit(9)),
          assign_array("coef", var("r") * lit(8) + lit(1),
                       (var("d0") * lit(502) + var("d1") * lit(426)) >>
                           lit(9)))));
  f.body.push_back(ret(A("coef", lit(0))));
  return f;
}

Function ch_mips() {
  constexpr long steps = 16;
  Function f;
  f.name = "mips";
  f.params = {in_array("imem", steps), in_array("reg_init", 8)};
  f.body.push_back(decl_array("regs", ScalarType{32, true}, 8));
  f.body.push_back(loop(
      "r0", 8, stmts(assign_array("regs", var("r0"),
                                  A("reg_init", var("r0"))))));
  f.body.push_back(loop(
      "pc", steps,
      stmts(
          decl("inst", ScalarType{32, true}, A("imem", var("pc"))),
          decl("op", ScalarType{32, true}, (var("inst") >> lit(9)) & lit(7)),
          decl("rs", ScalarType{32, true}, (var("inst") >> lit(6)) & lit(7)),
          decl("rt", ScalarType{32, true}, (var("inst") >> lit(3)) & lit(7)),
          decl("rd", ScalarType{32, true}, var("inst") & lit(7)),
          decl("va", ScalarType{32, true}, A("regs", var("rs"))),
          decl("vb", ScalarType{32, true}, A("regs", var("rt"))),
          decl("alu", ScalarType{32, true}, lit(0)),
          if_stmt(eq(var("op"), lit(0)),
                  stmts(assign("alu", var("va") + var("vb"))),
                  stmts(if_stmt(
                      eq(var("op"), lit(1)),
                      stmts(assign("alu", var("va") - var("vb"))),
                      stmts(if_stmt(
                          eq(var("op"), lit(2)),
                          stmts(assign("alu", var("va") & var("vb"))),
                          stmts(if_stmt(
                              eq(var("op"), lit(3)),
                              stmts(assign("alu", var("va") | var("vb"))),
                              stmts(if_stmt(
                                  eq(var("op"), lit(4)),
                                  stmts(assign("alu",
                                               var("va") ^ var("vb"))),
                                  stmts(assign(
                                      "alu",
                                      select(lt(var("va"), var("vb")),
                                             lit(1), lit(0))))))))))))),
          assign_array("regs", var("rd"), var("alu")))));
  f.body.push_back(ret(A("regs", lit(7))));
  return f;
}

Function ch_motion() {
  constexpr long block = 4, search = 4;
  Function f;
  f.name = "motion";
  f.params = {in_array("ref", 64), in_array("cur", block * block)};
  f.body.push_back(decl("best_sad", ScalarType{32, true}, lit(1 << 20)));
  f.body.push_back(decl("best_pos", ScalarType{32, true}, lit(0)));
  f.body.push_back(loop(
      "p", search * search,
      stmts(
          decl("sad", ScalarType{32, true}, lit(0)),
          loop("y", block,
               stmts(loop(
                   "x", block,
                   stmts(decl("dpix", ScalarType{32, true},
                              A("cur", idx2("y", "x", block)) -
                                  A("ref", (var("p") + var("y") * lit(8) +
                                            var("x")) &
                                               lit(63))),
                         assign("sad",
                                var("sad") +
                                    select(lt(var("dpix"), lit(0)),
                                           lit(0) - var("dpix"),
                                           var("dpix"))))))),
          if_stmt(lt(var("sad"), var("best_sad")),
                  stmts(assign("best_sad", var("sad")),
                        assign("best_pos", var("p")))))));
  f.body.push_back(ret(var("best_pos") + var("best_sad")));
  return f;
}

Function ch_sha() {
  constexpr long words = 16, rounds = 16;
  Function f;
  f.name = "sha";
  f.params = {in_array("w", words)};
  f.body.push_back(decl("a", ScalarType{32, true}, lit(0x6745)));
  f.body.push_back(decl("b", ScalarType{32, true}, lit(0xefcd)));
  f.body.push_back(decl("c", ScalarType{32, true}, lit(0x98ba)));
  f.body.push_back(decl("d", ScalarType{32, true}, lit(0x1032)));
  f.body.push_back(decl("e", ScalarType{32, true}, lit(0xc3d2)));
  f.body.push_back(loop(
      "t", rounds,
      stmts(
          // rotl5(a) + f(b,c,d) + e + w[t]
          decl("rot", ScalarType{32, true},
               ((var("a") << lit(5)) | (var("a") >> lit(27)))),
          decl("fbcd", ScalarType{32, true},
               (var("b") & var("c")) | ((var("b") ^ lit(-1)) & var("d"))),
          decl("tempv", ScalarType{32, true},
               var("rot") + var("fbcd") + var("e") +
                   A("w", var("t") & lit(words - 1)) + lit(0x5a82)),
          assign("e", var("d")), assign("d", var("c")),
          assign("c", (var("b") << lit(30)) | (var("b") >> lit(2))),
          assign("b", var("a")), assign("a", var("tempv")))));
  f.body.push_back(ret(var("a") ^ var("b") ^ var("c") ^ var("d") ^ var("e")));
  return f;
}

Function ch_dfadd() {
  Function f;
  f.name = "dfadd";
  f.params = {in_scalar("a_mant", 64), in_scalar("a_exp"),
              in_scalar("b_mant", 64), in_scalar("b_exp")};
  // Soft-float addition: align mantissas, add, renormalize.
  f.body.push_back(decl("exp_diff", ScalarType{32, true},
                        var("a_exp") - var("b_exp")));
  f.body.push_back(decl("shift", ScalarType{32, true},
                        select(lt(var("exp_diff"), lit(0)),
                               lit(0) - var("exp_diff"), var("exp_diff"))));
  f.body.push_back(decl("shift_clamped", ScalarType{32, true},
                        select(gt(var("shift"), lit(52)), lit(52),
                               var("shift"))));
  f.body.push_back(decl(
      "b_aligned", ScalarType{64, true},
      select(gt(var("exp_diff"), lit(0)),
             cast(var("b_mant"), 64) >> var("shift_clamped"),
             cast(var("b_mant"), 64))));
  f.body.push_back(decl(
      "a_aligned", ScalarType{64, true},
      select(lt(var("exp_diff"), lit(0)),
             cast(var("a_mant"), 64) >> var("shift_clamped"),
             cast(var("a_mant"), 64))));
  f.body.push_back(decl("sum", ScalarType{64, true},
                        var("a_aligned") + var("b_aligned")));
  f.body.push_back(decl("res_exp", ScalarType{32, true},
                        select(gt(var("exp_diff"), lit(0)), var("a_exp"),
                               var("b_exp"))));
  // Renormalize: up to 4 shift steps (unrolled loop with branches).
  f.body.push_back(decl("mant", ScalarType{64, true}, var("sum")));
  f.body.push_back(decl("norm_exp", ScalarType{32, true}, var("res_exp")));
  std::vector<StmtPtr> norm = stmts(
      if_stmt(gt(var("mant"), lit(1L << 53, 64)),
              stmts(assign("mant", var("mant") >> lit(1)),
                    assign("norm_exp", var("norm_exp") + lit(1)))));
  f.body.push_back(loop("n", 4, std::move(norm)));
  f.body.push_back(ret(cast(var("mant"), 32) ^ var("norm_exp")));
  return f;
}

Function ch_dfmul() {
  Function f;
  f.name = "dfmul";
  f.params = {in_scalar("a_mant", 64), in_scalar("a_exp"),
              in_scalar("b_mant", 64), in_scalar("b_exp")};
  // Soft-float multiply: wide mantissa product + exponent arithmetic.
  f.body.push_back(decl("hi_a", ScalarType{32, true},
                        cast(var("a_mant") >> lit(26), 32)));
  f.body.push_back(decl("lo_a", ScalarType{32, true},
                        cast(var("a_mant") & lit((1L << 26) - 1, 64), 32)));
  f.body.push_back(decl("hi_b", ScalarType{32, true},
                        cast(var("b_mant") >> lit(26), 32)));
  f.body.push_back(decl("lo_b", ScalarType{32, true},
                        cast(var("b_mant") & lit((1L << 26) - 1, 64), 32)));
  f.body.push_back(decl("hh", ScalarType{64, true},
                        cast(var("hi_a") * var("hi_b"), 64)));
  f.body.push_back(decl("hl", ScalarType{64, true},
                        cast(var("hi_a") * var("lo_b"), 64)));
  f.body.push_back(decl("lh", ScalarType{64, true},
                        cast(var("lo_a") * var("hi_b"), 64)));
  f.body.push_back(decl(
      "prod", ScalarType{64, true},
      (var("hh") << lit(12)) + ((var("hl") + var("lh")) >> lit(14))));
  f.body.push_back(decl("pexp", ScalarType{32, true},
                        var("a_exp") + var("b_exp") - lit(1023)));
  // Renormalization loop (the original dfmul normalizes and rounds).
  f.body.push_back(decl("mant", ScalarType{64, true}, var("prod")));
  std::vector<StmtPtr> norm = stmts(
      if_stmt(gt(var("mant"), lit(1L << 53, 64)),
              stmts(assign("mant", var("mant") >> lit(1)),
                    assign("pexp", var("pexp") + lit(1)))));
  f.body.push_back(loop("n", 3, std::move(norm)));
  f.body.push_back(ret(cast(var("mant"), 32) ^ var("pexp")));
  return f;
}

}  // namespace

std::vector<SuiteProgram> chstone_all() {
  std::vector<SuiteProgram> v;
  const auto add = [&v](Function f) {
    v.push_back(SuiteProgram{"chstone", f.name, std::move(f)});
  };
  add(ch_adpcm());
  add(ch_aes_round());
  add(ch_blowfish());
  add(ch_dfadd());
  add(ch_dfmul());
  add(ch_gsm_lpc());
  add(ch_jpeg_dct());
  add(ch_mips());
  add(ch_motion());
  add(ch_sha());
  return v;
}

}  // namespace gnnhls
