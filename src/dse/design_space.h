// Design-space declaration and deterministic candidate enumeration.
//
// A DesignSpace is a knob grid (source-level unroll/bitwidth axes from
// suites/variants.h plus HlsConfig scheduler axes: clock period and clock
// uncertainty) over a parameterized kernel builder. enumerate() walks the
// grid in fixed row-major order (unroll outermost, uncertainty innermost)
// and assigns each DesignPoint its enumeration index — the identity every
// downstream structure (explorer candidate lists, Pareto fronts, halving
// survivor sets) is keyed by. Same grid + builder => byte-identical point
// sequence, regardless of threads (the dse/ determinism contract; asserted
// by tests/dse_test.cpp).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "frontend/ast.h"
#include "hls/scheduler.h"

namespace gnnhls {

/// The explorable axes. Values are used in the order given; every
/// combination is one candidate.
struct KnobGrid {
  std::vector<int> unroll = {1, 2, 4, 8};
  std::vector<int> bitwidth = {8, 16, 32};
  // HlsConfig axes: scheduler knobs become explorable dimensions.
  std::vector<double> clock_ns = {10.0};
  std::vector<double> clock_uncertainty = {0.125};

  std::size_t size() const {
    return unroll.size() * bitwidth.size() * clock_ns.size() *
           clock_uncertainty.size();
  }
};

/// Deterministically grows the default grid (alternating extra bitwidths
/// and clock targets) until it holds at least `points` candidates. Throws
/// if `points` exceeds the largest supported grid (~240).
KnobGrid grid_with_at_least(int points);

/// One candidate implementation: a position in the grid.
struct DesignPoint {
  int index = -1;  // position in enumeration order
  int unroll = 1;
  int bitwidth = 32;
  HlsConfig hls;

  /// Stable human-readable id, e.g. "u4_w16_c10_q0.125".
  std::string label() const;
};

class DesignSpace {
 public:
  /// Builds the kernel AST for one design point (pure function of the
  /// point's knobs; see suites/variants.h).
  using Builder = std::function<Function(const DesignPoint&)>;

  DesignSpace(std::string kernel_name, Builder builder, KnobGrid grid);

  const std::string& kernel_name() const { return kernel_name_; }
  const KnobGrid& grid() const { return grid_; }
  std::size_t size() const { return grid_.size(); }

  /// All design points in fixed row-major grid order; point i has index i.
  std::vector<DesignPoint> enumerate() const;

  Function build(const DesignPoint& p) const { return builder_(p); }

  /// Lowers a point into a prediction-ready candidate Sample: CDFG +
  /// message-passing tensors, *without* running the HLS flow — truth stays
  /// zero until the explorer synthesizes the point. (Off-the-shelf and
  /// self-inferred knowledge-infused features are pure functions of the
  /// lowering, so predictors can score candidates that were never
  /// synthesized — the whole point of model-in-the-loop DSE.)
  Sample lower_candidate(const DesignPoint& p) const;

  /// Lowers every enumerated point, in enumeration order, across the
  /// process thread pool: slot i of the result is lower_candidate() of the
  /// point with index i, byte-identical regardless of pool width (each
  /// shard fills its own pre-sized slot).
  std::vector<Sample> lower_candidates() const;

 private:
  std::string kernel_name_;
  Builder builder_;
  KnobGrid grid_;
};

/// DesignSpace over one of the suites/variants.h kernels ("gemm", "fir",
/// "stencil"); throws on unknown names.
DesignSpace make_kernel_design_space(const std::string& kernel,
                                     KnobGrid grid = {});

}  // namespace gnnhls
