#include "core/ensemble.h"

#include <cmath>

#include "gnn/graph_batch.h"
#include "train/feature_cache.h"

namespace gnnhls {

QorEnsemble::QorEnsemble(Approach approach, ModelConfig model_cfg,
                         TrainConfig train_cfg, int members,
                         InfusedInference infused)
    : approach_(approach), infused_(infused), base_seed_(train_cfg.seed) {
  GNNHLS_CHECK(members >= 1, "QorEnsemble: needs at least one member");
  members_.reserve(static_cast<std::size_t>(members));
  for (int k = 0; k < members; ++k) {
    members_.push_back(std::make_unique<QorPredictor>(approach, model_cfg,
                                                      train_cfg, infused));
  }
}

FitReport QorEnsemble::fit(const std::vector<Sample>& samples,
                           const SplitIndices& split, Metric metric,
                           const FitOptions& opts) {
  FitReport first;
  for (std::size_t k = 0; k < members_.size(); ++k) {
    FitOptions member_opts = opts;
    // Member 0 keeps the base seed exactly (0 = "inherit TrainConfig::seed"
    // inside fit), so an ensemble of one reproduces the single model
    // bitwise; members k > 0 offset it — the only thing that differs.
    if (k > 0) {
      const std::uint64_t base = opts.seed != 0 ? opts.seed : base_seed_;
      member_opts.seed = base + static_cast<std::uint64_t>(k);
    }
    FitReport report = members_[k]->fit(samples, split, metric, member_opts);
    if (k == 0) first = std::move(report);
  }
  return first;
}

FitReport QorEnsemble::refit(const std::vector<Sample>& new_samples,
                             const FitOptions& opts) {
  FitReport first;
  for (std::size_t k = 0; k < members_.size(); ++k) {
    // opts.seed == 0 resumes each member's own (already offset) fit seed,
    // keeping the members decorrelated through every feedback round.
    FitReport report = members_[k]->refit(new_samples, opts);
    if (k == 0) first = std::move(report);
  }
  return first;
}

std::vector<ScoreResult> QorEnsemble::score_many(
    const std::vector<const Sample*>& samples) const {
  if (samples.empty()) return {};
  const std::size_t n = samples.size();
  const std::size_t kMembers = members_.size();
  std::vector<std::vector<double>> per_member(kMembers);

  const bool pure = approach_ != Approach::kKnowledgeInfused ||
                    infused_ == InfusedInference::kOracle;
  if (pure) {
    // ONE union + feature assembly shared by every member's batched
    // forward: features are a pure function of (sample, approach), so all
    // K members read the same stacked matrix.
    std::vector<const GraphTensors*> parts;
    std::vector<const Matrix*> fparts;
    parts.reserve(n);
    fparts.reserve(n);
    for (const Sample* s : samples) {
      GNNHLS_CHECK(s != nullptr, "score_many: null sample");
      parts.push_back(&s->tensors);
      fparts.push_back(&FeatureCache::global().features(*s, approach_));
    }
    const GraphBatch batch = GraphBatch::build(parts);
    const Matrix stacked = GraphBatch::stack_features(fparts);
    for (std::size_t k = 0; k < kMembers; ++k) {
      const QorPredictor& m = *members_[k];
      const std::vector<float> encoded =
          m.regressor().predict_batch(batch.merged, stacked);
      per_member[k].reserve(n);
      for (float e : encoded) {
        per_member[k].push_back(decode_target(e, m.metric()));
      }
    }
  } else {
    // -I self-inferred: each member's classifier produces its own feature
    // matrices, so the union cannot be shared — per-member batched calls.
    for (std::size_t k = 0; k < kMembers; ++k) {
      per_member[k] = members_[k]->predict_many(samples);
    }
  }

  // Fixed member-order accumulation in double precision: the aggregate is a
  // pure function of the member outputs, independent of threading.
  std::vector<ScoreResult> out(n);
  for (std::size_t j = 0; j < n; ++j) {
    double sum = 0.0;
    for (std::size_t k = 0; k < kMembers; ++k) sum += per_member[k][j];
    const double mean = sum / static_cast<double>(kMembers);
    double sq = 0.0;
    for (std::size_t k = 0; k < kMembers; ++k) {
      const double d = per_member[k][j] - mean;
      sq += d * d;
    }
    out[j].mean = mean;
    out[j].uncertainty =
        kMembers > 1 ? std::sqrt(sq / static_cast<double>(kMembers)) : 0.0;
  }
  return out;
}

ScoreResult QorEnsemble::score(const Sample& sample) const {
  return score_many({&sample}).front();
}

std::vector<double> QorEnsemble::predict_many(
    const std::vector<const Sample*>& samples) const {
  std::vector<double> out;
  const std::vector<ScoreResult> scored = score_many(samples);
  out.reserve(scored.size());
  for (const ScoreResult& s : scored) out.push_back(s.mean);
  return out;
}

}  // namespace gnnhls
