#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file (obs/trace.h's --trace-out).

Checks that the file is valid JSON in the Chrome trace format the repo
emits ({"traceEvents": [...]}), and that every event is a well-formed
complete event: string "name"/"cat", "ph" == "X", integer "ts"/"tid"/"pid",
and a non-negative integer "dur". This is what Perfetto / chrome://tracing
need to load the file, so CI runs it on the trace bench_serving captures.

--require NAME[:MINCOUNT] asserts at least MINCOUNT (default 1) events with
that name exist — the bench-smoke gate requires the spans the serving path
must emit (queue_wait, forward) to actually show up.

Exit status: 0 = valid, 1 = invalid or a --require unmet, 2 = usage error.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"FAIL: {msg}")
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="trace JSON file to validate")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME[:MINCOUNT]",
                    help="require >= MINCOUNT (default 1) events named NAME;"
                         " repeatable")
    args = ap.parse_args()

    requirements = {}
    for spec in args.require:
        name, _, count = spec.partition(":")
        try:
            requirements[name] = int(count) if count else 1
        except ValueError:
            ap.error(f"bad --require count in {spec!r}")

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot parse {args.trace}: {e}")

    if not isinstance(doc, dict) or not isinstance(
            doc.get("traceEvents"), list):
        return fail("top level must be an object with a traceEvents list")

    counts = {}
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            return fail(f"{where} is not an object")
        for key in ("name", "cat"):
            if not isinstance(ev.get(key), str) or not ev[key]:
                return fail(f"{where} lacks a non-empty string {key!r}")
        if ev.get("ph") != "X":
            return fail(f"{where} ph is {ev.get('ph')!r}, expected 'X'")
        for key in ("ts", "pid", "tid"):
            if not isinstance(ev.get(key), int):
                return fail(f"{where} lacks an integer {key!r}")
        if not isinstance(ev.get("dur"), int) or ev["dur"] < 0:
            return fail(f"{where} lacks a non-negative integer 'dur'")
        counts[ev["name"]] = counts.get(ev["name"], 0) + 1

    status = 0
    for name, want in sorted(requirements.items()):
        got = counts.get(name, 0)
        if got < want:
            print(f"FAIL: required span {name!r}: {got} event(s), "
                  f"need >= {want}")
            status = 1

    if status == 0:
        total = sum(counts.values())
        spans = ", ".join(f"{n} x{c}" for n, c in sorted(counts.items()))
        print(f"OK: {total} well-formed events ({spans or 'empty trace'})")
    return status


if __name__ == "__main__":
    sys.exit(main())
