// Wire protocol for the TCP serving front-end — a small length-prefixed
// binary framing layer in front of ServingScheduler::submit.
//
// Every frame is a fixed 12-byte header followed by a body:
//
//   offset  size  field
//   0       4     magic 0x57484E47 ("GNHW" as bytes, little-endian)
//   4       1     version major (kWireMajor)
//   5       1     version minor (kWireMinor)
//   6       1     frame type (1 = request, 2 = response,
//                 3 = stats request, 4 = stats response)
//   7       1     reserved (written 0; decoders ignore it — minor-version
//                 extension space)
//   8       4     body length in bytes (u32, little-endian)
//
// Request body (kWireRequestFixedBytes fixed fields + variable payload):
//
//   0       8     request id (u64) — client-assigned, echoed in the response
//   8       4     model id (u32)
//   12      4     priority (i32)
//   16      8     deadline in microseconds relative to server receipt
//                 (i64; 0 = no deadline)
//   24      ...   sample payload: dataset/serialize benchmark text
//                 (encode_sample_payload — itself versioned)
//
// Response body (exactly kWireResponseBodyBytes):
//
//   0       8     request id (u64)
//   8       4     result code (u32, WireResult)
//   12      8     prediction (IEEE-754 double bit pattern, little-endian;
//                 all-zero when result != kOk) — bit-exact, so the serving
//                 determinism contract survives the wire
//
// Stats request body (minor version 1 — the observability scrape):
//
//   0       8     request id (u64) — echoed in the stats response
//
// Stats response body:
//
//   0       8     request id (u64)
//   8       ...   Prometheus-style text exposition
//                 (MetricsRegistry::render_text), UTF-8, no terminator —
//                 the body length delimits it
//
// All multi-byte fields are little-endian regardless of host order.
//
// Versioning: a decoder accepts any frame whose major version matches
// kWireMajor — unknown *minor* versions decode (minor bumps may only use
// the reserved byte or append response fields the old decoder never reads),
// unknown *major* versions are rejected cleanly with kUnsupportedMajor.
//
// The WireDecoder is incremental: feed() arbitrary byte chunks as they
// arrive off a socket (frames may be torn at any byte boundary) and next()
// yields complete frames. Any malformed input — bad magic, unsupported
// major, unknown type, a length prefix past the configured cap, or a body
// that doesn't parse — poisons the decoder: the stream has lost framing, so
// the connection must be closed. Decode errors never throw.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/scheduler.h"

namespace gnnhls {

inline constexpr std::uint32_t kWireMagic = 0x57484E47u;  // "GNHW"
inline constexpr std::uint8_t kWireMajor = 1;
/// Minor 1 added the stats frame pair (types 3/4). Minor-version bumps are
/// decode-compatible by the versioning rule above: a minor-0 decoder never
/// sees a stats frame unless it asks for one.
inline constexpr std::uint8_t kWireMinor = 1;
inline constexpr std::uint8_t kWireTypeRequest = 1;
inline constexpr std::uint8_t kWireTypeResponse = 2;
inline constexpr std::uint8_t kWireTypeStatsRequest = 3;
inline constexpr std::uint8_t kWireTypeStatsResponse = 4;
inline constexpr std::size_t kWireHeaderBytes = 12;
inline constexpr std::size_t kWireRequestFixedBytes = 24;
inline constexpr std::size_t kWireResponseBodyBytes = 20;
inline constexpr std::size_t kWireStatsFixedBytes = 8;
/// Default cap on a frame body. A hostile length prefix is rejected with
/// kOversized before any allocation of that size happens.
inline constexpr std::size_t kWireDefaultMaxBody = 16u << 20;  // 16 MiB

/// Result code carried by a response frame. The first four values mirror
/// AdmitStatus (scheduler admission outcomes relayed to the client); the
/// rest are wire-level rejections the endpoint decides before a request
/// ever reaches the scheduler.
enum class WireResult : std::uint32_t {
  kOk = 0,
  kExpired = 1,       // AdmitStatus::kExpired (at submit or in queue)
  kOverCapacity = 2,  // AdmitStatus::kOverCapacity (scheduler queue full)
  kShutdown = 3,      // AdmitStatus::kShutdown
  /// Per-connection backpressure: the connection already has
  /// max_inflight unanswered requests (TcpEndpointConfig::max_inflight).
  kOverConnectionLimit = 4,
  /// The sample payload failed to decode (see ParseStatus for why).
  kBadPayload = 5,
  /// Model id out of range for the scheduler behind the endpoint.
  kBadModel = 6,
  /// The forward itself failed (exception out of predict_many).
  kInternalError = 7,
};

std::string wire_result_name(WireResult r);
WireResult wire_result_from_admit(AdmitStatus s);

struct RequestFrame {
  std::uint64_t request_id = 0;
  std::uint32_t model = 0;
  std::int32_t priority = 0;
  std::int64_t deadline_us = 0;  // relative to server receipt; 0 = none
  std::string payload;           // encode_sample_payload output
};

struct ResponseFrame {
  std::uint64_t request_id = 0;
  WireResult result = WireResult::kOk;
  double prediction = 0.0;  // meaningful only when result == kOk
};

/// One struct covers both stats frame types: a stats request's `text` is
/// empty on the wire (decoders tolerate and ignore a non-empty one); a
/// stats response's `text` is the rendered metrics exposition.
struct StatsFrame {
  std::uint64_t request_id = 0;
  std::string text;
};

/// Appends one encoded frame to `out` (header + body).
void append_request_frame(std::string& out, const RequestFrame& f);
void append_response_frame(std::string& out, const ResponseFrame& f);
void append_stats_request_frame(std::string& out, const StatsFrame& f);
void append_stats_response_frame(std::string& out, const StatsFrame& f);
std::string encode_request_frame(const RequestFrame& f);
std::string encode_response_frame(const ResponseFrame& f);
std::string encode_stats_request_frame(const StatsFrame& f);
std::string encode_stats_response_frame(const StatsFrame& f);

/// What WireDecoder::next produced. kFrame and kNeedMore are the live
/// states; everything else is a poison state (see class comment).
enum class WireStatus {
  kFrame = 0,
  kNeedMore,
  kBadMagic,
  kUnsupportedMajor,
  kBadType,
  kOversized,
  kBadBody,
};

std::string wire_status_name(WireStatus s);
inline bool wire_status_is_error(WireStatus s) {
  return s != WireStatus::kFrame && s != WireStatus::kNeedMore;
}

/// A decoded frame: exactly one of request/response/stats is meaningful,
/// discriminated by `type` (stats covers both stats frame types).
struct DecodedFrame {
  std::uint8_t type = 0;
  std::uint8_t version_minor = 0;
  RequestFrame request;
  ResponseFrame response;
  StatsFrame stats;
};

class WireDecoder {
 public:
  explicit WireDecoder(std::size_t max_body_bytes = kWireDefaultMaxBody)
      : max_body_(max_body_bytes) {}

  /// Buffers `n` bytes from the stream (any tearing, including one byte at
  /// a time).
  void feed(const char* data, std::size_t n);

  /// Yields the next complete frame (kFrame, consumed from the buffer),
  /// kNeedMore when the buffer holds no complete frame, or a poison status.
  /// Once poisoned, every later call returns the same status.
  WireStatus next(DecodedFrame& out);

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_body_;
  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  WireStatus poison_ = WireStatus::kNeedMore;  // latched error state
};

}  // namespace gnnhls
