// The one status->string table for the serving tier.
//
// WireResult is the serving tier's universal outcome code: its first four
// values mirror AdmitStatus by construction (static_asserts in
// status_names.cpp), the rest are wire-level rejections. This table names
// every code exactly once and is used everywhere a status becomes text —
// wire_result_name(), admit_status_name() error messages, and the
// `result="..."` labels on the endpoint's per-result metric family — so
// error strings and metric labels can never drift apart
// (tests/obs_test.cpp asserts exhaustiveness against the enum).
//
// One deliberate special case: admit_status_name(kAccepted) stays
// "accepted" (its historical error-message spelling) while wire code 0 is
// "ok" (the response-frame spelling); every other code shares one name.
#pragma once

#include <cstdint>

namespace gnnhls {

/// Number of named status codes == number of WireResult values.
inline constexpr std::uint32_t kNumStatusNames = 8;

/// Canonical name for wire-result code `code` (0..kNumStatusNames-1);
/// "unknown" past the end. Returned pointers are string literals.
const char* status_name(std::uint32_t code);

}  // namespace gnnhls
