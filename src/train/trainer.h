// The training-loop engine implementing the paper's recipe (§5.1): Adam, a
// fixed epoch budget, minibatch gradient accumulation, step learning-rate
// decay, best-validation-epoch selection delegated to the caller.
//
// One Trainer serves every fit loop in the library (QoR regressor, the
// hierarchical approach's node classifier, the standalone NodeTypePredictor)
// through two hooks: forward (model tape construction over a graph view) and
// loss. Data comes from a BatchPlan; epochs in batched mode are *sharded*:
//
//   * each optimizer step spans grad_accum consecutive batches of the
//     epoch's visit order;
//   * the step's batches are partitioned contiguously across `shards`
//     workers on the global ThreadPool; every batch runs its own tape with
//     gradients accumulated into a batch-local buffer (LeafGradRedirect), so
//     concurrent tapes never touch the shared parameter grads;
//   * at the step barrier the per-batch buffers are reduced into the
//     parameters in fixed batch order and one Adam step is applied
//     (Adam::step_merged).
//
// Because the reduction order, the batch membership/visit order, and every
// per-batch dropout stream are functions of (config, epoch, batch index)
// only — never of thread scheduling — training with shards=N is
// bit-identical to shards=1. `shards` is purely an execution-width knob.
#pragma once

#include <cstdint>
#include <functional>

#include "nn/adam.h"
#include "obs/obs_config.h"
#include "train/batch_plan.h"
#include "train/fit_options.h"

namespace gnnhls {

struct TrainConfig {
  int epochs = 30;
  float lr = 3e-3F;
  float weight_decay = 1e-5F;
  float grad_clip = 5.0F;
  int batch_graphs = 8;  // gradient-accumulation window (batch_size==1 path)
  /// Graphs per forward/backward pass. 1 keeps the legacy one-graph-per-tape
  /// gradient-accumulation loop (bit-for-bit the pre-batching trajectory);
  /// >1 disjoint-unions that many graphs into one GraphBatch per SGD step
  /// (one tape, segment readout, one optimizer step per batch). Loss
  /// semantics differ between the modes. Regressor: the legacy loop sums
  /// batch_graphs per-graph MSEs per step while the batched loss is the
  /// per-batch mean — a constant 1/batch_size scale Adam's update direction
  /// is invariant to, so trajectories match closely (grad_clip and lr
  /// sweeps are calibrated against the mean convention). Classifier: the
  /// batched BCE averages over all *nodes* in the stacked batch (standard
  /// node-level batching), so larger graphs carry proportionally more
  /// gradient weight than in the per-graph loop, where each graph's mean
  /// contributed equally — not a constant rescale on node-count-
  /// heterogeneous corpora.
  int batch_size = 1;
  /// Batched mode only: mini-batches per optimizer step. Their gradients
  /// are summed (in visit order) before one Adam update, so >1 enlarges the
  /// effective batch — and is what gives `shards` parallel work between
  /// optimizer barriers. Semantics-affecting, unlike `shards`.
  int grad_accum = 1;
  /// Data-parallel worker shards computing a step's batch gradients
  /// concurrently on the global ThreadPool. Execution-only: any value
  /// reproduces shards=1 bit-for-bit (see the file comment); values are
  /// clamped to the step's batch count. Ignored by the legacy
  /// batch_size<=1 path, which is defined as a serial trajectory.
  int shards = 1;
  /// Back per-batch tape temporaries (activations, adjoints, kernel scratch)
  /// with each worker thread's bump-pointer scratch arena, reset at every
  /// batch boundary (see support/arena.h). Execution-only: allocation
  /// placement never changes a computed value. Batched mode only — the
  /// legacy batch_size<=1 path accumulates parameter gradients across tapes
  /// and is left on the heap.
  bool arena = false;
  std::uint64_t seed = 1;
  /// Observability knobs (obs/obs_config.h): obs.trace emits epoch/shard
  /// spans into the process-wide TraceCollector when it is active.
  /// Execution-only — the training trajectory is bit-identical either way.
  ObsConfig obs;
};

/// Step learning-rate decay: full rate for the first 60% of epochs, then
/// 0.3x, then 0.1x for the last 15% (stabilizes the best-epoch selection).
float lr_at_epoch(float base_lr, int epoch, int total_epochs);

/// Runs the fixed-epoch training loop for one model over one BatchPlan.
/// One Trainer per fit: construct, call fit() once, discard. fit() is not
/// reentrant and must not run concurrently with anything that reads the
/// model's parameters (the serving path takes the predictor AFTER fit has
/// returned — see serve/serving_batcher.h). Epoch work may fan out over the
/// global ThreadPool, but the determinism contract above makes the result
/// independent of that pool's width.
class Trainer {
 public:
  /// Model-specific callbacks. Both hooks may be invoked concurrently from
  /// shard workers (one tape per batch), so they must be pure with respect
  /// to shared state: read the model, build onto the passed tape, touch
  /// nothing else. Each invocation's rng is an independent per-(epoch,
  /// batch) stream owned by the caller of the hook.
  struct Hooks {
    /// Builds the model's tape output over a graph view (a single sample's
    /// tensors in legacy mode, a GraphBatch::merged union in batched mode)
    /// with training-mode regularization driven by rng.
    std::function<Var(Tape&, const GraphTensors&, const Matrix& features,
                      Rng& rng)>
        forward;
    /// Builds the scalar loss for the view's stacked labels.
    std::function<Var(Tape&, const Var& out, const Matrix& labels)> loss;
  };

  /// dropout_seed seeds the legacy path's shared sequential dropout stream
  /// (bit-compat with the old fit loops) and derives the independent
  /// per-(epoch, batch) streams of the batched path.
  Trainer(Module& model, TrainConfig cfg, Hooks hooks,
          std::uint64_t dropout_seed);

  /// Runs the epoch budget (opts.epochs when >= 0, else TrainConfig::epochs)
  /// over the plan. on_epoch_end(epoch) fires after each epoch's optimizer
  /// steps — validation, model selection and early snapshots live with the
  /// caller, which fills FitReport's validation fields; the Trainer fills
  /// epochs_run / steps / warm_started. Model init, plan construction and
  /// dropout_seed were resolved by the owner before this call, so of
  /// FitOptions only the epoch budget acts here: warm starts are expressed
  /// by handing the Trainer a previously-trained model plus
  /// import_optimizer_state(), both the owner's job.
  FitReport fit(BatchPlan& plan, const FitOptions& opts,
                const std::function<void(int)>& on_epoch_end);

  /// Deprecated shim (pre-FitOptions signature): full TrainConfig budget,
  /// fresh optimizer. Returns the number of optimizer steps taken.
  long fit(BatchPlan& plan, const std::function<void(int)>& on_epoch_end);

  /// Resumes the optimizer from a snapshot (same model architecture) so the
  /// next fit() continues the Adam trajectory instead of restarting the
  /// moment estimates. Call before fit(); marks the run warm-started.
  void import_optimizer_state(const AdamState& state);

  /// Snapshots the optimizer moments + step counter. Callable from
  /// on_epoch_end, which runs at a step barrier — the canonical use is
  /// capturing the best-validation epoch's optimizer state alongside the
  /// parameter snapshot so a later refit resumes from the *selected* model.
  AdamState export_optimizer_state() const { return opt_.export_state(); }

 private:
  void run_legacy_epoch(BatchPlan& plan, Adam& opt, Rng& dropout_rng);
  void run_batched_epoch(BatchPlan& plan, Adam& opt, int epoch);

  Module& model_;
  TrainConfig cfg_;
  Hooks hooks_;
  std::uint64_t dropout_seed_;
  std::vector<Var> param_leaves_;
  /// The optimizer lives with the Trainer (not a fit() local) so warm-started
  /// refits can seed its moments and on_epoch_end can snapshot them.
  Adam opt_;
  bool warm_started_ = false;
  /// Per-batch gradient buffers, reused across steps and epochs (shaped and
  /// zeroed by each LeafGradRedirect scope).
  std::vector<std::vector<Matrix>> step_grads_;
};

}  // namespace gnnhls
