#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>

namespace gnnhls {

TraceCollector& TraceCollector::global() {
  static TraceCollector* g = new TraceCollector();  // never destroyed
  return *g;
}

TraceCollector::TraceCollector() {
  epoch_steady_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
}

std::int64_t TraceCollector::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() -
         epoch_steady_us_;
}

TraceCollector::ThreadBuf& TraceCollector::local_buf() {
  // One registration per thread; the buffer outlives the thread (and is
  // never freed) so the cached pointer can't dangle across clear().
  thread_local ThreadBuf* buf = [this] {
    ThreadBuf* b = new ThreadBuf();
    std::lock_guard<std::mutex> lock(bufs_mu_);
    b->tid = next_tid_++;
    bufs_.push_back(b);
    return b;
  }();
  return *buf;
}

void TraceCollector::record(const char* name, const char* cat,
                            std::int64_t ts_us, std::int64_t dur_us) {
  if (!active()) return;
  ThreadBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(Event{name, cat, ts_us, dur_us, buf.tid});
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(bufs_mu_);
  for (ThreadBuf* b : bufs_) {
    std::lock_guard<std::mutex> bl(b->mu);
    b->events.clear();
    b->dropped = 0;
  }
}

std::uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(bufs_mu_);
  std::uint64_t total = 0;
  for (ThreadBuf* b : bufs_) {
    std::lock_guard<std::mutex> bl(b->mu);
    total += b->dropped;
  }
  return total;
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(bufs_mu_);
  std::size_t total = 0;
  for (ThreadBuf* b : bufs_) {
    std::lock_guard<std::mutex> bl(b->mu);
    total += b->events.size();
  }
  return total;
}

std::string TraceCollector::render_json() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(bufs_mu_);
    for (ThreadBuf* b : bufs_) {
      std::lock_guard<std::mutex> bl(b->mu);
      events.insert(events.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return std::strcmp(a.name, b.name) < 0;
  });
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out << ',';
    first = false;
    // Span names are static identifiers (no quotes/escapes by contract).
    out << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
        << "\",\"ph\":\"X\",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
        << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":{}}";
  }
  out << "]}";
  return out.str();
}

bool TraceCollector::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << render_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace gnnhls
