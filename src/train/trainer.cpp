#include "train/trainer.h"

#include <algorithm>

#include "obs/trace.h"
#include "support/arena.h"
#include "support/parallel.h"

namespace gnnhls {

namespace {

/// splitmix64 finalizer: decorrelates the per-(epoch, batch) dropout seeds
/// derived from one base seed.
std::uint64_t mix_seed(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

float lr_at_epoch(float base_lr, int epoch, int total_epochs) {
  const double progress =
      static_cast<double>(epoch) / std::max(total_epochs, 1);
  if (progress < 0.6) return base_lr;
  if (progress < 0.85) return base_lr * 0.3F;
  return base_lr * 0.1F;
}

Trainer::Trainer(Module& model, TrainConfig cfg, Hooks hooks,
                 std::uint64_t dropout_seed)
    : model_(model),
      cfg_(cfg),
      hooks_(std::move(hooks)),
      dropout_seed_(dropout_seed),
      opt_(model, AdamConfig{.lr = cfg.lr,
                             .weight_decay = cfg.weight_decay,
                             .grad_clip = cfg.grad_clip}) {
  GNNHLS_CHECK(hooks_.forward && hooks_.loss, "Trainer: missing hooks");
  param_leaves_.reserve(model_.parameters().size());
  for (const Parameter* p : model_.parameters()) {
    param_leaves_.push_back(p->var());
  }
}

void Trainer::import_optimizer_state(const AdamState& state) {
  opt_.import_state(state);
  warm_started_ = true;
}

FitReport Trainer::fit(BatchPlan& plan, const FitOptions& opts,
                       const std::function<void(int)>& on_epoch_end) {
  const int epochs = opts.epochs >= 0 ? opts.epochs : cfg_.epochs;
  // Warm starts resume moments but restart the lr schedule over THIS call's
  // budget: a refit is its own short anneal, not a continuation of the
  // original schedule (whose decay points were sized for the full budget).
  const long steps_before = opt_.step_count();
  Rng dropout_rng(dropout_seed_);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const ObsSpan epoch_span(cfg_.obs.trace, "epoch", "train");
    opt_.set_lr(lr_at_epoch(cfg_.lr, epoch, epochs));
    if (plan.batched()) {
      run_batched_epoch(plan, opt_, epoch);
    } else {
      run_legacy_epoch(plan, opt_, dropout_rng);
    }
    if (on_epoch_end) on_epoch_end(epoch);
  }
  FitReport report;
  report.epochs_run = epochs;
  report.steps = opt_.step_count() - steps_before;
  report.warm_started = warm_started_;
  return report;
}

long Trainer::fit(BatchPlan& plan,
                  const std::function<void(int)>& on_epoch_end) {
  return fit(plan, FitOptions{}, on_epoch_end).steps;
}

void Trainer::run_legacy_epoch(BatchPlan& plan, Adam& opt, Rng& dropout_rng) {
  // One graph per tape, optimizer step every batch_graphs graphs, one
  // shared sequential dropout stream: bit-for-bit the pre-refactor loop.
  const std::vector<int>& order = plan.next_epoch_sample_order();
  int accumulated = 0;
  for (int idx : order) {
    Tape tape;
    const Var out = hooks_.forward(tape, plan.sample_tensors(idx),
                                   plan.sample_features(idx), dropout_rng);
    tape.backward(hooks_.loss(tape, out, plan.sample_labels(idx)));
    if (++accumulated >= cfg_.batch_graphs) {
      opt.step();
      accumulated = 0;
    }
  }
  if (accumulated > 0) opt.step();
}

void Trainer::run_batched_epoch(BatchPlan& plan, Adam& opt, int epoch) {
  const std::vector<int>& order = plan.next_epoch_batch_order();
  const std::size_t span =
      static_cast<std::size_t>(std::max(cfg_.grad_accum, 1));
  for (std::size_t pos = 0; pos < order.size(); pos += span) {
    const int n = static_cast<int>(std::min(span, order.size() - pos));
    // Grow-only: tail steps shorter than span keep the pool at full size
    // (step_merged only reduces the first n buffers), so the per-batch
    // matrices really are reused across steps and epochs.
    if (step_grads_.size() < static_cast<std::size_t>(n)) {
      step_grads_.resize(static_cast<std::size_t>(n));
    }
    const int shards = std::clamp(cfg_.shards, 1, n);
    // Contiguous shard partition of the step's batches. Every batch owns an
    // isolated gradient buffer and an rng stream keyed by its *global*
    // position, so the partition shape (and thread scheduling) cannot leak
    // into the numbers — only into the wall clock.
    parallel_shards(shards, [&](int s) {
      const ObsSpan shard_span(cfg_.obs.trace, "shard", "train");
      const int lo = s * n / shards;
      const int hi = (s + 1) * n / shards;
      for (int b = lo; b < hi; ++b) {
        const BatchPlan::Item& item =
            plan.item(order[pos + static_cast<std::size_t>(b)]);
        LeafGradRedirect redirect(param_leaves_,
                                  step_grads_[static_cast<std::size_t>(b)]);
        // Tape temporaries live in this worker's scratch arena for the span
        // of one batch; the scope resets it after the tape (declared later,
        // destroyed earlier) has released every arena-backed matrix. The
        // redirect sinks above were shaped BEFORE the scope, so they stay
        // heap-backed and survive until step_merged.
        const ArenaScope scratch(cfg_.arena ? &thread_scratch_arena()
                                            : nullptr);
        const std::uint64_t global_batch =
            static_cast<std::uint64_t>(pos) + static_cast<std::uint64_t>(b);
        Rng drop(mix_seed(dropout_seed_ ^
                          ((static_cast<std::uint64_t>(epoch) + 1) << 32) ^
                          global_batch));
        Tape tape;
        const Var out =
            hooks_.forward(tape, item.batch().merged, item.features(), drop);
        tape.backward(hooks_.loss(tape, out, item.labels));
      }
    });
    // Deterministic barrier: per-batch buffers reduce in visit order.
    opt.step_merged(step_grads_, static_cast<std::size_t>(n));
  }
}

}  // namespace gnnhls
