// Graphviz DOT export for IR graphs (debugging / paper-figure style
// visualization of the Fig. 1c graphs).
#pragma once

#include <string>

#include "graph/ir_graph.h"

namespace gnnhls {

/// Renders the graph in DOT: nodes labeled "opcode:bitwidth" and colored by
/// resource type (DSP/LUT/FF usage), data edges solid, control edges dashed,
/// memory edges dotted, back edges in red.
std::string to_dot(const IrGraph& graph);

}  // namespace gnnhls
