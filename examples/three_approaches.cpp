// The three prediction strategies of paper Fig. 2, side by side on one
// dataset, with their timeliness/accuracy trade-off made concrete.
//
// Build & run:  ./build/examples/three_approaches
#include <iostream>

#include "core/predictor.h"
#include "support/table.h"
#include "support/timer.h"

using namespace gnnhls;

int main() {
  std::cout <<
      "Three approaches (paper Fig. 2):\n"
      "  (a) off-the-shelf    : IR graph --GNN--> QoR          (earliest)\n"
      "  (b) knowledge-infused: IR graph --GNN--> node types\n"
      "                         IR graph + types --GNN--> QoR  (earliest,\n"
      "                         types self-inferred at inference)\n"
      "  (c) knowledge-rich   : IR graph + per-node resource values from\n"
      "                         intermediate HLS results --GNN--> QoR (late)\n\n";

  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kCdfg;
  dc.num_graphs = 150;
  dc.seed = 11;
  const std::vector<Sample> corpus = build_synthetic_dataset(dc);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(corpus.size()), 3);
  std::cout << "dataset: " << corpus.size() << " synthetic CDFG programs ("
            << split.train.size() << " train / " << split.val.size()
            << " val / " << split.test.size() << " test)\n\n";

  ModelConfig mc;
  mc.kind = GnnKind::kRgcn;
  mc.hidden = 32;
  mc.layers = 3;
  TrainConfig tc;
  tc.epochs = 40;
  tc.lr = 1e-2F;

  TextTable table({"approach", "needs at inference", "LUT MAPE", "FF MAPE",
                   "train time"});
  const struct {
    Approach approach;
    const char* needs;
  } rows[] = {
      {Approach::kOffTheShelf, "IR graph only"},
      {Approach::kKnowledgeInfused, "IR graph only (types self-inferred)"},
      {Approach::kKnowledgeRich, "IR graph + intermediate HLS results"},
  };

  for (const auto& row : rows) {
    Timer t;
    QorPredictor lut_model(row.approach, mc, tc);
    lut_model.fit(corpus, split, Metric::kLut);
    QorPredictor ff_model(row.approach, mc, tc);
    ff_model.fit(corpus, split, Metric::kFf);
    table.add_row({approach_name(row.approach), row.needs,
                   TextTable::pct(lut_model.evaluate_mape(corpus, split.test)),
                   TextTable::pct(ff_model.evaluate_mape(corpus, split.test)),
                   TextTable::num(t.seconds(), 1) + "s"});
  }
  std::cout << table.to_string()
            << "\nExpected ordering (paper Table 4): knowledge-rich <= "
               "knowledge-infused <= off-the-shelf in error, while only "
               "knowledge-rich has to wait for HLS to run.\n";
  return 0;
}
