// Per-fit training data loader: a rotation of fixed mini-batches.
//
// The pre-refactor fit loops reshuffled the sample order every epoch and
// re-chunked it into GraphBatch unions, so union assembly and feature
// stacking were paid O(epochs) times. A BatchPlan fixes batch *membership*
// once per fit (from the first shuffle — exactly the chunks the first epoch
// would have seen) and pre-builds every union with its stacked feature and
// label matrices; epochs then reshuffle only the *order* in which the fixed
// batches are visited. Randomized visit order preserves SGD's decorrelation
// benefit while amortizing assembly entirely — the multi-epoch batch reuse
// the ROADMAP calls out.
//
// In legacy mode (batch_size <= 1) the plan degrades to a per-sample view
// with the persistent order vector the old loop used, reshuffled with the
// same Rng draws, so single-graph gradient-accumulation training stays
// bit-for-bit on the pre-batching trajectory.
#pragma once

#include <functional>
#include <vector>

#include "dataset/dataset.h"
#include "gnn/graph_batch.h"
#include "support/rng.h"
#include "tensor/matrix.h"

namespace gnnhls {

class BatchPlan {
 public:
  /// One prebuilt mini-batch of the rotation (batched mode).
  struct Item {
    std::vector<int> members;  // sample indices, fixed for the fit
    GraphBatch batch;          // disjoint union of the members
    Matrix features;           // stacked per-node input features
    Matrix labels;             // stacked labels ([k,1] targets / [n,3] bits)
  };

  /// Returns a stable reference to sample s's input features (the
  /// FeatureCache hands these out; the plan never copies them per epoch).
  using FeatureFn = std::function<const Matrix&(const Sample&)>;
  /// Returns sample s's label rows: a [1,1] encoded regression target or a
  /// [num_nodes, k] node-label matrix.
  using LabelFn = std::function<Matrix(const Sample&)>;

  /// Builds the rotation over samples[train_idx]. order_rng drives both the
  /// membership-fixing shuffle (batched mode) and the per-epoch reshuffles;
  /// pass the same seed the old fit loop used and epoch 0 reproduces its
  /// first epoch exactly. Union assembly fans out on the global thread pool.
  static BatchPlan build(const std::vector<Sample>& samples,
                         const std::vector<int>& train_idx, int batch_size,
                         const FeatureFn& feature_of, const LabelFn& label_of,
                         Rng order_rng);

  bool batched() const { return batch_size_ > 1; }
  int batch_size() const { return batch_size_; }
  int num_batches() const { return static_cast<int>(items_.size()); }
  const Item& item(int b) const {
    return items_[static_cast<std::size_t>(b)];
  }

  /// Batched mode: advances to the next epoch and returns its batch visit
  /// order (a permutation of [0, num_batches)). The first call returns the
  /// build order; later calls reshuffle order only — membership never
  /// changes.
  const std::vector<int>& next_epoch_batch_order();

  /// Legacy mode: reshuffles and returns the persistent sample order, one
  /// call per epoch (bit-for-bit the old loop's Rng draws).
  const std::vector<int>& next_epoch_sample_order();

  // --- legacy-mode per-sample views (valid for train_idx members only) ---
  const GraphTensors& sample_tensors(int sample_idx) const;
  const Matrix& sample_features(int sample_idx) const;
  const Matrix& sample_labels(int sample_idx) const;

 private:
  BatchPlan(Rng order_rng) : order_rng_(order_rng) {}

  const std::vector<Sample>* samples_ = nullptr;
  int batch_size_ = 1;
  Rng order_rng_;

  // batched mode
  std::vector<Item> items_;
  std::vector<int> batch_order_;
  bool first_epoch_served_ = false;

  // legacy mode
  std::vector<int> sample_order_;
  std::vector<const Matrix*> sample_features_;  // indexed by sample position
  std::vector<Matrix> sample_labels_;           // indexed by sample position
};

}  // namespace gnnhls
