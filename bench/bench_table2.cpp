// Reproduces paper Table 2: MAPE of graph-level regression with 14 GNN
// models (off-the-shelf approach) on the DFG and CDFG datasets.
//
// Paper shape to reproduce:
//   * CDFG errors exceed DFG errors (loops + control nodes confuse
//     message passing, §5.2),
//   * PNA and RGCN are the top performers (multi-aggregator + relational
//     information),
//   * SGC (linear) and GAT trail the field,
//   * CP error is small and consistent across datasets (local property).
#include <array>
#include <map>

#include "bench_common.h"

namespace gnnhls::bench {
namespace {

// Paper Table 2 reference values (MAPE, fraction), order: DSP LUT FF CP.
const std::map<std::string, std::array<std::array<double, 4>, 2>> kPaperT2 = {
    //            DFG                                  CDFG
    {"GCN", {{{0.1631, 0.1649, 0.2127, 0.0612}, {0.2530, 0.2864, 0.3834, 0.0879}}}},
    {"GCN-V", {{{0.1572, 0.1593, 0.2164, 0.0636}, {0.1731, 0.3393, 0.3994, 0.0813}}}},
    {"SGC", {{{0.4212, 0.2393, 0.3061, 0.0792}, {0.4401, 0.6087, 0.5350, 0.1032}}}},
    {"SAGE", {{{0.1518, 0.1401, 0.1711, 0.0612}, {0.1701, 0.2809, 0.3911, 0.0825}}}},
    {"ARMA", {{{0.1912, 0.1346, 0.1687, 0.0650}, {0.1847, 0.2521, 0.3215, 0.0842}}}},
    {"PAN", {{{0.1524, 0.1413, 0.1723, 0.0638}, {0.1688, 0.3265, 0.4436, 0.0854}}}},
    {"GIN", {{{0.1552, 0.1610, 0.2208, 0.0658}, {0.1547, 0.2848, 0.3882, 0.0876}}}},
    {"GIN-V", {{{0.1504, 0.1617, 0.2309, 0.0640}, {0.1794, 0.2940, 0.4864, 0.0859}}}},
    {"PNA", {{{0.1265, 0.1164, 0.1441, 0.0626}, {0.1471, 0.2286, 0.2647, 0.0887}}}},
    {"GAT", {{{0.2622, 0.2264, 0.2774, 0.0830}, {0.2866, 0.4619, 0.5473, 0.1032}}}},
    {"GGNN", {{{0.1540, 0.1364, 0.1694, 0.0647}, {0.1628, 0.2805, 0.3188, 0.0850}}}},
    {"RGCN", {{{0.1327, 0.1303, 0.1509, 0.0614}, {0.1503, 0.2633, 0.2552, 0.0872}}}},
    {"UNet", {{{0.1840, 0.1490, 0.1917, 0.0661}, {0.1892, 0.3283, 0.5306, 0.0902}}}},
    {"FiLM", {{{0.2005, 0.1250, 0.1694, 0.0627}, {0.1742, 0.2697, 0.2735, 0.0867}}}},
};

struct Cell {
  double mape = 0.0;
};

int run(int argc, const char* const* argv) {
  const BenchConfig cfg = parse_bench_config(argc, argv);
  print_header("Table 2 — off-the-shelf MAPE, 14 GNNs x {DSP,LUT,FF,CP} x "
               "{DFG,CDFG}",
               cfg);

  Timer total;
  const std::vector<Sample> dfg = build_dfg(cfg);
  const std::vector<Sample> cdfg = build_cdfg(cfg);
  print_dataset_line("DFG ", dfg);
  print_dataset_line("CDFG", cdfg);
  const SplitIndices dfg_split =
      split_80_10_10(static_cast<int>(dfg.size()), cfg.seed);
  const SplitIndices cdfg_split =
      split_80_10_10(static_cast<int>(cdfg.size()), cfg.seed);

  const auto kinds = all_gnn_kinds();
  // results[dataset][kind][metric]
  std::array<std::vector<std::array<Cell, 4>>, 2> results;
  results[0].resize(kinds.size());
  results[1].resize(kinds.size());

  std::vector<std::function<void()>> jobs;
  for (int ds = 0; ds < 2; ++ds) {
    const std::vector<Sample>& samples = ds == 0 ? dfg : cdfg;
    const SplitIndices& split = ds == 0 ? dfg_split : cdfg_split;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      for (int m = 0; m < kNumMetrics; ++m) {
        jobs.push_back([&, ds, k, m] {
          ExperimentSpec spec;
          spec.kind = kinds[k];
          spec.approach = Approach::kOffTheShelf;
          spec.metric = static_cast<Metric>(m);
          spec.model = model_config(cfg);
          spec.train = train_config(cfg);
          spec.protocol = protocol(cfg);
          results[static_cast<std::size_t>(ds)][k]
                 [static_cast<std::size_t>(m)]
                     .mape =
              run_regression_experiment(spec, samples, split).test_mape;
        });
      }
    }
  }
  run_parallel(std::move(jobs), cfg.threads);

  TextTable table({"model", "DFG DSP", "DFG LUT", "DFG FF", "DFG CP",
                   "CDFG DSP", "CDFG LUT", "CDFG FF", "CDFG CP"});
  BenchJsonLog json_log;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    std::vector<std::string> row{gnn_kind_name(kinds[k])};
    for (int ds = 0; ds < 2; ++ds) {
      for (int m = 0; m < kNumMetrics; ++m) {
        const double mape = results[static_cast<std::size_t>(ds)][k]
                                   [static_cast<std::size_t>(m)]
                                       .mape;
        row.push_back(TextTable::pct(mape));
        json_log.add(std::string(gnn_kind_name(kinds[k])) + " " +
                         (ds == 0 ? "DFG " : "CDFG ") +
                         metric_name(static_cast<Metric>(m)),
                     mape, "mape");
      }
    }
    table.add_row(std::move(row));
  }
  std::cout << "\nMeasured (this substrate):\n" << table.to_string();
  write_bench_json(cfg, json_log, "table2");

  TextTable ref({"model", "DFG DSP", "DFG LUT", "DFG FF", "DFG CP",
                 "CDFG DSP", "CDFG LUT", "CDFG FF", "CDFG CP"});
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const auto& p = kPaperT2.at(gnn_kind_name(kinds[k]));
    std::vector<std::string> row{gnn_kind_name(kinds[k])};
    for (int ds = 0; ds < 2; ++ds) {
      for (int m = 0; m < 4; ++m) {
        row.push_back(TextTable::pct(
            p[static_cast<std::size_t>(ds)][static_cast<std::size_t>(m)]));
      }
    }
    ref.add_row(std::move(row));
  }
  std::cout << "\nPaper reference (Vitis on FPGA):\n" << ref.to_string();

  // ----- shape checks -----
  ShapeChecks checks;
  // 1. CDFG harder than DFG, averaged over models, per metric.
  for (int m = 0; m < kNumMetrics; ++m) {
    double dfg_avg = 0.0, cdfg_avg = 0.0;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      dfg_avg += results[0][k][static_cast<std::size_t>(m)].mape;
      cdfg_avg += results[1][k][static_cast<std::size_t>(m)].mape;
    }
    checks.check("CDFG MAPE > DFG MAPE for " +
                     metric_name(static_cast<Metric>(m)) +
                     " (model average)",
                 cdfg_avg > dfg_avg);
  }
  // 2. Relational/multi-aggregator models (PNA, RGCN) in the top half.
  std::vector<std::pair<double, std::string>> ranking;
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    double avg = 0.0;
    for (int ds = 0; ds < 2; ++ds) {
      for (int m = 0; m < kNumMetrics; ++m) {
        avg += results[static_cast<std::size_t>(ds)][k]
                      [static_cast<std::size_t>(m)]
                          .mape;
      }
    }
    ranking.emplace_back(avg, gnn_kind_name(kinds[k]));
  }
  std::sort(ranking.begin(), ranking.end());
  const auto rank_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < ranking.size(); ++i) {
      if (ranking[i].second == name) return static_cast<int>(i);
    }
    return -1;
  };
  checks.check("PNA ranks in the top half overall", rank_of("PNA") < 7);
  checks.check("RGCN ranks in the top half overall", rank_of("RGCN") < 7);
  checks.check("SGC ranks in the bottom third overall", rank_of("SGC") >= 9);
  // 3. CP is the easiest metric (smallest average error).
  std::array<double, 4> metric_avg{};
  for (int m = 0; m < kNumMetrics; ++m) {
    for (int ds = 0; ds < 2; ++ds) {
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        metric_avg[static_cast<std::size_t>(m)] +=
            results[static_cast<std::size_t>(ds)][k]
                   [static_cast<std::size_t>(m)]
                       .mape;
      }
    }
  }
  checks.check("CP has the lowest average MAPE of all metrics",
               metric_avg[3] <= metric_avg[0] &&
                   metric_avg[3] <= metric_avg[1] &&
                   metric_avg[3] <= metric_avg[2]);
  checks.summary();
  std::cout << "best-to-worst overall:";
  for (const auto& [v, n] : ranking) std::cout << " " << n;
  std::cout << "\ntotal wall time: " << TextTable::num(total.seconds(), 1)
            << "s\n";
  return 0;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
