#include "core/metrics.h"

#include <cmath>

#include "support/check.h"

namespace gnnhls {

double mape(const std::vector<double>& pred, const std::vector<double>& truth,
            double floor) {
  GNNHLS_CHECK_EQ(pred.size(), truth.size(), "mape: length mismatch");
  GNNHLS_CHECK(!pred.empty(), "mape: empty input");
  GNNHLS_CHECK(floor > 0.0, "mape: floor must be positive");
  double total = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    total += std::abs(pred[i] - truth[i]) / std::max(std::abs(truth[i]), floor);
  }
  return total / static_cast<double>(pred.size());
}

double binary_accuracy(const std::vector<int>& pred,
                       const std::vector<int>& truth) {
  GNNHLS_CHECK_EQ(pred.size(), truth.size(), "accuracy: length mismatch");
  GNNHLS_CHECK(!pred.empty(), "accuracy: empty input");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if ((pred[i] != 0) == (truth[i] != 0)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pred.size());
}

}  // namespace gnnhls
