#include "serve/serving_batcher.h"

#include <utility>

namespace gnnhls {

SchedulerConfig ServingBatcher::to_scheduler_config(const ServeConfig& cfg) {
  SchedulerConfig sc;
  sc.workers = 1;
  sc.max_batch = cfg.max_batch;
  sc.batch_window_us = cfg.batch_window_us;
  // The historical batcher window is static: pin the adaptive rule off so
  // a lone request still waits the full configured window (serve_test
  // asserts the exact flush-reason sequence).
  sc.adaptive_window = false;
  sc.arena = cfg.arena;
  sc.record_latencies = cfg.record_latencies;
  sc.obs = cfg.obs;
  return sc;
}

ServingBatcher::ServingBatcher(const QorPredictor& predictor, ServeConfig cfg)
    : cfg_(cfg), sched_({&predictor}, to_scheduler_config(cfg)) {}

std::future<double> ServingBatcher::submit(const Sample& sample) {
  return sched_.submit(0, sample).future;
}

std::future<double> ServingBatcher::submit(
    std::shared_ptr<const Sample> sample) {
  return sched_.submit(0, std::move(sample)).future;
}

std::future<double> ServingBatcher::submit(Sample&& sample) {
  return sched_.submit(0, std::move(sample)).future;
}

std::vector<double> ServingBatcher::predict_many(
    const std::vector<const Sample*>& samples) {
  return sched_.predict_many(0, samples);
}

void ServingBatcher::shutdown() { sched_.shutdown(); }

ServeStats ServingBatcher::stats() const {
  const SchedStats s = sched_.stats();
  ServeStats out;
  out.submitted = s.submitted;
  out.completed = s.completed;
  out.batches = s.batches;
  out.flush_full = s.flush_full;
  out.flush_timeout = s.flush_timeout;
  out.flush_drain = s.flush_drain;
  out.max_batch_seen = s.max_batch_seen;
  out.heap_allocs = s.heap_allocs;
  out.fused_fallbacks = s.fused_fallbacks;
  return out;
}

std::vector<double> ServingBatcher::take_latencies_us() {
  return sched_.take_latencies_us();
}

}  // namespace gnnhls
