// Quickstart: the full flow of Fig. 1 on a single small design.
//
//   1. Write a behavioral program with the AST builders (Fig. 1b).
//   2. Front-end compile it to an IR graph (Fig. 1c) and inspect the
//      Table-1 node features.
//   3. Run the HLS simulator to get ground-truth QoR (the labels).
//   4. Train an off-the-shelf GNN predictor on a small synthetic corpus.
//   5. Predict the design's QoR from its IR graph alone (Fig. 1d) and
//      compare against ground truth and the HLS report.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/predictor.h"
#include "support/table.h"

using namespace gnnhls;

namespace {

/// A small fixed-point FIR-like kernel: out = sum_i c[i] * window(x).
Function make_demo_program() {
  Function f;
  f.name = "fir4";
  f.params.push_back(Param{"x0", ScalarType{16, true}, 0, false});
  f.params.push_back(Param{"x1", ScalarType{16, true}, 0, false});
  f.params.push_back(Param{"x2", ScalarType{16, true}, 0, false});
  f.params.push_back(Param{"x3", ScalarType{16, true}, 0, false});
  f.body.push_back(decl("t0", ScalarType{32, true},
                        bin(BinOpKind::kMul, var("x0"), lit(37))));
  f.body.push_back(decl("t1", ScalarType{32, true},
                        bin(BinOpKind::kMul, var("x1"), lit(-21))));
  f.body.push_back(decl("t2", ScalarType{32, true},
                        bin(BinOpKind::kMul, var("x2"), lit(98))));
  f.body.push_back(decl("t3", ScalarType{32, true},
                        bin(BinOpKind::kMul, var("x3"), lit(11))));
  f.body.push_back(decl("s0", ScalarType{32, true},
                        bin(BinOpKind::kAdd, var("t0"), var("t1"))));
  f.body.push_back(decl("s1", ScalarType{32, true},
                        bin(BinOpKind::kAdd, var("t2"), var("t3"))));
  f.body.push_back(decl("acc", ScalarType{32, true},
                        bin(BinOpKind::kAdd, var("s0"), var("s1"))));
  f.body.push_back(
      decl("scaled", ScalarType{32, true},
           bin(BinOpKind::kShr, var("acc"), lit(8))));
  f.body.push_back(ret(var("scaled")));
  return f;
}

}  // namespace

int main() {
  std::cout << "== 1. behavioral program ==\n"
            << "fir4(x0..x3) = (37*x0 - 21*x1 + 98*x2 + 11*x3) >> 8\n\n";

  // ----- 2. front-end compilation -> IR graph -----
  const Function program = make_demo_program();
  Sample sample = make_sample(program, GraphKind::kDfg, HlsConfig{},
                              "example/fir4");
  const IrGraph& g = sample.graph();
  std::cout << "== 2. IR graph (DFG) ==\n"
            << "nodes: " << g.num_nodes() << ", edges: " << g.num_edges()
            << "\n\nTable-1 node features (first 10 nodes):\n";
  TextTable features({"node", "opcode", "category", "bitwidth", "start?",
                      "cluster", "const?"});
  for (int i = 0; i < std::min(g.num_nodes(), 10); ++i) {
    const IrNode& n = g.node(i);
    features.add_row({std::to_string(i), std::string(opcode_name(n.opcode)),
                      std::to_string(static_cast<int>(category_of(n.opcode))),
                      std::to_string(n.bitwidth),
                      n.is_start_of_path ? "yes" : "no",
                      std::to_string(n.cluster_group),
                      n.is_const ? "yes" : "no"});
  }
  std::cout << features.to_string() << "\n";

  // ----- 3. ground truth from the HLS simulator -----
  std::cout << "== 3. HLS simulation (labels) ==\n";
  TextTable qor({"source", "DSP", "LUT", "FF", "CP (ns)"});
  qor.add_row({"implemented (truth)", TextTable::num(sample.truth.dsp, 0),
               TextTable::num(sample.truth.lut, 0),
               TextTable::num(sample.truth.ff, 0),
               TextTable::num(sample.truth.cp_ns, 2)});
  qor.add_row({"HLS report", TextTable::num(sample.hls_report.dsp, 0),
               TextTable::num(sample.hls_report.lut, 0),
               TextTable::num(sample.hls_report.ff, 0),
               TextTable::num(sample.hls_report.cp_ns, 2)});
  std::cout << qor.to_string() << "\n";

  // ----- 4. train a predictor on a synthetic corpus -----
  std::cout << "== 4. training off-the-shelf RGCN on 150 synthetic DFGs ==\n";
  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kDfg;
  dc.num_graphs = 150;
  dc.seed = 42;
  const std::vector<Sample> corpus = build_synthetic_dataset(dc);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(corpus.size()), 7);

  ModelConfig mc;
  mc.kind = GnnKind::kRgcn;
  mc.hidden = 32;
  mc.layers = 3;
  TrainConfig tc;
  tc.epochs = 40;
  tc.lr = 1e-2F;

  TextTable pred_table({"metric", "predicted", "truth", "HLS report"});
  for (Metric m : kAllMetrics) {
    QorPredictor predictor(Approach::kOffTheShelf, mc, tc);
    predictor.fit(corpus, split, m);
    const double prediction = predictor.predict(sample);
    pred_table.add_row(
        {metric_name(m), TextTable::num(prediction, m == Metric::kCp ? 2 : 0),
         TextTable::num(metric_of(sample.truth, m), m == Metric::kCp ? 2 : 0),
         TextTable::num(metric_of(sample.hls_report, m),
                        m == Metric::kCp ? 2 : 0)});
    std::cout << "  trained " << metric_name(m) << " predictor (val MAPE "
              << TextTable::pct(predictor.evaluate_mape(corpus, split.val))
              << ")\n";
  }

  // ----- 5. predict from the IR graph alone -----
  std::cout << "\n== 5. prediction for fir4 (from the IR graph alone) ==\n"
            << pred_table.to_string()
            << "\nThe predictor never saw fir4 nor any HLS result for it — "
               "this is the paper's earliest-stage prediction.\n";
  return 0;
}
