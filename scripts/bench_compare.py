#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json artifact against a checked-in baseline.

Understands both artifact dialects the repo produces:

  * google-benchmark JSON (bench_micro --json=...): one record per benchmark
    under "benchmarks"; items_per_second is used when present (higher is
    better), otherwise real_time (lower is better).
  * the bench_common BenchJsonLog format ({"bench": ..., "entries":
    [{name, value, unit}, ...]}): units ending in "/s" are higher-is-better,
    time units (ns/us/ms/s) lower-is-better, anything else (e.g. "rho"
    rank-quality scores) is compared as an absolute quantity.

A regression is a shared entry that got worse by more than --threshold
(default 0.15 = 15%). Entries present on only one side are reported but
never fail the comparison (benches grow; baselines age).

--normalize divides every *machine-speed-dependent* entry (times and rates)
by the geometric mean of its direction group, computed over the entries
shared by both files. That cancels the absolute speed difference between
the machine that produced the baseline and the machine running the check,
leaving only the *relative* shape of the bench suite — which is what a
cross-machine CI gate can meaningfully enforce. Absolute units (scores like
"rho") are never normalized. Needs >= 2 shared entries per direction group
to be meaningful; with fewer, normalized comparison of that group is
vacuous and the script says so.

Pair mode (--pair ARTIFACT --pair-a REGEX --pair-b REGEX) compares two
bench families WITHIN one artifact instead of across two artifacts: each
entry matching --pair-b (the variant under test, e.g. the obs-instrumented
forward) is joined to the entry matching --pair-a whose name is identical
after stripping the regex match (BM_FooObs/0/1 joins BM_Foo/0/1), and the
check fails if the GEOMETRIC MEAN of the B/A time ratios exceeds
1 + --threshold. The gate is aggregate on purpose: the cost under test
(e.g. instrumentation) is uniform across the paired variants, so the
geomean is its estimator, while per-pair ratios carry the full run-to-run
jitter of single benchmark registrations (~10% on busy runners) and would
flake a tight per-pair gate. Per-pair overheads are still printed and
outliers flagged informationally. Same-machine, same-run pairs need no
normalization, so this is the one comparison tight thresholds (5%) can
gate reliably in CI. Times prefer cpu_time over real_time: the pair gate
measures added work, not scheduling. Every --pair-b entry must find a
partner; A entries without a B are noted but never fail.

Exit status: 0 = no regression, 1 = at least one regression, 2 = usage or
parse error.
"""

import argparse
import json
import math
import re
import sys

TIME_UNITS = {"ns", "us", "ms", "s"}


def load_entries(path):
    """Returns {name: (value, direction, normalizable)} where direction is
    +1 (higher is better) or -1 (lower is better)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")

    entries = {}
    if isinstance(doc, dict) and "benchmarks" in doc:
        # google-benchmark dialect.
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            name = b["name"]
            if "items_per_second" in b:
                entries[name] = (float(b["items_per_second"]), +1, True)
            elif "real_time" in b:
                entries[name] = (float(b["real_time"]), -1, True)
    elif isinstance(doc, dict) and "entries" in doc:
        # BenchJsonLog dialect.
        for e in doc["entries"]:
            unit = e.get("unit", "")
            if unit.endswith("/s"):
                direction, normalizable = +1, True
            elif unit in TIME_UNITS:
                direction, normalizable = -1, True
            else:
                direction, normalizable = +1, False
            entries[e["name"]] = (float(e["value"]), direction, normalizable)
    else:
        sys.exit(f"error: {path} is not a recognized bench JSON artifact")
    if not entries:
        sys.exit(f"error: {path} contains no comparable entries")
    return entries


def load_times(path):
    """Returns {name: time} for pair mode — per-iteration time in the
    artifact's own unit (consistent within one file, which is all a ratio
    needs). Prefers cpu_time for google-benchmark records."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    times = {}
    if isinstance(doc, dict) and "benchmarks" in doc:
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            if "cpu_time" in b:
                times[b["name"]] = float(b["cpu_time"])
            elif "real_time" in b:
                times[b["name"]] = float(b["real_time"])
    elif isinstance(doc, dict) and "entries" in doc:
        for e in doc["entries"]:
            if e.get("unit", "") in TIME_UNITS:
                times[e["name"]] = float(e["value"])
    else:
        sys.exit(f"error: {path} is not a recognized bench JSON artifact")
    if not times:
        sys.exit(f"error: {path} contains no timed entries")
    return times


def run_pair(args):
    for flag in ("pair_a", "pair_b"):
        if getattr(args, flag) is None:
            sys.exit(f"error: --pair requires --{flag.replace('_', '-')}")
    try:
        pat_a = re.compile(args.pair_a)
        pat_b = re.compile(args.pair_b)
    except re.error as e:
        sys.exit(f"error: bad pair regex: {e}")
    times = load_times(args.pair)
    # Join key: the name with the family regex stripped, so the A and B
    # variants of the same arg tuple line up.
    side_a = {pat_a.sub("", n): (n, t) for n, t in times.items()
              if pat_a.search(n)}
    side_b = {pat_b.sub("", n): (n, t) for n, t in times.items()
              if pat_b.search(n)}
    if not side_a:
        sys.exit(f"error: --pair-a matched no entries in {args.pair}")
    if not side_b:
        sys.exit(f"error: --pair-b matched no entries in {args.pair}")
    missing = sorted(k for k in side_b if k not in side_a)
    if missing:
        sys.exit("error: no --pair-a partner for: " +
                 ", ".join(side_b[k][0] for k in missing))

    shared = sorted(k for k in side_b if k in side_a)
    ratios = []
    width = max(len(side_b[k][0]) for k in shared)
    print(f"{'variant (B)':<{width}}  {'A time':>12}  {'B time':>12}  "
          f"{'overhead':>8}")
    for key in shared:
        name_a, ta = side_a[key]
        name_b, tb = side_b[key]
        overhead = (tb - ta) / ta if ta > 0.0 else 0.0
        if ta > 0.0 and tb > 0.0:
            ratios.append(tb / ta)
        # Per-pair outliers are informational: single registrations jitter
        # far beyond a tight threshold; only the geomean below gates.
        flag = "  (outlier)" if overhead > args.threshold else ""
        print(f"{name_b:<{width}}  {ta:>12.4g}  {tb:>12.4g}  "
              f"{overhead:>+7.1%}{flag}")
    for key in sorted(k for k in side_a if k not in side_b):
        print(f"note: A-only entry (not compared): {side_a[key][0]}")

    mean_overhead = geomean(ratios) - 1.0
    if mean_overhead > args.threshold:
        print(f"\nFAIL: mean B/A overhead {mean_overhead:+.1%} beyond "
              f"{args.threshold:.0%} across {len(shared)} pair(s)")
        return 1
    print(f"\nOK: mean B/A overhead {mean_overhead:+.1%} within "
          f"{args.threshold:.0%} across {len(shared)} pair(s)")
    return 0


def geomean(values):
    vals = [v for v in values if v > 0.0]
    if not vals:
        return 1.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="checked-in BENCH_*.json")
    ap.add_argument("fresh", nargs="?", help="freshly produced BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="worst tolerated relative regression "
                         "(default 0.15 = 15%%)")
    ap.add_argument("--pair", default=None, metavar="ARTIFACT",
                    help="pair mode: compare two bench families inside ONE "
                         "artifact (see module docstring)")
    ap.add_argument("--pair-a", default=None, metavar="REGEX",
                    help="pair mode: the baseline family (stripped from "
                         "names to form the join key)")
    ap.add_argument("--pair-b", default=None, metavar="REGEX",
                    help="pair mode: the variant family under test")
    ap.add_argument("--normalize", action="store_true",
                    help="self-normalize times/rates by their direction "
                         "group's geometric mean over shared entries "
                         "(cross-machine comparison)")
    ap.add_argument("--filter", default=None, metavar="REGEX",
                    help="compare only entries whose name matches REGEX. "
                         "With --normalize across machines of different "
                         "core counts, restrict to single-thread entries: "
                         "multi-thread entries scale with cores, not just "
                         "machine speed, and would skew the geomean")
    args = ap.parse_args()

    if args.pair is not None:
        return run_pair(args)
    if args.baseline is None or args.fresh is None:
        ap.error("baseline and fresh artifacts are required outside --pair "
                 "mode")

    base = load_entries(args.baseline)
    fresh = load_entries(args.fresh)
    if args.filter:
        try:
            pat = re.compile(args.filter)
        except re.error as e:
            sys.exit(f"error: bad --filter regex: {e}")
        base = {n: v for n, v in base.items() if pat.search(n)}
        fresh = {n: v for n, v in fresh.items() if pat.search(n)}
        if not base or not fresh:
            sys.exit("error: --filter matched no entries in one of the "
                     "artifacts")

    shared = sorted(set(base) & set(fresh))
    only_base = sorted(set(base) - set(fresh))
    only_fresh = sorted(set(fresh) - set(base))
    if not shared:
        sys.exit("error: the two artifacts share no benchmark names")

    scale = {+1: (1.0, 1.0), -1: (1.0, 1.0)}  # direction -> (base, fresh)
    if args.normalize:
        for direction in (+1, -1):
            names = [n for n in shared
                     if base[n][1] == direction and base[n][2]]
            if len(names) < 2:
                if names:
                    print(f"note: only {len(names)} shared normalizable "
                          f"entr{'y' if len(names) == 1 else 'ies'} in "
                          f"direction {direction:+d}; normalized comparison "
                          "of that group is vacuous")
                continue
            scale[direction] = (geomean(base[n][0] for n in names),
                                geomean(fresh[n][0] for n in names))

    regressions = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>14}  {'fresh':>14}  "
          f"{'delta':>8}")
    for name in shared:
        bval, direction, normalizable = base[name]
        fval = fresh[name][0]
        if args.normalize and normalizable:
            sb, sf = scale[direction]
            bcmp, fcmp = bval / sb, fval / sf
        else:
            bcmp, fcmp = bval, fval
        if bcmp == 0.0:
            delta = 0.0
        else:
            # Positive delta always means "better" regardless of direction.
            delta = direction * (fcmp - bcmp) / abs(bcmp)
        flag = ""
        if delta < -args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {bval:>14.4g}  {fval:>14.4g}  "
              f"{delta:>+7.1%}{flag}")

    for name in only_base:
        print(f"note: baseline-only entry (not compared): {name}")
    for name in only_fresh:
        print(f"note: new entry (no baseline yet): {name}")

    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: no regression beyond {args.threshold:.0%} across "
          f"{len(shared)} shared entries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
