#include "frontend/ast.h"

namespace gnnhls {

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->name = name;
  e->value = value;
  e->bin_op = bin_op;
  e->un_op = un_op;
  e->bits = bits;
  e->is_signed = is_signed;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->clone());
  return e;
}

ExprPtr var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kVarRef;
  e->name = std::move(name);
  return e;
}

ExprPtr lit(long value, int bits) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kIntLit;
  e->value = value;
  e->bits = bits;
  return e;
}

ExprPtr bin(BinOpKind op, ExprPtr lhs, ExprPtr rhs) {
  GNNHLS_CHECK(lhs && rhs, "bin: null operand");
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->bin_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr un(UnOpKind op, ExprPtr operand) {
  GNNHLS_CHECK(operand, "un: null operand");
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kUnary;
  e->un_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr aref(std::string array, ExprPtr index) {
  GNNHLS_CHECK(index, "aref: null index");
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kArrayRef;
  e->name = std::move(array);
  e->children.push_back(std::move(index));
  return e;
}

ExprPtr select(ExprPtr cond, ExprPtr then_v, ExprPtr else_v) {
  GNNHLS_CHECK(cond && then_v && else_v, "select: null operand");
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kSelect;
  e->children.push_back(std::move(cond));
  e->children.push_back(std::move(then_v));
  e->children.push_back(std::move(else_v));
  return e;
}

ExprPtr cast(ExprPtr operand, int bits, bool is_signed) {
  GNNHLS_CHECK(operand, "cast: null operand");
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kCast;
  e->bits = bits;
  e->is_signed = is_signed;
  e->children.push_back(std::move(operand));
  return e;
}

StmtPtr decl(std::string name, ScalarType type, ExprPtr init) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kDeclScalar;
  s->name = std::move(name);
  s->type = type;
  s->expr = std::move(init);
  return s;
}

StmtPtr decl_array(std::string name, ScalarType elem, int size) {
  GNNHLS_CHECK(size > 0, "decl_array: size must be positive");
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kDeclArray;
  s->name = std::move(name);
  s->type = elem;
  s->array_size = size;
  return s;
}

StmtPtr assign(std::string name, ExprPtr value) {
  GNNHLS_CHECK(value, "assign: null value");
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kAssign;
  s->name = std::move(name);
  s->expr = std::move(value);
  return s;
}

StmtPtr assign_array(std::string name, ExprPtr index, ExprPtr value) {
  GNNHLS_CHECK(index && value, "assign_array: null operand");
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kAssignArray;
  s->name = std::move(name);
  s->index = std::move(index);
  s->expr = std::move(value);
  return s;
}

StmtPtr if_stmt(ExprPtr cond, std::vector<StmtPtr> then_body,
                std::vector<StmtPtr> else_body) {
  GNNHLS_CHECK(cond, "if_stmt: null condition");
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kIf;
  s->expr = std::move(cond);
  s->body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr for_stmt(std::string induction, long begin, long end, long step,
                 std::vector<StmtPtr> body) {
  GNNHLS_CHECK(step > 0, "for_stmt: step must be positive");
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kFor;
  s->name = std::move(induction);
  s->loop_begin = begin;
  s->loop_end = end;
  s->loop_step = step;
  s->body = std::move(body);
  return s;
}

StmtPtr ret(ExprPtr value) {
  auto s = std::make_unique<Stmt>();
  s->kind = Stmt::Kind::kReturn;
  s->expr = std::move(value);
  return s;
}

namespace {

bool stmts_have_control_flow(const std::vector<StmtPtr>& stmts) {
  for (const auto& s : stmts) {
    if (s->kind == Stmt::Kind::kIf || s->kind == Stmt::Kind::kFor) return true;
  }
  return false;
}

int count_stmts(const std::vector<StmtPtr>& stmts) {
  int n = 0;
  for (const auto& s : stmts) {
    n += 1 + count_stmts(s->body) + count_stmts(s->else_body);
  }
  return n;
}

}  // namespace

bool Function::has_control_flow() const {
  return stmts_have_control_flow(body);
}

int Function::statement_count() const { return count_stmts(body); }

}  // namespace gnnhls
