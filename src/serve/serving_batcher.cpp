#include "serve/serving_batcher.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "support/arena.h"
#include "support/check.h"

namespace gnnhls {

ServingBatcher::ServingBatcher(const QorPredictor& predictor, ServeConfig cfg)
    : predictor_(predictor), cfg_(cfg) {
  GNNHLS_CHECK(cfg_.max_batch >= 1, "ServeConfig: max_batch must be >= 1");
  GNNHLS_CHECK(cfg_.batch_window_us >= 0,
               "ServeConfig: batch_window_us must be >= 0");
  worker_ = std::thread(&ServingBatcher::worker_loop, this);
}

ServingBatcher::~ServingBatcher() { shutdown(); }

std::future<double> ServingBatcher::submit(const Sample& sample) {
  std::promise<double> promise;
  std::future<double> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      promise.set_exception(std::make_exception_ptr(
          std::runtime_error("ServingBatcher: submit after shutdown")));
      return future;
    }
    queue_.push_back(Request{&sample, std::move(promise),
                             std::chrono::steady_clock::now()});
    ++stats_.submitted;
  }
  queue_cv_.notify_one();  // single worker; it re-checks size and deadline
  return future;
}

std::vector<double> ServingBatcher::predict_many(
    const std::vector<const Sample*>& samples) {
  std::vector<std::future<double>> futures;
  futures.reserve(samples.size());
  for (const Sample* s : samples) {
    GNNHLS_CHECK(s != nullptr, "predict_many: null sample");
    futures.push_back(submit(*s));
  }
  std::vector<double> out;
  out.reserve(futures.size());
  for (std::future<double>& f : futures) out.push_back(f.get());
  return out;
}

void ServingBatcher::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (worker_.joinable()) worker_.join();
}

ServeStats ServingBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ServingBatcher::run_batch(std::vector<Request>& batch,
                               FlushReason reason) {
  std::vector<const Sample*> parts;
  parts.reserve(batch.size());
  for (const Request& r : batch) parts.push_back(r.sample);
  std::vector<double> pred;
  std::exception_ptr error;
  try {
    // One forward's worth of tape temporaries per arena reset; the returned
    // doubles use std::allocator and survive the scope.
    const ArenaScope scratch(cfg_.arena ? &thread_scratch_arena() : nullptr);
    pred = predictor_.predict_many(parts);
  } catch (...) {
    error = std::current_exception();
  }
  // Count the whole batch — flush reason included — in ONE locked update,
  // BEFORE fulfilling the promises: snapshots keep the invariant
  // flush_full + flush_timeout + flush_drain == batches even mid-forward,
  // and a caller whose future.get() has returned always observes its own
  // request in stats() (serve_test relies on this ordering).
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    switch (reason) {
      case FlushReason::kFull: ++stats_.flush_full; break;
      case FlushReason::kTimeout: ++stats_.flush_timeout; break;
      case FlushReason::kDrain: ++stats_.flush_drain; break;
    }
    stats_.completed += batch.size();
    stats_.max_batch_seen =
        std::max(stats_.max_batch_seen, static_cast<int>(batch.size()));
  }
  if (error) {
    // predict_many throws before computing anything, so failing the whole
    // micro-batch with the same exception is consistent.
    for (Request& r : batch) r.promise.set_exception(error);
  } else {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(pred[i]);
    }
  }
}

void ServingBatcher::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained: every accepted request was answered
      continue;
    }
    // Window: wait for co-batchable traffic until max_batch requests are
    // queued or batch_window_us after the oldest request arrived, whichever
    // comes first. Shutdown closes the window immediately (drain).
    const auto deadline =
        queue_.front().enqueued +
        std::chrono::microseconds(cfg_.batch_window_us);
    while (!stop_ && static_cast<int>(queue_.size()) < cfg_.max_batch) {
      if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }

    const std::size_t take = std::min(
        queue_.size(), static_cast<std::size_t>(cfg_.max_batch));
    std::vector<Request> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    const FlushReason reason = static_cast<int>(take) >= cfg_.max_batch
                                   ? FlushReason::kFull
                                   : (stop_ ? FlushReason::kDrain
                                            : FlushReason::kTimeout);

    lock.unlock();
    run_batch(batch, reason);  // the one forward pass; promises fulfilled
    lock.lock();
  }
}

}  // namespace gnnhls
