// Input feature construction — the three approaches' feature sets (paper
// Table 1).
//
// The off-the-shelf approach sees only what the HLS front end emits: node
// type, bitwidth, opcode category, opcode, is-start-of-path, cluster group
// (+ const flag). The knowledge-infused approach appends the three binary
// resource-type bits (ground truth at training time, classifier output at
// inference time); the knowledge-rich approach appends the per-node resource
// *values* from intermediate HLS results.
//
// Categorical features are expanded one-hot; the encoder's input projection
// then learns the embedding (mathematically the summed-embedding layout the
// paper describes).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/ir_graph.h"
#include "tensor/matrix.h"

namespace gnnhls {

enum class Approach : int {
  kOffTheShelf = 0,   // table row "RGCN" / "PNA"
  kKnowledgeInfused,  // table row "-I"
  kKnowledgeRich,     // table row "-R"
};

std::string approach_name(Approach a);
/// Paper-table suffix: "", "-I", "-R".
std::string approach_suffix(Approach a);

/// Self-inferred resource-type annotation used by the knowledge-infused
/// approach at inference time (one per node; values in [0,1]).
struct InferredTypes {
  float dsp = 0.0F;
  float lut = 0.0F;
  float ff = 0.0F;
};

class InputFeatureBuilder {
 public:
  /// Width of the feature vector for an approach.
  static int feature_dim(Approach a);

  /// Builds [num_nodes, feature_dim] input features.
  /// For kKnowledgeInfused: if `inferred` is provided it replaces the
  /// ground-truth type bits (hierarchical inference); otherwise ground truth
  /// from graph annotations is used (hierarchical training).
  static Matrix build(const IrGraph& graph, Approach a,
                      const std::vector<InferredTypes>* inferred = nullptr);

  /// Node-level classification labels: [num_nodes, 3] binary matrix in the
  /// order DSP, LUT, FF (the paper's three binary tasks).
  static Matrix node_type_labels(const IrGraph& graph);
};

}  // namespace gnnhls
