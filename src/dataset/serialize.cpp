#include "dataset/serialize.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <utility>

namespace gnnhls {

namespace {

constexpr const char* kMagic = "gnnhls-benchmark v1";

void write_one(std::ostream& os, const IrGraph& g,
               const QualityOfResult& truth, const QualityOfResult& report,
               const std::string& origin) {
  os << "graph " << (origin.empty() ? "unnamed" : origin) << ' '
     << (g.kind() == GraphKind::kDfg ? "dfg" : "cdfg") << ' '
     << g.num_nodes() << ' ' << g.num_edges() << '\n';
  os << "qor " << truth.dsp << ' ' << truth.lut << ' ' << truth.ff << ' '
     << truth.cp_ns << '\n';
  os << "report " << report.dsp << ' ' << report.lut << ' ' << report.ff
     << ' ' << report.cp_ns << '\n';
  for (int i = 0; i < g.num_nodes(); ++i) {
    const IrNode& n = g.node(i);
    os << "node " << static_cast<int>(n.type) << ' '
       << static_cast<int>(n.opcode) << ' ' << n.bitwidth << ' '
       << (n.is_start_of_path ? 1 : 0) << ' ' << n.cluster_group << ' '
       << (n.is_const ? 1 : 0) << ' ' << (n.resource.uses_dsp ? 1 : 0) << ' '
       << (n.resource.uses_lut ? 1 : 0) << ' ' << (n.resource.uses_ff ? 1 : 0)
       << ' ' << n.resource.dsp << ' ' << n.resource.lut << ' '
       << n.resource.ff << '\n';
  }
  for (const IrEdge& e : g.edges()) {
    os << "edge " << e.src << ' ' << e.dst << ' ' << static_cast<int>(e.type)
       << ' ' << (e.is_back_edge ? 1 : 0) << '\n';
  }
  os << "end\n";
}

[[noreturn]] void parse_error(ParseStatus status, const std::string& what) {
  throw BenchmarkParseError(status, what);
}

/// The throwing core parser; try_read_benchmark maps its exceptions onto a
/// ParseResult, read_benchmark lets them propagate.
std::vector<BenchmarkRecord> read_benchmark_impl(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    parse_error(ParseStatus::kBadHeader,
                "bad or missing header (expected '" + std::string(kMagic) +
                    "')");
  }

  std::vector<BenchmarkRecord> records;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream header(line);
    std::string tag, name, kind_str;
    int num_nodes = 0, num_edges = 0;
    header >> tag >> name >> kind_str >> num_nodes >> num_edges;
    if (tag != "graph" || header.fail()) {
      parse_error(ParseStatus::kBadGraphHeader, "expected graph line");
    }
    if (kind_str != "dfg" && kind_str != "cdfg") {
      parse_error(ParseStatus::kBadGraphHeader,
                  "unknown graph kind " + kind_str);
    }
    if (num_nodes <= 0 || num_edges < 0) {
      parse_error(ParseStatus::kBadGraphHeader, "bad graph dimensions");
    }

    BenchmarkRecord rec;
    rec.origin = name;
    rec.graph = IrGraph(
        kind_str == "dfg" ? GraphKind::kDfg : GraphKind::kCdfg, name);

    const auto read_qor = [&](const char* expect, QualityOfResult& q) {
      if (!std::getline(is, line)) {
        parse_error(ParseStatus::kTruncated, "truncated record");
      }
      std::istringstream ls(line);
      std::string t;
      ls >> t >> q.dsp >> q.lut >> q.ff >> q.cp_ns;
      if (t != expect || ls.fail()) {
        parse_error(ParseStatus::kBadQor,
                    std::string("expected ") + expect + " line");
      }
    };
    read_qor("qor", rec.truth);
    read_qor("report", rec.hls_report);

    for (int i = 0; i < num_nodes; ++i) {
      if (!std::getline(is, line)) {
        parse_error(ParseStatus::kTruncated, "truncated nodes");
      }
      std::istringstream ls(line);
      std::string t;
      int type = 0, opcode = 0, start = 0, is_const = 0, udsp = 0, ulut = 0,
          uff = 0;
      IrNode n;
      ls >> t >> type >> opcode >> n.bitwidth >> start >> n.cluster_group >>
          is_const >> udsp >> ulut >> uff >> n.resource.dsp >>
          n.resource.lut >> n.resource.ff;
      if (t != "node" || ls.fail()) {
        parse_error(ParseStatus::kBadNode, "bad node line");
      }
      if (type < 0 || type >= kNumNodeGeneralTypes) {
        parse_error(ParseStatus::kBadNode, "bad type");
      }
      if (opcode < 0 || opcode >= kNumOpcodes) {
        parse_error(ParseStatus::kBadNode, "bad opcode");
      }
      n.type = static_cast<NodeGeneralType>(type);
      n.opcode = static_cast<Opcode>(opcode);
      n.is_const = is_const != 0;
      n.resource.uses_dsp = udsp != 0;
      n.resource.uses_lut = ulut != 0;
      n.resource.uses_ff = uff != 0;
      (void)start;  // recomputed by finalize()
      try {
        rec.graph.add_node(n);
      } catch (const std::invalid_argument& e) {
        parse_error(ParseStatus::kBadNode, e.what());
      }
    }
    for (int i = 0; i < num_edges; ++i) {
      if (!std::getline(is, line)) {
        parse_error(ParseStatus::kTruncated, "truncated edges");
      }
      std::istringstream ls(line);
      std::string t;
      int src = 0, dst = 0, type = 0, back = 0;
      ls >> t >> src >> dst >> type >> back;
      if (t != "edge" || ls.fail()) {
        parse_error(ParseStatus::kBadEdge, "bad edge line");
      }
      if (type < 0 || type >= kNumEdgeTypes) {
        parse_error(ParseStatus::kBadEdge, "bad edge type");
      }
      // add_edge validates endpoints, self loops and per-kind edge rules
      // (GNNHLS_CHECK throws std::invalid_argument); re-type its failures
      // so corrupted wire payloads surface as kBadEdge, never as a crash.
      try {
        rec.graph.add_edge(src, dst, static_cast<EdgeType>(type), back != 0);
      } catch (const std::invalid_argument& e) {
        parse_error(ParseStatus::kBadEdge, e.what());
      }
    }
    if (!std::getline(is, line) || line != "end") {
      parse_error(ParseStatus::kTruncated, "missing end marker");
    }
    // finalize/build enforce whole-graph invariants (acyclic forward edges,
    // nonempty graph); violations are structural, not line-level.
    try {
      rec.graph.finalize();
      rec.tensors = GraphTensors::build(rec.graph);
    } catch (const std::invalid_argument& e) {
      parse_error(ParseStatus::kBadStructure, e.what());
    }
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace

std::string parse_status_name(ParseStatus s) {
  switch (s) {
    case ParseStatus::kOk: return "ok";
    case ParseStatus::kBadHeader: return "bad-header";
    case ParseStatus::kBadGraphHeader: return "bad-graph-header";
    case ParseStatus::kBadQor: return "bad-qor";
    case ParseStatus::kBadNode: return "bad-node";
    case ParseStatus::kBadEdge: return "bad-edge";
    case ParseStatus::kTruncated: return "truncated";
    case ParseStatus::kBadStructure: return "bad-structure";
  }
  return "unknown";
}

void write_benchmark(std::ostream& os, const std::vector<Sample>& samples) {
  // Exact round-trip for doubles/floats.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << kMagic << '\n';
  for (const Sample& s : samples) {
    write_one(os, s.graph(), s.truth, s.hls_report, s.origin);
  }
  GNNHLS_CHECK(static_cast<bool>(os), "benchmark write failed");
}

void write_benchmark_file(const std::string& path,
                          const std::vector<Sample>& samples) {
  std::ofstream os(path);
  GNNHLS_CHECK(os.is_open(), "cannot open " + path + " for writing");
  write_benchmark(os, samples);
}

std::vector<BenchmarkRecord> read_benchmark(std::istream& is) {
  return read_benchmark_impl(is);
}

std::vector<BenchmarkRecord> read_benchmark_file(const std::string& path) {
  std::ifstream is(path);
  GNNHLS_CHECK(is.is_open(), "cannot open " + path);
  return read_benchmark(is);
}

ParseResult try_read_benchmark(std::istream& is) {
  ParseResult out;
  try {
    out.records = read_benchmark_impl(is);
  } catch (const BenchmarkParseError& e) {
    out.status = e.status();
    out.message = e.what();
  }
  return out;
}

void write_benchmark_sample(std::ostream& os, const Sample& sample) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << kMagic << '\n';
  write_one(os, sample.graph(), sample.truth, sample.hls_report,
            sample.origin);
  GNNHLS_CHECK(static_cast<bool>(os), "benchmark write failed");
}

std::string encode_sample_payload(const Sample& sample) {
  std::ostringstream os;
  write_benchmark_sample(os, sample);
  return os.str();
}

Sample sample_from_record(BenchmarkRecord&& rec) {
  LoweredProgram prog(rec.graph.kind(), rec.graph.name());
  prog.graph = std::move(rec.graph);
  Sample s(std::move(prog));
  s.tensors = std::move(rec.tensors);
  s.truth = rec.truth;
  s.hls_report = rec.hls_report;
  s.origin = std::move(rec.origin);
  return s;
}

DecodedSample decode_sample_payload(const std::string& payload) {
  DecodedSample out;
  std::istringstream is(payload);
  ParseResult parsed = try_read_benchmark(is);
  if (!parsed.ok()) {
    out.status = parsed.status;
    out.message = std::move(parsed.message);
    return out;
  }
  if (parsed.records.size() != 1) {
    out.status = ParseStatus::kBadStructure;
    out.message = "payload must hold exactly one record, got " +
                  std::to_string(parsed.records.size());
    return out;
  }
  out.sample =
      std::make_shared<Sample>(sample_from_record(std::move(parsed.records[0])));
  return out;
}

}  // namespace gnnhls
