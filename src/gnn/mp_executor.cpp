#include "gnn/mp_executor.h"

namespace gnnhls {

namespace {

bool have_edge_parts(const GraphTensors& gt) {
  return gt.src_part != nullptr && gt.dst_part != nullptr;
}

}  // namespace

std::vector<float> segment_inverse_counts(const SegmentPartition& part) {
  std::vector<float> inv(static_cast<std::size_t>(part.segments));
  for (int s = 0; s < part.segments; ++s) {
    const int c = part.count(s);
    inv[static_cast<std::size_t>(s)] =
        c > 0 ? 1.0F / static_cast<float>(c) : 0.0F;
  }
  return inv;
}

Var mp_aggregate_sum(Tape& t, const GraphTensors& gt, const Var& x,
                     bool fused) {
  if (gt.src.empty()) {
    if (fused) ++mp_detail::thread_fused_fallback_slot();
    return t.affine(x, 0.0F, 0.0F);
  }
  if (fused && have_edge_parts(gt)) {
    return t.fused_gather_scatter_add(x, gt.src, gt.dst, gt.num_nodes,
                                      gt.src_part, gt.dst_part);
  }
  if (fused) ++mp_detail::thread_fused_fallback_slot();
  return t.scatter_add_rows(t.gather_rows(x, gt.src, gt.src_part), gt.dst,
                            gt.num_nodes, gt.dst_part);
}

Var mp_aggregate_mean(Tape& t, const GraphTensors& gt, const Var& x,
                      bool fused) {
  if (gt.src.empty()) {
    if (fused) ++mp_detail::thread_fused_fallback_slot();
    return t.affine(x, 0.0F, 0.0F);
  }
  if (fused && have_edge_parts(gt)) {
    // segment_mean = scatter_add then scale_rows(1/count); the fused node
    // replaces the scatter_add half, the scale_rows half is unchanged (its
    // coefficients come from the same cached partition counts).
    return t.scale_rows(
        t.fused_gather_scatter_add(x, gt.src, gt.dst, gt.num_nodes,
                                   gt.src_part, gt.dst_part),
        segment_inverse_counts(*gt.dst_part));
  }
  if (fused) ++mp_detail::thread_fused_fallback_slot();
  return t.segment_mean(t.gather_rows(x, gt.src, gt.src_part), gt.dst,
                        gt.num_nodes, gt.dst_part);
}

Var mp_gcn_propagate(Tape& t, const GraphTensors& gt, const Var& x,
                     bool fused) {
  // The self term is created before the message chain in both strategies so
  // the backward pass accumulates into x's sink in the same op order.
  Var self = t.scale_rows(x, gt.gcn_self_coeff);
  if (gt.src.empty()) {
    if (fused) ++mp_detail::thread_fused_fallback_slot();
    return self;
  }
  if (fused && have_edge_parts(gt)) {
    const Var msgs =
        t.fused_gather_scatter_add(x, gt.src, gt.dst, gt.num_nodes,
                                   gt.src_part, gt.dst_part, gt.gcn_coeff);
    return t.add(msgs, self);
  }
  if (fused) ++mp_detail::thread_fused_fallback_slot();
  const Var msgs =
      t.scale_rows(t.gather_rows(x, gt.src, gt.src_part), gt.gcn_coeff);
  return t.add(
      t.scatter_add_rows(msgs, gt.dst, gt.num_nodes, gt.dst_part), self);
}

Var mp_relational_aggregate(
    Tape& t, const GraphTensors& gt, const Var& h,
    const std::vector<std::unique_ptr<Linear>>& rel_lins, bool mean_normalize,
    bool fused) {
  const bool have_views = gt.relation_src.size() == gt.relation_edges.size() &&
                          gt.relation_dst.size() == gt.relation_edges.size();
  Var acc;
  bool first = true;
  for (std::size_t r = 0; r < gt.relation_edges.size(); ++r) {
    const auto& edge_ids = gt.relation_edges[r];
    if (edge_ids.empty()) continue;
    // Endpoint views: the caches built by build_partitions(), or a local
    // rebuild for hand-assembled GraphTensors.
    std::vector<int> local_src, local_dst;
    const std::vector<int>* srcs = nullptr;
    const std::vector<int>* dsts = nullptr;
    SegmentPartitionPtr sp, dp;
    if (have_views && !gt.relation_src[r].empty()) {
      srcs = &gt.relation_src[r];
      dsts = &gt.relation_dst[r];
      sp = gt.relation_src_part[r];
      dp = gt.relation_dst_part[r];
    } else {
      local_src.reserve(edge_ids.size());
      local_dst.reserve(edge_ids.size());
      for (int e : edge_ids) {
        local_src.push_back(gt.src[static_cast<std::size_t>(e)]);
        local_dst.push_back(gt.dst[static_cast<std::size_t>(e)]);
      }
      srcs = &local_src;
      dsts = &local_dst;
    }
    const Linear& lin = *rel_lins[r];
    Var agg;
    if (fused && sp != nullptr && dp != nullptr && !lin.has_bias()) {
      const Var summed = t.fused_gather_matmul_scatter_add(
          h, lin.weight(), *srcs, *dsts, gt.num_nodes, sp, dp);
      agg = mean_normalize ? t.scale_rows(summed, segment_inverse_counts(*dp))
                           : summed;
    } else {
      if (fused) ++mp_detail::thread_fused_fallback_slot();
      const Var msgs = lin.forward(t, t.gather_rows(h, *srcs, sp));
      agg = mean_normalize
                ? t.segment_mean(msgs, *dsts, gt.num_nodes, dp)
                : t.scatter_add_rows(msgs, *dsts, gt.num_nodes, dp);
    }
    acc = first ? agg : t.add(acc, agg);
    first = false;
  }
  if (first) return t.affine(h, 0.0F, 0.0F);
  return acc;
}

}  // namespace gnnhls
