// Micro benchmarks of the numerical substrate (google-benchmark):
// matmul, message-passing primitives, encoder forward passes, HLS stages.
#include <benchmark/benchmark.h>

#include "gnn/models.h"
#include "hls/hls_flow.h"
#include "nn/adam.h"
#include "progen/progen.h"

namespace gnnhls {
namespace {

void BM_Matmul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::randn(n, n, rng);
  const Matrix b = Matrix::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_GatherScatter(benchmark::State& state) {
  LoweredProgram p = lower_to_cdfg(generate_cdfg_program(3));
  run_hls_flow(p);
  const GraphTensors gt = GraphTensors::build(p.graph);
  Rng rng(1);
  const Matrix h = Matrix::randn(gt.num_nodes, 64, rng);
  for (auto _ : state) {
    Tape tape;
    const Var x = tape.leaf(h);
    const Var msgs = tape.gather_rows(x, gt.src);
    benchmark::DoNotOptimize(
        tape.scatter_add_rows(msgs, gt.dst, gt.num_nodes).value().data());
  }
}
BENCHMARK(BM_GatherScatter);

void BM_EncoderForward(benchmark::State& state) {
  LoweredProgram p = lower_to_cdfg(generate_cdfg_program(5));
  run_hls_flow(p);
  const GraphTensors gt = GraphTensors::build(p.graph);
  const Matrix feats =
      InputFeatureBuilder::build(p.graph, Approach::kOffTheShelf);
  Rng rng(2);
  EncoderConfig cfg;
  cfg.in_dim = feats.cols();
  cfg.hidden = 64;
  cfg.layers = 3;
  const auto kind = static_cast<GnnKind>(state.range(0));
  const auto enc = make_encoder(kind, cfg, rng);
  Rng drop(1);
  for (auto _ : state) {
    Tape tape;
    benchmark::DoNotOptimize(
        enc->encode(tape, gt, tape.leaf(feats), drop, false).value().data());
  }
  state.SetLabel(gnn_kind_name(kind));
}
BENCHMARK(BM_EncoderForward)->DenseRange(0, kNumGnnKinds - 1);

void BM_TrainStep(benchmark::State& state) {
  LoweredProgram p = lower_to_cdfg(generate_cdfg_program(7));
  run_hls_flow(p);
  const GraphTensors gt = GraphTensors::build(p.graph);
  const Matrix feats =
      InputFeatureBuilder::build(p.graph, Approach::kOffTheShelf);
  Rng rng(3);
  ModelConfig mc;
  mc.kind = GnnKind::kRgcn;
  mc.hidden = 64;
  mc.layers = 3;
  GraphRegressor model(mc, feats.cols(), rng);
  Adam opt(model, AdamConfig{});
  Rng drop(1);
  const Matrix target(1, 1, 5.0F);
  for (auto _ : state) {
    Tape tape;
    const Var pred = model.forward(tape, gt, feats, drop, true);
    tape.backward(tape.mse_loss(pred, target));
    opt.step();
  }
}
BENCHMARK(BM_TrainStep);

void BM_ScheduleProgram(benchmark::State& state) {
  LoweredProgram p = lower_to_cdfg(generate_cdfg_program(11));
  const ResourceLibrary lib;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedule_program(p, lib, HlsConfig{}).total_states);
  }
}
BENCHMARK(BM_ScheduleProgram);

void BM_ProgramGeneration(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generate_cdfg_program(seed++).statement_count());
  }
}
BENCHMARK(BM_ProgramGeneration);

}  // namespace
}  // namespace gnnhls

BENCHMARK_MAIN();
