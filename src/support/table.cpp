#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/check.h"

namespace gnnhls {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  GNNHLS_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  GNNHLS_CHECK_EQ(cells.size(), header_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(width[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::pct(double fraction) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << fraction * 100.0 << '%';
  return os.str();
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace gnnhls
