// QorPredictor — the paper's three prediction approaches behind one API
// (§4, Fig. 2).
//
//   * kOffTheShelf      — GraphRegressor on raw IR-graph features.
//   * kKnowledgeRich    — GraphRegressor on raw features + per-node resource
//                         values from intermediate HLS results.
//   * kKnowledgeInfused — hierarchical: a NodeClassifier is trained first on
//                         node-level resource types; the GraphRegressor
//                         trains on ground-truth type bits ("domain
//                         knowledge is infused by providing labels") and at
//                         inference consumes the classifier's self-inferred
//                         bits — earliest-stage prediction, zero extra
//                         inference inputs.
//
// The paper's training recipe (Adam, fixed epoch budget, minibatch
// accumulation, best-validation-epoch parameter selection) lives in the
// src/train/ subsystem: each fit here builds a BatchPlan over cached feature
// tensors (FeatureCache) and delegates the epochs to the sharded Trainer;
// this file keeps only model construction, validation-driven model
// selection, and inference.
//
// Online refit (model-in-the-loop DSE): fit() retains the corpus, split and
// the selected epoch's optimizer moments; refit(new_samples, opts) then
// appends ground-truth feedback as a new BatchPlan *segment* — prior
// segments' unions come back as BatchCoreCache hits, only the delta is
// assembled — and continues training warm-started from the selected model's
// weights and Adam state. The refit trajectory is a pure function of
// (checkpoint, feedback samples, FitOptions), so it inherits the Trainer's
// bit-identity across thread and shard counts.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/metrics.h"
#include "dataset/dataset.h"
#include "gnn/models.h"
#include "train/fit_options.h"
#include "train/trainer.h"

namespace gnnhls {

/// How the knowledge-infused approach obtains resource-type bits at
/// inference time. kSelfInferred is the paper's deployment path; kOracle
/// feeds ground-truth bits instead and upper-bounds what a perfect
/// node-classifier would buy (used by the hierarchy ablation bench).
enum class InfusedInference { kSelfInferred, kOracle };

class QorPredictor {
 public:
  QorPredictor(Approach approach, ModelConfig model_cfg, TrainConfig train_cfg,
               InfusedInference infused = InfusedInference::kSelfInferred);

  /// Trains (classifier first for -I, then regressor) on samples[split.train]
  /// for one metric under the given options. Fresh fits (re)initialize the
  /// model from the effective seed (opts.seed, else TrainConfig::seed);
  /// opts.warm_start continues from the current weights + Adam moments when
  /// the model has already been fitted. Validation runs per epoch; the
  /// validation policy decides whether the best epoch's parameters (and
  /// optimizer state) are restored. Retains the corpus and split for
  /// subsequent refit() calls.
  FitReport fit(const std::vector<Sample>& samples, const SplitIndices& split,
                Metric metric, const FitOptions& opts);

  /// Deprecated shim (pre-FitOptions signature): fresh fit, full epoch
  /// budget, best-epoch selection. Returns the best validation MAPE.
  double fit(const std::vector<Sample>& samples, const SplitIndices& split,
             Metric metric);

  /// Online refit: appends `new_samples` (ground truth gathered since the
  /// last fit/refit, e.g. a DSE round's HLS results) to the retained corpus
  /// as a fresh training segment and continues training. With
  /// opts.warm_start (the default policy) the regressor resumes from the
  /// selected weights + Adam moments; otherwise it re-initializes and
  /// retrains over the grown corpus. Prior segments' batch unions are
  /// BatchCoreCache hits and the delta's features are warmed through the
  /// FeatureCache, so a refit costs O(delta assembly + epochs), not a
  /// from-scratch rebuild. The -I hierarchy keeps its classifier: feedback
  /// refits sharpen the regressor only. Validation still scores the
  /// original split.val.
  FitReport refit(const std::vector<Sample>& new_samples,
                  const FitOptions& opts = refit_defaults());

  /// The refit() policy tuned for DSE feedback rounds: warm start, a small
  /// epoch budget, final-epoch validation (feedback is drawn from the
  /// explored design space, so the original validation split no longer
  /// selects well for it).
  static FitOptions refit_defaults();

  /// Number of refit() calls since the last fresh fit.
  int refits() const { return refits_; }

  /// Decoded QoR prediction for one sample (for -I, runs hierarchical
  /// inference: classifier -> annotated features -> regressor).
  double predict(const Sample& sample) const;

  /// Batched inference: one GraphBatch disjoint union over all of `samples`,
  /// one regressor forward, decoded predictions returned in input order.
  /// Bit-identical to calling predict() per sample — the union introduces no
  /// cross-graph edges and the segment readout pools each member's rows in
  /// the same order as the single-graph path, so per-member float
  /// trajectories are exactly those of the solo forward (asserted across all
  /// 14 encoder kinds in serve_test/batch_test).
  ///
  /// Thread safety: const and safe to call concurrently from many threads
  /// after fit() returns (forward builds a private tape; feature matrices
  /// come from the internally synchronized FeatureCache). This is the
  /// serving batcher's one entry point into the model. Callers control the
  /// batch size by slicing: each call is a single forward pass.
  std::vector<double> predict_many(
      const std::vector<const Sample*>& samples) const;

  /// MAPE over an index subset. With batch_size > 1 the regressor runs on
  /// GraphBatch unions of that many samples per tape. Feature matrices come
  /// from the process-wide FeatureCache, so per-epoch validation and bench
  /// tables stop rebuilding identical tensors per call.
  double evaluate_mape(const std::vector<Sample>& samples,
                       const std::vector<int>& idx) const;

  Approach approach() const { return approach_; }
  Metric metric() const { return metric_; }

  /// Trained regressor (valid after fit; determinism tests snapshot its
  /// parameters).
  const GraphRegressor& regressor() const { return *regressor_; }

 private:
  /// True when inference features are a pure function of the sample (cached
  /// globally); false on the hierarchical self-inferred path, whose
  /// features depend on the trained classifier.
  bool pure_inference_features() const;

  /// Hierarchical (-I self-inferred) inference features: classifier bits
  /// replace the ground-truth type annotations.
  Matrix infused_features(const Sample& s) const;

  void fit_classifier(const std::vector<Sample>& samples,
                      const std::vector<int>& train_idx, std::uint64_t seed);

  /// Shared epoch loop: runs the trainer, tracks per-epoch validation, and
  /// applies the FitOptions validation policy (parameter + optimizer-state
  /// restore on kBestEpoch).
  FitReport train_regressor(BatchPlan& plan, Trainer& trainer,
                            const FitOptions& opts);

  Approach approach_;
  ModelConfig model_cfg_;
  TrainConfig train_cfg_;
  InfusedInference infused_;
  Metric metric_ = Metric::kLut;
  std::unique_ptr<NodeClassifier> classifier_;  // only for -I
  std::unique_ptr<GraphRegressor> regressor_;

  // --- refit state (valid after fit) ---
  std::vector<Sample> corpus_;  // training-time samples + appended feedback
  SplitIndices split_;          // indices into corpus_ (val/test stay fixed)
  /// One entry per training segment: [0] the original split.train, then one
  /// per refit delta. Each pins the share_key its fit resolved cores under.
  std::vector<BatchPlan::Segment> segments_;
  std::optional<AdamState> adam_state_;  // selected epoch's optimizer moments
  std::uint64_t fit_seed_ = 0;           // effective seed of the last fresh fit
  int refits_ = 0;
};

// ----- node-level classification (paper Table 3) -----

struct NodeClassifierScores {
  // accuracy per binary task, paper column order
  double dsp = 0.0;
  double lut = 0.0;
  double ff = 0.0;
};

class NodeTypePredictor {
 public:
  NodeTypePredictor(ModelConfig model_cfg, TrainConfig train_cfg);

  /// Trains on samples[split.train] under the given options (seed override,
  /// epoch budget, warm start from the current classifier, validation
  /// policy — kBestEpoch selects by validation mean accuracy, higher
  /// better). FitReport::val_curve carries the per-epoch mean accuracy.
  FitReport fit(const std::vector<Sample>& samples, const SplitIndices& split,
                const FitOptions& opts);

  /// Deprecated shim (pre-FitOptions signature): fresh fit, full budget,
  /// best-epoch selection. Returns best validation mean accuracy.
  double fit(const std::vector<Sample>& samples, const SplitIndices& split);

  NodeClassifierScores evaluate(const std::vector<Sample>& samples,
                                const std::vector<int>& idx) const;

  const NodeClassifier& classifier() const { return *classifier_; }

 private:
  ModelConfig model_cfg_;
  TrainConfig train_cfg_;
  std::unique_ptr<NodeClassifier> classifier_;
  std::optional<AdamState> adam_state_;  // selected epoch's optimizer moments
};

// ----- parameter snapshot/restore for best-epoch selection -----

std::vector<Matrix> snapshot_parameters(const Module& m);
void restore_parameters(Module& m, const std::vector<Matrix>& snap);

}  // namespace gnnhls
