// src/obs/ tests: histogram bucket boundaries, snapshot-merge determinism
// across thread counts, exact concurrent counter increments, render_text
// format, Chrome trace JSON well-formedness, the shared status-name table's
// exhaustiveness against the serving enums, the bounded latency buffer, the
// STATS wire frame round-trip, and the determinism contract — predictions
// served with obs fully enabled (metrics + armed trace collector) are
// bit-identical to obs-off serving and to sequential predict() for all 14
// encoder kinds.
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gnn/encoders.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/scheduler.h"
#include "serve/status_names.h"
#include "serve/wire.h"

namespace gnnhls {
namespace {

// ----- histogram buckets -----

TEST(ObsHistogramTest, BucketBoundaries) {
  // Bucket i counts v <= 2^i; the smallest matching i wins.
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 0);
  EXPECT_EQ(Histogram::bucket_index(2), 1);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 2);
  EXPECT_EQ(Histogram::bucket_index(5), 3);
  EXPECT_EQ(Histogram::bucket_index(1024), 10);
  EXPECT_EQ(Histogram::bucket_index(1025), 11);
  const std::uint64_t last = Histogram::bucket_upper_bound(
      kHistogramBuckets - 1);  // 2^30
  EXPECT_EQ(Histogram::bucket_index(last), kHistogramBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(last + 1), kHistogramBuckets);  // +Inf
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 1U);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1024U);
}

TEST(ObsHistogramTest, RecordCountsAndSums) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h_us");
  const std::uint64_t big = (std::uint64_t{1} << 30) + 5;
  for (std::uint64_t v : {std::uint64_t{1}, std::uint64_t{2},
                          std::uint64_t{3}, big}) {
    h->record(v);
  }
  EXPECT_EQ(h->bucket_count(0), 1U);
  EXPECT_EQ(h->bucket_count(1), 1U);
  EXPECT_EQ(h->bucket_count(2), 1U);
  EXPECT_EQ(h->bucket_count(kHistogramBuckets), 1U);  // +Inf overflow
  EXPECT_EQ(h->count(), 4U);
  EXPECT_EQ(h->sum(), 6U + big);
}

// ----- merge determinism and concurrency -----

/// Records the fixed multiset {0..kTotal-1} (plus kTotal counter bumps)
/// into `reg`, split contiguously over `threads` threads — every thread
/// count records the same events overall, only their stripes differ.
void record_workload(MetricsRegistry& reg, int threads) {
  Counter* c = reg.counter("obs_test_events_total", R"(k="x")");
  Histogram* h = reg.histogram("obs_test_lat_us", R"(k="x")");
  constexpr int kTotal = 8000;
  const int per = kTotal / threads;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = t * per; i < (t + 1) * per; ++i) {
        c->add();
        h->record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

TEST(ObsMetricsTest, SnapshotIdenticalAcrossThreadCounts) {
  // The registry merge must be a pure function of the recorded multiset:
  // byte-identical render_text regardless of which threads (stripes) the
  // events landed on.
  MetricsRegistry one;
  MetricsRegistry four;
  record_workload(one, 1);
  record_workload(four, 4);
  EXPECT_EQ(one.render_text(), four.render_text());
}

TEST(ObsMetricsTest, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry reg;
  Counter* c = reg.counter("concurrent_total");
  constexpr int kThreads = 8;
  constexpr int kAdds = 50000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kAdds; ++i) c->add();
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsMetricsTest, RenderTextFormat) {
  MetricsRegistry reg;
  reg.counter("zz_total", R"(m="b")")->add(7);
  reg.counter("zz_total", R"(m="a")")->add(3);
  reg.gauge("depth")->set(-2);
  Histogram* h = reg.histogram("lat_us");
  h->record(1);
  h->record(3);
  const std::string text = reg.render_text();
  // One TYPE line per family; series sorted by (name, labels).
  EXPECT_NE(text.find("# TYPE zz_total counter\n"), std::string::npos);
  const std::size_t a = text.find("zz_total{m=\"a\"} 3\n");
  const std::size_t b = text.find("zz_total{m=\"b\"} 7\n");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(text.find("depth -2\n"), std::string::npos);
  // Histogram buckets render cumulatively.
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 2\n"), std::string::npos);
}

TEST(ObsMetricsTest, KindConflictThrows) {
  MetricsRegistry reg;
  reg.counter("same_name");
  EXPECT_THROW(reg.gauge("same_name"), std::logic_error);
  EXPECT_THROW(reg.histogram("same_name"), std::logic_error);
  // Same (name, labels, kind) is a find, not a conflict.
  EXPECT_EQ(reg.counter("same_name"), reg.counter("same_name"));
}

// ----- trace spans and JSON export -----

TEST(ObsTraceTest, SpansRecordAndJsonIsWellFormed) {
  TraceCollector& tc = TraceCollector::global();
  tc.clear();

  // Gate closed, or collector stopped: nothing records.
  tc.stop();
  { const ObsSpan off(true, "never", "test"); }
  tc.start();
  { const ObsSpan gated(false, "never", "test"); }
  obs_complete_event(false, "never", "test", 0, 1);
  EXPECT_EQ(tc.event_count(), 0U);

  { const ObsSpan a(true, "span_a", "test"); }
  obs_complete_event(true, "span_b", "test", 10, 5);
  std::thread other([&] { const ObsSpan c(true, "span_c", "test"); });
  other.join();
  tc.stop();
  EXPECT_EQ(tc.event_count(), 3U);
  EXPECT_EQ(tc.dropped(), 0U);

  const std::string json = tc.render_json();
  EXPECT_EQ(tc.render_json(), json);  // deterministic render
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0U);
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
  for (const char* name : {"span_a", "span_b", "span_c"}) {
    EXPECT_NE(json.find("\"name\":\"" + std::string(name) + "\""),
              std::string::npos);
  }
  // Every event is a complete event with the fields Perfetto needs.
  std::size_t ph = 0;
  std::size_t count = 0;
  while ((ph = json.find("\"ph\":\"X\"", ph)) != std::string::npos) {
    ++count;
    ++ph;
  }
  EXPECT_EQ(count, 3U);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  tc.clear();
}

// ----- shared status-name table -----

TEST(ObsStatusNamesTest, TableIsExhaustiveAndUnified) {
  std::vector<std::string> seen;
  for (std::uint32_t code = 0; code < kNumStatusNames; ++code) {
    const std::string name = status_name(code);
    EXPECT_NE(name, "unknown") << "code " << code;
    EXPECT_FALSE(name.empty());
    for (const std::string& prior : seen) EXPECT_NE(name, prior);
    seen.push_back(name);
    // Wire naming IS the table.
    EXPECT_EQ(wire_result_name(static_cast<WireResult>(code)), name);
  }
  EXPECT_STREQ(status_name(kNumStatusNames), "unknown");
  // AdmitStatus shares the table, except the historical kAccepted
  // spelling ("accepted" as an admission outcome vs "ok" on the wire).
  EXPECT_EQ(admit_status_name(AdmitStatus::kAccepted), "accepted");
  for (AdmitStatus s : {AdmitStatus::kExpired, AdmitStatus::kOverCapacity,
                        AdmitStatus::kShutdown}) {
    EXPECT_EQ(admit_status_name(s),
              status_name(static_cast<std::uint32_t>(s)));
  }
}

// ----- serving fixtures (mirrors scheduler_test.cpp) -----

std::vector<Sample> small_corpus(int n, std::uint64_t seed) {
  SyntheticDatasetConfig dcfg;
  dcfg.kind = GraphKind::kDfg;
  dcfg.num_graphs = n;
  dcfg.seed = seed;
  dcfg.progen.min_ops = 8;
  dcfg.progen.max_ops = 24;
  return build_synthetic_dataset(dcfg);
}

ModelConfig model_cfg(GnnKind kind) {
  ModelConfig mc;
  mc.kind = kind;
  mc.hidden = 16;
  mc.layers = 2;
  return mc;
}

TrainConfig train_cfg() {
  TrainConfig tc;
  tc.epochs = 2;
  tc.lr = 1e-2F;
  tc.batch_size = 4;
  tc.seed = 5;
  return tc;
}

/// Value of the first series of `family` in render_text output; -1 if
/// absent (family name match tolerates any labels).
long long series_value(const std::string& text, const std::string& family) {
  std::size_t pos = 0;
  while ((pos = text.find(family, pos)) != std::string::npos) {
    if (pos > 0 && text[pos - 1] != '\n') {  // mid-line or TYPE comment
      ++pos;
      continue;
    }
    const char next = text[pos + family.size()];
    if (next != '{' && next != ' ') {
      ++pos;
      continue;
    }
    const std::size_t eol = text.find('\n', pos);
    const std::size_t sp = text.rfind(' ', eol);
    return std::stoll(text.substr(sp + 1, eol - sp - 1));
  }
  return -1;
}

// ----- bounded latency recording -----

TEST(ObsSchedulerTest, LatencyCapBoundsBufferButNotHistogram) {
  const auto samples = small_corpus(12, 99);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 3);
  QorPredictor predictor(Approach::kOffTheShelf, model_cfg(GnnKind::kGcn),
                         train_cfg());
  predictor.fit(samples, split, Metric::kLut);

  SchedulerConfig cfg;
  cfg.virtual_time = true;
  cfg.max_batch = 4;
  cfg.batch_window_us = 0;
  cfg.record_latencies = true;
  cfg.latency_cap = 4;
  ServingScheduler sched({&predictor}, cfg);
  std::vector<std::future<double>> futures;
  for (const Sample& s : samples) {
    futures.push_back(sched.submit(0, s).future);
  }
  while (sched.pump()) {
  }
  for (auto& f : futures) (void)f.get();

  // The raw buffer stops at the cap; the histogram records everything.
  EXPECT_EQ(sched.take_latencies_us().size(), 4U);
  EXPECT_TRUE(sched.take_latencies_us().empty());  // drained
  EXPECT_EQ(sched.stats().completed, samples.size());
  const std::string text = sched.metrics_registry().render_text();
  EXPECT_EQ(series_value(text, "gnnhls_sched_latencies_dropped_total"),
            static_cast<long long>(samples.size()) - 4);
  EXPECT_EQ(series_value(text, "gnnhls_sched_latency_us_count"),
            static_cast<long long>(samples.size()));
}

// ----- STATS wire frames -----

TEST(ObsWireTest, StatsFramesRoundTripUnderTearing) {
  StatsFrame req;
  req.request_id = 77;
  StatsFrame resp;
  resp.request_id = 77;
  resp.text = "# TYPE x counter\nx 1\n";
  std::string bytes = encode_stats_request_frame(req);
  append_stats_response_frame(bytes, resp);

  WireDecoder dec;
  for (char ch : bytes) dec.feed(&ch, 1);  // worst-case tearing
  DecodedFrame f;
  ASSERT_EQ(dec.next(f), WireStatus::kFrame);
  EXPECT_EQ(f.type, kWireTypeStatsRequest);
  EXPECT_EQ(f.stats.request_id, 77U);
  EXPECT_TRUE(f.stats.text.empty());
  ASSERT_EQ(dec.next(f), WireStatus::kFrame);
  EXPECT_EQ(f.type, kWireTypeStatsResponse);
  EXPECT_EQ(f.stats.request_id, 77U);
  EXPECT_EQ(f.stats.text, resp.text);
  EXPECT_EQ(dec.next(f), WireStatus::kNeedMore);
}

TEST(ObsWireTest, ShortStatsBodyPoisons) {
  // Hand-built header: magic, v1.1, type 3, 4-byte body (< the 8-byte
  // fixed request id) — must poison with kBadBody, not mis-decode.
  std::string bytes;
  const std::uint32_t magic = kWireMagic;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((magic >> (8 * i)) & 0xFF));
  }
  bytes.push_back(static_cast<char>(kWireMajor));
  bytes.push_back(static_cast<char>(kWireMinor));
  bytes.push_back(static_cast<char>(kWireTypeStatsRequest));
  bytes.push_back(0);  // reserved
  bytes.push_back(4);  // body length 4, little-endian
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes += "abcd";
  WireDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  DecodedFrame f;
  EXPECT_EQ(dec.next(f), WireStatus::kBadBody);
  EXPECT_EQ(dec.next(f), WireStatus::kBadBody);  // latched
}

// ----- obs on == obs off bit-identity, all 14 encoder kinds -----

class ObsKindTest : public ::testing::TestWithParam<GnnKind> {};

TEST_P(ObsKindTest, ServedValuesBitIdenticalWithObsEnabled) {
  const auto samples = small_corpus(18, 147);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 3);
  QorPredictor predictor(Approach::kOffTheShelf, model_cfg(GetParam()),
                         train_cfg());
  predictor.fit(samples, split, Metric::kLut);

  std::vector<const Sample*> ptrs;
  std::vector<double> expect;
  for (const Sample& s : samples) {
    ptrs.push_back(&s);
    expect.push_back(predictor.predict(s));
  }

  SchedulerConfig base;
  base.workers = 2;
  base.max_batch = 5;
  base.batch_window_us = 0;

  std::vector<double> off_vals;
  {
    ServingScheduler off({&predictor}, base);
    off_vals = off.predict_many(0, ptrs);
  }

  // Full observability: global-registry metrics, trace spans with the
  // collector armed — the maximum-instrumentation configuration.
  TraceCollector::global().clear();
  TraceCollector::global().start();
  std::vector<double> on_vals;
  {
    SchedulerConfig cfg = base;
    cfg.obs.metrics = true;
    cfg.obs.trace = true;
    ServingScheduler on({&predictor}, cfg);
    on_vals = on.predict_many(0, ptrs);
  }
  TraceCollector::global().stop();
  EXPECT_GT(TraceCollector::global().event_count(), 0U);
  TraceCollector::global().clear();

  ASSERT_EQ(off_vals.size(), expect.size());
  ASSERT_EQ(on_vals.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    // Exact == : obs reads time, never values.
    EXPECT_EQ(off_vals[i], expect[i])
        << gnn_kind_name(GetParam()) << " obs-off sample " << i;
    EXPECT_EQ(on_vals[i], expect[i])
        << gnn_kind_name(GetParam()) << " obs-on sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ObsKindTest, ::testing::ValuesIn(all_gnn_kinds()),
    [](const ::testing::TestParamInfo<GnnKind>& info) {
      std::string name = gnn_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace gnnhls
