#include "gnn/graph_tensors.h"

#include <cmath>

namespace gnnhls {

GraphTensors GraphTensors::build(const IrGraph& graph) {
  GNNHLS_CHECK(graph.finalized(), "GraphTensors: graph not finalized");
  GraphTensors gt;
  gt.num_nodes = graph.num_nodes();
  gt.src = graph.edge_src();
  gt.dst = graph.edge_dst();

  gt.src_self = gt.src;
  gt.dst_self = gt.dst;
  gt.src_self.reserve(gt.src.size() + static_cast<std::size_t>(gt.num_nodes));
  gt.dst_self.reserve(gt.dst.size() + static_cast<std::size_t>(gt.num_nodes));
  for (int i = 0; i < gt.num_nodes; ++i) {
    gt.src_self.push_back(i);
    gt.dst_self.push_back(i);
  }

  const auto& in_deg = graph.in_degree();
  gt.gcn_coeff.reserve(gt.src.size());
  for (std::size_t e = 0; e < gt.src.size(); ++e) {
    const float ds = std::sqrt(
        static_cast<float>(in_deg[static_cast<std::size_t>(gt.src[e])] + 1));
    const float dd = std::sqrt(
        static_cast<float>(in_deg[static_cast<std::size_t>(gt.dst[e])] + 1));
    gt.gcn_coeff.push_back(1.0F / (ds * dd));
  }
  gt.gcn_self_coeff.reserve(static_cast<std::size_t>(gt.num_nodes));
  for (int i = 0; i < gt.num_nodes; ++i) {
    gt.gcn_self_coeff.push_back(
        1.0F / static_cast<float>(in_deg[static_cast<std::size_t>(i)] + 1));
  }

  gt.relation_edges.assign(kNumEdgeRelations, {});
  const auto& rel = graph.edge_relation();
  for (std::size_t e = 0; e < rel.size(); ++e) {
    gt.relation_edges[static_cast<std::size_t>(rel[e])].push_back(
        static_cast<int>(e));
  }

  gt.log_deg.reserve(static_cast<std::size_t>(gt.num_nodes));
  float sum = 0.0F;
  for (int i = 0; i < gt.num_nodes; ++i) {
    const float l = std::log1p(
        static_cast<float>(in_deg[static_cast<std::size_t>(i)]));
    gt.log_deg.push_back(l);
    sum += l;
  }
  gt.avg_log_deg =
      gt.num_nodes > 0 ? std::max(sum / static_cast<float>(gt.num_nodes),
                                  0.1F)
                       : 1.0F;
  gt.num_graphs = 1;
  gt.graph_id.assign(static_cast<std::size_t>(gt.num_nodes), 0);
  gt.graph_avg_log_deg = {gt.avg_log_deg};
  gt.build_partitions();
  return gt;
}

void GraphTensors::build_partitions() {
  src_part = make_segment_partition(src, num_nodes);
  dst_part = make_segment_partition(dst, num_nodes);
  src_self_part = make_segment_partition(src_self, num_nodes);
  dst_self_part = make_segment_partition(dst_self, num_nodes);
  graph_part = make_segment_partition(graph_id, num_graphs);

  const std::size_t relations = relation_edges.size();
  relation_src.assign(relations, {});
  relation_dst.assign(relations, {});
  relation_src_part.assign(relations, nullptr);
  relation_dst_part.assign(relations, nullptr);
  for (std::size_t r = 0; r < relations; ++r) {
    const auto& edge_ids = relation_edges[r];
    if (edge_ids.empty()) continue;
    relation_src[r].reserve(edge_ids.size());
    relation_dst[r].reserve(edge_ids.size());
    for (int e : edge_ids) {
      relation_src[r].push_back(src[static_cast<std::size_t>(e)]);
      relation_dst[r].push_back(dst[static_cast<std::size_t>(e)]);
    }
    relation_src_part[r] = make_segment_partition(relation_src[r], num_nodes);
    relation_dst_part[r] = make_segment_partition(relation_dst[r], num_nodes);
  }
}

}  // namespace gnnhls
