// Ablation: how much of RGCN's edge does relational information buy?
//
// The paper attributes RGCN/PNA's win to exploiting edge (relational)
// information (§5.2 "the relational information is important in IR
// graphs"). We test this causally by collapsing edge relations:
//   full        — 8 relations (edge type x back-edge flag),
//   type-only   — 4 relations (back-edge flag erased),
//   single      — 1 relation (RGCN degenerates to a directed GCN).
#include "bench_common.h"

namespace gnnhls::bench {
namespace {

/// Rewrites the relation partition of already-built samples.
/// mode 0 = untouched, 1 = erase back-edge flag, 2 = single relation.
std::vector<Sample> collapse_relations(const std::vector<Sample>& samples,
                                       int mode) {
  std::vector<Sample> out;
  out.reserve(samples.size());
  for (const Sample& s : samples) {
    Sample copy = s;
    auto& rel = copy.tensors.relation_edges;
    std::vector<std::vector<int>> merged(rel.size());
    for (std::size_t r = 0; r < rel.size(); ++r) {
      std::size_t target = r;
      if (mode == 1) target = (r / 2) * 2;  // drop the back-edge bit
      if (mode == 2) target = 0;
      for (int e : rel[r]) merged[target].push_back(e);
    }
    for (auto& edges : merged) std::sort(edges.begin(), edges.end());
    rel = std::move(merged);
    out.push_back(std::move(copy));
  }
  return out;
}

int run(int argc, const char* const* argv) {
  const BenchConfig cfg = parse_bench_config(argc, argv);
  print_header("Ablation — relational information in RGCN (CDFG, LUT/FF)",
               cfg);

  Timer total;
  const std::vector<Sample> cdfg = build_cdfg(cfg);
  print_dataset_line("CDFG", cdfg);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(cdfg.size()), cfg.seed);

  const std::vector<std::string> modes = {"full 8 relations",
                                          "edge-type only (4)",
                                          "single relation (1)"};
  // Evaluate on the metrics the paper ties to structure: LUT and FF.
  const std::vector<Metric> metrics = {Metric::kLut, Metric::kFf};
  double results[3][2] = {};

  std::vector<std::vector<Sample>> variants;
  for (int mode = 0; mode < 3; ++mode) {
    variants.push_back(collapse_relations(cdfg, mode));
  }

  std::vector<std::function<void()>> jobs;
  for (int mode = 0; mode < 3; ++mode) {
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      jobs.push_back([&, mode, m] {
        ExperimentSpec spec;
        spec.kind = GnnKind::kRgcn;
        spec.approach = Approach::kOffTheShelf;
        spec.metric = metrics[m];
        spec.model = model_config(cfg);
        spec.train = train_config(cfg);
        spec.protocol = protocol(cfg);
        results[mode][m] = run_regression_experiment(
                               spec, variants[static_cast<std::size_t>(mode)],
                               split)
                               .test_mape;
      });
    }
  }
  run_parallel(std::move(jobs), cfg.threads);

  TextTable table({"relations", "LUT", "FF", "mean"});
  BenchJsonLog json_log;
  std::array<double, 3> mean{};
  for (int mode = 0; mode < 3; ++mode) {
    mean[static_cast<std::size_t>(mode)] =
        (results[mode][0] + results[mode][1]) / 2.0;
    table.add_row({modes[static_cast<std::size_t>(mode)],
                   TextTable::pct(results[mode][0]),
                   TextTable::pct(results[mode][1]),
                   TextTable::pct(mean[static_cast<std::size_t>(mode)])});
    json_log.add(std::string(modes[static_cast<std::size_t>(mode)]) +
                     " mean",
                 mean[static_cast<std::size_t>(mode)], "mape");
  }
  std::cout << "\n" << table.to_string();
  write_bench_json(cfg, json_log, "ablation_relations");

  ShapeChecks checks;
  checks.check("full relations beat a single relation", mean[0] < mean[2]);
  checks.check("edge types alone already help vs single relation",
               mean[1] < mean[2] + 0.01);
  checks.summary();
  std::cout << "total wall time: " << TextTable::num(total.seconds(), 1)
            << "s\n";
  return 0;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
