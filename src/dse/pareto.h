// Multi-objective Pareto-front extraction over QoR vectors.
//
// All axes minimize (DSP/LUT/FF/CP are costs). A point is on the front iff
// no other point dominates it. Deterministic tie-breaking: points with
// byte-identical coordinate vectors are represented on the front once, by
// the lowest index — so the front is a pure function of the input order,
// never of scan order or scheduling (the dse/ determinism contract).
#pragma once

#include <vector>

namespace gnnhls {

/// True iff `a` dominates `b`: a <= b on every axis and a < b on at least
/// one. Equal vectors do not dominate each other. Throws on axis mismatch.
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Indices of the non-dominated points, ascending. Exact duplicates keep
/// only their first occurrence. Every point must have the same number of
/// axes (>= 1). O(n^2) pairwise scan — candidate sets are bench-sized.
std::vector<int> pareto_front(const std::vector<std::vector<double>>& points);

}  // namespace gnnhls
