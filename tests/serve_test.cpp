// serve/ subsystem tests: the ServingBatcher's determinism contract (served
// predictions bit-identical to sequential QorPredictor::predict), the
// single-request and empty-window paths, concurrent submitters, and clean
// shutdown with in-flight requests.
#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/serving_batcher.h"

namespace gnnhls {
namespace {

std::vector<Sample> small_corpus(int n, std::uint64_t seed) {
  SyntheticDatasetConfig dcfg;
  dcfg.kind = GraphKind::kDfg;
  dcfg.num_graphs = n;
  dcfg.seed = seed;
  dcfg.progen.min_ops = 8;
  dcfg.progen.max_ops = 24;
  return build_synthetic_dataset(dcfg);
}

/// One quickly-fitted predictor shared by every test: serving is inference
/// only, so a few epochs on a small corpus exercise the full contract.
struct ServeFixture {
  std::vector<Sample> samples = small_corpus(36, 515);
  SplitIndices split = split_80_10_10(static_cast<int>(samples.size()), 3);
  QorPredictor predictor;

  ServeFixture() : predictor(Approach::kOffTheShelf, model_cfg(), train_cfg()) {
    predictor.fit(samples, split, Metric::kLut);
  }

  static ModelConfig model_cfg() {
    ModelConfig mc;
    mc.kind = GnnKind::kRgcn;
    mc.hidden = 16;
    mc.layers = 2;
    return mc;
  }
  static TrainConfig train_cfg() {
    TrainConfig tc;
    tc.epochs = 3;
    tc.lr = 1e-2F;
    tc.batch_size = 4;
    tc.seed = 5;
    return tc;
  }
};

ServeFixture& fixture() {
  static ServeFixture* f = new ServeFixture();  // fit once per test binary
  return *f;
}

// ----- core batched entry point -----

TEST(PredictManyTest, BitIdenticalToSequentialPredict) {
  ServeFixture& fx = fixture();
  std::vector<const Sample*> parts;
  for (const Sample& s : fx.samples) parts.push_back(&s);
  const std::vector<double> batched = fx.predictor.predict_many(parts);
  ASSERT_EQ(batched.size(), fx.samples.size());
  for (std::size_t i = 0; i < fx.samples.size(); ++i) {
    EXPECT_EQ(batched[i], fx.predictor.predict(fx.samples[i])) << "sample "
                                                               << i;
  }
}

TEST(PredictManyTest, EmptyInputReturnsEmpty) {
  EXPECT_TRUE(fixture().predictor.predict_many({}).empty());
}

TEST(PredictManyTest, HierarchicalPathBitIdentical) {
  // The -I self-inferred path owns per-sample classifier-annotated feature
  // matrices instead of reading the FeatureCache; the batched union must
  // still reproduce the solo forward bit-for-bit.
  const auto samples = small_corpus(24, 929);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 3);
  TrainConfig tc = ServeFixture::train_cfg();
  tc.epochs = 2;
  QorPredictor predictor(Approach::kKnowledgeInfused,
                         ServeFixture::model_cfg(), tc);
  predictor.fit(samples, split, Metric::kFf);
  std::vector<const Sample*> parts;
  for (int i : split.test) parts.push_back(&samples[static_cast<size_t>(i)]);
  const std::vector<double> batched = predictor.predict_many(parts);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(batched[i], predictor.predict(*parts[i]));
  }
}

// ----- ServingBatcher -----

TEST(ServingBatcherTest, ServedPredictionsBitIdenticalToSequential) {
  ServeFixture& fx = fixture();
  ServeConfig sc;
  sc.max_batch = 8;
  sc.batch_window_us = 500;
  ServingBatcher batcher(fx.predictor, sc);

  std::vector<std::future<double>> futures;
  for (const Sample& s : fx.samples) futures.push_back(batcher.submit(s));
  for (std::size_t i = 0; i < fx.samples.size(); ++i) {
    EXPECT_EQ(futures[i].get(), fx.predictor.predict(fx.samples[i]))
        << "sample " << i;
  }
  const ServeStats st = batcher.stats();
  EXPECT_EQ(st.submitted, fx.samples.size());
  EXPECT_EQ(st.completed, fx.samples.size());
  EXPECT_LE(st.max_batch_seen, sc.max_batch);
  EXPECT_EQ(st.flush_full + st.flush_timeout + st.flush_drain, st.batches);
}

TEST(ServingBatcherTest, SingleRequestFlushesOnWindowTimeout) {
  ServeFixture& fx = fixture();
  ServeConfig sc;
  sc.max_batch = 64;  // far above the traffic: only the timer can flush
  sc.batch_window_us = 100;
  ServingBatcher batcher(fx.predictor, sc);
  std::future<double> f = batcher.submit(fx.samples[0]);
  EXPECT_EQ(f.get(), fx.predictor.predict(fx.samples[0]));
  const ServeStats st = batcher.stats();
  EXPECT_EQ(st.batches, 1U);
  EXPECT_EQ(st.flush_timeout, 1U);
  EXPECT_EQ(st.max_batch_seen, 1);
}

TEST(ServingBatcherTest, ZeroWindowServesImmediately) {
  ServeFixture& fx = fixture();
  ServeConfig sc;
  sc.max_batch = 8;
  sc.batch_window_us = 0;  // "never wait" — worker serves whatever is queued
  ServingBatcher batcher(fx.predictor, sc);
  for (int round = 0; round < 3; ++round) {
    std::future<double> f = batcher.submit(fx.samples[0]);
    EXPECT_EQ(f.get(), fx.predictor.predict(fx.samples[0]));
  }
  EXPECT_EQ(batcher.stats().completed, 3U);
}

TEST(ServingBatcherTest, IdleShutdownServesNothing) {
  ServeFixture& fx = fixture();
  ServingBatcher batcher(fx.predictor);
  batcher.shutdown();  // no traffic: worker must exit without a forward
  const ServeStats st = batcher.stats();
  EXPECT_EQ(st.submitted, 0U);
  EXPECT_EQ(st.batches, 0U);
  EXPECT_EQ(st.avg_batch(), 0.0);
}

TEST(ServingBatcherTest, ConcurrentSubmittersAllBitIdentical) {
  ServeFixture& fx = fixture();
  ServeConfig sc;
  sc.max_batch = 8;
  sc.batch_window_us = 300;
  ServingBatcher batcher(fx.predictor, sc);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kPerThread; ++r) {
        const Sample& s =
            fx.samples[static_cast<std::size_t>((t * 7 + r * 3) %
                                                fx.samples.size())];
        if (batcher.submit(s).get() != fx.predictor.predict(s)) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServeStats st = batcher.stats();
  EXPECT_EQ(st.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(st.completed, st.submitted);
}

TEST(ServingBatcherTest, BlockingPredictManyMatchesSequential) {
  ServeFixture& fx = fixture();
  ServingBatcher batcher(fx.predictor);
  std::vector<const Sample*> parts;
  for (int i : fx.split.test) {
    parts.push_back(&fx.samples[static_cast<std::size_t>(i)]);
  }
  const std::vector<double> served = batcher.predict_many(parts);
  ASSERT_EQ(served.size(), parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(served[i], fx.predictor.predict(*parts[i]));
  }
  EXPECT_TRUE(batcher.predict_many({}).empty());
}

TEST(ServingBatcherTest, ShutdownDrainsInFlightRequests) {
  ServeFixture& fx = fixture();
  ServeConfig sc;
  sc.max_batch = 4;
  sc.batch_window_us = 50'000;  // long window: requests are queued when
                                // shutdown lands, not yet served
  ServingBatcher batcher(fx.predictor, sc);
  std::vector<std::future<double>> futures;
  for (const Sample& s : fx.samples) futures.push_back(batcher.submit(s));
  batcher.shutdown();
  for (std::size_t i = 0; i < fx.samples.size(); ++i) {
    // Every accepted request is answered, and with the exact sequential
    // value — shutdown changes scheduling, never predictions.
    EXPECT_EQ(futures[i].get(), fx.predictor.predict(fx.samples[i]));
  }
  const ServeStats st = batcher.stats();
  EXPECT_EQ(st.completed, fx.samples.size());
}

TEST(ServingBatcherTest, SubmitAfterShutdownFailsFast) {
  ServeFixture& fx = fixture();
  ServingBatcher batcher(fx.predictor);
  batcher.shutdown();
  batcher.shutdown();  // idempotent
  std::future<double> f = batcher.submit(fx.samples[0]);
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_EQ(batcher.stats().submitted, 0U);
}

TEST(ServingBatcherTest, RejectsBadConfig) {
  ServeFixture& fx = fixture();
  ServeConfig sc;
  sc.max_batch = 0;
  EXPECT_THROW(ServingBatcher(fx.predictor, sc), std::invalid_argument);
  sc.max_batch = 1;
  sc.batch_window_us = -1;
  EXPECT_THROW(ServingBatcher(fx.predictor, sc), std::invalid_argument);
}

}  // namespace
}  // namespace gnnhls
