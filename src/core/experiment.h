// Experiment protocol (paper §5.1) and a parallel job runner for the bench
// harness.
//
// "Each model is trained with five runs using different random number seeds
// and we report the average of three with least validation error" —
// run_regression_experiment implements exactly that (run/keep counts are
// configurable so the smoke-scale benches can use 3/2).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/predictor.h"

namespace gnnhls {

struct RunProtocol {
  int runs = 3;       // paper: 5
  int keep_best = 2;  // paper: 3
};

struct ExperimentSpec {
  GnnKind kind = GnnKind::kRgcn;
  Approach approach = Approach::kOffTheShelf;
  Metric metric = Metric::kLut;
  ModelConfig model;
  TrainConfig train;
  RunProtocol protocol;
};

struct ExperimentResult {
  double test_mape = 0.0;
  /// MAPE on the optional transfer/generalization set (Table 5 real cases).
  double transfer_mape = 0.0;
};

/// Trains `protocol.runs` predictors with distinct seeds, keeps the
/// `keep_best` runs with lowest validation MAPE, and averages their test
/// MAPE (and transfer MAPE if a transfer set is given).
ExperimentResult run_regression_experiment(
    const ExperimentSpec& spec, const std::vector<Sample>& samples,
    const SplitIndices& split,
    const std::vector<Sample>* transfer_set = nullptr);

struct NodeExperimentResult {
  NodeClassifierScores test;
  NodeClassifierScores transfer;
};

/// Same protocol for the node-level classification task (Table 3).
NodeExperimentResult run_node_experiment(
    GnnKind kind, const ModelConfig& model, const TrainConfig& train,
    const RunProtocol& protocol, const std::vector<Sample>& samples,
    const SplitIndices& split,
    const std::vector<Sample>* transfer_set = nullptr);

/// Runs jobs on `threads` worker threads; rethrows the first exception.
void run_parallel(std::vector<std::function<void()>> jobs, int threads);

}  // namespace gnnhls
