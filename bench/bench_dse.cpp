// Design-space exploration bench: ranking quality and exploration
// throughput of the dse/ engine (the workload the paper's fast QoR
// prediction exists to serve).
//
// Trains LUT + FF predictors on a synthetic CDFG corpus, builds a gemm
// design space of >= --dse-points candidates (unroll x bitwidth x clock
// knobs) and reports:
//
//   * ranking quality — Spearman rank correlation of predicted vs
//     ground-truth QoR over the exhaustive sweep (the fidelity that decides
//     whether the predictor can drive pruning);
//   * successive halving vs exhaustive — ground-truth HLS invocations
//     (budget <= 25% of the sweep via --dse-topk), whether the sweep's
//     true top-1 survives the predictor-guided pruning, and whether the
//     surviving front matches the exhaustive front;
//   * exploration throughput — candidates/sec of a full successive-halving
//     run, sweeping --threads (lowering + synthesis shards on the kernel
//     pool) x --max-batch (micro-batch size of the serving-path scorer).
//
// Hard gates (exit 1): scoring through the ServingBatcher must be
// bit-identical to direct predict_many (the serving contract), and
// successive halving must respect its ground-truth budget. The
// data-dependent quality checks (Spearman level, top-1 recovery, front
// agreement) are report-only here — examples/design_space_exploration.cpp
// gates front agreement at its fixed seed as the CI quality smoke.
//
// --smoke shrinks everything to a CI-sized run (also used by the Release
// bench-smoke job).
#include <cstring>

#include "bench_common.h"
#include "dse/explorer.h"

namespace gnnhls::bench {
namespace {

struct TrainedModels {
  QorPredictor lut;
  QorPredictor ff;
};

TrainedModels train_models(const BenchConfig& cfg,
                           const std::vector<Sample>& corpus) {
  const SplitIndices split =
      split_80_10_10(static_cast<int>(corpus.size()), cfg.seed);
  ModelConfig mc = model_config(cfg);
  mc.kind = GnnKind::kRgcn;
  TrainConfig tc = train_config(cfg);
  TrainedModels models{QorPredictor(Approach::kOffTheShelf, mc, tc),
                       QorPredictor(Approach::kOffTheShelf, mc, tc)};
  Timer t;
  const double lut_val = models.lut.fit(corpus, split, Metric::kLut);
  const double ff_val = models.ff.fit(corpus, split, Metric::kFf);
  std::cout << "  trained LUT (val MAPE " << TextTable::pct(lut_val)
            << ") + FF (val MAPE " << TextTable::pct(ff_val) << ") in "
            << TextTable::num(t.seconds(), 1) << "s\n";
  return models;
}

double true_of(const DseCandidate& c, Metric m) {
  return metric_of(c.sample.truth, m);
}

double predicted_of(const DseCandidate& c, Metric m) {
  return c.predicted[static_cast<std::size_t>(m)];
}

double rank_quality(const DseResult& exhaustive, Metric m) {
  std::vector<double> predicted, truth;
  for (const DseCandidate& c : exhaustive.candidates) {
    predicted.push_back(predicted_of(c, m));
    truth.push_back(true_of(c, m));
  }
  return spearman_rank_correlation(predicted, truth);
}

bool same_exploration(const DseResult& a, const DseResult& b) {
  if (a.candidates.size() != b.candidates.size()) return false;
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    if (a.candidates[i].predicted != b.candidates[i].predicted) return false;
    if (a.candidates[i].synthesized != b.candidates[i].synthesized) {
      return false;
    }
  }
  return a.front == b.front && a.predicted_front == b.predicted_front &&
         a.best == b.best && a.survivors_per_round == b.survivors_per_round;
}

int run(int argc, const char* const* argv) {
  // --smoke (CI scale) is bench_dse-specific: strip it before the shared
  // parser so it is not reported as an unknown flag.
  std::vector<const char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const auto has_flag = [&args](const std::string& name) {
    for (const char* a : args) {
      if (name == a) return true;  // "--name value" form
      if (std::strncmp(a, name.c_str(), name.size()) == 0 &&
          a[name.size()] == '=') {
        return true;  // "--name=value" form
      }
    }
    return false;
  };
  BenchConfig cfg =
      parse_bench_config(static_cast<int>(args.size()), args.data());
  if (smoke) {
    // A preset, not an override: every explicit flag wins.
    const auto preset = [&has_flag](const char* flag, int& field, int value) {
      if (!has_flag(flag)) field = value;
    };
    preset("--cdfg-graphs", cfg.cdfg_graphs, 48);
    preset("--hidden", cfg.hidden, 16);
    preset("--layers", cfg.layers, 2);
    preset("--epochs", cfg.epochs, 6);
    preset("--batch-size", cfg.batch_size, 8);
    preset("--dse-points", cfg.dse_points, 16);
    preset("--threads", cfg.threads, 2);
  }
  print_header("DSE: model-in-the-loop design-space exploration", cfg);

  std::cout << "\n-- corpus + models --\n";
  const std::vector<Sample> corpus = build_cdfg(cfg);
  print_dataset_line("synthetic CDFG", corpus);
  const TrainedModels models = train_models(cfg, corpus);
  const PredictorScorer direct(
      {{Metric::kLut, &models.lut}, {Metric::kFf, &models.ff}});

  const DesignSpace space =
      make_kernel_design_space("gemm", grid_with_at_least(cfg.dse_points));
  const int n = static_cast<int>(space.size());
  // --dse-topk=0 keeps the default budget (and its hard gate below); only
  // a positive override hands budget responsibility to the user.
  const bool explicit_topk = cfg.dse_topk > 0;
  DseConfig dse;
  dse.front_metrics = {Metric::kLut, Metric::kFf};
  dse.rank_metric = Metric::kLut;
  dse.top_k = explicit_topk ? cfg.dse_topk : std::max(1, n / 4);
  dse.arena = cfg.arena;
  const Explorer explorer(space, direct, dse);
  std::cout << "\n-- design space --\n  gemm, " << n
            << " candidates (unroll x bitwidth x clock x uncertainty), "
               "ground-truth budget top-k="
            << dse.top_k << "\n";

  // ----- ranking quality: exhaustive ground truth vs predictions -----
  Timer exh_timer;
  const DseResult exh = explorer.exhaustive();
  const double exh_s = exh_timer.seconds();
  const DseResult sh = explorer.successive_halving();
  std::cout << "\n-- ranking quality (exhaustive sweep, " << exh.hls_runs
            << " HLS runs in " << TextTable::num(exh_s, 2) << "s) --\n";
  TextTable quality({"metric", "Spearman rho (pred vs truth)"});
  for (Metric m : dse.front_metrics) {
    quality.add_row({metric_name(m), TextTable::num(rank_quality(exh, m), 3)});
  }
  std::cout << quality.to_string();

  // ----- successive halving vs exhaustive -----
  std::string trace;
  for (std::size_t i = 0; i < sh.survivors_per_round.size(); ++i) {
    trace += (i ? " -> " : "") + std::to_string(sh.survivors_per_round[i]);
  }
  std::cout << "\n-- successive halving (survivors " << trace << ") --\n  "
            << sh.hls_runs << "/" << exh.hls_runs
            << " ground-truth HLS runs, true front size "
            << exh.front.size() << ", recovered front size " << sh.front.size()
            << "\n";

  ShapeChecks checks;
  // With the default budget (--dse-topk=0 -> points/4) this is a hard
  // structural invariant; an explicit --dse-topk is the user's choice and
  // the check turns report-only.
  const bool budget_ok = sh.hls_runs * 4 <= exh.hls_runs;
  checks.check("halving HLS budget <= 25% of exhaustive", budget_ok);
  checks.check("halving recovers the exhaustive true top-1",
               sh.best == exh.best);
  checks.check("halving front == exhaustive front", sh.front == exh.front);
  checks.check("Spearman(LUT) >= 0.7 at this scale",
               rank_quality(exh, Metric::kLut) >= 0.7);

  // ----- serving-path bit-identity (hard gate) -----
  SchedulerConfig sc;
  sc.max_batch = cfg.max_batch;
  sc.batch_window_us = cfg.batch_window_us;
  sc.arena = cfg.arena;
  const ServingScorer serving(
      {{Metric::kLut, &models.lut}, {Metric::kFf, &models.ff}}, sc);
  const Explorer served_explorer(space, serving, dse);
  const bool serving_identical =
      same_exploration(sh, served_explorer.successive_halving());
  checks.check("shared-scheduler scoring bit-identical to predict_many",
               serving_identical);

  // ----- exploration throughput: --threads x --max-batch -----
  std::cout << "\n-- exploration throughput (full successive-halving runs, "
               "candidates/sec) --\n";
  std::vector<int> thread_counts = {1};
  if (cfg.threads > 1) thread_counts.push_back(cfg.threads);
  std::vector<int> batch_sizes = {1};
  if (cfg.max_batch > 1) batch_sizes.push_back(cfg.max_batch);
  TextTable throughput({"threads", "max-batch", "wall (s)", "cand/s"});
  BenchJsonLog json_log;
  for (Metric m : dse.front_metrics) {
    json_log.add(std::string("spearman ") + metric_name(m),
                 rank_quality(exh, m), "rho");
  }
  bool sweep_identical = true;
  for (int threads : thread_counts) {
    ThreadPool::set_global_threads(threads);
    for (int max_batch : batch_sizes) {
      SchedulerConfig row_sc;
      row_sc.max_batch = max_batch;
      row_sc.batch_window_us = cfg.batch_window_us;
      row_sc.arena = cfg.arena;
      const ServingScorer row_scorer(
          {{Metric::kLut, &models.lut}, {Metric::kFf, &models.ff}}, row_sc);
      const Explorer row_explorer(space, row_scorer, dse);
      Timer t;
      const DseResult r = row_explorer.successive_halving();
      const double wall = t.seconds();
      // Every row must reproduce the baseline exploration bit-for-bit —
      // the sweep varies exactly the knobs (pool width, micro-batch size)
      // the determinism contract says are value-neutral.
      if (!same_exploration(sh, r)) sweep_identical = false;
      throughput.add_row(
          {std::to_string(threads), std::to_string(max_batch),
           TextTable::num(wall, 3),
           TextTable::num(static_cast<double>(n) / wall, 1)});
      json_log.add("halving threads=" + std::to_string(threads) +
                       " max-batch=" + std::to_string(max_batch),
                   static_cast<double>(n) / wall, "cand/s");
    }
  }
  ThreadPool::set_global_threads(1);  // bench harness convention
  checks.check("sweep rows bit-identical across threads x max-batch",
               sweep_identical);
  std::cout << throughput.to_string() << "\n";
  write_bench_json(cfg, json_log, "dse");

  checks.summary();
  const bool hard_ok =
      serving_identical && sweep_identical && (explicit_topk || budget_ok);
  if (!hard_ok) {
    std::cout << "FAIL: a hard DSE invariant (serving/sweep bit-identity or "
                 "the default ground-truth budget) was violated\n";
    return 1;
  }
  std::cout << "hard invariants hold: served scoring bit-identical, "
               "ground-truth budget respected.\n";
  return 0;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
