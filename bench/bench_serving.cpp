// Serving bench: closed-loop latency/throughput across the micro-batching
// knobs, plus an open-loop saturation sweep of the shared-queue scheduler.
//
// Part 1 (closed loop): fits one off-the-shelf RGCN predictor, then drives
// a ServingBatcher with --clients submitter threads, each submitting
// --requests samples one at a time and blocking on the future (the DSE
// searcher pattern: every thread holds exactly one in-flight candidate).
// Expected shape: micro-batching (max-batch > 1) wins graphs/sec over the
// unbatched baseline because one GraphBatch forward amortizes tape
// construction over the whole batch, at the price of the queueing delay the
// window introduces.
//
// Part 2 (open loop): seeded Poisson arrivals sweep offered load at
// 0.5x/1x/2x/4x of a base rate (--arrival-rate, default the measured
// sequential capacity), scoring all four metrics round-robin with a
// per-request deadline (--deadline-us). Two arms at equal thread budget:
// one ServingBatcher per metric (the historical design: 4 worker threads,
// no deadlines — every request is answered, eventually) vs ONE shared-queue
// ServingScheduler carrying all 4 models (same number of workers,
// deadline-aware shedding, adaptive windows). Reports p50/p99/p999 latency,
// goodput (answers within deadline per second) and shed rate per rate
// point. The expected shape — and the reason the scheduler exists — is
// that past saturation the batcher arm's goodput collapses (unbounded
// queueing answers everything late) while the scheduler sheds expired
// requests and keeps serving fresh ones inside their deadline.
//
// Part 2.5 (socket arm): the same open-loop Poisson traffic replayed over
// a real loopback TCP connection through serve/tcp_endpoint.h — every
// request is text-encoded, framed, sent, decoded server-side and submitted
// to the shared scheduler; responses return over the same socket. Reports
// socket-path goodput and client-observed RTT percentiles next to the
// in-process arms (the delta IS the wire tax), plus the endpoint's
// wire-level counters. Served values must stay bit-identical through the
// whole encode/frame/decode/schedule path — gated like every other
// bit-identity check.
//
// Part 3 (hard gate): scheduled predictions must be bit-identical to
// sequential QorPredictor::predict across batch compositions for all 14
// encoder kinds. Like the closed-loop bit-identity check, main() exits 1 on
// any divergence (CI runs this as a smoke gate). All throughput/shape
// checks stay report-only — they are load-dependent and must not flake CI.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <future>
#include <thread>

#include "bench_common.h"
#include "dataset/serialize.h"
#include "gnn/encoders.h"
#include "serve/scheduler.h"
#include "serve/serving_batcher.h"
#include "serve/tcp_endpoint.h"
#include "serve/wire.h"

namespace gnnhls::bench {
namespace {

struct LoadResult {
  double wall_s = 0.0;
  double graphs_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  ServeStats stats;
  bool bit_identical = true;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

/// Closed-loop load: `clients` threads, one outstanding request each.
/// `expected[i]` is the sequential predict() value for samples[idx[i]].
LoadResult run_load(const QorPredictor& predictor,
                    const std::vector<Sample>& samples,
                    const std::vector<int>& idx,
                    const std::vector<double>& expected, ServeConfig sc,
                    int clients, int requests) {
  ServingBatcher batcher(predictor, sc);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<int> mismatches{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(requests));
      for (int r = 0; r < requests; ++r) {
        const std::size_t pick =
            static_cast<std::size_t>(c * 131 + r * 7) % idx.size();
        const Sample& s = samples[static_cast<std::size_t>(idx[pick])];
        Timer t;
        const double served = batcher.submit(s).get();
        lat.push_back(t.seconds() * 1e6);
        if (served != expected[pick]) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  LoadResult res;
  res.wall_s = wall.seconds();
  res.stats = batcher.stats();
  res.bit_identical = mismatches.load() == 0;
  const double total =
      static_cast<double>(clients) * static_cast<double>(requests);
  res.graphs_per_s = res.wall_s > 0.0 ? total / res.wall_s : 0.0;
  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(total));
  for (auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  res.p50_us = percentile(all, 0.50);
  res.p99_us = percentile(all, 0.99);
  return res;
}

// ----- open-loop saturation sweep -----

/// One precomputed open-loop request: fires at `at_us` (relative to the
/// phase start), scores `metric` on idx[pick].
struct Arrival {
  std::int64_t at_us;
  int metric;
  std::size_t pick;
};

/// Seeded Poisson schedule: exponential inter-arrival gaps at `rate_per_s`,
/// metrics round-robin, sample picks deterministic. The same (seed, rate,
/// n) always produces the same offered load, so both arms and repeat runs
/// replay identical traffic.
std::vector<Arrival> poisson_schedule(std::uint64_t seed, double rate_per_s,
                                      int n, std::size_t num_picks) {
  Rng rng(seed);
  std::vector<Arrival> arrivals;
  arrivals.reserve(static_cast<std::size_t>(n));
  double t_us = 0.0;
  const double rate_per_us = rate_per_s / 1e6;
  for (int i = 0; i < n; ++i) {
    // Inverse-CDF exponential sample; uniform() is in [0, 1) so 1-u > 0.
    t_us += -std::log(1.0 - rng.uniform()) / rate_per_us;
    arrivals.push_back(Arrival{static_cast<std::int64_t>(t_us),
                               i % kNumMetrics,
                               static_cast<std::size_t>(i * 7) % num_picks});
  }
  return arrivals;
}

struct OpenLoopResult {
  double wall_s = 0.0;
  double goodput_per_s = 0.0;  // answers within deadline / sec
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double shed_rate = 0.0;  // shed / offered
  bool bit_identical = true;
};

void fill_percentiles(std::vector<double>& lat, OpenLoopResult& r) {
  r.p50_us = percentile(lat, 0.50);
  r.p99_us = percentile(lat, 0.99);
  r.p999_us = percentile(lat, 0.999);
}

/// Replays `arrivals` against per-metric predictors through `submit`, which
/// hides which arm is serving. Pacing: one submitter thread sleeps until
/// each arrival time — open loop, so it never waits for answers.
template <typename SubmitFn>
double replay_arrivals(const std::vector<Arrival>& arrivals,
                       SubmitFn&& submit) {
  Timer wall;
  const auto start = std::chrono::steady_clock::now();
  for (const Arrival& a : arrivals) {
    std::this_thread::sleep_until(start + std::chrono::microseconds(a.at_us));
    submit(a);
  }
  return wall.seconds();  // submission time only; callers add drain time
}

/// Arm A: one ServingBatcher (worker thread) per metric, no deadlines —
/// the pre-scheduler design. Every request is served; goodput counts the
/// ones that happened to finish within `deadline_us`.
OpenLoopResult run_open_loop_batchers(
    const std::vector<const QorPredictor*>& models,
    const std::vector<Sample>& samples, const std::vector<int>& idx,
    const std::vector<std::vector<double>>& expected,
    const std::vector<Arrival>& arrivals, ServeConfig sc,
    std::int64_t deadline_us) {
  sc.record_latencies = true;
  std::vector<std::unique_ptr<ServingBatcher>> batchers;
  for (const QorPredictor* m : models) {
    batchers.push_back(std::make_unique<ServingBatcher>(*m, sc));
  }
  std::vector<std::pair<const Arrival*, std::future<double>>> futures;
  futures.reserve(arrivals.size());
  Timer wall;
  replay_arrivals(arrivals, [&](const Arrival& a) {
    const Sample& s = samples[static_cast<std::size_t>(idx[a.pick])];
    futures.emplace_back(
        &a, batchers[static_cast<std::size_t>(a.metric)]->submit(s));
  });
  for (auto& b : batchers) b->shutdown();  // drain: everything answered
  OpenLoopResult r;
  r.wall_s = wall.seconds();
  std::vector<double> lat;
  std::uint64_t in_deadline = 0;
  for (auto& [a, f] : futures) {
    const double served = f.get();
    if (served !=
        expected[static_cast<std::size_t>(a->metric)][a->pick]) {
      r.bit_identical = false;
    }
  }
  for (auto& b : batchers) {
    for (double l : b->take_latencies_us()) {
      lat.push_back(l);
      if (static_cast<std::int64_t>(l) <= deadline_us) ++in_deadline;
    }
  }
  fill_percentiles(lat, r);
  r.goodput_per_s =
      r.wall_s > 0.0 ? static_cast<double>(in_deadline) / r.wall_s : 0.0;
  r.shed_rate = 0.0;  // the batcher arm never sheds — it only answers late
  return r;
}

/// Arm B: ONE shared-queue scheduler carrying every metric's model, same
/// worker-thread budget, per-request deadlines. Expired requests are shed;
/// goodput counts answers within deadline.
OpenLoopResult run_open_loop_scheduler(
    const std::vector<const QorPredictor*>& models,
    const std::vector<Sample>& samples, const std::vector<int>& idx,
    const std::vector<std::vector<double>>& expected,
    const std::vector<Arrival>& arrivals, SchedulerConfig sc,
    std::int64_t deadline_us, int priority) {
  sc.record_latencies = true;
  ServingScheduler sched(models, sc);
  SubmitOptions opts;
  opts.deadline_us = deadline_us;
  opts.priority = priority;
  std::vector<std::pair<const Arrival*, std::future<double>>> futures;
  futures.reserve(arrivals.size());
  Timer wall;
  replay_arrivals(arrivals, [&](const Arrival& a) {
    const Sample& s = samples[static_cast<std::size_t>(idx[a.pick])];
    futures.emplace_back(&a, sched.submit(a.metric, s, opts).future);
  });
  sched.shutdown();  // drain: serves what is still live, sheds the expired
  OpenLoopResult r;
  r.wall_s = wall.seconds();
  for (auto& [a, f] : futures) {
    try {
      const double served = f.get();
      if (served !=
          expected[static_cast<std::size_t>(a->metric)][a->pick]) {
        r.bit_identical = false;
      }
    } catch (const SchedReject&) {
      // Shed under load — counted below from the scheduler's stats.
    }
  }
  const SchedStats st = sched.stats();
  std::vector<double> lat = sched.take_latencies_us();
  fill_percentiles(lat, r);
  r.goodput_per_s =
      r.wall_s > 0.0
          ? static_cast<double>(st.completed_in_deadline) / r.wall_s
          : 0.0;
  r.shed_rate = arrivals.empty()
                    ? 0.0
                    : static_cast<double>(st.shed_total()) /
                          static_cast<double>(arrivals.size());
  return r;
}

/// Arm C (socket): the same offered load replayed over a loopback TCP
/// connection — one paced sender thread (open loop, never waits for
/// answers) and one receiver thread collecting response frames until the
/// endpoint's drain closes the stream. request_id indexes the arrival, so
/// every response maps back to its (metric, pick) for the bit-identity
/// check and its client-observed RTT.
struct SocketResult {
  OpenLoopResult ol;
  WireStats wire;
};

SocketResult run_open_loop_socket(
    const std::vector<const QorPredictor*>& models,
    const std::vector<Sample>& samples, const std::vector<int>& idx,
    const std::vector<std::vector<double>>& expected,
    const std::vector<Arrival>& arrivals, SchedulerConfig sc,
    std::int64_t deadline_us, int priority, int port, int max_inflight) {
  ServingScheduler sched(models, sc);
  TcpEndpointConfig ecfg;
  ecfg.port = port;
  ecfg.max_inflight = max_inflight;
  ecfg.obs = sc.obs;  // same knobs as the scheduler it fronts
  TcpEndpoint ep(sched, ecfg);

  // Payload encoding is per-sample, not per-request — encode each test
  // sample once and reuse (the server still decodes every frame).
  std::vector<std::string> payloads;
  payloads.reserve(idx.size());
  for (int i : idx) {
    payloads.push_back(
        encode_sample_payload(samples[static_cast<std::size_t>(i)]));
  }

  TcpClient client(ep.port());
  const auto epoch = std::chrono::steady_clock::now();
  const auto us_since_epoch = [&epoch] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  };
  std::vector<std::int64_t> sent_us(arrivals.size(), 0);
  std::vector<ResponseFrame> responses;
  std::vector<std::int64_t> recv_us;
  responses.reserve(arrivals.size());
  recv_us.reserve(arrivals.size());
  std::thread receiver([&] {
    ResponseFrame resp;
    while (client.recv_response(resp)) {
      responses.push_back(resp);
      recv_us.push_back(us_since_epoch());
    }
  });

  Timer wall;
  std::size_t next_id = 0;
  replay_arrivals(arrivals, [&](const Arrival& a) {
    RequestFrame req;
    req.request_id = next_id;
    req.model = static_cast<std::uint32_t>(a.metric);
    req.priority = priority;
    req.deadline_us = deadline_us;
    req.payload = payloads[a.pick];
    sent_us[next_id] = us_since_epoch();
    ++next_id;
    (void)client.send_request(req);
  });
  // Half-close: the endpoint drains everything it accepted, answers, then
  // FINs — the receiver exits on that EOF with every response in hand.
  client.shutdown_write();
  receiver.join();
  SocketResult res;
  res.ol.wall_s = wall.seconds();
  ep.stop();
  res.wire = ep.stats();
  sched.shutdown();

  std::vector<double> lat;
  lat.reserve(responses.size());
  std::uint64_t served_ok = 0;
  std::uint64_t shed = 0;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const ResponseFrame& r = responses[i];
    const Arrival& a = arrivals[static_cast<std::size_t>(r.request_id)];
    if (r.result == WireResult::kOk) {
      ++served_ok;
      lat.push_back(static_cast<double>(
          recv_us[i] - sent_us[static_cast<std::size_t>(r.request_id)]));
      if (r.prediction != expected[static_cast<std::size_t>(a.metric)][a.pick]) {
        res.ol.bit_identical = false;
      }
    } else {
      ++shed;  // expired/over-capacity/over-limit: rejected on the wire
    }
  }
  fill_percentiles(lat, res.ol);
  // Goodput uses the server-side deadline accounting (same definition as
  // the in-process scheduler arm, so the delta is purely the wire path).
  const SchedStats st = sched.stats();
  res.ol.goodput_per_s =
      res.ol.wall_s > 0.0
          ? static_cast<double>(st.completed_in_deadline) / res.ol.wall_s
          : 0.0;
  res.ol.shed_rate = arrivals.empty()
                         ? 0.0
                         : static_cast<double>(shed) /
                               static_cast<double>(arrivals.size());
  (void)served_ok;
  return res;
}

/// Part 3: the determinism gate over the whole encoder zoo. A small fixed
/// corpus per kind (independent of --scale so the gate cost is constant),
/// scheduled through virtual-time mode across three batch compositions —
/// solo forwards, uneven splits, one full union. Returns false on any
/// value divergence from sequential predict().
bool scheduled_bit_identity_all_kinds() {
  SyntheticDatasetConfig dcfg;
  dcfg.kind = GraphKind::kDfg;
  dcfg.num_graphs = 18;
  dcfg.seed = 4242;
  dcfg.progen.min_ops = 8;
  dcfg.progen.max_ops = 24;
  const std::vector<Sample> samples = build_synthetic_dataset(dcfg);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 3);
  bool all_ok = true;
  for (GnnKind kind : all_gnn_kinds()) {
    ModelConfig mc;
    mc.kind = kind;
    mc.hidden = 16;
    mc.layers = 2;
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 4;
    tc.seed = 5;
    QorPredictor predictor(Approach::kOffTheShelf, mc, tc);
    predictor.fit(samples, split, Metric::kLut);
    std::vector<double> expected;
    for (const Sample& s : samples) expected.push_back(predictor.predict(s));
    bool kind_ok = true;
    for (const int max_batch : {1, 5, 18}) {
      SchedulerConfig sc;
      sc.virtual_time = true;
      sc.max_batch = max_batch;
      sc.batch_window_us = 0;
      ServingScheduler sched({&predictor}, sc);
      std::vector<std::future<double>> futures;
      for (const Sample& s : samples) {
        futures.push_back(sched.submit(0, s).future);
      }
      while (sched.pump()) {
      }
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if (futures[i].get() != expected[i]) kind_ok = false;
      }
    }
    std::cout << "  " << (kind_ok ? "[PASS] " : "[FAIL] ")
              << gnn_kind_name(kind) << "\n";
    all_ok &= kind_ok;
  }
  return all_ok;
}

int run(int argc, const char* const* argv) {
  const BenchConfig cfg = parse_bench_config(argc, argv);
  print_header("Serving — closed-loop batching + open-loop saturation", cfg);
  // --trace-out captures the open-loop phases as Chrome trace spans
  // (tcp_read/frame_decode/queue_wait/batch_assembly/forward/scatter).
  maybe_start_trace(cfg);
  std::cout << "load: " << cfg.clients << " closed-loop clients x "
            << cfg.requests << " requests, max-batch=" << cfg.max_batch
            << ", batch-window-us=" << cfg.batch_window_us << "\n";

  const std::vector<Sample> samples = build_dfg(cfg);
  print_dataset_line("DFG", samples);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), cfg.seed);

  QorPredictor predictor(Approach::kOffTheShelf, model_config(cfg),
                         train_config(cfg));
  Timer fit_timer;
  const double val = predictor.fit(samples, split, Metric::kLut);
  std::cout << "fit: val MAPE " << TextTable::pct(val) << " in "
            << TextTable::num(fit_timer.seconds(), 1) << "s\n\n";

  // Sequential baseline values (also the bit-identity reference).
  const std::vector<int>& idx = split.test;
  std::vector<double> expected;
  expected.reserve(idx.size());
  for (int i : idx) {
    expected.push_back(predictor.predict(samples[static_cast<std::size_t>(i)]));
  }
  // Timed separately from the expected-value pass (which doubles as
  // warmup), over several passes: this number seeds the open-loop base
  // rate and deadline, so a noisy one-pass measurement would shift every
  // rate point between runs.
  constexpr int kSeqPasses = 3;
  Timer seq_timer;
  for (int pass = 0; pass < kSeqPasses; ++pass) {
    for (int i : idx) {
      (void)predictor.predict(samples[static_cast<std::size_t>(i)]);
    }
  }
  const double seq_per_graph_us =
      seq_timer.seconds() * 1e6 /
      static_cast<double>(idx.size() * kSeqPasses);
  std::cout << "sequential predict(): "
            << TextTable::num(seq_per_graph_us, 1) << " us/graph\n\n";

  struct Row {
    std::string name;
    ServeConfig sc;
  };
  const long w = cfg.batch_window_us;
  const std::vector<Row> rows = {
      {"max-batch=1 (no batching)", {1, 0, cfg.arena}},
      {"max-batch=N, window=0", {cfg.max_batch, 0, cfg.arena}},
      {"max-batch=N, window=W", {cfg.max_batch, w, cfg.arena}},
      {"max-batch=N, window=5W", {cfg.max_batch, 5 * w, cfg.arena}},
  };

  TextTable table({"serving config", "graphs/s", "avg batch", "p50 us",
                   "p99 us", "full/timeout/drain"});
  BenchJsonLog json_log;
  json_log.add("sequential predict us/graph", seq_per_graph_us, "us");
  std::vector<LoadResult> results;
  for (const Row& row : rows) {
    // One warmup pass keeps first-touch allocator noise out of the table.
    run_load(predictor, samples, idx, expected, row.sc, cfg.clients,
             std::max(cfg.requests / 8, 1));
    const LoadResult res = run_load(predictor, samples, idx, expected, row.sc,
                                    cfg.clients, cfg.requests);
    results.push_back(res);
    table.add_row(
        {row.name, TextTable::num(res.graphs_per_s, 1),
         TextTable::num(res.stats.avg_batch(), 2),
         TextTable::num(res.p50_us, 0), TextTable::num(res.p99_us, 0),
         std::to_string(res.stats.flush_full) + "/" +
             std::to_string(res.stats.flush_timeout) + "/" +
             std::to_string(res.stats.flush_drain)});
    json_log.add(row.name, res.graphs_per_s, "graphs/s");
    json_log.add(row.name + " p99", res.p99_us, "us");
  }
  std::cout << table.to_string() << "\n";

  // ----- open-loop saturation sweep: per-metric batchers vs shared
  // scheduler at equal thread budget, all four metrics round-robin -----
  std::cout << "-- open-loop Poisson sweep (4-metric scoring) --\n";
  std::vector<std::unique_ptr<QorPredictor>> extra_models;
  std::vector<const QorPredictor*> models;  // model id == Metric index
  std::vector<std::vector<double>> metric_expected;
  for (int m = 0; m < kNumMetrics; ++m) {
    const Metric metric = static_cast<Metric>(m);
    const QorPredictor* p;
    if (metric == Metric::kLut) {
      p = &predictor;  // reuse the closed-loop fit
    } else {
      extra_models.push_back(std::make_unique<QorPredictor>(
          Approach::kOffTheShelf, model_config(cfg), train_config(cfg)));
      extra_models.back()->fit(samples, split, metric);
      p = extra_models.back().get();
    }
    models.push_back(p);
    std::vector<double> exp_m;
    exp_m.reserve(idx.size());
    for (int i : idx) {
      exp_m.push_back(p->predict(samples[static_cast<std::size_t>(i)]));
    }
    metric_expected.push_back(std::move(exp_m));
  }

  const double base_rate = cfg.arrival_rate > 0.0
                               ? cfg.arrival_rate
                               : 1e6 / seq_per_graph_us;
  // Default deadline: 25x the sequential service time — loose enough that
  // a lightly-loaded batch window plus one forward fits comfortably, tight
  // enough that unbounded FIFO queueing under overload blows it fast (the
  // failure mode the sweep exists to expose).
  const std::int64_t deadline_us =
      cfg.deadline_us > 0
          ? cfg.deadline_us
          : static_cast<std::int64_t>(25.0 * seq_per_graph_us);
  const int open_requests = cfg.clients * cfg.requests;
  const int sched_workers = cfg.workers > 0 ? cfg.workers : kNumMetrics;
  std::cout << "base rate " << TextTable::num(base_rate, 0)
            << " req/s, deadline " << deadline_us << " us, "
            << open_requests << " requests/point; batcher arm: "
            << kNumMetrics << " per-metric workers, scheduler arm: "
            << sched_workers << " shared workers\n";

  ServeConfig batcher_sc;
  batcher_sc.max_batch = cfg.max_batch;
  batcher_sc.batch_window_us = cfg.batch_window_us;
  batcher_sc.arena = cfg.arena;
  batcher_sc.obs = obs_config(cfg);
  SchedulerConfig shared_sc;
  shared_sc.workers = sched_workers;
  shared_sc.max_batch = cfg.max_batch;
  shared_sc.batch_window_us = cfg.batch_window_us;
  shared_sc.adaptive_window = true;
  shared_sc.arena = cfg.arena;
  shared_sc.obs = obs_config(cfg);
  // Admission control is what makes goodput survive saturation: bound the
  // queue at roughly one in-flight batch per worker so an ACCEPTED request
  // waits a bounded time and can still meet its deadline. Overload then
  // sheds at submit (cheap) instead of queueing requests that would only
  // be served late — the unbounded-FIFO failure mode of the batcher arm.
  shared_sc.max_queue =
      static_cast<std::size_t>(sched_workers) *
      static_cast<std::size_t>(cfg.max_batch);

  const std::vector<std::pair<std::string, double>> rate_points = {
      {"0.5x", 0.5}, {"1x", 1.0}, {"2x", 2.0}, {"4x", 4.0}};
  TextTable ol_table({"offered", "arm", "goodput/s", "p50 us", "p99 us",
                      "p999 us", "shed %"});
  bool open_loop_exact = true;
  bool socket_exact = true;
  WireStats socket_wire;  // wire counters from the 1x socket run
  std::vector<std::pair<OpenLoopResult, OpenLoopResult>> ol_results;
  for (std::size_t pi = 0; pi < rate_points.size(); ++pi) {
    const auto& [label, mult] = rate_points[pi];
    const std::vector<Arrival> arrivals =
        poisson_schedule(cfg.seed * 7919 + pi, base_rate * mult,
                         open_requests, idx.size());
    const OpenLoopResult batcher_r = run_open_loop_batchers(
        models, samples, idx, metric_expected, arrivals, batcher_sc,
        deadline_us);
    const OpenLoopResult sched_r = run_open_loop_scheduler(
        models, samples, idx, metric_expected, arrivals, shared_sc,
        deadline_us, cfg.priority);
    open_loop_exact &= batcher_r.bit_identical && sched_r.bit_identical;
    ol_results.emplace_back(batcher_r, sched_r);
    const auto add_rows = [&](const char* arm, const OpenLoopResult& r) {
      ol_table.add_row({label + (" (" + TextTable::num(base_rate * mult, 0) +
                                 "/s)"),
                        arm, TextTable::num(r.goodput_per_s, 1),
                        TextTable::num(r.p50_us, 0),
                        TextTable::num(r.p99_us, 0),
                        TextTable::num(r.p999_us, 0),
                        TextTable::num(r.shed_rate * 100.0, 1)});
      json_log.add("open-loop " + std::string(label) + " " + arm +
                       " goodput",
                   r.goodput_per_s, "graphs/s");
      json_log.add("open-loop " + std::string(label) + " " + arm + " p99",
                   r.p99_us, "us");
      json_log.add("open-loop " + std::string(label) + " " + arm +
                       " shed rate",
                   r.shed_rate, "ratio");
    };
    add_rows("batcher", batcher_r);
    add_rows("shared", sched_r);
    // Socket arm at 1x (the gated goodput row) and 4x (overload behavior
    // through the wire) — identical traffic, real loopback TCP.
    if (label == "1x" || label == "4x") {
      const SocketResult sock = run_open_loop_socket(
          models, samples, idx, metric_expected, arrivals, shared_sc,
          deadline_us, cfg.priority, cfg.port, cfg.max_inflight);
      socket_exact &= sock.ol.bit_identical;
      if (label == "1x") socket_wire = sock.wire;
      add_rows("socket", sock.ol);
    }
  }
  std::cout << ol_table.to_string() << "\n";
  std::cout << "socket wire @1x: " << socket_wire.frames_in << " frames in / "
            << socket_wire.frames_out << " out, "
            << socket_wire.bytes_in << " B in / " << socket_wire.bytes_out
            << " B out, " << socket_wire.decode_errors << " decode errors, "
            << socket_wire.rejects_backpressure << "+"
            << socket_wire.rejects_payload << "+"
            << socket_wire.rejects_sched
            << " rejects (backpressure/payload/sched), "
            << socket_wire.write_failures << " write failures\n\n";
  write_bench_json(cfg, json_log, "serving");

  // ----- 14-kind scheduled bit-identity (hard gate) -----
  std::cout << "-- scheduled == sequential across batch compositions, all "
               "encoder kinds --\n";
  const bool kinds_exact = scheduled_bit_identity_all_kinds();
  std::cout << "\n";

  ShapeChecks checks;
  bool all_exact = true;
  for (const LoadResult& r : results) all_exact &= r.bit_identical;
  checks.check("every served prediction bit-identical to predict()",
               all_exact);
  checks.check("open-loop served predictions bit-identical to predict()",
               open_loop_exact);
  checks.check("socket-served predictions bit-identical to predict()",
               socket_exact);
  checks.check("scheduled == sequential for all 14 encoder kinds",
               kinds_exact);
  if (cfg.max_batch > 1) {
    // Throughput/batch-formation shape: reported like the table benches
    // (timing-dependent, and meaningless when --max-batch=1 collapses the
    // sweep), never gated on.
    double batched_best = 0.0;
    for (std::size_t i = 1; i < results.size(); ++i) {
      batched_best = std::max(batched_best, results[i].graphs_per_s);
    }
    checks.check("micro-batching beats max-batch=1 on graphs/sec",
                 batched_best > results[0].graphs_per_s);
    checks.check("windowed micro-batches actually form (avg batch > 1)",
                 results[2].stats.avg_batch() > 1.0);
    checks.check("longer window -> larger average batch",
                 results[3].stats.avg_batch() >=
                     results[2].stats.avg_batch());
  } else {
    std::cout << "  (perf shape checks skipped: --max-batch=1 degenerates "
                 "the sweep)\n";
  }
  // The saturation story: past the knee (2x/4x offered load) the shared
  // scheduler should hold >= 1.5x the per-metric batchers' goodput by
  // shedding expired requests instead of answering everything late.
  // Load-dependent, so report-only.
  for (std::size_t pi = 2; pi < ol_results.size(); ++pi) {
    const auto& [batcher_r, sched_r] = ol_results[pi];
    checks.check("shared scheduler goodput >= 1.5x per-metric batchers at " +
                     rate_points[pi].first + " load",
                 sched_r.goodput_per_s >= 1.5 * batcher_r.goodput_per_s);
  }
  checks.summary();
  maybe_write_trace(cfg);
  // Only bit-identity is a hard invariant (the serving contract); the perf
  // checks above are load-dependent and stay report-only, so the CI smoke
  // gate cannot flake on scheduling noise.
  return (all_exact && open_loop_exact && socket_exact && kinds_exact) ? 0
                                                                       : 1;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
