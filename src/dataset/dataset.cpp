#include "dataset/dataset.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "support/rng.h"

namespace gnnhls {

std::uint64_t next_sample_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::string metric_name(Metric m) {
  switch (m) {
    case Metric::kDsp: return "DSP";
    case Metric::kLut: return "LUT";
    case Metric::kFf: return "FF";
    case Metric::kCp: return "CP";
  }
  return {};
}

double metric_of(const QualityOfResult& qor, Metric m) {
  switch (m) {
    case Metric::kDsp: return qor.dsp;
    case Metric::kLut: return qor.lut;
    case Metric::kFf: return qor.ff;
    case Metric::kCp: return qor.cp_ns;
  }
  return 0.0;
}

namespace {
constexpr double kCpScaleNs = 10.0;  // default clock period
}

float encode_target(double value, Metric m) {
  GNNHLS_CHECK(value >= 0.0, "negative QoR value");
  if (m == Metric::kCp) return static_cast<float>(value / kCpScaleNs);
  return static_cast<float>(std::log1p(value));
}

double decode_target(float encoded, Metric m) {
  if (m == Metric::kCp) return static_cast<double>(encoded) * kCpScaleNs;
  return std::expm1(std::max(static_cast<double>(encoded), 0.0));
}

Sample make_sample(const Function& f, GraphKind kind, const HlsConfig& hls,
                   std::string origin) {
  Sample s(kind == GraphKind::kDfg ? lower_to_dfg(f) : lower_to_cdfg(f));
  const HlsOutcome outcome = run_hls_flow(s.prog, hls);
  s.tensors = GraphTensors::build(s.prog.graph);
  s.truth = outcome.implemented;
  s.hls_report = outcome.reported;
  s.origin = std::move(origin);
  return s;
}

std::vector<Sample> build_synthetic_dataset(const SyntheticDatasetConfig& cfg) {
  GNNHLS_CHECK(cfg.num_graphs > 0, "empty dataset requested");
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(cfg.num_graphs));
  const std::string prefix =
      cfg.kind == GraphKind::kDfg ? "synthetic-dfg/" : "synthetic-cdfg/";
  for (int i = 0; i < cfg.num_graphs; ++i) {
    const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(i);
    const Function f = cfg.kind == GraphKind::kDfg
                           ? generate_dfg_program(seed, cfg.progen)
                           : generate_cdfg_program(seed, cfg.progen);
    samples.push_back(
        make_sample(f, cfg.kind, cfg.hls, prefix + std::to_string(i)));
  }
  return samples;
}

SplitIndices split_80_10_10(int n, std::uint64_t seed) {
  GNNHLS_CHECK(n >= 10, "dataset too small to split 80/10/10");
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  rng.shuffle(idx);
  const int n_test = std::max(n / 10, 1);
  const int n_val = std::max(n / 10, 1);
  SplitIndices split;
  split.test.assign(idx.begin(), idx.begin() + n_test);
  split.val.assign(idx.begin() + n_test, idx.begin() + n_test + n_val);
  split.train.assign(idx.begin() + n_test + n_val, idx.end());
  return split;
}

std::vector<int> all_indices(int n) {
  std::vector<int> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

DatasetStats compute_stats(const std::vector<Sample>& samples) {
  DatasetStats st;
  st.graphs = static_cast<int>(samples.size());
  if (samples.empty()) return st;
  for (const Sample& s : samples) {
    st.avg_nodes += s.graph().num_nodes();
    st.avg_edges += s.graph().num_edges();
    st.max_nodes = std::max(st.max_nodes, s.graph().num_nodes());
    st.total_nodes += s.graph().num_nodes();
    for (int m = 0; m < kNumMetrics; ++m) {
      st.avg_metric[static_cast<std::size_t>(m)] +=
          metric_of(s.truth, static_cast<Metric>(m));
    }
  }
  const double inv = 1.0 / static_cast<double>(samples.size());
  st.avg_nodes *= inv;
  st.avg_edges *= inv;
  for (auto& v : st.avg_metric) v *= inv;
  return st;
}

}  // namespace gnnhls
