// Benchmark serialization — the paper's released-benchmark deliverable
// ("we build a standard benchmark ... to benefit follow-up researches").
//
// A dataset is written as a line-oriented text format that is diffable,
// versioned and loadable without this library:
//
//   gnnhls-benchmark v1
//   graph <name> <kind> <num_nodes> <num_edges>
//   qor <dsp> <lut> <ff> <cp_ns>
//   report <dsp> <lut> <ff> <cp_ns>
//   node <type> <opcode> <bitwidth> <start> <cluster> <const> \
//        <uses_dsp> <uses_lut> <uses_ff> <dsp> <lut> <ff>     (x num_nodes)
//   edge <src> <dst> <type> <back>                            (x num_edges)
//   end
//
// Round-tripping is exact for everything a predictor consumes (features,
// topology, labels); block-level scheduling info is intentionally not
// serialized — it is an HLS-internal, not part of the benchmark format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dataset/dataset.h"

namespace gnnhls {

/// A deserialized benchmark record: annotated graph + labels.
/// (No LoweredProgram — consumers of a serialized benchmark never re-run
/// HLS, exactly like users of the paper's released dataset.)
struct BenchmarkRecord {
  IrGraph graph;
  GraphTensors tensors;
  QualityOfResult truth;
  QualityOfResult hls_report;
  std::string origin;

  BenchmarkRecord() : graph(GraphKind::kDfg) {}
};

/// Writes samples in benchmark format. Throws on I/O failure.
void write_benchmark(std::ostream& os, const std::vector<Sample>& samples);
void write_benchmark_file(const std::string& path,
                          const std::vector<Sample>& samples);

/// Reads a benchmark stream; validates the header and graph structure.
std::vector<BenchmarkRecord> read_benchmark(std::istream& is);
std::vector<BenchmarkRecord> read_benchmark_file(const std::string& path);

}  // namespace gnnhls
