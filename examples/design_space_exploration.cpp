// Design-space exploration on the src/dse/ engine — the use case that
// motivates early QoR prediction (the paper's IronMan lineage): rank and
// prune candidate implementations of a kernel *before* synthesizing them.
//
//   1. Train LUT and FF predictors on generic synthetic CDFG programs.
//   2. Declare a gemm design space: unroll x datapath-bitwidth source knobs
//      (suites/variants.h) on a fixed scheduler config.
//   3. Explore it twice: an exhaustive ground-truth sweep (one HLS run per
//      candidate — the cost DSE exists to avoid) and predictor-guided
//      successive halving (ground truth only for the surviving top-k).
//   4. Compare: Spearman rank fidelity, the LUT/FF Pareto fronts, and the
//      ground-truth budget.
//
// Exit code 1 if the two strategies disagree on the Pareto front or the
// true top-1 at this fixed seed — CI runs this binary as the Release DSE
// quality smoke. (Everything here is deterministic: same seed + space =>
// identical fronts, the dse/ determinism contract.)
//
// Build & run:  ./build/design_space_exploration
#include <iostream>

#include "dse/explorer.h"
#include "support/table.h"
#include "support/timer.h"

using namespace gnnhls;

namespace {

QorPredictor train_predictor(const std::vector<Sample>& corpus,
                             const SplitIndices& split, Metric metric) {
  ModelConfig mc;
  mc.kind = GnnKind::kRgcn;
  mc.hidden = 32;
  mc.layers = 3;
  TrainConfig tc;
  tc.epochs = 30;
  tc.lr = 1e-2F;
  tc.batch_size = 8;
  QorPredictor predictor(Approach::kOffTheShelf, mc, tc);
  Timer t;
  const double val = predictor.fit(corpus, split, metric);
  std::cout << "  " << metric_name(metric) << " predictor: val MAPE "
            << TextTable::pct(val) << " in " << TextTable::num(t.seconds(), 1)
            << "s\n";
  return predictor;
}

std::string front_labels(const DseResult& r, const std::vector<int>& front) {
  std::string out;
  for (int i : front) {
    if (!out.empty()) out += ", ";
    out += r.candidates[static_cast<std::size_t>(i)].point.label();
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace

int main() {
  // ----- 1. train predictors on generic synthetic CDFGs -----
  std::cout << "== 1. training on 200 synthetic CDFG programs ==\n";
  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kCdfg;
  dc.num_graphs = 200;
  dc.seed = 21;
  const std::vector<Sample> corpus = build_synthetic_dataset(dc);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(corpus.size()), 5);
  const QorPredictor lut = train_predictor(corpus, split, Metric::kLut);
  const QorPredictor ff = train_predictor(corpus, split, Metric::kFf);
  const PredictorScorer scorer({{Metric::kLut, &lut}, {Metric::kFf, &ff}});

  // ----- 2. declare the design space -----
  const DesignSpace space = make_kernel_design_space("gemm");
  DseConfig cfg;
  cfg.front_metrics = {Metric::kLut, Metric::kFf};
  cfg.rank_metric = Metric::kLut;
  cfg.top_k = 6;
  const Explorer explorer(space, scorer, cfg);
  std::cout << "\n== 2. design space: gemm, " << space.size()
            << " candidates (unroll x bitwidth) ==\n";

  // ----- 3. explore: exhaustive sweep vs successive halving -----
  const DseResult exh = explorer.exhaustive();
  const DseResult sh = explorer.successive_halving();

  TextTable table({"variant", "pred LUT", "true LUT", "pred FF", "true FF",
                   "latency", "synthesized by halving"});
  std::vector<double> pred_lut, true_lut;
  for (std::size_t i = 0; i < exh.candidates.size(); ++i) {
    const DseCandidate& c = exh.candidates[i];
    const double p = c.predicted[static_cast<std::size_t>(Metric::kLut)];
    pred_lut.push_back(p);
    true_lut.push_back(metric_of(c.sample.truth, Metric::kLut));
    table.add_row(
        {c.point.label(), TextTable::num(p, 0),
         TextTable::num(metric_of(c.sample.truth, Metric::kLut), 0),
         TextTable::num(
             c.predicted[static_cast<std::size_t>(Metric::kFf)], 0),
         TextTable::num(metric_of(c.sample.truth, Metric::kFf), 0),
         TextTable::num(c.latency_cycles, 0),
         sh.candidates[i].synthesized ? "yes" : "pruned"});
  }
  std::cout << "\n== 3. design space (predictions need no HLS run) ==\n"
            << table.to_string();

  const double rho = spearman_rank_correlation(pred_lut, true_lut);
  std::cout << "\nSpearman rank correlation (predicted vs true LUT): "
            << TextTable::num(rho, 3)
            << "\nground-truth HLS runs: exhaustive " << exh.hls_runs
            << ", successive halving " << sh.hls_runs << "\n";

  // ----- 4. the strategies must agree at this fixed seed -----
  std::cout << "\n== 4. LUT/FF Pareto fronts ==\n"
            << "  exhaustive: " << front_labels(exh, exh.front) << "\n"
            << "  halving:    " << front_labels(sh, sh.front) << "\n";
  if (sh.front != exh.front || sh.best != exh.best) {
    std::cout << "FAIL: successive halving disagrees with the exhaustive "
                 "sweep (front or top-1) at a fixed seed\n";
    return 1;
  }
  std::cout << "successive halving recovered the exhaustive Pareto front and "
               "top-1 with "
            << sh.hls_runs << "/" << exh.hls_runs << " HLS runs.\n";
  return 0;
}
