#include <atomic>
#include <cmath>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/metrics.h"
#include "core/predictor.h"

namespace gnnhls {
namespace {

// ----- metrics -----

TEST(MapeTest, HandComputedValues) {
  EXPECT_NEAR(mape({110.0, 90.0}, {100.0, 100.0}), 0.10, 1e-9);
  EXPECT_NEAR(mape({100.0}, {100.0}), 0.0, 1e-12);
}

TEST(MapeTest, FloorGuardsZeroTruth) {
  // truth 0 with floor 1 -> error = |pred|.
  EXPECT_NEAR(mape({0.5}, {0.0}), 0.5, 1e-9);
}

TEST(MapeTest, InputValidation) {
  EXPECT_THROW(mape({}, {}), std::invalid_argument);
  EXPECT_THROW(mape({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(mape({1.0}, {1.0}, 0.0), std::invalid_argument);
}

TEST(AccuracyTest, CountsMatches) {
  EXPECT_NEAR(binary_accuracy({1, 0, 1, 1}, {1, 0, 0, 1}), 0.75, 1e-9);
  EXPECT_NEAR(binary_accuracy({2, 0}, {1, 0}), 1.0, 1e-9);  // nonzero == true
}

// ----- Spearman rank correlation -----

TEST(SpearmanTest, AverageRanksHandleTies) {
  EXPECT_EQ(average_ranks({10.0, 20.0, 20.0, 30.0}),
            (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
  EXPECT_EQ(average_ranks({5.0, 5.0, 5.0}),
            (std::vector<double>{2.0, 2.0, 2.0}));
  EXPECT_EQ(average_ranks({3.0, 1.0, 2.0}),
            (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(SpearmanTest, PerfectMonotoneIsPlusMinusOne) {
  EXPECT_NEAR(spearman_rank_correlation({1.0, 2.0, 3.0, 4.0},
                                        {10.0, 20.0, 40.0, 80.0}),
              1.0, 1e-12);
  EXPECT_NEAR(spearman_rank_correlation({1.0, 2.0, 3.0, 4.0},
                                        {8.0, 4.0, 2.0, 1.0}),
              -1.0, 1e-12);
}

TEST(SpearmanTest, DistinctRanksMatchTextbookFormula) {
  // No ties: 1 - 6*sum(d^2)/(n(n^2-1)) with d = (0,... ) gives 0.8.
  EXPECT_NEAR(spearman_rank_correlation({1.0, 2.0, 3.0, 4.0, 5.0},
                                        {2.0, 1.0, 4.0, 3.0, 5.0}),
              0.8, 1e-12);
}

TEST(SpearmanTest, TiesGetAverageRanks) {
  // Identical tie structure on both sides is a perfect rank agreement —
  // the pre-fix ranking assigned the ties distinct ranks and reported < 1.
  EXPECT_NEAR(spearman_rank_correlation({1.0, 2.0, 2.0, 3.0},
                                        {1.0, 2.0, 2.0, 3.0}),
              1.0, 1e-12);
  EXPECT_NEAR(spearman_rank_correlation({1.0, 2.0, 2.0, 4.0},
                                        {4.0, 3.0, 3.0, 1.0}),
              -1.0, 1e-12);
  // One-sided tie, hand-computed Pearson on ranks (1.5, 1.5, 3) x (1, 2, 3):
  // cov 1.5, var 1.5 * 2 -> rho = 1.5 / sqrt(3).
  EXPECT_NEAR(spearman_rank_correlation({1.0, 1.0, 2.0}, {1.0, 2.0, 3.0}),
              1.5 / std::sqrt(3.0), 1e-12);
}

TEST(SpearmanTest, ConstantInputHasNoOrdering) {
  EXPECT_EQ(spearman_rank_correlation({7.0, 7.0, 7.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(SpearmanTest, InputValidation) {
  EXPECT_THROW(spearman_rank_correlation({1.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(spearman_rank_correlation({1.0, 2.0}, {1.0}),
               std::invalid_argument);
}

// ----- parameter snapshots -----

TEST(SnapshotTest, RestoreRecoversValues) {
  Rng rng(1);
  Linear model(2, 2, rng);
  const auto snap = snapshot_parameters(model);
  model.parameters()[0]->mutable_value()(0, 0) += 42.0F;
  restore_parameters(model, snap);
  EXPECT_EQ(model.parameters()[0]->value(), snap[0]);
}

// ----- run_parallel -----

TEST(RunParallelTest, ExecutesAllJobs) {
  std::atomic<int> count{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 100; ++i) {
    jobs.push_back([&count] { count.fetch_add(1); });
  }
  run_parallel(std::move(jobs), 8);
  EXPECT_EQ(count.load(), 100);
}

TEST(RunParallelTest, PropagatesException) {
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] { throw std::runtime_error("boom"); });
  jobs.push_back([] {});
  EXPECT_THROW(run_parallel(std::move(jobs), 2), std::runtime_error);
}

// ----- end-to-end training (integration) -----

class PredictorIntegration : public ::testing::Test {
 protected:
  static const std::vector<Sample>& dfg_samples() {
    static const std::vector<Sample> samples = [] {
      SyntheticDatasetConfig cfg;
      cfg.kind = GraphKind::kDfg;
      cfg.num_graphs = 96;
      cfg.seed = 1234;
      cfg.progen.min_ops = 10;
      cfg.progen.max_ops = 40;
      return build_synthetic_dataset(cfg);
    }();
    return samples;
  }

  static ModelConfig small_model(GnnKind kind) {
    ModelConfig mc;
    mc.kind = kind;
    mc.hidden = 16;
    mc.layers = 2;
    return mc;
  }

  static TrainConfig fast_train() {
    TrainConfig tc;
    tc.epochs = 50;
    tc.lr = 1e-2F;
    tc.seed = 77;
    return tc;
  }
};

TEST_F(PredictorIntegration, OffTheShelfLearnsLut) {
  const auto& samples = dfg_samples();
  const SplitIndices split = split_80_10_10(
      static_cast<int>(samples.size()), 9);
  QorPredictor predictor(Approach::kOffTheShelf, small_model(GnnKind::kGcn),
                         fast_train());
  const double val = predictor.fit(samples, split, Metric::kLut);
  EXPECT_TRUE(std::isfinite(val));
  const double test = predictor.evaluate_mape(samples, split.test);
  // An untrained regressor predicts ~0 => MAPE ~ 1.0. Learning must beat it
  // decisively (deterministic given the fixed seeds).
  EXPECT_LT(test, 0.7);
  for (int i : split.test) {
    EXPECT_GE(predictor.predict(samples[static_cast<std::size_t>(i)]), 0.0);
  }
}

TEST_F(PredictorIntegration, KnowledgeRichUsesAnnotations) {
  const auto& samples = dfg_samples();
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 9);
  QorPredictor predictor(Approach::kKnowledgeRich, small_model(GnnKind::kGcn),
                         fast_train());
  predictor.fit(samples, split, Metric::kLut);
  // Loose sanity bound at unit-test scale (4-graph test split): approach
  // ordering at realistic scale is checked by bench_table4, not here.
  EXPECT_LT(predictor.evaluate_mape(samples, split.test), 0.85);
}

TEST_F(PredictorIntegration, HierarchicalPathRunsEndToEnd) {
  const auto& samples = dfg_samples();
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 9);
  QorPredictor predictor(Approach::kKnowledgeInfused,
                         small_model(GnnKind::kGcn), fast_train());
  predictor.fit(samples, split, Metric::kLut);
  // Hierarchical inference must produce finite positive predictions.
  for (int i : split.test) {
    const double p = predictor.predict(samples[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
  }
  EXPECT_LT(predictor.evaluate_mape(samples, split.test), 1.2);
}

TEST_F(PredictorIntegration, PredictBeforeFitThrows) {
  QorPredictor predictor(Approach::kOffTheShelf, small_model(GnnKind::kGcn),
                         fast_train());
  EXPECT_THROW(predictor.predict(dfg_samples().front()),
               std::invalid_argument);
}

TEST_F(PredictorIntegration, NodeClassifierLearnsTypes) {
  const auto& samples = dfg_samples();
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 9);
  NodeTypePredictor predictor(small_model(GnnKind::kRgcn), fast_train());
  const double val_acc = predictor.fit(samples, split);
  EXPECT_GT(val_acc, 0.8);  // resource types are locally decidable
  const NodeClassifierScores test = predictor.evaluate(samples, split.test);
  EXPECT_GT(test.dsp, 0.8);
  EXPECT_GT(test.lut, 0.7);
  EXPECT_GT(test.ff, 0.6);
}

TEST_F(PredictorIntegration, ProtocolAveragesBestRuns) {
  const auto& samples = dfg_samples();
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), 9);
  ExperimentSpec spec;
  spec.kind = GnnKind::kGcn;
  spec.approach = Approach::kOffTheShelf;
  spec.metric = Metric::kCp;
  spec.model = small_model(GnnKind::kGcn);
  spec.train = fast_train();
  spec.train.epochs = 6;
  spec.protocol = RunProtocol{2, 1};
  const ExperimentResult r = run_regression_experiment(spec, samples, split);
  EXPECT_TRUE(std::isfinite(r.test_mape));
  EXPECT_GT(r.test_mape, 0.0);
}

}  // namespace
}  // namespace gnnhls
