#include <gtest/gtest.h>

#include "support/check.h"
#include "support/flags.h"
#include "support/rng.h"
#include "support/table.h"

namespace gnnhls {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1 << 20) == b.uniform_int(0, 1 << 20)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(3, 6);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, WeightedIndexRespectsZeros) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(rng.weighted_index({0.0, 1.0, 0.0}), 1);
  }
}

TEST(RngTest, EmptyRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(CheckTest, ThrowsWithMessage) {
  try {
    GNNHLS_CHECK(false, "context message");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
  }
}

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "--gamma"};
  Flags flags(5, argv);
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.get_double("beta", 0.0), 4.5);
  EXPECT_TRUE(flags.get_bool("gamma", false));
  EXPECT_EQ(flags.get_int("missing", 9), 9);
  flags.check_all_consumed();
}

TEST(FlagsTest, UnconsumedFlagDetected) {
  const char* argv[] = {"prog", "--typo=1"};
  Flags flags(2, argv);
  EXPECT_THROW(flags.check_all_consumed(), std::invalid_argument);
}

TEST(FlagsTest, RejectsNonFlagArgument) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Flags(2, argv), std::invalid_argument);
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"model", "MAPE"});
  t.add_row({"GCN", TextTable::pct(0.1631)});
  t.add_row({"RGCN", TextTable::pct(0.1327)});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("16.31%"), std::string::npos);
  EXPECT_NE(s.find("RGCN"), std::string::npos);
  EXPECT_NE(s.find("|"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

}  // namespace
}  // namespace gnnhls
