// Model-in-the-loop design-space exploration.
//
// The Explorer turns a DesignSpace into ranked, Pareto-annotated results
// using a trained QoR predictor as the cheap fidelity and the HLS flow as
// the expensive ground truth:
//
//   * lowering: every candidate is lowered to a CDFG + tensors in parallel
//     on the support/parallel.h thread pool (each shard fills its own slot,
//     so results are byte-identical at any pool width);
//   * scoring: ONE batched scorer call per (metric, round) — either a
//     direct QorPredictor::predict_many forward or the async ServingBatcher
//     path; both are bit-identical per the serving contract, asserted by
//     tests/dse_test.cpp;
//   * strategies: `exhaustive` synthesizes every point (the ground-truth
//     sweep DSE exists to avoid); `successive_halving` prunes the candidate
//     set by predicted rank each round and invokes the HLS flow only on the
//     surviving top-k.
//
// Determinism contract: a DseResult is a pure function of (space, trained
// model, config) — candidate order, predicted values, fronts and the
// halving trace never depend on thread count, scorer path, or scheduling.
#pragma once

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "core/predictor.h"
#include "dse/design_space.h"
#include "dse/pareto.h"
#include "serve/scheduler.h"

namespace gnnhls {

/// One scored/synthesized candidate. `predicted` holds decoded predictions
/// indexed by Metric (0 until that metric is scored); `sample.truth` is
/// valid only when `synthesized`.
struct DseCandidate {
  DesignPoint point;
  Sample sample;
  std::array<double, kNumMetrics> predicted{};
  bool synthesized = false;
  double latency_cycles = 0.0;
};

/// Outcome of one exploration strategy. All index vectors refer to
/// `candidates` (enumeration order) and are sorted ascending.
struct DseResult {
  std::vector<DseCandidate> candidates;
  /// Non-dominated set on *true* QoR over the synthesized candidates.
  std::vector<int> front;
  /// Non-dominated set on *predicted* QoR over every candidate.
  std::vector<int> predicted_front;
  /// Synthesized candidate with the best (lowest) true rank_metric;
  /// ties break to the lowest index.
  int best = -1;
  /// Ground-truth HLS flow invocations (the budget DSE minimizes).
  int hls_runs = 0;
  /// Batched scorer invocations / total graphs pushed through them.
  int scorer_calls = 0;
  int scored_graphs = 0;
  /// Candidate-set size after each halving round (exhaustive: one entry).
  std::vector<int> survivors_per_round;
};

/// Batched prediction source: one call scores one metric over a candidate
/// slice. Implementations must be deterministic and safe to call from the
/// exploring thread only.
class Scorer {
 public:
  virtual ~Scorer() = default;
  /// Decoded predictions for `metric`, in input order, via ONE batched
  /// model entry per call. Throws if `metric` has no model.
  virtual std::vector<double> score(
      Metric metric, const std::vector<const Sample*>& samples) const = 0;
  /// Metrics this scorer can serve, in registration order.
  virtual std::vector<Metric> metrics() const = 0;
};

/// Scores through direct QorPredictor::predict_many calls. Predictors are
/// borrowed: they must be fitted, and outlive the scorer.
class PredictorScorer : public Scorer {
 public:
  explicit PredictorScorer(
      std::vector<std::pair<Metric, const QorPredictor*>> models);

  std::vector<double> score(
      Metric metric,
      const std::vector<const Sample*>& samples) const override;
  std::vector<Metric> metrics() const override;

 private:
  const QorPredictor* find(Metric metric) const;
  std::vector<std::pair<Metric, const QorPredictor*>> models_;
};

/// Scores through the async serving path: ONE shared-queue
/// ServingScheduler carrying every metric's model (multi-model serving),
/// exercising submit/micro-batch/scatter under DSE load. Historically this
/// spun one ServingBatcher worker thread per metric — a 4-thread tax for
/// 4-metric scoring; the shared queue serves all metrics from a single
/// small worker pool (cfg.workers, default 1). Values are bit-identical to
/// PredictorScorer by the serving contract. Predictors are borrowed and
/// must outlive the scorer.
class ServingScorer : public Scorer {
 public:
  /// `cfg.workers`/`max_batch`/`batch_window_us`/`adaptive_window`/`arena`
  /// apply to the shared scheduler; admission knobs (max_queue, deadlines)
  /// are left off — DSE scoring must answer every sample.
  ServingScorer(std::vector<std::pair<Metric, const QorPredictor*>> models,
                SchedulerConfig cfg = {});

  std::vector<double> score(
      Metric metric,
      const std::vector<const Sample*>& samples) const override;
  std::vector<Metric> metrics() const override;

  /// Scheduler counters (per_model_completed is in metrics() order).
  SchedStats serving_stats() const { return sched_->stats(); }

 private:
  std::vector<Metric> metrics_;  // model id == index into this vector
  // unique_ptr: ServingScheduler owns worker threads and is not movable.
  std::unique_ptr<ServingScheduler> sched_;
};

struct DseConfig {
  /// Axes of the Pareto fronts (order = axis order; duplicates rejected).
  std::vector<Metric> front_metrics = {Metric::kLut, Metric::kFf};
  /// Metric that drives successive-halving pruning and `best`.
  Metric rank_metric = Metric::kLut;
  /// Ground-truth synthesis budget of successive halving (>= 1): pruning
  /// halves the candidate set until at most top_k points survive.
  int top_k = 4;
  /// Back each scoring round's forward temporaries with the exploring
  /// thread's scratch arena, reset per batched scorer call
  /// (support/arena.h). Covers the PredictorScorer path (which runs the
  /// forward inline); the ServingScorer's worker manages its own arena via
  /// ServeConfig::arena. Execution-only: results are unchanged.
  bool arena = false;
  /// Observability knobs (obs/obs_config.h): obs.trace emits
  /// halving_round / score_round / synthesize spans when the process-wide
  /// TraceCollector is active. Execution-only: DseResult is unchanged.
  ObsConfig obs;
};

class Explorer {
 public:
  /// `space` and `scorer` are borrowed and must outlive the explorer. The
  /// scorer must serve every metric in front_metrics + rank_metric.
  /// Construction lowers the whole space once (in parallel shards); both
  /// strategies start from copies of those candidates, so repeated
  /// explorations share one Sample uid set — the process-wide FeatureCache
  /// holds one feature matrix per candidate per Explorer, not per run.
  Explorer(const DesignSpace& space, const Scorer& scorer,
           DseConfig cfg = {});

  /// Scores + synthesizes EVERY candidate; fronts and best are computed
  /// on full ground truth (hls_runs == space.size()).
  DseResult exhaustive() const;

  /// Predictor-guided pruning: score all candidates once, then repeatedly
  /// keep the predicted-best half (never fewer than top_k, ties to the
  /// lower index, survivors re-scored through the batched path each round)
  /// until at most top_k survive; only survivors get a ground-truth HLS
  /// run. front/best are computed on the survivors' truth.
  DseResult successive_halving() const;

  const DseConfig& config() const { return cfg_; }

 private:
  /// One batched scorer call per metric over candidates[subset].
  void score_round(std::vector<DseCandidate>& candidates,
                   const std::vector<int>& subset,
                   const std::vector<Metric>& metrics, DseResult& r) const;
  /// Ground-truth HLS flow over candidates[subset], in parallel shards.
  void synthesize(std::vector<DseCandidate>& candidates,
                  const std::vector<int>& subset, DseResult& r) const;
  /// All metrics to score: front_metrics + rank_metric, deduplicated.
  std::vector<Metric> scored_metrics() const;
  void finalize(DseResult& r, const std::vector<int>& synthesized) const;

  const DesignSpace& space_;
  const Scorer& scorer_;
  DseConfig cfg_;
  /// Lowered once at construction; strategies copy (copies keep each
  /// Sample's uid, the FeatureCache identity).
  std::vector<DseCandidate> base_candidates_;
};

}  // namespace gnnhls
