#include <cmath>

#include <gtest/gtest.h>

#include "grad_check.h"
#include "tensor/autograd.h"
#include "tensor/matrix.h"

namespace gnnhls {
namespace {

using testing::expect_gradient_matches;

Matrix make_test_matrix(int rows, int cols, float scale = 1.0F) {
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m(r, c) = scale * (0.31F * static_cast<float>(r) -
                         0.17F * static_cast<float>(c) + 0.05F);
    }
  }
  return m;
}

// ----- Matrix basics -----

TEST(MatrixTest, MatmulMatchesHandComputation) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58);
  EXPECT_FLOAT_EQ(c(0, 1), 64);
  EXPECT_FLOAT_EQ(c(1, 0), 139);
  EXPECT_FLOAT_EQ(c(1, 1), 154);
}

TEST(MatrixTest, TransposedMatmulsAgreeWithPlain) {
  Rng rng(3);
  const Matrix a = Matrix::randn(4, 5, rng);
  const Matrix b = Matrix::randn(4, 6, rng);
  // a^T * b via matmul_transpose_a == transpose(a) * b
  Matrix at(5, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) at(j, i) = a(i, j);
  }
  const Matrix direct = matmul(at, b);
  const Matrix fused = matmul_transpose_a(a, b);
  ASSERT_TRUE(direct.same_shape(fused));
  for (int i = 0; i < direct.rows(); ++i) {
    for (int j = 0; j < direct.cols(); ++j) {
      EXPECT_NEAR(direct(i, j), fused(i, j), 1e-5);
    }
  }
}

TEST(MatrixTest, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
  Matrix c(2, 2);
  EXPECT_THROW(c.add_inplace(a), std::invalid_argument);
}

// ----- forward values -----

TEST(AutogradTest, ReluForward) {
  Tape tape;
  Matrix m(1, 4);
  m(0, 0) = -2; m(0, 1) = -0.5; m(0, 2) = 0; m(0, 3) = 3;
  const Var y = tape.relu(tape.leaf(m));
  EXPECT_FLOAT_EQ(y.value()(0, 0), 0);
  EXPECT_FLOAT_EQ(y.value()(0, 3), 3);
}

TEST(AutogradTest, SigmoidForwardRange) {
  Tape tape;
  const Var y = tape.sigmoid(tape.leaf(make_test_matrix(3, 3, 4.0F)));
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_GT(y.value()(i, j), 0.0F);
      EXPECT_LT(y.value()(i, j), 1.0F);
    }
  }
}

TEST(AutogradTest, GatherScatterRoundTrip) {
  Tape tape;
  const Var x = tape.leaf(make_test_matrix(4, 3));
  const std::vector<int> idx = {2, 0, 2, 3};
  const Var g = tape.gather_rows(x, idx);
  ASSERT_EQ(g.rows(), 4);
  EXPECT_FLOAT_EQ(g.value()(0, 1), x.value()(2, 1));
  const Var s = tape.scatter_add_rows(g, idx, 4);
  // Row 2 was gathered twice, so it comes back doubled.
  EXPECT_FLOAT_EQ(s.value()(2, 0), 2.0F * x.value()(2, 0));
  EXPECT_FLOAT_EQ(s.value()(1, 0), 0.0F);  // never targeted
}

TEST(AutogradTest, SegmentMeanHandlesEmptySegments) {
  Tape tape;
  const Var x = tape.leaf(make_test_matrix(3, 2));
  const Var m = tape.segment_mean(x, {0, 0, 2}, 3);
  EXPECT_FLOAT_EQ(m.value()(0, 0),
                  0.5F * (x.value()(0, 0) + x.value()(1, 0)));
  EXPECT_FLOAT_EQ(m.value()(1, 0), 0.0F);  // empty segment
  EXPECT_FLOAT_EQ(m.value()(2, 1), x.value()(2, 1));
}

TEST(AutogradTest, SegmentMaxMinForward) {
  Tape tape;
  Matrix m(4, 1);
  m(0, 0) = 1; m(1, 0) = 5; m(2, 0) = -3; m(3, 0) = 2;
  const Var x = tape.leaf(m);
  const std::vector<int> seg = {0, 0, 1, 1};
  EXPECT_FLOAT_EQ(tape.segment_max(x, seg, 2).value()(0, 0), 5);
  EXPECT_FLOAT_EQ(tape.segment_max(x, seg, 2).value()(1, 0), 2);
  EXPECT_FLOAT_EQ(tape.segment_min(x, seg, 2).value()(0, 0), 1);
  EXPECT_FLOAT_EQ(tape.segment_min(x, seg, 2).value()(1, 0), -3);
}

TEST(AutogradTest, SegmentSoftmaxSumsToOnePerSegment) {
  Tape tape;
  const Var x = tape.leaf(make_test_matrix(5, 1, 2.0F));
  const std::vector<int> seg = {0, 0, 0, 1, 1};
  const Var y = tape.segment_softmax(x, seg, 2);
  EXPECT_NEAR(y.value()(0, 0) + y.value()(1, 0) + y.value()(2, 0), 1.0F, 1e-5);
  EXPECT_NEAR(y.value()(3, 0) + y.value()(4, 0), 1.0F, 1e-5);
}

TEST(AutogradTest, ConcatSliceInverse) {
  Tape tape;
  const Var a = tape.leaf(make_test_matrix(3, 2));
  const Var b = tape.leaf(make_test_matrix(3, 4, 2.0F));
  const Var cat = tape.concat_cols({a, b});
  ASSERT_EQ(cat.cols(), 6);
  const Var back = tape.slice_cols(cat, 2, 6);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(back.value()(i, j), b.value()(i, j));
    }
  }
}

TEST(AutogradTest, BackwardRequiresScalarLoss) {
  Tape tape;
  const Var x = tape.leaf(make_test_matrix(2, 2), true);
  const Var y = tape.relu(x);
  EXPECT_THROW(tape.backward(y), std::invalid_argument);
}

TEST(AutogradTest, BackwardOnConstantThrows) {
  Tape tape;
  const Var x = tape.leaf(make_test_matrix(2, 2), false);
  const Var loss = tape.sum_all(x);
  EXPECT_THROW(tape.backward(loss), std::invalid_argument);
}

TEST(AutogradTest, GradientAccumulatesAcrossTapes) {
  const Var p = make_leaf(Matrix(1, 1, 2.0F), true);
  for (int pass = 0; pass < 3; ++pass) {
    Tape tape;
    tape.backward(tape.scale(tape.use(p), 1.0F));
  }
  EXPECT_FLOAT_EQ(p.grad()(0, 0), 3.0F);
}

// ----- gradient checks (parameterized over op) -----

struct GradCase {
  std::string name;
  std::function<Var(Tape&, const Var&)> fn;
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, MatchesFiniteDifference) {
  expect_gradient_matches(make_test_matrix(4, 3), GetParam().fn);
}

const std::vector<int> kIdx = {1, 0, 3, 1, 2};
const std::vector<int> kSeg = {0, 0, 1, 2, 2};

INSTANTIATE_TEST_SUITE_P(
    Ops, GradCheckTest,
    ::testing::Values(
        GradCase{"relu",
                 [](Tape& t, const Var& x) { return t.sum_all(t.relu(x)); }},
        GradCase{"leaky_relu",
                 [](Tape& t, const Var& x) {
                   return t.sum_all(t.leaky_relu(x, 0.1F));
                 }},
        GradCase{"sigmoid",
                 [](Tape& t, const Var& x) {
                   return t.sum_all(t.sigmoid(x));
                 }},
        GradCase{"tanh",
                 [](Tape& t, const Var& x) {
                   return t.sum_all(t.tanh_act(x));
                 }},
        GradCase{"affine",
                 [](Tape& t, const Var& x) {
                   return t.sum_all(t.affine(x, 1.7F, -0.3F));
                 }},
        GradCase{"mul_self",
                 [](Tape& t, const Var& x) { return t.sum_all(t.mul(x, x)); }},
        GradCase{"matmul",
                 [](Tape& t, const Var& x) {
                   Tape& tape = t;
                   Matrix w(3, 2);
                   for (int i = 0; i < 3; ++i)
                     for (int j = 0; j < 2; ++j)
                       w(i, j) = 0.2F * static_cast<float>(i - j);
                   return tape.sum_all(tape.matmul(x, tape.leaf(w)));
                 }},
        GradCase{"gather",
                 [](Tape& t, const Var& x) {
                   return t.sum_all(t.mul(t.gather_rows(x, kIdx),
                                          t.gather_rows(x, kIdx)));
                 }},
        GradCase{"scatter_add",
                 [](Tape& t, const Var& x) {
                   const Var g = t.gather_rows(x, kIdx);
                   const Var s = t.scatter_add_rows(g, kSeg, 3);
                   return t.sum_all(t.mul(s, s));
                 }},
        GradCase{"segment_mean",
                 [](Tape& t, const Var& x) {
                   const Var g = t.gather_rows(x, kIdx);
                   const Var s = t.segment_mean(g, kSeg, 3);
                   return t.sum_all(t.mul(s, s));
                 }},
        GradCase{"segment_max",
                 [](Tape& t, const Var& x) {
                   const Var g = t.gather_rows(x, kIdx);
                   return t.sum_all(t.segment_max(g, kSeg, 3));
                 }},
        GradCase{"segment_min",
                 [](Tape& t, const Var& x) {
                   const Var g = t.gather_rows(x, kIdx);
                   return t.sum_all(t.segment_min(g, kSeg, 3));
                 }},
        GradCase{"concat_slice",
                 [](Tape& t, const Var& x) {
                   const Var c = t.concat_cols({x, x});
                   return t.sum_all(t.mul(t.slice_cols(c, 1, 4),
                                          t.slice_cols(c, 2, 5)));
                 }},
        GradCase{"sum_rows_repeat",
                 [](Tape& t, const Var& x) {
                   const Var s = t.mean_rows(x);
                   const Var r = t.repeat_row(s, 4);
                   return t.sum_all(t.mul(r, x));
                 }},
        GradCase{"mul_col_broadcast",
                 [](Tape& t, const Var& x) {
                   const Var col = t.slice_cols(x, 0, 1);
                   return t.sum_all(t.mul_col_broadcast(x, col));
                 }},
        GradCase{"sqrt_eps",
                 [](Tape& t, const Var& x) {
                   return t.sum_all(t.sqrt_eps(t.mul(x, x), 1e-3F));
                 }},
        GradCase{"mse",
                 [](Tape& t, const Var& x) {
                   Matrix target(4, 3, 0.25F);
                   return t.mse_loss(x, target);
                 }},
        GradCase{"bce_logits",
                 [](Tape& t, const Var& x) {
                   Matrix target(4, 3, 1.0F);
                   return t.bce_with_logits_loss(x, target);
                 }},
        GradCase{"segment_softmax",
                 [](Tape& t, const Var& x) {
                   const Var col = t.slice_cols(x, 0, 1);
                   const Var g = t.gather_rows(col, kIdx);
                   const Var sm = t.segment_softmax(g, kSeg, 3);
                   const Var weighted =
                       t.mul_col_broadcast(t.gather_rows(x, kIdx), sm);
                   return t.sum_all(t.mul(weighted, weighted));
                 }}),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace gnnhls
