#include "gnn/models.h"

namespace gnnhls {

GraphRegressor::GraphRegressor(ModelConfig cfg, int in_dim, Rng& rng)
    : cfg_(cfg) {
  EncoderConfig ec;
  ec.in_dim = in_dim;
  ec.hidden = cfg.hidden;
  ec.layers = cfg.layers;
  ec.dropout = cfg.dropout;
  ec.fused = cfg.fused;
  encoder_ = make_encoder(cfg.kind, ec, rng);
  register_module(*encoder_);
  // Paper §5.1: "a feed-forward network with the structure 300-600-300-1".
  head_ = std::make_unique<Mlp>(
      std::vector<int>{cfg.hidden, 2 * cfg.hidden, cfg.hidden, 1}, rng,
      "regressor.head");
  register_module(*head_);
}

Var GraphRegressor::forward(Tape& tape, const GraphTensors& gt,
                            const Matrix& features, Rng& rng,
                            bool training) const {
  const Var x = tape.leaf(features);
  const Var h = encoder_->encode(tape, gt, x, rng, training);
  // Per-graph readout over the batch segments; [num_graphs, hidden].
  const Var pooled =
      cfg_.pooling == Pooling::kSum
          ? tape.segment_sum_rows(h, gt.graph_id, gt.num_graphs,
                                  gt.graph_part)
          : tape.segment_mean_rows(h, gt.graph_id, gt.num_graphs,
                                   gt.graph_part);
  return head_->forward(tape, pooled);
}

float GraphRegressor::predict(const GraphTensors& gt,
                              const Matrix& features) const {
  Tape tape;
  Rng rng(0);  // dropout disabled when training=false, value unused
  return forward(tape, gt, features, rng, /*training=*/false).value()(0, 0);
}

std::vector<float> GraphRegressor::predict_batch(
    const GraphTensors& gt, const Matrix& features) const {
  Tape tape;
  Rng rng(0);
  const Var pred = forward(tape, gt, features, rng, /*training=*/false);
  std::vector<float> out(static_cast<std::size_t>(pred.rows()));
  for (int g = 0; g < pred.rows(); ++g) {
    out[static_cast<std::size_t>(g)] = pred.value()(g, 0);
  }
  return out;
}

NodeClassifier::NodeClassifier(ModelConfig cfg, int in_dim, Rng& rng)
    : cfg_(cfg) {
  EncoderConfig ec;
  ec.in_dim = in_dim;
  ec.hidden = cfg.hidden;
  ec.layers = cfg.layers;
  ec.dropout = cfg.dropout;
  ec.fused = cfg.fused;
  encoder_ = make_encoder(cfg.kind, ec, rng);
  register_module(*encoder_);
  head_ = std::make_unique<Linear>(cfg.hidden, 3, rng, true,
                                   "classifier.head");
  register_module(*head_);
}

Var NodeClassifier::forward(Tape& tape, const GraphTensors& gt,
                            const Matrix& features, Rng& rng,
                            bool training) const {
  const Var x = tape.leaf(features);
  const Var h = encoder_->encode(tape, gt, x, rng, training);
  return head_->forward(tape, h);
}

std::vector<InferredTypes> NodeClassifier::infer_types(
    const GraphTensors& gt, const Matrix& features) const {
  Tape tape;
  Rng rng(0);
  const Var logits = forward(tape, gt, features, rng, /*training=*/false);
  std::vector<InferredTypes> out(static_cast<std::size_t>(logits.rows()));
  for (int i = 0; i < logits.rows(); ++i) {
    // Hard bits at threshold 0.5 (logit 0), like the labels they replace.
    out[static_cast<std::size_t>(i)].dsp =
        logits.value()(i, 0) > 0.0F ? 1.0F : 0.0F;
    out[static_cast<std::size_t>(i)].lut =
        logits.value()(i, 1) > 0.0F ? 1.0F : 0.0F;
    out[static_cast<std::size_t>(i)].ff =
        logits.value()(i, 2) > 0.0F ? 1.0F : 0.0F;
  }
  return out;
}

}  // namespace gnnhls
