// The GNN zoo: the 14 architectures screened by the paper (§4.1).
//
//   GCN family ....... GCN, GCN+virtual-node, SGC, GraphSAGE, ARMA, PAN
//   GIN family ....... GIN, GIN+virtual-node, PNA
//   relational ....... GAT, GGNN, RGCN
//   vision-inspired .. Graph-U-Net, GNN-FiLM
//
// Every encoder maps input node features [N, in_dim] to embeddings
// [N, hidden] with the same macro-structure the paper fixes for fairness
// ("the same GNN structure but with different types of GNN layers"): input
// projection, `layers` message-passing layers with ReLU + dropout, output
// embeddings. Architecture-specific machinery (virtual nodes, K-hop
// pre-propagation, pooling/unpooling, relations, attention) lives inside
// the encoder.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gnn/graph_tensors.h"
#include "nn/layers.h"

namespace gnnhls {

enum class GnnKind : int {
  kGcn = 0,
  kGcnVirtual,
  kSgc,
  kSage,
  kArma,
  kPan,
  kGin,
  kGinVirtual,
  kPna,
  kGat,
  kGgnn,
  kRgcn,
  kUnet,
  kFilm,
  kCount
};

inline constexpr int kNumGnnKinds = static_cast<int>(GnnKind::kCount);

/// Paper-table row label ("GCN-V", "SAGE", ...).
std::string gnn_kind_name(GnnKind kind);
/// Parses a row label back to the kind; throws on unknown names.
GnnKind gnn_kind_from_name(const std::string& name);
std::vector<GnnKind> all_gnn_kinds();

struct EncoderConfig {
  int in_dim = 0;
  int hidden = 64;
  int layers = 3;       // paper default: 5
  float dropout = 0.0F;
  /// Route message passing through the fused executor (gnn/mp_executor.h):
  /// one tape node per aggregation instead of the gather/transform/scatter
  /// chain, no [E, hidden] message tensor. Execution knob only — values and
  /// gradients are bit-identical to the unfused reference at any thread
  /// count. Encoders that need materialized per-edge messages (GAT
  /// attention, PNA multi-aggregator, FiLM modulation) ignore it.
  bool fused = false;
};

class GnnEncoder : public Module {
 public:
  explicit GnnEncoder(EncoderConfig cfg) : cfg_(cfg) {}

  /// Node embeddings [N, hidden] from input features [N, in_dim].
  virtual Var encode(Tape& tape, const GraphTensors& gt, const Var& x,
                     Rng& rng, bool training) const = 0;

  int hidden_dim() const { return cfg_.hidden; }
  const EncoderConfig& config() const { return cfg_; }

 protected:
  EncoderConfig cfg_;
};

/// Factory over the zoo. `rng` seeds weight initialization.
std::unique_ptr<GnnEncoder> make_encoder(GnnKind kind, EncoderConfig cfg,
                                         Rng& rng);

}  // namespace gnnhls
