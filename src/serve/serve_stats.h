// Counters published by the serving tier: ServeStats by the ServingBatcher
// facade (see serve/serving_batcher.h), SchedStats by the shared-queue
// ServingScheduler underneath it (see serve/scheduler.h).
//
// A stats value is a consistent snapshot: every field was read under the
// scheduler's queue lock in one critical section, so invariants like
// `completed <= submitted` and `flush_full + flush_timeout + flush_drain ==
// batches` hold within a single snapshot. Snapshots are plain values —
// copy, diff and print them freely (bench_serving diffs two snapshots to
// report per-phase batch-size distributions).
#pragma once

#include <cstdint>
#include <vector>

namespace gnnhls {

struct ServeStats {
  /// Requests accepted by submit() (excludes submissions rejected because
  /// the batcher was already shut down — those fail their future instead).
  std::uint64_t submitted = 0;
  /// Requests whose micro-batch forward has run. Counted just before the
  /// promises are fulfilled, so a caller whose future.get() has returned
  /// always observes its own request here.
  std::uint64_t completed = 0;
  /// Forward passes run (each serves one micro-batch of 1..max_batch).
  std::uint64_t batches = 0;
  /// Window-close reasons, one increment per batch:
  /// the queue reached max_batch before the window timer expired, ...
  std::uint64_t flush_full = 0;
  /// ... the batch window elapsed with 1..max_batch-1 requests waiting, ...
  std::uint64_t flush_timeout = 0;
  /// ... or shutdown() drained the remaining queue.
  std::uint64_t flush_drain = 0;
  /// Largest micro-batch served so far (<= configured max_batch).
  int max_batch_seen = 0;
  /// ArenaAllocator heap-path allocations made by batch forwards (the
  /// thread_matrix_heap_allocs() delta across each forward, summed). With
  /// arena=true this should read ~0 in steady state — a nonzero drift means
  /// tape temporaries are escaping the scratch arena, silently re-paying
  /// the allocator churn the arena exists to remove.
  std::uint64_t heap_allocs = 0;
  /// Fused-executor fallbacks taken by batch forwards (the
  /// thread_fused_fallbacks() delta across each forward, summed). With
  /// fused=true this should read 0 for partition-cached graphs — a nonzero
  /// count means the "fused" serving path is silently running the
  /// reference composition (a perf regression stats must surface).
  std::uint64_t fused_fallbacks = 0;

  /// Mean graphs per forward pass — the amortization the batcher exists to
  /// create (1.0 means every request paid a full forward on its own).
  double avg_batch() const {
    return batches == 0
               ? 0.0
               : static_cast<double>(completed) / static_cast<double>(batches);
  }
};

/// Snapshot of the shared-queue multi-model scheduler. Same consistency
/// rules as ServeStats; the extra fields cover admission control, shedding
/// and the adaptive batch window.
struct SchedStats {
  /// Requests accepted into the queue (excludes every rejection below).
  std::uint64_t submitted = 0;
  /// Requests whose micro-batch forward has run (counted before their
  /// promises are fulfilled).
  std::uint64_t completed = 0;
  /// Completed requests that were answered by their deadline (requests
  /// without a deadline always count). completed - completed_in_deadline
  /// is the "served but late" tail; goodput uses this field.
  std::uint64_t completed_in_deadline = 0;
  /// Rejections at submit(): deadline already expired on arrival, ...
  std::uint64_t shed_expired = 0;
  /// ... queue at max_queue capacity (admission control), ...
  std::uint64_t shed_capacity = 0;
  /// ... or scheduler already shut down.
  std::uint64_t rejected_shutdown = 0;
  /// Accepted requests whose deadline expired while queued; failed fast
  /// with SchedReject(kExpired) instead of wasting a forward (load
  /// shedding under overload).
  std::uint64_t shed_in_queue = 0;
  /// Forward passes run / window-close reasons (as in ServeStats).
  std::uint64_t batches = 0;
  std::uint64_t flush_full = 0;
  std::uint64_t flush_timeout = 0;
  std::uint64_t flush_drain = 0;
  int max_batch_seen = 0;
  /// Adaptive batch window at snapshot time, and how often the rule moved
  /// it (grow under backlog, shrink when the queue drains; see
  /// serve/scheduler.h AdaptiveWindow).
  std::int64_t window_us = 0;
  std::uint64_t window_grows = 0;
  std::uint64_t window_shrinks = 0;
  /// Per-forward thread_matrix_heap_allocs() / thread_fused_fallbacks()
  /// deltas, summed (see ServeStats for why these must be observable).
  std::uint64_t heap_allocs = 0;
  std::uint64_t fused_fallbacks = 0;
  /// Requests completed per registered model, in model-id order (the
  /// multi-model fairness observable).
  std::vector<std::uint64_t> per_model_completed;

  double avg_batch() const {
    return batches == 0
               ? 0.0
               : static_cast<double>(completed) / static_cast<double>(batches);
  }
  /// Everything dropped instead of served (expired at submit, over
  /// capacity, expired in queue). Excludes rejected_shutdown: those are
  /// caller errors, not load shedding.
  std::uint64_t shed_total() const {
    return shed_expired + shed_capacity + shed_in_queue;
  }
};

/// Snapshot of the TCP endpoint's wire-level counters (serve/tcp_endpoint.h).
/// Since PR 9 the counters live in lock-free striped registry atomics
/// (obs/metrics.h), so a mid-flight snapshot is monotonically fresh rather
/// than a single critical section; once the endpoint's threads are
/// quiescent (connections drained, or after stop()) every field is exact
/// and the invariants `responses_ok + rejects_* + write_failures <=
/// frames_in` and `frames_out + write_failures == answered frames` hold.
struct WireStats {
  /// Connections the accept loop handed to a reader thread / reader threads
  /// that have fully torn down (close waits for the writer to drain, so
  /// `closed == accepted` once the endpoint is quiesced).
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  /// Complete request frames decoded off sockets / response frames whose
  /// bytes were fully written back.
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  /// Payload bytes received/sent (headers + bodies, successful writes only).
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Connections closed because the wire stream lost framing (bad magic,
  /// unsupported major version, oversized length prefix, short body). One
  /// increment per poisoned connection — after the first malformed byte the
  /// stream is unrecoverable, so there is nothing more to count.
  std::uint64_t decode_errors = 0;
  /// Requests answered with kOverConnectionLimit (per-connection in-flight
  /// cap; never submitted to the scheduler).
  std::uint64_t rejects_backpressure = 0;
  /// Requests answered with kBadPayload / kBadModel (decoded frame was
  /// well-framed but unusable; never submitted to the scheduler).
  std::uint64_t rejects_payload = 0;
  /// Requests the scheduler rejected or shed (kExpired / kOverCapacity /
  /// kShutdown relayed from AdmitStatus, plus in-queue expiry).
  std::uint64_t rejects_sched = 0;
  /// Requests answered with result kOk and a prediction.
  std::uint64_t responses_ok = 0;
  /// STATS scrape frames answered (wire type 3). Protocol surface, not
  /// observability: served regardless of ObsConfig.
  std::uint64_t stats_requests = 0;
  /// Responses that could not be written (peer hung up mid-answer). The
  /// request was still fully served; only the answer was undeliverable.
  std::uint64_t write_failures = 0;
};

}  // namespace gnnhls
