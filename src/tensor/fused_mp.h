// Fused message-passing kernels: gather -> (scale | matmul) -> scatter-add
// in one pass, without materializing the [E, hidden] message tensor.
//
// The unfused autograd composition builds three tape nodes per layer —
// gather_rows (copy x[src[e]] into an [E, H] buffer), an optional per-edge
// transform (scale_rows for GCN normalization, matmul for relational
// weights), and scatter_add_rows — allocating and streaming two or three
// edge-sized intermediates per layer per step. These kernels walk the cached
// destination SegmentPartition instead: for every destination row they
// gather the source rows of its edge slice, apply the transform into a
// register/cache-resident accumulator, and add straight into the output row.
//
// Bit-identity contract (the same discipline as segment_ops.h): work is
// partitioned by destination row, each destination is owned by exactly one
// task, and its edges accumulate in the partition's ascending-edge order —
// precisely the per-element rounding sequence of the unfused kernel chain.
// Fused and unfused paths are therefore value-identical at any thread-pool
// width (mod the sign of exact zeros, which operator== treats as equal, the
// same latitude the sparse matmul path already uses). No kernel here may
// use FMA: matrix.cpp's axpy discipline (unfused multiply+add) is
// replicated, and the SIMD build compiles this TU with -ffp-contract=off.
//
// These are pure Matrix kernels; the autograd glue (tape nodes whose
// backward walks the cached *source* partition the same way) lives in
// Tape::fused_gather_scatter_add / Tape::fused_gather_matmul_scatter_add.
#pragma once

#include <vector>

#include "tensor/matrix.h"
#include "tensor/segment_ops.h"

namespace gnnhls {

/// out[v, :] = sum over dst_part's edge slice of v (ascending):
///   coeff.empty() ? x[src[e], :] : coeff[e] * x[src[e], :]
/// Shapes: x [V_src, H], out [dst_part.segments, H]. Equals
/// gather_rows -> (scale_rows) -> scatter_add_rows without the [E, H]
/// intermediate. Rows of `out` whose segment has no edges stay zero.
Matrix fused_gather_scatter(const Matrix& x, const std::vector<int>& src,
                            const SegmentPartition& dst_part,
                            const std::vector<float>& coeff);

/// Backward of fused_gather_scatter with respect to x, accumulated into
/// x_grad (+=): walks the *source* partition so each x row is owned by one
/// task:
///   x_grad[u, :] += sum over src_part's slice of u (ascending):
///     coeff.empty() ? out_grad[dst[e], :] : coeff[e] * out_grad[dst[e], :]
/// Equals the unfused reverse chain (gather-add of out_grad, per-edge scale,
/// scatter-add into x_grad) in the same rounding order.
void fused_gather_scatter_backward_x(const Matrix& out_grad,
                                     const std::vector<int>& dst,
                                     const SegmentPartition& src_part,
                                     const std::vector<float>& coeff,
                                     Matrix& x_grad);

/// out[v, :] = sum over dst_part's slice of v (ascending):
///   row_e, where row_e[j] = sum_k ascending x[src[e], k] * w[k, j]
/// (each edge's message is completed in a local accumulator, then added to
/// the destination row — the exact two-step rounding of matmul-then-scatter).
/// Shapes: x [V_src, K], w [K, N], out [dst_part.segments, N].
Matrix fused_gather_matmul_scatter(const Matrix& x, const Matrix& w,
                                   const std::vector<int>& src,
                                   const SegmentPartition& dst_part);

/// Backward of fused_gather_matmul_scatter w.r.t. x, accumulated into
/// x_grad (+=). Per source row u (one task each), per edge of its slice
/// (ascending), per input column k: one ascending-j dot-product chain
///   acc = sum_j out_grad[dst[e], j] * w[k, j];  x_grad[u, k] += acc
/// — the rounding order of matmul_transpose_b followed by scatter-add.
void fused_gather_matmul_scatter_backward_x(const Matrix& out_grad,
                                            const Matrix& w,
                                            const std::vector<int>& dst,
                                            const SegmentPartition& src_part,
                                            Matrix& x_grad);

/// Backward of fused_gather_matmul_scatter w.r.t. w. Returns the [K, N]
/// gradient as a fresh matrix (the caller add_inplace's it into the weight
/// sink exactly once, preserving the unfused accumulation granularity —
/// relational weights shared across layers must not see reassociated sums).
/// Mirrors matmul_transpose_a: serial, edges in original order 0..E-1,
/// zero-skip on the (typically post-ReLU sparse) x entries.
Matrix fused_gather_matmul_scatter_backward_w(const Matrix& x,
                                              const Matrix& out_grad,
                                              const std::vector<int>& src,
                                              const std::vector<int>& dst);

}  // namespace gnnhls
