#include "serve/status_names.h"

#include "serve/wire.h"

namespace gnnhls {

// AdmitStatus values are a strict prefix of WireResult — the property that
// lets wire_result_from_admit be a value cast and this table serve both
// enums. If either enum is reordered these fire at compile time.
static_assert(static_cast<std::uint32_t>(AdmitStatus::kAccepted) ==
              static_cast<std::uint32_t>(WireResult::kOk));
static_assert(static_cast<std::uint32_t>(AdmitStatus::kExpired) ==
              static_cast<std::uint32_t>(WireResult::kExpired));
static_assert(static_cast<std::uint32_t>(AdmitStatus::kOverCapacity) ==
              static_cast<std::uint32_t>(WireResult::kOverCapacity));
static_assert(static_cast<std::uint32_t>(AdmitStatus::kShutdown) ==
              static_cast<std::uint32_t>(WireResult::kShutdown));
static_assert(static_cast<std::uint32_t>(WireResult::kInternalError) ==
              kNumStatusNames - 1);

namespace {

const char* const kStatusNames[kNumStatusNames] = {
    "ok",                     // kOk / kAccepted (admission spells it
                              // "accepted" — see admit_status_name)
    "expired",                // kExpired
    "over-capacity",          // kOverCapacity
    "shutdown",               // kShutdown
    "over-connection-limit",  // kOverConnectionLimit
    "bad-payload",            // kBadPayload
    "bad-model",              // kBadModel
    "internal-error",         // kInternalError
};

}  // namespace

const char* status_name(std::uint32_t code) {
  return code < kNumStatusNames ? kStatusNames[code] : "unknown";
}

}  // namespace gnnhls
