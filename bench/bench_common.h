// Shared harness for the table-reproduction benches.
//
// Every bench binary accepts the same flags (--help prints
// print_bench_usage below) and defaults to a "smoke" scale that finishes in
// minutes on a laptop; --scale=full raises dataset/model sizes;
// --scale=paper documents the paper's configuration (40k programs, hidden
// 300, 5 layers, 100 epochs, 5 seeds — impractical without a cluster, but
// the code path is identical). Unknown flags print a warning to stderr and
// are otherwise ignored.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "dataset/dataset.h"
#include "obs/obs_config.h"
#include "obs/trace.h"
#include "suites/suites.h"
#include "support/flags.h"
#include "support/parallel.h"
#include "support/table.h"
#include "support/timer.h"

namespace gnnhls::bench {

struct BenchConfig {
  int dfg_graphs = 200;
  int cdfg_graphs = 150;
  int hidden = 32;
  int layers = 3;
  int epochs = 35;
  float lr = 1e-2F;
  float dropout = 0.0F;
  int runs = 2;
  int keep_best = 1;
  int threads = 0;     // 0 = hardware_concurrency
  int batch_size = 1;  // graphs per SGD step (1 = legacy accumulation loop)
  int grad_accum = 1;  // batches merged per Adam step (gives shards work)
  bool fused = false;  // fused message-passing executor (bit-identical knob;
                       // see gnn/mp_executor.h)
  bool arena = false;  // per-batch scratch arenas for tape temporaries
                       // (batched training + serving/DSE scratch)
  // Serving knobs (bench_serving; see serve/serving_batcher.h ServeConfig).
  int max_batch = 8;            // graphs per serving forward pass
  int batch_window_us = 200;    // micro-batch collection window (int: the
                                // flag parser is int-wide; ~35min max)
  int clients = 8;              // concurrent submitter threads
  int requests = 64;            // requests per client thread
  // Open-loop saturation knobs (bench_serving; see serve/scheduler.h).
  double arrival_rate = 0.0;    // base offered load in requests/sec for the
                                // open-loop sweep (0 = auto: the measured
                                // sequential predict() capacity)
  int deadline_us = 0;          // per-request deadline for the open-loop
                                // sweep (0 = auto: 50x sequential us/graph)
  int priority = 0;             // priority attached to open-loop requests
  int workers = 0;              // shared-scheduler worker threads (0 = one
                                // per served metric: equal thread budget
                                // with the per-metric batcher baseline)
  // TCP endpoint knobs (bench_serving socket arm; see serve/tcp_endpoint.h).
  int port = 0;                 // loopback port for the socket arm (0 =
                                // ephemeral kernel-assigned)
  int max_inflight = 64;        // per-connection in-flight cap before the
                                // endpoint rejects with kOverConnectionLimit
  // DSE knobs (bench_dse; see dse/design_space.h + dse/explorer.h).
  int dse_points = 48;          // design-space size floor (grid_with_at_least)
  int dse_topk = 0;             // ground-truth budget (0 = max(1, points/4))
  bool dse_active = false;      // run the model-in-the-loop active_halving
                                // arm (refit on fed-back ground truth) and
                                // gate it against the static baseline
  int dse_ensemble = 1;         // rank-metric deep-ensemble size for the
                                // active arm (1 = single predictor; >1
                                // enables uncertainty-bonus acquisition)
  // Observability knobs (src/obs/): --obs publishes serving/training
  // counters into MetricsRegistry::global() and arms span emission;
  // --trace-out additionally starts the TraceCollector and writes the
  // Chrome trace_event JSON to the given path at bench exit. Both are
  // execution-only (the bit-identity gates run with them on in CI).
  bool obs = false;
  std::string trace_out;
  std::uint64_t seed = 1;
  // Perf-trajectory artifact: when non-empty, the bench writes its result
  // table to this path as JSON (see BenchJsonLog; scripts/bench_compare.py
  // diffs two such artifacts).
  std::string json_path;
};

/// Every flag shared by the bench binaries, with defaults. Printed by
/// --help; unknown flags warn (see Flags::warn_unconsumed) instead of
/// aborting, so sweep scripts can pass a superset of flags across binaries.
inline void print_bench_usage(std::ostream& os) {
  os << "Shared bench flags (--name=value or --name value):\n"
        "  --help                 print this summary and exit\n"
        "  --scale=smoke|full|paper\n"
        "                         preset for dataset/model/epoch sizes\n"
        "                         (smoke: minutes on a laptop; paper is the\n"
        "                         documented DAC'22 configuration)\n"
        "  --dfg-graphs=N         synthetic DFG corpus size\n"
        "  --cdfg-graphs=N        synthetic CDFG corpus size\n"
        "  --hidden=N             GNN hidden width\n"
        "  --layers=N             GNN message-passing layers\n"
        "  --epochs=N             training epochs per fit\n"
        "  --lr=F                 Adam learning rate\n"
        "  --runs=N --best=K      repeat each fit N times, report best-K mean\n"
        "  --seed=N               base RNG seed (results are reproducible\n"
        "                         bit-for-bit at fixed seed/config)\n"
        "  --threads=N            bounds every parallelism layer: job-level\n"
        "                         run_parallel width, Trainer shards, kernel\n"
        "                         pool (1 = fully serial; 0 = hardware)\n"
        "  --batch-size=N         graphs per SGD step (1 = legacy\n"
        "                         accumulation loop; >1 = GraphBatch unions)\n"
        "  --grad-accum=N         mini-batches merged per Adam step\n"
        "  --fused=0|1            route message passing through the fused\n"
        "                         gather-matmul-scatter executor (results\n"
        "                         are bit-identical either way)\n"
        "  --arena=0|1            back per-batch tape temporaries with\n"
        "                         bump-pointer scratch arenas\n"
        "serving flags (bench_serving):\n"
        "  --max-batch=N          graphs per serving forward pass (1\n"
        "                         disables micro-batching)\n"
        "  --batch-window-us=N    longest wait for co-batchable traffic\n"
        "  --clients=N            concurrent submitter threads\n"
        "  --requests=N           requests per client thread\n"
        "  --arrival-rate=R       open-loop base offered load, requests/sec\n"
        "                         (0 = measured sequential capacity; the\n"
        "                         sweep offers 0.5x/1x/2x/4x of this base)\n"
        "  --deadline-us=N        open-loop per-request deadline (0 = 50x\n"
        "                         the sequential us/graph; requests past it\n"
        "                         are shed by the scheduler arm)\n"
        "  --priority=N           priority attached to open-loop requests\n"
        "  --workers=N            shared-scheduler worker pool size (0 =\n"
        "                         one per metric, matching the per-metric\n"
        "                         batcher baseline's thread budget)\n"
        "  --port=N               loopback port for the TCP socket arm\n"
        "                         (0 = ephemeral)\n"
        "  --max-inflight=N       per-connection in-flight request cap of\n"
        "                         the TCP endpoint (over-limit requests are\n"
        "                         rejected on the wire, never queued)\n"
        "dse flags (bench_dse):\n"
        "  --dse-points=N         minimum design-space size (the knob grid\n"
        "                         grows deterministically to at least N)\n"
        "  --dse-topk=K           successive-halving ground-truth budget\n"
        "                         (0 = max(1, points/4), the 25% cap)\n"
        "  --active=0|1           also run Explorer::active_halving (online\n"
        "                         refit on fed-back HLS ground truth) and\n"
        "                         gate it against successive halving at the\n"
        "                         SAME ground-truth budget\n"
        "  --ensemble=K           deep-ensemble size of the active arm's\n"
        "                         rank-metric model (K seed-offset members;\n"
        "                         K>1 scores mean + uncertainty and switches\n"
        "                         acquisition to the LCB uncertainty bonus)\n"
        "perf tracking:\n"
        "  --json=PATH            also write the bench's result table to\n"
        "                         PATH as JSON (BENCH_<name>.json artifact;\n"
        "                         compare runs with scripts/bench_compare.py)\n"
        "observability:\n"
        "  --obs=0|1              publish serving/training counters into the\n"
        "                         process-wide metrics registry and arm span\n"
        "                         emission (execution-only; values unchanged)\n"
        "  --trace-out=PATH       capture scoped trace spans and write them\n"
        "                         to PATH as Chrome trace_event JSON (load in\n"
        "                         Perfetto; implies span emission)\n";
}

inline BenchConfig parse_bench_config(int argc, const char* const* argv) {
  const Flags flags(argc, argv);
  if (flags.has("help")) {
    print_bench_usage(std::cout);
    std::exit(0);
  }
  BenchConfig cfg;
  const std::string scale = flags.get_string("scale", "smoke");
  if (scale == "full") {
    cfg.dfg_graphs = 600;
    cfg.cdfg_graphs = 400;
    cfg.hidden = 64;
    cfg.layers = 4;
    cfg.epochs = 60;
    cfg.runs = 3;
    cfg.keep_best = 2;
  } else if (scale == "paper") {
    cfg.dfg_graphs = 19120;   // paper §3.2
    cfg.cdfg_graphs = 18570;  // paper §3.2
    cfg.hidden = 300;         // paper §5.1
    cfg.layers = 5;
    cfg.epochs = 100;
    cfg.runs = 5;
    cfg.keep_best = 3;
  } else if (scale != "smoke") {
    throw std::invalid_argument("--scale must be smoke|full|paper");
  }
  cfg.dfg_graphs = flags.get_int("dfg-graphs", cfg.dfg_graphs);
  cfg.cdfg_graphs = flags.get_int("cdfg-graphs", cfg.cdfg_graphs);
  cfg.hidden = flags.get_int("hidden", cfg.hidden);
  cfg.layers = flags.get_int("layers", cfg.layers);
  cfg.epochs = flags.get_int("epochs", cfg.epochs);
  cfg.lr = static_cast<float>(flags.get_double("lr", cfg.lr));
  cfg.runs = flags.get_int("runs", cfg.runs);
  cfg.keep_best = flags.get_int("best", cfg.keep_best);
  cfg.threads = flags.get_int("threads", cfg.threads);
  cfg.batch_size = flags.get_int("batch-size", cfg.batch_size);
  cfg.grad_accum = flags.get_int("grad-accum", cfg.grad_accum);
  cfg.fused = flags.get_bool("fused", cfg.fused);
  cfg.arena = flags.get_bool("arena", cfg.arena);
  cfg.max_batch = flags.get_int("max-batch", cfg.max_batch);
  cfg.batch_window_us = flags.get_int("batch-window-us", cfg.batch_window_us);
  cfg.clients = flags.get_int("clients", cfg.clients);
  cfg.requests = flags.get_int("requests", cfg.requests);
  cfg.arrival_rate = flags.get_double("arrival-rate", cfg.arrival_rate);
  cfg.deadline_us = flags.get_int("deadline-us", cfg.deadline_us);
  cfg.priority = flags.get_int("priority", cfg.priority);
  cfg.workers = flags.get_int("workers", cfg.workers);
  cfg.port = flags.get_int("port", cfg.port);
  cfg.max_inflight = flags.get_int("max-inflight", cfg.max_inflight);
  cfg.dse_points = flags.get_int("dse-points", cfg.dse_points);
  cfg.dse_topk = flags.get_int("dse-topk", cfg.dse_topk);
  cfg.dse_active = flags.get_bool("active", cfg.dse_active);
  cfg.dse_ensemble = flags.get_int("ensemble", cfg.dse_ensemble);
  cfg.json_path = flags.get_string("json", "");
  cfg.obs = flags.get_bool("obs", cfg.obs);
  cfg.trace_out = flags.get_string("trace-out", "");
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.warn_unconsumed(std::cerr);
  if (cfg.threads <= 0) {
    cfg.threads = static_cast<int>(std::thread::hardware_concurrency());
    if (cfg.threads <= 0) cfg.threads = 4;
  }
  // --threads=N bounds every parallelism layer: job-level run_parallel
  // width, the Trainer's shard count (see train_config), and the kernel
  // thread pool. The table benches saturate cores with job-level
  // run_parallel(threads), so the kernel pool stays at one thread —
  // stacking row-parallel matmul or shard workers on top would
  // oversubscribe every core by up to threads x threads and hammer the
  // shared pool from every job at once; Trainer shards are numerics-neutral
  // by design, so they simply run inline on the one-thread pool. This also
  // pins --threads=1 to fully-serial kernels (deterministic single-job
  // timing); kernel- and shard-level parallelism is measured by bench_micro
  // (--threads there sizes the pool itself).
  ThreadPool::set_global_threads(1);
  tune_malloc_for_tensor_workloads();
  return cfg;
}

inline ModelConfig model_config(const BenchConfig& cfg) {
  ModelConfig mc;
  mc.hidden = cfg.hidden;
  mc.layers = cfg.layers;
  mc.dropout = cfg.dropout;
  mc.fused = cfg.fused;
  return mc;
}

inline TrainConfig train_config(const BenchConfig& cfg) {
  TrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.lr = cfg.lr;
  tc.batch_size = cfg.batch_size;
  tc.grad_accum = cfg.grad_accum;
  // Shard width follows --threads. Results are bit-identical at any shard
  // count (the Trainer's determinism contract), so this only decides where
  // epoch work may run, never what the tables report.
  tc.shards = cfg.threads;
  tc.arena = cfg.arena;
  tc.seed = cfg.seed;
  tc.obs.metrics = cfg.obs;
  tc.obs.trace = cfg.obs || !cfg.trace_out.empty();
  return tc;
}

/// The ObsConfig the bench's --obs/--trace-out flags ask for: metrics go
/// global with --obs; spans are armed by either flag (--trace-out without
/// --obs still captures a trace).
inline ObsConfig obs_config(const BenchConfig& cfg) {
  ObsConfig oc;
  oc.metrics = cfg.obs;
  oc.trace = cfg.obs || !cfg.trace_out.empty();
  return oc;
}

/// Starts the process-wide TraceCollector when --trace-out was given.
/// Call once, before the instrumented work.
inline void maybe_start_trace(const BenchConfig& cfg) {
  if (cfg.trace_out.empty()) return;
  TraceCollector::global().clear();
  TraceCollector::global().start();
}

/// Stops the collector and writes the trace JSON (no-op without
/// --trace-out). Call after the instrumented work has quiesced.
inline void maybe_write_trace(const BenchConfig& cfg) {
  if (cfg.trace_out.empty()) return;
  TraceCollector::global().stop();
  if (TraceCollector::global().write_json(cfg.trace_out)) {
    std::cout << "wrote " << cfg.trace_out << " ("
              << TraceCollector::global().event_count() << " events, "
              << TraceCollector::global().dropped() << " dropped)\n";
  } else {
    std::cerr << "warning: cannot write --trace-out file " << cfg.trace_out
              << "\n";
  }
}

inline RunProtocol protocol(const BenchConfig& cfg) {
  return RunProtocol{cfg.runs, cfg.keep_best};
}

inline std::vector<Sample> build_dfg(const BenchConfig& cfg) {
  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kDfg;
  dc.num_graphs = cfg.dfg_graphs;
  dc.seed = cfg.seed * 10007 + 1;
  return build_synthetic_dataset(dc);
}

inline std::vector<Sample> build_cdfg(const BenchConfig& cfg) {
  SyntheticDatasetConfig dc;
  dc.kind = GraphKind::kCdfg;
  dc.num_graphs = cfg.cdfg_graphs;
  dc.seed = cfg.seed * 10007 + 2;
  return build_synthetic_dataset(dc);
}

inline std::vector<Sample> build_real_world() {
  std::vector<Sample> samples;
  for (const SuiteProgram& p : all_real_world()) {
    samples.push_back(make_sample(p.func, GraphKind::kCdfg, HlsConfig{},
                                  p.suite + "/" + p.name));
  }
  return samples;
}

inline void print_dataset_line(const std::string& name,
                               const std::vector<Sample>& samples) {
  const DatasetStats st = compute_stats(samples);
  std::cout << "  " << name << ": " << st.graphs << " graphs, avg "
            << TextTable::num(st.avg_nodes, 1) << " nodes / "
            << TextTable::num(st.avg_edges, 1)
            << " edges, avg QoR [DSP " << TextTable::num(st.avg_metric[0], 1)
            << ", LUT " << TextTable::num(st.avg_metric[1], 0) << ", FF "
            << TextTable::num(st.avg_metric[2], 0) << ", CP "
            << TextTable::num(st.avg_metric[3], 2) << "ns]\n";
}

inline void print_header(const std::string& title, const BenchConfig& cfg) {
  std::cout << "==================================================\n"
            << title << "\n"
            << "==================================================\n"
            << "config: hidden=" << cfg.hidden << " layers=" << cfg.layers
            << " epochs=" << cfg.epochs << " runs=" << cfg.runs << "/best-"
            << cfg.keep_best << " threads=" << cfg.threads
            << " seed=" << cfg.seed << "\n";
}

/// Records shape-of-result checks ("who wins, by roughly what factor") and
/// prints a PASS/MISS summary. The table benches report only (paper-shape
/// expectations legitimately MISS at smoke scale, so their main() ignores
/// the results); a bench may gate its exit code on the subset of its checks
/// that are hard invariants (bench_serving exits 1 on a bit-identity
/// violation but keeps its load-dependent perf checks report-only).
class ShapeChecks {
 public:
  void check(const std::string& what, bool ok) {
    std::cout << (ok ? "  [PASS] " : "  [MISS] ") << what << "\n";
    ++total_;
    if (ok) ++passed_;
  }
  void summary() const {
    std::cout << "shape checks: " << passed_ << "/" << total_ << " passed\n";
  }
  bool all_passed() const { return passed_ == total_; }

 private:
  int passed_ = 0;
  int total_ = 0;
};

/// Machine-readable result log: the perf-trajectory half of every bench.
/// Benches add one entry per measured number (same rows their TextTable
/// prints) and write_bench_json emits a `BENCH_<name>.json` artifact that
/// scripts/bench_compare.py can diff against a committed baseline. Units
/// ending in "/s" (graphs/s, cand/s, items/s) are treated as higher-is-
/// better by the comparer; everything else (s, us, ns) as lower-is-better.
class BenchJsonLog {
 public:
  void add(const std::string& name, double value, const std::string& unit) {
    entries_.push_back(Entry{name, value, unit});
  }

  /// Writes {"bench": ..., "entries": [{name, value, unit}...]}.
  void write(std::ostream& os, const std::string& bench_name) const {
    os.precision(12);
    os << "{\n  \"bench\": \"" << escape(bench_name)
       << "\",\n  \"entries\": [";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) os << ',';
      os << "\n    {\"name\": \"" << escape(entries_[i].name)
         << "\", \"value\": " << entries_[i].value << ", \"unit\": \""
         << escape(entries_[i].unit) << "\"}";
    }
    os << "\n  ]\n}\n";
  }

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<Entry> entries_;
};

/// Writes the log to cfg.json_path (no-op when --json was not given).
inline void write_bench_json(const BenchConfig& cfg, const BenchJsonLog& log,
                             const std::string& bench_name) {
  if (cfg.json_path.empty()) return;
  std::ofstream out(cfg.json_path);
  if (!out) {
    std::cerr << "warning: cannot write --json file " << cfg.json_path
              << "\n";
    return;
  }
  log.write(out, bench_name);
  std::cout << "wrote " << cfg.json_path << "\n";
}

}  // namespace gnnhls::bench
