// Parameter containers and the Module base class.
//
// A Parameter is a persistent autograd leaf: its VarNode survives across
// tapes, so gradients from successive forward passes accumulate until the
// optimizer consumes and zeroes them.
#pragma once

#include <string>
#include <vector>

#include "tensor/autograd.h"

namespace gnnhls {

class Parameter {
 public:
  Parameter() = default;
  Parameter(std::string name, Matrix value)
      : name_(std::move(name)), var_(make_leaf(std::move(value), true)) {}

  const std::string& name() const { return name_; }
  const Var& var() const { return var_; }
  const Matrix& value() const { return var_.value(); }
  Matrix& mutable_value() { return var_.node()->value; }
  Matrix& mutable_grad() { return var_.node()->grad; }
  void zero_grad() { var_.node()->grad.fill(0.0F); }
  std::size_t size() const { return var_.value().size(); }

 private:
  std::string name_;
  Var var_;
};

/// Base class for anything holding trainable parameters. Subclasses register
/// their parameters (and submodules' parameters) so the optimizer can see a
/// flat list.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::vector<Parameter*>& parameters() const { return params_; }

  std::size_t parameter_count() const {
    std::size_t n = 0;
    for (const auto* p : params_) n += p->size();
    return n;
  }

  void zero_grad() {
    for (auto* p : params_) p->zero_grad();
  }

 protected:
  Module() = default;

  /// Registers a parameter owned by the subclass (must outlive the Module).
  Parameter& register_parameter(Parameter& p) {
    params_.push_back(&p);
    return p;
  }

  /// Adopts all parameters of a child module.
  void register_module(Module& child) {
    for (auto* p : child.params_) params_.push_back(p);
  }

 private:
  std::vector<Parameter*> params_;
};

}  // namespace gnnhls
