// Evaluation metrics: MAPE for graph-level regression (paper Tables 2/4/5)
// and per-class accuracy for node-level classification (paper Table 3).
#pragma once

#include <array>
#include <vector>

namespace gnnhls {

/// Mean absolute percentage error with a denominator floor:
/// mean(|pred - truth| / max(|truth|, floor)). The floor guards the
/// zero-resource case (a design using 0 DSPs); the paper does not state its
/// convention, so ours is recorded here.
double mape(const std::vector<double>& pred, const std::vector<double>& truth,
            double floor = 1.0);

/// Fraction of correct binary predictions.
double binary_accuracy(const std::vector<int>& pred,
                       const std::vector<int>& truth);

/// Average (fractional) ranks, 1-based; tied values share the mean of the
/// rank positions they straddle: [10, 20, 20, 30] -> [1, 2.5, 2.5, 4].
std::vector<double> average_ranks(const std::vector<double>& values);

/// Spearman rank correlation with proper tie handling: the Pearson
/// correlation of the average ranks. (The textbook 1 - 6*sum(d^2)/(n(n^2-1))
/// shortcut is equivalent only when all values are distinct — assigning
/// arbitrary distinct ranks to ties overstates |rho|.) Returns 0 when either
/// input is constant (the correlation is undefined, and a constant ranking
/// carries no ordering information). Throws on length mismatch or n < 2.
///
/// This is the DSE fidelity metric: rho(predicted QoR, true QoR) over a
/// candidate set says how well the predictor's ranking can drive pruning.
double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b);

}  // namespace gnnhls
