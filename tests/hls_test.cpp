#include <map>
#include <string>

#include <gtest/gtest.h>

#include "hls/hls_flow.h"
#include "progen/progen.h"

namespace gnnhls {
namespace {

LoweredProgram mac_program() {
  Function f;
  f.name = "mac";
  f.params.push_back(Param{"a", ScalarType{32, true}, 0, false});
  f.params.push_back(Param{"b", ScalarType{32, true}, 0, false});
  f.body.push_back(decl("t", ScalarType{32, true},
                        bin(BinOpKind::kMul, var("a"), var("b"))));
  f.body.push_back(decl("u", ScalarType{32, true},
                        bin(BinOpKind::kAdd, var("t"), lit(5))));
  f.body.push_back(ret(var("u")));
  return lower_to_dfg(f);
}

// ----- resource library -----

TEST(ResourceModelTest, WideMulUsesDspNarrowUsesLut) {
  ResourceLibrary lib;
  const OpCost wide = lib.cost(Opcode::kMul, 32);
  EXPECT_GT(wide.dsp, 0.0);
  EXPECT_TRUE(wide.sharable);
  const OpCost narrow = lib.cost(Opcode::kMul, 8);
  EXPECT_EQ(narrow.dsp, 0.0);
  EXPECT_GT(narrow.lut, 0.0);
}

TEST(ResourceModelTest, DivisionPrefersLuts) {
  // Paper §5.2: "divisions and bitwise operations prefer LUTs".
  ResourceLibrary lib;
  const OpCost div = lib.cost(Opcode::kSDiv, 32);
  EXPECT_EQ(div.dsp, 0.0);
  EXPECT_GT(div.lut, 50.0);
  EXPECT_GT(div.latency, 10);
}

TEST(ResourceModelTest, ConstantShiftIsFree) {
  ResourceLibrary lib;
  const OpCost var_shift = lib.cost(Opcode::kShl, 32, /*const_shift=*/false);
  const OpCost const_shift = lib.cost(Opcode::kShl, 32, /*const_shift=*/true);
  EXPECT_GT(var_shift.lut, 0.0);
  EXPECT_EQ(const_shift.lut, 0.0);
}

class ResourceMonotonicityTest : public ::testing::TestWithParam<Opcode> {};

TEST_P(ResourceMonotonicityTest, CostsNondecreasingInBitwidth) {
  ResourceLibrary lib;
  const Opcode op = GetParam();
  double prev_weight = -1.0;
  for (int w : {4, 8, 16, 32, 64, 128}) {
    const OpCost c = lib.cost(op, w);
    const double weight = c.dsp * 100.0 + c.lut + c.ff;
    EXPECT_GE(weight, prev_weight) << opcode_name(op) << " at width " << w;
    prev_weight = weight;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatapathOps, ResourceMonotonicityTest,
    ::testing::Values(Opcode::kAdd, Opcode::kMul, Opcode::kSDiv, Opcode::kAnd,
                      Opcode::kXor, Opcode::kICmp, Opcode::kSelect,
                      Opcode::kLoad, Opcode::kStore),
    [](const ::testing::TestParamInfo<Opcode>& info) {
      return std::string(opcode_name(info.param));
    });

TEST(ResourceModelTest, MuxCostGrowsWithSources) {
  ResourceLibrary lib;
  EXPECT_EQ(lib.sharing_mux_lut(32, 1), 0.0);
  EXPECT_LT(lib.sharing_mux_lut(32, 2), lib.sharing_mux_lut(32, 8));
}

// ----- scheduler -----

TEST(SchedulerTest, DependenciesNeverViolated) {
  LoweredProgram p = mac_program();
  ResourceLibrary lib;
  const ProgramSchedule ps = schedule_program(p, lib, HlsConfig{});
  std::map<int, const OpSchedule*> sched;
  for (const auto& bs : ps.blocks) {
    for (const auto& os : bs.ops) sched[os.node] = &os;
  }
  for (const auto& e : p.graph.edges()) {
    if (e.is_back_edge || e.type == EdgeType::kControl) continue;
    const auto s = sched.find(e.src);
    const auto d = sched.find(e.dst);
    if (s == sched.end() || d == sched.end()) continue;
    EXPECT_LE(s->second->end_cycle, d->second->end_cycle)
        << "edge " << e.src << "->" << e.dst;
  }
}

TEST(SchedulerTest, TightClockIncreasesStates) {
  LoweredProgram p1 = mac_program();
  LoweredProgram p2 = mac_program();
  ResourceLibrary lib;
  const ProgramSchedule fast =
      schedule_program(p1, lib, HlsConfig{.clock_ns = 20.0});
  const ProgramSchedule slow =
      schedule_program(p2, lib, HlsConfig{.clock_ns = 3.2});
  EXPECT_GE(slow.total_states, fast.total_states);
}

TEST(SchedulerTest, ChainNeverExceedsBudgetWhenSplittable) {
  // A chain of many small adds must be split across states so no state's
  // chain exceeds the effective budget (single ops may still exceed it).
  Function f;
  f.params.push_back(Param{"a", ScalarType{32, true}, 0, false});
  std::string prev = "a";
  for (int i = 0; i < 30; ++i) {
    const std::string name = "t" + std::to_string(i);
    f.body.push_back(decl(name, ScalarType{32, true},
                          bin(BinOpKind::kAdd, var(prev), lit(i + 1))));
    prev = name;
  }
  f.body.push_back(ret(var(prev)));
  LoweredProgram p = lower_to_dfg(f);
  ResourceLibrary lib;
  const HlsConfig cfg{.clock_ns = 6.0};
  const ProgramSchedule ps = schedule_program(p, lib, cfg);
  const double budget = cfg.clock_ns * (1.0 - cfg.clock_uncertainty);
  EXPECT_LE(ps.max_chain_ns, budget + 1e-9);
  EXPECT_GT(ps.total_states, 1);
  EXPECT_GT(ps.total_register_ff, 0.0);
}

TEST(SchedulerTest, MultiCycleOpsRegisterOutputs) {
  LoweredProgram p = mac_program();
  ResourceLibrary lib;
  const ProgramSchedule ps = schedule_program(p, lib, HlsConfig{});
  bool saw_multicycle = false;
  for (const auto& bs : ps.blocks) {
    for (const auto& os : bs.ops) {
      if (p.graph.node(os.node).opcode == Opcode::kMul) {
        EXPECT_GT(os.end_cycle, os.start_cycle);
        EXPECT_TRUE(os.registered);
        saw_multicycle = true;
      }
    }
  }
  EXPECT_TRUE(saw_multicycle);
}

TEST(SchedulerTest, ConstShiftDetection) {
  Function f;
  f.params.push_back(Param{"a", ScalarType{32, true}, 0, false});
  f.body.push_back(decl("x", ScalarType{32, true},
                        bin(BinOpKind::kShl, var("a"), lit(3))));
  f.body.push_back(decl("y", ScalarType{32, true},
                        bin(BinOpKind::kShr, var("a"), var("x"))));
  f.body.push_back(ret(var("y")));
  const LoweredProgram p = lower_to_dfg(f);
  int const_shifts = 0, var_shifts = 0;
  for (int i = 0; i < p.graph.num_nodes(); ++i) {
    const Opcode op = p.graph.node(i).opcode;
    if (op == Opcode::kShl || op == Opcode::kAShr) {
      (has_constant_shift_amount(p.graph, i) ? const_shifts : var_shifts)++;
    }
  }
  EXPECT_EQ(const_shifts, 1);
  EXPECT_EQ(var_shifts, 1);
}

// ----- full flow -----

TEST(HlsFlowTest, DeterministicAcrossRuns) {
  LoweredProgram p1 = mac_program();
  LoweredProgram p2 = mac_program();
  const HlsOutcome a = run_hls_flow(p1);
  const HlsOutcome b = run_hls_flow(p2);
  EXPECT_EQ(a.implemented.dsp, b.implemented.dsp);
  EXPECT_EQ(a.implemented.lut, b.implemented.lut);
  EXPECT_EQ(a.implemented.ff, b.implemented.ff);
  EXPECT_EQ(a.implemented.cp_ns, b.implemented.cp_ns);
}

TEST(HlsFlowTest, AnnotatesNodeResources) {
  LoweredProgram p = mac_program();
  run_hls_flow(p);
  bool mul_uses_dsp = false, add_uses_lut = false;
  for (const auto& n : p.graph.nodes()) {
    if (n.opcode == Opcode::kMul && n.resource.uses_dsp) mul_uses_dsp = true;
    if (n.opcode == Opcode::kAdd && n.resource.uses_lut) add_uses_lut = true;
    if (n.opcode == Opcode::kConst) {
      EXPECT_FALSE(n.resource.uses_dsp || n.resource.uses_lut ||
                   n.resource.uses_ff);
    }
  }
  EXPECT_TRUE(mul_uses_dsp);
  EXPECT_TRUE(add_uses_lut);
}

TEST(HlsFlowTest, ImplementationIncludesControlOverhead) {
  LoweredProgram p = mac_program();
  const HlsOutcome o = run_hls_flow(p);
  // FSM logic means LUT > pure datapath sum of the two ops.
  EXPECT_GT(o.implemented.lut, 0.0);
  EXPECT_GT(o.implemented.ff, 0.0);
  EXPECT_GT(o.implemented.cp_ns, 0.0);
  EXPECT_GT(o.implemented.dsp, 0.0);  // 32-bit mul
}

TEST(HlsFlowTest, ReportDivergesFromImplementationLikeVitis) {
  // Run on a loop-heavy synthetic program where sharing matters.
  Function f = generate_cdfg_program(7);
  LoweredProgram p = lower_to_cdfg(f);
  const HlsOutcome o = run_hls_flow(p);
  // Report overestimates LUT/FF (no sharing, no optimization).
  EXPECT_GT(o.reported.lut, o.implemented.lut);
  EXPECT_GT(o.reported.ff, 0.0);
  // Report claims timing ~ at the clock target.
  EXPECT_NEAR(o.reported.cp_ns, 8.575, 0.1);
}

TEST(HlsFlowTest, SharingReducesDspVersusReport) {
  // Many 32-bit multiplies in different loop iterations share DSPs in the
  // implementation but are fully counted by the report.
  Function f;
  f.params.push_back(Param{"a", ScalarType{32, true}, 0, false});
  f.body.push_back(decl("acc", ScalarType{32, true}, lit(0)));
  std::vector<StmtPtr> body;
  body.push_back(decl("p", ScalarType{32, true},
                      bin(BinOpKind::kMul, var("acc"), var("a"))));
  body.push_back(decl("q", ScalarType{32, true},
                      bin(BinOpKind::kMul, var("p"), lit(17))));
  body.push_back(assign("acc", bin(BinOpKind::kAdd, var("p"), var("q"))));
  f.body.push_back(for_stmt("i", 0, 16, 1, std::move(body)));
  f.body.push_back(ret(var("acc")));
  LoweredProgram p = lower_to_cdfg(f);
  const HlsOutcome o = run_hls_flow(p);
  EXPECT_GT(o.implemented.dsp, 0.0);
  EXPECT_LE(o.implemented.dsp, o.reported.dsp);
}

TEST(HlsFlowTest, BiggerProgramsUseMoreResources) {
  ProgenConfig small_cfg;
  small_cfg.min_ops = 8;
  small_cfg.max_ops = 12;
  ProgenConfig big_cfg;
  big_cfg.min_ops = 80;
  big_cfg.max_ops = 90;
  LoweredProgram small_p = lower_to_dfg(generate_dfg_program(3, small_cfg));
  LoweredProgram big_p = lower_to_dfg(generate_dfg_program(3, big_cfg));
  const HlsOutcome s = run_hls_flow(small_p);
  const HlsOutcome b = run_hls_flow(big_p);
  EXPECT_GT(b.implemented.lut, s.implemented.lut);
}

}  // namespace
}  // namespace gnnhls
