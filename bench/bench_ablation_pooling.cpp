// Ablation: sum vs mean graph pooling per metric (paper §5.1 uses "sum or
// mean pooling" without saying which where).
//
// Expectation from the target semantics: resource counts are extensive
// quantities (they grow with graph size), favoring sum pooling; CP timing
// is an intensive, local quantity, tolerating mean pooling.
#include "bench_common.h"

namespace gnnhls::bench {
namespace {

int run(int argc, const char* const* argv) {
  const BenchConfig cfg = parse_bench_config(argc, argv);
  print_header("Ablation — sum vs mean pooling (RGCN, DFG)", cfg);

  Timer total;
  const std::vector<Sample> dfg = build_dfg(cfg);
  print_dataset_line("DFG", dfg);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(dfg.size()), cfg.seed);

  double results[2][4] = {};  // [pooling][metric]
  std::vector<std::function<void()>> jobs;
  for (int pool = 0; pool < 2; ++pool) {
    for (int m = 0; m < kNumMetrics; ++m) {
      jobs.push_back([&, pool, m] {
        ExperimentSpec spec;
        spec.kind = GnnKind::kRgcn;
        spec.approach = Approach::kOffTheShelf;
        spec.metric = static_cast<Metric>(m);
        spec.model = model_config(cfg);
        spec.model.pooling = pool == 0 ? Pooling::kSum : Pooling::kMean;
        spec.train = train_config(cfg);
        spec.protocol = protocol(cfg);
        results[pool][m] = run_regression_experiment(spec, dfg, split)
                               .test_mape;
      });
    }
  }
  run_parallel(std::move(jobs), cfg.threads);

  TextTable table({"pooling", "DSP", "LUT", "FF", "CP"});
  BenchJsonLog json_log;
  for (int pool = 0; pool < 2; ++pool) {
    std::vector<std::string> row{pool == 0 ? "sum" : "mean"};
    for (int m = 0; m < kNumMetrics; ++m) {
      row.push_back(TextTable::pct(results[pool][m]));
      json_log.add(std::string(pool == 0 ? "sum " : "mean ") +
                       metric_name(static_cast<Metric>(m)),
                   results[pool][m], "mape");
    }
    table.add_row(std::move(row));
  }
  std::cout << "\n" << table.to_string();
  write_bench_json(cfg, json_log, "ablation_pooling");

  ShapeChecks checks;
  const double sum_resources =
      (results[0][0] + results[0][1] + results[0][2]) / 3.0;
  const double mean_resources =
      (results[1][0] + results[1][1] + results[1][2]) / 3.0;
  checks.check("sum pooling wins on extensive metrics (DSP/LUT/FF)",
               sum_resources < mean_resources);
  checks.check("CP tolerates mean pooling (within 3% absolute of sum)",
               results[1][3] < results[0][3] + 0.03);
  checks.summary();
  std::cout << "total wall time: " << TextTable::num(total.seconds(), 1)
            << "s\n";
  return 0;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
