#include "train/batch_plan.h"

#include <numeric>
#include <utility>

#include "support/arena.h"
#include "support/parallel.h"

namespace gnnhls {

namespace {

/// Assembles one core sequence for the given membership chunks. Runs under
/// an ArenaPause: cached cores may outlive any caller's scratch-arena scope,
/// so every matrix and vector here must be heap-backed. The pool workers the
/// assembly fans out to never carry an installed arena of their own.
std::vector<BatchCorePtr> assemble_cores(
    const std::vector<Sample>& samples,
    const std::vector<std::vector<int>>& chunks,
    const BatchPlan::FeatureFn& feature_of) {
  const ArenaPause heap_only;
  // Prefetch features serially: feature_of typically fills the shared
  // FeatureCache, and a deterministic fill order keeps hit/miss accounting
  // reproducible for tests regardless of pool width.
  std::vector<const Matrix*> feats(samples.size(), nullptr);
  for (const std::vector<int>& chunk : chunks) {
    for (int i : chunk) {
      if (feats[static_cast<std::size_t>(i)] == nullptr) {
        feats[static_cast<std::size_t>(i)] =
            &feature_of(samples[static_cast<std::size_t>(i)]);
      }
    }
  }
  std::vector<std::shared_ptr<BatchCore>> cores(chunks.size());
  for (std::size_t b = 0; b < chunks.size(); ++b) {
    cores[b] = std::make_shared<BatchCore>();
    cores[b]->members = chunks[b];
  }
  // The pure union/stack assembly fans out across batches; each shard fills
  // its own pre-built core, so the result is pool-width independent.
  parallel_shards(static_cast<int>(chunks.size()), [&](int b) {
    BatchCore& core = *cores[static_cast<std::size_t>(b)];
    std::vector<const GraphTensors*> parts;
    std::vector<const Matrix*> fparts;
    parts.reserve(core.members.size());
    fparts.reserve(core.members.size());
    for (int i : core.members) {
      parts.push_back(&samples[static_cast<std::size_t>(i)].tensors);
      fparts.push_back(feats[static_cast<std::size_t>(i)]);
    }
    core.batch = GraphBatch::build(parts);
    core.features = GraphBatch::stack_features(fparts);
  });
  return {cores.begin(), cores.end()};
}

/// Consecutive chunks of `order`, batch_size per chunk (last one shorter).
std::vector<std::vector<int>> chunk_membership(const std::vector<int>& order,
                                               int batch_size) {
  const std::size_t bs = static_cast<std::size_t>(batch_size);
  std::vector<std::vector<int>> chunks((order.size() + bs - 1) / bs);
  for (std::size_t pos = 0, b = 0; pos < order.size(); pos += bs, ++b) {
    const std::size_t end = std::min(pos + bs, order.size());
    chunks[b].assign(order.begin() + static_cast<long>(pos),
                     order.begin() + static_cast<long>(end));
  }
  return chunks;
}

std::vector<BatchCorePtr> cores_for(
    const std::vector<Sample>& samples,
    const std::vector<std::vector<int>>& chunks,
    const BatchPlan::FeatureFn& feature_of, const std::string& share_key) {
  if (share_key.empty()) return assemble_cores(samples, chunks, feature_of);
  return BatchCoreCache::global().lookup(share_key, [&] {
    return assemble_cores(samples, chunks, feature_of);
  });
}

}  // namespace

// ----- BatchCoreCache -----

BatchCoreCache& BatchCoreCache::global() {
  static BatchCoreCache* cache = new BatchCoreCache();  // leaked on purpose
  return *cache;
}

std::vector<BatchCorePtr> BatchCoreCache::lookup(const std::string& key,
                                                 const BuildFn& build) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  std::vector<BatchCorePtr> cores = build();
  map_.emplace(key, cores);
  return cores;
}

std::uint64_t BatchCoreCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t BatchCoreCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void BatchCoreCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

// ----- BatchPlan -----

std::string BatchPlan::share_key(const std::string& tag,
                                 std::uint64_t order_seed, int batch_size,
                                 const std::vector<Sample>& samples,
                                 const std::vector<int>& idx) {
  std::string key = tag;
  key += '|';
  key += std::to_string(order_seed);
  key += '|';
  key += std::to_string(batch_size);
  for (int i : idx) {
    key += '|';
    key += std::to_string(samples[static_cast<std::size_t>(i)].uid);
  }
  return key;
}

BatchPlan BatchPlan::build(const std::vector<Sample>& samples,
                           const std::vector<int>& train_idx, int batch_size,
                           const FeatureFn& feature_of, const LabelFn& label_of,
                           Rng order_rng, const std::string& share_key) {
  GNNHLS_CHECK(!train_idx.empty(), "BatchPlan: empty training set");
  BatchPlan plan(order_rng);
  plan.samples_ = &samples;
  plan.batch_size_ = batch_size;

  if (batch_size <= 1) {
    // Legacy per-sample view; the epoch loop shuffles sample_order_ with
    // exactly the draws the old fit loop made. Views and labels persist for
    // the whole fit, so they stay off any scratch arena.
    const ArenaPause heap_only;
    plan.sample_order_ = train_idx;
    plan.sample_features_.assign(samples.size(), nullptr);
    plan.sample_labels_.resize(samples.size());
    for (int i : train_idx) {
      plan.sample_features_[static_cast<std::size_t>(i)] =
          &feature_of(samples[static_cast<std::size_t>(i)]);
    }
    for (int i : train_idx) {
      plan.sample_labels_[static_cast<std::size_t>(i)] =
          label_of(samples[static_cast<std::size_t>(i)]);
    }
    return plan;
  }

  // Fix membership from one shuffle — the chunks the old loop's first epoch
  // would have produced. The shuffle always runs (also on a core-cache hit)
  // so the plan's Rng stream is independent of cache state.
  std::vector<int> order = train_idx;
  plan.order_rng_.shuffle(order);
  const std::vector<std::vector<int>> chunks =
      chunk_membership(order, batch_size);
  const std::vector<BatchCorePtr> cores =
      cores_for(samples, chunks, feature_of, share_key);
  GNNHLS_CHECK_EQ(cores.size(), chunks.size(), "BatchPlan: core count");

  // Per-plan labels: built serially (label_of may hit shared caches) and
  // heap-backed — they persist across every per-batch arena reset.
  const ArenaPause heap_only;
  std::vector<Matrix> labels(samples.size());
  for (int i : train_idx) {
    labels[static_cast<std::size_t>(i)] =
        label_of(samples[static_cast<std::size_t>(i)]);
  }
  plan.items_.resize(chunks.size());
  for (std::size_t b = 0; b < chunks.size(); ++b) {
#ifndef NDEBUG
    // A stale share_key (wrong seed / uid set) would silently train on the
    // wrong unions; membership is cheap to verify.
    GNNHLS_CHECK(cores[b]->members == chunks[b],
                 "BatchPlan: cached core membership mismatch (bad share_key)");
#endif
    Item& item = plan.items_[b];
    item.core = cores[b];
    std::vector<const Matrix*> lparts;
    lparts.reserve(chunks[b].size());
    for (int i : chunks[b]) {
      lparts.push_back(&labels[static_cast<std::size_t>(i)]);
    }
    item.labels = GraphBatch::stack_features(lparts);
  }

  plan.batch_order_.resize(plan.items_.size());
  std::iota(plan.batch_order_.begin(), plan.batch_order_.end(), 0);
  return plan;
}

BatchPlan BatchPlan::build_segments(const std::vector<Sample>& samples,
                                    const std::vector<Segment>& segments,
                                    int batch_size,
                                    const FeatureFn& feature_of,
                                    const LabelFn& label_of, Rng rotation_rng) {
  GNNHLS_CHECK(!segments.empty(), "build_segments: no segments");
  GNNHLS_CHECK(batch_size >= 2, "build_segments: needs batched mode");
  BatchPlan plan(rotation_rng);
  plan.samples_ = &samples;
  plan.batch_size_ = batch_size;

  // Resolve each segment's cores independently: same shuffle + chunking a
  // plain build() over (idx, order_seed) would produce, so a segment that
  // was previously fitted under the same share_key is a cache hit and only
  // genuinely new segments pay assembly.
  std::vector<std::vector<int>> all_chunks;
  std::vector<BatchCorePtr> all_cores;
  for (const Segment& seg : segments) {
    GNNHLS_CHECK(!seg.idx.empty(), "build_segments: empty segment");
    std::vector<int> order = seg.idx;
    Rng seg_rng(seg.order_seed);
    seg_rng.shuffle(order);
    const std::vector<std::vector<int>> chunks =
        chunk_membership(order, batch_size);
    const std::vector<BatchCorePtr> cores =
        cores_for(samples, chunks, feature_of, seg.share_key);
    GNNHLS_CHECK_EQ(cores.size(), chunks.size(), "build_segments: core count");
    all_chunks.insert(all_chunks.end(), chunks.begin(), chunks.end());
    all_cores.insert(all_cores.end(), cores.begin(), cores.end());
  }

  // Per-plan labels over the union of segment members (metric-specific, so
  // never shared); heap-backed like every persistent plan matrix.
  const ArenaPause heap_only;
  std::vector<Matrix> labels(samples.size());
  for (const std::vector<int>& chunk : all_chunks) {
    for (int i : chunk) {
      if (labels[static_cast<std::size_t>(i)].empty()) {
        labels[static_cast<std::size_t>(i)] =
            label_of(samples[static_cast<std::size_t>(i)]);
      }
    }
  }
  plan.items_.resize(all_chunks.size());
  for (std::size_t b = 0; b < all_chunks.size(); ++b) {
#ifndef NDEBUG
    GNNHLS_CHECK(
        all_cores[b]->members == all_chunks[b],
        "build_segments: cached core membership mismatch (bad share_key)");
#endif
    Item& item = plan.items_[b];
    item.core = all_cores[b];
    std::vector<const Matrix*> lparts;
    lparts.reserve(all_chunks[b].size());
    for (int i : all_chunks[b]) {
      lparts.push_back(&labels[static_cast<std::size_t>(i)]);
    }
    item.labels = GraphBatch::stack_features(lparts);
  }

  plan.batch_order_.resize(plan.items_.size());
  std::iota(plan.batch_order_.begin(), plan.batch_order_.end(), 0);
  return plan;
}

BatchPlan BatchPlan::build_eval(const std::vector<Sample>& samples,
                                const std::vector<int>& idx, int batch_size,
                                const FeatureFn& feature_of,
                                const std::string& share_key) {
  GNNHLS_CHECK(!idx.empty(), "BatchPlan: empty evaluation set");
  GNNHLS_CHECK(batch_size >= 2, "build_eval: needs batched mode");
  BatchPlan plan{Rng(0)};  // eval plans never draw from the rotation rng
  plan.samples_ = &samples;
  plan.batch_size_ = batch_size;
  const std::vector<std::vector<int>> chunks =
      chunk_membership(idx, batch_size);
  const std::vector<BatchCorePtr> cores =
      cores_for(samples, chunks, feature_of, share_key);
  GNNHLS_CHECK_EQ(cores.size(), chunks.size(), "build_eval: core count");
  plan.items_.resize(chunks.size());
  for (std::size_t b = 0; b < chunks.size(); ++b) {
#ifndef NDEBUG
    GNNHLS_CHECK(cores[b]->members == chunks[b],
                 "build_eval: cached core membership mismatch (bad share_key)");
#endif
    plan.items_[b].core = cores[b];
  }
  plan.batch_order_.resize(plan.items_.size());
  std::iota(plan.batch_order_.begin(), plan.batch_order_.end(), 0);
  return plan;
}

const std::vector<int>& BatchPlan::next_epoch_batch_order() {
  GNNHLS_CHECK(batched(), "next_epoch_batch_order: legacy-mode plan");
  if (!first_epoch_served_) {
    // Epoch 0 visits the build order — together with membership fixing this
    // reproduces the old loop's first epoch exactly.
    first_epoch_served_ = true;
    return batch_order_;
  }
  order_rng_.shuffle(batch_order_);
  return batch_order_;
}

const std::vector<int>& BatchPlan::next_epoch_sample_order() {
  GNNHLS_CHECK(!batched(), "next_epoch_sample_order: batched-mode plan");
  order_rng_.shuffle(sample_order_);
  return sample_order_;
}

const GraphTensors& BatchPlan::sample_tensors(int sample_idx) const {
  return (*samples_)[static_cast<std::size_t>(sample_idx)].tensors;
}

const Matrix& BatchPlan::sample_features(int sample_idx) const {
  const Matrix* f = sample_features_[static_cast<std::size_t>(sample_idx)];
  GNNHLS_CHECK(f != nullptr, "sample_features: index not in training set");
  return *f;
}

const Matrix& BatchPlan::sample_labels(int sample_idx) const {
  return sample_labels_[static_cast<std::size_t>(sample_idx)];
}

}  // namespace gnnhls
