#include "graph/dot_export.h"

#include <sstream>

namespace gnnhls {

namespace {

const char* fill_color(const IrNode& n) {
  if (n.resource.uses_dsp) return "lightsalmon";     // DSP
  if (n.resource.uses_ff && !n.resource.uses_lut) return "lightskyblue";
  if (n.resource.uses_lut) return "palegreen";
  return "white";  // control / const / free logic
}

const char* edge_style(const IrEdge& e) {
  switch (e.type) {
    case EdgeType::kControl: return "dashed";
    case EdgeType::kMemory: return "dotted";
    default: return "solid";
  }
}

}  // namespace

std::string to_dot(const IrGraph& graph) {
  std::ostringstream os;
  os << "digraph \"" << (graph.name().empty() ? "ir" : graph.name())
     << "\" {\n  rankdir=TB;\n  node [shape=box, style=filled];\n";
  for (int i = 0; i < graph.num_nodes(); ++i) {
    const IrNode& n = graph.node(i);
    os << "  n" << i << " [label=\"" << opcode_name(n.opcode) << ':'
       << n.bitwidth << "\", fillcolor=" << fill_color(n) << "];\n";
  }
  for (const IrEdge& e : graph.edges()) {
    os << "  n" << e.src << " -> n" << e.dst
       << " [style=" << edge_style(e);
    if (e.is_back_edge) os << ", color=red, constraint=false";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace gnnhls
