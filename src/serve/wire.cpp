#include "serve/wire.h"

#include <cstring>

#include "serve/status_names.h"

namespace gnnhls {

namespace {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint8_t get_u8(const char* p) { return static_cast<std::uint8_t>(*p); }

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24);
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

void put_header(std::string& out, std::uint8_t type, std::uint32_t body_len) {
  put_u32(out, kWireMagic);
  put_u8(out, kWireMajor);
  put_u8(out, kWireMinor);
  put_u8(out, type);
  put_u8(out, 0);  // reserved
  put_u32(out, body_len);
}

}  // namespace

std::string wire_result_name(WireResult r) {
  // One shared table (serve/status_names.h) names wire results, admission
  // statuses and metric labels, so they cannot drift apart.
  return status_name(static_cast<std::uint32_t>(r));
}

WireResult wire_result_from_admit(AdmitStatus s) {
  switch (s) {
    case AdmitStatus::kAccepted: return WireResult::kOk;
    case AdmitStatus::kExpired: return WireResult::kExpired;
    case AdmitStatus::kOverCapacity: return WireResult::kOverCapacity;
    case AdmitStatus::kShutdown: return WireResult::kShutdown;
  }
  return WireResult::kInternalError;
}

std::string wire_status_name(WireStatus s) {
  switch (s) {
    case WireStatus::kFrame: return "frame";
    case WireStatus::kNeedMore: return "need-more";
    case WireStatus::kBadMagic: return "bad-magic";
    case WireStatus::kUnsupportedMajor: return "unsupported-major";
    case WireStatus::kBadType: return "bad-type";
    case WireStatus::kOversized: return "oversized";
    case WireStatus::kBadBody: return "bad-body";
  }
  return "unknown";
}

void append_request_frame(std::string& out, const RequestFrame& f) {
  const std::size_t body_len = kWireRequestFixedBytes + f.payload.size();
  out.reserve(out.size() + kWireHeaderBytes + body_len);
  put_header(out, kWireTypeRequest, static_cast<std::uint32_t>(body_len));
  put_u64(out, f.request_id);
  put_u32(out, f.model);
  put_u32(out, static_cast<std::uint32_t>(f.priority));
  put_u64(out, static_cast<std::uint64_t>(f.deadline_us));
  out.append(f.payload);
}

void append_response_frame(std::string& out, const ResponseFrame& f) {
  out.reserve(out.size() + kWireHeaderBytes + kWireResponseBodyBytes);
  put_header(out, kWireTypeResponse,
             static_cast<std::uint32_t>(kWireResponseBodyBytes));
  put_u64(out, f.request_id);
  put_u32(out, static_cast<std::uint32_t>(f.result));
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(f.prediction));
  std::memcpy(&bits, &f.prediction, sizeof(bits));
  put_u64(out, bits);
}

namespace {

void append_stats_frame(std::string& out, std::uint8_t type,
                        const StatsFrame& f) {
  const std::size_t body_len = kWireStatsFixedBytes + f.text.size();
  out.reserve(out.size() + kWireHeaderBytes + body_len);
  put_header(out, type, static_cast<std::uint32_t>(body_len));
  put_u64(out, f.request_id);
  out.append(f.text);
}

}  // namespace

void append_stats_request_frame(std::string& out, const StatsFrame& f) {
  append_stats_frame(out, kWireTypeStatsRequest, f);
}

void append_stats_response_frame(std::string& out, const StatsFrame& f) {
  append_stats_frame(out, kWireTypeStatsResponse, f);
}

std::string encode_request_frame(const RequestFrame& f) {
  std::string out;
  append_request_frame(out, f);
  return out;
}

std::string encode_response_frame(const ResponseFrame& f) {
  std::string out;
  append_response_frame(out, f);
  return out;
}

std::string encode_stats_request_frame(const StatsFrame& f) {
  std::string out;
  append_stats_request_frame(out, f);
  return out;
}

std::string encode_stats_response_frame(const StatsFrame& f) {
  std::string out;
  append_stats_response_frame(out, f);
  return out;
}

void WireDecoder::feed(const char* data, std::size_t n) {
  if (wire_status_is_error(poison_)) return;  // stream already dead
  // Compact the consumed prefix before appending so the buffer never grows
  // past one frame + one read.
  if (pos_ > 0) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

WireStatus WireDecoder::next(DecodedFrame& out) {
  if (wire_status_is_error(poison_)) return poison_;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kWireHeaderBytes) return WireStatus::kNeedMore;
  const char* h = buf_.data() + pos_;
  if (get_u32(h) != kWireMagic) return poison_ = WireStatus::kBadMagic;
  const std::uint8_t major = get_u8(h + 4);
  const std::uint8_t minor = get_u8(h + 5);
  const std::uint8_t type = get_u8(h + 6);
  const std::uint32_t body_len = get_u32(h + 8);
  if (major != kWireMajor) return poison_ = WireStatus::kUnsupportedMajor;
  if (type != kWireTypeRequest && type != kWireTypeResponse &&
      type != kWireTypeStatsRequest && type != kWireTypeStatsResponse) {
    return poison_ = WireStatus::kBadType;
  }
  if (body_len > max_body_) return poison_ = WireStatus::kOversized;
  if (avail < kWireHeaderBytes + body_len) return WireStatus::kNeedMore;

  const char* body = h + kWireHeaderBytes;
  out = DecodedFrame{};
  out.type = type;
  out.version_minor = minor;
  if (type == kWireTypeRequest) {
    if (body_len < kWireRequestFixedBytes) {
      return poison_ = WireStatus::kBadBody;
    }
    out.request.request_id = get_u64(body);
    out.request.model = get_u32(body + 8);
    out.request.priority = static_cast<std::int32_t>(get_u32(body + 12));
    out.request.deadline_us = static_cast<std::int64_t>(get_u64(body + 16));
    out.request.payload.assign(body + kWireRequestFixedBytes,
                               body_len - kWireRequestFixedBytes);
  } else if (type == kWireTypeStatsRequest || type == kWireTypeStatsResponse) {
    if (body_len < kWireStatsFixedBytes) {
      return poison_ = WireStatus::kBadBody;
    }
    out.stats.request_id = get_u64(body);
    out.stats.text.assign(body + kWireStatsFixedBytes,
                          body_len - kWireStatsFixedBytes);
  } else {
    if (body_len < kWireResponseBodyBytes) {
      return poison_ = WireStatus::kBadBody;
    }
    out.response.request_id = get_u64(body);
    const std::uint32_t code = get_u32(body + 8);
    if (code > static_cast<std::uint32_t>(WireResult::kInternalError)) {
      return poison_ = WireStatus::kBadBody;
    }
    out.response.result = static_cast<WireResult>(code);
    const std::uint64_t bits = get_u64(body + 12);
    std::memcpy(&out.response.prediction, &bits, sizeof(bits));
  }
  pos_ += kWireHeaderBytes + body_len;
  return WireStatus::kFrame;
}

}  // namespace gnnhls
