// MachSuite-style kernels (Reagen et al., IISWC'14): 16 accelerator
// workloads. Integer-only mini versions preserving each kernel's loop and
// dataflow structure.
#include "suites/suites.h"

#include "suites/dsl.h"

namespace gnnhls {

namespace {

using namespace suite_dsl;  // NOLINT(google-build-using-namespace)

Function ms_gemm_ncubed() {
  constexpr long n = 8;
  Function f;
  f.name = "gemm_ncubed";
  f.params = {in_array("m1", n * n), in_array("m2", n * n)};
  f.body.push_back(decl_array("prod", ScalarType{32, true}, n * n));
  f.body.push_back(loop(
      "i", n,
      stmts(loop(
          "j", n,
          stmts(decl("sum", ScalarType{32, true}, lit(0)),
                loop("k", n,
                     stmts(assign(
                         "sum",
                         var("sum") + A("m1", idx2("i", "k", n)) *
                                          A("m2", idx2("k", "j", n))))),
                assign_array("prod", idx2("i", "j", n), var("sum")))))));
  f.body.push_back(ret(A("prod", lit(0))));
  return f;
}

Function ms_gemm_blocked() {
  constexpr long n = 8, b = 4;
  Function f;
  f.name = "gemm_blocked";
  f.params = {in_array("m1", n * n), in_array("m2", n * n)};
  f.body.push_back(decl_array("prod", ScalarType{32, true}, n * n));
  // Blocked loop nest: jj, kk, i, k, j (5 deep), built inside-out.
  auto j_body = stmts(
      decl("jidx", ScalarType{32, true}, var("jj") * lit(b) + var("j")),
      assign_array("prod", var("i") * lit(n) + var("jidx"),
                   A("prod", var("i") * lit(n) + var("jidx")) +
                       var("tmp") * A("m2", var("kidx") * lit(n) +
                                              var("jidx"))));
  auto k_body = stmts(
      decl("kidx", ScalarType{32, true}, var("kk") * lit(b) + var("k")),
      decl("tmp", ScalarType{32, true},
           A("m1", var("i") * lit(n) + var("kidx"))),
      loop("j", b, std::move(j_body)));
  auto i_body = stmts(loop("k", b, std::move(k_body)));
  auto kk_body = stmts(loop("i", n, std::move(i_body)));
  f.body.push_back(
      loop("jj", n / b, stmts(loop("kk", n / b, std::move(kk_body)))));
  f.body.push_back(ret(A("prod", lit(0))));
  return f;
}

Function ms_spmv_crs() {
  constexpr long nnz = 32, rows = 8;
  Function f;
  f.name = "spmv_crs";
  f.params = {in_array("val", nnz), in_array("cols", nnz),
              in_array("rowDelimiters", rows + 1), in_array("vec", rows)};
  f.body.push_back(decl_array("out", ScalarType{32, true}, rows));
  f.body.push_back(loop(
      "i", rows,
      stmts(decl("sum", ScalarType{32, true}, lit(0)),
            loop("j", nnz / rows,
                 stmts(decl("k", ScalarType{32, true},
                            (A("rowDelimiters", var("i")) + var("j")) &
                                lit(nnz - 1)),
                       assign("sum",
                              var("sum") +
                                  A("val", var("k")) *
                                      A("vec", A("cols", var("k")) &
                                                   lit(rows - 1))))),
            assign_array("out", var("i"), var("sum")))));
  f.body.push_back(ret(A("out", lit(0))));
  return f;
}

Function ms_stencil2d() {
  constexpr long r = 8, c = 8;
  Function f;
  f.name = "stencil2d";
  f.params = {in_array("orig", r * c), in_array("filter", 9)};
  f.body.push_back(decl_array("sol", ScalarType{32, true}, r * c));
  f.body.push_back(loop(
      "i", r - 2,
      stmts(loop(
          "j", c - 2,
          stmts(decl("temp", ScalarType{32, true}, lit(0)),
                loop("k", 3,
                     stmts(loop(
                         "l", 3,
                         stmts(assign(
                             "temp",
                             var("temp") +
                                 A("filter", var("k") * lit(3) + var("l")) *
                                     A("orig", (var("i") + var("k")) * lit(c) +
                                                   var("j") + var("l"))))))),
                assign_array("sol", idx2("i", "j", c), var("temp")))))));
  f.body.push_back(ret(A("sol", lit(0))));
  return f;
}

Function ms_stencil3d() {
  constexpr long d = 4, r = 4, c = 4;
  Function f;
  f.name = "stencil3d";
  f.params = {in_array("orig", d * r * c), in_scalar("c0"), in_scalar("c1")};
  f.body.push_back(decl_array("sol", ScalarType{32, true}, d * r * c));
  f.body.push_back(loop(
      "i", d - 2,
      stmts(loop(
          "j", r - 2,
          stmts(loop(
              "k", c - 2,
              stmts(
                  decl("center", ScalarType{32, true},
                       A("orig", (var("i") + lit(1)) * lit(r * c) +
                                     (var("j") + lit(1)) * lit(c) + var("k") +
                                     lit(1))),
                  decl("ring", ScalarType{32, true},
                       A("orig", var("i") * lit(r * c) +
                                     (var("j") + lit(1)) * lit(c) + var("k") +
                                     lit(1)) +
                           A("orig", (var("i") + lit(2)) * lit(r * c) +
                                         (var("j") + lit(1)) * lit(c) +
                                         var("k") + lit(1)) +
                           A("orig", (var("i") + lit(1)) * lit(r * c) +
                                         var("j") * lit(c) + var("k") +
                                         lit(1)) +
                           A("orig", (var("i") + lit(1)) * lit(r * c) +
                                         (var("j") + lit(2)) * lit(c) +
                                         var("k") + lit(1))),
                  assign_array("sol",
                               (var("i") + lit(1)) * lit(r * c) +
                                   (var("j") + lit(1)) * lit(c) + var("k") +
                                   lit(1),
                               var("c0") * var("center") +
                                   var("c1") * var("ring")))))))));
  f.body.push_back(ret(A("sol", lit(0))));
  return f;
}

Function ms_fft_strided() {
  constexpr long n = 16;
  Function f;
  f.name = "fft_strided";
  f.params = {in_array("real", n), in_array("img", n),
              in_array("real_twid", n / 2), in_array("img_twid", n / 2)};
  std::vector<StmtPtr> inner = stmts(
      decl("even", ScalarType{32, true}, var("odd") - lit(n / 2)),
      decl("rtmp", ScalarType{32, true},
           A("real", var("even") & lit(n - 1)) -
               A("real", var("odd") & lit(n - 1))),
      decl("itmp", ScalarType{32, true},
           A("img", var("even") & lit(n - 1)) -
               A("img", var("odd") & lit(n - 1))),
      assign_array("real", var("even") & lit(n - 1),
                   A("real", var("even") & lit(n - 1)) +
                       A("real", var("odd") & lit(n - 1))),
      assign_array("img", var("even") & lit(n - 1),
                   A("img", var("even") & lit(n - 1)) +
                       A("img", var("odd") & lit(n - 1))),
      decl("tw", ScalarType{32, true}, var("even") & lit(n / 2 - 1)),
      assign_array(
          "real", var("odd") & lit(n - 1),
          (A("real_twid", var("tw")) * var("rtmp") -
           A("img_twid", var("tw")) * var("itmp")) >>
              lit(8)),
      assign_array(
          "img", var("odd") & lit(n - 1),
          (A("real_twid", var("tw")) * var("itmp") +
           A("img_twid", var("tw")) * var("rtmp")) >>
              lit(8)));
  std::vector<StmtPtr> body = stmts(
      decl("odd", ScalarType{32, true}, var("half") + var("t")));
  for (auto& s : inner) body.push_back(std::move(s));
  f.body.push_back(loop(
      "span", 4,  // log2(n) outer stages
      stmts(decl("half", ScalarType{32, true}, lit(n) >> (var("span") + lit(1))),
            loop("t", n / 2, std::move(body)))));
  f.body.push_back(ret(A("real", lit(0))));
  return f;
}

Function ms_fft_transpose() {
  constexpr long n = 16, s = 4;
  Function f;
  f.name = "fft_transpose";
  f.params = {in_array("in_x", n), in_array("in_y", n)};
  f.body.push_back(decl_array("wx", ScalarType{32, true}, n));
  f.body.push_back(decl_array("wy", ScalarType{32, true}, n));
  f.body.push_back(loop(
      "i", s,
      stmts(loop("j", s,
                 stmts(assign_array("wx", var("j") * lit(s) + var("i"),
                                    A("in_x", idx2("i", "j", s))),
                       assign_array("wy", var("j") * lit(s) + var("i"),
                                    A("in_y", idx2("i", "j", s))))))));
  f.body.push_back(loop(
      "k", n / 2,
      stmts(decl("a", ScalarType{32, true}, A("wx", var("k"))),
            decl("b", ScalarType{32, true}, A("wx", var("k") + lit(n / 2))),
            assign_array("wx", var("k"), var("a") + var("b")),
            assign_array("wx", var("k") + lit(n / 2), var("a") - var("b")))));
  f.body.push_back(ret(A("wx", lit(0)) + A("wy", lit(0))));
  return f;
}

Function ms_bfs_queue() {
  constexpr long nodes = 16, edges = 32, levels = 4;
  Function f;
  f.name = "bfs_queue";
  f.params = {in_array("edge_begin", nodes), in_array("edge_end", nodes),
              in_array("dst", edges)};
  f.body.push_back(decl_array("level", ScalarType{32, true}, nodes));
  f.body.push_back(decl("cnt", ScalarType{32, true}, lit(0)));
  f.body.push_back(loop(
      "horizon", levels,
      stmts(loop(
          "n", nodes,
          stmts(if_stmt(
              eq(A("level", var("n")), var("horizon")),
              stmts(loop(
                  "e", edges / nodes,
                  stmts(
                      decl("eid", ScalarType{32, true},
                           (A("edge_begin", var("n")) + var("e")) &
                               lit(edges - 1)),
                      decl("tgt", ScalarType{32, true},
                           A("dst", var("eid")) & lit(nodes - 1)),
                      if_stmt(eq(A("level", var("tgt")), lit(0)),
                              stmts(assign_array("level", var("tgt"),
                                                 var("horizon") + lit(1)),
                                    assign("cnt",
                                           var("cnt") + lit(1)))))))))))));
  f.body.push_back(ret(var("cnt")));
  return f;
}

Function ms_kmp() {
  constexpr long pattern = 4, text = 32;
  Function f;
  f.name = "kmp";
  f.params = {in_array("pat", pattern), in_array("input", text)};
  f.body.push_back(decl_array("kmp_next", ScalarType{32, true}, pattern));
  f.body.push_back(decl("k", ScalarType{32, true}, lit(0)));
  f.body.push_back(loop(
      "q", pattern - 1,
      stmts(if_stmt(eq(A("pat", var("k")), A("pat", var("q") + lit(1))),
                    stmts(assign("k", var("k") + lit(1))),
                    stmts(assign("k", lit(0)))),
            assign_array("kmp_next", var("q") + lit(1), var("k")))));
  f.body.push_back(decl("matches", ScalarType{32, true}, lit(0)));
  f.body.push_back(decl("q2", ScalarType{32, true}, lit(0)));
  f.body.push_back(loop(
      "i", text,
      stmts(if_stmt(eq(A("pat", var("q2") & lit(pattern - 1)),
                       A("input", var("i"))),
                    stmts(assign("q2", var("q2") + lit(1))),
                    stmts(assign(
                        "q2", A("kmp_next", var("q2") & lit(pattern - 1))))),
            if_stmt(eq(var("q2"), lit(pattern)),
                    stmts(assign("matches", var("matches") + lit(1)),
                          assign("q2", lit(0)))))));
  f.body.push_back(ret(var("matches")));
  return f;
}

Function ms_md_knn() {
  constexpr long atoms = 8, neighbors = 4;
  Function f;
  f.name = "md_knn";
  f.params = {in_array("px", atoms), in_array("py", atoms),
              in_array("pz", atoms), in_array("nl", atoms * neighbors)};
  f.body.push_back(decl_array("fx", ScalarType{32, true}, atoms));
  f.body.push_back(loop(
      "i", atoms,
      stmts(
          decl("fxi", ScalarType{32, true}, lit(0)),
          loop("j", neighbors,
               stmts(decl("nid", ScalarType{32, true},
                          A("nl", var("i") * lit(neighbors) + var("j")) &
                              lit(atoms - 1)),
                     decl("dx", ScalarType{32, true},
                          A("px", var("i")) - A("px", var("nid"))),
                     decl("dy", ScalarType{32, true},
                          A("py", var("i")) - A("py", var("nid"))),
                     decl("dz", ScalarType{32, true},
                          A("pz", var("i")) - A("pz", var("nid"))),
                     decl("r2", ScalarType{32, true},
                          var("dx") * var("dx") + var("dy") * var("dy") +
                              var("dz") * var("dz")),
                     // 1/r^6 potential approximated in fixed point
                     decl("r2inv", ScalarType{32, true},
                          lit(1 << 16) / (var("r2") | lit(1))),
                     decl("r6inv", ScalarType{32, true},
                          (var("r2inv") * var("r2inv")) >> lit(8)),
                     decl("pot", ScalarType{32, true},
                          var("r6inv") * (var("r6inv") - lit(16)) >> lit(8)),
                     assign("fxi", var("fxi") + var("pot") * var("dx")))),
          assign_array("fx", var("i"), var("fxi")))));
  f.body.push_back(ret(A("fx", lit(0))));
  return f;
}

Function ms_nw() {
  constexpr long alen = 8, blen = 8;
  Function f;
  f.name = "nw";
  f.params = {in_array("seqA", alen), in_array("seqB", blen)};
  f.body.push_back(decl_array("M", ScalarType{32, true},
                              (alen + 1) * (blen + 1)));
  f.body.push_back(loop(
      "a", alen,
      stmts(loop(
          "b", blen,
          stmts(
              decl("score", ScalarType{32, true},
                   select(eq(A("seqA", var("a")), A("seqB", var("b"))),
                          lit(1), lit(-1))),
              decl("up_left", ScalarType{32, true},
                   A("M", var("a") * lit(blen + 1) + var("b")) + var("score")),
              decl("up", ScalarType{32, true},
                   A("M", var("a") * lit(blen + 1) + var("b") + lit(1)) -
                       lit(1)),
              decl("left", ScalarType{32, true},
                   A("M", (var("a") + lit(1)) * lit(blen + 1) + var("b")) -
                       lit(1)),
              decl("mx", ScalarType{32, true},
                   select(gt(var("up_left"), var("up")), var("up_left"),
                          var("up"))),
              assign_array("M",
                           (var("a") + lit(1)) * lit(blen + 1) + var("b") +
                               lit(1),
                           select(gt(var("mx"), var("left")), var("mx"),
                                  var("left"))))))));
  f.body.push_back(ret(A("M", lit((alen + 1) * (blen + 1) - 1))));
  return f;
}

Function ms_sort_merge() {
  constexpr long n = 16;
  Function f;
  f.name = "sort_merge";
  f.params = {in_array("a", n)};
  f.body.push_back(decl_array("temp", ScalarType{32, true}, n));
  f.body.push_back(loop(
      "width", 4,  // log2 passes
      stmts(loop(
          "i", n,
          stmts(decl("lo", ScalarType{32, true}, A("a", var("i"))),
                decl("hi", ScalarType{32, true},
                     A("a", (var("i") + (lit(1) << var("width"))) &
                                lit(n - 1))),
                assign_array("temp", var("i"),
                             select(lt(var("lo"), var("hi")), var("lo"),
                                    var("hi"))))),
            loop("j", n, stmts(assign_array("a", var("j"),
                                            A("temp", var("j"))))))));
  f.body.push_back(ret(A("a", lit(0))));
  return f;
}

Function ms_sort_radix() {
  constexpr long n = 16, buckets = 4;
  Function f;
  f.name = "sort_radix";
  f.params = {in_array("a", n)};
  f.body.push_back(decl_array("bucket", ScalarType{32, true}, buckets));
  f.body.push_back(decl_array("sum", ScalarType{32, true}, buckets));
  f.body.push_back(loop(
      "exp", 4,
      stmts(loop("b", buckets, stmts(assign_array("bucket", var("b"), lit(0)))),
            loop("i", n,
                 stmts(decl("d", ScalarType{32, true},
                            (A("a", var("i")) >> (var("exp") * lit(2))) &
                                lit(buckets - 1)),
                       assign_array("bucket", var("d"),
                                    A("bucket", var("d")) + lit(1)))),
            decl("acc", ScalarType{32, true}, lit(0)),
            loop("b2", buckets,
                 stmts(assign_array("sum", var("b2"), var("acc")),
                       assign("acc", var("acc") + A("bucket", var("b2"))))))));
  f.body.push_back(ret(A("sum", lit(buckets - 1))));
  return f;
}

Function ms_viterbi() {
  constexpr long states = 4, steps = 8;
  Function f;
  f.name = "viterbi";
  f.params = {in_array("obs", steps), in_array("transition", states * states),
              in_array("emission", states * states)};
  f.body.push_back(decl_array("llike", ScalarType{32, true}, states));
  f.body.push_back(loop(
      "t", steps - 1,
      stmts(loop(
          "curr", states,
          stmts(
              decl("min_val", ScalarType{32, true}, lit(1 << 20)),
              loop("prev", states,
                   stmts(decl("p", ScalarType{32, true},
                              A("llike", var("prev")) +
                                  A("transition",
                                    idx2("prev", "curr", states)) +
                                  A("emission",
                                    var("curr") * lit(states) +
                                        (A("obs", var("t")) &
                                         lit(states - 1)))),
                         assign("min_val",
                                select(lt(var("p"), var("min_val")), var("p"),
                                       var("min_val"))))),
              assign_array("llike", var("curr"), var("min_val")))))));
  f.body.push_back(ret(A("llike", lit(0))));
  return f;
}

Function ms_aes_shift_rows() {
  Function f;
  f.name = "aes_shift_rows";
  f.params = {in_array("buf", 16), in_array("sbox", 16)};
  f.body.push_back(decl_array("out", ScalarType{8, true}, 16));
  // SubBytes + ShiftRows + partial MixColumns in fixed form.
  f.body.push_back(loop(
      "i", 4,
      stmts(loop(
          "j", 4,
          stmts(decl("srcv", ScalarType{8, true},
                     A("buf", ((var("j") + var("i")) & lit(3)) * lit(4) +
                                  var("i"))),
                decl("sub", ScalarType{8, true},
                     A("sbox", var("srcv") & lit(15))),
                decl("xt", ScalarType{8, true},
                     ((var("sub") << lit(1)) ^
                      select(gt(var("sub") & lit(128), lit(0)), lit(27),
                             lit(0))) &
                         lit(255)),
                assign_array("out", idx2("j", "i", 4),
                             var("xt") ^ var("sub")))))));
  f.body.push_back(ret(A("out", lit(0))));
  return f;
}

Function ms_backprop() {
  constexpr long in_dim = 8, out_dim = 4;
  Function f;
  f.name = "backprop";
  f.params = {in_array("weights", in_dim * out_dim), in_array("inputs", in_dim),
              in_array("targets", out_dim)};
  f.body.push_back(decl_array("activations", ScalarType{32, true}, out_dim));
  f.body.push_back(decl_array("deltas", ScalarType{32, true}, out_dim));
  f.body.push_back(loop(
      "o", out_dim,
      stmts(decl("acc", ScalarType{32, true}, lit(0)),
            loop("i", in_dim,
                 stmts(assign("acc", var("acc") +
                                         A("weights",
                                           var("o") * lit(in_dim) + var("i")) *
                                             A("inputs", var("i"))))),
            // Hard-sigmoid activation in fixed point.
            decl("act", ScalarType{32, true},
                 select(gt(var("acc"), lit(256)), lit(256),
                        select(lt(var("acc"), lit(-256)), lit(-256),
                               var("acc")))),
            assign_array("activations", var("o"), var("act")),
            assign_array("deltas", var("o"),
                         (A("targets", var("o")) - var("act")) *
                             (lit(256) - var("act")) >>
                             lit(8)))));
  f.body.push_back(loop(
      "o2", out_dim,
      stmts(loop("i2", in_dim,
                 stmts(assign_array(
                     "weights", var("o2") * lit(in_dim) + var("i2"),
                     A("weights", var("o2") * lit(in_dim) + var("i2")) +
                         (A("deltas", var("o2")) * A("inputs", var("i2")) >>
                          lit(8))))))));
  f.body.push_back(ret(A("deltas", lit(0))));
  return f;
}

}  // namespace

std::vector<SuiteProgram> machsuite_all() {
  std::vector<SuiteProgram> v;
  const auto add = [&v](Function f) {
    v.push_back(SuiteProgram{"machsuite", f.name, std::move(f)});
  };
  add(ms_aes_shift_rows());
  add(ms_backprop());
  add(ms_bfs_queue());
  add(ms_fft_strided());
  add(ms_fft_transpose());
  add(ms_gemm_blocked());
  add(ms_gemm_ncubed());
  add(ms_kmp());
  add(ms_md_knn());
  add(ms_nw());
  add(ms_sort_merge());
  add(ms_sort_radix());
  add(ms_spmv_crs());
  add(ms_stencil2d());
  add(ms_stencil3d());
  add(ms_viterbi());
  return v;
}

}  // namespace gnnhls
