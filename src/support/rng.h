// Seeded random number generation.
//
// Every stochastic component in the library (program generator, weight init,
// dataset shuffling, dropout) draws from an explicitly seeded Rng so that all
// experiments are bit-reproducible regardless of thread scheduling: each
// parallel experiment owns its own Rng.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "support/check.h"

namespace gnnhls {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    GNNHLS_CHECK(lo <= hi, "uniform_int: empty range");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  float normal(float mean = 0.0F, float stddev = 1.0F) {
    return std::normal_distribution<float>(mean, stddev)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples an index according to non-negative weights.
  int weighted_index(const std::vector<double>& weights) {
    GNNHLS_CHECK(!weights.empty(), "weighted_index: no weights");
    std::discrete_distribution<int> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  template <typename T>
  const T& choice(const std::vector<T>& items) {
    GNNHLS_CHECK(!items.empty(), "choice: empty vector");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<int>(items.size()) - 1))];
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Derives an independent child seed (for per-run/per-graph streams).
  std::uint64_t fork_seed() {
    return std::uniform_int_distribution<std::uint64_t>()(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gnnhls
