// Task models over the encoders.
//
// GraphRegressor — graph-level regression (paper §3.1): encoder, sum/mean
// pooling, then the paper's feed-forward head (hidden - 2*hidden - hidden -
// 1).
//
// NodeClassifier — node-level classification: encoder plus a 3-logit head
// (three binary tasks: does the node use DSP / LUT / FF).
#pragma once

#include <memory>
#include <vector>

#include "gnn/encoders.h"
#include "gnn/feature_encoder.h"
#include "gnn/graph_batch.h"

namespace gnnhls {

enum class Pooling { kSum, kMean };

struct ModelConfig {
  GnnKind kind = GnnKind::kRgcn;
  int hidden = 64;
  int layers = 3;       // paper: 5
  float dropout = 0.0F;
  Pooling pooling = Pooling::kSum;
  /// Forwarded to EncoderConfig::fused — route message passing through the
  /// fused executor (bit-identical execution knob, see gnn/mp_executor.h).
  bool fused = false;
};

class GraphRegressor : public Module {
 public:
  GraphRegressor(ModelConfig cfg, int in_dim, Rng& rng);

  /// Predictions [gt.num_graphs, 1] in *encoded target space* (see dataset
  /// target_transform): the trainer decodes them back to QoR values. For a
  /// plain single-graph GraphTensors this is the scalar [1,1] case; for a
  /// GraphBatch's merged view, row g is the prediction for member graph g
  /// (readout pools node embeddings per graph_id segment).
  Var forward(Tape& tape, const GraphTensors& gt, const Matrix& features,
              Rng& rng, bool training) const;

  /// Convenience inference (no-grad usage; still builds a throwaway tape).
  float predict(const GraphTensors& gt, const Matrix& features) const;

  /// Batched inference over a merged batch view: one encoded prediction per
  /// member graph, in member order.
  std::vector<float> predict_batch(const GraphTensors& gt,
                                   const Matrix& features) const;

  const ModelConfig& model_config() const { return cfg_; }

 private:
  ModelConfig cfg_;
  std::unique_ptr<GnnEncoder> encoder_;
  std::unique_ptr<Mlp> head_;
};

class NodeClassifier : public Module {
 public:
  NodeClassifier(ModelConfig cfg, int in_dim, Rng& rng);

  /// Logits [N,3] in the order DSP, LUT, FF.
  Var forward(Tape& tape, const GraphTensors& gt, const Matrix& features,
              Rng& rng, bool training) const;

  /// Hard type predictions used as self-inferred knowledge (threshold 0.5).
  std::vector<InferredTypes> infer_types(const GraphTensors& gt,
                                         const Matrix& features) const;

 private:
  ModelConfig cfg_;
  std::unique_ptr<GnnEncoder> encoder_;
  std::unique_ptr<Linear> head_;
};

}  // namespace gnnhls
