#include "core/experiment.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace gnnhls {

namespace {

struct ScoredRun {
  double val = 0.0;
  double test = 0.0;
  double transfer = 0.0;
};

/// Average of the keep_best runs with lowest validation error.
template <typename Getter>
double protocol_average(std::vector<ScoredRun> runs, int keep_best,
                        Getter get) {
  GNNHLS_CHECK(!runs.empty(), "no runs");
  const int keep = std::min<int>(keep_best, static_cast<int>(runs.size()));
  std::partial_sort(runs.begin(), runs.begin() + keep, runs.end(),
                    [](const ScoredRun& a, const ScoredRun& b) {
                      return a.val < b.val;
                    });
  double total = 0.0;
  for (int i = 0; i < keep; ++i) total += get(runs[static_cast<std::size_t>(i)]);
  return total / keep;
}

}  // namespace

ExperimentResult run_regression_experiment(
    const ExperimentSpec& spec, const std::vector<Sample>& samples,
    const SplitIndices& split, const std::vector<Sample>* transfer_set) {
  std::vector<ScoredRun> runs;
  runs.reserve(static_cast<std::size_t>(spec.protocol.runs));
  for (int r = 0; r < spec.protocol.runs; ++r) {
    ModelConfig mc = spec.model;
    mc.kind = spec.kind;
    TrainConfig tc = spec.train;
    tc.seed = spec.train.seed + static_cast<std::uint64_t>(r) * 1000003;
    QorPredictor predictor(spec.approach, mc, tc);
    ScoredRun run;
    run.val = predictor.fit(samples, split, spec.metric);
    run.test = predictor.evaluate_mape(samples, split.test);
    if (transfer_set != nullptr) {
      run.transfer = predictor.evaluate_mape(
          *transfer_set, all_indices(static_cast<int>(transfer_set->size())));
    }
    runs.push_back(run);
  }
  ExperimentResult result;
  result.test_mape = protocol_average(runs, spec.protocol.keep_best,
                                      [](const ScoredRun& r) { return r.test; });
  if (transfer_set != nullptr) {
    result.transfer_mape = protocol_average(
        runs, spec.protocol.keep_best,
        [](const ScoredRun& r) { return r.transfer; });
  }
  return result;
}

NodeExperimentResult run_node_experiment(
    GnnKind kind, const ModelConfig& model, const TrainConfig& train,
    const RunProtocol& protocol, const std::vector<Sample>& samples,
    const SplitIndices& split, const std::vector<Sample>* transfer_set) {
  struct NodeRun {
    double val;
    NodeClassifierScores test;
    NodeClassifierScores transfer;
  };
  std::vector<NodeRun> runs;
  for (int r = 0; r < protocol.runs; ++r) {
    ModelConfig mc = model;
    mc.kind = kind;
    TrainConfig tc = train;
    tc.seed = train.seed + static_cast<std::uint64_t>(r) * 1000003;
    NodeTypePredictor predictor(mc, tc);
    NodeRun run;
    run.val = predictor.fit(samples, split);
    run.test = predictor.evaluate(samples, split.test);
    if (transfer_set != nullptr) {
      run.transfer = predictor.evaluate(
          *transfer_set, all_indices(static_cast<int>(transfer_set->size())));
    }
    runs.push_back(run);
  }
  // Keep the best runs by validation accuracy (higher is better).
  const int keep = std::min<int>(protocol.keep_best,
                                 static_cast<int>(runs.size()));
  std::partial_sort(
      runs.begin(), runs.begin() + keep, runs.end(),
      [](const NodeRun& a, const NodeRun& b) { return a.val > b.val; });
  NodeExperimentResult out;
  for (int i = 0; i < keep; ++i) {
    out.test.dsp += runs[static_cast<std::size_t>(i)].test.dsp / keep;
    out.test.lut += runs[static_cast<std::size_t>(i)].test.lut / keep;
    out.test.ff += runs[static_cast<std::size_t>(i)].test.ff / keep;
    out.transfer.dsp += runs[static_cast<std::size_t>(i)].transfer.dsp / keep;
    out.transfer.lut += runs[static_cast<std::size_t>(i)].transfer.lut / keep;
    out.transfer.ff += runs[static_cast<std::size_t>(i)].transfer.ff / keep;
  }
  return out;
}

void run_parallel(std::vector<std::function<void()>> jobs, int threads) {
  GNNHLS_CHECK(threads > 0, "run_parallel: need at least one thread");
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      try {
        jobs[i]();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  const int n = std::min<int>(threads, static_cast<int>(jobs.size()));
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gnnhls
