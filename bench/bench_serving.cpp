// Serving batcher bench: latency vs throughput across the micro-batching
// knobs (--max-batch, --batch-window-us) under closed-loop concurrent load.
//
// Fits one off-the-shelf RGCN predictor, then drives a ServingBatcher with
// --clients submitter threads, each submitting --requests samples one at a
// time and blocking on the future (the DSE searcher pattern: every thread
// holds exactly one in-flight candidate). Expected shape: micro-batching
// (max-batch > 1) wins graphs/sec over the unbatched baseline because one
// GraphBatch forward amortizes tape construction over the whole batch, at
// the price of the queueing delay the window introduces. With closed-loop
// load the average batch is capped by the client count, so the window only
// pays off while clients >= max-batch keep the queue refilling; once every
// waiting client is already in the queue, extra window is a pure latency
// tax — the sweep makes that tradeoff visible.
//
// Every served prediction is bit-identical to sequential
// QorPredictor::predict — checked here end-to-end on top of the unit tests,
// and unlike the table benches that one check is a hard gate: main() exits
// 1 if any served value diverges (CI runs this as a smoke gate). The
// throughput/batch-formation checks stay report-only — they are
// load-dependent and must not flake CI.
#include <algorithm>
#include <atomic>
#include <future>
#include <thread>

#include "bench_common.h"
#include "serve/serving_batcher.h"

namespace gnnhls::bench {
namespace {

struct LoadResult {
  double wall_s = 0.0;
  double graphs_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  ServeStats stats;
  bool bit_identical = true;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

/// Closed-loop load: `clients` threads, one outstanding request each.
/// `expected[i]` is the sequential predict() value for samples[idx[i]].
LoadResult run_load(const QorPredictor& predictor,
                    const std::vector<Sample>& samples,
                    const std::vector<int>& idx,
                    const std::vector<double>& expected, ServeConfig sc,
                    int clients, int requests) {
  ServingBatcher batcher(predictor, sc);
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<int> mismatches{0};
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(requests));
      for (int r = 0; r < requests; ++r) {
        const std::size_t pick =
            static_cast<std::size_t>(c * 131 + r * 7) % idx.size();
        const Sample& s = samples[static_cast<std::size_t>(idx[pick])];
        Timer t;
        const double served = batcher.submit(s).get();
        lat.push_back(t.seconds() * 1e6);
        if (served != expected[pick]) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  LoadResult res;
  res.wall_s = wall.seconds();
  res.stats = batcher.stats();
  res.bit_identical = mismatches.load() == 0;
  const double total =
      static_cast<double>(clients) * static_cast<double>(requests);
  res.graphs_per_s = res.wall_s > 0.0 ? total / res.wall_s : 0.0;
  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(total));
  for (auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  res.p50_us = percentile(all, 0.50);
  res.p99_us = percentile(all, 0.99);
  return res;
}

int run(int argc, const char* const* argv) {
  const BenchConfig cfg = parse_bench_config(argc, argv);
  print_header("Serving batcher — latency/throughput vs batch window", cfg);
  std::cout << "load: " << cfg.clients << " closed-loop clients x "
            << cfg.requests << " requests, max-batch=" << cfg.max_batch
            << ", batch-window-us=" << cfg.batch_window_us << "\n";

  const std::vector<Sample> samples = build_dfg(cfg);
  print_dataset_line("DFG", samples);
  const SplitIndices split =
      split_80_10_10(static_cast<int>(samples.size()), cfg.seed);

  QorPredictor predictor(Approach::kOffTheShelf, model_config(cfg),
                         train_config(cfg));
  Timer fit_timer;
  const double val = predictor.fit(samples, split, Metric::kLut);
  std::cout << "fit: val MAPE " << TextTable::pct(val) << " in "
            << TextTable::num(fit_timer.seconds(), 1) << "s\n\n";

  // Sequential baseline values (also the bit-identity reference).
  const std::vector<int>& idx = split.test;
  std::vector<double> expected;
  expected.reserve(idx.size());
  Timer seq_timer;
  for (int i : idx) {
    expected.push_back(predictor.predict(samples[static_cast<std::size_t>(i)]));
  }
  const double seq_per_graph_us =
      seq_timer.seconds() * 1e6 / static_cast<double>(idx.size());
  std::cout << "sequential predict(): "
            << TextTable::num(seq_per_graph_us, 1) << " us/graph\n\n";

  struct Row {
    std::string name;
    ServeConfig sc;
  };
  const long w = cfg.batch_window_us;
  const std::vector<Row> rows = {
      {"max-batch=1 (no batching)", {1, 0, cfg.arena}},
      {"max-batch=N, window=0", {cfg.max_batch, 0, cfg.arena}},
      {"max-batch=N, window=W", {cfg.max_batch, w, cfg.arena}},
      {"max-batch=N, window=5W", {cfg.max_batch, 5 * w, cfg.arena}},
  };

  TextTable table({"serving config", "graphs/s", "avg batch", "p50 us",
                   "p99 us", "full/timeout/drain"});
  BenchJsonLog json_log;
  json_log.add("sequential predict us/graph", seq_per_graph_us, "us");
  std::vector<LoadResult> results;
  for (const Row& row : rows) {
    // One warmup pass keeps first-touch allocator noise out of the table.
    run_load(predictor, samples, idx, expected, row.sc, cfg.clients,
             std::max(cfg.requests / 8, 1));
    const LoadResult res = run_load(predictor, samples, idx, expected, row.sc,
                                    cfg.clients, cfg.requests);
    results.push_back(res);
    table.add_row(
        {row.name, TextTable::num(res.graphs_per_s, 1),
         TextTable::num(res.stats.avg_batch(), 2),
         TextTable::num(res.p50_us, 0), TextTable::num(res.p99_us, 0),
         std::to_string(res.stats.flush_full) + "/" +
             std::to_string(res.stats.flush_timeout) + "/" +
             std::to_string(res.stats.flush_drain)});
    json_log.add(row.name, res.graphs_per_s, "graphs/s");
    json_log.add(row.name + " p99", res.p99_us, "us");
  }
  std::cout << table.to_string() << "\n";
  write_bench_json(cfg, json_log, "serving");

  ShapeChecks checks;
  bool all_exact = true;
  for (const LoadResult& r : results) all_exact &= r.bit_identical;
  checks.check("every served prediction bit-identical to predict()",
               all_exact);
  if (cfg.max_batch > 1) {
    // Throughput/batch-formation shape: reported like the table benches
    // (timing-dependent, and meaningless when --max-batch=1 collapses the
    // sweep), never gated on.
    double batched_best = 0.0;
    for (std::size_t i = 1; i < results.size(); ++i) {
      batched_best = std::max(batched_best, results[i].graphs_per_s);
    }
    checks.check("micro-batching beats max-batch=1 on graphs/sec",
                 batched_best > results[0].graphs_per_s);
    checks.check("windowed micro-batches actually form (avg batch > 1)",
                 results[2].stats.avg_batch() > 1.0);
    checks.check("longer window -> larger average batch",
                 results[3].stats.avg_batch() >=
                     results[2].stats.avg_batch());
  } else {
    std::cout << "  (perf shape checks skipped: --max-batch=1 degenerates "
                 "the sweep)\n";
  }
  checks.summary();
  // Only bit-identity is a hard invariant (the serving contract); the perf
  // checks above are load-dependent and stay report-only, so the CI smoke
  // gate cannot flake on scheduling noise.
  return all_exact ? 0 : 1;
}

}  // namespace
}  // namespace gnnhls::bench

int main(int argc, char** argv) { return gnnhls::bench::run(argc, argv); }
